// Package proger is a parallel progressive entity-resolution library —
// a from-scratch Go reproduction of Altowim & Mehrotra, "Parallel
// Progressive Approach to Entity Resolution Using MapReduce" (ICDE
// 2017).
//
// Progressive ER resolves a dataset so that the rate at which data
// quality improves is maximized: the most duplicate pairs found for the
// least resolution cost, with usable results delivered incrementally
// while the job runs. This package exposes the paper's full pipeline:
//
//   - Job 1 performs progressive blocking (hierarchical block trees per
//     blocking-function family) and gathers block statistics;
//   - a schedule generator estimates per-block duplicate counts and
//     costs, splits overflowed trees, and partitions trees among reduce
//     tasks to maximize the early duplicate-detection rate;
//   - Job 2 resolves the blocks bottom-up with a pluggable progressive
//     mechanism (Sorted Neighbor with the Whang et al. hint, or the
//     Progressive Sorted Neighborhood Method), with redundancy-free
//     pair ownership across overlapping blocks.
//
// Everything runs on an embedded, in-process MapReduce engine with a
// simulated cluster and a deterministic cost clock, so runs are
// reproducible bit-for-bit and "time" means resolution cost units.
//
// # Quick start
//
//	ds, gt := proger.GeneratePublications(10000, 1)
//	opts := proger.Options{
//	    Families:        proger.CiteSeerXFamilies(ds.Schema),
//	    Matcher:         proger.MustMatcher(0.75, proger.Rule{Attr: 0, Weight: 1, Kind: proger.EditDistance}),
//	    Mechanism:       proger.SN,
//	    Policy:          proger.CiteSeerXPolicy(),
//	    Machines:        10,
//	    SlotsPerMachine: 2,
//	}
//	res, err := proger.Resolve(ds, opts)
//	// res.Events carries every duplicate discovery with its simulated
//	// timestamp; res.Duplicates is the final pair set.
//
// See the examples directory for complete programs and internal/
// experiments for the harnesses that regenerate every table and figure
// of the paper.
package proger

import (
	"io"

	"proger/internal/blocking"
	"proger/internal/clustering"
	"proger/internal/core"
	"proger/internal/costmodel"
	"proger/internal/datagen"
	"proger/internal/entity"
	"proger/internal/estimate"
	"proger/internal/faults"
	"proger/internal/mapreduce"
	"proger/internal/match"
	"proger/internal/mechanism"
	"proger/internal/obs"
	"proger/internal/obs/live"
	"proger/internal/obs/quality"
	"proger/internal/progress"
	"proger/internal/sched"
)

// ---- Data model ----

// Entity is a record: a dense ID plus one string per schema attribute.
type Entity = entity.Entity

// ID is an entity identifier.
type ID = entity.ID

// Pair is a canonical (Lo < Hi) unordered entity pair.
type Pair = entity.Pair

// PairSet is a set of pairs.
type PairSet = entity.PairSet

// Schema names a dataset's attributes.
type Schema = entity.Schema

// Dataset is an in-memory entity collection.
type Dataset = entity.Dataset

// NewSchema builds a schema from unique attribute names.
var NewSchema = entity.NewSchema

// MustSchema is NewSchema that panics on error.
var MustSchema = entity.MustSchema

// NewDataset creates an empty dataset.
var NewDataset = entity.NewDataset

// MakePair canonicalizes an entity pair.
var MakePair = entity.MakePair

// ReadTSV parses a dataset from tab-separated text with a "#id" header.
func ReadTSV(r io.Reader) (*Dataset, error) { return entity.ReadTSV(r) }

// WriteTSV writes a dataset as tab-separated text.
func WriteTSV(w io.Writer, d *Dataset) error { return entity.WriteTSV(w, d) }

// ---- Blocking ----

// Family is one blocking-function family: a main function plus its
// sub-blocking functions, all prefix keys on one attribute.
type Family = blocking.Family

// Families is the ordered (by dominance) set of families.
type Families = blocking.Families

// KeyKind selects how a family derives blocking keys.
type KeyKind = blocking.KeyKind

// Blocking key kinds: lower-cased character prefixes (the paper's
// Table II) or prefixes of the first word's Soundex code (phonetic
// blocking à la merge/purge [3]).
const (
	KeyPrefix  = blocking.KeyPrefix
	KeySoundex = blocking.KeySoundex
)

// CiteSeerXFamilies returns the Table-II blocking configuration for
// publication-like schemas (title/abstract/venue prefixes).
var CiteSeerXFamilies = blocking.CiteSeerXFamilies

// OLBooksFamilies returns the Table-II blocking configuration for
// book-like schemas (title/authors/publisher prefixes).
var OLBooksFamilies = blocking.OLBooksFamilies

// FamilyQuality reports a candidate blocking family's duplicate
// density and coverage on a training dataset.
type FamilyQuality = blocking.FamilyQuality

// SuggestFamilies evaluates candidate blocking families on a training
// dataset and orders them into a dominance order by duplicate density,
// the §IV-A criterion ("set X ≻ Y if its estimated number of duplicate
// pairs divided by its total number of pairs is greater").
var SuggestFamilies = blocking.SuggestFamilies

// ---- Matching ----

// Rule scores one attribute inside a Matcher.
type Rule = match.Rule

// Matcher is the weighted multi-attribute resolve/match function.
type Matcher = match.Matcher

// SimKind selects a similarity function for a Rule.
type SimKind = match.SimKind

// Similarity kinds for Rule.Kind.
const (
	EditDistance   = match.EditDistance
	ExactMatch     = match.ExactMatch
	JaroWinklerSim = match.JaroWinklerSim
	JaccardQ2      = match.JaccardQ2
	TokenCosine    = match.TokenCosine
)

// NewMatcher validates and builds a matcher (weights are normalized).
var NewMatcher = match.New

// MustMatcher is NewMatcher that panics on error.
var MustMatcher = match.MustNew

// ---- Mechanisms and policies ----

// Mechanism is a progressive per-block resolution algorithm.
type Mechanism = mechanism.Mechanism

// SN is the Sorted Neighbor algorithm with the hint of Whang et
// al. [5]; PSNM is the Progressive Sorted Neighborhood Method of
// Papenbrock et al. [6]; HierarchyHint uses the hierarchical
// partitioning hint of [5] directly as the mechanism.
var (
	SN            Mechanism = mechanism.SN{}
	PSNM          Mechanism = mechanism.PSNM{}
	HierarchyHint Mechanism = mechanism.Hierarchy{}
	// RSwoosh is the traditional (exhaustive, merge-based) in-block ER
	// algorithm of Benjelloun et al. [1] — a non-progressive reference
	// mechanism.
	RSwoosh Mechanism = mechanism.RSwoosh{}
)

// Policy sets per-level window/termination/fraction parameters.
type Policy = estimate.Policy

// CiteSeerXPolicy and OLBooksPolicy are the §VI-A5 parameter sets.
var (
	CiteSeerXPolicy = estimate.CiteSeerXPolicy
	OLBooksPolicy   = estimate.OLBooksPolicy
)

// DupModel estimates per-block duplicate counts; train one with
// TrainDupModel or leave Options.DupModel nil for the analytic default.
type DupModel = estimate.DupModel

// TrainDupModel learns the §VI-A4 bucketed duplicate-probability model
// from a training dataset with ground truth.
func TrainDupModel(ds *Dataset, gt *GroundTruth, fams Families) DupModel {
	return estimate.Train(ds, gt, fams)
}

// ---- Scheduling ----

// SchedulerKind selects the tree scheduler.
type SchedulerKind = sched.Kind

// Tree schedulers: the paper's algorithm, the NoSplit ablation, and the
// LPT load-balancing baseline.
const (
	SchedulerOurs    = sched.Ours
	SchedulerNoSplit = sched.NoSplit
	SchedulerLPT     = sched.LPT
)

// ---- Pipeline ----

// Options configures the full two-job pipeline.
type Options = core.Options

// BasicOptions configures the Basic single-job baseline.
type BasicOptions = core.BasicOptions

// Result is a pipeline run's outcome: duplicates, timestamped events,
// and diagnostics.
type Result = core.Result

// CostUnits is the simulated resolution-cost unit (≈ one pair match).
type CostUnits = costmodel.Units

// Resolve runs the parallel progressive ER pipeline (two MapReduce
// jobs) on the dataset.
func Resolve(ds *Dataset, opts Options) (*Result, error) { return core.Resolve(ds, opts) }

// ResolveBasic runs the Basic baseline (§II-C).
func ResolveBasic(ds *Dataset, opts BasicOptions) (*Result, error) {
	return core.ResolveBasic(ds, opts)
}

// ---- Fault tolerance ----

// FaultInjector decides, deterministically, which simulated fault (if
// any) a given task attempt suffers. Attach one via Options.Faults to
// chaos-test a pipeline: injected faults are retried, timed out, or
// speculated around by the attempt runtime and can never alter the
// Result.
type FaultInjector = faults.Injector

// Fault is one injected failure: a kind plus an optional slowdown
// factor.
type Fault = faults.Fault

// FaultKind enumerates the simulated failure modes.
type FaultKind = faults.Kind

// Fault kinds: none, crash mid-task, hang until the attempt timeout,
// or run slower by Fault.Factor.
const (
	FaultNone  = faults.None
	FaultCrash = faults.Crash
	FaultHang  = faults.Hang
	FaultSlow  = faults.Slow
)

// NewSeededFaults returns the standard deterministic injector: each
// (phase, task, attempt) independently faults with the given rate,
// decided purely by hashing the seed — reproducible across runs and
// host concurrency. Its fault budget guarantees every task eventually
// succeeds within the default retry allowance.
var NewSeededFaults = faults.NewSeeded

// RetryPolicy tunes the attempt runtime: bounded retries with
// exponential backoff in cost units, per-attempt timeouts, and
// speculative re-execution of stragglers. Zero value = engine defaults
// when Options.Faults is set.
type RetryPolicy = mapreduce.RetryPolicy

// ExecutionMode selects how each job's tasks execute on the host
// machine (Options.Execution). A host knob like Options.Workers:
// both modes produce byte-identical results, traces, and telemetry.
type ExecutionMode = mapreduce.ExecutionMode

// Execution modes: the dependency-driven pipelined engine (default,
// no phase barriers) and the three-phase barrier reference engine.
const (
	ExecPipelined = mapreduce.ExecPipelined
	ExecBarrier   = mapreduce.ExecBarrier
)

// ---- Distributed execution ----

// TaskTransport selects how each job's task executions are placed
// (Options.Transport): nil / the in-process default runs everything in
// this process; a dist.Master leases every task to registered worker
// processes over net/rpc; a dist.Worker executes leases and follows
// the master's end-of-job broadcasts. A host knob like
// Options.Workers: every transport produces byte-identical results,
// traces, and quality telemetry — provided every process in the fleet
// runs with identical resolution-affecting options.
type TaskTransport = mapreduce.TaskTransport

// ErrTaskLost is the sentinel a transport reports when a leased task's
// worker went silent past the lease TTL. The engine re-dispatches lost
// tasks below the simulated attempt runtime, so lease churn never
// shows up in traces or results.
var ErrTaskLost = mapreduce.ErrTaskLost

// Distributed-runtime telemetry keys, reported only through
// Options.Metrics (master keys on the master process, worker keys on
// each worker): workers registered, leases granted and expired, RPC
// traffic (bytes, calls, latency histograms), lease-wait latency, and
// shared-directory run-file bytes streamed.
const (
	CounterDistWorkersRegistered = mapreduce.CounterDistWorkersRegistered
	CounterDistLeasesGranted     = mapreduce.CounterDistLeasesGranted
	CounterDistLeasesExpired     = mapreduce.CounterDistLeasesExpired
	CounterDistRPCBytesIn        = mapreduce.CounterDistRPCBytesIn
	CounterDistRPCBytesOut       = mapreduce.CounterDistRPCBytesOut
	CounterDistRPCCalls          = mapreduce.CounterDistRPCCalls
	CounterDistRunBytesRead      = mapreduce.CounterDistRunBytesRead
	CounterDistRunBytesWritten   = mapreduce.CounterDistRunBytesWritten
	HistDistRPCClientMillis      = mapreduce.HistDistRPCClientMillis
	HistDistRPCServerMillis      = mapreduce.HistDistRPCServerMillis
	HistDistLeaseWaitMillis      = mapreduce.HistDistLeaseWaitMillis
)

// ---- Observability ----

// Tracer collects timeline spans from a pipeline run. Attach one via
// Options.Trace (or BasicOptions.Trace) and export it afterwards with
// WriteChromeTrace — the JSON loads in chrome://tracing or Perfetto.
// Simulated-clock traces are deterministic: identical runs produce
// byte-identical JSON regardless of host concurrency.
type Tracer = obs.Tracer

// MetricsRegistry collects counters, gauges, and histograms from a
// pipeline run. Attach one via Options.Metrics and export it with
// WritePrometheus (text exposition format).
type MetricsRegistry = obs.Registry

// NewTracer creates an enabled span collector.
var NewTracer = obs.New

// NewMetricsRegistry creates an enabled metrics registry.
var NewMetricsRegistry = obs.NewRegistry

// Memory-budget telemetry keys (set only when Options.MemBudget > 0):
// the high-water mark of tracked bytes, the cumulative bytes charged
// (raw shuffle + statistics volume), and the spills the budget forced.
const (
	GaugeMemBudgetPeakBytes    = core.GaugeMemBudgetPeakBytes
	GaugeMemBudgetChargedBytes = core.GaugeMemBudgetChargedBytes
	CounterBudgetForcedSpills  = mapreduce.CounterBudgetForcedSpills
	CounterBudgetSpilledBytes  = mapreduce.CounterBudgetSpilledBytes
)

// QualityRecorder collects quality telemetry from a pipeline run: the
// schedule's per-block predictions and per-task plans plus Job 2's
// realized per-block resolutions. Attach one via Options.Quality (or
// BasicOptions.Quality) and export the progressive-recall curve and
// calibration report afterwards with Export — deterministic across
// worker counts and fault injection, like Tracer.
type QualityRecorder = quality.Recorder

// QualityExport bundles the derived curve and calibration report for
// JSON serialization.
type QualityExport = quality.Export

// NewQualityRecorder creates an enabled quality recorder.
var NewQualityRecorder = quality.NewRecorder

// LiveRun is the in-flight introspection hub: engines publish task DAG
// states, attempt/speculation counts, shuffle/merge/spill progress, and
// streamed per-block resolutions into it at low, lock-free cost, and
// the status server reads racefree per-field-atomic snapshots back out.
// Attach one via Options.Live (or BasicOptions.Live). Strictly
// write-only from the run's perspective: results and every post-run
// artifact are byte-identical with or without it.
type LiveRun = live.Run

// LiveEventLog is the structured JSON event log (log/slog) fed by a
// LiveRun: run/job lifecycle, task transitions, retries, speculation,
// shuffle merges and spills. The deterministic field subset (everything
// except seq and wall_ms) is stable across worker counts for the
// barrier engine.
type LiveEventLog = live.EventLog

// ProgressSnapshot is one consistent-enough view of a run in flight:
// per-phase task states, streamed comparison/duplicate counts, the
// incremental recall estimate, and the remaining-cost ETA.
type ProgressSnapshot = live.ProgressSnapshot

// NewLiveRun creates a live introspection hub; log may be nil.
var NewLiveRun = live.NewRun

// NewLiveEventLog creates a structured event log writing JSON lines to w.
var NewLiveEventLog = live.NewEventLog

// NewRelayEventLog creates a relay event log for a distributed worker
// process: emitted lines buffer in memory (bounded by capacity; ≤0
// uses the default) and ship to the master with each heartbeat, where
// they merge into the master's -events file under the worker's proc
// identity.
var NewRelayEventLog = live.NewRelayEventLog

// FleetSnapshot is the master's point-in-time fleet table: per-worker
// liveness, lease ledger, and last telemetry self-report. Served on
// the status server's /fleet endpoint and summarized post-run by
// report.WriteRunSummary.
type FleetSnapshot = live.FleetSnapshot

// StatusServer is a running live status server (see ServeStatus).
type StatusServer = live.Server

// ServeStatus starts the HTTP status server for a live run: /healthz,
// /progress, /tasks, /membudget, /metrics (Prometheus), and
// /debug/pprof. Listen errors are returned synchronously; ":0" picks a
// free port (see Addr on the returned server).
var ServeStatus = live.Serve

// NewStatusHandler returns the status server's handler without
// listening, for embedding into an existing server.
var NewStatusHandler = live.NewHandler

// LiveProgressRenderer is the periodic single-line terminal progress
// renderer returned by StartLiveProgress.
type LiveProgressRenderer = live.ProgressRenderer

// StartLiveProgress starts the single-line terminal progress renderer
// for a live run; Stop it after the run finishes.
var StartLiveProgress = live.StartProgress

// Structured event names written to a LiveEventLog. Run lifecycle
// events are the caller's responsibility (emit run.start before
// Resolve and run.end after); everything else is emitted by the
// engines.
const (
	EventRunStart      = live.EventRunStart
	EventRunEnd        = live.EventRunEnd
	EventJobStart      = live.EventJobStart
	EventJobEnd        = live.EventJobEnd
	EventTaskStart     = live.EventTaskStart
	EventTaskDone      = live.EventTaskDone
	EventTaskFailed    = live.EventTaskFailed
	EventTaskRetry     = live.EventTaskRetry
	EventTaskSpeculate = live.EventTaskSpeculate
	EventShuffleMerged = live.EventShuffleMerged
	EventShuffleSpill  = live.EventShuffleSpill
	// Distributed-runtime events, emitted by a dist.Master's lease
	// ledger into the same log.
	EventWorkerRegister = live.EventWorkerRegister
	EventLease          = live.EventLease
	EventLeaseExpire    = live.EventLeaseExpire
)

// EventKV builds one structured attribute for LiveEventLog.Emit.
var EventKV = live.KV

// ---- Evaluation ----

// Event is a timestamped duplicate discovery.
type Event = progress.Event

// Curve is duplicate recall as a step function of cost.
type Curve = progress.Curve

// GroundTruth records the true clustering of a synthetic dataset.
type GroundTruth = datagen.GroundTruth

// BuildCurve builds the recall-vs-cost curve from resolution events.
var BuildCurve = progress.BuildCurve

// Qty is the discrete sampling quality function of Eq. 1.
var Qty = progress.Qty

// Speedup compares how fast two curves reach a recall level.
var Speedup = progress.Speedup

// ---- Clustering ----

// PairMetrics is a pairs-level precision/recall/F1 report.
type PairMetrics = clustering.PairMetrics

// TransitiveClosure groups n entities into disjoint clusters given the
// identified duplicate pairs (the §II-A final clustering step; also
// available as Result.Clusters).
var TransitiveClosure = clustering.TransitiveClosure

// EvaluatePairs scores identified pairs against a ground-truth oracle.
var EvaluatePairs = clustering.EvaluatePairs

// ---- Synthetic workloads ----

// GeneratePublications builds a CiteSeerX-like synthetic dataset with
// ground truth (n entities, deterministic in seed).
func GeneratePublications(n int, seed int64) (*Dataset, *GroundTruth) {
	return datagen.Publications(datagen.DefaultPublications(n, seed))
}

// GenerateBooks builds an OL-Books-like synthetic dataset with ground
// truth.
func GenerateBooks(n int, seed int64) (*Dataset, *GroundTruth) {
	return datagen.Books(datagen.DefaultBooks(n, seed))
}

// GeneratePeople returns the paper's Table-I toy dataset.
var GeneratePeople = datagen.People

// GeneratePersons builds a scalable people dataset (name, city, state,
// phone) suited to phonetic blocking demonstrations.
func GeneratePersons(n int, seed int64) (*Dataset, *GroundTruth) {
	return datagen.PersonRecords(datagen.DefaultPeople(n, seed))
}

// CorrelationClustering is the CC-Pivot alternative to transitive
// closure ([22] in the paper): one false-positive pair cannot glue two
// large clusters together.
var CorrelationClustering = clustering.CorrelationClustering
