// Command datagen generates the synthetic datasets used by this
// reproduction (publications ≈ CiteSeerX, books ≈ OL-Books, people =
// the paper's Table-I toy), writing the records as TSV and the ground
// truth as an id→cluster table.
//
// Usage:
//
//	datagen -kind publications -n 100000 -seed 1 -out data.tsv -truth truth.tsv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"proger/internal/datagen"
	"proger/internal/entity"
)

func main() {
	kind := flag.String("kind", "publications", "dataset kind: publications | books | people | persons")
	n := flag.Int("n", 10000, "number of entities (ignored for people)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output TSV path (default stdout)")
	truth := flag.String("truth", "", "ground-truth output path (optional)")
	flag.Parse()

	var (
		ds *entity.Dataset
		gt *datagen.GroundTruth
	)
	switch *kind {
	case "publications":
		ds, gt = datagen.Publications(datagen.DefaultPublications(*n, *seed))
	case "books":
		ds, gt = datagen.Books(datagen.DefaultBooks(*n, *seed))
	case "people":
		ds, gt = datagen.People()
	case "persons":
		ds, gt = datagen.PersonRecords(datagen.DefaultPeople(*n, *seed))
	default:
		log.Fatalf("datagen: unknown kind %q (want publications, books, people, or persons)", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := entity.WriteTSV(w, ds); err != nil {
		log.Fatal(err)
	}
	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := datagen.WriteGroundTruth(f, gt); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "datagen: %d entities, %d clusters, %d true duplicate pairs\n",
		ds.Len(), len(gt.Clusters), gt.NumDupPairs())
}
