package main

import (
	"testing"

	"proger"
)

func testDataset() *proger.Dataset {
	ds := proger.NewDataset(proger.MustSchema("name", "state"))
	ds.Append("John Lopez", "HI")
	ds.Append("Mary Gibson", "AZ")
	return ds
}

func TestBuildFamiliesCustom(t *testing.T) {
	ds := testDataset()
	fams := buildFamilies(ds, stringList{"name:2,3,5", "state:2"}, "")
	if len(fams) != 2 {
		t.Fatalf("families = %d", len(fams))
	}
	if fams[0].Attr != 0 || len(fams[0].PrefixLens) != 3 || fams[0].Index != 1 {
		t.Errorf("family 0 = %+v", fams[0])
	}
	if fams[1].Attr != 1 || fams[1].Index != 2 {
		t.Errorf("family 1 = %+v", fams[1])
	}
}

func TestBuildFamiliesPresets(t *testing.T) {
	pubs, _ := proger.GeneratePublications(50, 1)
	fams := buildFamilies(pubs, nil, "publications")
	if len(fams) != 3 || fams[0].PrefixLens[0] != 2 {
		t.Errorf("publications preset = %+v", fams)
	}
	books, _ := proger.GenerateBooks(50, 1)
	fams = buildFamilies(books, nil, "books")
	if len(fams) != 3 || fams[0].PrefixLens[0] != 3 {
		t.Errorf("books preset = %+v", fams)
	}
}

func TestBuildMatcherCustom(t *testing.T) {
	ds := testDataset()
	m := buildMatcher(ds, stringList{"name:edit:0.8", "state:exact:0.2"}, 0.7, "")
	if m == nil || len(m.Rules) != 2 {
		t.Fatalf("matcher = %+v", m)
	}
	if m.Threshold != 0.7 {
		t.Errorf("threshold = %v", m.Threshold)
	}
	// Weights normalized.
	sum := m.Rules[0].Weight + m.Rules[1].Weight
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum = %v", sum)
	}
}

func TestBuildMatcherWithMaxChars(t *testing.T) {
	pubs, _ := proger.GeneratePublications(50, 1)
	m := buildMatcher(pubs, stringList{"abstract:edit:1:350"}, 0.8, "")
	if m.Rules[0].MaxChars != 350 {
		t.Errorf("maxchars = %d", m.Rules[0].MaxChars)
	}
}

func TestPickers(t *testing.T) {
	if pickMechanism("sn").Name() != "SN" || pickMechanism("psnm").Name() != "PSNM" {
		t.Error("mechanism picker broken")
	}
	if pickScheduler("ours") != proger.SchedulerOurs ||
		pickScheduler("nosplit") != proger.SchedulerNoSplit ||
		pickScheduler("lpt") != proger.SchedulerLPT {
		t.Error("scheduler picker broken")
	}
	if pickPolicy("books").FracLeaf != 0.85 {
		t.Error("books policy not picked")
	}
	if pickPolicy("publications").FracLeaf != 0.80 {
		t.Error("default policy not picked")
	}
}

func TestStringListFlag(t *testing.T) {
	var l stringList
	if err := l.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("b"); err != nil {
		t.Fatal(err)
	}
	if l.String() != "a;b" || len(l) != 2 {
		t.Errorf("stringList = %v", l)
	}
}

func TestTrainSet(t *testing.T) {
	ds, gt := trainSet("publications", 4000, 1)
	if ds == nil || gt == nil || ds.Len() < 500 {
		t.Error("publications train set missing")
	}
	if ds, _ := trainSet("people", 4000, 1); ds != nil {
		t.Error("people has no train set")
	}
}

func TestBuildFamiliesSoundex(t *testing.T) {
	ds := testDataset()
	fams := buildFamilies(ds, stringList{"name:soundex:1,2,4", "state:2"}, "")
	if fams[0].Kind != proger.KeySoundex {
		t.Errorf("kind = %v, want soundex", fams[0].Kind)
	}
	if len(fams[0].PrefixLens) != 3 || fams[0].PrefixLens[2] != 4 {
		t.Errorf("lens = %v", fams[0].PrefixLens)
	}
	if fams[1].Kind != proger.KeyPrefix {
		t.Errorf("default kind = %v, want prefix", fams[1].Kind)
	}
	explicit := buildFamilies(ds, stringList{"name:prefix:2,3"}, "")
	if explicit[0].Kind != proger.KeyPrefix {
		t.Error("explicit prefix kind")
	}
}
