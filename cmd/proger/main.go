// Command proger runs parallel progressive entity resolution on a TSV
// dataset (or a generated synthetic one) and emits the identified
// duplicate pairs with their simulated discovery timestamps.
//
// A minimal run on generated data:
//
//	proger -generate publications -n 20000 -machines 10
//
// A custom dataset with explicit blocking and matching configuration:
//
//	proger -input people.tsv \
//	    -block name:2,3,5 -block state:2 \
//	    -rule name:edit:0.8 -rule state:edit:0.2 -match-threshold 0.75 \
//	    -mechanism sn -machines 4 -out pairs.tsv
//
// With -truth the tool also prints the duplicate-recall curve.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"proger"
	"proger/internal/clustering"
	"proger/internal/costmodel"
	"proger/internal/datagen"
	"proger/internal/dist"
	"proger/internal/report"
)

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ";") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("proger: ")

	input := flag.String("input", "", "input dataset TSV (mutually exclusive with -generate)")
	generate := flag.String("generate", "", "generate a synthetic dataset: publications | books | people | persons")
	n := flag.Int("n", 10000, "entities to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	truthPath := flag.String("truth", "", "ground-truth TSV for recall reporting")
	var blocks, rules stringList
	flag.Var(&blocks, "block", "blocking family as attr:len1,len2,... (repeatable, dominance order)")
	flag.Var(&rules, "rule", "match rule as attr:kind:weight[:maxchars], kind ∈ edit|exact|jaro|jaccard|cosine (repeatable)")
	threshold := flag.Float64("match-threshold", 0.75, "weighted-similarity match threshold")
	mech := flag.String("mechanism", "sn", "progressive mechanism: sn | psnm")
	scheduler := flag.String("scheduler", "ours", "tree scheduler: ours | nosplit | lpt")
	basic := flag.Bool("basic", false, "run the Basic baseline instead of the full pipeline")
	window := flag.Int("window", 15, "SN window for -basic")
	popcorn := flag.Float64("popcorn", -1, "popcorn threshold for -basic (negative = resolve fully)")
	machines := flag.Int("machines", 10, "simulated machines")
	slots := flag.Int("slots", 2, "task slots per machine")
	out := flag.String("out", "", "output path for duplicate pairs (default stdout)")
	clustersOut := flag.String("clusters", "", "also write transitive-closure clusters to this path")
	showReport := flag.Bool("report", false, "print per-job diagnostics (summary, timeline, counters)")
	segmentsDir := flag.String("segments", "", "write α-interval incremental result files to this directory")
	alpha := flag.Float64("alpha", 500, "segment interval in cost units for -segments")
	curvePoints := flag.Int("curve", 12, "recall-curve points to print when -truth is given")
	faultRate := flag.Float64("fault-rate", 0, "inject simulated task faults at this per-attempt probability (0 disables; results are unaffected)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for deterministic fault injection")
	maxRetries := flag.Int("max-retries", 3, "per-task retry budget when -fault-rate > 0")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this path (load in Perfetto / chrome://tracing)")
	metricsPath := flag.String("metrics-out", "", "write run metrics in Prometheus text format to this path")
	qualityOut := flag.String("quality-out", "", "write quality telemetry (progressive-recall curve + calibration report) to this path; a .csv suffix writes the curve as CSV, anything else the full export as JSON")
	sampleEvery := flag.Float64("sample-every", 0, "progressive-recall sampling interval in cost units for -quality-out (0 = total time / 64)")
	statusAddr := flag.String("status", "", "serve the live status server on this address while the run executes: /healthz, /progress, /tasks, /membudget, /metrics, /debug/pprof (\":0\" picks a free port)")
	pprofAddr := flag.String("pprof", "", "alias for -status (the status server includes /debug/pprof)")
	eventsPath := flag.String("events", "", "write a structured JSON event log (one event per line: run/job lifecycle, task transitions, retries, speculation, shuffle merges and spills) to this path; \"-\" writes to stderr")
	showProgress := flag.Bool("progress", false, "render a single-line live progress indicator on stderr while the run executes")
	engine := flag.String("engine", "pipelined", "host execution engine: pipelined (dependency-driven task graph) | barrier (three barriered phases); results are identical")
	memBudget := flag.String("mem-budget", "", "cap tracked shuffle/statistics memory at this size (e.g. 64M, 2G; K/M/G suffixes), spilling compressed runs to disk when exceeded; results are identical")
	spillDir := flag.String("spill-dir", "", "directory for spill files (default system temp; only used with -mem-budget)")
	distN := flag.Int("dist", 0, "single-machine distributed run: fork this many worker processes and lease every task execution to them over RPC; results are byte-identical to an in-process run")
	masterMode := flag.Bool("master", false, "run as a distributed master: serve task leases on -listen, execute nothing locally (start workers with the same resolution flags plus -worker -connect)")
	workerMode := flag.Bool("worker", false, "run as a distributed worker: connect to the master at -connect, execute leased tasks, write no output")
	listenAddr := flag.String("listen", "127.0.0.1:0", "master RPC endpoint: host:port, or unix:/path for a unix socket")
	connectAddr := flag.String("connect", "", "master endpoint for -worker, in -listen notation")
	leaseTTL := flag.Duration("lease-ttl", 0, "declare a worker dead after this long without a heartbeat and re-lease its outstanding tasks (default 10s)")
	workerDie := flag.Int("worker-die-after", 0, "fault harness: a worker exits abruptly after taking this many task leases; in -dist mode, applied to the first forked worker")
	flag.Parse()

	if *statusAddr != "" && *pprofAddr != "" {
		log.Fatal("-pprof is a deprecated alias of -status: pass one of them, not both")
	}
	serveAddr := *statusAddr
	if serveAddr == "" {
		serveAddr = *pprofAddr
	}

	modes := 0
	for _, on := range []bool{*distN > 0, *masterMode, *workerMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		log.Fatal("-dist, -master, and -worker are mutually exclusive")
	}
	distActive := modes == 1
	if *workerMode && *connectAddr == "" {
		log.Fatal("-worker requires -connect ADDR")
	}
	if *connectAddr != "" && !*workerMode {
		log.Fatal("-connect only applies to -worker mode")
	}
	if distActive {
		if *engine != "pipelined" {
			log.Fatal("distributed modes require the pipelined engine")
		}
		if *memBudget != "" {
			log.Fatal("distributed modes are incompatible with -mem-budget (run files are the out-of-core path)")
		}
	}
	var (
		tracer  *proger.Tracer
		metrics *proger.MetricsRegistry
		qrec    *proger.QualityRecorder
	)
	if *tracePath != "" {
		tracer = proger.NewTracer()
	}
	if *metricsPath != "" || *showReport || serveAddr != "" || *workerMode {
		// Workers always keep a registry: its counters feed the telemetry
		// snapshot each heartbeat ships to the master's fleet table.
		metrics = proger.NewMetricsRegistry()
	}
	if *qualityOut != "" || *showReport || serveAddr != "" {
		qrec = proger.NewQualityRecorder()
	}

	var elog *proger.LiveEventLog
	var eventsSink *bufio.Writer
	if *eventsPath != "" {
		w := io.Writer(os.Stderr)
		if *eventsPath != "-" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			eventsSink = bufio.NewWriter(f)
			w = eventsSink
		}
		elog = proger.NewLiveEventLog(w)
	}
	// A worker without its own -events file still emits: into a relay
	// log whose lines ship to the master with each heartbeat and merge
	// into the master's -events file under this worker's proc identity.
	// (If the master keeps no event log, drained lines are discarded.)
	var relay *proger.LiveEventLog
	if *workerMode && elog == nil {
		relay = proger.NewRelayEventLog(0)
	}
	var lvRun *proger.LiveRun
	if serveAddr != "" || elog != nil || relay != nil || *showProgress || *showReport {
		// -report also wants a live hub: the run summary's membudget
		// pressure section reads the attached manager's snapshot.
		runLog := elog
		if relay != nil {
			runLog = relay
		}
		lvRun = proger.NewLiveRun(runLog)
	}
	var statusSrv *proger.StatusServer
	if serveAddr != "" {
		srv, err := proger.ServeStatus(serveAddr, lvRun, metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		statusSrv = srv
		fmt.Fprintf(os.Stderr, "proger: status listening on http://%s/\n", srv.Addr())
	}

	var (
		injector proger.FaultInjector
		retry    proger.RetryPolicy
	)
	if *faultRate > 0 {
		injector = proger.NewSeededFaults(*faultSeed, *faultRate)
		retry = proger.RetryPolicy{MaxRetries: *maxRetries, Speculation: true}
	}
	execMode := pickEngine(*engine)
	budgetBytes := parseSize(*memBudget)
	if budgetBytes > 0 && metrics == nil {
		// The budget pressure summary reads registry gauges, so a budget
		// implies a registry even when no metrics output was requested.
		metrics = proger.NewMetricsRegistry()
	}

	ds, gt := loadDataset(*input, *generate, *n, *seed, *truthPath)
	fams := buildFamilies(ds, blocks, *generate)
	matcher := buildMatcher(ds, rules, *threshold, *generate)
	mechanism := pickMechanism(*mech)

	elog.Emit(proger.EventRunStart,
		proger.EventKV("entities", ds.Len()),
		proger.EventKV("mode", runMode(*basic)),
		proger.EventKV("machines", *machines),
		proger.EventKV("slots", *slots))
	renderer := (*proger.LiveProgressRenderer)(nil)
	if *showProgress {
		renderer = proger.StartLiveProgress(os.Stderr, lvRun, 0)
	}

	// Distributed transport. The master is created only after run.start
	// is emitted, so every worker.register/lease event lands inside the
	// run envelope; it is closed again before run.end.
	var (
		transport proger.TaskTransport
		dmaster   *dist.Master
		dworker   *dist.Worker
		children  []*exec.Cmd
	)
	switch {
	case *workerMode:
		w, werr := dist.NewWorker(dist.WorkerOptions{
			Connect:    *connectAddr,
			OnLease:    dieAfter(*workerDie),
			Relay:      relay,
			Metrics:    metrics,
			StatusAddr: statusSrv.Addr(),
		})
		if werr != nil {
			log.Fatal(werr)
		}
		dworker, transport = w, w
	case *masterMode, *distN > 0:
		m, merr := dist.NewMaster(dist.MasterOptions{
			Listen:   *listenAddr,
			LeaseTTL: *leaseTTL,
			Metrics:  metrics,
			Log:      elog,
		})
		if merr != nil {
			log.Fatal(merr)
		}
		dmaster, transport = m, m
		// The master's fleet table backs the status server's /fleet
		// endpoint and the -report fleet summary.
		lvRun.AttachFleet(m)
		if *masterMode {
			fmt.Fprintf(os.Stderr, "proger: master serving task leases on %s\n", m.Addr())
		}
		children = forkWorkers(*distN, m.Addr(), *workerDie, serveAddr != "")
	}

	var (
		res *proger.Result
		err error
	)
	if *basic {
		res, err = proger.ResolveBasic(ds, proger.BasicOptions{
			Families:         fams,
			Matcher:          matcher,
			Mechanism:        mechanism,
			Window:           *window,
			PopcornThreshold: *popcorn,
			Machines:         *machines,
			SlotsPerMachine:  *slots,
			Execution:        execMode,
			Transport:        transport,
			Faults:           injector,
			Retry:            retry,
			Trace:            tracer,
			Metrics:          metrics,
			Quality:          qrec,
			Live:             lvRun,
			MemBudget:        budgetBytes,
			SpillDir:         *spillDir,
		})
	} else {
		opts := proger.Options{
			Families:        fams,
			Matcher:         matcher,
			Mechanism:       mechanism,
			Policy:          pickPolicy(*generate),
			Machines:        *machines,
			SlotsPerMachine: *slots,
			Scheduler:       pickScheduler(*scheduler),
			Execution:       execMode,
			Transport:       transport,
			Faults:          injector,
			Retry:           retry,
			Trace:           tracer,
			Metrics:         metrics,
			Quality:         qrec,
			Live:            lvRun,
			MemBudget:       budgetBytes,
			SpillDir:        *spillDir,
		}
		if gt != nil {
			// Train the duplicate model on a disjoint sample when the
			// workload is synthetic (we can regenerate with a new seed).
			if tds, tgt := trainSet(*generate, *n, *seed); tds != nil {
				opts.DupModel = proger.TrainDupModel(tds, tgt, buildFamilies(tds, blocks, *generate))
			}
		}
		res, err = proger.Resolve(ds, opts)
	}
	lvRun.Finish(err)
	renderer.Stop()
	// Wind the fleet down before run.end so every distributed event
	// precedes it. Forked children are reaped first — they exit on
	// their own once their drivers fetch the final broadcast — so the
	// master's Close drain (which waits for worker goodbyes) is
	// instant; a worker says goodbye and disconnects.
	if dmaster != nil {
		for _, c := range children {
			c.Wait() // exit statuses are the fleet's business, not ours
		}
		dmaster.Close()
	}
	if dworker != nil {
		dworker.Close()
	}
	if err != nil {
		elog.Emit(proger.EventRunEnd, proger.EventKV("error", err.Error()))
		flushEvents(eventsSink)
		log.Fatal(err)
	}
	elog.Emit(proger.EventRunEnd,
		proger.EventKV("dups", len(res.Duplicates)),
		proger.EventKV("total_cost", res.TotalTime))
	flushEvents(eventsSink)

	if *workerMode {
		// A worker computes the same Result as the master (that is the
		// lockstep contract) but the master's process owns every output.
		return
	}

	writePairs(*out, res)
	if *clustersOut != "" {
		writeClusters(*clustersOut, res, ds.Len())
	}
	fmt.Fprintf(os.Stderr, "proger: %d duplicate pairs in %.0f simulated cost units\n",
		len(res.Duplicates), res.TotalTime)
	if budgetBytes > 0 && metrics != nil {
		fmt.Fprintf(os.Stderr, "proger: memory budget %d B: peak %.0f B tracked, %.0f B charged, %d forced spills (%.0f B spilled)\n",
			budgetBytes,
			metrics.Gauge(proger.GaugeMemBudgetPeakBytes).Value(),
			metrics.Gauge(proger.GaugeMemBudgetChargedBytes).Value(),
			metrics.Counter(proger.CounterBudgetForcedSpills).Value(),
			float64(metrics.Counter(proger.CounterBudgetSpilledBytes).Value()))
	}
	if *showReport {
		printReport(res)
		if err := report.WriteRunSummary(os.Stderr, tracer, metrics, qrec, lvRun.Budget(), lvRun.Fleet()); err != nil {
			log.Fatal(err)
		}
	}
	if *tracePath != "" {
		writeFileWith(*tracePath, tracer.WriteChromeTrace)
		fmt.Fprintf(os.Stderr, "proger: wrote %d trace spans to %s\n", tracer.Len(), *tracePath)
	}
	if *metricsPath != "" {
		writeFileWith(*metricsPath, metrics.WritePrometheus)
		fmt.Fprintf(os.Stderr, "proger: wrote metrics to %s\n", *metricsPath)
	}
	if *qualityOut != "" {
		exp := qrec.Export(proger.CostUnits(*sampleEvery))
		if strings.HasSuffix(*qualityOut, ".csv") {
			writeFileWith(*qualityOut, exp.Curve.WriteCSV)
		} else {
			writeFileWith(*qualityOut, exp.WriteJSON)
		}
		fmt.Fprintf(os.Stderr, "proger: wrote quality telemetry (%d curve points, %d calibration rows, AUC %.3f) to %s\n",
			len(exp.Curve.Points), len(exp.Calibration.Blocks), exp.Curve.AUC, *qualityOut)
	}
	if *segmentsDir != "" {
		nFiles, err := report.WriteSegments(res.Job2, *alpha, *segmentsDir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "proger: wrote %d incremental segment files to %s\n", nFiles, *segmentsDir)
	}

	if gt != nil {
		curve := proger.BuildCurve(res.EventsAgainst(gt.IsDup), gt.NumDupPairs(), res.TotalTime)
		fmt.Fprintf(os.Stderr, "proger: final duplicate recall %.3f (of %d true pairs)\n",
			curve.FinalRecall(), gt.NumDupPairs())
		for i := 1; i <= *curvePoints; i++ {
			at := res.TotalTime * proger.CostUnits(i) / proger.CostUnits(*curvePoints)
			fmt.Fprintf(os.Stderr, "proger:   t=%12.0f  recall=%.3f\n", at, curve.RecallAt(at))
		}
	}
}

func loadDataset(input, generate string, n int, seed int64, truthPath string) (*proger.Dataset, *proger.GroundTruth) {
	switch {
	case input != "" && generate != "":
		log.Fatal("-input and -generate are mutually exclusive")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		ds, err := proger.ReadTSV(f)
		if err != nil {
			log.Fatal(err)
		}
		var gt *proger.GroundTruth
		if truthPath != "" {
			tf, err := os.Open(truthPath)
			if err != nil {
				log.Fatal(err)
			}
			defer tf.Close()
			if gt, err = datagen.ReadGroundTruth(tf); err != nil {
				log.Fatal(err)
			}
		}
		return ds, gt
	case generate == "publications":
		ds, gt := proger.GeneratePublications(n, seed)
		return ds, gt
	case generate == "books":
		ds, gt := proger.GenerateBooks(n, seed)
		return ds, gt
	case generate == "people":
		ds, gt := proger.GeneratePeople()
		return ds, gt
	case generate == "persons":
		ds, gt := datagen.PersonRecords(datagen.DefaultPeople(n, seed))
		return ds, gt
	}
	log.Fatal("need -input FILE or -generate publications|books|people|persons")
	return nil, nil
}

func buildFamilies(ds *proger.Dataset, blocks stringList, generate string) proger.Families {
	if len(blocks) == 0 {
		switch generate {
		case "publications":
			return proger.CiteSeerXFamilies(ds.Schema)
		case "books":
			return proger.OLBooksFamilies(ds.Schema)
		case "people":
			return proger.Families{
				{Name: "X", Attr: 0, PrefixLens: []int{2, 3, 5}, Index: 1},
				{Name: "Y", Attr: 1, PrefixLens: []int{2}, Index: 2},
			}
		case "persons":
			idx := ds.Schema.Index
			return proger.Families{
				{Name: "S", Attr: idx("name"), PrefixLens: []int{1, 2, 4}, Index: 1, Kind: proger.KeySoundex},
				{Name: "C", Attr: idx("city"), PrefixLens: []int{3, 5}, Index: 2},
				{Name: "T", Attr: idx("state"), PrefixLens: []int{2}, Index: 3},
			}
		}
		log.Fatal("custom datasets need at least one -block attr:len1,len2,...")
	}
	fams := make(proger.Families, 0, len(blocks))
	for i, spec := range blocks {
		attr, rest, ok := strings.Cut(spec, ":")
		if !ok {
			log.Fatalf("bad -block %q (want attr:len1,len2,... or attr:soundex:len1,...)", spec)
		}
		idx := ds.Schema.Index(attr)
		if idx < 0 {
			log.Fatalf("-block %q: attribute %q not in schema %v", spec, attr, ds.Schema.Attributes)
		}
		kind := proger.KeyPrefix
		if kindName, lensPart, hasKind := strings.Cut(rest, ":"); hasKind {
			switch kindName {
			case "prefix":
				kind = proger.KeyPrefix
			case "soundex":
				kind = proger.KeySoundex
			default:
				log.Fatalf("-block %q: unknown key kind %q (want prefix or soundex)", spec, kindName)
			}
			rest = lensPart
		}
		var lens []int
		for _, p := range strings.Split(rest, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 1 {
				log.Fatalf("bad -block prefix length %q", p)
			}
			lens = append(lens, v)
		}
		fams = append(fams, &proger.Family{
			Name:       fmt.Sprintf("F%d(%s)", i+1, attr),
			Attr:       idx,
			PrefixLens: lens,
			Index:      i + 1,
			Kind:       kind,
		})
	}
	if err := fams.Validate(); err != nil {
		log.Fatal(err)
	}
	return fams
}

func buildMatcher(ds *proger.Dataset, rules stringList, threshold float64, generate string) *proger.Matcher {
	if len(rules) == 0 {
		switch generate {
		case "publications":
			return proger.MustMatcher(0.75,
				proger.Rule{Attr: ds.Schema.Index("title"), Weight: 0.5, Kind: proger.EditDistance},
				proger.Rule{Attr: ds.Schema.Index("abstract"), Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
				proger.Rule{Attr: ds.Schema.Index("venue"), Weight: 0.2, Kind: proger.EditDistance},
			)
		case "books":
			idx := ds.Schema.Index
			return proger.MustMatcher(0.62,
				proger.Rule{Attr: idx("title"), Weight: 0.35, Kind: proger.EditDistance},
				proger.Rule{Attr: idx("authors"), Weight: 0.25, Kind: proger.EditDistance},
				proger.Rule{Attr: idx("publisher"), Weight: 0.10, Kind: proger.EditDistance},
				proger.Rule{Attr: idx("year"), Weight: 0.08, Kind: proger.ExactMatch},
				proger.Rule{Attr: idx("language"), Weight: 0.06, Kind: proger.ExactMatch},
				proger.Rule{Attr: idx("format"), Weight: 0.05, Kind: proger.ExactMatch},
				proger.Rule{Attr: idx("pages"), Weight: 0.05, Kind: proger.ExactMatch},
				proger.Rule{Attr: idx("edition"), Weight: 0.06, Kind: proger.ExactMatch},
			)
		case "people":
			return proger.MustMatcher(0.75,
				proger.Rule{Attr: 0, Weight: 0.8, Kind: proger.EditDistance},
				proger.Rule{Attr: 1, Weight: 0.2, Kind: proger.EditDistance},
			)
		case "persons":
			idx := ds.Schema.Index
			return proger.MustMatcher(0.78,
				proger.Rule{Attr: idx("name"), Weight: 0.55, Kind: proger.EditDistance},
				proger.Rule{Attr: idx("city"), Weight: 0.20, Kind: proger.EditDistance},
				proger.Rule{Attr: idx("state"), Weight: 0.10, Kind: proger.ExactMatch},
				proger.Rule{Attr: idx("phone"), Weight: 0.15, Kind: proger.ExactMatch},
			)
		}
		log.Fatal("custom datasets need at least one -rule attr:kind:weight")
	}
	parsed := make([]proger.Rule, 0, len(rules))
	for _, spec := range rules {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 && len(parts) != 4 {
			log.Fatalf("bad -rule %q (want attr:kind:weight[:maxchars])", spec)
		}
		idx := ds.Schema.Index(parts[0])
		if idx < 0 {
			log.Fatalf("-rule %q: attribute %q not in schema %v", spec, parts[0], ds.Schema.Attributes)
		}
		var kind proger.SimKind
		switch parts[1] {
		case "edit":
			kind = proger.EditDistance
		case "exact":
			kind = proger.ExactMatch
		case "jaro":
			kind = proger.JaroWinklerSim
		case "jaccard":
			kind = proger.JaccardQ2
		case "cosine":
			kind = proger.TokenCosine
		default:
			log.Fatalf("-rule %q: unknown kind %q", spec, parts[1])
		}
		weight, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			log.Fatalf("-rule %q: bad weight", spec)
		}
		rule := proger.Rule{Attr: idx, Kind: kind, Weight: weight}
		if len(parts) == 4 {
			mc, err := strconv.Atoi(parts[3])
			if err != nil || mc < 1 {
				log.Fatalf("-rule %q: bad maxchars", spec)
			}
			rule.MaxChars = mc
		}
		parsed = append(parsed, rule)
	}
	m, err := proger.NewMatcher(threshold, parsed...)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func pickMechanism(name string) proger.Mechanism {
	switch name {
	case "sn":
		return proger.SN
	case "psnm":
		return proger.PSNM
	}
	log.Fatalf("unknown mechanism %q (want sn or psnm)", name)
	return nil
}

func pickScheduler(name string) proger.SchedulerKind {
	switch name {
	case "ours":
		return proger.SchedulerOurs
	case "nosplit":
		return proger.SchedulerNoSplit
	case "lpt":
		return proger.SchedulerLPT
	}
	log.Fatalf("unknown scheduler %q (want ours, nosplit, or lpt)", name)
	return proger.SchedulerOurs
}

// parseSize parses a byte size with an optional K/M/G suffix ("64M",
// "2G", "512"). Empty means no budget.
func parseSize(s string) int64 {
	if s == "" {
		return 0
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v <= 0 {
		log.Fatalf("bad -mem-budget %q (want a positive size like 512K, 64M, or 2G)", s)
	}
	return v * mult
}

func pickEngine(name string) proger.ExecutionMode {
	switch name {
	case "pipelined":
		return proger.ExecPipelined
	case "barrier":
		return proger.ExecBarrier
	}
	log.Fatalf("unknown engine %q (want pipelined or barrier)", name)
	return proger.ExecPipelined
}

func pickPolicy(generate string) proger.Policy {
	if generate == "books" {
		return proger.OLBooksPolicy()
	}
	return proger.CiteSeerXPolicy()
}

func trainSet(generate string, n int, seed int64) (*proger.Dataset, *proger.GroundTruth) {
	tn := n / 4
	if tn < 500 {
		tn = 500
	}
	switch generate {
	case "publications":
		ds, gt := proger.GeneratePublications(tn, seed+100000)
		return ds, gt
	case "books":
		ds, gt := proger.GenerateBooks(tn, seed+100000)
		return ds, gt
	}
	return nil, nil
}

func printReport(res *proger.Result) {
	if res.Job1 != nil {
		fmt.Fprint(os.Stderr, report.Summarize("job1-progressive-blocking", res.Job1).Render())
	}
	if res.Job2 != nil {
		fmt.Fprint(os.Stderr, report.Summarize("job2-progressive-resolution", res.Job2).Render())
		fmt.Fprint(os.Stderr, report.Timeline(res.Job2, 64))
	}
	fmt.Fprintln(os.Stderr, "counters:")
	fmt.Fprint(os.Stderr, report.Counters(res.Counters))
	if res.Schedule != nil {
		costs := map[string]costmodel.Units{}
		for _, blocks := range res.Schedule.TaskBlocks {
			for _, b := range blocks {
				costs[b.ID.String()] = b.CostEst
			}
		}
		fmt.Fprintln(os.Stderr, "most expensive blocks:")
		fmt.Fprint(os.Stderr, report.TopBlocks(costs, 8))
	}
}

// writeFileWith creates path and streams write(f) into it.
func writeFileWith(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// dieAfter returns the -worker-die-after hook: exit(1) with a lease
// taken but never completed, so the master must detect the loss via
// heartbeat expiry and re-lease the task elsewhere.
func dieAfter(n int) func(int) {
	if n <= 0 {
		return nil
	}
	return func(taken int) {
		if taken > n {
			os.Exit(1)
		}
	}
}

// resolutionFlags are the flags every process in a fleet must agree
// on (plus the chaos knobs, which only the master's dispatch reads but
// cost nothing to mirror). Host-only flags — outputs, tracing, status
// server, worker counts — deliberately stay per-process.
var resolutionFlags = map[string]bool{
	"input": true, "generate": true, "n": true, "seed": true, "truth": true,
	"block": true, "rule": true, "match-threshold": true, "mechanism": true,
	"scheduler": true, "basic": true, "window": true, "popcorn": true,
	"machines": true, "slots": true, "engine": true,
	"fault-rate": true, "fault-seed": true, "max-retries": true,
}

// forkWorkers starts n copies of this binary in -worker mode against
// addr, forwarding every explicitly-set resolution flag so the fleet's
// drivers derive identical job configurations. dieAt > 0 arms the
// first worker's -worker-die-after harness. withStatus gives each
// child its own status server on a free port (the address lands in
// the master's /fleet via registration). Each child's stderr is
// prefixed "w<i>: " by fork ordinal — normally the master-assigned
// worker ID too, though a registration race can order IDs differently.
func forkWorkers(n int, addr string, dieAt int, withStatus bool) []*exec.Cmd {
	if n <= 0 {
		return nil
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	var forwarded []string
	flag.Visit(func(f *flag.Flag) {
		if !resolutionFlags[f.Name] {
			return
		}
		if sl, ok := f.Value.(*stringList); ok {
			for _, v := range *sl {
				forwarded = append(forwarded, "-"+f.Name+"="+v)
			}
			return
		}
		forwarded = append(forwarded, "-"+f.Name+"="+f.Value.String())
	})
	children := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		args := []string{"-worker", "-connect=" + addr}
		if i == 0 && dieAt > 0 {
			args = append(args, fmt.Sprintf("-worker-die-after=%d", dieAt))
		}
		if withStatus {
			args = append(args, "-status=127.0.0.1:0")
		}
		args = append(args, forwarded...)
		c := exec.Command(exe, args...)
		pr, pw, err := os.Pipe()
		if err != nil {
			log.Fatal(err)
		}
		c.Stderr = pw
		if err := c.Start(); err != nil {
			log.Fatal(err)
		}
		pw.Close()
		go prefixLines(pr, fmt.Sprintf("w%d: ", i+1))
		children = append(children, c)
	}
	return children
}

// prefixLines copies r to stderr line by line with a prefix, so the
// fleet's interleaved chatter stays attributable.
func prefixLines(r io.ReadCloser, prefix string) {
	defer r.Close()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fmt.Fprintf(os.Stderr, "%s%s\n", prefix, sc.Bytes())
	}
}

func runMode(basic bool) string {
	if basic {
		return "basic"
	}
	return "pipeline"
}

// flushEvents flushes the buffered -events sink, if any.
func flushEvents(w *bufio.Writer) {
	if w == nil {
		return
	}
	if err := w.Flush(); err != nil {
		log.Printf("event log: %v", err)
	}
}

func writeClusters(path string, res *proger.Result, n int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := clustering.WriteClusters(f, res.Clusters(n)); err != nil {
		log.Fatal(err)
	}
}

func writePairs(out string, res *proger.Result) {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#lo\thi\ttime")
	for _, ev := range res.Events {
		fmt.Fprintf(bw, "%d\t%d\t%.1f\n", ev.Pair.Lo, ev.Pair.Hi, ev.Time)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
}
