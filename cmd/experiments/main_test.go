package main

import (
	"reflect"
	"testing"
)

func TestParseMachines(t *testing.T) {
	if got := parseMachines(""); got != nil {
		t.Errorf("empty → %v", got)
	}
	if got := parseMachines("10,15, 20"); !reflect.DeepEqual(got, []int{10, 15, 20}) {
		t.Errorf("parseMachines = %v", got)
	}
	if got := parseMachines("5"); !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("single = %v", got)
	}
}

func TestFirstOr(t *testing.T) {
	if firstOr(nil, 7) != 7 {
		t.Error("default not used")
	}
	if firstOr([]int{3, 9}, 7) != 3 {
		t.Error("first not used")
	}
}
