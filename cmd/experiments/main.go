// Command experiments regenerates every table and figure of the
// paper's evaluation section (§VI) and prints the same rows/series the
// paper reports, in plain aligned text.
//
// Usage:
//
//	experiments fig1   [-entities 4000] [-machines 10]
//	experiments fig8   [-entities 4000] [-machines 10] [-seed 8]
//	experiments table3 [-entities 4000] [-machines 10]
//	experiments fig9   [-entities 4000] [-machines 10,15,20]
//	experiments fig10  [-entities 6000] [-machines 20,10,5]
//	experiments fig11  [-entities 6000] [-machines 5,10,15,20,25]
//	experiments ablation [-entities 4000]   (design-choice studies)
//	experiments all    [-entities N]
//
// All numbers are simulated cost units; the shapes (who wins, by what
// factor, where the crossovers fall) are the reproduction target — see
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"proger/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	entities := fs.Int("entities", 0, "dataset size (0 = experiment default)")
	machinesFlag := fs.String("machines", "", "comma-separated machine counts (experiment default if empty)")
	seed := fs.Int64("seed", 0, "generator seed (0 = experiment default)")
	points := fs.Int("points", 0, "curve grid points (0 = default)")
	plot := fs.Bool("plot", false, "render ASCII charts instead of data tables")
	fs.BoolVar(&jsonOut, "json", false, "emit figures and tables as JSON documents")
	if err := fs.Parse(os.Args[2:]); err != nil {
		log.Fatal(err)
	}
	machines := parseMachines(*machinesFlag)

	switch cmd {
	case "fig1":
		runFig1(*entities, firstOr(machines, 0), *seed, *points, *plot)
	case "fig8":
		runFig8(*entities, firstOr(machines, 0), *seed, *points, true, false, *plot)
	case "table3":
		runFig8(*entities, firstOr(machines, 0), *seed, *points, false, true, *plot)
	case "fig9":
		runFig9(*entities, machines, *seed, *points, *plot)
	case "fig10":
		runFig10(*entities, machines, *seed, *points, *plot)
	case "fig11":
		runFig11(*entities, machines, *seed)
	case "ablation":
		runAblation(*entities, firstOr(machines, 0), *seed, *points, *plot)
	case "all":
		runFig1(*entities, 0, *seed, *points, *plot)
		runFig8(*entities, 0, *seed, *points, true, true, *plot)
		runFig9(*entities, nil, *seed, *points, *plot)
		runFig10(*entities, nil, *seed, *points, *plot)
		runFig11(*entities, nil, *seed)
		runAblation(*entities, 0, *seed, *points, *plot)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments <fig1|fig8|table3|fig9|fig10|fig11|ablation|all> [flags]")
	os.Exit(2)
}

func parseMachines(s string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			log.Fatalf("bad -machines value %q", p)
		}
		out = append(out, v)
	}
	return out
}

func firstOr(xs []int, def int) int {
	if len(xs) > 0 {
		return xs[0]
	}
	return def
}

// jsonOut switches all figure/table output to JSON.
var jsonOut bool

func renderFig(fig *experiments.Figure, plot bool) {
	if jsonOut {
		if err := fig.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if plot {
		fmt.Println(fig.Plot(64, 16))
		return
	}
	fmt.Println(fig.Render())
}

func renderTable(t *experiments.Table) {
	if jsonOut {
		if err := t.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println(t.Render())
}

func runFig1(entities, machines int, seed int64, points int, plot bool) {
	fig, err := experiments.Fig1(experiments.Fig1Config{
		Entities: entities, Machines: machines, Seed: seed, GridPoints: points,
	})
	if err != nil {
		log.Fatal(err)
	}
	renderFig(fig, plot)
}

func runFig8(entities, machines int, seed int64, points int, figures, table, plot bool) {
	res, err := experiments.Fig8(experiments.Fig8Config{
		Entities: entities, Machines: machines, Seed: seed, GridPoints: points,
	})
	if err != nil {
		log.Fatal(err)
	}
	if figures {
		renderFig(res.Left, plot)
		renderFig(res.Mid, plot)
		renderFig(res.Right, plot)
	}
	if table {
		renderTable(res.TableIII)
	}
}

func runFig9(entities int, machines []int, seed int64, points int, plot bool) {
	res, err := experiments.Fig9(experiments.Fig9Config{
		Entities: entities, Machines: machines, Seed: seed, GridPoints: points,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, fig := range res.SubFigures {
		renderFig(fig, plot)
	}
}

func runFig10(entities int, machines []int, seed int64, points int, plot bool) {
	res, err := experiments.Fig10(experiments.Fig10Config{
		Entities: entities, Machines: machines, Seed: seed, GridPoints: points,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, fig := range res.SubFigures {
		renderFig(fig, plot)
	}
}

func runFig11(entities int, machines []int, seed int64) {
	res, err := experiments.Fig11(experiments.Fig11Config{
		Entities: entities, Machines: machines, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	renderTable(res.Table)
}

func runAblation(entities, machines int, seed int64, points int, plot bool) {
	res, err := experiments.Ablation(experiments.AblationConfig{
		Entities: entities, Machines: machines, Seed: seed, GridPoints: points,
	})
	if err != nil {
		log.Fatal(err)
	}
	renderFig(res.Mechanisms, plot)
	renderFig(res.Components, plot)
	renderTable(res.Summary)
}
