package proger_test

import (
	"fmt"

	"proger"
)

// ExampleResolve runs the full parallel progressive pipeline on the
// paper's Table-I toy dataset and prints the identified duplicates.
func ExampleResolve() {
	ds, _ := proger.GeneratePeople()
	res, err := proger.Resolve(ds, proger.Options{
		Families: proger.Families{
			{Name: "X", Attr: 0, PrefixLens: []int{2, 3, 5}, Index: 1},
			{Name: "Y", Attr: 1, PrefixLens: []int{2}, Index: 2},
		},
		Matcher: proger.MustMatcher(0.75,
			proger.Rule{Attr: 0, Weight: 0.8, Kind: proger.EditDistance},
			proger.Rule{Attr: 1, Weight: 0.2, Kind: proger.EditDistance},
		),
		Mechanism:       proger.SN,
		Policy:          proger.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, p := range res.Duplicates.Sorted() {
		fmt.Println(p)
	}
	// Output:
	// <e0,e1>
	// <e0,e2>
	// <e1,e2>
	// <e3,e4>
}

// ExampleResolveBasic runs the §II-C Basic baseline with the popcorn
// stopping scheme disabled (Basic F).
func ExampleResolveBasic() {
	ds, gt := proger.GeneratePeople()
	res, err := proger.ResolveBasic(ds, proger.BasicOptions{
		Families: proger.Families{
			{Name: "X", Attr: 0, PrefixLens: []int{2}, Index: 1},
			{Name: "Y", Attr: 1, PrefixLens: []int{2}, Index: 2},
		},
		Matcher: proger.MustMatcher(0.75,
			proger.Rule{Attr: 0, Weight: 0.8, Kind: proger.EditDistance},
			proger.Rule{Attr: 1, Weight: 0.2, Kind: proger.EditDistance},
		),
		Mechanism:        proger.SN,
		Window:           15,
		PopcornThreshold: -1,
		Machines:         2,
		SlotsPerMachine:  2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("found %d of %d true pairs\n", len(res.Duplicates), gt.NumDupPairs())
	// Output:
	// found 4 of 4 true pairs
}

// ExampleTransitiveClosure groups resolved pairs into entity clusters.
func ExampleTransitiveClosure() {
	pairs := proger.PairSet{}
	pairs.Add(proger.MakePair(0, 1))
	pairs.Add(proger.MakePair(1, 2))
	pairs.Add(proger.MakePair(4, 5))
	for _, cluster := range proger.TransitiveClosure(6, pairs) {
		fmt.Println(cluster)
	}
	// Output:
	// [0 1 2]
	// [3]
	// [4 5]
}
