#!/bin/sh
# Chaos gate: run the full pipeline under deterministic fault injection
# and assert the emitted duplicate pairs (with their simulated
# timestamps) AND the quality-telemetry export are byte-identical to
# the fault-free baseline. Exercises the attempt runtime end to end —
# retries, timeouts, speculation — across several rates and fault
# seeds. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run="go run ./cmd/proger -generate publications -n 1200 -seed 3 -machines 4"

echo "== chaos: baseline (fault-free) =="
$run -out "$tmp/base.tsv" -quality-out "$tmp/base.quality.json"

for rate in 0.2 0.5; do
    for seed in 1 7; do
        echo "== chaos: rate=$rate fault-seed=$seed =="
        $run -fault-rate "$rate" -fault-seed "$seed" -max-retries 4 \
            -out "$tmp/chaos.tsv" -quality-out "$tmp/chaos.quality.json"
        cmp "$tmp/base.tsv" "$tmp/chaos.tsv"
        cmp "$tmp/base.quality.json" "$tmp/chaos.quality.json"
    done
done

echo "chaos: OK"
