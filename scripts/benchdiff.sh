#!/bin/sh
# benchdiff.sh OLD NEW — compare two `go test -bench -benchmem` output
# files, benchstat-style: per benchmark name (CPU suffix stripped,
# repeated -count runs averaged), print old vs new ns/op, B/op, and
# allocs/op with percentage deltas. POSIX sh + awk only.
#
# Typical use (see `make bench-compare`): run the same benchmark tree
# under two configurations, normalize the sub-benchmark names so they
# line up, and diff:
#
#   go test -bench 'X/variantA' ... | sed 's|/variantA/|/|' > a.txt
#   go test -bench 'X/variantB' ... | sed 's|/variantB/|/|' > b.txt
#   scripts/benchdiff.sh a.txt b.txt
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 old.txt new.txt" >&2
    exit 2
fi
[ -r "$1" ] || { echo "benchdiff: cannot read $1" >&2; exit 2; }
[ -r "$2" ] || { echo "benchdiff: cannot read $2" >&2; exit 2; }

awk -v OLD="$1" -v NEW="$2" '
function ingest(file, which,    line, n, parts, name, i) {
    while ((getline line < file) > 0) {
        n = split(line, parts, /[ \t]+/)
        if (parts[1] !~ /^Benchmark/ || n < 4) continue
        name = parts[1]
        sub(/-[0-9]+$/, "", name) # strip GOMAXPROCS suffix
        names[name] = 1
        cnt[which, name]++
        for (i = 3; i + 1 <= n; i += 2)
            sum[which, name, parts[i + 1]] += parts[i]
    }
    close(file)
}
function have(which, name) { return cnt[which, name] > 0 }
function avg(which, name, unit) { return sum[which, name, unit] / cnt[which, name] }
function delta(o, v) {
    if (o == 0) return "n/a"
    return sprintf("%+.1f%%", (v - o) * 100 / o)
}
BEGIN {
    ingest(OLD, "o")
    ingest(NEW, "n")
    nunits = split("ns/op B/op allocs/op", ulist, " ")
    printf "%-52s %-10s %14s %14s %9s\n", "benchmark", "unit", "old", "new", "delta"
    # Sort names (simple exchange sort: benchmark lists are short).
    k = 0
    for (name in names) order[++k] = name
    for (i = 1; i <= k; i++)
        for (j = i + 1; j <= k; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= k; i++) {
        name = order[i]
        if (!have("o", name) || !have("n", name)) {
            printf "%-52s %-10s %14s %14s %9s\n", name, "-", \
                (have("o", name) ? "present" : "missing"), \
                (have("n", name) ? "present" : "missing"), "-"
            continue
        }
        for (u = 1; u <= nunits; u++) {
            unit = ulist[u]
            if ((("o" SUBSEP name SUBSEP unit) in sum) && (("n" SUBSEP name SUBSEP unit) in sum)) {
                o = avg("o", name, unit)
                v = avg("n", name, unit)
                printf "%-52s %-10s %14.0f %14.0f %9s\n", name, unit, o, v, delta(o, v)
            }
        }
    }
}
' </dev/null
