// Command tracecheck validates a Chrome trace-event JSON file produced
// by -trace: the file must parse, every event must carry a valid phase
// and non-negative timestamps, and the trace must contain spans for
// each pipeline stage (map, reduce, shuffle, schedule, resolve). Used
// by `make trace-demo` as a CI-grade sanity check.
//
// Usage: tracecheck FILE [required-cat ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE [required-cat ...]")
		os.Exit(2)
	}
	required := []string{"map", "reduce", "shuffle", "schedule", "resolve"}
	if len(os.Args) > 2 {
		required = os.Args[2:]
	}
	if err := check(os.Args[1], required); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
}

func check(path string, required []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tf); err != nil {
		return fmt.Errorf("%s: invalid trace JSON: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("%s: no traceEvents", path)
	}

	cats := map[string]int{}
	procs := map[int]string{}
	spans := 0
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" {
				return fmt.Errorf("event %d: unexpected metadata %q", i, ev.Name)
			}
			name, _ := ev.Args["name"].(string)
			if name == "" {
				return fmt.Errorf("event %d: process_name without args.name", i)
			}
			procs[ev.PID] = name
		case "X":
			if ev.Name == "" {
				return fmt.Errorf("event %d: span without a name", i)
			}
			if ev.Cat == "" {
				return fmt.Errorf("event %d (%q): span without a category", i, ev.Name)
			}
			if ev.TS < 0 || ev.Dur < 0 {
				return fmt.Errorf("event %d (%q): negative ts/dur (%g, %g)", i, ev.Name, ev.TS, ev.Dur)
			}
			if _, ok := procs[ev.PID]; !ok {
				return fmt.Errorf("event %d (%q): pid %d has no process_name metadata", i, ev.Name, ev.PID)
			}
			cats[ev.Cat]++
			spans++
		default:
			return fmt.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}

	var missing []string
	for _, cat := range required {
		if cats[cat] == 0 {
			missing = append(missing, cat)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: missing span categories %v (have %v)", path, missing, catNames(cats))
	}
	fmt.Printf("tracecheck: %s ok — %d spans, %d processes, categories %v\n",
		path, spans, len(procs), catNames(cats))
	return nil
}

func catNames(cats map[string]int) []string {
	names := make([]string, 0, len(cats))
	for c := range cats {
		names = append(names, fmt.Sprintf("%s:%d", c, cats[c]))
	}
	sort.Strings(names)
	return names
}
