// Command tracecheck validates a Chrome trace-event JSON file produced
// by -trace: the file must parse, every event must carry a valid phase
// and non-negative timestamps, and the trace must contain spans for
// each pipeline stage (map, reduce, shuffle, schedule, resolve). With
// -quality it additionally validates a quality-telemetry JSON export
// (from -quality-out): sample costs strictly increasing, recall
// non-decreasing within [0, 1], and AUC in [0, 1]. With -events it
// validates a structured JSON event log (from cmd/proger -events):
// one JSON object per line with a non-empty "event" name, segregated
// wall-clock fields only (no slog "time"/"level" keys), run.start
// first / run.end last, and per-(proc, job, phase) task accounting
// (done + failed never exceeds starts). The log may merge events from
// several processes: each line carries an optional "proc" identity key
// ("w<id>" for a forked worker, absent for the host process), "seq" is
// gap-free and strictly increasing per process, the run envelope
// (run.start/run.end) belongs to the host, a worker proc may only
// appear after the host logged its worker.register, and job accounting
// is strict for the host but relaxed for workers (a killed worker ends
// fewer jobs than it starts). Distributed-transport events
// (worker.register, lease, lease.expire) must carry their identity
// keys, leases imply a registered worker, and expiries never exceed
// grants — globally and per worker. Used by `make trace-demo` and
// scripts/check.sh as a CI-grade sanity check.
//
// Usage: tracecheck [-quality QUALITY_FILE] [-events EVENTS_FILE] [TRACE_FILE [required-cat ...]]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func main() {
	qualityPath := flag.String("quality", "", "quality-telemetry JSON export to validate")
	eventsPath := flag.String("events", "", "structured JSON event log to validate")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 && *qualityPath == "" && *eventsPath == "" {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-quality QUALITY_FILE] [-events EVENTS_FILE] [TRACE_FILE [required-cat ...]]")
		os.Exit(2)
	}
	if len(args) > 0 {
		required := []string{"map", "reduce", "shuffle", "schedule", "resolve"}
		if len(args) > 1 {
			required = args[1:]
		}
		if err := check(args[0], required); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			os.Exit(1)
		}
	}
	if *qualityPath != "" {
		if err := checkQuality(*qualityPath); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			os.Exit(1)
		}
	}
	if *eventsPath != "" {
		if err := checkEvents(*eventsPath); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			os.Exit(1)
		}
	}
}

// procRE matches the identity key of a forked worker's forwarded
// events; the host's own events carry no "proc" field at all.
var procRE = regexp.MustCompile(`^w([0-9]+)$`)

// checkEvents validates a structured JSON-lines event log, possibly
// merged from several processes (see the package comment for the
// multi-process grammar).
func checkEvents(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	type phaseKey struct{ proc, job, phase string }
	type jobKey struct{ proc, name string }
	starts := map[phaseKey]int{}
	dones := map[phaseKey]int{}
	jobStarts := map[jobKey]int{}
	jobEnds := map[jobKey]int{}
	names := map[string]int{}
	seqs := map[string]int{}     // per-proc last seq
	registered := map[int]bool{} // worker IDs seen in worker.register
	grants := map[int]int{}      // per-worker lease grants
	expiries := map[int]int{}    // per-worker lease expiries
	var first, last, lastProc string
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("%s: line %d: invalid JSON: %w", path, lines, err)
		}
		name, _ := ev["event"].(string)
		if name == "" {
			return fmt.Errorf("%s: line %d: missing event name", path, lines)
		}
		// Wall-clock data must stay in the segregated seq/wall_ms
		// fields; slog's default keys would leak nondeterminism into
		// the deterministic subset.
		for _, banned := range []string{"time", "level", "msg"} {
			if _, ok := ev[banned]; ok {
				return fmt.Errorf("%s: line %d (%s): leaked slog field %q", path, lines, name, banned)
			}
		}
		proc := ""
		if p, ok := ev["proc"]; ok {
			proc, _ = p.(string)
			m := procRE.FindStringSubmatch(proc)
			if m == nil {
				return fmt.Errorf("%s: line %d (%s): bad proc %v", path, lines, name, ev["proc"])
			}
			id, _ := strconv.Atoi(m[1])
			if !registered[id] {
				return fmt.Errorf("%s: line %d (%s): proc %q before worker.register", path, lines, name, proc)
			}
		}
		seq, ok := ev["seq"].(float64)
		if !ok || int(seq) != seqs[proc]+1 {
			return fmt.Errorf("%s: line %d (%s, proc %q): seq %v, want %d", path, lines, name, proc, ev["seq"], seqs[proc]+1)
		}
		seqs[proc] = int(seq)
		if ms, ok := ev["wall_ms"].(float64); !ok || ms < 0 {
			return fmt.Errorf("%s: line %d (%s): bad wall_ms %v", path, lines, name, ev["wall_ms"])
		}
		if first == "" {
			first, lastProc = name, proc
			if proc != "" {
				return fmt.Errorf("%s: line %d: first event from proc %q, want host run.start", path, lines, proc)
			}
		}
		last, lastProc = name, proc
		names[name]++
		job, _ := ev["job"].(string)
		phase, _ := ev["phase"].(string)
		switch name {
		case "job.start":
			jobStarts[jobKey{proc, job}]++
		case "job.end":
			jobEnds[jobKey{proc, job}]++
		case "task.start":
			starts[phaseKey{proc, job, phase}]++
		case "task.done", "task.failed":
			dones[phaseKey{proc, job, phase}]++
		case "worker.register":
			id, ok := ev["worker"].(float64)
			if !ok {
				return fmt.Errorf("%s: line %d (%s): missing worker id", path, lines, name)
			}
			if proc != "" {
				return fmt.Errorf("%s: line %d (%s): registration must come from the host, got proc %q", path, lines, name, proc)
			}
			registered[int(id)] = true
		case "lease", "lease.expire":
			for _, key := range []string{"worker", "lease", "task"} {
				if _, ok := ev[key].(float64); !ok {
					return fmt.Errorf("%s: line %d (%s): missing %q", path, lines, name, key)
				}
			}
			id := int(ev["worker"].(float64))
			if name == "lease" {
				grants[id]++
			} else {
				expiries[id]++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("%s: empty event log", path)
	}
	if first != "run.start" {
		return fmt.Errorf("%s: first event %q, want run.start", path, first)
	}
	if last != "run.end" || lastProc != "" {
		return fmt.Errorf("%s: last event %q (proc %q), want host run.end", path, last, lastProc)
	}
	if names["job.start"] == 0 {
		return fmt.Errorf("%s: no job.start events", path)
	}
	// Job accounting is strict for the host; a worker killed mid-run
	// legitimately forwards fewer job.end events than job.start ones.
	for k, n := range jobStarts {
		e := jobEnds[k]
		if k.proc == "" && e != n {
			return fmt.Errorf("%s: job %q: %d job.start vs %d job.end", path, k.name, n, e)
		}
		if e > n {
			return fmt.Errorf("%s: proc %q job %q: %d job.end exceed %d job.start", path, k.proc, k.name, e, n)
		}
	}
	for k, e := range jobEnds {
		if jobStarts[k] == 0 {
			return fmt.Errorf("%s: proc %q job %q: %d job.end without job.start", path, k.proc, k.name, e)
		}
	}
	for k, n := range dones {
		if s := starts[k]; n > s {
			return fmt.Errorf("%s: proc %q %s/%s: %d task completions exceed %d starts", path, k.proc, k.job, k.phase, n, s)
		}
	}
	// Distributed-transport events: a lease cannot exist without a
	// registered worker, and expiries are a subset of grants — per
	// worker and therefore globally.
	if names["lease"] > 0 && names["worker.register"] == 0 {
		return fmt.Errorf("%s: %d leases but no worker.register", path, names["lease"])
	}
	for id, g := range grants {
		if !registered[id] {
			return fmt.Errorf("%s: worker %d: %d leases without worker.register", path, id, g)
		}
	}
	for id, e := range expiries {
		if g := grants[id]; e > g {
			return fmt.Errorf("%s: worker %d: %d lease expiries exceed %d grants", path, id, e, g)
		}
	}
	fmt.Printf("tracecheck: %s ok — %d events (%d task starts), %d jobs, %d procs, kinds %v\n",
		path, lines, names["task.start"], names["job.start"], len(seqs), catNames(names))
	return nil
}

// qualityFile mirrors the JSON shape of quality.Export — only the
// fields the checks need.
type qualityFile struct {
	Curve struct {
		SampleEvery float64 `json:"sample_every"`
		End         float64 `json:"end"`
		FinalBlocks int64   `json:"final_blocks"`
		FinalDups   int64   `json:"final_dups"`
		AUC         float64 `json:"auc"`
		Points      []struct {
			Cost   float64 `json:"cost"`
			Dups   int64   `json:"dups"`
			Recall float64 `json:"recall"`
		} `json:"points"`
	} `json:"curve"`
	Calibration struct {
		Blocks []struct {
			SQ int64 `json:"sq"`
		} `json:"blocks"`
		Tasks []struct {
			Task int `json:"task"`
		} `json:"tasks"`
	} `json:"calibration"`
}

// checkQuality validates the invariants every quality export must hold:
// strictly increasing sample costs, recall non-decreasing within
// [0, 1] and ending at 1 when any duplicate was found, AUC in [0, 1].
func checkQuality(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var qf qualityFile
	if err := json.Unmarshal(data, &qf); err != nil {
		return fmt.Errorf("%s: invalid quality JSON: %w", path, err)
	}
	c := qf.Curve
	if c.AUC < 0 || c.AUC > 1 {
		return fmt.Errorf("%s: AUC %g outside [0, 1]", path, c.AUC)
	}
	prevCost := -1.0
	prevRecall := 0.0
	for i, p := range c.Points {
		if p.Cost <= prevCost {
			return fmt.Errorf("%s: point %d cost %g not strictly increasing (previous %g)", path, i, p.Cost, prevCost)
		}
		if p.Recall < prevRecall || p.Recall < 0 || p.Recall > 1 {
			return fmt.Errorf("%s: point %d recall %g not non-decreasing in [0, 1] (previous %g)", path, i, p.Recall, prevRecall)
		}
		prevCost, prevRecall = p.Cost, p.Recall
	}
	if n := len(c.Points); n > 0 {
		if last := c.Points[n-1]; last.Cost != c.End {
			return fmt.Errorf("%s: last sample at %g, want end %g", path, last.Cost, c.End)
		} else if c.FinalDups > 0 && last.Recall != 1 {
			return fmt.Errorf("%s: final recall %g, want 1", path, last.Recall)
		}
	}
	fmt.Printf("tracecheck: %s ok — %d samples over [0, %g], AUC %.3f, %d calibration rows, %d task rows\n",
		path, len(c.Points), c.End, c.AUC, len(qf.Calibration.Blocks), len(qf.Calibration.Tasks))
	return nil
}

func check(path string, required []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tf); err != nil {
		return fmt.Errorf("%s: invalid trace JSON: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("%s: no traceEvents", path)
	}

	cats := map[string]int{}
	procs := map[int]string{}
	spans := 0
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" {
				return fmt.Errorf("event %d: unexpected metadata %q", i, ev.Name)
			}
			name, _ := ev.Args["name"].(string)
			if name == "" {
				return fmt.Errorf("event %d: process_name without args.name", i)
			}
			procs[ev.PID] = name
		case "X":
			if ev.Name == "" {
				return fmt.Errorf("event %d: span without a name", i)
			}
			if ev.Cat == "" {
				return fmt.Errorf("event %d (%q): span without a category", i, ev.Name)
			}
			if ev.TS < 0 || ev.Dur < 0 {
				return fmt.Errorf("event %d (%q): negative ts/dur (%g, %g)", i, ev.Name, ev.TS, ev.Dur)
			}
			if _, ok := procs[ev.PID]; !ok {
				return fmt.Errorf("event %d (%q): pid %d has no process_name metadata", i, ev.Name, ev.PID)
			}
			cats[ev.Cat]++
			spans++
		default:
			return fmt.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}

	var missing []string
	for _, cat := range required {
		if cats[cat] == 0 {
			missing = append(missing, cat)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: missing span categories %v (have %v)", path, missing, catNames(cats))
	}
	fmt.Printf("tracecheck: %s ok — %d spans, %d processes, categories %v\n",
		path, spans, len(procs), catNames(cats))
	return nil
}

func catNames(cats map[string]int) []string {
	names := make([]string, 0, len(cats))
	for c := range cats {
		names = append(names, fmt.Sprintf("%s:%d", c, cats[c]))
	}
	sort.Strings(names)
	return names
}
