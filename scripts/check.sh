#!/bin/sh
# The repo's standard verification gate, equivalent to `make check`:
# gofmt cleanliness, go vet (plus staticcheck when installed), a
# telemetry-key lint, full build, and the race-enabled test suite. Run
# from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
    echo "gofmt needed on:"
    echo "$out"
    exit 1
fi

echo "== go vet =="
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
else
    echo "== staticcheck == (skipped: not installed)"
fi

# Telemetry keys — counters, gauges, histograms, and structured event
# names alike — must be the exported constants (mapreduce.Counter*/
# Hist*, blocking.CounterJob1*, core.CounterJob2*/CounterBasic*/Gauge*,
# live.Event* / proger.Event*), never inline string literals — tests
# excepted, since they exercise arbitrary keys.
echo "== telemetry-key lint =="
# (log.Emit catches EventLog emissions — elog.Emit / r.log.Emit —
# without tripping on MapReduce Emitter.Emit KV calls.)
offenders="$(grep -rn --include='*.go' -E '\.Inc\("|Counters\.Get\("|\.Counter\("|\.Gauge\("|\.Histogram\("|log\.Emit\("' \
    internal cmd examples | grep -v '_test\.go:' || true)"
if [ -n "$offenders" ]; then
    echo "string-literal telemetry keys (use the exported constants):"
    echo "$offenders"
    exit 1
fi
# The distributed-transport instrument keys (mr.dist.* counters,
# mr_dist_* histograms) are declared once in counters.go; any other
# literal occurrence is a key that will silently drift from the
# constant.
dist_offenders="$(grep -rn --include='*.go' -E '"mr\.dist\.|"mr_dist_' \
    internal cmd examples | grep -v '_test\.go:' \
    | grep -v 'internal/mapreduce/counters\.go:' || true)"
if [ -n "$dist_offenders" ]; then
    echo "literal mr.dist telemetry keys (use the mapreduce.CounterDist*/HistDist* constants):"
    echo "$dist_offenders"
    exit 1
fi

echo "== go build =="
go build ./...

# Fast-fail on the fault-tolerance runtime before the full suite: the
# attempt layer is where host concurrency and retries interleave, so it
# gets a dedicated race-enabled pass.
echo "== go test -race (fault runtime) =="
go test -race -count=1 ./internal/mapreduce ./internal/faults

# The pipelined task-graph scheduler is the most concurrency-dense code
# in the repo (one shared pool, cross-phase interleaving, incremental
# merges); hammer it repeatedly under the race detector.
echo "== go test -race (pipelined scheduler) =="
go test -race -count=3 -run 'TaskGraph|Pipelined' ./internal/mapreduce

echo "== go test -race =="
go test -race ./...

# Bounded-memory smoke: the same workload with and without a tight
# memory budget must produce byte-identical duplicate pairs and quality
# telemetry, and the budget run must actually have spilled. The budget
# run additionally serves the live status server and writes the
# structured event log, so this one pass also gates the §13 live
# introspection layer: the endpoints must answer while the run is in
# flight, the mid-run scrape must be Prometheus text, the event log
# must validate, and none of it may perturb the byte-determinism cmp
# below.
echo "== bounded-memory + live-introspection smoke =="
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
go run ./cmd/proger -generate publications -n 1200 -seed 3 -machines 4 \
    -out "$smoke/base.tsv" -quality-out "$smoke/base-quality.json" 2>/dev/null
go run ./cmd/proger -generate publications -n 1200 -seed 3 -machines 4 \
    -mem-budget 64K -spill-dir "$smoke" -metrics-out "$smoke/budget.prom" \
    -status 127.0.0.1:0 -events "$smoke/events.jsonl" \
    -out "$smoke/budget.tsv" -quality-out "$smoke/budget-quality.json" \
    2>"$smoke/stderr.log" &
runpid=$!
# The binary prints "proger: status listening on http://ADDR/" as soon
# as the listener is bound; poll for it, then curl the endpoints while
# the run executes.
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's|^proger: status listening on http://\([^/]*\)/$|\1|p' "$smoke/stderr.log")"
    if [ -n "$addr" ]; then break; fi
    kill -0 "$runpid" 2>/dev/null || break
    sleep 0.1
done
[ -n "$addr" ] || { echo "status server never announced its address"; cat "$smoke/stderr.log"; exit 1; }
curl -fsS "http://$addr/healthz" | grep -q '^ok' || {
    echo "/healthz unhealthy during run"; exit 1; }
curl -fsS "http://$addr/progress" | grep -q '"jobs"' || {
    echo "/progress returned no snapshot"; exit 1; }
curl -fsS "http://$addr/metrics" > "$smoke/live.prom" || {
    echo "/metrics scrape failed"; exit 1; }
if grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$)' "$smoke/live.prom" | grep -q .; then
    echo "mid-run /metrics scrape is not valid Prometheus text:"; cat "$smoke/live.prom"; exit 1
fi
wait "$runpid" || { echo "budget run failed:"; cat "$smoke/stderr.log"; exit 1; }
go run ./scripts/tracecheck -events "$smoke/events.jsonl"
cmp "$smoke/base.tsv" "$smoke/budget.tsv" || {
    echo "bounded-memory run changed the duplicate pairs"; exit 1; }
cmp "$smoke/base-quality.json" "$smoke/budget-quality.json" || {
    echo "bounded-memory run changed the quality telemetry"; exit 1; }
grep -q '^mr_membudget_forced_spills [1-9]' "$smoke/budget.prom" || {
    echo "64K budget forced no spills — the smoke test is not exercising out-of-core paths"
    exit 1; }

# Distributed-transport smoke: the same workload run single-process and
# across real OS processes (master + 2 forked workers) must produce
# byte-identical pairs, trace, and quality telemetry — first clean,
# then with injected task faults AND a worker process that kills itself
# after its third lease, so the lease-expiry/re-lease path is exercised
# end to end. The event logs gate the dist event grammar through
# tracecheck — the clean run with full fleet observability on (status
# server, merged multi-process event log) — and must show actual lease
# traffic. The /fleet endpoint must report both forked workers while
# the run is in flight.
echo "== distributed transport smoke =="
go run ./cmd/proger -generate publications -n 1000 -seed 5 -machines 2 \
    -out "$smoke/dloc.tsv" -trace "$smoke/dloc-trace.json" \
    -quality-out "$smoke/dloc-quality.json" 2>/dev/null
go run ./cmd/proger -generate publications -n 1000 -seed 5 -machines 2 \
    -dist 2 -status 127.0.0.1:0 -events "$smoke/dist-events.jsonl" \
    -out "$smoke/ddist.tsv" -trace "$smoke/ddist-trace.json" \
    -quality-out "$smoke/ddist-quality.json" 2>"$smoke/dist-stderr.log" &
distpid=$!
# The master's announce line is unprefixed; forked workers' stderr is
# relayed under a "w<id>: " prefix, so the anchored sed only matches
# the master's own status address.
daddr=""
for _ in $(seq 1 100); do
    daddr="$(sed -n 's|^proger: status listening on http://\([^/]*\)/$|\1|p' "$smoke/dist-stderr.log" | head -n 1)"
    if [ -n "$daddr" ]; then break; fi
    kill -0 "$distpid" 2>/dev/null || break
    sleep 0.1
done
[ -n "$daddr" ] || { echo "dist master never announced its status address"; cat "$smoke/dist-stderr.log"; exit 1; }
fleet_ok=""
for _ in $(seq 1 100); do
    n="$(curl -fsS "http://$daddr/fleet" 2>/dev/null | grep -o '"id"' | wc -l)"
    if [ "$n" -ge 2 ]; then fleet_ok=1; break; fi
    kill -0 "$distpid" 2>/dev/null || break
    sleep 0.1
done
[ -n "$fleet_ok" ] || {
    echo "/fleet never reported 2 registered workers"; cat "$smoke/dist-stderr.log"; exit 1; }
wait "$distpid" || { echo "distributed run failed:"; cat "$smoke/dist-stderr.log"; exit 1; }
cmp "$smoke/dloc.tsv" "$smoke/ddist.tsv" || {
    echo "distributed run changed the duplicate pairs"; exit 1; }
cmp "$smoke/dloc-trace.json" "$smoke/ddist-trace.json" || {
    echo "distributed run changed the trace"; exit 1; }
cmp "$smoke/dloc-quality.json" "$smoke/ddist-quality.json" || {
    echo "distributed run changed the quality telemetry"; exit 1; }
go run ./scripts/tracecheck -events "$smoke/dist-events.jsonl"
grep -q '"event":"lease"' "$smoke/dist-events.jsonl" || {
    echo "distributed run granted no leases — the smoke test is not distributing work"; exit 1; }
go run ./cmd/proger -generate publications -n 1000 -seed 5 -machines 2 \
    -fault-rate 0.2 -fault-seed 7 \
    -out "$smoke/floc.tsv" -trace "$smoke/floc-trace.json" 2>/dev/null
go run ./cmd/proger -generate publications -n 1000 -seed 5 -machines 2 \
    -fault-rate 0.2 -fault-seed 7 \
    -dist 2 -worker-die-after 3 -lease-ttl 400ms -events "$smoke/fdist-events.jsonl" \
    -out "$smoke/fdist.tsv" -trace "$smoke/fdist-trace.json" 2>/dev/null
cmp "$smoke/floc.tsv" "$smoke/fdist.tsv" || {
    echo "worker loss changed the duplicate pairs"; exit 1; }
cmp "$smoke/floc-trace.json" "$smoke/fdist-trace.json" || {
    echo "worker loss changed the trace"; exit 1; }
go run ./scripts/tracecheck -events "$smoke/fdist-events.jsonl"
grep -q '"event":"lease.expire"' "$smoke/fdist-events.jsonl" || {
    echo "killed worker expired no leases — the smoke test is not exercising worker loss"; exit 1; }

echo "check: OK"
