#!/bin/sh
# The repo's standard verification gate, equivalent to `make check`:
# gofmt cleanliness, go vet, full build, and the race-enabled test
# suite. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
    echo "gofmt needed on:"
    echo "$out"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "check: OK"
