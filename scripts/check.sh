#!/bin/sh
# The repo's standard verification gate, equivalent to `make check`:
# gofmt cleanliness, go vet (plus staticcheck when installed), a
# telemetry-key lint, full build, and the race-enabled test suite. Run
# from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
    echo "gofmt needed on:"
    echo "$out"
    exit 1
fi

echo "== go vet =="
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
else
    echo "== staticcheck == (skipped: not installed)"
fi

# Telemetry keys — counters, gauges, and histograms alike — must be the
# exported constants (mapreduce.Counter*/Hist*, blocking.CounterJob1*,
# core.CounterJob2*/CounterBasic*/Gauge*), never inline string literals
# — tests excepted, since they exercise arbitrary keys.
echo "== telemetry-key lint =="
offenders="$(grep -rn --include='*.go' -E '\.Inc\("|Counters\.Get\("|\.Counter\("|\.Gauge\("|\.Histogram\("' \
    internal cmd examples | grep -v '_test\.go:' || true)"
if [ -n "$offenders" ]; then
    echo "string-literal telemetry keys (use the exported constants):"
    echo "$offenders"
    exit 1
fi

echo "== go build =="
go build ./...

# Fast-fail on the fault-tolerance runtime before the full suite: the
# attempt layer is where host concurrency and retries interleave, so it
# gets a dedicated race-enabled pass.
echo "== go test -race (fault runtime) =="
go test -race -count=1 ./internal/mapreduce ./internal/faults

# The pipelined task-graph scheduler is the most concurrency-dense code
# in the repo (one shared pool, cross-phase interleaving, incremental
# merges); hammer it repeatedly under the race detector.
echo "== go test -race (pipelined scheduler) =="
go test -race -count=3 -run 'TaskGraph|Pipelined' ./internal/mapreduce

echo "== go test -race =="
go test -race ./...

# Bounded-memory smoke: the same workload with and without a tight
# memory budget must produce byte-identical duplicate pairs and quality
# telemetry, and the budget run must actually have spilled.
echo "== bounded-memory smoke =="
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
go run ./cmd/proger -generate publications -n 1200 -seed 3 -machines 4 \
    -out "$smoke/base.tsv" -quality-out "$smoke/base-quality.json" 2>/dev/null
go run ./cmd/proger -generate publications -n 1200 -seed 3 -machines 4 \
    -mem-budget 64K -spill-dir "$smoke" -metrics-out "$smoke/budget.prom" \
    -out "$smoke/budget.tsv" -quality-out "$smoke/budget-quality.json" 2>/dev/null
cmp "$smoke/base.tsv" "$smoke/budget.tsv" || {
    echo "bounded-memory run changed the duplicate pairs"; exit 1; }
cmp "$smoke/base-quality.json" "$smoke/budget-quality.json" || {
    echo "bounded-memory run changed the quality telemetry"; exit 1; }
grep -q '^mr_membudget_forced_spills [1-9]' "$smoke/budget.prom" || {
    echo "64K budget forced no spills — the smoke test is not exercising out-of-core paths"
    exit 1; }

echo "check: OK"
