package proger_test

import (
	"bytes"
	"testing"

	"proger"
)

func TestPublicAPIQuickstart(t *testing.T) {
	ds, gt := proger.GeneratePeople()
	opts := proger.Options{
		Families: proger.Families{
			{Name: "X", Attr: 0, PrefixLens: []int{2, 3, 5}, Index: 1},
			{Name: "Y", Attr: 1, PrefixLens: []int{2}, Index: 2},
		},
		Matcher: proger.MustMatcher(0.75,
			proger.Rule{Attr: 0, Weight: 0.8, Kind: proger.EditDistance},
			proger.Rule{Attr: 1, Weight: 0.2, Kind: proger.EditDistance},
		),
		Mechanism:       proger.SN,
		Policy:          proger.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
		Scheduler:       proger.SchedulerOurs,
	}
	res, err := proger.Resolve(ds, opts)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if int64(len(res.Duplicates)) != gt.NumDupPairs() {
		t.Errorf("found %d duplicates, want %d", len(res.Duplicates), gt.NumDupPairs())
	}
	curve := proger.BuildCurve(res.EventsAgainst(gt.IsDup), gt.NumDupPairs(), res.TotalTime)
	if curve.FinalRecall() != 1 {
		t.Errorf("final recall %v on the toy dataset", curve.FinalRecall())
	}
}

func TestPublicAPIGenerateAndTSV(t *testing.T) {
	ds, gt := proger.GeneratePublications(400, 7)
	if ds.Len() < 400 || gt.NumDupPairs() == 0 {
		t.Fatal("generator broken via facade")
	}
	var buf bytes.Buffer
	if err := proger.WriteTSV(&buf, ds); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	back, err := proger.ReadTSV(&buf)
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if back.Len() != ds.Len() {
		t.Errorf("round trip lost entities: %d vs %d", back.Len(), ds.Len())
	}
}

func TestPublicAPITrainedModelAndBasic(t *testing.T) {
	ds, gt := proger.GenerateBooks(800, 9)
	fams := proger.OLBooksFamilies(ds.Schema)
	model := proger.TrainDupModel(ds, gt, fams)
	if model == nil {
		t.Fatal("TrainDupModel returned nil")
	}
	matcher := proger.MustMatcher(0.62,
		proger.Rule{Attr: ds.Schema.Index("title"), Weight: 0.5, Kind: proger.EditDistance},
		proger.Rule{Attr: ds.Schema.Index("authors"), Weight: 0.3, Kind: proger.EditDistance},
		proger.Rule{Attr: ds.Schema.Index("year"), Weight: 0.2, Kind: proger.ExactMatch},
	)
	res, err := proger.ResolveBasic(ds, proger.BasicOptions{
		Families:         fams,
		Matcher:          matcher,
		Mechanism:        proger.PSNM,
		Window:           10,
		PopcornThreshold: -1,
		Machines:         2,
		SlotsPerMachine:  2,
	})
	if err != nil {
		t.Fatalf("ResolveBasic: %v", err)
	}
	if len(res.Duplicates) == 0 {
		t.Error("no duplicates found via facade")
	}
}

func TestPublicAPIExtras(t *testing.T) {
	// Persons generator + Soundex blocking through the facade.
	ds, gt := proger.GeneratePersons(500, 3)
	if ds.Len() < 500 || gt.NumDupPairs() == 0 {
		t.Fatal("GeneratePersons broken")
	}
	fams, quals, err := proger.SuggestFamilies(ds, gt, []*proger.Family{
		{Name: "S", Attr: 0, PrefixLens: []int{1, 2, 4}, Kind: proger.KeySoundex},
		{Name: "C", Attr: 1, PrefixLens: []int{3}},
	}, 0)
	if err != nil || len(fams) != 2 || len(quals) != 2 {
		t.Fatalf("SuggestFamilies: %v (%d fams)", err, len(fams))
	}
	// Correlation clustering through the facade.
	pairs := proger.PairSet{}
	pairs.Add(proger.MakePair(0, 1))
	clusters := proger.CorrelationClustering(3, pairs, 1)
	if len(clusters) != 2 {
		t.Errorf("clusters = %v", clusters)
	}
	// Token cosine matcher.
	m := proger.MustMatcher(0.9, proger.Rule{Attr: 0, Weight: 1, Kind: proger.TokenCosine})
	a := ds.Get(0)
	if !m.Match(a, a) {
		t.Error("self-match under token cosine")
	}
	// R-Swoosh and hierarchy hint exist and are named.
	if proger.RSwoosh.Name() != "R-Swoosh" || proger.HierarchyHint.Name() != "HierarchyHint" {
		t.Error("mechanism facade names")
	}
}
