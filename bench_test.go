// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI), one testing.B target each, plus micro-benchmarks of
// the substrates the pipeline is built on. Figure benchmarks run the
// full experiment at a laptop-scale configuration and report the
// headline quality metric alongside ns/op, so `go test -bench=.`
// doubles as a reproduction run:
//
//	BenchmarkFig8     — ours vs Basic (popcorn thresholds, w ∈ {5,15})
//	BenchmarkTable3   — final recall / total time per Basic threshold
//	BenchmarkFig9     — tree schedulers (ours vs NoSplit vs LPT)
//	BenchmarkFig10    — entities-per-machine sweep (books, PSNM)
//	BenchmarkFig11    — recall speedup vs machine count
//
// Larger (paper-scale-shaped) runs: use cmd/experiments with -entities.
package proger_test

import (
	"fmt"
	"testing"

	"proger"
	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/datagen"
	"proger/internal/entity"
	"proger/internal/estimate"
	"proger/internal/experiments"
	"proger/internal/extsort"
	"proger/internal/mapreduce"
	"proger/internal/mechanism"
	"proger/internal/sched"
	"proger/internal/textsim"
)

// qtyOf computes the linear-decay Eq.-1 quality of a figure series, the
// scalar the figure benchmarks report.
func qtyOf(f *experiments.Figure, label string) float64 {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		q, prev := 0.0, 0.0
		k := len(f.Times)
		for i := range f.Times {
			q += float64(k-i) / float64(k) * (s.Recalls[i] - prev)
			prev = s.Recalls[i]
		}
		return q
	}
	return 0
}

func BenchmarkFig8(b *testing.B) {
	var lastOurs, lastBasicF float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Fig8Config{Entities: 2000, Seed: 81, Machines: 5, GridPoints: 10})
		if err != nil {
			b.Fatal(err)
		}
		lastOurs = qtyOf(res.Left, "Our Approach")
		lastBasicF = qtyOf(res.Left, "Basic F")
	}
	b.ReportMetric(lastOurs, "qty-ours")
	b.ReportMetric(lastBasicF, "qty-basicF")
}

func BenchmarkTable3(b *testing.B) {
	var finalRecall float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Fig8Config{Entities: 2000, Seed: 81, Machines: 5, GridPoints: 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.TableIII.Rows) == 0 {
			b.Fatal("empty Table III")
		}
		finalRecall = qtyOf(res.Left, "Our Approach")
	}
	b.ReportMetric(finalRecall, "qty-ours")
}

func BenchmarkFig9(b *testing.B) {
	var ours, lpt float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Fig9Config{Entities: 1500, Seed: 9, Machines: []int{6}, GridPoints: 10})
		if err != nil {
			b.Fatal(err)
		}
		ours = qtyOf(res.SubFigures[0], "Our Algorithm")
		lpt = qtyOf(res.SubFigures[0], "LPT")
	}
	b.ReportMetric(ours, "qty-ours")
	b.ReportMetric(lpt, "qty-lpt")
}

func BenchmarkFig10(b *testing.B) {
	var ours float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(experiments.Fig10Config{Entities: 2500, Seed: 10, Machines: []int{4}, GridPoints: 10})
		if err != nil {
			b.Fatal(err)
		}
		ours = qtyOf(res.SubFigures[0], "Our Approach")
	}
	b.ReportMetric(ours, "qty-ours")
}

func BenchmarkFig11(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(experiments.Fig11Config{Entities: 2000, Seed: 11, Machines: []int{4, 12}, Recalls: []float64{0.3, 0.6}})
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Speedup[1][1]
	}
	b.ReportMetric(speedup, "speedup@0.6")
}

// ---- Substrate micro-benchmarks ----

func BenchmarkLevenshtein(b *testing.B) {
	a := "parallel progressive approach to entity resolution"
	c := "parralel progresive aproach to entity resolutoin"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textsim.Levenshtein(a, c)
	}
}

func BenchmarkLevenshteinCapped(b *testing.B) {
	a := "parallel progressive approach to entity resolution"
	c := "completely different text about database systems!!"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textsim.LevenshteinCapped(a, c, 5)
	}
}

func BenchmarkJaccardQ2(b *testing.B) {
	x := "parallel progressive approach to entity resolution"
	y := "a parallel and progressive approach for entity resolution"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textsim.JaccardQGram(x, y, 2)
	}
}

func BenchmarkTokenCosine(b *testing.B) {
	x := "J Smith and A Doe and M Garcia-Lopez"
	y := "A Doe and J Smith and M Garcia Lopez"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textsim.TokenCosine(x, y)
	}
}

func BenchmarkMatcher(b *testing.B) {
	ds, _ := proger.GeneratePublications(100, 1)
	m := proger.MustMatcher(0.75,
		proger.Rule{Attr: 0, Weight: 0.5, Kind: proger.EditDistance},
		proger.Rule{Attr: 1, Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
		proger.Rule{Attr: 2, Weight: 0.2, Kind: proger.EditDistance},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(ds.Entities[i%100], ds.Entities[(i+7)%100])
	}
}

func BenchmarkDatagenPublications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		datagen.Publications(datagen.DefaultPublications(2000, int64(i)))
	}
}

func BenchmarkJob1(b *testing.B) {
	ds, _ := proger.GeneratePublications(2000, 3)
	fams := blocking.CiteSeerXFamilies(ds.Schema)
	cluster := mapreduce.Cluster{Machines: 5, SlotsPerMachine: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := blocking.RunJob1(ds, fams, cluster, costmodel.Default(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleGeneration(b *testing.B) {
	ds, gt := proger.GeneratePublications(2000, 3)
	fams := blocking.CiteSeerXFamilies(ds.Schema)
	model := estimate.Train(ds, gt, fams)
	cluster := mapreduce.Cluster{Machines: 5, SlotsPerMachine: 2}
	stats, _, err := blocking.RunJob1(ds, fams, cluster, costmodel.Default(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trees, err := stats.BuildForests(fams)
		if err != nil {
			b.Fatal(err)
		}
		trees = estimate.Prune(trees)
		est := estimate.NewEstimator(estimate.CiteSeerXPolicy(), costmodel.Default(), model, ds.Len())
		for _, t := range trees {
			est.EstimateTree(t)
		}
		cv := sched.AutoCostVector(trees, 10, 6)
		if _, err := sched.Generate(trees, sched.Config{
			R: 10, CostVector: cv, Weights: sched.LinearWeights(len(cv)), Estimator: est,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolvePipeline(b *testing.B) {
	ds, gt := proger.GeneratePublications(1500, 5)
	fams := proger.CiteSeerXFamilies(ds.Schema)
	model := proger.TrainDupModel(ds, gt, fams)
	matcher := proger.MustMatcher(0.75,
		proger.Rule{Attr: 0, Weight: 0.5, Kind: proger.EditDistance},
		proger.Rule{Attr: 1, Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
		proger.Rule{Attr: 2, Weight: 0.2, Kind: proger.EditDistance},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proger.Resolve(ds, proger.Options{
			Families: fams, Matcher: matcher, Mechanism: proger.SN,
			Policy: proger.CiteSeerXPolicy(), DupModel: model,
			Machines: 5, SlotsPerMachine: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveBasic(b *testing.B) {
	ds, _ := proger.GeneratePublications(1500, 5)
	fams := proger.CiteSeerXFamilies(ds.Schema)
	matcher := proger.MustMatcher(0.75,
		proger.Rule{Attr: 0, Weight: 0.5, Kind: proger.EditDistance},
		proger.Rule{Attr: 1, Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
		proger.Rule{Attr: 2, Weight: 0.2, Kind: proger.EditDistance},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proger.ResolveBasic(ds, proger.BasicOptions{
			Families: fams, Matcher: matcher, Mechanism: proger.SN,
			Window: 15, PopcornThreshold: -1, Machines: 5, SlotsPerMachine: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	var q float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig1(experiments.Fig1Config{Entities: 1500, Seed: 1, Machines: 5, GridPoints: 10})
		if err != nil {
			b.Fatal(err)
		}
		q = qtyOf(fig, "Progressive (ours)")
	}
	b.ReportMetric(q, "qty-progressive")
}

func BenchmarkMechanismSN(b *testing.B) {
	benchmarkMechanism(b, proger.SN)
}

func BenchmarkMechanismPSNM(b *testing.B) {
	benchmarkMechanism(b, proger.PSNM)
}

func BenchmarkMechanismHierarchy(b *testing.B) {
	benchmarkMechanism(b, proger.HierarchyHint)
}

// benchmarkMechanism resolves one 200-entity block to exhaustion.
func benchmarkMechanism(b *testing.B, m proger.Mechanism) {
	ds, _ := proger.GeneratePublications(200, 2)
	matcher := proger.MustMatcher(0.75,
		proger.Rule{Attr: 0, Weight: 0.6, Kind: proger.EditDistance},
		proger.Rule{Attr: 2, Weight: 0.4, Kind: proger.EditDistance},
	)
	env := &mechanism.Env{
		SortAttr: 0,
		Match:    matcher.Match,
		Emit:     func(entity.Pair, bool) {},
		Charge:   func(costmodel.Units) {},
		Cost:     costmodel.Default(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ResolveBlock(env, ds.Entities, 15)
	}
}

func BenchmarkExternalSort(b *testing.B) {
	dir := b.TempDir()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := extsort.NewSorter(dir, 1000)
		for j := 0; j < 10000; j++ {
			if err := s.Add(fmt.Sprintf("key-%04d", j%500), []byte("payload")); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := it.Drain(); err != nil {
			b.Fatal(err)
		}
		it.Close()
		s.Close()
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	ds, gt := proger.GeneratePublications(5000, 3)
	pairs := proger.PairSet{}
	for _, p := range gt.DupPairs() {
		pairs.Add(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proger.TransitiveClosure(ds.Len(), pairs)
	}
}

func BenchmarkAblation(b *testing.B) {
	var full float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(experiments.AblationConfig{Entities: 1200, Seed: 42, Machines: 4, GridPoints: 8})
		if err != nil {
			b.Fatal(err)
		}
		full = qtyOf(res.Components, "Full approach")
	}
	b.ReportMetric(full, "qty-full")
}

func BenchmarkResolveCompactShuffle(b *testing.B) {
	ds, gt := proger.GeneratePublications(1500, 5)
	fams := proger.CiteSeerXFamilies(ds.Schema)
	model := proger.TrainDupModel(ds, gt, fams)
	matcher := proger.MustMatcher(0.75,
		proger.Rule{Attr: 0, Weight: 0.5, Kind: proger.EditDistance},
		proger.Rule{Attr: 1, Weight: 0.3, Kind: proger.EditDistance, MaxChars: 350},
		proger.Rule{Attr: 2, Weight: 0.2, Kind: proger.EditDistance},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proger.Resolve(ds, proger.Options{
			Families: fams, Matcher: matcher, Mechanism: proger.SN,
			Policy: proger.CiteSeerXPolicy(), DupModel: model,
			Machines: 5, SlotsPerMachine: 2, CompactShuffle: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
