package sched

import (
	"bytes"
	"strings"
	"testing"

	"proger/internal/obs"
)

func TestGenerateEmitsTrace(t *testing.T) {
	trees, est := buildForest(t, 600, 7)
	cfg := defaultConfig(trees, est, 4, Ours)
	cfg.Trace = obs.New()
	cfg.TraceBase = 1234
	s, err := Generate(trees, cfg)
	if err != nil {
		t.Fatal(err)
	}

	spans := cfg.Trace.Spans()
	if len(spans) == 0 {
		t.Fatal("no schedule-generation spans")
	}
	var summary, plans int
	for _, sp := range spans {
		if sp.Cat != "schedule" {
			t.Errorf("span %q has category %q, want schedule", sp.Name, sp.Cat)
		}
		// Generation spans are instants pinned at TraceBase: the real
		// generation cost is charged by Job-2 map tasks.
		if sp.Start != cfg.TraceBase || sp.Dur != 0 {
			t.Errorf("span %q at [%v, +%v], want instant at %v", sp.Name, sp.Start, sp.Dur, cfg.TraceBase)
		}
		switch {
		case strings.HasPrefix(sp.Name, "generate"):
			summary++
		case strings.HasPrefix(sp.Name, "plan task"):
			plans++
			// The Ours partitioner annotates per-task slack.
			var hasSlack, hasCost bool
			for _, a := range sp.Args {
				if a.Key == "slack" {
					hasSlack = true
				}
				if a.Key == "est_cost" {
					hasCost = true
				}
			}
			if !hasSlack || !hasCost {
				t.Errorf("span %q missing slack/est_cost args: %v", sp.Name, sp.Args)
			}
		}
	}
	if summary != 1 {
		t.Errorf("got %d generate summary spans, want 1", summary)
	}
	if plans != s.R {
		t.Errorf("got %d plan-task spans, want %d (one per reduce task)", plans, s.R)
	}
	if procs := cfg.Trace.Processes(); len(procs) != 1 || procs[0] != "schedule-generation" {
		t.Errorf("processes = %v, want [schedule-generation]", procs)
	}
}

func TestGenerateTraceDeterminism(t *testing.T) {
	run := func() []byte {
		trees, est := buildForest(t, 600, 7)
		cfg := defaultConfig(trees, est, 4, Ours)
		cfg.Trace = obs.New()
		cfg.TraceBase = 500
		if _, err := Generate(trees, cfg); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := cfg.Trace.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("schedule-generation trace not deterministic across runs")
	}
}

func TestGenerateNilTraceNoSpans(t *testing.T) {
	trees, est := buildForest(t, 300, 3)
	cfg := defaultConfig(trees, est, 2, Ours)
	if _, err := Generate(trees, cfg); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert on a nil tracer beyond not panicking; run LPT
	// too, which records no slack.
	cfgLPT := defaultConfig(trees, est, 2, LPT)
	cfgLPT.Trace = obs.New()
	if _, err := Generate(trees, cfgLPT); err != nil {
		t.Fatal(err)
	}
	for _, sp := range cfgLPT.Trace.Spans() {
		for _, a := range sp.Args {
			if a.Key == "slack" {
				t.Errorf("LPT span %q carries slack arg", sp.Name)
			}
		}
	}
}
