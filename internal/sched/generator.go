package sched

import (
	"container/heap"
	"sort"

	"proger/internal/blocking"
	"proger/internal/costmodel"
)

// generator carries the mutable state of one schedule generation.
type generator struct {
	cfg   Config
	trees []*blocking.Tree

	// Per identify/split round:
	bucketOf map[*blocking.Block]int // block → SL bucket index
	vc       map[*blocking.Tree][]costmodel.Units

	// Partitioning results:
	taskOf map[*blocking.Tree]int

	// Final schedules:
	taskBlocks [][]*blocking.Block

	// Trees that cannot be (further) split; excluded from overflow
	// detection to guarantee termination.
	unsplittable map[*blocking.Tree]bool

	// Trace bookkeeping (recorded unconditionally — a handful of ints
	// per run — and published by emitTrace only when tracing is on):
	splitRounds int          // identify/split iterations executed
	splitEvents []splitEvent // one per tree that shed subtrees
	taskLoad    []costmodel.Units
	taskSlack   []float64 // leftover weighted slack (slack partition only)
}

// splitEvent records one SPLIT-TREE decision for the trace.
type splitEvent struct {
	round    int
	root     string // root block ID of the split tree
	detached int    // subtrees detached into new trees
}

func (g *generator) buckets() int { return len(g.cfg.CostVector) }

// bucketWidth returns c_h − c_{h−1}.
func (g *generator) bucketWidth(h int) costmodel.Units {
	if h == 0 {
		return g.cfg.CostVector[0]
	}
	return g.cfg.CostVector[h] - g.cfg.CostVector[h-1]
}

// blockLess orders blocks by non-increasing utility with deterministic
// tie-breaking (by ID).
func blockLess(a, b *blocking.Block) bool {
	if a.Util != b.Util {
		return a.Util > b.Util
	}
	return idLess(a.ID, b.ID)
}

func idLess(a, b blocking.BlockID) bool {
	if a.Family != b.Family {
		return a.Family < b.Family
	}
	if a.Level != b.Level {
		return a.Level < b.Level
	}
	return a.Key < b.Key
}

// buildSL sorts all blocks by utility (the list SL of §IV-C1), assigns
// each block its cost-vector bucket, and computes each tree's cost
// vector VC (IDENTIFY-TREES preamble).
func (g *generator) buildSL() {
	var sl []*blocking.Block
	blockTree := map[*blocking.Block]*blocking.Tree{}
	for _, t := range g.trees {
		for _, b := range t.Blocks() {
			sl = append(sl, b)
			blockTree[b] = t
		}
	}
	sort.Slice(sl, func(i, j int) bool { return blockLess(sl[i], sl[j]) })

	g.bucketOf = make(map[*blocking.Block]int, len(sl))
	g.vc = make(map[*blocking.Tree][]costmodel.Units, len(g.trees))
	for _, t := range g.trees {
		g.vc[t] = make([]costmodel.Units, g.buckets())
	}
	r := costmodel.Units(g.cfg.R)
	cum := costmodel.Units(0)
	bucket := 0
	for _, b := range sl {
		cum += b.CostEst
		for bucket < g.buckets()-1 && cum > g.cfg.CostVector[bucket]*r {
			bucket++
		}
		g.bucketOf[b] = bucket
		g.vc[blockTree[b]][bucket] += b.CostEst
	}
}

// identifyTrees returns the overflowed trees: those with some bucket h
// where VC[h] exceeds the bucket width c_h − c_{h−1} (IDENTIFY-TREES).
// Trees already marked unsplittable are skipped.
func (g *generator) identifyTrees() []*blocking.Tree {
	var out []*blocking.Tree
	for _, t := range g.trees {
		if g.unsplittable[t] {
			continue
		}
		for h, v := range g.vc[t] {
			if v > g.bucketWidth(h) {
				out = append(out, t)
				break
			}
		}
	}
	// Deterministic order: most overloaded first (largest max excess),
	// ties by root ID.
	excess := func(t *blocking.Tree) costmodel.Units {
		var m costmodel.Units
		for h, v := range g.vc[t] {
			if e := v - g.bucketWidth(h); e > m {
				m = e
			}
		}
		return m
	}
	sort.Slice(out, func(i, j int) bool {
		ei, ej := excess(out[i]), excess(out[j])
		if ei != ej {
			return ei > ej
		}
		return idLess(out[i].Root.ID, out[j].Root.ID)
	})
	return out
}

// subtreeVC computes the per-bucket cost vector of the subtree rooted
// at b, using the current SL bucket assignment.
func (g *generator) subtreeVC(b *blocking.Block) []costmodel.Units {
	v := make([]costmodel.Units, g.buckets())
	b.Walk(func(x *blocking.Block) {
		v[g.bucketOf[x]] += x.CostEst
	})
	return v
}

// splitLoop is the while-loop of GENERATE-SCHEDULE (Fig. 6): identify
// overflowed trees, split a batch of them, repeat until none remain or
// no further progress is possible.
func (g *generator) splitLoop() {
	g.unsplittable = map[*blocking.Tree]bool{}
	for round := 0; round < g.cfg.MaxSplitRounds; round++ {
		g.buildSL()
		overflowed := g.identifyTrees()
		if len(overflowed) == 0 {
			return
		}
		g.splitRounds = round + 1
		n := g.cfg.Batch
		if n > len(overflowed) {
			n = len(overflowed)
		}
		progress := false
		for i := 0; i < n; i++ {
			newTrees := g.splitTree(overflowed[i])
			if len(newTrees) == 0 {
				// Root has no children or nothing was detached; this
				// tree cannot be improved further.
				g.unsplittable[overflowed[i]] = true
				continue
			}
			progress = true
			g.splitEvents = append(g.splitEvents, splitEvent{
				round:    round,
				root:     overflowed[i].Root.ID.String(),
				detached: len(newTrees),
			})
			g.trees = append(g.trees, newTrees...)
		}
		if !progress {
			return
		}
	}
}

// splitTree is SPLIT-TREE (Fig. 6): iterate the root's children in
// non-increasing utility order; detach every child whose retention
// would overflow a bucket (SHOULD-SPLIT), keeping the rest (set E).
func (g *generator) splitTree(t *blocking.Tree) []*blocking.Tree {
	root := t.Root
	if len(root.Children) == 0 {
		return nil
	}
	children := make([]*blocking.Block, len(root.Children))
	copy(children, root.Children)
	sort.Slice(children, func(i, j int) bool { return blockLess(children[i], children[j]) })

	var kept []*blocking.Block // the set E
	vstar := make([]costmodel.Units, g.buckets())
	var newTrees []*blocking.Tree
	for _, child := range children {
		if g.shouldSplit(child, root, vstar, kept) {
			nt := g.cfg.Estimator.DetachChild(root, child)
			newTrees = append(newTrees, nt)
		} else {
			kept = append(kept, child)
		}
	}
	return newTrees
}

// shouldSplit is SHOULD-SPLIT (Fig. 6): hypothesize that the root keeps
// exactly kept ∪ {child}; if any bucket of the combined cost vectors
// (root's hypothetical cost at its SL position plus the kept subtrees)
// exceeds its width, child must be split off.
func (g *generator) shouldSplit(child, root *blocking.Block, vstar []costmodel.Units, kept []*blocking.Block) bool {
	// Step 1: hypothetical Cost(root) with Chd = kept ∪ {child}:
	// Eq. 5 with only those descendants.
	hypo := g.hypotheticalRootCost(root, append(append([]*blocking.Block{}, kept...), child))
	// Step 2: place it at the root's current SL bucket (the paper
	// deliberately does not re-sort SL here).
	s := g.bucketOf[root]
	for i := range vstar {
		vstar[i] = 0
	}
	vstar[s] = hypo
	// Step 3: test every bucket.
	for h := 0; h < g.buckets(); h++ {
		sum := vstar[h]
		for _, k := range kept {
			sum += g.subtreeVC(k)[h]
		}
		sum += g.subtreeVC(child)[h]
		if sum > g.bucketWidth(h) {
			return true
		}
	}
	return false
}

// hypotheticalRootCost evaluates Eq. 5 for the root as if its children
// were exactly chd (all other subtrees split off).
func (g *generator) hypotheticalRootCost(root *blocking.Block, chd []*blocking.Block) costmodel.Units {
	est := g.cfg.Estimator
	costA := est.Cost.HintCost(root.Size)
	cost := costA + est.CostFull(root)
	for _, c := range chd {
		c.Walk(func(x *blocking.Block) {
			cost -= est.CostPartial(x)
		})
	}
	if cost < costA {
		cost = costA
	}
	return cost
}

// weightedCost is Σ_h W(c_h)·VC(T)[h] (PARTITION-TREES).
func (g *generator) weightedCost(t *blocking.Tree) float64 {
	w := 0.0
	for h, v := range g.vc[t] {
		w += g.cfg.Weights[h] * float64(v)
	}
	return w
}

// partitionBySlack implements PARTITION-TREES: trees in non-increasing
// weighted-cost order, each assigned to the task with the largest slack
// SK(R).
func (g *generator) partitionBySlack() {
	g.buildSL() // refresh buckets and VC after any splits
	order := make([]*blocking.Tree, len(g.trees))
	copy(order, g.trees)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := g.weightedCost(order[i]), g.weightedCost(order[j])
		if wi != wj {
			return wi > wj
		}
		return idLess(order[i].Root.ID, order[j].Root.ID)
	})

	assigned := make([][]costmodel.Units, g.cfg.R) // per-task, per-bucket assigned cost
	totalLoad := make([]costmodel.Units, g.cfg.R)
	for r := range assigned {
		assigned[r] = make([]costmodel.Units, g.buckets())
	}
	g.taskOf = make(map[*blocking.Tree]int, len(g.trees))
	for _, t := range order {
		vct := g.vc[t]
		treeCost := costmodel.Units(0)
		for _, v := range vct {
			treeCost += v
		}
		best, bestSlack := 0, -1e300
		for r := 0; r < g.cfg.R; r++ {
			slack := 0.0
			for h := 0; h < g.buckets(); h++ {
				if vct[h] <= 0 {
					continue // δ_h = 0
				}
				slack += g.cfg.Weights[h] * float64(g.bucketWidth(h)-assigned[r][h])
			}
			// SK ignores buckets this tree does not touch, so break
			// slack ties by total load — otherwise every bucket's first
			// tree lands on task 0.
			if slack > bestSlack+1e-9 || (slack > bestSlack-1e-9 && totalLoad[r] < totalLoad[best]) {
				best, bestSlack = r, slack
			}
		}
		g.taskOf[t] = best
		totalLoad[best] += treeCost
		for h := 0; h < g.buckets(); h++ {
			assigned[best][h] += vct[h]
		}
	}
	g.taskLoad = totalLoad
	g.taskSlack = make([]float64, g.cfg.R)
	for r := 0; r < g.cfg.R; r++ {
		slack := 0.0
		for h := 0; h < g.buckets(); h++ {
			slack += g.cfg.Weights[h] * float64(g.bucketWidth(h)-assigned[r][h])
		}
		g.taskSlack[r] = slack
	}
}

// partitionLPT implements the Longest Processing Time baseline: trees
// in non-increasing total-cost order, each to the least-loaded task.
func (g *generator) partitionLPT() {
	g.buildSL()
	treeCost := func(t *blocking.Tree) costmodel.Units {
		var c costmodel.Units
		for _, b := range t.Blocks() {
			c += b.CostEst
		}
		return c
	}
	order := make([]*blocking.Tree, len(g.trees))
	copy(order, g.trees)
	sort.Slice(order, func(i, j int) bool {
		ci, cj := treeCost(order[i]), treeCost(order[j])
		if ci != cj {
			return ci > cj
		}
		return idLess(order[i].Root.ID, order[j].Root.ID)
	})
	load := make([]costmodel.Units, g.cfg.R)
	g.taskOf = make(map[*blocking.Tree]int, len(g.trees))
	for _, t := range order {
		best := 0
		for r := 1; r < g.cfg.R; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		g.taskOf[t] = best
		load[best] += treeCost(t)
	}
	g.taskLoad = load
}

// orderBlocks builds each task's block schedule: non-increasing utility
// subject to the bottom-up constraint — a block becomes eligible only
// once all its children are scheduled (SORT-BLOCKS + §III-A).
func (g *generator) orderBlocks() {
	g.taskBlocks = make([][]*blocking.Block, g.cfg.R)
	perTask := make([][]*blocking.Block, g.cfg.R)
	for _, t := range g.trees {
		task := g.taskOf[t]
		perTask[task] = append(perTask[task], t.Blocks()...)
	}
	for task, blocks := range perTask {
		g.taskBlocks[task] = orderBottomUpByUtility(blocks)
	}
}

// orderBottomUpByUtility repeatedly emits the highest-utility block
// whose children have all been emitted (a priority-driven topological
// sort). This equals a plain utility sort whenever that sort already
// satisfies the bottom-up constraint, and otherwise applies the
// minimal reordering.
func orderBottomUpByUtility(blocks []*blocking.Block) []*blocking.Block {
	inSet := make(map[*blocking.Block]bool, len(blocks))
	for _, b := range blocks {
		inSet[b] = true
	}
	pendingChildren := make(map[*blocking.Block]int, len(blocks))
	for _, b := range blocks {
		n := 0
		for _, c := range b.Children {
			if inSet[c] {
				n++
			}
		}
		pendingChildren[b] = n
	}
	h := &blockHeap{}
	heap.Init(h)
	for _, b := range blocks {
		if pendingChildren[b] == 0 {
			heap.Push(h, b)
		}
	}
	out := make([]*blocking.Block, 0, len(blocks))
	for h.Len() > 0 {
		b := heap.Pop(h).(*blocking.Block)
		out = append(out, b)
		if p := b.Parent; p != nil && inSet[p] {
			pendingChildren[p]--
			if pendingChildren[p] == 0 {
				heap.Push(h, p)
			}
		}
	}
	return out
}

// blockHeap is a max-heap on block utility (ties by ID).
type blockHeap []*blocking.Block

func (h blockHeap) Len() int           { return len(h) }
func (h blockHeap) Less(i, j int) bool { return blockLess(h[i], h[j]) }
func (h blockHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *blockHeap) Push(x any)        { *h = append(*h, x.(*blocking.Block)) }
func (h *blockHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// assignDomAndSQ finalizes the schedule: trees get dominance values in
// deterministic (root-ID) order, blocks get sequence values in schedule
// order within their task's range.
func (g *generator) assignDomAndSQ() {
	sort.Slice(g.trees, func(i, j int) bool { return idLess(g.trees[i].Root.ID, g.trees[j].Root.ID) })
	for i, t := range g.trees {
		t.Dom = int32(i)
	}
	for task, blocks := range g.taskBlocks {
		for pos, b := range blocks {
			b.SQ = SQFor(task, pos)
		}
	}
}

func (g *generator) schedule() *Schedule {
	s := &Schedule{
		Trees:      g.trees,
		TaskOfTree: make([]int, len(g.trees)),
		TaskBlocks: g.taskBlocks,
		ByID:       map[blocking.BlockID]*blocking.Block{},
		TreeOf:     map[blocking.BlockID]int{},
		R:          g.cfg.R,
	}
	for i, t := range g.trees {
		s.TaskOfTree[i] = g.taskOf[t]
		for _, b := range t.Blocks() {
			s.ByID[b.ID] = b
			s.TreeOf[b.ID] = i
		}
	}
	return s
}
