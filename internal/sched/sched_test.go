package sched

import (
	"testing"

	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/datagen"
	"proger/internal/estimate"
)

// buildForest creates estimated trees from a generated dataset.
func buildForest(t *testing.T, n int, seed int64) ([]*blocking.Tree, *estimate.Estimator) {
	t.Helper()
	ds, gt := datagen.Publications(datagen.DefaultPublications(n, seed))
	fams := blocking.CiteSeerXFamilies(ds.Schema)
	model := estimate.Train(ds, gt, fams)
	est := estimate.NewEstimator(estimate.CiteSeerXPolicy(), costmodel.Default(), model, ds.Len())
	var trees []*blocking.Tree
	for famIdx, fam := range fams {
		keys, groups := blocking.GroupByMainKey(ds, fam)
		for _, k := range keys {
			ents := groups[k]
			tree := blocking.BuildTree(fam, famIdx, k, ents)
			mainKeys := make([][]string, len(ents))
			for i, e := range ents {
				mainKeys[i] = fams.MainKeys(e)
			}
			blocking.ComputeUncov(fam, tree, ents, mainKeys)
			trees = append(trees, tree)
		}
	}
	trees = estimate.Prune(trees)
	for _, tr := range trees {
		est.EstimateTree(tr)
	}
	return trees, est
}

func defaultConfig(trees []*blocking.Tree, est *estimate.Estimator, r int, kind Kind) Config {
	cv := AutoCostVector(trees, r, 10)
	return Config{
		R:          r,
		CostVector: cv,
		Weights:    LinearWeights(len(cv)),
		Estimator:  est,
		Kind:       kind,
	}
}

func TestSQHelpers(t *testing.T) {
	sq := SQFor(3, 42)
	if TaskOfSQ(sq) != 3 {
		t.Errorf("TaskOfSQ = %d", TaskOfSQ(sq))
	}
	key := SQKey(sq)
	if len(key) != 18 {
		t.Errorf("key %q not fixed-width", key)
	}
	back, err := ParseSQKey(key)
	if err != nil || back != sq {
		t.Errorf("ParseSQKey = %d, %v", back, err)
	}
	// Lexicographic order equals numeric order.
	if !(SQKey(SQFor(0, 5)) < SQKey(SQFor(0, 40))) {
		t.Error("key order broken within task")
	}
	if !(SQKey(SQFor(1, 999)) < SQKey(SQFor(2, 0))) {
		t.Error("key order broken across tasks")
	}
	if _, err := ParseSQKey("notanumber"); err == nil {
		t.Error("bad key should error")
	}
}

func TestAutoCostVectorAndWeights(t *testing.T) {
	trees, _ := buildForest(t, 600, 3)
	cv := AutoCostVector(trees, 4, 10)
	if len(cv) != 10 {
		t.Fatalf("len = %d", len(cv))
	}
	for i := 1; i < len(cv); i++ {
		if cv[i] <= cv[i-1] {
			t.Fatalf("cost vector not increasing at %d: %v", i, cv)
		}
	}
	w := LinearWeights(10)
	if w[0] != 1.0 {
		t.Errorf("first weight = %v", w[0])
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] || w[i] <= 0 {
			t.Errorf("weights not strictly decreasing positive: %v", w)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	trees, est := buildForest(t, 300, 7)
	good := defaultConfig(trees, est, 2, Ours)
	bad := []func(*Config){
		func(c *Config) { c.R = 0 },
		func(c *Config) { c.CostVector = nil },
		func(c *Config) { c.CostVector = []costmodel.Units{5, 5} },
		func(c *Config) { c.CostVector = []costmodel.Units{5, 3} },
		func(c *Config) { c.Weights = c.Weights[:2] },
		func(c *Config) { c.Weights = []float64{0.1, 0.5, 1, 1, 1, 1, 1, 1, 1, 1} },
		func(c *Config) { c.Estimator = nil },
	}
	for i, mutate := range bad {
		cfg := good
		cfg.CostVector = append([]costmodel.Units{}, good.CostVector...)
		cfg.Weights = append([]float64{}, good.Weights...)
		mutate(&cfg)
		if _, err := Generate(trees, cfg); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

// checkScheduleInvariants verifies the structural properties every
// progressive schedule must satisfy.
func checkScheduleInvariants(t *testing.T, s *Schedule, wantBlocks int) {
	t.Helper()
	// Every block scheduled exactly once, with a consistent SQ.
	seen := map[blocking.BlockID]bool{}
	total := 0
	for task, blocks := range s.TaskBlocks {
		pos := map[*blocking.Block]int{}
		for i, b := range blocks {
			total++
			if seen[b.ID] {
				t.Errorf("block %s scheduled twice", b.ID)
			}
			seen[b.ID] = true
			if TaskOfSQ(b.SQ) != task {
				t.Errorf("block %s SQ %d routes to task %d, scheduled on %d", b.ID, b.SQ, TaskOfSQ(b.SQ), task)
			}
			if got := s.Block(b.SQ); got != b {
				t.Errorf("Block(SQ) lookup broken for %s", b.ID)
			}
			pos[b] = i
		}
		// Bottom-up: every child of a scheduled parent appears earlier.
		for i, b := range blocks {
			for _, c := range b.Children {
				if j, ok := pos[c]; ok && j >= i {
					t.Errorf("task %d: child %s at %d not before parent %s at %d", task, c.ID, j, b.ID, i)
				}
			}
		}
	}
	if wantBlocks > 0 && total != wantBlocks {
		t.Errorf("scheduled %d blocks, want %d", total, wantBlocks)
	}
	// Whole tree on a single task.
	for i, tree := range s.Trees {
		task := s.TaskOfTree[i]
		for _, b := range tree.Blocks() {
			if TaskOfSQ(b.SQ) != task {
				t.Errorf("tree %s spans tasks: block %s on %d, tree on %d", tree, b.ID, TaskOfSQ(b.SQ), task)
			}
		}
		if tree.Dom != int32(i) {
			t.Errorf("tree %d has Dom %d", i, tree.Dom)
		}
	}
	// All tree roots are full resolves.
	for _, tree := range s.Trees {
		if !tree.Root.FullResolve {
			t.Errorf("tree %s root not marked FullResolve", tree)
		}
	}
}

func TestGenerateOursInvariants(t *testing.T) {
	trees, est := buildForest(t, 1000, 11)
	preBlocks := 0
	for _, tr := range trees {
		preBlocks += len(tr.Blocks())
	}
	s, err := Generate(trees, defaultConfig(trees, est, 4, Ours))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	checkScheduleInvariants(t, s, preBlocks) // splits move blocks, never drop them
	if len(s.Trees) < len(trees) {
		t.Error("splitting cannot reduce the tree count")
	}
}

func TestGenerateNoSplitKeepsTrees(t *testing.T) {
	trees, est := buildForest(t, 1000, 11)
	n := len(trees)
	s, err := Generate(trees, defaultConfig(trees, est, 4, NoSplit))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Trees) != n {
		t.Errorf("NoSplit changed tree count: %d → %d", n, len(s.Trees))
	}
	checkScheduleInvariants(t, s, 0)
}

func TestGenerateLPTBalancesLoad(t *testing.T) {
	trees, est := buildForest(t, 1000, 13)
	r := 4
	s, err := Generate(trees, defaultConfig(trees, est, r, LPT))
	if err != nil {
		t.Fatal(err)
	}
	checkScheduleInvariants(t, s, 0)
	// LPT guarantee: max load ≤ (4/3 − 1/(3r)) · optimal ≤ ~4/3 · avg·r/r…
	// We check the weaker property: no task has more than ~2× the
	// average load (LPT is near-balanced).
	loads := make([]costmodel.Units, r)
	for task, blocks := range s.TaskBlocks {
		for _, b := range blocks {
			loads[task] += b.CostEst
		}
	}
	var total, max costmodel.Units
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	avg := total / costmodel.Units(r)
	if max > 2*avg {
		t.Errorf("LPT badly unbalanced: max %v vs avg %v", max, avg)
	}
}

func TestOursSplitsLargeSkewedTrees(t *testing.T) {
	// With heavily skewed data and several reduce tasks, at least one
	// tree should get split (that is the entire point of the machinery).
	trees, est := buildForest(t, 2000, 17)
	n := len(trees)
	s, err := Generate(trees, defaultConfig(trees, est, 8, Ours))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Trees) == n {
		t.Error("no tree was split on skewed data — splitting machinery inert")
	}
	// Split subtree roots must be full resolves with Frac 1.
	for _, tree := range s.Trees {
		if tree.Root.ID.Level > 1 {
			if !tree.Root.FullResolve || tree.Root.Frac != 1 {
				t.Errorf("split root %s not a full resolve", tree.Root.ID)
			}
		}
	}
}

func TestBlockScheduleUtilityOrderWhenUnconstrained(t *testing.T) {
	// Blocks with no parent/child relation must appear in utility order.
	trees, est := buildForest(t, 800, 19)
	s, err := Generate(trees, defaultConfig(trees, est, 2, NoSplit))
	if err != nil {
		t.Fatal(err)
	}
	for task, blocks := range s.TaskBlocks {
		for i := 1; i < len(blocks); i++ {
			prev, cur := blocks[i-1], blocks[i]
			// If cur has higher utility than prev, the only excuse is a
			// dependency: prev must be a descendant of cur.
			if cur.Util > prev.Util {
				isDesc := false
				for p := prev; p != nil; p = p.Parent {
					if p == cur {
						isDesc = true
						break
					}
				}
				_ = isDesc
				ok := false
				for _, d := range cur.Descendants() {
					if d == prev {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("task %d: block %s (util %v) before higher-utility %s (util %v) without dependency",
						task, prev.ID, prev.Util, cur.ID, cur.Util)
				}
			}
		}
	}
}

func TestOrderBottomUpByUtility(t *testing.T) {
	// Parent with huge utility must still come after its children.
	parent := &blocking.Block{ID: blocking.BlockID{Level: 1, Key: "p"}, Util: 100}
	c1 := &blocking.Block{ID: blocking.BlockID{Level: 2, Key: "pa"}, Util: 1, Parent: parent}
	c2 := &blocking.Block{ID: blocking.BlockID{Level: 2, Key: "pb"}, Util: 50, Parent: parent}
	parent.Children = []*blocking.Block{c1, c2}
	out := orderBottomUpByUtility([]*blocking.Block{parent, c1, c2})
	if out[0] != c2 || out[1] != c1 || out[2] != parent {
		t.Errorf("order = %v, %v, %v", out[0].ID, out[1].ID, out[2].ID)
	}
}

func TestPartitionBySlackSpreadsBeneficialTrees(t *testing.T) {
	trees, est := buildForest(t, 1500, 23)
	r := 4
	s, err := Generate(trees, defaultConfig(trees, est, r, Ours))
	if err != nil {
		t.Fatal(err)
	}
	// Early high-utility work should exist on every task: compare the
	// estimated duplicates in each task's first-quarter schedule.
	dupIn := make([]float64, r)
	for task, blocks := range s.TaskBlocks {
		quarter := len(blocks) / 4
		if quarter == 0 {
			quarter = len(blocks)
		}
		for _, b := range blocks[:quarter] {
			dupIn[task] += b.DupEst
		}
	}
	nonZero := 0
	for _, d := range dupIn {
		if d > 0 {
			nonZero++
		}
	}
	if nonZero < r {
		t.Errorf("only %d/%d tasks have early duplicate work: %v", nonZero, r, dupIn)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	mk := func() *Schedule {
		trees, est := buildForest(t, 700, 29)
		s, err := Generate(trees, defaultConfig(trees, est, 3, Ours))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	if len(a.Trees) != len(b.Trees) {
		t.Fatalf("tree counts differ: %d vs %d", len(a.Trees), len(b.Trees))
	}
	for i := range a.Trees {
		if a.Trees[i].Root.ID != b.Trees[i].Root.ID {
			t.Fatalf("tree %d differs: %s vs %s", i, a.Trees[i].Root.ID, b.Trees[i].Root.ID)
		}
		if a.TaskOfTree[i] != b.TaskOfTree[i] {
			t.Fatalf("tree %d task differs", i)
		}
	}
	for task := range a.TaskBlocks {
		if len(a.TaskBlocks[task]) != len(b.TaskBlocks[task]) {
			t.Fatalf("task %d block counts differ", task)
		}
		for i := range a.TaskBlocks[task] {
			if a.TaskBlocks[task][i].ID != b.TaskBlocks[task][i].ID {
				t.Fatalf("task %d pos %d differs", task, i)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Ours.String() != "ours" || NoSplit.String() != "nosplit" || LPT.String() != "lpt" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestScheduleBlockLookupOutOfRange(t *testing.T) {
	trees, est := buildForest(t, 300, 31)
	s, err := Generate(trees, defaultConfig(trees, est, 2, NoSplit))
	if err != nil {
		t.Fatal(err)
	}
	if s.Block(SQFor(99, 0)) != nil {
		t.Error("out-of-range task should yield nil")
	}
	if s.Block(SQFor(0, 1<<30)) != nil {
		t.Error("out-of-range position should yield nil")
	}
	if s.NumBlocks() == 0 {
		t.Error("schedule has no blocks")
	}
}

func TestExponentialAndUniformWeights(t *testing.T) {
	e := ExponentialWeights(4)
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if e[i] != want[i] {
			t.Errorf("exp[%d] = %v, want %v", i, e[i], want[i])
		}
	}
	u := UniformWeights(3)
	for _, w := range u {
		if w != 1 {
			t.Errorf("uniform weights = %v", u)
		}
	}
}

func TestBudgetCostVector(t *testing.T) {
	cv := BudgetCostVector(1000, 4, 5)
	// per-task share 250, five equal intervals: 50,100,150,200,250.
	want := []costmodel.Units{50, 100, 150, 200, 250}
	for i := range want {
		if cv[i] != want[i] {
			t.Errorf("cv[%d] = %v, want %v", i, cv[i], want[i])
		}
	}
	// Degenerate inputs still give a valid (increasing) vector.
	cv = BudgetCostVector(0, 0, 0)
	if len(cv) != 1 || cv[0] <= 0 {
		t.Errorf("degenerate cv = %v", cv)
	}
}

func TestGenerateWithBudgetVectorAndUniformWeights(t *testing.T) {
	trees, est := buildForest(t, 500, 37)
	cv := BudgetCostVector(2000, 2, 4)
	s, err := Generate(trees, Config{
		R: 2, CostVector: cv, Weights: UniformWeights(len(cv)), Estimator: est, Kind: Ours,
	})
	if err != nil {
		t.Fatalf("Generate with budget vector: %v", err)
	}
	checkScheduleInvariants(t, s, 0)
}

func TestSplitLoopTerminatesOnUnsplittableTrees(t *testing.T) {
	// A single huge childless block always overflows but cannot be
	// split; the loop must mark it unsplittable and stop.
	root := &blocking.Block{
		ID: blocking.BlockID{Family: 0, Level: 1, Key: "xx"}, Size: 1000,
	}
	tree := &blocking.Tree{Root: root}
	est := estimate.NewEstimator(estimate.CiteSeerXPolicy(), costmodel.Default(), estimate.DefaultModel{}, 1000)
	est.EstimateTree(tree)
	s, err := Generate([]*blocking.Tree{tree}, Config{
		R:          2,
		CostVector: []costmodel.Units{10, 20}, // far below the tree's cost
		Weights:    []float64{1, 0.5},
		Estimator:  est,
		Kind:       Ours,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(s.Trees) != 1 || len(s.TaskBlocks[s.TaskOfTree[0]]) != 1 {
		t.Errorf("unsplittable tree mangled: %d trees", len(s.Trees))
	}
}

func TestGenerateSingleTask(t *testing.T) {
	trees, est := buildForest(t, 400, 41)
	s, err := Generate(trees, defaultConfig(trees, est, 1, Ours))
	if err != nil {
		t.Fatal(err)
	}
	checkScheduleInvariants(t, s, 0)
	if len(s.TaskBlocks) != 1 {
		t.Errorf("task blocks = %d", len(s.TaskBlocks))
	}
}
