// Package sched implements §IV-C of the paper: generation of the
// progressive schedule. Given the estimated blocking trees, the number
// of reduce tasks r, a cost vector C, and a weighting function W, it
//
//  1. repeatedly identifies *overflowed* trees — trees whose
//     high-utility blocks alone exceed a bucket of the cost vector —
//     and greedily splits them (IDENTIFY-TREES / SPLIT-TREE, Fig. 6);
//  2. partitions the trees among the reduce tasks by largest slack
//     SK(R) (PARTITION-TREES);
//  3. orders each task's blocks by non-increasing utility, subject to
//     the bottom-up constraint (children before parents, §III-A);
//  4. assigns each reduce task a range of sequence values and each
//     block a unique SQ within its task's range (§III-B), and each
//     tree a unique dominance value (§V).
//
// The LPT and NoSplit baseline schedulers of §VI-B2 are provided
// through the same entry point.
package sched

import (
	"fmt"

	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/estimate"
	"proger/internal/obs"
	"proger/internal/obs/quality"
)

// Kind selects the tree-scheduling algorithm.
type Kind int

const (
	// Ours is the full algorithm of Fig. 6, with tree splitting.
	Ours Kind = iota
	// NoSplit is Ours without the tree-split mechanism (§VI-B2).
	NoSplit
	// LPT is Longest Processing Time load balancing [23]: trees sorted
	// by cost, each assigned to the least-loaded task (§VI-B2).
	LPT
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Ours:
		return "ours"
	case NoSplit:
		return "nosplit"
	case LPT:
		return "lpt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config parameterizes schedule generation.
type Config struct {
	// R is the number of reduce tasks.
	R int
	// CostVector is C = {c₁ < c₂ < … < c_K}: the sampled cost points of
	// the quality function (Eq. 1). Use AutoCostVector for a sensible
	// default derived from the estimated total cost.
	CostVector []costmodel.Units
	// Weights is W(cᵢ) per bucket, non-increasing, in [0,1].
	Weights []float64
	// Batch is b: trees split per identify/split iteration (§IV-C2
	// suggests a small value since few trees overflow).
	Batch int
	// Estimator supplies the split-update arithmetic of §IV-C2.
	Estimator *estimate.Estimator
	// Kind selects Ours / NoSplit / LPT.
	Kind Kind
	// MaxSplitRounds bounds the identify/split loop (safety valve; the
	// loop also stops when no split makes progress).
	MaxSplitRounds int
	// Trace, when non-nil, receives schedule-generation spans: one
	// summary, one per detached subtree, and one per reduce task's final
	// plan (tree/block counts, estimated load, leftover slack). The
	// spans are zero-duration instants at TraceBase on the simulated
	// clock — generation's simulated cost is charged by Job 2's map
	// tasks, not here. Nil disables at zero cost.
	Trace *obs.Tracer
	// TraceBase positions generation spans on the simulated clock
	// (typically Job 1's end time).
	TraceBase costmodel.Units
	// Quality, when non-nil, receives the generated schedule's
	// per-block predictions (Dup(X)/Cost(X)/Util(X), Eq. 2–5, captured
	// after splitting so they are the values the schedule was built
	// from) and per-task plans (planned load and leftover slack SK(R)),
	// for calibration against Job 2's realized telemetry. Nil disables
	// at zero cost.
	Quality *quality.Recorder
}

func (c *Config) validate() error {
	if c.R < 1 {
		return fmt.Errorf("sched: R must be ≥ 1, got %d", c.R)
	}
	if len(c.CostVector) == 0 {
		return fmt.Errorf("sched: empty cost vector")
	}
	prev := costmodel.Units(0)
	for i, cv := range c.CostVector {
		if cv <= prev {
			return fmt.Errorf("sched: cost vector must be strictly increasing (index %d)", i)
		}
		prev = cv
	}
	if len(c.Weights) != len(c.CostVector) {
		return fmt.Errorf("sched: %d weights for %d cost points", len(c.Weights), len(c.CostVector))
	}
	for i := 1; i < len(c.Weights); i++ {
		if c.Weights[i] > c.Weights[i-1] {
			return fmt.Errorf("sched: weights must be non-increasing")
		}
	}
	if c.Estimator == nil && c.Kind == Ours {
		return fmt.Errorf("sched: Ours scheduler requires an estimator for splits")
	}
	return nil
}

// AutoCostVector derives a K-point cost vector from the estimated total
// block cost. The points grow geometrically up to the per-task budget
// (c_K = total/r, cᵢ = c_K/2^(K−i)): early sampling intervals are
// narrow — so the splitter aggressively parallelizes the beneficial
// high-utility work that defines progressiveness — while late intervals
// are wide, leaving the low-utility tail alone.
func AutoCostVector(trees []*blocking.Tree, r, k int) []costmodel.Units {
	total := costmodel.Units(0)
	for _, t := range trees {
		for _, b := range t.Blocks() {
			total += b.CostEst
		}
	}
	if r < 1 {
		r = 1
	}
	if k < 1 {
		k = 1
	}
	perTask := total / costmodel.Units(r)
	if perTask <= 0 {
		perTask = 1
	}
	out := make([]costmodel.Units, k)
	for i := range out {
		out[i] = perTask / costmodel.Units(int64(1)<<uint(k-1-i))
	}
	return out
}

// LinearWeights returns the non-increasing weights W(cᵢ) = (K−i)/K for
// i = 0..K−1 — early cost intervals matter most, the essence of
// progressiveness.
func LinearWeights(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = float64(k-i) / float64(k)
	}
	return out
}

// ExponentialWeights returns W(cᵢ) = 2^−i: a sharper early emphasis
// than LinearWeights, one of the alternative weighting functions the
// paper's extended report discusses.
func ExponentialWeights(k int) []float64 {
	out := make([]float64, k)
	w := 1.0
	for i := range out {
		out[i] = w
		w /= 2
	}
	return out
}

// UniformWeights returns W(cᵢ) = 1 for all buckets: every unit of
// progress counts equally — the weighting for the budget-constrained
// objective below.
func UniformWeights(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = 1
	}
	return out
}

// BudgetCostVector returns the cost vector for the extended report's
// budget-constrained objective: maximize the quality achieved within a
// total resolution budget B. The per-task share B/r is divided into k
// equal sampling intervals; pair it with UniformWeights so the
// scheduler cares about everything inside the budget and nothing
// beyond it.
func BudgetCostVector(budget costmodel.Units, r, k int) []costmodel.Units {
	if r < 1 {
		r = 1
	}
	if k < 1 {
		k = 1
	}
	perTask := budget / costmodel.Units(r)
	if perTask <= 0 {
		perTask = 1
	}
	out := make([]costmodel.Units, k)
	for i := range out {
		out[i] = perTask * costmodel.Units(i+1) / costmodel.Units(k)
	}
	return out
}

// taskRange is the width of each reduce task's sequence-value range.
const taskRange = int64(1_000_000_000)

// SQFor composes a sequence value from a task index and a position in
// that task's block schedule.
func SQFor(task int, pos int) int64 { return int64(task)*taskRange + int64(pos) }

// TaskOfSQ recovers the reduce task that owns a sequence value; this is
// the job's partition function.
func TaskOfSQ(sq int64) int { return int(sq / taskRange) }

// SQKey renders a sequence value as a fixed-width decimal string so the
// framework's lexicographic key sort equals numeric SQ order.
func SQKey(sq int64) string { return fmt.Sprintf("%018d", sq) }

// ParseSQKey inverts SQKey.
func ParseSQKey(key string) (int64, error) {
	var sq int64
	if _, err := fmt.Sscanf(key, "%d", &sq); err != nil {
		return 0, fmt.Errorf("sched: bad sequence key %q: %w", key, err)
	}
	return sq, nil
}

// Schedule is the progressive schedule: the final tree set (after
// splitting), the tree partition, and the per-task block schedules with
// sequence values assigned.
type Schedule struct {
	// Trees is every tree, in dominance-value order (Tree.Dom == index).
	Trees []*blocking.Tree
	// TaskOfTree maps each tree (by position in Trees) to its reduce task.
	TaskOfTree []int
	// TaskBlocks[task] is the task's block schedule, in resolution order.
	TaskBlocks [][]*blocking.Block
	// ByID indexes every scheduled block.
	ByID map[blocking.BlockID]*blocking.Block
	// TreeOf maps each block ID to its tree's position in Trees.
	TreeOf map[blocking.BlockID]int
	// R is the number of reduce tasks.
	R int
}

// FirstSQOfTree returns, per tree index, the smallest sequence value of
// the tree's blocks — the key under which the compact (footnote-5) map
// emission ships the tree's entities, guaranteeing they arrive before
// any of the tree's blocks are resolved.
func (s *Schedule) FirstSQOfTree() []int64 {
	out := make([]int64, len(s.Trees))
	for i, t := range s.Trees {
		first := int64(-1)
		for _, b := range t.Blocks() {
			if first < 0 || b.SQ < first {
				first = b.SQ
			}
		}
		out[i] = first
	}
	return out
}

// Block returns the scheduled block with the given sequence value, or
// nil. Used by the reduce function to find the block a key refers to.
func (s *Schedule) Block(sq int64) *blocking.Block {
	task := TaskOfSQ(sq)
	if task < 0 || task >= len(s.TaskBlocks) {
		return nil
	}
	pos := int(sq % taskRange)
	if pos < 0 || pos >= len(s.TaskBlocks[task]) {
		return nil
	}
	return s.TaskBlocks[task][pos]
}

// NumBlocks returns the total number of scheduled blocks.
func (s *Schedule) NumBlocks() int {
	n := 0
	for _, bs := range s.TaskBlocks {
		n += len(bs)
	}
	return n
}

// Generate runs the configured scheduler over the estimated trees.
// The input trees are mutated (splits detach subtrees, blocks receive
// SQ values); pass a freshly built forest.
func Generate(trees []*blocking.Tree, cfg Config) (*Schedule, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 4
	}
	if cfg.MaxSplitRounds <= 0 {
		cfg.MaxSplitRounds = 64
	}

	g := &generator{cfg: cfg, trees: trees}
	if cfg.Kind == Ours {
		g.splitLoop()
	}
	switch cfg.Kind {
	case LPT:
		g.partitionLPT()
	default:
		g.partitionBySlack()
	}
	g.orderBlocks()
	g.assignDomAndSQ()

	s := g.schedule()
	g.emitTrace(s)
	g.emitQuality(s)
	return s, nil
}

// emitQuality publishes the final schedule's predictions and plans to
// the quality recorder: one TaskPlan per reduce task (load from
// PARTITION-TREES, leftover slack SK(R)) and one BlockPrediction per
// scheduled block, in (task, position) order. Like emitTrace,
// everything derives from the schedule itself, so the stream is
// deterministic.
func (g *generator) emitQuality(s *Schedule) {
	q := g.cfg.Quality
	if !q.Enabled() {
		return
	}
	q.SetBucketLabels(estimate.FracBucketLabels())
	treesOf := make([]int, s.R)
	for _, task := range s.TaskOfTree {
		treesOf[task]++
	}
	for r := 0; r < s.R; r++ {
		slack := 0.0
		if g.taskSlack != nil {
			slack = g.taskSlack[r]
		}
		q.RecordPlan(quality.TaskPlan{
			Task:    r,
			Trees:   treesOf[r],
			Blocks:  len(s.TaskBlocks[r]),
			EstCost: float64(g.taskLoad[r]),
			Slack:   slack,
		})
		for _, b := range s.TaskBlocks[r] {
			q.RecordPrediction(quality.BlockPrediction{
				ID:     b.ID.String(),
				SQ:     b.SQ,
				Task:   r,
				Tree:   s.TreeOf[b.ID],
				Size:   b.Size,
				Bucket: g.cfg.Estimator.FracBucketOf(b),
				Dup:    b.DupEst,
				Cost:   float64(b.CostEst),
				Util:   b.Util,
				Full:   b.FullResolve,
			})
		}
	}
}

// emitTrace publishes the generation decisions as zero-duration spans
// at cfg.TraceBase: the split decisions of the identify/split loop and
// each reduce task's final plan with its load and slack. Everything
// here derives from the schedule itself, so traces are deterministic.
func (g *generator) emitTrace(s *Schedule) {
	tr := g.cfg.Trace
	if tr == nil {
		return
	}
	pid := tr.PID("schedule-generation")
	at := g.cfg.TraceBase
	tr.Add(obs.Span{
		Cat: "schedule", Name: "generate (" + g.cfg.Kind.String() + ")",
		PID: pid, Start: at,
		Args: []obs.Arg{
			obs.A("trees", len(s.Trees)),
			obs.A("blocks", s.NumBlocks()),
			obs.A("r", s.R),
			obs.A("split_rounds", g.splitRounds),
			obs.A("splits", len(g.splitEvents)),
		},
	})
	for _, ev := range g.splitEvents {
		tr.Add(obs.Span{
			Cat: "schedule", Name: "split " + ev.root,
			PID: pid, Start: at,
			Args: []obs.Arg{obs.A("round", ev.round), obs.A("detached", ev.detached)},
		})
	}
	treesOf := make([]int, s.R)
	for _, task := range s.TaskOfTree {
		treesOf[task]++
	}
	for r := 0; r < s.R; r++ {
		args := []obs.Arg{
			obs.A("trees", treesOf[r]),
			obs.A("blocks", len(s.TaskBlocks[r])),
			obs.A("est_cost", float64(g.taskLoad[r])),
		}
		if g.taskSlack != nil {
			args = append(args, obs.A("slack", g.taskSlack[r]))
		}
		tr.Add(obs.Span{
			Cat: "schedule", Name: fmt.Sprintf("plan task %d", r),
			PID: pid, TID: r, Start: at, Args: args,
		})
	}
}
