package estimate

import (
	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/entity"
)

// Estimator fills the per-block estimation fields (§IV-B) and provides
// the split-update arithmetic used by SPLIT-TREE (§IV-C2).
type Estimator struct {
	Policy      Policy
	Cost        costmodel.Model
	Dup         DupModel
	DatasetSize int
}

// NewEstimator builds an estimator. A nil model falls back to
// DefaultModel.
func NewEstimator(policy Policy, cost costmodel.Model, model DupModel, datasetSize int) *Estimator {
	if model == nil {
		model = DefaultModel{}
	}
	return &Estimator{Policy: policy, Cost: cost, Dup: model, DatasetSize: datasetSize}
}

// WindowPairs returns the number of pairs the SN/PSNM mechanism
// examines on a block of n entities with window w:
// Σ_{d=1}^{w−1}(n−d), which is all pairs when w ≥ n.
func WindowPairs(n, w int) int64 {
	if n < 2 {
		return 0
	}
	if w > n {
		w = n
	}
	if w < 2 {
		w = 2
	}
	d := int64(w - 1)
	return d*int64(n) - d*(d+1)/2
}

// EstimateTree computes Cov, d, Dup, Dis, Cost, and Util for every
// block of the tree, bottom-up (children before parents, as required by
// Eq. 2/4/5). The tree root is marked FullResolve.
func (e *Estimator) EstimateTree(t *blocking.Tree) {
	t.Root.FullResolve = true
	e.estimateBlock(t.Root)
}

func (e *Estimator) estimateBlock(b *blocking.Block) {
	for _, c := range b.Children {
		e.estimateBlock(c)
	}
	e.fillBlock(b)
}

// fillBlock computes b's estimates assuming all descendants are done.
func (e *Estimator) fillBlock(b *blocking.Block) {
	b.Cov = entity.Pairs(b.Size) - b.Uncov
	if b.Cov < 0 {
		b.Cov = 0
	}
	b.DSelf = e.Dup.D(b, b.Cov, e.DatasetSize)
	b.Frac = e.Policy.Frac(b)
	b.Th = e.Policy.Th(b)

	// Eq. 2: Dup(X) = Frac(X)·d(X) − Σ_child Frac(child)·d(child).
	dup := b.Frac * b.DSelf
	for _, c := range b.Children {
		dup -= c.Frac * c.DSelf
	}
	if dup < 0 {
		dup = 0
	}
	b.DupEst = dup

	costA := e.Cost.HintCost(b.Size)
	if b.FullResolve {
		// Eq. 5: Cost = CostA + CostF − Σ_desc CostP.
		cost := costA + e.costF(b)
		for _, d := range b.Descendants() {
			cost -= e.costP(d)
		}
		if cost < costA {
			cost = costA
		}
		b.CostEst = cost
		b.DisEst = 0
	} else {
		// Eq. 4: Remain = Cov − d − Σ_desc Dis.
		remain := float64(b.Cov) - b.DSelf
		for _, d := range b.Descendants() {
			remain -= d.DisEst
		}
		if remain < 0 {
			remain = 0
		}
		b.DisEst = remain
		if th := float64(b.Th); th < b.DisEst {
			b.DisEst = th
		}
		// Eq. 3: Cost = CostA + CostP.
		b.CostEst = costA + e.costP(b)
	}
	if b.CostEst > 0 {
		b.Util = b.DupEst / b.CostEst
	} else {
		b.Util = 0
	}
}

// FracBucketOf returns the DupModel size-fraction bucket the block
// falls in (the sub-range whose learned probability priced the block),
// or −1 when the estimator or dataset size is unknown. Nil-safe.
func (e *Estimator) FracBucketOf(b *blocking.Block) int {
	if e == nil || e.DatasetSize <= 0 {
		return -1
	}
	return fracBucket(float64(b.Size) / float64(e.DatasetSize))
}

// CostPartial exposes CostP(X) for the schedule generator's
// hypothetical-cost evaluation during SPLIT-TREE.
func (e *Estimator) CostPartial(b *blocking.Block) costmodel.Units { return e.costP(b) }

// CostFull exposes CostF(X) for the schedule generator.
func (e *Estimator) CostFull(b *blocking.Block) costmodel.Units { return e.costF(b) }

// costP is CostP(X): the cost of resolving the Dup(X) duplicate pairs
// and Dis(X) distinct pairs of a partial visit.
func (e *Estimator) costP(b *blocking.Block) costmodel.Units {
	return (b.DupEst + b.DisEst) * e.Cost.PairCompare
}

// costF is CostF(X): the cost of resolving X fully — the mechanism
// examines WindowPairs(|X|, w_root) pairs, of which the covered
// fraction pays a full comparison and the rest only a skip check
// (they are another tree's responsibility).
func (e *Estimator) costF(b *blocking.Block) costmodel.Units {
	wp := float64(WindowPairs(b.Size, e.Policy.WindowRoot))
	pairs := float64(entity.Pairs(b.Size))
	covFrac := 1.0
	if pairs > 0 {
		covFrac = float64(b.Cov) / pairs
	}
	return wp*covFrac*e.Cost.PairCompare + wp*(1-covFrac)*e.Cost.SkipPair
}

// Prune applies block elimination: blocks with fewer than two entities
// contain no pairs and are dropped from their trees (their cost —
// generating a hint for nothing — would be pure overhead). Trees whose
// root has fewer than two entities are removed entirely. Returns the
// surviving trees. Must run before EstimateTree.
func Prune(trees []*blocking.Tree) []*blocking.Tree {
	out := trees[:0]
	for _, t := range trees {
		if t.Root.Size < 2 {
			continue
		}
		pruneChildren(t.Root)
		out = append(out, t)
	}
	return out
}

func pruneChildren(b *blocking.Block) {
	kept := b.Children[:0]
	for _, c := range b.Children {
		if c.Size < 2 {
			continue
		}
		pruneChildren(c)
		kept = append(kept, c)
	}
	b.Children = kept
}

// DetachChild implements the split strategy of §IV-C2 on a tree root:
// the child subtree is detached into a new tree whose root is resolved
// fully. Both blocks' estimates are updated per the paper:
//
//   - child: Frac ← 1, Dup via Eq. 2, Cost via Eq. 5 (it is a root now);
//   - parent (the old tree root): Cov decreases by Cov(child), Dup
//     decreases by the *increase* in the child's duplicates, Desc
//     shrinks, and Cost is recomputed via Eq. 5.
//
// Returns the new tree. The caller re-sorts its block lists afterwards.
func (e *Estimator) DetachChild(parent, child *blocking.Block) *blocking.Tree {
	// Unlink.
	kept := parent.Children[:0]
	for _, c := range parent.Children {
		if c != child {
			kept = append(kept, c)
		}
	}
	parent.Children = kept
	child.Parent = nil

	oldChildDup := child.DupEst

	// Child becomes a fully-resolved root.
	child.FullResolve = true
	e.fillBlock(child)

	dupIncrease := child.DupEst - oldChildDup
	parent.Cov -= child.Cov
	if parent.Cov < 0 {
		parent.Cov = 0
	}
	parent.DupEst -= dupIncrease
	if parent.DupEst < 0 {
		parent.DupEst = 0
	}
	// Recompute the parent's cost with the reduced Cov and descendant
	// set (Eq. 5); keep the adjusted DupEst rather than re-deriving it
	// from Eq. 2, exactly as the paper prescribes.
	costA := e.Cost.HintCost(parent.Size)
	cost := costA + e.costF(parent)
	for _, d := range parent.Descendants() {
		cost -= e.costP(d)
	}
	if cost < costA {
		cost = costA
	}
	parent.CostEst = cost
	if parent.CostEst > 0 {
		parent.Util = parent.DupEst / parent.CostEst
	} else {
		parent.Util = 0
	}

	return &blocking.Tree{Root: child}
}
