package estimate

import (
	"fmt"
	"math"
	"sort"

	"proger/internal/blocking"
	"proger/internal/datagen"
	"proger/internal/entity"
)

// DupModel estimates d(X): the number of covered duplicate pairs in a
// block. The paper's instantiation (§VI-A4) is d = Prob(|X|)·pairs,
// where Prob is the probability that a covered pair of the block is a
// duplicate, learned from a training dataset over variable-size
// sub-ranges of the block-size fraction |X|/|D|.
type DupModel interface {
	// D returns the estimated covered duplicate pairs of b. cov is the
	// block's covered-pair count and datasetSize is |D|.
	D(b *blocking.Block, cov int64, datasetSize int) float64
}

// numBuckets is the number of log₁₀ sub-ranges of the fraction range
// (0, 1]: bucket 0 holds fractions ≥ 0.1, bucket k holds
// [10^−(k+1), 10^−k).
const numBuckets = 8

// NumFracBuckets exposes the sub-range count for consumers that mirror
// the model's bucketing (e.g. the quality-telemetry calibration
// report).
const NumFracBuckets = numBuckets

// FracBucket exposes fracBucket: the sub-range index of a size
// fraction |X|/|D|.
func FracBucket(frac float64) int { return fracBucket(frac) }

// FracBucketLabels returns a printable label per sub-range, aligned
// with BucketBounds.
func FracBucketLabels() []string {
	out := make([]string, numBuckets)
	for i, b := range BucketBounds() {
		if b[0] == 0 {
			out[i] = fmt.Sprintf("<%.0e", b[1])
		} else {
			out[i] = fmt.Sprintf("[%.0e,%.0e)", b[0], b[1])
		}
	}
	return out
}

// fracBucket maps a size fraction to its sub-range index.
func fracBucket(frac float64) int {
	if frac <= 0 {
		return numBuckets - 1
	}
	b := int(-math.Log10(frac))
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// DefaultModel is the analytic fallback used when no training data is
// available: duplicate probability decays with block size, reflecting
// the paper's observation that "the smaller the block, the higher its
// percentage of duplicate pairs".
type DefaultModel struct{}

// D implements DupModel.
func (DefaultModel) D(b *blocking.Block, cov int64, datasetSize int) float64 {
	if cov <= 0 || b.Size < 2 {
		return 0
	}
	prob := math.Min(0.6, 3.0/float64(b.Size))
	return prob * float64(cov)
}

// levelKey identifies the blocking function X^i a probability table
// belongs to.
type levelKey struct {
	Family int8
	Level  int8
}

// BucketModel is the trained model of §VI-A4: per blocking function,
// a duplicate probability per size-fraction sub-range.
type BucketModel struct {
	// Probs[k][bucket] is the learned duplicate probability.
	Probs map[levelKey][numBuckets]float64
	// Global[bucket] is the cross-function fallback for functions or
	// buckets with no training evidence.
	Global [numBuckets]float64
	// seen[k][bucket] records whether evidence existed.
	seen  map[levelKey][numBuckets]bool
	gSeen [numBuckets]bool
}

// D implements DupModel.
func (m *BucketModel) D(b *blocking.Block, cov int64, datasetSize int) float64 {
	if cov <= 0 || b.Size < 2 || datasetSize <= 0 {
		return 0
	}
	bucket := fracBucket(float64(b.Size) / float64(datasetSize))
	k := levelKey{Family: b.ID.Family, Level: b.ID.Level}
	if probs, ok := m.Probs[k]; ok && m.seen[k][bucket] {
		return probs[bucket] * float64(cov)
	}
	if m.gSeen[bucket] {
		return m.Global[bucket] * float64(cov)
	}
	return DefaultModel{}.D(b, cov, datasetSize)
}

// Train learns a BucketModel from a training dataset with ground truth
// (§VI-A4): it blocks the training data with the same families, and for
// every blocking function and size-fraction sub-range accumulates
// (duplicate pairs) / (total pairs) over the blocks falling in that
// sub-range.
func Train(ds *entity.Dataset, gt *datagen.GroundTruth, fams blocking.Families) *BucketModel {
	type acc struct {
		dup, pairs float64
	}
	perKey := map[levelKey][numBuckets]acc{}
	var global [numBuckets]acc
	n := ds.Len()

	for famIdx, fam := range fams {
		keys, groups := blocking.GroupByMainKey(ds, fam)
		for _, key := range keys {
			ents := groups[key]
			tree := blocking.BuildTree(fam, famIdx, key, ents)
			// Index members per block to count duplicate pairs.
			members := map[blocking.BlockID][]*entity.Entity{}
			for _, e := range ents {
				for l := 1; l <= fam.Levels(); l++ {
					id := blocking.BlockID{Family: int8(famIdx), Level: int8(l), Key: fam.Key(e, l)}
					members[id] = append(members[id], e)
				}
			}
			tree.Root.Walk(func(b *blocking.Block) {
				if b.Size < 2 {
					return
				}
				dup := dupPairsIn(members[b.ID], gt)
				pairs := float64(entity.Pairs(b.Size))
				bucket := fracBucket(float64(b.Size) / float64(n))
				k := levelKey{Family: b.ID.Family, Level: b.ID.Level}
				a := perKey[k]
				a[bucket].dup += float64(dup)
				a[bucket].pairs += pairs
				perKey[k] = a
				global[bucket].dup += float64(dup)
				global[bucket].pairs += pairs
			})
		}
	}

	m := &BucketModel{
		Probs: map[levelKey][numBuckets]float64{},
		seen:  map[levelKey][numBuckets]bool{},
	}
	for k, a := range perKey {
		var probs [numBuckets]float64
		var seen [numBuckets]bool
		for i := range a {
			if a[i].pairs > 0 {
				probs[i] = a[i].dup / a[i].pairs
				seen[i] = true
			}
		}
		m.Probs[k] = probs
		m.seen[k] = seen
	}
	for i := range global {
		if global[i].pairs > 0 {
			m.Global[i] = global[i].dup / global[i].pairs
			m.gSeen[i] = true
		}
	}
	return m
}

// dupPairsIn counts ground-truth duplicate pairs among ents by grouping
// on cluster IDs.
func dupPairsIn(ents []*entity.Entity, gt *datagen.GroundTruth) int64 {
	counts := map[int]int{}
	for _, e := range ents {
		if int(e.ID) < len(gt.ClusterOf) {
			counts[gt.ClusterOf[e.ID]]++
		}
	}
	var total int64
	for _, c := range counts {
		total += entity.Pairs(c)
	}
	return total
}

// BucketBounds returns the (lo, hi] fraction bounds of each sub-range,
// for documentation and tests.
func BucketBounds() [][2]float64 {
	out := make([][2]float64, numBuckets)
	hi := 1.0
	for i := 0; i < numBuckets; i++ {
		lo := math.Pow(10, -float64(i+1))
		if i == numBuckets-1 {
			lo = 0
		}
		out[i] = [2]float64{lo, hi}
		hi = lo
	}
	return out
}

// sortKeys is a test helper: the level keys of a trained model, ordered.
func (m *BucketModel) sortKeys() []levelKey {
	keys := make([]levelKey, 0, len(m.Probs))
	for k := range m.Probs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Family != keys[j].Family {
			return keys[i].Family < keys[j].Family
		}
		return keys[i].Level < keys[j].Level
	})
	return keys
}
