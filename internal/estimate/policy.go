// Package estimate implements §IV-B of the paper: the duplicate and
// cost models for blocks. It computes, bottom-up over each blocking
// tree, the per-block values the schedule generator consumes —
// Cov (covered pairs), d(X) (estimated covered duplicates), Dup(X)
// (Eq. 2), Cost(X) (Eq. 3 for partial resolves, Eq. 5 for full
// resolves), Dis(X)/Remain(X) (Eq. 4), and Util(X) = Dup/Cost — plus
// the split-update arithmetic of §IV-C2 and the block-elimination pass.
package estimate

import (
	"proger/internal/blocking"
)

// Policy sets the per-block resolution parameters of §VI-A5: the SN
// window by tree level, the termination threshold Th(X), and the
// expected-find fraction Frac(X), which must be set "in compliance
// with" Th (a more aggressive Th means a smaller Frac).
type Policy struct {
	// WindowRoot/WindowMid/WindowLeaf are the SN window sizes w for
	// root, middle, and leaf blocks (paper: 15 / 10 / 5).
	WindowRoot, WindowMid, WindowLeaf int
	// FracLeaf and FracMid are Frac(X) for leaf and middle blocks
	// (paper: 0.8 / 0.9 for CiteSeerX, 0.85 / 0.95 for OL-Books).
	// Root blocks always have Frac = 1.
	FracLeaf, FracMid float64
	// ThFactor scales the termination threshold: Th(X) = ThFactor·|X|
	// (paper: Th(X) = |X|, so 1.0).
	ThFactor float64
}

// CiteSeerXPolicy returns the §VI-A5 settings used for CiteSeerX.
func CiteSeerXPolicy() Policy {
	return Policy{WindowRoot: 15, WindowMid: 10, WindowLeaf: 5, FracLeaf: 0.80, FracMid: 0.90, ThFactor: 1}
}

// OLBooksPolicy returns the §VI-A5 settings used for OL-Books.
func OLBooksPolicy() Policy {
	return Policy{WindowRoot: 15, WindowMid: 10, WindowLeaf: 5, FracLeaf: 0.85, FracMid: 0.95, ThFactor: 1}
}

// Window returns the SN window for a block. Note that a *detached*
// (split-off) subtree root is resolved fully and therefore uses the
// root window.
func (p Policy) Window(b *blocking.Block) int {
	switch {
	case b.IsRoot() || b.FullResolve:
		return p.WindowRoot
	case b.IsLeaf():
		return p.WindowLeaf
	default:
		return p.WindowMid
	}
}

// Frac returns Frac(X): the fraction of d(X) the mechanism is expected
// to find under the block's termination threshold.
func (p Policy) Frac(b *blocking.Block) float64 {
	switch {
	case b.IsRoot() || b.FullResolve:
		return 1
	case b.IsLeaf():
		return p.FracLeaf
	default:
		return p.FracMid
	}
}

// Th returns the termination threshold Th(X) — the partial resolve
// stops after Th distinct pairs. The paper sets Th(X) = |X|, which
// automatically makes every block's threshold smaller than its
// parent's (children are never larger than parents).
func (p Policy) Th(b *blocking.Block) int64 {
	th := int64(p.ThFactor * float64(b.Size))
	if th < 1 {
		th = 1
	}
	return th
}
