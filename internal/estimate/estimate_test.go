package estimate

import (
	"math"
	"testing"

	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/datagen"
	"proger/internal/entity"
)

func TestWindowPairs(t *testing.T) {
	cases := []struct {
		n, w int
		want int64
	}{
		{0, 5, 0}, {1, 5, 0},
		{2, 5, 1},      // w clamps to n → all pairs
		{4, 10, 6},     // all pairs
		{10, 3, 9 + 8}, // d=1: 9, d=2: 8
		{10, 10, 45},   // all pairs
		{100, 15, 14*100 - 15*14/2},
		{5, 0, 4}, // w<2 clamps to 2 → distance-1 pairs only
	}
	for _, c := range cases {
		if got := WindowPairs(c.n, c.w); got != c.want {
			t.Errorf("WindowPairs(%d,%d) = %d, want %d", c.n, c.w, got, c.want)
		}
	}
}

func TestWindowPairsNeverExceedsAllPairs(t *testing.T) {
	for n := 0; n < 60; n++ {
		for w := 0; w < 70; w++ {
			if got := WindowPairs(n, w); got > entity.Pairs(n) {
				t.Fatalf("WindowPairs(%d,%d) = %d > Pairs = %d", n, w, got, entity.Pairs(n))
			}
		}
	}
}

func TestPolicyLevels(t *testing.T) {
	p := CiteSeerXPolicy()
	root := &blocking.Block{Size: 100}
	mid := &blocking.Block{Size: 40, Parent: root}
	leaf := &blocking.Block{Size: 10, Parent: mid}
	mid.Children = []*blocking.Block{leaf}
	root.Children = []*blocking.Block{mid}

	if p.Window(root) != 15 || p.Window(mid) != 10 || p.Window(leaf) != 5 {
		t.Errorf("windows = %d,%d,%d", p.Window(root), p.Window(mid), p.Window(leaf))
	}
	if p.Frac(root) != 1 || p.Frac(mid) != 0.9 || p.Frac(leaf) != 0.8 {
		t.Errorf("fracs = %v,%v,%v", p.Frac(root), p.Frac(mid), p.Frac(leaf))
	}
	if p.Th(mid) != 40 {
		t.Errorf("Th = %d, want |X| = 40", p.Th(mid))
	}
	// Detached subtree roots count as full resolves.
	detached := &blocking.Block{Size: 40, FullResolve: true}
	if p.Window(detached) != 15 || p.Frac(detached) != 1 {
		t.Error("FullResolve block should use root parameters")
	}
	// Th is never below 1.
	tiny := &blocking.Block{Size: 0}
	if p.Th(tiny) != 1 {
		t.Errorf("Th(0) = %d", p.Th(tiny))
	}
	b := OLBooksPolicy()
	if b.FracLeaf != 0.85 || b.FracMid != 0.95 {
		t.Error("books policy fracs wrong")
	}
}

func TestFracBucket(t *testing.T) {
	cases := map[float64]int{
		1.0:   0,
		0.5:   0,
		0.1:   0, // boundary: −log10(0.1) = 1 exactly... see below
		0.09:  1,
		0.009: 2,
		1e-9:  7,
		0:     7,
		-1:    7,
	}
	// 0.1 is a float boundary; accept bucket 0 or 1.
	for f, want := range cases {
		got := fracBucket(f)
		if f == 0.1 {
			if got != 0 && got != 1 {
				t.Errorf("fracBucket(0.1) = %d", got)
			}
			continue
		}
		if got != want {
			t.Errorf("fracBucket(%v) = %d, want %d", f, got, want)
		}
	}
}

func TestBucketBounds(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != numBuckets {
		t.Fatalf("bounds = %d", len(bounds))
	}
	if bounds[0][1] != 1.0 || bounds[numBuckets-1][0] != 0 {
		t.Errorf("outer bounds wrong: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i][1] != bounds[i-1][0] {
			t.Errorf("bounds not contiguous at %d", i)
		}
	}
}

func TestDefaultModelMonotoneDecreasingDensity(t *testing.T) {
	m := DefaultModel{}
	small := &blocking.Block{Size: 10}
	large := &blocking.Block{Size: 1000}
	ds := 10000
	dSmall := m.D(small, entity.Pairs(10), ds) / float64(entity.Pairs(10))
	dLarge := m.D(large, entity.Pairs(1000), ds) / float64(entity.Pairs(1000))
	if dSmall <= dLarge {
		t.Errorf("duplicate density should fall with size: %v vs %v", dSmall, dLarge)
	}
	if m.D(small, 0, ds) != 0 {
		t.Error("zero covered pairs → zero estimate")
	}
	if got := m.D(&blocking.Block{Size: 1}, 5, ds); got != 0 {
		t.Errorf("singleton block: %v", got)
	}
}

func TestTrainLearnsHigherDensityForSmallerBlocks(t *testing.T) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(2000, 31))
	fams := blocking.CiteSeerXFamilies(ds.Schema)
	m := Train(ds, gt, fams)
	if len(m.Probs) == 0 {
		t.Fatal("no probabilities learned")
	}
	// Deeper levels (smaller blocks) should have higher learned
	// duplicate probability on the whole: compare level 1 vs level 3 of
	// family X in their populated buckets.
	k1 := levelKey{Family: 0, Level: 1}
	k3 := levelKey{Family: 0, Level: 3}
	p1, ok1 := m.Probs[k1]
	p3, ok3 := m.Probs[k3]
	if !ok1 || !ok3 {
		t.Fatalf("missing level keys: %v", m.sortKeys())
	}
	avg := func(p [numBuckets]float64, seen [numBuckets]bool) float64 {
		s, n := 0.0, 0
		for i := range p {
			if seen[i] {
				s += p[i]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	a1 := avg(p1, m.seen[k1])
	a3 := avg(p3, m.seen[k3])
	if a3 <= a1 {
		t.Errorf("level-3 density %v should exceed level-1 density %v", a3, a1)
	}
	// All probabilities are valid.
	for k, probs := range m.Probs {
		for i, p := range probs {
			if p < 0 || p > 1 {
				t.Errorf("prob %v at %v bucket %d outside [0,1]", p, k, i)
			}
		}
	}
}

func TestBucketModelFallsBack(t *testing.T) {
	m := &BucketModel{
		Probs: map[levelKey][numBuckets]float64{},
		seen:  map[levelKey][numBuckets]bool{},
	}
	b := &blocking.Block{ID: blocking.BlockID{Family: 0, Level: 1}, Size: 50}
	// Nothing trained → default model value.
	got := m.D(b, entity.Pairs(50), 1000)
	want := DefaultModel{}.D(b, entity.Pairs(50), 1000)
	if got != want {
		t.Errorf("untrained fallback = %v, want default %v", got, want)
	}
	// Global bucket present → used.
	bucket := fracBucket(50.0 / 1000)
	m.Global[bucket] = 0.25
	m.gSeen[bucket] = true
	if got := m.D(b, 100, 1000); got != 25 {
		t.Errorf("global fallback = %v, want 25", got)
	}
	// Per-function value overrides global.
	var probs [numBuckets]float64
	var seen [numBuckets]bool
	probs[bucket] = 0.5
	seen[bucket] = true
	m.Probs[levelKey{Family: 0, Level: 1}] = probs
	m.seen[levelKey{Family: 0, Level: 1}] = seen
	if got := m.D(b, 100, 1000); got != 50 {
		t.Errorf("trained value = %v, want 50", got)
	}
}

// buildTestTree makes a root (size 20) with two children (12, 8), one
// grandchild under the first child (size 6).
func buildTestTree() *blocking.Tree {
	root := &blocking.Block{ID: blocking.BlockID{Family: 0, Level: 1, Key: "ro"}, Size: 20}
	c1 := &blocking.Block{ID: blocking.BlockID{Family: 0, Level: 2, Key: "roa"}, Size: 12, Parent: root}
	c2 := &blocking.Block{ID: blocking.BlockID{Family: 0, Level: 2, Key: "rob"}, Size: 8, Parent: root}
	g := &blocking.Block{ID: blocking.BlockID{Family: 0, Level: 3, Key: "roax"}, Size: 6, Parent: c1}
	c1.Children = []*blocking.Block{g}
	root.Children = []*blocking.Block{c1, c2}
	return &blocking.Tree{Root: root}
}

func TestEstimateTreeInvariants(t *testing.T) {
	tree := buildTestTree()
	e := NewEstimator(CiteSeerXPolicy(), costmodel.Default(), DefaultModel{}, 1000)
	e.EstimateTree(tree)
	for _, b := range tree.Blocks() {
		if b.Cov != entity.Pairs(b.Size)-b.Uncov {
			t.Errorf("%s: Cov %d ≠ Pairs−Uncov", b.ID, b.Cov)
		}
		if b.CostEst <= 0 {
			t.Errorf("%s: non-positive cost %v", b.ID, b.CostEst)
		}
		if b.DupEst < 0 {
			t.Errorf("%s: negative Dup %v", b.ID, b.DupEst)
		}
		if b.Util < 0 {
			t.Errorf("%s: negative Util %v", b.ID, b.Util)
		}
		if math.IsNaN(b.Util) || math.IsInf(b.Util, 0) {
			t.Errorf("%s: Util = %v", b.ID, b.Util)
		}
		if !b.IsRoot() && b.DisEst > float64(b.Th) {
			t.Errorf("%s: Dis %v exceeds Th %d", b.ID, b.DisEst, b.Th)
		}
	}
	if !tree.Root.FullResolve {
		t.Error("root must be marked FullResolve")
	}
	// Eq. 2 telescopes: the sum of Dup over the whole tree should not
	// exceed d(root) (all duplicates live in the root).
	var sum float64
	for _, b := range tree.Blocks() {
		sum += b.DupEst
	}
	if sum > tree.Root.DSelf+1e-9 {
		t.Errorf("ΣDup %v exceeds d(root) %v", sum, tree.Root.DSelf)
	}
}

func TestEstimateChildrenCheaperAndDenser(t *testing.T) {
	// The whole point of progressive blocking (§III-A): child blocks
	// have lower cost and (with the default model) higher utility.
	tree := buildTestTree()
	e := NewEstimator(CiteSeerXPolicy(), costmodel.Default(), DefaultModel{}, 1000)
	e.EstimateTree(tree)
	root := tree.Root
	for _, c := range root.Children {
		if c.CostEst >= root.CostEst {
			t.Errorf("child %s cost %v not below root cost %v", c.ID, c.CostEst, root.CostEst)
		}
	}
	g := root.Children[0].Children[0]
	if g.Util <= root.Util {
		t.Errorf("leaf util %v should exceed root util %v", g.Util, root.Util)
	}
}

func TestPrune(t *testing.T) {
	tree := buildTestTree()
	// Add a singleton child to the root and a singleton tree.
	single := &blocking.Block{ID: blocking.BlockID{Family: 0, Level: 2, Key: "roc"}, Size: 1, Parent: tree.Root}
	tree.Root.Children = append(tree.Root.Children, single)
	tiny := &blocking.Tree{Root: &blocking.Block{Size: 1}}
	trees := Prune([]*blocking.Tree{tree, tiny})
	if len(trees) != 1 {
		t.Fatalf("surviving trees = %d, want 1", len(trees))
	}
	for _, b := range trees[0].Blocks() {
		if b.Size < 2 {
			t.Errorf("block %s with size %d survived pruning", b.ID, b.Size)
		}
	}
	if len(trees[0].Root.Children) != 2 {
		t.Errorf("root children = %d, want 2", len(trees[0].Root.Children))
	}
}

func TestDetachChild(t *testing.T) {
	tree := buildTestTree()
	e := NewEstimator(CiteSeerXPolicy(), costmodel.Default(), DefaultModel{}, 1000)
	e.EstimateTree(tree)
	root := tree.Root
	c1 := root.Children[0]
	oldRootCov := root.Cov
	oldRootDup := root.DupEst
	oldRootCost := root.CostEst
	c1Cov := c1.Cov

	newTree := e.DetachChild(root, c1)

	if newTree.Root != c1 || c1.Parent != nil {
		t.Fatal("detach did not re-root the child")
	}
	if !c1.FullResolve || c1.Frac != 1 {
		t.Error("detached child must be a full resolve with Frac 1")
	}
	if len(root.Children) != 1 || root.Children[0].ID.Key != "rob" {
		t.Errorf("root children after detach: %v", root.Children)
	}
	if root.Cov != oldRootCov-c1Cov {
		t.Errorf("root Cov = %d, want %d", root.Cov, oldRootCov-c1Cov)
	}
	// The paper predicts: splitting increases the child's cost (it is
	// now resolved fully) and decreases its utility, and the root loses
	// the duplicates the child will now find itself.
	if root.DupEst > oldRootDup {
		t.Errorf("root Dup rose from %v to %v", oldRootDup, root.DupEst)
	}
	if root.CostEst > oldRootCost {
		t.Errorf("root cost rose from %v to %v after losing coverage", oldRootCost, root.CostEst)
	}
	if c1.CostEst <= 0 || c1.Util < 0 {
		t.Errorf("child estimates invalid: cost %v util %v", c1.CostEst, c1.Util)
	}
}

func TestDetachChildUtilityDrop(t *testing.T) {
	// "splitting a sub-tree would likely cause a high reduction in the
	// utility value of its root block" (§IV-C2).
	tree := buildTestTree()
	e := NewEstimator(CiteSeerXPolicy(), costmodel.Default(), DefaultModel{}, 1000)
	e.EstimateTree(tree)
	c1 := tree.Root.Children[0]
	oldUtil := c1.Util
	e.DetachChild(tree.Root, c1)
	if c1.Util >= oldUtil {
		t.Errorf("detached child utility %v should drop below %v", c1.Util, oldUtil)
	}
}

func TestEstimateOnGeneratedData(t *testing.T) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(1200, 13))
	fams := blocking.CiteSeerXFamilies(ds.Schema)
	model := Train(ds, gt, fams)
	e := NewEstimator(CiteSeerXPolicy(), costmodel.Default(), model, ds.Len())
	var trees []*blocking.Tree
	for famIdx, fam := range fams {
		keys, groups := blocking.GroupByMainKey(ds, fam)
		for _, k := range keys {
			ents := groups[k]
			tree := blocking.BuildTree(fam, famIdx, k, ents)
			mainKeys := make([][]string, len(ents))
			for i, e := range ents {
				mainKeys[i] = fams.MainKeys(e)
			}
			blocking.ComputeUncov(fam, tree, ents, mainKeys)
			trees = append(trees, tree)
		}
	}
	trees = Prune(trees)
	totalDup := 0.0
	for _, tr := range trees {
		e.EstimateTree(tr)
		for _, b := range tr.Blocks() {
			if b.DupEst < 0 || math.IsNaN(b.DupEst) {
				t.Fatalf("bad Dup at %s: %v", b.ID, b.DupEst)
			}
			if b.CostEst <= 0 {
				t.Fatalf("bad Cost at %s: %v", b.ID, b.CostEst)
			}
			totalDup += b.DupEst
		}
	}
	// Total estimated duplicates should be within a factor of the
	// ground truth (the estimator is a model, not an oracle).
	gtDups := float64(gt.NumDupPairs())
	if totalDup < gtDups*0.2 || totalDup > gtDups*5 {
		t.Errorf("estimated %v duplicates vs ground truth %v — model badly calibrated", totalDup, gtDups)
	}
}

func TestDetachAllChildrenSequentially(t *testing.T) {
	// Detaching every child one by one must keep the parent's estimates
	// finite and non-negative throughout.
	tree := buildTestTree()
	e := NewEstimator(CiteSeerXPolicy(), costmodel.Default(), DefaultModel{}, 1000)
	e.EstimateTree(tree)
	root := tree.Root
	for len(root.Children) > 0 {
		child := root.Children[0]
		nt := e.DetachChild(root, child)
		if nt.Root != child {
			t.Fatal("detached tree root mismatch")
		}
		if root.CostEst < 0 || root.DupEst < 0 || math.IsNaN(root.Util) {
			t.Fatalf("parent estimates degenerate: cost=%v dup=%v util=%v",
				root.CostEst, root.DupEst, root.Util)
		}
	}
	if root.Cov < 0 {
		t.Errorf("Cov went negative: %d", root.Cov)
	}
	// A childless full-resolve root still prices above pure CostA.
	if root.CostEst <= 0 {
		t.Errorf("cost = %v", root.CostEst)
	}
}

func TestEstimateSingleBlockTree(t *testing.T) {
	b := &blocking.Block{ID: blocking.BlockID{Family: 0, Level: 1, Key: "zz"}, Size: 5}
	tree := &blocking.Tree{Root: b}
	e := NewEstimator(CiteSeerXPolicy(), costmodel.Default(), DefaultModel{}, 100)
	e.EstimateTree(tree)
	if b.Cov != entity.Pairs(5) {
		t.Errorf("Cov = %d", b.Cov)
	}
	if !b.FullResolve || b.Frac != 1 {
		t.Error("single root must be a full resolve")
	}
	if b.DisEst != 0 {
		t.Errorf("root DisEst = %v", b.DisEst)
	}
}
