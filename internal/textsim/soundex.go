package textsim

import "strings"

// Soundex returns the classic 4-character Soundex code of s (letter +
// three digits, zero-padded), the phonetic key used by merge/purge-era
// blocking functions [Hernández & Stolfo 1995]. Non-ASCII-letter input
// characters are ignored; an empty or letterless input yields "0000".
func Soundex(s string) string {
	code := [4]byte{'0', '0', '0', '0'}
	n := 0
	var prev byte
	for i := 0; i < len(s) && n < 4; i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c < 'A' || c > 'Z' {
			prev = 0
			continue
		}
		d := soundexDigit(c)
		if n == 0 {
			code[0] = c
			n = 1
			prev = d
			continue
		}
		// H and W are transparent: the previous consonant group
		// continues through them.
		if c == 'H' || c == 'W' {
			continue
		}
		if d == 0 {
			prev = 0
			continue
		}
		if d != prev {
			code[n] = '0' + d
			n++
		}
		prev = d
	}
	return string(code[:])
}

// soundexDigit maps a letter to its Soundex group (0 for vowels and
// the transparent letters).
func soundexDigit(c byte) byte {
	switch c {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	default:
		return 0
	}
}

// SoundexOfFirstWord returns the Soundex code of the first
// whitespace-separated token of s — the usual blocking key for
// name-like attributes.
func SoundexOfFirstWord(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	return Soundex(s)
}
