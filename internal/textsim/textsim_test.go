package textsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"John Lopez", "Jonh Lopez", 2}, // transposition = 2 unit edits
		{"Charles Andrews", "Gharles Andrews", 1},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(4)) // small alphabet → collisions
		}
		return string(b)
	}
	for i := 0; i < 300; i++ {
		a, b, c := randStr(), randStr(), randStr()
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: d(%q,%q)=%d, d(%q,%q)=%d", a, b, dab, b, a, dba)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("identity violated for %q,%q: d=%d", a, b, dab)
		}
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		if dab > dac+dcb {
			t.Fatalf("triangle inequality violated: d(%q,%q)=%d > %d+%d via %q", a, b, dab, dac, dcb, c)
		}
	}
}

func TestLevenshteinCappedAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randStr := func(maxLen int) string {
		n := rng.Intn(maxLen)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(5))
		}
		return string(b)
	}
	for i := 0; i < 500; i++ {
		a, b := randStr(15), randStr(15)
		full := Levenshtein(a, b)
		for _, capv := range []int{0, 1, 2, 3, 5, 20} {
			got := LevenshteinCapped(a, b, capv)
			if full <= capv {
				if got != full {
					t.Fatalf("LevenshteinCapped(%q,%q,%d) = %d, want exact %d", a, b, capv, got, full)
				}
			} else if got <= capv {
				t.Fatalf("LevenshteinCapped(%q,%q,%d) = %d, but true distance %d > cap", a, b, capv, got, full)
			}
		}
	}
}

func TestLevenshteinCappedEdgeCases(t *testing.T) {
	if got := LevenshteinCapped("abc", "abc", 0); got != 0 {
		t.Errorf("equal strings cap 0: got %d", got)
	}
	if got := LevenshteinCapped("abc", "abd", 0); got != 1 {
		t.Errorf("distance-1 strings cap 0: got %d (want cap+1 = 1)", got)
	}
	if got := LevenshteinCapped("", "xyz", 2); got != 3 {
		t.Errorf("len-diff exceeds cap: got %d, want 3", got)
	}
	if got := LevenshteinCapped("", "xy", 2); got != 2 {
		t.Errorf("empty vs len-2 with cap 2: got %d, want 2", got)
	}
	if got := LevenshteinCapped("ab", "ab", -5); got != 0 {
		t.Errorf("negative cap, equal strings: got %d", got)
	}
}

func TestSimilarity(t *testing.T) {
	if got := Similarity("", ""); got != 1 {
		t.Errorf("Similarity of empties = %v, want 1", got)
	}
	if got := Similarity("abcd", "abcd"); got != 1 {
		t.Errorf("identical: %v", got)
	}
	if got := Similarity("abcd", "wxyz"); got != 0 {
		t.Errorf("disjoint same-length: %v, want 0", got)
	}
	if got := Similarity("ab", "abcd"); got != 0.5 {
		t.Errorf("half: %v, want 0.5", got)
	}
}

func TestSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarityCappedAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randStr := func() string {
		n := rng.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(6))
		}
		return string(b)
	}
	for i := 0; i < 400; i++ {
		a, b := randStr(), randStr()
		for _, minSim := range []float64{0.5, 0.8, 0.9} {
			full := Similarity(a, b)
			got := SimilarityCapped(a, b, minSim)
			if full >= minSim {
				if got != full {
					t.Fatalf("SimilarityCapped(%q,%q,%v) = %v, want %v", a, b, minSim, got, full)
				}
			} else if got != 0 && got < minSim {
				t.Fatalf("SimilarityCapped(%q,%q,%v) = %v, below threshold but nonzero", a, b, minSim, got)
			}
		}
	}
}

func TestJaro(t *testing.T) {
	if got := Jaro("", ""); got != 1 {
		t.Errorf("Jaro empties = %v", got)
	}
	if got := Jaro("abc", ""); got != 0 {
		t.Errorf("Jaro vs empty = %v", got)
	}
	if got := Jaro("abc", "abc"); got != 1 {
		t.Errorf("Jaro identical = %v", got)
	}
	// Classic example: MARTHA vs MARHTA = 0.944...
	got := Jaro("MARTHA", "MARHTA")
	if got < 0.944 || got > 0.945 {
		t.Errorf("Jaro(MARTHA,MARHTA) = %v, want ≈0.9444", got)
	}
	// DWAYNE vs DUANE = 0.822...
	got = Jaro("DWAYNE", "DUANE")
	if got < 0.822 || got > 0.823 {
		t.Errorf("Jaro(DWAYNE,DUANE) = %v, want ≈0.8222", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	// MARTHA/MARHTA share prefix MAR (3): 0.9444 + 3*0.1*(1-0.9444) ≈ 0.9611
	got := JaroWinkler("MARTHA", "MARHTA")
	if got < 0.961 || got > 0.962 {
		t.Errorf("JaroWinkler(MARTHA,MARHTA) = %v, want ≈0.9611", got)
	}
	if JaroWinkler("abcd", "abcd") != 1 {
		t.Error("JaroWinkler identical should be 1")
	}
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		const eps = 1e-12
		d := Jaro(a, b) - Jaro(b, a)
		return d < eps && d > -eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQGrams(t *testing.T) {
	g := QGrams("hello", 2)
	want := map[string]int{"he": 1, "el": 1, "ll": 1, "lo": 1}
	if len(g) != len(want) {
		t.Fatalf("QGrams(hello,2) = %v", g)
	}
	for k, v := range want {
		if g[k] != v {
			t.Errorf("gram %q = %d, want %d", k, g[k], v)
		}
	}
	if g := QGrams("aaa", 2); g["aa"] != 2 {
		t.Errorf("multiset count: %v", g)
	}
	if g := QGrams("x", 3); g["x"] != 1 {
		t.Errorf("short string: %v", g)
	}
	if g := QGrams("", 2); len(g) != 0 {
		t.Errorf("empty string: %v", g)
	}
	if g := QGrams("abc", 0); len(g) != 2 {
		t.Errorf("q<=0 defaults to 2: %v", g)
	}
}

func TestJaccardQGram(t *testing.T) {
	if got := JaccardQGram("night", "night", 2); got != 1 {
		t.Errorf("identical: %v", got)
	}
	if got := JaccardQGram("", "", 2); got != 1 {
		t.Errorf("empties: %v", got)
	}
	if got := JaccardQGram("abc", "xyz", 2); got != 0 {
		t.Errorf("disjoint: %v", got)
	}
	got := JaccardQGram("night", "nacht", 2)
	// grams night: ni,ig,gh,ht; nacht: na,ac,ch,ht → inter 1, union 7
	if got < 1.0/7-1e-9 || got > 1.0/7+1e-9 {
		t.Errorf("JaccardQGram(night,nacht) = %v, want 1/7", got)
	}
	f := func(a, b string) bool {
		s := JaccardQGram(a, b, 2)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExact(t *testing.T) {
	if Exact("a", "a") != 1 || Exact("a", "b") != 0 || Exact("", "") != 1 {
		t.Error("Exact misbehaves")
	}
}

func TestLevenshteinLongStrings(t *testing.T) {
	a := strings.Repeat("abcde", 100)
	b := strings.Repeat("abcdf", 100)
	if got := Levenshtein(a, b); got != 100 {
		t.Errorf("long strings: %d, want 100", got)
	}
	if got := LevenshteinCapped(a, b, 10); got != 11 {
		t.Errorf("capped long strings: %d, want 11", got)
	}
	if got := LevenshteinCapped(a, b, 150); got != 100 {
		t.Errorf("capped (wide) long strings: %d, want 100", got)
	}
}

func TestTokenCosine(t *testing.T) {
	if got := TokenCosine("", ""); got != 1 {
		t.Errorf("empties = %v", got)
	}
	if got := TokenCosine("a b", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	if got := TokenCosine("entity resolution", "entity resolution"); got < 0.9999 {
		t.Errorf("identical = %v", got)
	}
	// Order-insensitive: swapped words score 1.
	if got := TokenCosine("john lopez", "lopez john"); got < 0.9999 {
		t.Errorf("swapped = %v", got)
	}
	// Case-insensitive.
	if got := TokenCosine("John Lopez", "john lopez"); got < 0.9999 {
		t.Errorf("case = %v", got)
	}
	// Disjoint tokens score 0.
	if got := TokenCosine("aa bb", "cc dd"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
	// Half overlap: "a b" vs "a c" → 1/2.
	if got := TokenCosine("a b", "a c"); got < 0.499 || got > 0.501 {
		t.Errorf("half = %v", got)
	}
	f := func(a, b string) bool {
		s := TokenCosine(a, b)
		return s >= 0 && s <= 1.0000001 && s == TokenCosine(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccardQGramMatchesMapReferenceProperty(t *testing.T) {
	// The sorted-scratch kernel must agree with the map-based definition
	// (QGrams + multiset intersection/union) on arbitrary inputs.
	ref := func(a, b string, q int) float64 {
		if a == b {
			return 1
		}
		ga, gb := QGrams(a, q), QGrams(b, q)
		inter, union := 0, 0
		for g, ca := range ga {
			cb := gb[g]
			inter += min2(ca, cb)
			union += max2(ca, cb)
		}
		for g, cb := range gb {
			if _, seen := ga[g]; !seen {
				union += cb
			}
		}
		if union == 0 {
			return 1
		}
		return float64(inter) / float64(union)
	}
	f := func(a, b string, q uint8) bool {
		qq := int(q%4) + 1
		return JaccardQGram(a, b, qq) == ref(a, b, qq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenCosineASCIIMatchesMapPath(t *testing.T) {
	words := []string{"Smith", "DOE", "and", "garcia", "J", "M", "lopez", ""}
	rng := rand.New(rand.NewSource(33))
	join := func() string {
		n := rng.Intn(8)
		out := ""
		for i := 0; i < n; i++ {
			out += words[rng.Intn(len(words))] + "  \t"[0:1+rng.Intn(2)]
		}
		return out
	}
	for trial := 0; trial < 500; trial++ {
		a, b := join(), join()
		fast := tokenCosineASCII(a, b)
		slow := tokenCosineMaps(a, b)
		if math.Abs(fast-slow) > 1e-12 {
			t.Fatalf("ASCII kernel diverges on (%q, %q): %v vs %v", a, b, fast, slow)
		}
	}
}

func TestTokenCosineUnicodeFallback(t *testing.T) {
	// Non-ASCII input must take the Unicode path, with full case
	// folding.
	if got := TokenCosine("MÜLLER weber", "müller WEBER"); got < 0.999 {
		t.Errorf("unicode cosine = %v, want 1", got)
	}
}
