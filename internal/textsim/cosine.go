package textsim

import (
	"bytes"
	"math"
	"slices"
	"strings"
	"sync"
)

// TokenCosine returns the cosine similarity of the whitespace-token
// frequency vectors of a and b, in [0, 1]. It is insensitive to token
// order — the right similarity for multi-author strings or titles with
// swapped words, complementing edit distance's character-level view.
//
// ASCII inputs (the generators emit ASCII) run through an
// allocation-free kernel: both strings are lowercased into pooled byte
// buffers, tokens become index spans into those buffers, and the
// frequency vectors are run-length counts over the span lists sorted by
// token bytes. Non-ASCII inputs fall back to the map-based path with
// full Unicode case folding.
func TokenCosine(a, b string) float64 {
	if isASCII(a) && isASCII(b) {
		return tokenCosineASCII(a, b)
	}
	return tokenCosineMaps(a, b)
}

// span is one token's [lo, hi) byte range in a scratch buffer.
type span struct{ lo, hi int32 }

// cosScratch is the reusable state of one tokenCosineASCII call.
type cosScratch struct {
	bufA, bufB []byte
	ta, tb     []span
}

var cosPool = sync.Pool{New: func() any { return new(cosScratch) }}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// appendLowerTokens lowercases s into buf and appends one span per
// whitespace-separated token, returning the grown buffer and span list.
func appendLowerTokens(buf []byte, spans []span, s string) ([]byte, []span) {
	inTok := false
	var start int32
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case ' ', '\t', '\n', '\v', '\f', '\r':
			if inTok {
				spans = append(spans, span{start, int32(len(buf))})
				inTok = false
			}
		default:
			if !inTok {
				start = int32(len(buf))
				inTok = true
			}
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf = append(buf, c)
		}
	}
	if inTok {
		spans = append(spans, span{start, int32(len(buf))})
	}
	return buf, spans
}

func tokenCosineASCII(a, b string) float64 {
	sc := cosPool.Get().(*cosScratch)
	defer cosPool.Put(sc)
	sc.bufA, sc.ta = appendLowerTokens(sc.bufA[:0], sc.ta[:0], a)
	sc.bufB, sc.tb = appendLowerTokens(sc.bufB[:0], sc.tb[:0], b)
	bufA, bufB, ta, tb := sc.bufA, sc.bufB, sc.ta, sc.tb
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	slices.SortFunc(ta, func(x, y span) int {
		return bytes.Compare(bufA[x.lo:x.hi], bufA[y.lo:y.hi])
	})
	slices.SortFunc(tb, func(x, y span) int {
		return bytes.Compare(bufB[x.lo:x.hi], bufB[y.lo:y.hi])
	})
	var dot, na, nb float64
	i, j := 0, 0
	for i < len(ta) && j < len(tb) {
		tokA := bufA[ta[i].lo:ta[i].hi]
		tokB := bufB[tb[j].lo:tb[j].hi]
		switch bytes.Compare(tokA, tokB) {
		case -1:
			ca := runLen(bufA, ta, i)
			na += float64(ca) * float64(ca)
			i += ca
		case 1:
			cb := runLen(bufB, tb, j)
			nb += float64(cb) * float64(cb)
			j += cb
		default:
			ca := runLen(bufA, ta, i)
			cb := runLen(bufB, tb, j)
			dot += float64(ca) * float64(cb)
			na += float64(ca) * float64(ca)
			nb += float64(cb) * float64(cb)
			i += ca
			j += cb
		}
	}
	for i < len(ta) {
		ca := runLen(bufA, ta, i)
		na += float64(ca) * float64(ca)
		i += ca
	}
	for j < len(tb) {
		cb := runLen(bufB, tb, j)
		nb += float64(cb) * float64(cb)
		j += cb
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// runLen counts how many consecutive spans starting at i spell the same
// token.
func runLen(buf []byte, spans []span, i int) int {
	tok := buf[spans[i].lo:spans[i].hi]
	n := 1
	for i+n < len(spans) && bytes.Equal(buf[spans[i+n].lo:spans[i+n].hi], tok) {
		n++
	}
	return n
}

// tokenCosineMaps is the general-Unicode reference path.
func tokenCosineMaps(a, b string) float64 {
	ta, tb := tokenCounts(a), tokenCounts(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var dot, na, nb float64
	for tok, ca := range ta {
		dot += float64(ca) * float64(tb[tok])
		na += float64(ca) * float64(ca)
	}
	for _, cb := range tb {
		nb += float64(cb) * float64(cb)
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func tokenCounts(s string) map[string]int {
	out := map[string]int{}
	for _, tok := range strings.Fields(strings.ToLower(s)) {
		out[tok]++
	}
	return out
}
