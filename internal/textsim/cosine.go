package textsim

import (
	"math"
	"strings"
)

// TokenCosine returns the cosine similarity of the whitespace-token
// frequency vectors of a and b, in [0, 1]. It is insensitive to token
// order — the right similarity for multi-author strings or titles with
// swapped words, complementing edit distance's character-level view.
func TokenCosine(a, b string) float64 {
	ta, tb := tokenCounts(a), tokenCounts(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var dot, na, nb float64
	for tok, ca := range ta {
		dot += float64(ca) * float64(tb[tok])
		na += float64(ca) * float64(ca)
	}
	for _, cb := range tb {
		nb += float64(cb) * float64(cb)
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func tokenCounts(s string) map[string]int {
	out := map[string]int{}
	for _, tok := range strings.Fields(strings.ToLower(s)) {
		out[tok]++
	}
	return out
}
