package textsim

import "testing"

func TestSoundexClassicExamples(t *testing.T) {
	cases := map[string]string{
		"Robert":     "R163",
		"Rupert":     "R163",
		"Ashcraft":   "A261", // H transparent: s,c merge through h
		"Ashcroft":   "A261",
		"Tymczak":    "T522",
		"Pfister":    "P236",
		"Honeyman":   "H555",
		"Jackson":    "J250",
		"Washington": "W252",
		"Lee":        "L000",
		"Gutierrez":  "G362",
	}
	for in, want := range cases {
		if got := Soundex(in); got != want {
			t.Errorf("Soundex(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSoundexCaseInsensitive(t *testing.T) {
	if Soundex("robert") != Soundex("ROBERT") {
		t.Error("case sensitivity")
	}
}

func TestSoundexDegenerate(t *testing.T) {
	if got := Soundex(""); got != "0000" {
		t.Errorf("empty = %q", got)
	}
	if got := Soundex("123!?"); got != "0000" {
		t.Errorf("letterless = %q", got)
	}
	if got := Soundex("A"); got != "A000" {
		t.Errorf("single letter = %q", got)
	}
}

func TestSoundexNonLetterResetsGroups(t *testing.T) {
	// A non-letter breaks the adjacency rule: "B-B" codes both Bs.
	if got := Soundex("B-B"); got != "B100" {
		t.Errorf("Soundex(B-B) = %q, want B100", got)
	}
}

func TestSoundexTypoRobustness(t *testing.T) {
	// The point of phonetic blocking: common misspellings share codes.
	pairs := [][2]string{
		{"Smith", "Smyth"},
		{"Allricht", "Allright"},
	}
	for _, p := range pairs {
		if Soundex(p[0]) != Soundex(p[1]) {
			t.Errorf("Soundex(%q)=%q ≠ Soundex(%q)=%q", p[0], Soundex(p[0]), p[1], Soundex(p[1]))
		}
	}
}

func TestSoundexOfFirstWord(t *testing.T) {
	if got := SoundexOfFirstWord("Robert Johnson"); got != "R163" {
		t.Errorf("first word = %q", got)
	}
	if got := SoundexOfFirstWord("  Lee "); got != "L000" {
		t.Errorf("trimmed = %q", got)
	}
	if got := SoundexOfFirstWord(""); got != "0000" {
		t.Errorf("empty = %q", got)
	}
}
