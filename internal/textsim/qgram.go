package textsim

// QGrams returns the multiset of q-grams of s as a count map. Strings
// shorter than q yield a single gram equal to the whole string (so that
// very short values still compare meaningfully).
func QGrams(s string, q int) map[string]int {
	grams := make(map[string]int)
	if q <= 0 {
		q = 2
	}
	if len(s) < q {
		if len(s) > 0 {
			grams[s]++
		}
		return grams
	}
	for i := 0; i+q <= len(s); i++ {
		grams[s[i:i+q]]++
	}
	return grams
}

// JaccardQGram returns the Jaccard coefficient of the q-gram multisets
// of a and b: |A ∩ B| / |A ∪ B| with multiset semantics.
func JaccardQGram(a, b string, q int) float64 {
	if a == b {
		if len(a) == 0 {
			return 1
		}
		return 1
	}
	ga, gb := QGrams(a, q), QGrams(b, q)
	inter, union := 0, 0
	for g, ca := range ga {
		cb := gb[g]
		inter += min2(ca, cb)
		union += max2(ca, cb)
	}
	for g, cb := range gb {
		if _, seen := ga[g]; !seen {
			union += cb
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Exact returns 1 if a == b and 0 otherwise; the "exact matching"
// similarity used on categorical attributes (§VI-A2 uses it for some
// OL-Books attributes).
func Exact(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
