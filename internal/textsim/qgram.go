package textsim

import (
	"slices"
	"sync"
)

// QGrams returns the multiset of q-grams of s as a count map. Strings
// shorter than q yield a single gram equal to the whole string (so that
// very short values still compare meaningfully).
func QGrams(s string, q int) map[string]int {
	grams := make(map[string]int)
	if q <= 0 {
		q = 2
	}
	if len(s) < q {
		if len(s) > 0 {
			grams[s]++
		}
		return grams
	}
	for i := 0; i+q <= len(s); i++ {
		grams[s[i:i+q]]++
	}
	return grams
}

// gramScratch holds the two sorted-gram buffers one JaccardQGram call
// needs; pooled so the hot path allocates nothing in steady state. The
// string headers are views into the caller's inputs (substringing
// allocates nothing) and are overwritten on next use.
type gramScratch struct {
	a, b []string
}

var gramPool = sync.Pool{New: func() any { return new(gramScratch) }}

// appendGrams appends the q-grams of s (or s itself when shorter than
// q) to dst and returns it.
func appendGrams(dst []string, s string, q int) []string {
	if len(s) < q {
		if len(s) > 0 {
			dst = append(dst, s)
		}
		return dst
	}
	for i := 0; i+q <= len(s); i++ {
		dst = append(dst, s[i:i+q])
	}
	return dst
}

// JaccardQGram returns the Jaccard coefficient of the q-gram multisets
// of a and b: |A ∩ B| / |A ∪ B| with multiset semantics. The kernel
// sorts the two gram lists into pooled scratch and counts matching runs
// — no maps, no per-call allocation.
func JaccardQGram(a, b string, q int) float64 {
	if a == b {
		return 1
	}
	if q <= 0 {
		q = 2
	}
	sc := gramPool.Get().(*gramScratch)
	defer gramPool.Put(sc)
	ga := appendGrams(sc.a[:0], a, q)
	gb := appendGrams(sc.b[:0], b, q)
	sc.a, sc.b = ga, gb // keep grown capacity pooled
	slices.Sort(ga)
	slices.Sort(gb)
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		switch {
		case ga[i] < gb[j]:
			g := ga[i]
			for i < len(ga) && ga[i] == g {
				i++
				union++
			}
		case ga[i] > gb[j]:
			g := gb[j]
			for j < len(gb) && gb[j] == g {
				j++
				union++
			}
		default:
			g := ga[i]
			ca, cb := 0, 0
			for i < len(ga) && ga[i] == g {
				i++
				ca++
			}
			for j < len(gb) && gb[j] == g {
				j++
				cb++
			}
			inter += min2(ca, cb)
			union += max2(ca, cb)
		}
	}
	union += len(ga) - i + len(gb) - j
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Exact returns 1 if a == b and 0 otherwise; the "exact matching"
// similarity used on categorical attributes (§VI-A2 uses it for some
// OL-Books attributes).
func Exact(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
