// Package textsim implements the string-similarity primitives used by
// the resolve/match function: edit distance (full, banded, capped),
// normalized edit similarity, Jaro-Winkler, q-gram Jaccard, and exact
// matching. All functions operate on bytes (the generators emit ASCII),
// which keeps cost accounting simple and deterministic.
package textsim

import "sync"

// rowPool recycles the dynamic-program row buffers of Levenshtein and
// LevenshteinCapped, making the hot resolve path allocation-free in
// steady state. Pooled buffers keep the kernels safe for concurrent use
// (each call takes its own row).
var rowPool = sync.Pool{New: func() any { return new([]int) }}

// getRow returns a length-n int slice from the pool; release it with
// putRow when the computation is done.
func getRow(n int) *[]int {
	p := rowPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, n)
	}
	*p = (*p)[:n]
	return p
}

func putRow(p *[]int) { rowPool.Put(p) }

// Levenshtein returns the exact edit distance (insert/delete/substitute,
// all unit cost) between a and b, in O(len(a)·len(b)) time and
// O(min(len(a),len(b))) space.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	// Ensure b is the shorter string so the row buffer is minimal.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	rowp := getRow(len(b) + 1)
	defer putRow(rowp)
	row := *rowp
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[i-1][0]
		row[0] = i
		for j := 1; j <= len(b); j++ {
			cur := row[j] // row[i-1][j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev + cost            // substitute
			if d := row[j] + 1; d < m { // delete from a
				m = d
			}
			if d := row[j-1] + 1; d < m { // insert into a
				m = d
			}
			row[j] = m
			prev = cur
		}
	}
	return row[len(b)]
}

// LevenshteinCapped returns min(Levenshtein(a,b), cap+1) but abandons
// the computation as soon as the distance provably exceeds cap, using
// a banded dynamic program of width 2·cap+1. It is the workhorse for
// thresholded matching: a return value > cap means "more than cap".
func LevenshteinCapped(a, b string, cap int) int {
	if cap < 0 {
		cap = 0
	}
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if abs(la-lb) > cap {
		return cap + 1
	}
	if la < lb {
		a, b, la, lb = b, a, lb, la
	}
	if lb == 0 {
		if la > cap {
			return cap + 1
		}
		return la
	}
	const inf = int(^uint(0) >> 2)
	rowp := getRow(lb + 1)
	defer putRow(rowp)
	row := *rowp
	for j := range row {
		if j <= cap {
			row[j] = j
		} else {
			row[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - cap
		if lo < 1 {
			lo = 1
		}
		hi := i + cap
		if hi > lb {
			hi = lb
		}
		prev := row[lo-1] // row[i-1][lo-1]
		if lo == 1 {
			if i <= cap {
				row[0] = i
			} else {
				row[0] = inf
			}
		}
		rowMin := inf
		// Cells left of the band are unreachable within cap.
		if lo > 1 {
			// row[lo-1] belongs to the previous row's band edge; mark
			// the out-of-band cell as infinite for this row.
			prev = row[lo-1]
			row[lo-1] = inf
		}
		for j := lo; j <= hi; j++ {
			cur := row[j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev + cost
			if cur+1 < m {
				m = cur + 1
			}
			if row[j-1]+1 < m {
				m = row[j-1] + 1
			}
			row[j] = m
			if m < rowMin {
				rowMin = m
			}
			prev = cur
		}
		// Cells right of the band are unreachable; reset so the next
		// row does not read stale values.
		if hi < lb {
			row[hi+1] = inf
		}
		if rowMin > cap {
			return cap + 1
		}
	}
	if row[lb] > cap {
		return cap + 1
	}
	return row[lb]
}

// Similarity returns the normalized edit similarity
// 1 − dist/max(len(a), len(b)) in [0, 1]. Two empty strings are
// similarity 1.
func Similarity(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// SimilarityCapped returns the normalized edit similarity when it is at
// least minSim, and 0 otherwise, without computing the full distance.
func SimilarityCapped(a, b string, minSim float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	// dist ≤ (1−minSim)·maxLen is required for sim ≥ minSim. The small
	// epsilon guards against float truncation (e.g. (1−0.8)·5 → 0.999…).
	capv := int((1-minSim)*float64(maxLen) + 1e-9)
	d := LevenshteinCapped(a, b, capv)
	if d > capv {
		return 0
	}
	return 1 - float64(d)/float64(maxLen)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
