package textsim

// Jaro returns the Jaro similarity of a and b in [0, 1].
func Jaro(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	aMatched := make([]bool, la)
	bMatched := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatched[j] || a[i] != b[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard
// prefix scale 0.1 and prefix length capped at 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
