package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Add(Span{Name: "x"}) // must not panic
	if tr.Len() != 0 || tr.Spans() != nil || tr.Processes() != nil {
		t.Error("nil tracer is not empty")
	}
	if got := tr.PID("job"); got != 0 {
		t.Errorf("nil tracer PID = %d", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer output is not valid JSON: %v\n%s", err, buf.String())
	}
}

func TestNilTracerAddAllocsFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		tr.Add(Span{Name: "x", Cat: "map", Start: 1, Dur: 2})
	})
	if allocs != 0 {
		t.Errorf("nil tracer Add allocates %v per op", allocs)
	}
}

func TestPIDStable(t *testing.T) {
	tr := New()
	a := tr.PID("job1")
	b := tr.PID("job2")
	if a != 0 || b != 1 {
		t.Errorf("pids = %d, %d", a, b)
	}
	if tr.PID("job1") != a {
		t.Error("PID not stable")
	}
	if got := tr.Processes(); len(got) != 2 || got[0] != "job1" || got[1] != "job2" {
		t.Errorf("processes = %v", got)
	}
}

func TestSpansCanonicalOrder(t *testing.T) {
	tr := New()
	tr.Add(Span{Name: "b", Cat: "reduce", Start: 10})
	tr.Add(Span{Name: "a", Cat: "map", Start: 5})
	tr.Add(Span{Name: "a", Cat: "map", Start: 5, TID: 1})
	got := tr.Spans()
	if got[0].Start != 5 || got[0].TID != 0 || got[1].TID != 1 || got[2].Name != "b" {
		t.Errorf("spans out of canonical order: %+v", got)
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := New()
	pid := tr.PID("wordcount")
	tr.Add(Span{Name: "map 0", Cat: "map", PID: pid, TID: 2, Start: 50, Dur: 100,
		WallStart: time.Now(), WallDur: time.Millisecond,
		Args: []Arg{A("records", 7), A("label", "x")}})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want metadata + span", len(doc.TraceEvents))
	}
	meta, span := doc.TraceEvents[0], doc.TraceEvents[1]
	if meta.Ph != "M" || meta.Name != "process_name" || meta.Args["name"] != "wordcount" {
		t.Errorf("bad metadata event %+v", meta)
	}
	if span.Ph != "X" || span.TS != 50 || span.Dur != 100 || span.TID != 2 {
		t.Errorf("bad span event %+v", span)
	}
	if span.Args["records"] != float64(7) {
		t.Errorf("span args %v", span.Args)
	}
	// Simulated-clock export must not leak wall-clock data, or traces
	// stop being byte-deterministic.
	if strings.Contains(buf.String(), "WallStart") {
		t.Error("wall-clock data leaked into sim-clock export")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New()
		pid := tr.PID("job")
		// Same spans, different insertion order and different wall times.
		tr.Add(Span{Name: "reduce 1", Cat: "reduce", PID: pid, Start: 30, Dur: 5, WallStart: time.Now()})
		tr.Add(Span{Name: "map 0", Cat: "map", PID: pid, Start: 0, Dur: 10, WallDur: time.Duration(time.Now().UnixNano())})
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("sim-clock export not deterministic:\n%s\n----\n%s", a.String(), b.String())
	}
}

func TestChromeTraceWallClock(t *testing.T) {
	tr := New()
	base := time.Now()
	tr.Add(Span{Name: "host", Cat: "shuffle", WallStart: base, WallDur: 2 * time.Millisecond})
	tr.Add(Span{Name: "sim-only", Cat: "schedule", Start: 5, Dur: 1}) // no wall data: skipped
	var buf bytes.Buffer
	if err := tr.WriteChromeTraceClock(&buf, ClockWall); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("events = %+v, want only the wall-clocked span", doc.TraceEvents)
	}
	if doc.TraceEvents[0].Name != "host" || doc.TraceEvents[0].TS != 0 || doc.TraceEvents[0].Dur != 2000 {
		t.Errorf("wall event %+v", doc.TraceEvents[0])
	}
}

func TestArgsJSONOrderAndFallback(t *testing.T) {
	raw := mustArgsJSON([]Arg{A("z", 1), A("a", 2), A("bad", func() {})})
	s := string(raw)
	if !strings.HasPrefix(s, `{"z":1,"a":2`) {
		t.Errorf("args not in insertion order: %s", s)
	}
	if !json.Valid(raw) {
		t.Errorf("args JSON invalid: %s", s)
	}
}
