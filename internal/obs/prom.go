package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus writes the registry's current state in the
// Prometheus text exposition format (version 0.0.4): one # TYPE line
// per metric family, counters/gauges as plain samples, histograms as
// cumulative _bucket/_sum/_count series. Metric names are sanitized to
// the Prometheus charset (invalid runes become '_'). Output is sorted
// by name, so it is deterministic for deterministic inputs. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s := r.Snapshot()
	for _, c := range s.Counters {
		name := PromName(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range s.Gauges {
		name := PromName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		name := PromName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	return bw.Flush()
}

// PromName sanitizes an internal metric name ("job2.blocks_resolved")
// into the Prometheus name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects: integral
// values without an exponent, specials as +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}
