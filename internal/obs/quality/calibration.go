package quality

import (
	"fmt"
	"sort"
)

// BlockCalibration is one scheduled block's prediction joined with its
// realization (join key: SQ).
type BlockCalibration struct {
	ID     string `json:"id"`
	SQ     int64  `json:"sq"`
	Task   int    `json:"task"`
	Size   int    `json:"size"`
	Bucket int    `json:"bucket"`
	// PredDup / PredCost / PredUtil are the scheduler's estimates.
	PredDup  float64 `json:"pred_dup"`
	PredCost float64 `json:"pred_cost"`
	PredUtil float64 `json:"pred_util"`
	// Dups, Compared, Skipped, and Cost are the realized values
	// (Cost = End − Start on the simulated clock; all zero when the
	// block was never resolved, e.g. its tree shipped no entities).
	Dups     int64   `json:"dups"`
	Compared int64   `json:"compared"`
	Skipped  int64   `json:"skipped"`
	Cost     float64 `json:"cost"`
	// DupErr is PredDup − Dups (positive = over-predicted).
	DupErr float64 `json:"dup_err"`
	// Resolved reports whether a realization was observed.
	Resolved bool `json:"resolved"`
}

// BucketStat aggregates prediction error over one of the estimator's
// size-fraction sub-ranges (the same log₁₀ buckets the trained
// DupModel learns probabilities for, so a badly calibrated bucket
// points directly at the model rows to retrain).
type BucketStat struct {
	Bucket int    `json:"bucket"`
	Label  string `json:"label"`
	Blocks int    `json:"blocks"`
	// PredDup and Dups are the bucket's summed predicted and realized
	// duplicates; MeanAbsErr and Bias the per-block mean |pred − real|
	// and mean signed (pred − real).
	PredDup    float64 `json:"pred_dup"`
	Dups       int64   `json:"dups"`
	MeanAbsErr float64 `json:"mean_abs_err"`
	Bias       float64 `json:"bias"`
}

// TaskSkew is one reduce task's planned-vs-realized load row.
type TaskSkew struct {
	Task   int `json:"task"`
	Trees  int `json:"trees"`
	Blocks int `json:"blocks"`
	// PlannedCost and PlannedSlack come from PARTITION-TREES;
	// RealizedCost and RealizedBlocks from the block realizations.
	PlannedCost    float64 `json:"planned_cost"`
	PlannedSlack   float64 `json:"planned_slack"`
	RealizedCost   float64 `json:"realized_cost"`
	RealizedBlocks int     `json:"realized_blocks"`
	// CostErr is RealizedCost − PlannedCost (positive = the task ran
	// longer than planned). Skew is RealizedCost / mean realized cost
	// across tasks (1 = perfectly balanced; the classic MapReduce-ER
	// straggler shows up as Skew ≫ 1).
	CostErr float64 `json:"cost_err"`
	Skew    float64 `json:"skew"`
}

// Report is the calibration report: the per-block join, the bucketed
// prediction-error rollup, and the per-task skew table.
type Report struct {
	Blocks  []BlockCalibration `json:"blocks"`
	Buckets []BucketStat       `json:"buckets"`
	Tasks   []TaskSkew         `json:"tasks"`
}

// BuildReport joins the recorded predictions with the realizations on
// SQ and aggregates. Runs without a schedule (the Basic baseline)
// produce realized-only task rows and no block/bucket sections.
func (r *Recorder) BuildReport() *Report {
	rep := &Report{}
	preds := r.Predictions()
	obs := r.Observations()
	labels := r.labels()

	obsBySQ := map[int64]BlockObs{}
	for _, o := range obs {
		if o.SQ >= 0 {
			obsBySQ[o.SQ] = o
		}
	}

	type bucketAcc struct {
		blocks  int
		predDup float64
		dups    int64
		absErr  float64
		bias    float64
	}
	buckets := map[int]*bucketAcc{}
	for _, p := range preds {
		bc := BlockCalibration{
			ID: p.ID, SQ: p.SQ, Task: p.Task, Size: p.Size, Bucket: p.Bucket,
			PredDup: p.Dup, PredCost: p.Cost, PredUtil: p.Util,
		}
		if o, ok := obsBySQ[p.SQ]; ok {
			bc.Dups, bc.Compared, bc.Skipped = o.Dups, o.Compared, o.Skipped
			bc.Cost = float64(o.End - o.Start)
			bc.Resolved = true
		}
		bc.DupErr = bc.PredDup - float64(bc.Dups)
		rep.Blocks = append(rep.Blocks, bc)

		acc := buckets[p.Bucket]
		if acc == nil {
			acc = &bucketAcc{}
			buckets[p.Bucket] = acc
		}
		acc.blocks++
		acc.predDup += bc.PredDup
		acc.dups += bc.Dups
		if bc.DupErr >= 0 {
			acc.absErr += bc.DupErr
		} else {
			acc.absErr -= bc.DupErr
		}
		acc.bias += bc.DupErr
	}
	sort.Slice(rep.Blocks, func(i, j int) bool {
		a, b := rep.Blocks[i], rep.Blocks[j]
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.SQ < b.SQ
	})

	for bucket, acc := range buckets {
		label := fmt.Sprintf("bucket %d", bucket)
		if bucket >= 0 && bucket < len(labels) {
			label = labels[bucket]
		}
		rep.Buckets = append(rep.Buckets, BucketStat{
			Bucket: bucket, Label: label, Blocks: acc.blocks,
			PredDup: acc.predDup, Dups: acc.dups,
			MeanAbsErr: acc.absErr / float64(acc.blocks),
			Bias:       acc.bias / float64(acc.blocks),
		})
	}
	sort.Slice(rep.Buckets, func(i, j int) bool { return rep.Buckets[i].Bucket < rep.Buckets[j].Bucket })

	rep.Tasks = buildTaskSkew(r.Plans(), obs)
	return rep
}

// buildTaskSkew assembles the per-task planned-vs-realized table. Every
// planned task appears (even if it resolved nothing); tasks seen only
// in realizations (no plan — the Basic baseline) get realized-only rows.
func buildTaskSkew(plans []TaskPlan, obs []BlockObs) []TaskSkew {
	byTask := map[int]*TaskSkew{}
	for _, p := range plans {
		byTask[p.Task] = &TaskSkew{
			Task: p.Task, Trees: p.Trees, Blocks: p.Blocks,
			PlannedCost: p.EstCost, PlannedSlack: p.Slack,
		}
	}
	for _, o := range obs {
		t := byTask[o.Task]
		if t == nil {
			t = &TaskSkew{Task: o.Task}
			byTask[o.Task] = t
		}
		t.RealizedCost += float64(o.End - o.Start)
		t.RealizedBlocks++
	}
	out := make([]TaskSkew, 0, len(byTask))
	for _, t := range byTask {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	// Sum in task order: float addition is not associative, so summing
	// during map iteration would leak iteration order into the mean and
	// break byte-determinism by one ulp.
	var total float64
	for _, t := range out {
		total += t.RealizedCost
	}
	mean := 0.0
	if len(out) > 0 {
		mean = total / float64(len(out))
	}
	for i := range out {
		out[i].CostErr = out[i].RealizedCost - out[i].PlannedCost
		if mean > 0 {
			out[i].Skew = out[i].RealizedCost / mean
		}
	}
	return out
}

// WorstBlocks returns the n blocks with the largest |DupErr| (ties
// broken by SQ), for the run-summary "worst calibrated" listing.
func (rep *Report) WorstBlocks(n int) []BlockCalibration {
	out := append([]BlockCalibration(nil), rep.Blocks...)
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs(out[i].DupErr), abs(out[j].DupErr)
		if ai != aj {
			return ai > aj
		}
		return out[i].SQ < out[j].SQ
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// MostSkewed returns the n tasks with the largest |CostErr| (ties
// broken by task index).
func (rep *Report) MostSkewed(n int) []TaskSkew {
	out := append([]TaskSkew(nil), rep.Tasks...)
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs(out[i].CostErr), abs(out[j].CostErr)
		if ai != aj {
			return ai > aj
		}
		return out[i].Task < out[j].Task
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
