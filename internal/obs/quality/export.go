package quality

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"

	"proger/internal/costmodel"
)

// Export is the -quality-out document: the progressive-recall curve
// plus the calibration report.
type Export struct {
	Curve       *Curve  `json:"curve"`
	Calibration *Report `json:"calibration"`
}

// Export derives both artifacts from the recorder's current state.
// Returns nil for a nil (disabled) recorder.
func (r *Recorder) Export(sampleEvery costmodel.Units) *Export {
	if r == nil {
		return nil
	}
	return &Export{Curve: r.BuildCurve(sampleEvery), Calibration: r.BuildReport()}
}

// WriteJSON writes the export as indented JSON. encoding/json renders
// floats with the shortest round-trip representation and struct fields
// in declaration order, so output is byte-deterministic for
// deterministic inputs.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteCSV writes the curve samples as CSV (header + one row per
// point), the plot-tool-friendly alternative to WriteJSON. Floats use
// the shortest round-trip formatting, so output is byte-deterministic.
func (c *Curve) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("cost,blocks,pairs,dups,recall\n"); err != nil {
		return err
	}
	for _, p := range c.Points {
		bw.WriteString(strconv.FormatFloat(p.Cost, 'g', -1, 64))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(p.Blocks, 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(p.Pairs, 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(p.Dups, 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatFloat(p.Recall, 'g', -1, 64))
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
