package quality

import "proger/internal/costmodel"

// CurvePoint is one sample of the progressive-recall curve.
type CurvePoint struct {
	// Cost is the cumulative global simulated cost at the sample.
	Cost float64 `json:"cost"`
	// Blocks, Pairs, and Dups are the cumulative blocks resolved,
	// pairs compared, and duplicates emitted by Cost.
	Blocks int64 `json:"blocks"`
	Pairs  int64 `json:"pairs"`
	Dups   int64 `json:"dups"`
	// Recall is Dups / FinalDups (the self-relative recall proxy: the
	// pipeline has no ground truth, so the curve normalizes against its
	// own final duplicate count; 0 when the run found nothing).
	Recall float64 `json:"recall"`
}

// Curve is the progressive-recall curve: cumulative resolution
// progress sampled every SampleEvery cost units on the global
// simulated clock, plus its normalized area under the recall-vs-cost
// step function.
type Curve struct {
	// SampleEvery is the sampling interval actually used.
	SampleEvery float64 `json:"sample_every"`
	// End is the completion time of the last block resolution.
	End float64 `json:"end"`
	// FinalBlocks, FinalPairs, and FinalDups are the run totals.
	FinalBlocks int64 `json:"final_blocks"`
	FinalPairs  int64 `json:"final_pairs"`
	FinalDups   int64 `json:"final_dups"`
	// AUC is the exact area under recall(t) over [0, End], normalized
	// by End — in [0, 1], 1 meaning every duplicate surfaced
	// immediately (perfect progressiveness), computed from the
	// un-sampled completion events rather than the Points grid.
	AUC float64 `json:"auc"`
	// Points are the samples, at strictly increasing cost.
	Points []CurvePoint `json:"points"`
}

// BuildCurve derives the progressive-recall curve from the recorded
// block realizations. sampleEvery ≤ 0 picks End/64. Each block's
// progress is attributed to its completion time — exact on the
// simulated clock, since the engine replays block resolutions with
// deterministic timestamps (sampling "during" and "after" the run are
// the same operation when time is simulated; see DESIGN.md §10).
func (r *Recorder) BuildCurve(sampleEvery costmodel.Units) *Curve {
	obs := r.Observations()
	c := &Curve{SampleEvery: float64(sampleEvery)}
	if len(obs) == 0 {
		return c
	}
	end := obs[len(obs)-1].End
	c.End = float64(end)
	for _, o := range obs {
		c.FinalBlocks++
		c.FinalPairs += o.Compared
		c.FinalDups += o.Dups
	}

	if c.SampleEvery <= 0 {
		c.SampleEvery = c.End / 64
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}

	// Sample the cumulative counts at k·Δ for k = 1, 2, …, closing with
	// a final sample exactly at End. Cost is strictly increasing by
	// construction; the cumulative counts make Recall non-decreasing.
	var (
		i                   int
		blocks, pairs, dups int64
	)
	advance := func(t float64) {
		for i < len(obs) && float64(obs[i].End) <= t {
			blocks++
			pairs += obs[i].Compared
			dups += obs[i].Dups
			i++
		}
	}
	sample := func(t float64) {
		advance(t)
		p := CurvePoint{Cost: t, Blocks: blocks, Pairs: pairs, Dups: dups}
		if c.FinalDups > 0 {
			p.Recall = float64(dups) / float64(c.FinalDups)
		}
		c.Points = append(c.Points, p)
	}
	for t := c.SampleEvery; t < c.End; t += c.SampleEvery {
		sample(t)
	}
	sample(c.End)

	c.AUC = recallAUC(obs, c.End, c.FinalDups)
	return c
}

// recallAUC integrates the recall step function exactly over [0, end]:
// recall is constant between completion events, so the area is the sum
// of recall-after-event × time-to-next-event.
func recallAUC(obs []BlockObs, end float64, finalDups int64) float64 {
	if end <= 0 || finalDups == 0 {
		return 0
	}
	var area float64
	var dups int64
	for i := 0; i < len(obs); {
		t := obs[i].End
		for i < len(obs) && obs[i].End == t {
			dups += obs[i].Dups
			i++
		}
		next := end
		if i < len(obs) {
			next = float64(obs[i].End)
		}
		area += float64(dups) / float64(finalDups) * (next - float64(t))
	}
	return area / end
}
