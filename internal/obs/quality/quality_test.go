package quality

import (
	"strings"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.RecordPrediction(BlockPrediction{SQ: 1})
	r.RecordPlan(TaskPlan{Task: 0})
	r.ObserveBlock(BlockObs{SQ: 1})
	r.SetBucketLabels([]string{"a"})
	if r.Predictions() != nil || r.Plans() != nil || r.Observations() != nil {
		t.Error("nil recorder returned data")
	}
	if r.Export(0) != nil {
		t.Error("nil recorder exported")
	}
}

func TestObservationsOrder(t *testing.T) {
	r := NewRecorder()
	r.ObserveBlock(BlockObs{ID: "b", SQ: 2, Task: 1, End: 30})
	r.ObserveBlock(BlockObs{ID: "a", SQ: 1, Task: 0, End: 30})
	r.ObserveBlock(BlockObs{ID: "c", SQ: 3, Task: 0, End: 10})
	obs := r.Observations()
	want := []string{"c", "a", "b"} // End asc, then Task, SQ, ID
	for i, o := range obs {
		if o.ID != want[i] {
			t.Fatalf("order %d = %q, want %q (all: %+v)", i, o.ID, want[i], obs)
		}
	}
}

func TestBuildCurve(t *testing.T) {
	r := NewRecorder()
	// Three resolutions: dups 2 at t=10, 0 at t=20, 2 at t=40.
	r.ObserveBlock(BlockObs{ID: "a", SQ: 1, Start: 0, End: 10, Compared: 5, Dups: 2})
	r.ObserveBlock(BlockObs{ID: "b", SQ: 2, Start: 10, End: 20, Compared: 3})
	r.ObserveBlock(BlockObs{ID: "c", SQ: 3, Start: 20, End: 40, Compared: 8, Dups: 2})

	c := r.BuildCurve(10)
	if c.End != 40 || c.FinalBlocks != 3 || c.FinalPairs != 16 || c.FinalDups != 4 {
		t.Fatalf("curve totals: %+v", c)
	}
	// Samples at 10, 20, 30, 40.
	if len(c.Points) != 4 {
		t.Fatalf("got %d points, want 4: %+v", len(c.Points), c.Points)
	}
	wantRecall := []float64{0.5, 0.5, 0.5, 1}
	wantDups := []int64{2, 2, 2, 4}
	for i, p := range c.Points {
		if p.Recall != wantRecall[i] || p.Dups != wantDups[i] {
			t.Errorf("point %d = %+v, want recall %g dups %d", i, p, wantRecall[i], wantDups[i])
		}
		if p.Cost != float64(10*(i+1)) {
			t.Errorf("point %d cost = %g", i, p.Cost)
		}
	}
	// Exact step AUC: recall 0 on [0,10), 0.5 on [10,40), 1 at 40
	// → (0·10 + 0.5·30) / 40 = 0.375.
	if c.AUC != 0.375 {
		t.Errorf("AUC = %g, want 0.375", c.AUC)
	}

	// Monotonicity invariants hold for an uneven interval too.
	c7 := r.BuildCurve(7)
	prevCost, prevRecall := -1.0, 0.0
	for _, p := range c7.Points {
		if p.Cost <= prevCost {
			t.Fatalf("cost not strictly increasing: %+v", c7.Points)
		}
		if p.Recall < prevRecall {
			t.Fatalf("recall decreasing: %+v", c7.Points)
		}
		prevCost, prevRecall = p.Cost, p.Recall
	}
	if last := c7.Points[len(c7.Points)-1]; last.Cost != 40 || last.Recall != 1 {
		t.Errorf("closing sample = %+v, want cost 40 recall 1", last)
	}

	// Empty recorder yields a zero curve and AUC 0.
	empty := NewRecorder().BuildCurve(0)
	if empty.AUC != 0 || len(empty.Points) != 0 {
		t.Errorf("empty curve = %+v", empty)
	}
}

func TestBuildReport(t *testing.T) {
	r := NewRecorder()
	r.SetBucketLabels([]string{"<1e-4", "[1e-4,1e-3)"})
	r.RecordPlan(TaskPlan{Task: 0, Trees: 1, Blocks: 2, EstCost: 30, Slack: 2})
	r.RecordPlan(TaskPlan{Task: 1, Trees: 1, Blocks: 1, EstCost: 25, Slack: 0})
	r.RecordPrediction(BlockPrediction{ID: "a", SQ: 1, Task: 0, Bucket: 0, Dup: 3, Cost: 20})
	r.RecordPrediction(BlockPrediction{ID: "b", SQ: 2, Task: 0, Bucket: 1, Dup: 1, Cost: 10})
	r.RecordPrediction(BlockPrediction{ID: "c", SQ: 1_000_000_001, Task: 1, Bucket: 0, Dup: 2, Cost: 25})
	r.ObserveBlock(BlockObs{ID: "a", SQ: 1, Task: 0, Start: 0, End: 18, Compared: 9, Dups: 1})
	r.ObserveBlock(BlockObs{ID: "c", SQ: 1_000_000_001, Task: 1, Start: 0, End: 30, Compared: 12, Dups: 4})
	// Block b never resolved (e.g. empty tree): realized-zero row.

	rep := r.BuildReport()
	if len(rep.Blocks) != 3 {
		t.Fatalf("got %d block rows, want 3", len(rep.Blocks))
	}
	a := rep.Blocks[0]
	if a.ID != "a" || !a.Resolved || a.DupErr != 2 || a.Cost != 18 {
		t.Errorf("block a = %+v", a)
	}
	b := rep.Blocks[1]
	if b.ID != "b" || b.Resolved || b.DupErr != 1 {
		t.Errorf("block b = %+v", b)
	}
	c := rep.Blocks[2]
	if c.ID != "c" || c.Task != 1 || c.DupErr != -2 {
		t.Errorf("block c = %+v", c)
	}

	if len(rep.Buckets) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(rep.Buckets), rep.Buckets)
	}
	b0 := rep.Buckets[0] // blocks a and c: errs +2 and −2
	if b0.Label != "<1e-4" || b0.Blocks != 2 || b0.MeanAbsErr != 2 || b0.Bias != 0 {
		t.Errorf("bucket 0 = %+v", b0)
	}
	b1 := rep.Buckets[1] // block b: err +1
	if b1.Blocks != 1 || b1.MeanAbsErr != 1 || b1.Bias != 1 {
		t.Errorf("bucket 1 = %+v", b1)
	}

	if len(rep.Tasks) != 2 {
		t.Fatalf("got %d task rows, want 2", len(rep.Tasks))
	}
	t0 := rep.Tasks[0]
	// Realized: 18 (task 0) and 30 (task 1), mean 24.
	if t0.PlannedCost != 30 || t0.RealizedCost != 18 || t0.CostErr != -12 || t0.Skew != 0.75 {
		t.Errorf("task 0 = %+v", t0)
	}
	t1 := rep.Tasks[1]
	if t1.RealizedCost != 30 || t1.CostErr != 5 || t1.Skew != 1.25 {
		t.Errorf("task 1 = %+v", t1)
	}

	// WorstBlocks ranks by |DupErr| and MostSkewed by |CostErr|.
	worst := rep.WorstBlocks(2)
	if len(worst) != 2 || worst[0].ID != "a" || worst[1].ID != "c" {
		t.Errorf("worst = %+v", worst)
	}
	skewed := rep.MostSkewed(1)
	if len(skewed) != 1 || skewed[0].Task != 0 {
		t.Errorf("skewed = %+v", skewed)
	}
}

func TestBasicBaselineReport(t *testing.T) {
	// No schedule: SQ −1 observations produce realized-only task rows
	// and empty block/bucket sections.
	r := NewRecorder()
	r.ObserveBlock(BlockObs{ID: "0|jo", SQ: -1, Task: 0, Start: 0, End: 12, Compared: 4, Dups: 1})
	r.ObserveBlock(BlockObs{ID: "1|ca", SQ: -1, Task: 1, Start: 0, End: 20, Compared: 6, Dups: 2})
	rep := r.BuildReport()
	if len(rep.Blocks) != 0 || len(rep.Buckets) != 0 {
		t.Errorf("baseline report has prediction rows: %+v", rep)
	}
	if len(rep.Tasks) != 2 || rep.Tasks[0].RealizedBlocks != 1 || rep.Tasks[1].RealizedCost != 20 {
		t.Errorf("baseline tasks = %+v", rep.Tasks)
	}
}

func TestExportDeterminism(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder()
		r.SetBucketLabels([]string{"b0"})
		r.RecordPlan(TaskPlan{Task: 0, Blocks: 1, EstCost: 10})
		r.RecordPrediction(BlockPrediction{ID: "a", SQ: 1, Bucket: 0, Dup: 1.5, Cost: 10, Util: 0.15})
		r.ObserveBlock(BlockObs{ID: "a", SQ: 1, Start: 3, End: 13, Compared: 7, Dups: 2})
		return r
	}
	var j1, j2, c1 strings.Builder
	if err := build().Export(5).WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := build().Export(5).WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Error("JSON export not deterministic")
	}
	if !strings.Contains(j1.String(), "\"auc\"") || !strings.Contains(j1.String(), "\"calibration\"") {
		t.Errorf("export missing sections:\n%s", j1.String())
	}
	if err := build().Export(5).Curve.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(c1.String()), "\n")
	if lines[0] != "cost,blocks,pairs,dups,recall" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 4 { // samples at 5, 10, 13
		t.Errorf("csv rows = %d, want 4:\n%s", len(lines), c1.String())
	}
	if lines[3] != "13,1,7,2,1" {
		t.Errorf("closing csv row = %q", lines[3])
	}
}
