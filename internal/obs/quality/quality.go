// Package quality is the pipeline's quality-telemetry layer: where
// internal/obs answers "where did the time go", this package answers
// "was the schedule actually progressive, and is the estimator still
// calibrated". A Recorder collects three streams —
//
//   - per-block *predictions* (Dup(X)/Cost(X)/Util(X) of Eq. 2–5) and
//     per-task *plans* (planned load and leftover slack SK(R)),
//     published by sched.Generate once the schedule is final;
//   - per-block *realizations* (duplicates emitted, pairs compared and
//     skipped, start/end on the global simulated clock), recorded by
//     the Job 2 / compact / Basic reduce functions through
//     mapreduce.TaskContext.ObserveBlock and rebased by the engine
//     exactly like trace spans;
//
// — and derives from them a progressive-recall Curve (sampled at fixed
// cost intervals, with its normalized AUC) and a calibration Report
// (per-block prediction error joined on SQ, bucketed by the
// estimator's size-fraction sub-ranges, plus a per-task
// planned-vs-realized skew table).
//
// Everything is deterministic: realizations flow through the committed
// task attempt's result only and are fed serially in task order, so
// every export is byte-identical across worker counts and fault
// injection, like the trace contract. A nil *Recorder is the disabled
// recorder: every method is a no-op.
package quality

import (
	"sort"
	"sync"

	"proger/internal/costmodel"
)

// BlockPrediction is the scheduler's final estimate for one scheduled
// block, captured after tree splitting and SQ assignment (so it is the
// estimate the schedule was actually built from).
type BlockPrediction struct {
	// ID is the block identity (blocking.BlockID.String()).
	ID string `json:"id"`
	// SQ is the block's sequence value — the prediction/realization
	// join key (unique per scheduled block).
	SQ int64 `json:"sq"`
	// Task is the owning reduce task; Tree the tree's dominance index.
	Task int `json:"task"`
	Tree int `json:"tree"`
	// Size is the block's entity count.
	Size int `json:"size"`
	// Bucket is the estimator's size-fraction sub-range index
	// (estimate.FracBucket), −1 when no estimator was configured.
	Bucket int `json:"bucket"`
	// Dup, Cost, and Util are the predicted Dup(X) (Eq. 2), Cost(X)
	// (Eq. 3/5, in cost units), and Util(X) = Dup/Cost.
	Dup  float64 `json:"dup"`
	Cost float64 `json:"cost"`
	Util float64 `json:"util"`
	// Full marks blocks scheduled for full resolution (tree roots).
	Full bool `json:"full"`
}

// TaskPlan is one reduce task's planned load from PARTITION-TREES.
type TaskPlan struct {
	Task   int `json:"task"`
	Trees  int `json:"trees"`
	Blocks int `json:"blocks"`
	// EstCost is the planned load Σ Cost(X) over the task's blocks.
	EstCost float64 `json:"est_cost"`
	// Slack is the leftover weighted slack SK(R) after partitioning
	// (0 for the LPT baseline, which does not track slack).
	Slack float64 `json:"slack"`
}

// BlockObs is one realized block resolution. Reduce functions record
// it with Start/End on the task-local clock and Task unset; the engine
// rebases both onto the global simulated timeline once task start
// times are scheduled.
type BlockObs struct {
	// ID is the block identity; SQ is the sequence value (−1 when the
	// run has no schedule, i.e. the Basic baseline).
	ID string `json:"id"`
	SQ int64  `json:"sq"`
	// Task is the reduce task that resolved the block.
	Task int `json:"task"`
	// Start and End are on the global simulated clock after rebasing.
	Start costmodel.Units `json:"start"`
	End   costmodel.Units `json:"end"`
	// Compared counts match-function applications (resolved pairs);
	// Dups the emitted duplicates; Skipped the pairs skipped by
	// redundancy elimination.
	Compared int64 `json:"compared"`
	Dups     int64 `json:"dups"`
	Skipped  int64 `json:"skipped"`
	// Full marks a full (un-truncated) resolution.
	Full bool `json:"full"`
}

// Recorder accumulates predictions, plans, and realizations. It is
// race-safe; a nil Recorder is disabled at zero cost.
type Recorder struct {
	mu           sync.Mutex
	preds        []BlockPrediction
	plans        []TaskPlan
	obs          []BlockObs
	bucketLabels []string
}

// NewRecorder returns an enabled empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// RecordPrediction adds one scheduled block's predicted estimates.
func (r *Recorder) RecordPrediction(p BlockPrediction) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.preds = append(r.preds, p)
	r.mu.Unlock()
}

// RecordPlan adds one reduce task's planned load.
func (r *Recorder) RecordPlan(p TaskPlan) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.plans = append(r.plans, p)
	r.mu.Unlock()
}

// ObserveBlock adds one realized block resolution (already rebased to
// the global clock; see mapreduce.TaskContext.ObserveBlock for the
// task-local entry point).
func (r *Recorder) ObserveBlock(o BlockObs) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.obs = append(r.obs, o)
	r.mu.Unlock()
}

// SetBucketLabels installs printable labels for the size-fraction
// buckets referenced by BlockPrediction.Bucket.
func (r *Recorder) SetBucketLabels(labels []string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.bucketLabels = append([]string(nil), labels...)
	r.mu.Unlock()
}

// Predictions returns a copy of the recorded predictions, sorted by SQ.
func (r *Recorder) Predictions() []BlockPrediction {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]BlockPrediction(nil), r.preds...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].SQ < out[j].SQ })
	return out
}

// Plans returns a copy of the recorded task plans, sorted by task.
func (r *Recorder) Plans() []TaskPlan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]TaskPlan(nil), r.plans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// Observations returns a copy of the realized block resolutions in
// completion order (ties broken by task, then SQ, then ID — all
// deterministic, so the order never depends on host concurrency).
func (r *Recorder) Observations() []BlockObs {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]BlockObs(nil), r.obs...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.SQ != b.SQ {
			return a.SQ < b.SQ
		}
		return a.ID < b.ID
	})
	return out
}

// Totals returns the schedule-wide predicted duplicate count (Σ Dup(X)
// over recorded predictions) and planned cost (Σ EstCost over recorded
// task plans). These are the denominators of live progressive-recall
// and ETA estimates: fixed once sched.Generate has published the
// schedule. Zeros for a nil or empty recorder.
func (r *Recorder) Totals() (predictedDups, plannedCost float64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.preds {
		predictedDups += p.Dup
	}
	for _, p := range r.plans {
		plannedCost += p.EstCost
	}
	return predictedDups, plannedCost
}

// labels returns the installed bucket labels (nil when unset).
func (r *Recorder) labels() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.bucketLabels...)
}
