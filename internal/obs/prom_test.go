package obs

import (
	"bytes"
	"math"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition output:
// name sanitization, NaN/±Inf rendering, cumulative buckets, and the
// stable counters→gauges→histograms ordering (each section sorted by
// name). Any byte-level drift here breaks downstream scrapers and the
// chaos gate's file comparisons, so this is a full-output match, not a
// substring check.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("job2.blocks_resolved").Add(12)
	r.Counter("weird name!").Add(3)
	r.Gauge("g.inf").Set(math.Inf(1))
	r.Gauge("g.nan").Set(math.NaN())
	r.Gauge("g.neginf").Set(math.Inf(-1))
	r.Gauge("g.plain").Set(2.5)
	h := r.Histogram("task_cost", 0.5, 10)
	h.Observe(0.25)
	h.Observe(5)
	h.Observe(100)

	const want = `# TYPE job2_blocks_resolved counter
job2_blocks_resolved 12
# TYPE weird_name_ counter
weird_name_ 3
# TYPE g_inf gauge
g_inf +Inf
# TYPE g_nan gauge
g_nan NaN
# TYPE g_neginf gauge
g_neginf -Inf
# TYPE g_plain gauge
g_plain 2.5
# TYPE task_cost histogram
task_cost_bucket{le="0.5"} 1
task_cost_bucket{le="10"} 2
task_cost_bucket{le="+Inf"} 3
task_cost_sum 105.25
task_cost_count 3
`
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// A second export of the unchanged registry is byte-identical.
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Error("repeated export not byte-identical")
	}
}

func TestPromNameEdgeCases(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"job2.blocks", "job2_blocks"},
		{"9lives", "_lives"},
		{"", "_"},
		{"a:b_c9", "a:b_c9"},
		{"sné", "sn_"},
	} {
		if got := PromName(tc.in); got != tc.want {
			t.Errorf("PromName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	hv := HistogramValue{
		Bounds: []float64{1, 10, 100},
		Counts: []uint64{0, 2, 0, 0},
		Sum:    12,
		Count:  2,
	}
	if got := hv.Mean(); got != 6 {
		t.Errorf("Mean = %v, want 6", got)
	}
	if got := hv.Quantile(0.5); got != 5.5 {
		t.Errorf("p50 = %v, want 5.5", got)
	}
	if got := hv.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want 1 (lower edge of first occupied bucket)", got)
	}
	if got := hv.Quantile(1); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}

	// +Inf-bucket observations clamp to the last finite bound.
	inf := HistogramValue{Bounds: []float64{1}, Counts: []uint64{0, 3}, Count: 3}
	if got := inf.Quantile(0.99); got != 1 {
		t.Errorf("+Inf-bucket quantile = %v, want 1", got)
	}

	// Empty histogram.
	var empty HistogramValue
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty mean = %v, want 0", got)
	}
}
