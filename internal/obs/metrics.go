package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a race-safe metrics registry: named counters, gauges,
// and histograms, creatable on first use and snapshot-able at any
// point. It absorbs (and extends) the engine's per-job Counters maps
// via AddCounters. A nil *Registry is the disabled registry: it hands
// out nil instruments whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DefaultBuckets are the histogram bucket upper bounds used when none
// are given: roughly logarithmic, wide enough for both per-task cost
// units and record counts.
var DefaultBuckets = []float64{10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// Histogram returns the named histogram, creating it with the given
// strictly-increasing bucket upper bounds (DefaultBuckets if none) on
// first use. Later calls ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefaultBuckets
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// AddCounters merges a name→delta map (e.g. a mapreduce.Counters) into
// the registry's counters.
func (r *Registry) AddCounters(c map[string]int64) {
	if r == nil {
		return
	}
	for name, v := range c {
		r.Counter(name).Add(v)
	}
}

// Counter is a monotonically increasing int64. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative-style buckets
// (Prometheus semantics: bucket i counts observations ≤ bounds[i];
// the final implicit bucket is +Inf). Nil-safe.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	sum    float64
	n      uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// CounterValue, GaugeValue and HistogramValue are snapshot entries.
type CounterValue struct {
	Name  string
	Value int64
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string
	Value float64
}

// HistogramValue is one histogram in a snapshot. Counts are per-bucket
// (not cumulative); Bounds[i] is bucket i's upper bound and the last
// Counts entry is the +Inf bucket.
type HistogramValue struct {
	Name   string
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Mean returns the mean observation, or 0 when empty.
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts, interpolating linearly within the containing bucket
// (Prometheus histogram_quantile semantics). The first bucket
// interpolates from 0; an answer in the +Inf bucket is clamped to the
// last finite bound. Returns 0 when the histogram is empty.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			// +Inf bucket: no finite upper edge to interpolate toward.
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if c == 0 {
			return hi
		}
		within := rank - float64(cum-c)
		return lo + (hi-lo)*within/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of the registry, each section
// sorted by name.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{name, c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{name, g.Value()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		}
		h.mu.Unlock()
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
