package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Clock selects the timebase of an exported trace.
type Clock int

const (
	// ClockSim exports simulated cost units as microseconds. Output is
	// deterministic: byte-identical across runs and worker counts.
	ClockSim Clock = iota
	// ClockWall exports host wall-clock times (µs since the earliest
	// recorded wall timestamp). Spans without wall data are skipped.
	ClockWall
)

// WriteChromeTrace writes the spans as Chrome trace-event JSON on the
// simulated clock (the deterministic default). Load the file in
// Perfetto (ui.perfetto.dev) or chrome://tracing; one simulated cost
// unit renders as one microsecond. A nil tracer writes a valid empty
// trace document.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return t.WriteChromeTraceClock(w, ClockSim)
}

// WriteChromeTraceClock is WriteChromeTrace with an explicit timebase.
func (t *Tracer) WriteChromeTraceClock(w io.Writer, clock Clock) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}

	// Process-name metadata events, one per PID lane.
	for pid, name := range t.Processes() {
		ev := chromeEvent{Name: "process_name", Ph: "M", PID: pid,
			Args: mustArgsJSON([]Arg{{Key: "name", Value: name}})}
		if err := emit(ev); err != nil {
			return err
		}
	}

	spans := t.Spans()
	var wallEpoch int64 // earliest wall timestamp, µs
	if clock == ClockWall {
		for _, s := range spans {
			if s.WallStart.IsZero() {
				continue
			}
			us := s.WallStart.UnixMicro()
			if wallEpoch == 0 || us < wallEpoch {
				wallEpoch = us
			}
		}
	}
	for _, s := range spans {
		ev := chromeEvent{Name: s.Name, Cat: s.Cat, Ph: "X", PID: s.PID, TID: s.TID}
		switch clock {
		case ClockSim:
			ev.TS = float64(s.Start)
			ev.Dur = float64(s.Dur)
		case ClockWall:
			if s.WallStart.IsZero() {
				continue
			}
			ev.TS = float64(s.WallStart.UnixMicro() - wallEpoch)
			ev.Dur = float64(s.WallDur.Microseconds())
		default:
			return fmt.Errorf("obs: unknown clock %d", clock)
		}
		if len(s.Args) > 0 {
			ev.Args = mustArgsJSON(s.Args)
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvent is one entry of the trace-event format. Struct (not map)
// marshalling keeps field order fixed, which keeps output deterministic.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	TS   float64         `json:"ts"`
	Dur  float64         `json:"dur,omitempty"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	Args json.RawMessage `json:"args,omitempty"`
}

// mustArgsJSON renders ordered Args as a JSON object, preserving the
// slice order. Unmarshalable values degrade to their %v rendering
// rather than failing the whole export.
func mustArgsJSON(args []Arg) json.RawMessage {
	out := make([]byte, 0, 32*len(args))
	out = append(out, '{')
	for i, a := range args {
		if i > 0 {
			out = append(out, ',')
		}
		k, _ := json.Marshal(a.Key)
		out = append(out, k...)
		out = append(out, ':')
		v, err := json.Marshal(a.Value)
		if err != nil {
			v, _ = json.Marshal(fmt.Sprintf("%v", a.Value))
		}
		out = append(out, v...)
	}
	return append(out, '}')
}
