// Package obs is the pipeline's observability layer: a span-based
// tracer and a lightweight metrics registry, with exporters to Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing) and
// Prometheus text format.
//
// # Two clocks
//
// Every span is keyed on two clocks at once:
//
//   - the *simulated* clock (costmodel.Units) — the deterministic cost
//     timeline the paper's progressiveness results are stated in. Span
//     Start/Dur are simulated times, reproducible bit-for-bit across
//     runs and host concurrency levels (Config.Workers);
//   - the *wall* clock — real host time, for profiling the in-process
//     engine itself. WallStart/WallDur are optional (zero when the
//     instrumented stage has no meaningful host extent of its own).
//
// Exporters pick one clock. The default Chrome export uses the
// simulated clock and omits wall-clock data entirely, which makes
// trace files byte-identical across runs — and therefore testable.
//
// # Zero cost when disabled
//
// A nil *Tracer and a nil *Registry are valid, fully inert instances:
// every method on them (and on the nil *Counter / *Gauge / *Histogram
// they hand out) is a no-op that allocates nothing. Hot paths guard
// argument construction behind Enabled() / TaskContext.Tracing() so a
// disabled pipeline pays not even a variadic-slice allocation.
package obs

import (
	"sort"
	"sync"
	"time"

	"proger/internal/costmodel"
)

// Arg is one key/value annotation on a span. Args are kept as an
// ordered slice (not a map) so exported traces are deterministic.
type Arg struct {
	Key   string
	Value any
}

// A constructs an Arg; it keeps call sites short.
func A(key string, value any) Arg { return Arg{Key: key, Value: value} }

// Span is one traced interval of work.
type Span struct {
	// Name labels the individual span ("map 3", "block 0|2|jo…").
	Name string
	// Cat is the span taxonomy category: "map", "reduce", "shuffle",
	// "schedule", or "resolve" (see DESIGN.md §7).
	Cat string
	// PID and TID place the span on the trace viewer's grid: PID is the
	// process lane (one per job, via Tracer.PID), TID the thread lane
	// (the simulated cluster slot that ran the task).
	PID, TID int
	// Start and Dur are on the simulated clock, global timeline.
	Start, Dur costmodel.Units
	// WallStart and WallDur are on the host wall clock; zero when the
	// span has no host-time extent of its own.
	WallStart time.Time
	WallDur   time.Duration
	// Args are optional structured annotations.
	Args []Arg
}

// Tracer collects spans race-safely. The zero value is not usable;
// call New. A nil *Tracer is the disabled tracer: every method is a
// cheap no-op.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
	pids  map[string]int
	procs []string
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{pids: map[string]int{}} }

// Enabled reports whether the tracer collects anything; it is the
// standard guard before building span arguments.
func (t *Tracer) Enabled() bool { return t != nil }

// PID returns the stable process-lane id for a process name (a job
// name, "schedule-generation", …), assigning the next free id on first
// use. Returns 0 on a nil tracer.
func (t *Tracer) PID(process string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.pids[process]; ok {
		return id
	}
	id := len(t.procs)
	t.pids[process] = id
	t.procs = append(t.procs, process)
	return id
}

// Add records one span. No-op on a nil tracer.
func (t *Tracer) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in canonical order:
// by simulated start, then PID, TID, category, name, duration. The
// ordering depends only on simulated-clock data, so it is identical
// across runs regardless of host scheduling.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Dur < b.Dur
	})
	return out
}

// Processes returns the process-lane names in PID order.
func (t *Tracer) Processes() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.procs))
	copy(out, t.procs)
	return out
}
