package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	r.Counter("c").Add(5)
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(3)
	r.AddCounters(map[string]int64{"x": 1})
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Error("nil instruments hold state")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("pairs").Add(3)
	r.Counter("pairs").Inc()
	if got := r.Counter("pairs").Value(); got != 4 {
		t.Errorf("counter = %d", got)
	}
	r.Gauge("recall").Set(0.75)
	if got := r.Gauge("recall").Value(); got != 0.75 {
		t.Errorf("gauge = %v", got)
	}
	h := r.Histogram("cost", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	if h.Count() != 3 || h.Sum() != 5055 {
		t.Errorf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	// Same name returns the same instrument; bounds of later calls ignored.
	if r.Histogram("cost", 1) != h {
		t.Error("histogram not deduplicated by name")
	}
}

func TestAddCounters(t *testing.T) {
	r := NewRegistry()
	r.AddCounters(map[string]int64{"job1.trees": 8, "job2.dups": 3})
	r.AddCounters(map[string]int64{"job2.dups": 2})
	if r.Counter("job2.dups").Value() != 5 || r.Counter("job1.trees").Value() != 8 {
		t.Errorf("absorbed counters wrong: %+v", r.Snapshot().Counters)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Inc()
	r.Counter("aa").Inc()
	r.Gauge("m").Set(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "aa" || snap.Counters[1].Name != "zz" {
		t.Errorf("counters not sorted: %+v", snap.Counters)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("job2.blocks_resolved").Add(12)
	r.Gauge("total time").Set(1500.5)
	h := r.Histogram("task_cost", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE job2_blocks_resolved counter\njob2_blocks_resolved 12\n",
		"# TYPE total_time gauge\ntotal_time 1500.5\n",
		"# TYPE task_cost histogram\n",
		"task_cost_bucket{le=\"10\"} 1\n",
		"task_cost_bucket{le=\"100\"} 2\n",
		"task_cost_bucket{le=\"+Inf\"} 3\n",
		"task_cost_sum 5055\n",
		"task_cost_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"job2.blocks_resolved": "job2_blocks_resolved",
		"9lives":               "_lives",
		"ok_name:x9":           "ok_name:x9",
		"":                     "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if r.Counter("n").Value() != 8000 || r.Histogram("h").Count() != 8000 {
		t.Errorf("lost updates: n=%d h=%d", r.Counter("n").Value(), r.Histogram("h").Count())
	}
}
