// Package live is the pipeline's *in-flight* introspection layer.
// Where internal/obs and internal/obs/quality export artifacts after a
// run ends, this package answers "what is the run doing right now":
// per-task DAG node states, attempt/retry/speculation counts, shuffle
// merge and spill progress, memory-budget pressure, and an incremental
// progressive-recall estimate — all published by the engines at atomic-
// counter cost and readable at any instant, plus an HTTP status server
// (server.go), a structured JSON event log (events.go), and a terminal
// progress renderer (progress.go).
//
// # Consistency model
//
// Snapshots are *per-field atomic, not globally consistent*: a Progress
// or Tasks read observes each counter at some point during the call,
// with no cross-counter barrier. That is deliberate — publication sites
// sit on engine hot paths and pay one atomic store each, never a lock
// shared with readers. The only ordering guarantee is per-field
// monotonicity: task states only advance pending→running→{done,failed}
// (re-executions briefly re-enter running), counters only grow, and the
// recall estimate is nondecreasing because its numerator is a monotone
// counter and its denominator is fixed once the schedule is recorded.
//
// # Determinism
//
// Live state is wall-clock territory, like pprof: it observes host
// execution order and must never feed back into it. Nothing in this
// package is read by the engines, so Result, traces, metrics, and
// quality exports are byte-identical with or without a Run attached —
// the same contract Workers and Config.Faults obey.
//
// A nil *Run (and the nil *Job it hands out) is the disabled layer:
// every method is a cheap no-op, so call sites need no gating branches.
package live

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"proger/internal/membudget"
	"proger/internal/obs/quality"
)

// Phase names one engine phase of a job's task DAG.
type Phase string

// Engine phases, in execution (and snapshot) order.
const (
	PhaseMap     Phase = "map"
	PhaseShuffle Phase = "shuffle"
	PhaseReduce  Phase = "reduce"
)

// TaskState is one DAG node's lifecycle state.
type TaskState int32

// Task states. Transitions only ever advance, except that a retry or
// speculative re-execution moves a task back to TaskRunning until its
// ladder settles.
const (
	TaskPending TaskState = iota
	TaskRunning
	TaskDone
	TaskFailed
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	case TaskFailed:
		return "failed"
	}
	return "unknown"
}

// Run is the process-wide live-introspection hub: jobs register their
// task DAGs into it, reduce tasks stream resolution progress through
// it, and the status server / progress renderer read snapshots from
// it. Create one with NewRun; a nil *Run disables everything.
type Run struct {
	log       *EventLog
	wallStart time.Time

	mu   sync.Mutex
	jobs []*Job

	quality *quality.Recorder
	budget  *membudget.Manager
	fleet   FleetProvider

	// Live resolution progress, streamed from reduce tasks as each
	// block commits (not at job end): the numerators of the recall and
	// ETA estimates.
	blocks   atomic.Int64
	compared atomic.Int64
	dups     atomic.Int64
	// resolveCost accumulates realized block-resolution cost units
	// (float64 bits), comparable against the schedule's planned ΣCost.
	resolveCost atomicFloat

	done    atomic.Bool
	failed  atomic.Bool
	errText atomic.Pointer[string]
}

// NewRun returns an enabled live-introspection hub. log may be nil
// (snapshots only, no event stream).
func NewRun(log *EventLog) *Run {
	return &Run{log: log, wallStart: time.Now()}
}

// Enabled reports whether the hub records anything.
func (r *Run) Enabled() bool { return r != nil }

// EventLog returns the attached event log (nil when none).
func (r *Run) EventLog() *EventLog {
	if r == nil {
		return nil
	}
	return r.log
}

// AttachQuality connects the quality recorder whose schedule-wide
// totals (predicted duplicates, planned cost) denominate the live
// recall and ETA estimates.
func (r *Run) AttachQuality(q *quality.Recorder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.quality = q
	r.mu.Unlock()
}

// AttachBudget connects the memory-budget manager whose pressure
// telemetry the /membudget endpoint and progress renderer report.
func (r *Run) AttachBudget(m *membudget.Manager) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.budget = m
	r.mu.Unlock()
}

// Finish marks the run complete (or failed); /healthz flips from
// "running" to "done"/"failed" and the progress renderer stops
// advancing.
func (r *Run) Finish(err error) {
	if r == nil {
		return
	}
	if err != nil {
		s := err.Error()
		r.errText.Store(&s)
		r.failed.Store(true)
	}
	r.done.Store(true)
}

// StartJob registers one MapReduce job's task DAG (maps map tasks, and
// reduces shuffle+reduce task pairs) and returns its publication
// handle. Jobs append in submission order, which is also snapshot
// order. Nil-safe: a nil Run returns a nil Job whose methods no-op.
func (r *Run) StartJob(name string, maps, reduces int) *Job {
	if r == nil {
		return nil
	}
	j := &Job{run: r, name: name}
	j.phases[0] = newPhaseLive(PhaseMap, maps)
	j.phases[1] = newPhaseLive(PhaseShuffle, reduces)
	j.phases[2] = newPhaseLive(PhaseReduce, reduces)
	r.mu.Lock()
	r.jobs = append(r.jobs, j)
	r.mu.Unlock()
	r.log.Emit(EventJobStart,
		KV("job", name), KV("map_tasks", maps), KV("reduce_tasks", reduces))
	return j
}

// ObserveResolution streams one resolved block's realization: the
// engine-independent live feed behind the recall estimate. costUnits
// is the block's resolution extent on the task-local simulated clock.
func (r *Run) ObserveResolution(compared, dups int64, costUnits float64) {
	if r == nil {
		return
	}
	r.blocks.Add(1)
	r.compared.Add(compared)
	r.dups.Add(dups)
	r.resolveCost.Add(costUnits)
}

// snapshotJobs copies the job list (handles, not state).
func (r *Run) snapshotJobs() []*Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Job(nil), r.jobs...)
}

// Job is one registered job's publication handle.
type Job struct {
	run  *Run
	name string
	// phases index: 0 map, 1 shuffle, 2 reduce.
	phases [3]*phaseLive
	// merges counts committed incremental shuffle-merge nodes (the
	// pipelined engine's pre-merge tree), including non-root nodes.
	merges atomic.Int64
	// spilledRuns counts sorted runs the shuffle routed to disk.
	spilledRuns atomic.Int64
	// retries and speculations count attempt-runtime activity.
	retries      atomic.Int64
	speculations atomic.Int64
}

// phaseLive is one phase's per-task atomic state.
type phaseLive struct {
	phase    Phase
	states   []atomic.Int32
	attempts []atomic.Int32
	costs    []atomicFloat // realized task cost units, set at completion
	// workers records which distributed worker executed each task (0 =
	// local/unattributed), set by the remote transports.
	workers []atomic.Int32
}

func newPhaseLive(p Phase, n int) *phaseLive {
	return &phaseLive{
		phase:    p,
		states:   make([]atomic.Int32, n),
		attempts: make([]atomic.Int32, n),
		costs:    make([]atomicFloat, n),
		workers:  make([]atomic.Int32, n),
	}
}

func (j *Job) ph(p Phase) *phaseLive {
	switch p {
	case PhaseMap:
		return j.phases[0]
	case PhaseShuffle:
		return j.phases[1]
	}
	return j.phases[2]
}

// TaskStart marks one task execution beginning (every execution: first
// attempts, retries, and speculative backups alike increment the
// attempt count).
func (j *Job) TaskStart(p Phase, task int) {
	if j == nil {
		return
	}
	ph := j.ph(p)
	if task < 0 || task >= len(ph.states) {
		return
	}
	ph.states[task].Store(int32(TaskRunning))
	attempt := ph.attempts[task].Add(1)
	j.run.log.Emit(EventTaskStart,
		KV("job", j.name), KV("phase", string(p)), KV("task", task), KV("attempt", int(attempt)))
}

// TaskDone marks one task execution completing cleanly, recording its
// realized simulated cost.
func (j *Job) TaskDone(p Phase, task int, costUnits float64, records int) {
	if j == nil {
		return
	}
	ph := j.ph(p)
	if task < 0 || task >= len(ph.states) {
		return
	}
	ph.costs[task].Store(costUnits)
	ph.states[task].Store(int32(TaskDone))
	j.run.log.Emit(EventTaskDone,
		KV("job", j.name), KV("phase", string(p)), KV("task", task),
		KV("cost_units", costUnits), KV("records", records))
}

// TaskFailed marks one task execution erroring out. The attempt
// runtime may still retry it (see Retry).
func (j *Job) TaskFailed(p Phase, task int, err error) {
	if j == nil {
		return
	}
	ph := j.ph(p)
	if task < 0 || task >= len(ph.states) {
		return
	}
	ph.states[task].Store(int32(TaskFailed))
	j.run.log.Emit(EventTaskFailed,
		KV("job", j.name), KV("phase", string(p)), KV("task", task), KV("error", err.Error()))
}

// TaskWorker attributes a task's execution to a distributed worker
// (the /tasks table's per-worker column). worker is the master-assigned
// worker ID; 0 means local/unattributed and is ignored.
func (j *Job) TaskWorker(p Phase, task, worker int) {
	if j == nil || worker <= 0 {
		return
	}
	ph := j.ph(p)
	if task < 0 || task >= len(ph.workers) {
		return
	}
	ph.workers[task].Store(int32(worker))
}

// Retry records the attempt runtime discarding attempt `attempt` of a
// task with the given outcome (crash/timeout/error) and re-entering
// the retry ladder: the task goes back to running.
func (j *Job) Retry(p Phase, task, attempt int, outcome string) {
	if j == nil {
		return
	}
	ph := j.ph(p)
	if task < 0 || task >= len(ph.states) {
		return
	}
	ph.states[task].Store(int32(TaskRunning))
	j.retries.Add(1)
	j.run.log.Emit(EventTaskRetry,
		KV("job", j.name), KV("phase", string(p)), KV("task", task),
		KV("attempt", attempt), KV("outcome", outcome))
}

// Speculate records a speculative backup attempt launching for a
// straggling (already committed) task.
func (j *Job) Speculate(p Phase, task int) {
	if j == nil {
		return
	}
	j.speculations.Add(1)
	j.run.log.Emit(EventTaskSpeculate,
		KV("job", j.name), KV("phase", string(p)), KV("task", task))
}

// MergeCommitted records one incremental shuffle-merge node completing
// for partition r; root marks the partition's shuffle input fully
// assembled (the premerge tree has no single shuffle task execution to
// report through TaskStart/TaskDone).
func (j *Job) MergeCommitted(r int, root bool) {
	if j == nil {
		return
	}
	j.merges.Add(1)
	if root {
		ph := j.phases[1]
		if r >= 0 && r < len(ph.states) {
			ph.states[r].Store(int32(TaskDone))
		}
		j.run.log.Emit(EventShuffleMerged, KV("job", j.name), KV("partition", r))
	}
}

// SpilledRuns records the shuffle routing n sorted runs to disk for
// partition r (the deterministic ShuffleMemLimit path; budget-forced
// spills surface through the membudget manager instead).
func (j *Job) SpilledRuns(r int, n int64) {
	if j == nil || n <= 0 {
		return
	}
	j.spilledRuns.Add(n)
	j.run.log.Emit(EventShuffleSpill, KV("job", j.name), KV("partition", r), KV("runs", n))
}

// End marks the job's DAG fully executed (or failed).
func (j *Job) End(err error) {
	if j == nil {
		return
	}
	if err != nil {
		j.run.log.Emit(EventJobEnd, KV("job", j.name), KV("error", err.Error()))
		return
	}
	j.run.log.Emit(EventJobEnd, KV("job", j.name))
}

// atomicFloat is a float64 with atomic Store/Add/Load.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}
