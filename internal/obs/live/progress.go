package live

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressRenderer periodically redraws a single status line (carriage
// return, no newline) for interactive runs:
//
//	progress: maps 12/16 reduces 3/4 | dups 1042 recall~0.87 | mem 1.2MB spills 3
//
// It is presentation-only wall-clock machinery, started by the
// binaries when stderr is interactive and a live Run exists; it reads
// the same snapshots the HTTP endpoints serve.
type ProgressRenderer struct {
	w        io.Writer
	run      *Run
	interval time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// StartProgress launches a renderer drawing to w every interval
// (default 500ms when interval ≤ 0). Returns nil (a no-op handle) when
// run is nil.
func StartProgress(w io.Writer, run *Run, interval time.Duration) *ProgressRenderer {
	if run == nil || w == nil {
		return nil
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	p := &ProgressRenderer{w: w, run: run, interval: interval, stop: make(chan struct{})}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *ProgressRenderer) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.draw()
		}
	}
}

func (p *ProgressRenderer) draw() {
	s := p.run.Progress()
	var mapsDone, mapsTotal, redDone, redTotal int
	for _, j := range s.Jobs {
		for _, ph := range j.Phases {
			switch ph.Phase {
			case PhaseMap:
				mapsDone += ph.Done
				mapsTotal += ph.Tasks
			case PhaseReduce:
				redDone += ph.Done
				redTotal += ph.Tasks
			}
		}
	}
	line := fmt.Sprintf("progress: maps %d/%d reduces %d/%d | dups %d",
		mapsDone, mapsTotal, redDone, redTotal, s.Dups)
	if s.PredictedDups > 0 {
		line += fmt.Sprintf(" recall~%.2f", s.RecallEstimate)
	}
	if b := p.run.Budget(); b.Budget > 0 {
		line += fmt.Sprintf(" | mem %s/%s spills %d",
			fmtBytes(b.Used), fmtBytes(b.Budget), b.ForcedSpills)
	}
	// Pad to overwrite any longer previous line before the \r rewind.
	fmt.Fprintf(p.w, "\r%-100s\r%s", "", line)
}

// Stop halts the renderer, draws one final snapshot, and terminates
// the status line with a newline. Safe on a nil handle and on repeated
// calls.
func (p *ProgressRenderer) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.draw()
		fmt.Fprintln(p.w)
	})
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
