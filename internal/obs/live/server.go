package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"

	"proger/internal/obs"
)

// NewHandler returns the status server's route table over a live Run
// and the process metrics registry:
//
//	/healthz         liveness + run state (running/done/failed; 503 once failed)
//	/progress        ProgressSnapshot JSON: recall-so-far, ETA in cost units
//	/tasks           TaskRow JSON array: DAG node table with per-task skew
//	/fleet           FleetSnapshot JSON: per-worker lease ledger + telemetry
//	/membudget       membudget.Stats JSON: live budget pressure
//	/metrics         Prometheus text scrape of reg (live, not post-run)
//	/debug/pprof/    the standard runtime profiles
//
// Both r and reg may be nil; the endpoints then serve empty snapshots,
// so the handler is always safe to mount.
func NewHandler(r *Run, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		state := "running"
		failed := false
		if r != nil && r.done.Load() {
			state = "done"
			if r.failed.Load() {
				state, failed = "failed", true
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if failed {
			// Orchestrator probes act on status codes, not bodies: a
			// failed run must read as unhealthy.
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "ok %s\n", state)
	})

	mux.HandleFunc("/progress", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Progress())
	})

	mux.HandleFunc("/tasks", func(w http.ResponseWriter, req *http.Request) {
		rows := r.Tasks()
		if rows == nil {
			rows = []TaskRow{}
		}
		writeJSON(w, rows)
	})

	mux.HandleFunc("/fleet", func(w http.ResponseWriter, req *http.Request) {
		fs := r.Fleet()
		if fs.Workers == nil {
			fs.Workers = []FleetWorker{}
		}
		writeJSON(w, fs)
	})

	mux.HandleFunc("/membudget", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Budget())
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})

	// The standard profiles, mounted explicitly on this mux rather than
	// by blank-importing net/http/pprof (which would pollute the global
	// DefaultServeMux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		paths := []string{"/healthz", "/progress", "/tasks", "/fleet", "/membudget", "/metrics", "/debug/pprof/"}
		sort.Strings(paths)
		fmt.Fprintln(w, "proger status server")
		for _, p := range paths {
			fmt.Fprintln(w, " ", p)
		}
	})

	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running status server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; port 0 picks a free one) and serves the
// status handler in a background goroutine. The listener is bound
// synchronously, so once Serve returns the endpoints are reachable at
// Addr() — callers can print the address before the run starts.
func Serve(addr string, r *Run, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: status server listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(r, reg)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. In-flight scrapes are cut, not drained: the
// status surface is advisory and must never delay run completion.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
