package live

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"proger/internal/membudget"
	"proger/internal/obs"
	"proger/internal/obs/quality"
)

// decodeEvents parses a JSON-lines event stream.
func decodeEvents(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestEventLogFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Emit(EventRunStart, KV("entities", 9))
	l.Emit(EventTaskStart, KV("job", "j"), KV("phase", "map"), KV("task", 0))
	l.Emit(EventRunEnd)

	evs := decodeEvents(t, buf.Bytes())
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	wantNames := []string{EventRunStart, EventTaskStart, EventRunEnd}
	for i, ev := range evs {
		if ev["event"] != wantNames[i] {
			t.Errorf("event[%d] = %v, want %s", i, ev["event"], wantNames[i])
		}
		// slog's default time/level fields must be suppressed: wall-clock
		// data lives only in the segregated wall_ms field.
		if _, ok := ev["time"]; ok {
			t.Errorf("event[%d] leaks a time field: %v", i, ev)
		}
		if _, ok := ev["level"]; ok {
			t.Errorf("event[%d] leaks a level field: %v", i, ev)
		}
		if seq, ok := ev["seq"].(float64); !ok || int(seq) != i+1 {
			t.Errorf("event[%d] seq = %v, want %d", i, ev["seq"], i+1)
		}
		if _, ok := ev["wall_ms"].(float64); !ok {
			t.Errorf("event[%d] missing wall_ms: %v", i, ev)
		}
	}
	if evs[0]["entities"] != float64(9) {
		t.Errorf("run.start entities = %v", evs[0]["entities"])
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(EventRunStart) // must not panic
}

func TestEventLogConcurrentSeq(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				l.Emit(EventTaskDone, KV("task", i))
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	evs := decodeEvents(t, buf.Bytes())
	if len(evs) != 400 {
		t.Fatalf("got %d events, want 400", len(evs))
	}
	for i, ev := range evs {
		if int(ev["seq"].(float64)) != i+1 {
			t.Fatalf("seq out of order at line %d: %v", i, ev["seq"])
		}
	}
}

func TestRunTaskLifecycleAndProgress(t *testing.T) {
	r := NewRun(nil)
	j := r.StartJob("job", 2, 1)
	if got := r.Progress(); got.Jobs[0].Phases[0].Pending != 2 {
		t.Fatalf("initial pending = %d, want 2", got.Jobs[0].Phases[0].Pending)
	}
	j.TaskStart(PhaseMap, 0)
	j.TaskStart(PhaseMap, 1)
	j.TaskDone(PhaseMap, 0, 10, 4)
	j.TaskFailed(PhaseMap, 1, fmt.Errorf("boom"))
	j.TaskStart(PhaseShuffle, 0)
	j.TaskDone(PhaseShuffle, 0, 5, 4)
	j.TaskStart(PhaseReduce, 0)
	j.TaskDone(PhaseReduce, 0, 30, 4)
	j.Retry(PhaseMap, 1, 1, "crash")
	j.TaskStart(PhaseMap, 1) // the retried execution begins
	j.Speculate(PhaseMap, 1)
	j.MergeCommitted(0, true)
	j.SpilledRuns(0, 3)
	r.ObserveResolution(6, 2, 30)
	r.Finish(nil)

	s := r.Progress()
	mp := s.Jobs[0].Phases[0]
	// Retry moved task 1 back to running after its failure.
	if mp.Done != 1 || mp.Running != 1 {
		t.Errorf("map phase = %+v, want 1 done 1 running", mp)
	}
	if s.Jobs[0].Retries != 1 || s.Jobs[0].Speculations != 1 {
		t.Errorf("retries/speculations = %d/%d, want 1/1", s.Jobs[0].Retries, s.Jobs[0].Speculations)
	}
	if s.Jobs[0].Merges != 1 || s.Jobs[0].SpilledRuns != 3 {
		t.Errorf("merges/spilledRuns = %d/%d, want 1/3", s.Jobs[0].Merges, s.Jobs[0].SpilledRuns)
	}
	if s.BlocksResolved != 1 || s.PairsCompared != 6 || s.Dups != 2 || s.RealizedCost != 30 {
		t.Errorf("resolution totals = %+v", s)
	}
	if !s.Done || s.Failed {
		t.Errorf("done/failed = %v/%v", s.Done, s.Failed)
	}

	rows := r.Tasks()
	if len(rows) != 4 { // 2 map + 1 shuffle + 1 reduce
		t.Fatalf("got %d task rows, want 4", len(rows))
	}
	if rows[0].State != "done" || rows[0].CostUnits != 10 || rows[0].Attempts != 1 {
		t.Errorf("map task 0 row = %+v", rows[0])
	}
	if rows[1].State != "running" || rows[1].Attempts != 2 {
		t.Errorf("map task 1 row = %+v", rows[1])
	}
}

func TestRunRecallEstimate(t *testing.T) {
	r := NewRun(nil)
	q := quality.NewRecorder()
	q.RecordPlan(quality.TaskPlan{Task: 0, EstCost: 100})
	q.RecordPrediction(quality.BlockPrediction{ID: "b", Dup: 4, Cost: 100})
	r.AttachQuality(q)
	r.ObserveResolution(10, 2, 60)
	s := r.Progress()
	if s.PredictedDups != 4 || s.RecallEstimate != 0.5 {
		t.Errorf("recall = %v (predicted %v), want 0.5 of 4", s.RecallEstimate, s.PredictedDups)
	}
	if s.ETACostUnits != 40 {
		t.Errorf("ETA = %v, want 40", s.ETACostUnits)
	}
	// The estimate clamps at 1 when realizations beat the prediction.
	r.ObserveResolution(10, 100, 100)
	if s := r.Progress(); s.RecallEstimate != 1 {
		t.Errorf("clamped recall = %v, want 1", s.RecallEstimate)
	}
	if s := r.Progress(); s.ETACostUnits != 0 {
		t.Errorf("ETA after overshoot = %v, want 0", s.ETACostUnits)
	}
}

func TestNilRunSafe(t *testing.T) {
	var r *Run
	if r.Enabled() {
		t.Error("nil run enabled")
	}
	j := r.StartJob("x", 1, 1) // nil job
	j.TaskStart(PhaseMap, 0)
	j.TaskDone(PhaseMap, 0, 1, 1)
	j.TaskFailed(PhaseMap, 0, fmt.Errorf("x"))
	j.Retry(PhaseMap, 0, 1, "crash")
	j.Speculate(PhaseMap, 0)
	j.MergeCommitted(0, false)
	j.SpilledRuns(0, 1)
	j.End(nil)
	r.ObserveResolution(1, 1, 1)
	r.AttachQuality(nil)
	r.AttachBudget(nil)
	r.Finish(nil)
	if s := r.Progress(); len(s.Jobs) != 0 {
		t.Error("nil run progress has jobs")
	}
	if rows := r.Tasks(); rows != nil {
		t.Error("nil run tasks non-nil")
	}
	if b := r.Budget(); b != (membudget.Stats{}) {
		t.Error("nil run budget non-zero")
	}
}

func TestStatusServerEndpoints(t *testing.T) {
	r := NewRun(nil)
	j := r.StartJob("job", 1, 1)
	j.TaskStart(PhaseMap, 0)
	j.TaskDone(PhaseMap, 0, 7, 1)
	r.AttachBudget(membudget.New(1 << 20))
	reg := obs.NewRegistry()
	reg.Counter("mr.test.records").Add(5)

	srv, err := Serve("127.0.0.1:0", r, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body), resp
	}

	if body, _ := get("/healthz"); !strings.Contains(body, "running") {
		t.Errorf("/healthz = %q", body)
	}
	body, _ := get("/progress")
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].Phases[0].Done != 1 {
		t.Errorf("/progress snapshot = %+v", snap)
	}
	body, _ = get("/tasks")
	var rows []TaskRow
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("/tasks not JSON: %v", err)
	}
	if len(rows) != 3 {
		t.Errorf("/tasks rows = %d, want 3", len(rows))
	}
	body, _ = get("/membudget")
	var mb membudget.Stats
	if err := json.Unmarshal([]byte(body), &mb); err != nil {
		t.Fatalf("/membudget not JSON: %v", err)
	}
	if mb.Budget != 1<<20 {
		t.Errorf("/membudget budget = %d", mb.Budget)
	}
	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "mr_test_records 5") {
		t.Errorf("/metrics = %q", body)
	}
	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if body, _ := get("/"); !strings.Contains(body, "/progress") {
		t.Errorf("index = %q", body)
	}

	// A failed run must read as unhealthy at the status-code level (the
	// shared get helper insists on 200, so probe directly).
	r.Finish(fmt.Errorf("boom"))
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz after failure: %v", err)
	}
	failBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz after failure: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(failBody), "failed") {
		t.Errorf("/healthz after failure = %q", failBody)
	}
}

func TestRelayEventLogBufferAndDrain(t *testing.T) {
	l := NewRelayEventLog(4)
	for i := 0; i < 6; i++ {
		l.Emit(EventTaskDone, KV("task", i))
	}
	// Two events past capacity were dropped without consuming seq.
	if d := l.Dropped(); d != 2 {
		t.Errorf("dropped = %d, want 2", d)
	}
	lines := l.Drain()
	if len(lines) != 4 {
		t.Fatalf("drained %d lines, want 4", len(lines))
	}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("relay line %q: %v", line, err)
		}
		if int(ev["seq"].(float64)) != i+1 {
			t.Errorf("relay line %d seq = %v, want %d (gap-free despite drops)", i, ev["seq"], i+1)
		}
		if ev["event"] != EventTaskDone {
			t.Errorf("relay line %d event = %v", i, ev["event"])
		}
	}
	// Post-drain emissions resume the same per-process seq stream.
	l.Emit(EventRunEnd)
	again := l.Drain()
	if len(again) != 1 {
		t.Fatalf("post-drain drained %d lines, want 1", len(again))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(again[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if int(ev["seq"].(float64)) != 5 {
		t.Errorf("post-drain seq = %v, want 5", ev["seq"])
	}
	if l.Drain() != nil {
		t.Error("empty relay drain returned lines")
	}
}

func TestRelayEventLogFlushSignal(t *testing.T) {
	l := NewRelayEventLog(4)
	select {
	case <-l.FlushC():
		t.Fatal("flush signaled before any events")
	default:
	}
	l.Emit(EventTaskStart, KV("task", 0))
	l.Emit(EventTaskDone, KV("task", 0)) // passes half capacity
	select {
	case <-l.FlushC():
	default:
		t.Error("flush not signaled at half capacity")
	}
	// Non-relay and nil logs expose a nil (never-ready) channel.
	if NewEventLog(io.Discard).FlushC() != nil {
		t.Error("writer-backed log has a flush channel")
	}
	var nilLog *EventLog
	if nilLog.FlushC() != nil {
		t.Error("nil log has a flush channel")
	}
	if nilLog.Drain() != nil || nilLog.Dropped() != 0 {
		t.Error("nil log drain/dropped not zero")
	}
}

func TestEmitForwarded(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Emit(EventRunStart)
	l.EmitForwarded("w1", []string{
		`{"event":"task.done","task":3,"seq":7,"wall_ms":12}`,
		"not json", // refused, not merged
	})
	l.Emit(EventRunEnd)

	evs := decodeEvents(t, buf.Bytes())
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	fwd := evs[1]
	if fwd["proc"] != "w1" || fwd["event"] != "task.done" {
		t.Errorf("forwarded event = %v", fwd)
	}
	// The originating process's seq and wall_ms pass through untouched.
	if int(fwd["seq"].(float64)) != 7 || int(fwd["wall_ms"].(float64)) != 12 {
		t.Errorf("forwarded seq/wall_ms = %v/%v, want 7/12", fwd["seq"], fwd["wall_ms"])
	}
	// Host events carry no proc key, and the host seq stream ignores
	// forwarded lines (run.start=1, run.end=2).
	for _, i := range []int{0, 2} {
		if _, ok := evs[i]["proc"]; ok {
			t.Errorf("host event %d carries proc: %v", i, evs[i])
		}
	}
	if int(evs[2]["seq"].(float64)) != 2 {
		t.Errorf("host seq after forward = %v, want 2", evs[2]["seq"])
	}
	// Relay logs have no writer: forwarding into one is a no-op.
	NewRelayEventLog(0).EmitForwarded("w2", []string{`{"event":"x","seq":1}`})
	var nilLog *EventLog
	nilLog.EmitForwarded("w1", []string{`{"event":"x","seq":1}`})
}

// staticFleet is a canned FleetProvider for endpoint tests.
type staticFleet struct{ fs FleetSnapshot }

func (s staticFleet) FleetSnapshot() FleetSnapshot { return s.fs }

func TestFleetAttachAndEndpoint(t *testing.T) {
	r := NewRun(nil)
	if fs := r.Fleet(); len(fs.Workers) != 0 {
		t.Errorf("unattached fleet = %+v", fs)
	}
	var nilRun *Run
	nilRun.AttachFleet(staticFleet{})
	if fs := nilRun.Fleet(); len(fs.Workers) != 0 {
		t.Errorf("nil run fleet = %+v", fs)
	}

	tel := &WorkerTelemetry{MapTasks: 2, RPCBytesIn: 100}
	r.AttachFleet(staticFleet{fs: FleetSnapshot{
		Workers: []FleetWorker{
			{ID: 1, Alive: true, LeasesGranted: 5, Telemetry: tel},
			{ID: 2, Alive: false, LeasesGranted: 3, LeasesExpired: 1},
		},
		Alive: 1, Dead: 1,
	}})

	srv, err := Serve("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatalf("/fleet not JSON: %v", err)
	}
	if len(fs.Workers) != 2 || fs.Alive != 1 || fs.Dead != 1 {
		t.Fatalf("/fleet snapshot = %+v", fs)
	}
	if fs.Workers[0].Telemetry == nil || fs.Workers[0].Telemetry.MapTasks != 2 {
		t.Errorf("/fleet worker 1 telemetry = %+v", fs.Workers[0].Telemetry)
	}
	if fs.Workers[1].Telemetry != nil || fs.Workers[1].LeasesExpired != 1 {
		t.Errorf("/fleet worker 2 row = %+v", fs.Workers[1])
	}
}

func TestProgressRenderer(t *testing.T) {
	r := NewRun(nil)
	j := r.StartJob("job", 2, 1)
	j.TaskStart(PhaseMap, 0)
	j.TaskDone(PhaseMap, 0, 5, 1)
	r.ObserveResolution(3, 1, 5)
	var buf bytes.Buffer
	p := StartProgress(&buf, r, 1e6) // effectively manual: Stop draws the final frame
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "maps 1/2") || !strings.Contains(out, "dups 1") {
		t.Errorf("progress line = %q", out)
	}
	// Nil handles no-op.
	StartProgress(nil, r, 0).Stop()
	StartProgress(&buf, nil, 0).Stop()
}
