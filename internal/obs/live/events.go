package live

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Event names. Like the telemetry counter keys, these are exported
// constants so emit sites never embed string literals (the check.sh
// lint enforces it).
const (
	EventRunStart      = "run.start"
	EventRunEnd        = "run.end"
	EventJobStart      = "job.start"
	EventJobEnd        = "job.end"
	EventTaskStart     = "task.start"
	EventTaskDone      = "task.done"
	EventTaskFailed    = "task.failed"
	EventTaskRetry     = "task.retry"
	EventTaskSpeculate = "task.speculate"
	EventShuffleMerged = "shuffle.merge"
	EventShuffleSpill  = "shuffle.spill"
	// Distributed-runtime events, emitted by the master's lease ledger:
	// a worker process registering, a task lease being granted, and a
	// lease expiring after its worker went silent. All host-side — they
	// never appear in single-process runs and carry no simulated state.
	EventWorkerRegister = "worker.register"
	EventLease          = "lease"
	EventLeaseExpire    = "lease.expire"
)

// EventLog is a structured JSON event stream over log/slog: one JSON
// object per line, `event` naming the event, followed by the emitter's
// attributes. Events split into two field classes:
//
//   - the *deterministic subset* — event name plus emitter attributes
//     (job, phase, task, cost_units, …), all derived from the simulated
//     execution and identical across hosts for a fixed engine/worker
//     topology;
//   - *wall-clock fields*, segregated under reserved names: `seq` (a
//     process-local emission sequence number) and `wall_ms` (host
//     milliseconds since the log was created). Strip these two keys and
//     what remains is the deterministic subset.
//
// A multi-process fleet adds one more identity key: events forwarded
// from a worker process and merged into the master's log via
// EmitForwarded carry `proc` ("w<id>"); the master's own events carry
// none. `seq` is per-process — gap-free within each proc stream — so
// the merged file interleaves streams without renumbering them.
//
// Emission order between concurrent tasks follows host scheduling, so
// determinism of the *set* of events (not their order) is the
// contract; scripts/tracecheck -events validates the structure. The
// slog JSON handler serializes writes internally, so an EventLog is
// safe for concurrent emitters.
type EventLog struct {
	logger    *slog.Logger
	w         io.Writer // retained for EmitForwarded merges (nil in relay mode)
	wallStart time.Time

	// mu serializes seq assignment with the handler write so seq is
	// strictly increasing in output order (the slog handler alone would
	// only serialize the writes, not the numbering). EmitForwarded
	// writes under the same mutex, so merged lines never tear.
	mu  sync.Mutex
	seq int64

	// Relay mode (NewRelayEventLog): emitted lines buffer in memory —
	// bounded by relayCap — until Drain ships them to another process.
	// An event dropped at capacity does NOT consume a seq, so the
	// admitted stream stays gap-free even under overflow.
	relayCap int
	buf      []string
	dropped  int64
	flush    chan struct{}
}

// stripWallAttrs is the slog attribute rewrite shared by every EventLog
// flavor: drop time/level (wall-clock lives in wall_ms; level carries
// nothing), rename msg to event.
func stripWallAttrs(groups []string, a slog.Attr) slog.Attr {
	if len(groups) > 0 {
		return a
	}
	switch a.Key {
	case slog.TimeKey, slog.LevelKey:
		return slog.Attr{}
	case slog.MessageKey:
		return slog.String("event", a.Value.String())
	}
	return a
}

// NewEventLog returns an event log writing JSON lines to w. Nil is a
// valid disabled log (Emit no-ops).
func NewEventLog(w io.Writer) *EventLog {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{ReplaceAttr: stripWallAttrs})
	return &EventLog{logger: slog.New(h), w: w, wallStart: time.Now()}
}

// NewRelayEventLog returns an event log that buffers emitted lines in
// memory instead of writing them anywhere: a worker process's local
// event stream, drained in batches (Drain) and shipped to the master
// piggybacked on heartbeats. The buffer holds at most capacity lines;
// an event emitted against a full buffer is counted in Dropped and
// does not consume a sequence number, so the admitted stream keeps a
// gap-free per-process seq — the invariant the merged multi-process
// grammar checks. FlushC signals when the buffer passes half capacity
// so the owner can flush early instead of waiting for the next beat.
func NewRelayEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 8192
	}
	l := &EventLog{
		wallStart: time.Now(),
		relayCap:  capacity,
		flush:     make(chan struct{}, 1),
	}
	h := slog.NewJSONHandler(relaySink{l}, &slog.HandlerOptions{ReplaceAttr: stripWallAttrs})
	l.logger = slog.New(h)
	return l
}

// relaySink receives the JSON handler's line writes under l.mu (Emit
// holds the mutex across the slog call) and appends them to the relay
// buffer.
type relaySink struct{ l *EventLog }

func (s relaySink) Write(p []byte) (int, error) {
	line := p
	for len(line) > 0 && line[len(line)-1] == '\n' {
		line = line[:len(line)-1]
	}
	if len(line) > 0 {
		s.l.buf = append(s.l.buf, string(line))
	}
	return len(p), nil
}

// KV builds one event attribute. It exists so emit sites read as
// KV("task", i) rather than importing slog themselves.
func KV(key string, value any) slog.Attr { return slog.Any(key, value) }

// Emit writes one event line: the deterministic attributes first, then
// the segregated wall-clock fields seq and wall_ms. Safe on a nil log
// and from concurrent goroutines.
func (l *EventLog) Emit(event string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.relayCap > 0 && len(l.buf) >= l.relayCap {
		l.dropped++
		return
	}
	l.seq++
	attrs = append(attrs,
		slog.Int64("seq", l.seq),
		slog.Int64("wall_ms", time.Since(l.wallStart).Milliseconds()))
	l.logger.LogAttrs(context.Background(), slog.LevelInfo, event, attrs...)
	if l.relayCap > 0 && len(l.buf) >= l.relayCap/2 {
		select {
		case l.flush <- struct{}{}:
		default:
		}
	}
}

// Drain takes every buffered relay line, emptying the buffer. Returns
// nil on a nil or non-relay log.
func (l *EventLog) Drain() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.buf
	l.buf = nil
	return out
}

// Dropped reports how many events a relay log discarded at capacity.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// FlushC returns the relay log's early-flush signal: it receives when
// the buffer passes half capacity. Nil (blocks forever in a select)
// for a nil or non-relay log.
func (l *EventLog) FlushC() <-chan struct{} {
	if l == nil {
		return nil
	}
	return l.flush
}

// EmitForwarded merges event lines relayed from another process into
// this log, tagging each with its process identity: the forwarded
// line's leading "{" becomes `{"proc":"<proc>",`, everything else —
// including the originating process's own seq and wall_ms — passes
// through untouched. Writes are serialized with local emissions under
// the same mutex, so merged lines never interleave mid-record. No-op
// on a nil log or one without an underlying writer (relay logs do not
// re-relay).
func (l *EventLog) EmitForwarded(proc string, lines []string) {
	if l == nil || l.w == nil || len(lines) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range lines {
		if len(line) < 3 || line[0] != '{' {
			continue // not a JSON event line; refuse to corrupt the log
		}
		fmt.Fprintf(l.w, "{\"proc\":%q,%s\n", proc, line[1:])
	}
}
