package live

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Event names. Like the telemetry counter keys, these are exported
// constants so emit sites never embed string literals (the check.sh
// lint enforces it).
const (
	EventRunStart      = "run.start"
	EventRunEnd        = "run.end"
	EventJobStart      = "job.start"
	EventJobEnd        = "job.end"
	EventTaskStart     = "task.start"
	EventTaskDone      = "task.done"
	EventTaskFailed    = "task.failed"
	EventTaskRetry     = "task.retry"
	EventTaskSpeculate = "task.speculate"
	EventShuffleMerged = "shuffle.merge"
	EventShuffleSpill  = "shuffle.spill"
	// Distributed-runtime events, emitted by the master's lease ledger:
	// a worker process registering, a task lease being granted, and a
	// lease expiring after its worker went silent. All host-side — they
	// never appear in single-process runs and carry no simulated state.
	EventWorkerRegister = "worker.register"
	EventLease          = "lease"
	EventLeaseExpire    = "lease.expire"
)

// EventLog is a structured JSON event stream over log/slog: one JSON
// object per line, `event` naming the event, followed by the emitter's
// attributes. Events split into two field classes:
//
//   - the *deterministic subset* — event name plus emitter attributes
//     (job, phase, task, cost_units, …), all derived from the simulated
//     execution and identical across hosts for a fixed engine/worker
//     topology;
//   - *wall-clock fields*, segregated under reserved names: `seq` (a
//     process-local emission sequence number) and `wall_ms` (host
//     milliseconds since the log was created). Strip these two keys and
//     what remains is the deterministic subset.
//
// Emission order between concurrent tasks follows host scheduling, so
// determinism of the *set* of events (not their order) is the
// contract; scripts/tracecheck -events validates the structure. The
// slog JSON handler serializes writes internally, so an EventLog is
// safe for concurrent emitters.
type EventLog struct {
	logger    *slog.Logger
	wallStart time.Time

	// mu serializes seq assignment with the handler write so seq is
	// strictly increasing in output order (the slog handler alone would
	// only serialize the writes, not the numbering).
	mu  sync.Mutex
	seq int64
}

// NewEventLog returns an event log writing JSON lines to w. Nil is a
// valid disabled log (Emit no-ops).
func NewEventLog(w io.Writer) *EventLog {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) > 0 {
				return a
			}
			switch a.Key {
			case slog.TimeKey, slog.LevelKey:
				// Wall-clock time is carried by wall_ms instead, and the
				// level carries no information (every event is Info).
				return slog.Attr{}
			case slog.MessageKey:
				return slog.String("event", a.Value.String())
			}
			return a
		},
	})
	return &EventLog{logger: slog.New(h), wallStart: time.Now()}
}

// KV builds one event attribute. It exists so emit sites read as
// KV("task", i) rather than importing slog themselves.
func KV(key string, value any) slog.Attr { return slog.Any(key, value) }

// Emit writes one event line: the deterministic attributes first, then
// the segregated wall-clock fields seq and wall_ms. Safe on a nil log
// and from concurrent goroutines.
func (l *EventLog) Emit(event string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	attrs = append(attrs,
		slog.Int64("seq", l.seq),
		slog.Int64("wall_ms", time.Since(l.wallStart).Milliseconds()))
	l.logger.LogAttrs(context.Background(), slog.LevelInfo, event, attrs...)
}
