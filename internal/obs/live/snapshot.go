package live

import (
	"time"

	"proger/internal/membudget"
)

// ProgressSnapshot is a point-in-time view of overall run progress:
// per-job phase completion, streamed resolution totals, the live
// progressive-recall estimate, and a remaining-work ETA in cost units.
// Per-field atomic (see the package consistency model), so totals may
// be mid-update relative to each other; every field is individually
// monotone while the run executes.
type ProgressSnapshot struct {
	// WallSeconds is host time since NewRun — presentation only, never
	// part of any deterministic artifact.
	WallSeconds float64 `json:"wall_seconds"`
	// Done/Failed/Err mirror Finish.
	Done   bool   `json:"done"`
	Failed bool   `json:"failed"`
	Err    string `json:"error,omitempty"`

	Jobs []JobProgress `json:"jobs"`

	// BlocksResolved/PairsCompared/Dups are the streamed resolution
	// totals across all reduce tasks so far.
	BlocksResolved int64 `json:"blocks_resolved"`
	PairsCompared  int64 `json:"pairs_compared"`
	Dups           int64 `json:"dups"`

	// PredictedDups and PlannedCost are the schedule-wide denominators
	// from the quality recorder (zero when no quality recording or no
	// schedule yet).
	PredictedDups float64 `json:"predicted_dups"`
	PlannedCost   float64 `json:"planned_cost_units"`
	// RealizedCost is the resolution cost spent so far, in the same
	// units as PlannedCost.
	RealizedCost float64 `json:"realized_cost_units"`
	// RecallEstimate is Dups/PredictedDups clamped to [0,1] — the live
	// progressive-recall estimate (0 until predictions exist).
	RecallEstimate float64 `json:"recall_estimate"`
	// ETACostUnits is max(0, PlannedCost−RealizedCost): resolution work
	// remaining on the simulated clock (not wall time).
	ETACostUnits float64 `json:"eta_cost_units"`
}

// JobProgress is one job's phase-completion counts.
type JobProgress struct {
	Name   string          `json:"name"`
	Phases []PhaseProgress `json:"phases"`
	// Merges counts committed incremental shuffle-merge nodes;
	// SpilledRuns sorted runs routed to disk; Retries and Speculations
	// attempt-runtime activity.
	Merges       int64 `json:"merges"`
	SpilledRuns  int64 `json:"spilled_runs"`
	Retries      int64 `json:"retries"`
	Speculations int64 `json:"speculations"`
}

// PhaseProgress is one phase's task-state histogram.
type PhaseProgress struct {
	Phase   Phase `json:"phase"`
	Tasks   int   `json:"tasks"`
	Pending int   `json:"pending"`
	Running int   `json:"running"`
	Done    int   `json:"done"`
	Failed  int   `json:"failed"`
}

// Progress assembles a progress snapshot. Safe to call at any time
// from any goroutine; nil Run yields the zero snapshot.
func (r *Run) Progress() ProgressSnapshot {
	if r == nil {
		return ProgressSnapshot{}
	}
	var s ProgressSnapshot
	s.WallSeconds = time.Since(r.wallStart).Seconds()
	s.Done = r.done.Load()
	s.Failed = r.failed.Load()
	if e := r.errText.Load(); e != nil {
		s.Err = *e
	}
	for _, j := range r.snapshotJobs() {
		jp := JobProgress{
			Name:         j.name,
			Merges:       j.merges.Load(),
			SpilledRuns:  j.spilledRuns.Load(),
			Retries:      j.retries.Load(),
			Speculations: j.speculations.Load(),
		}
		for _, ph := range j.phases {
			pp := PhaseProgress{Phase: ph.phase, Tasks: len(ph.states)}
			for i := range ph.states {
				switch TaskState(ph.states[i].Load()) {
				case TaskPending:
					pp.Pending++
				case TaskRunning:
					pp.Running++
				case TaskDone:
					pp.Done++
				case TaskFailed:
					pp.Failed++
				}
			}
			jp.Phases = append(jp.Phases, pp)
		}
		s.Jobs = append(s.Jobs, jp)
	}
	s.BlocksResolved = r.blocks.Load()
	s.PairsCompared = r.compared.Load()
	s.Dups = r.dups.Load()
	s.RealizedCost = r.resolveCost.Load()

	r.mu.Lock()
	q := r.quality
	r.mu.Unlock()
	s.PredictedDups, s.PlannedCost = q.Totals()
	if s.PredictedDups > 0 {
		s.RecallEstimate = float64(s.Dups) / s.PredictedDups
		if s.RecallEstimate > 1 {
			s.RecallEstimate = 1
		}
	}
	if rem := s.PlannedCost - s.RealizedCost; rem > 0 {
		s.ETACostUnits = rem
	}
	return s
}

// TaskRow is one DAG node's live state for the /tasks table.
type TaskRow struct {
	Job      string `json:"job"`
	Phase    Phase  `json:"phase"`
	Task     int    `json:"task"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	// Worker is the distributed worker that executed the task (0 /
	// omitted for local execution or while still pending).
	Worker int `json:"worker,omitempty"`
	// CostUnits is the realized simulated cost (0 until done).
	CostUnits float64 `json:"cost_units"`
	// Skew is CostUnits over the mean cost of *completed* tasks in the
	// same job+phase — the live straggler signal (0 until done or when
	// the task is the only completion).
	Skew float64 `json:"skew"`
}

// Tasks assembles the full DAG node table, jobs in submission order,
// phases map→shuffle→reduce, tasks by index.
func (r *Run) Tasks() []TaskRow {
	if r == nil {
		return nil
	}
	var rows []TaskRow
	for _, j := range r.snapshotJobs() {
		for _, ph := range j.phases {
			start := len(rows)
			var doneSum float64
			var doneN int
			for i := range ph.states {
				row := TaskRow{
					Job:      j.name,
					Phase:    ph.phase,
					Task:     i,
					State:    TaskState(ph.states[i].Load()).String(),
					Attempts: int(ph.attempts[i].Load()),
					Worker:   int(ph.workers[i].Load()),
				}
				if row.State == "done" {
					row.CostUnits = ph.costs[i].Load()
					doneSum += row.CostUnits
					doneN++
				}
				rows = append(rows, row)
			}
			if doneN > 0 && doneSum > 0 {
				mean := doneSum / float64(doneN)
				for i := start; i < len(rows); i++ {
					if rows[i].State == "done" {
						rows[i].Skew = rows[i].CostUnits / mean
					}
				}
			}
		}
	}
	return rows
}

// Budget returns the attached memory-budget manager's pressure
// snapshot (all-zero when no budget is configured).
func (r *Run) Budget() membudget.Stats {
	if r == nil {
		return membudget.Stats{}
	}
	r.mu.Lock()
	m := r.budget
	r.mu.Unlock()
	return m.Snapshot()
}
