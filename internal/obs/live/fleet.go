package live

import "proger/internal/membudget"

// WorkerTelemetry is one worker process's self-reported activity
// snapshot, piggybacked on every heartbeat. Everything in it is
// wall-clock or host-resource territory — per-phase execution counts,
// busy/idle wall time, lease-wait latency, bytes moved — and therefore
// lives strictly on the observability side of the determinism
// contract: the master records it in its fleet table and nothing else
// ever reads it.
type WorkerTelemetry struct {
	// MapTasks/ShuffleTasks/ReduceTasks count lease executions this
	// worker completed successfully, by phase.
	MapTasks     int64 `json:"map_tasks"`
	ShuffleTasks int64 `json:"shuffle_tasks"`
	ReduceTasks  int64 `json:"reduce_tasks"`
	// BusyCostUnits sums the simulated cost of completed executions —
	// the worker-local view of realized load, comparable across the
	// fleet because the simulated clock is host-independent.
	BusyCostUnits float64 `json:"busy_cost_units"`
	// BusyMillis/IdleMillis split the pump loops' wall time between
	// executing leases and waiting for grants.
	BusyMillis int64 `json:"busy_ms"`
	IdleMillis int64 `json:"idle_ms"`
	// LeaseWaits counts grants; LeaseWaitMillis sums the wall time from
	// first poll to grant.
	LeaseWaits      int64 `json:"lease_waits"`
	LeaseWaitMillis int64 `json:"lease_wait_ms"`
	// RunBytesRead/RunBytesWritten are shared-directory run-file bytes
	// this process moved (map runs written, shuffle merges read+written,
	// reduce inputs streamed).
	RunBytesRead    int64 `json:"run_bytes_read"`
	RunBytesWritten int64 `json:"run_bytes_written"`
	// RPCBytesIn/RPCBytesOut count raw bytes on this worker's RPC
	// connection to the master.
	RPCBytesIn  int64 `json:"rpc_bytes_in"`
	RPCBytesOut int64 `json:"rpc_bytes_out"`
	// EventsDropped counts relay-log events discarded at buffer
	// capacity (gaps in coverage, never in seq).
	EventsDropped int64 `json:"events_dropped"`
	// HeapBytes and Goroutines are Go runtime vitals at snapshot time.
	HeapBytes  uint64 `json:"heap_bytes"`
	Goroutines int    `json:"goroutines"`
	// MemBudget is the worker's memory-budget pressure snapshot (zero
	// when the process runs without a budget manager).
	MemBudget membudget.Stats `json:"membudget"`
}

// FleetWorker is one worker's row in the master's fleet table: lease
// ledger state the master attributes itself (authoritative even for a
// dead worker) plus the worker's last self-reported telemetry.
type FleetWorker struct {
	ID         int    `json:"id"`
	Pid        int    `json:"pid,omitempty"`
	StatusAddr string `json:"status_addr,omitempty"`
	// Alive is false once the worker said goodbye or went silent past
	// the TTL. Dead workers stay in the table with their last snapshot —
	// that is the post-mortem the fleet view exists for.
	Alive              bool  `json:"alive"`
	HeartbeatAgeMillis int64 `json:"heartbeat_age_ms"`
	// LeasesHeld counts leases currently outstanding on this worker;
	// granted/expired are lifetime totals (expired ≤ granted always).
	LeasesHeld    int   `json:"leases_held"`
	LeasesGranted int64 `json:"leases_granted"`
	LeasesExpired int64 `json:"leases_expired"`
	// MapDone/ShuffleDone/ReduceDone count completions the master
	// accepted from this worker (first-completion-wins; late duplicates
	// are not counted).
	MapDone     int64 `json:"map_done"`
	ShuffleDone int64 `json:"shuffle_done"`
	ReduceDone  int64 `json:"reduce_done"`
	// BusyCostUnits sums accepted completions' simulated cost;
	// SkewVsMean is this worker's share against the mean over workers
	// that received any lease — the fleet-level straggler signal.
	BusyCostUnits float64 `json:"busy_cost_units"`
	SkewVsMean    float64 `json:"skew_vs_mean"`
	// Telemetry is the worker's last heartbeat snapshot (nil before the
	// first beat); TelemetryAgeMillis is how stale it is.
	TelemetryAgeMillis int64            `json:"telemetry_age_ms,omitempty"`
	Telemetry          *WorkerTelemetry `json:"telemetry,omitempty"`
}

// FleetSnapshot is the master's point-in-time fleet table, workers in
// registration order.
type FleetSnapshot struct {
	Workers []FleetWorker `json:"workers"`
	Alive   int           `json:"alive"`
	Dead    int           `json:"dead"`
}

// FleetProvider is anything that can snapshot a fleet table — in
// practice the dist master. The live package defines the interface
// (rather than importing the transport) so the dependency points the
// same way as every other Attach: transports feed observability, never
// the reverse.
type FleetProvider interface {
	FleetSnapshot() FleetSnapshot
}

// AttachFleet connects the distributed master whose fleet table the
// /fleet endpoint and run-summary fleet section report.
func (r *Run) AttachFleet(p FleetProvider) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.fleet = p
	r.mu.Unlock()
}

// Fleet returns the attached fleet provider's snapshot (zero when no
// fleet is attached — single-process runs).
func (r *Run) Fleet() FleetSnapshot {
	if r == nil {
		return FleetSnapshot{}
	}
	r.mu.Lock()
	p := r.fleet
	r.mu.Unlock()
	if p == nil {
		return FleetSnapshot{}
	}
	return p.FleetSnapshot()
}
