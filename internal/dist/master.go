package dist

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"os"
	"strings"
	"sync"
	"time"

	"proger/internal/mapreduce"
	"proger/internal/obs"
	"proger/internal/obs/live"
)

// DefaultLeaseTTL is how long a worker may go silent before it is
// declared dead and its leases expire. Heartbeats arrive every TTL/3,
// so one lost beat is tolerated, repeated loss is not.
const DefaultLeaseTTL = 10 * time.Second

// MasterOptions configures a Master.
type MasterOptions struct {
	// Listen is the RPC endpoint: a TCP host:port, or "unix:" followed
	// by a socket path. Use port 0 (or a fresh socket path) and read
	// Addr() for tests and forked single-machine fleets.
	Listen string
	// DataDir is the run-file directory shared with every worker. Empty
	// means the master creates (and on Close removes) a temp dir —
	// suitable only for single-machine fleets.
	DataDir string
	// LeaseTTL overrides DefaultLeaseTTL; tests shrink it to exercise
	// expiry without wall-clock-scale sleeps.
	LeaseTTL time.Duration
	// Metrics receives the mr.dist.* counters, when non-nil.
	Metrics *obs.Registry
	// Log receives worker.register / lease / lease.expire events, when
	// non-nil.
	Log *live.EventLog
}

// Master is the lease-granting side of the distributed transport. It
// implements mapreduce.RemoteTransport: the process that owns it runs
// the deterministic driver as usual, and every task execution the
// task graph requests is leased out to a registered worker process.
type Master struct {
	ln      net.Listener
	dataDir string
	ownData bool
	ttl     time.Duration
	log     *live.EventLog

	cWorkers, cLeases, cExpired, cIn, cOut, cRPC *obs.Counter
	hRPC                                         *obs.Histogram

	tasks     chan *pendingTask
	closed    chan struct{}
	closeOnce sync.Once

	mu         sync.Mutex
	cond       *sync.Cond
	workers    map[int]*workerState
	leases     map[uint64]*leaseEntry
	jobs       map[int]*jobState
	conns      map[net.Conn]struct{}
	nextWorker int
	nextLease  uint64
	nextSeq    int
	waiters    int
	closing    bool
}

// workerState is one worker's row in the fleet ledger. The lease
// fields (granted/expired, per-phase completions, busyCost) are
// attributed by the master itself — authoritative even after the
// worker dies — while tel is whatever the worker last self-reported.
// Workers are never deleted from the map: a dead worker's row, last
// snapshot included, is the post-mortem /fleet exists to serve.
type workerState struct {
	lastBeat   time.Time
	dead       bool
	statusAddr string
	pid        int
	granted    int64
	expired    int64
	mapDone    int64
	shufDone   int64
	redDone    int64
	busyCost   float64
	tel        live.WorkerTelemetry
	telAt      time.Time
	hasTel     bool
}

type leaseEntry struct {
	task   *pendingTask
	worker int
}

type jobState struct {
	spec    mapreduce.RemoteJobSpec
	done    bool
	results *mapreduce.RemoteJobResults
	errMsg  string
}

// pendingTask is one requested task execution making its way through
// the lease queue. ch (capacity 1) receives exactly one outcome:
// the first completion, or lease expiry as mapreduce.ErrTaskLost.
type pendingTask struct {
	seq      int
	phase    string
	task     int
	inputLen int
	ch       chan taskOutcome
}

type taskOutcome struct {
	res *mapreduce.RemoteTaskResult
	err error
}

// rpcMillisBuckets bound the RPC latency histograms. Leases long-poll
// for 250ms, so the tail buckets catch waits, not slow handlers.
var rpcMillisBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// listen resolves the Listen notation shared by master and worker:
// "unix:<path>" or a TCP host:port.
func listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

func dial(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	return net.Dial("tcp", addr)
}

// NewMaster starts listening and serving the lease protocol. The
// returned Master is ready to be set as a Config/Options Transport.
func NewMaster(opts MasterOptions) (*Master, error) {
	ln, err := listen(opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	dataDir, ownData := opts.DataDir, false
	if dataDir == "" {
		dataDir, err = os.MkdirTemp("", "proger-dist-")
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("dist: data dir: %w", err)
		}
		ownData = true
	}
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	m := &Master{
		ln:       ln,
		dataDir:  dataDir,
		ownData:  ownData,
		ttl:      ttl,
		log:      opts.Log,
		cWorkers: opts.Metrics.Counter(mapreduce.CounterDistWorkersRegistered),
		cLeases:  opts.Metrics.Counter(mapreduce.CounterDistLeasesGranted),
		cExpired: opts.Metrics.Counter(mapreduce.CounterDistLeasesExpired),
		cIn:      opts.Metrics.Counter(mapreduce.CounterDistRPCBytesIn),
		cOut:     opts.Metrics.Counter(mapreduce.CounterDistRPCBytesOut),
		cRPC:     opts.Metrics.Counter(mapreduce.CounterDistRPCCalls),
		hRPC:     opts.Metrics.Histogram(mapreduce.HistDistRPCServerMillis, rpcMillisBuckets...),
		tasks:    make(chan *pendingTask, 4096),
		closed:   make(chan struct{}),
		workers:  map[int]*workerState{},
		leases:   map[uint64]*leaseEntry{},
		jobs:     map[int]*jobState{},
		conns:    map[net.Conn]struct{}{},
	}
	m.cond = sync.NewCond(&m.mu)
	srv := rpc.NewServer()
	if err := srv.RegisterName(rpcService, &masterRPC{m}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("dist: register service: %w", err)
	}
	go m.accept(srv)
	go m.expiryScan()
	return m, nil
}

// Addr returns the endpoint workers should connect to, in the same
// notation Listen accepts.
func (m *Master) Addr() string {
	if m.ln.Addr().Network() == "unix" {
		return "unix:" + m.ln.Addr().String()
	}
	return m.ln.Addr().String()
}

// DataDir returns the shared run-file directory.
func (m *Master) DataDir() string { return m.dataDir }

func (m *Master) accept(srv *rpc.Server) {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		cc := &countingConn{Conn: conn, in: m.cIn, out: m.cOut}
		m.mu.Lock()
		if m.closing {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		go func() {
			srv.ServeConn(cc)
			m.mu.Lock()
			delete(m.conns, conn)
			m.mu.Unlock()
			conn.Close()
		}()
	}
}

// expiryScan is the lease reaper: workers silent past the TTL are
// declared dead and their outstanding leases expire, delivering
// ErrTaskLost to the blocked dispatch so the task re-enqueues.
func (m *Master) expiryScan() {
	t := time.NewTicker(m.ttl / 4)
	defer t.Stop()
	for {
		select {
		case <-m.closed:
			return
		case <-t.C:
		}
		now := time.Now()
		var expired []*leaseEntry
		var ids []uint64
		m.mu.Lock()
		for id, ws := range m.workers {
			if ws.dead || now.Sub(ws.lastBeat) <= m.ttl {
				continue
			}
			ws.dead = true
			e, i := m.takeLeasesLocked(id)
			expired = append(expired, e...)
			ids = append(ids, i...)
		}
		m.mu.Unlock()
		m.deliverExpired(expired, ids)
	}
}

// takeLeasesLocked removes every lease held by the given worker and
// returns the entries for delivery, charging the worker's expiry
// tally. Caller holds m.mu.
func (m *Master) takeLeasesLocked(worker int) ([]*leaseEntry, []uint64) {
	var expired []*leaseEntry
	var ids []uint64
	for lid, le := range m.leases {
		if le.worker == worker {
			delete(m.leases, lid)
			expired = append(expired, le)
			ids = append(ids, lid)
		}
	}
	if ws := m.workers[worker]; ws != nil {
		ws.expired += int64(len(expired))
	}
	return expired, ids
}

// deliverExpired surfaces expired leases to their blocked dispatches
// as ErrTaskLost, emitting telemetry per lease.
func (m *Master) deliverExpired(expired []*leaseEntry, ids []uint64) {
	for i, le := range expired {
		m.cExpired.Inc()
		m.log.Emit(live.EventLeaseExpire,
			live.KV("lease", int64(ids[i])), live.KV("worker", le.worker),
			live.KV("job", le.task.seq), live.KV("phase", le.task.phase),
			live.KV("task", le.task.task))
		le.task.ch <- taskOutcome{err: fmt.Errorf("%w: worker %d (lease %d)",
			mapreduce.ErrTaskLost, le.worker, ids[i])}
	}
}

// TransportName implements mapreduce.TaskTransport.
func (m *Master) TransportName() string { return "master" }

// BeginJob implements mapreduce.RemoteTransport: publish the job's
// spec (unblocking worker JobInfo polls) and hand back the dispatch
// handle the driver leases tasks through. The runner is unused on the
// master — this process executes nothing locally.
func (m *Master) BeginJob(spec mapreduce.RemoteJobSpec, _ *mapreduce.RemoteRunner) (mapreduce.RemoteJob, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing {
		return nil, errors.New("dist: master closed")
	}
	m.nextSeq++
	m.jobs[m.nextSeq] = &jobState{spec: spec}
	m.cond.Broadcast()
	return masterJob{m: m, seq: m.nextSeq}, nil
}

type masterJob struct {
	m   *Master
	seq int
}

func (j masterJob) Master() bool { return true }

// RunTask enqueues one task execution and blocks until a worker's
// first completion — or lease expiry, which the mapreduce dispatch
// layer retries by calling RunTask again.
func (j masterJob) RunTask(phase string, task, inputLen int) (*mapreduce.RemoteTaskResult, error) {
	t := &pendingTask{seq: j.seq, phase: phase, task: task, inputLen: inputLen,
		ch: make(chan taskOutcome, 1)}
	select {
	case j.m.tasks <- t:
	case <-j.m.closed:
		return nil, errors.New("dist: master closed")
	}
	out := <-t.ch
	return out.res, out.err
}

// Finish records the job's broadcast (or terminal error), waking
// worker WaitJob polls, then retires the job's run files.
func (j masterJob) Finish(results *mapreduce.RemoteJobResults, runErr error) error {
	j.m.mu.Lock()
	js := j.m.jobs[j.seq]
	js.done = true
	js.results = results
	if runErr != nil {
		js.errMsg = runErr.Error()
	}
	j.m.cond.Broadcast()
	j.m.mu.Unlock()
	return os.RemoveAll(mapreduce.RemoteJobDir(j.m.dataDir, j.seq))
}

func (j masterJob) Wait() (*mapreduce.RemoteJobResults, error) {
	return nil, errors.New("dist: master does not wait for its own broadcast")
}

// Close drains the fleet — it waits (bounded) until every registered
// worker has departed via Goodbye or been declared dead, and until
// in-flight WaitJob calls have been answered, so end-of-job
// broadcasts flush to processes still catching up — then shuts the
// lease queue down and releases the endpoint and any owned data dir.
func (m *Master) Close() error {
	m.mu.Lock()
	m.closing = true
	m.cond.Broadcast()
	m.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.mu.Lock()
		alive := 0
		for _, ws := range m.workers {
			if !ws.dead {
				alive++
			}
		}
		n := m.waiters
		m.mu.Unlock()
		if (alive == 0 && n == 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.closeOnce.Do(func() { close(m.closed) })
	// Give in-flight shutdown replies a beat to flush before cutting
	// connections.
	time.Sleep(50 * time.Millisecond)
	err := m.ln.Close()
	m.mu.Lock()
	for c := range m.conns {
		c.Close()
	}
	m.mu.Unlock()
	if m.ownData {
		os.RemoveAll(m.dataDir)
	}
	return err
}

// masterRPC is the net/rpc-exported method set.
type masterRPC struct {
	m *Master
}

// timed feeds the server-side RPC instruments; every handler defers
// it with its entry time.
func (r *masterRPC) timed(t0 time.Time) {
	r.m.cRPC.Inc()
	r.m.hRPC.Observe(float64(time.Since(t0).Milliseconds()))
}

// recordTelemetryLocked stores a worker's self-reported snapshot.
// Caller holds m.mu. Dead workers' snapshots are recorded too — a
// straggling beat from an expired worker still improves its
// post-mortem row.
func (m *Master) recordTelemetryLocked(ws *workerState, tel live.WorkerTelemetry) {
	ws.tel = tel
	ws.telAt = time.Now()
	ws.hasTel = true
}

// forward merges a worker's relayed event lines into the master's
// log under its process identity.
func (m *Master) forward(worker int, events []string) {
	if len(events) == 0 {
		return
	}
	m.log.EmitForwarded(fmt.Sprintf("w%d", worker), events)
}

// Register adds a worker process to the fleet.
func (r *masterRPC) Register(args *RegisterArgs, reply *RegisterReply) error {
	defer r.timed(time.Now())
	m := r.m
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return errors.New("dist: master closed")
	}
	m.nextWorker++
	id := m.nextWorker
	m.workers[id] = &workerState{lastBeat: time.Now(),
		statusAddr: args.StatusAddr, pid: args.Pid}
	m.mu.Unlock()
	m.cWorkers.Inc()
	m.log.Emit(live.EventWorkerRegister, live.KV("worker", id))
	reply.WorkerID = id
	reply.TTLMillis = m.ttl.Milliseconds()
	reply.DataDir = m.dataDir
	reply.WantEvents = m.log != nil
	return nil
}

// Heartbeat refreshes a worker's liveness and records the telemetry
// snapshot and relayed events it carries. A worker already declared
// dead still gets its observability payload recorded — the error just
// tells it to stop working.
func (r *masterRPC) Heartbeat(args *HeartbeatArgs, _ *HeartbeatReply) error {
	defer r.timed(time.Now())
	m := r.m
	m.mu.Lock()
	ws := m.workers[args.WorkerID]
	if ws == nil {
		m.mu.Unlock()
		return fmt.Errorf("dist: unknown worker %d", args.WorkerID)
	}
	m.recordTelemetryLocked(ws, args.Telemetry)
	dead := ws.dead
	if !dead {
		ws.lastBeat = time.Now()
	}
	m.mu.Unlock()
	m.forward(args.WorkerID, args.Events)
	if dead {
		return fmt.Errorf("dist: unknown or expired worker %d", args.WorkerID)
	}
	return nil
}

// Goodbye marks an orderly departure: the worker no longer counts
// toward the shutdown drain, and any leases it somehow still holds
// expire immediately rather than waiting out the TTL. The final
// telemetry snapshot and event batch it carries complete the
// worker's fleet row.
func (r *masterRPC) Goodbye(args *GoodbyeArgs, _ *GoodbyeReply) error {
	defer r.timed(time.Now())
	m := r.m
	m.mu.Lock()
	var expired []*leaseEntry
	var ids []uint64
	if ws := m.workers[args.WorkerID]; ws != nil {
		m.recordTelemetryLocked(ws, args.Telemetry)
		if !ws.dead {
			ws.dead = true
			expired, ids = m.takeLeasesLocked(args.WorkerID)
		}
	}
	m.mu.Unlock()
	m.forward(args.WorkerID, args.Events)
	m.deliverExpired(expired, ids)
	return nil
}

// Lease long-polls for the next task. A worker declared dead gets an
// error and must stop (its completions would be discarded anyway).
func (r *masterRPC) Lease(args *LeaseArgs, reply *LeaseReply) error {
	defer r.timed(time.Now())
	m := r.m
	poll := time.NewTimer(250 * time.Millisecond)
	defer poll.Stop()
	select {
	case t := <-m.tasks:
		m.mu.Lock()
		ws := m.workers[args.WorkerID]
		if ws == nil || ws.dead {
			m.mu.Unlock()
			m.requeue(t)
			return fmt.Errorf("dist: unknown or expired worker %d", args.WorkerID)
		}
		ws.lastBeat = time.Now()
		ws.granted++
		m.nextLease++
		id := m.nextLease
		m.leases[id] = &leaseEntry{task: t, worker: args.WorkerID}
		m.mu.Unlock()
		m.cLeases.Inc()
		m.log.Emit(live.EventLease,
			live.KV("lease", int64(id)), live.KV("worker", args.WorkerID),
			live.KV("job", t.seq), live.KV("phase", t.phase), live.KV("task", t.task))
		reply.Kind = LeaseTask
		reply.Lease = TaskLease{LeaseID: id, JobSeq: t.seq, Phase: t.phase,
			Task: t.task, InputLen: t.inputLen}
		return nil
	case <-poll.C:
		reply.Kind = LeaseWait
		return nil
	case <-m.closed:
		reply.Kind = LeaseShutdown
		return nil
	}
}

func (m *Master) requeue(t *pendingTask) {
	select {
	case m.tasks <- t:
	default:
		// Queue full (cannot happen in practice: capacity exceeds any
		// job's task count) — fail the dispatch rather than deadlock.
		t.ch <- taskOutcome{err: errors.New("dist: lease queue overflow")}
	}
}

// Complete reports a leased execution's outcome. First completion
// wins: an expired (re-leased) lease's late completion is discarded.
// An accepted completion is attributed to the lease's worker — in the
// fleet ledger, and on the result itself (Result.Worker), so every
// process's live task table can show who ran what.
func (r *masterRPC) Complete(args *CompleteArgs, _ *CompleteReply) error {
	defer r.timed(time.Now())
	m := r.m
	m.mu.Lock()
	le, ok := m.leases[args.LeaseID]
	if ok {
		delete(m.leases, args.LeaseID)
	}
	if ws := m.workers[args.WorkerID]; ws != nil && !ws.dead {
		ws.lastBeat = time.Now()
	}
	if ok && args.Err == "" && args.Result != nil {
		args.Result.Worker = le.worker
		if ws := m.workers[le.worker]; ws != nil {
			switch le.task.phase {
			case mapreduce.RemotePhaseMap:
				ws.mapDone++
			case mapreduce.RemotePhaseShuffle:
				ws.shufDone++
			case mapreduce.RemotePhaseReduce:
				ws.redDone++
			}
			ws.busyCost += float64(args.Result.Cost)
		}
	}
	m.mu.Unlock()
	if !ok {
		return nil
	}
	switch {
	case args.Err != "":
		le.task.ch <- taskOutcome{err: errors.New(args.Err)}
	case args.Result == nil:
		le.task.ch <- taskOutcome{err: fmt.Errorf("dist: lease %d completed without a result", args.LeaseID)}
	default:
		le.task.ch <- taskOutcome{res: args.Result}
	}
	return nil
}

// JobInfo blocks until the master's driver begins job Seq, then
// returns its spec.
func (r *masterRPC) JobInfo(args *JobInfoArgs, reply *JobInfoReply) error {
	defer r.timed(time.Now())
	m := r.m
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.jobs[args.Seq] == nil && !m.closing {
		m.cond.Wait()
	}
	js := m.jobs[args.Seq]
	if js == nil {
		return fmt.Errorf("dist: master closed before job %d began", args.Seq)
	}
	reply.Spec = js.spec
	return nil
}

// WaitJob blocks until job Seq finishes, then returns the master's
// end-of-job broadcast (or the job's terminal error).
func (r *masterRPC) WaitJob(args *WaitJobArgs, reply *WaitJobReply) error {
	defer r.timed(time.Now())
	m := r.m
	m.mu.Lock()
	m.waiters++
	for (m.jobs[args.Seq] == nil || !m.jobs[args.Seq].done) && !m.closing {
		m.cond.Wait()
	}
	js := m.jobs[args.Seq]
	m.waiters--
	m.mu.Unlock()
	if js == nil || !js.done {
		return fmt.Errorf("dist: master closed before job %d finished", args.Seq)
	}
	if js.errMsg != "" {
		reply.Err = js.errMsg
		return nil
	}
	reply.Results = *js.results
	return nil
}

// FleetSnapshot assembles the master's fleet table: every worker
// ever registered (dead ones included, with their last telemetry),
// the master's own lease attribution, and a skew-vs-mean signal over
// busy cost. Implements live.FleetProvider for the /fleet endpoint
// and the run-summary fleet section.
func (m *Master) FleetSnapshot() live.FleetSnapshot {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()

	held := map[int]int{}
	for _, le := range m.leases {
		held[le.worker]++
	}
	var costSum float64
	var costN int
	for _, ws := range m.workers {
		if ws.granted > 0 {
			costSum += ws.busyCost
			costN++
		}
	}
	mean := 0.0
	if costN > 0 {
		mean = costSum / float64(costN)
	}

	var fs live.FleetSnapshot
	for id := 1; id <= m.nextWorker; id++ {
		ws := m.workers[id]
		if ws == nil {
			continue
		}
		fw := live.FleetWorker{
			ID:                 id,
			Pid:                ws.pid,
			StatusAddr:         ws.statusAddr,
			Alive:              !ws.dead,
			HeartbeatAgeMillis: now.Sub(ws.lastBeat).Milliseconds(),
			LeasesHeld:         held[id],
			LeasesGranted:      ws.granted,
			LeasesExpired:      ws.expired,
			MapDone:            ws.mapDone,
			ShuffleDone:        ws.shufDone,
			ReduceDone:         ws.redDone,
			BusyCostUnits:      ws.busyCost,
		}
		if mean > 0 {
			fw.SkewVsMean = ws.busyCost / mean
		}
		if ws.hasTel {
			tel := ws.tel
			fw.Telemetry = &tel
			fw.TelemetryAgeMillis = now.Sub(ws.telAt).Milliseconds()
		}
		if fw.Alive {
			fs.Alive++
		} else {
			fs.Dead++
		}
		fs.Workers = append(fs.Workers, fw)
	}
	return fs
}

// countingConn feeds the RPC byte counters from the raw stream.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}
