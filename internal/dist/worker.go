package dist

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"proger/internal/mapreduce"
	"proger/internal/membudget"
	"proger/internal/obs"
	"proger/internal/obs/live"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Connect is the master endpoint, in the Listen notation.
	Connect string
	// Parallel is how many leases this process executes concurrently
	// (default GOMAXPROCS).
	Parallel int
	// OnLease, when non-nil, observes every lease granted to this
	// worker (called with the running count, before execution). The
	// fault-injection harness uses it to kill a worker process after
	// taking — and never completing — its Nth lease.
	OnLease func(n int)
	// Relay, when non-nil, is this process's relay event log
	// (live.NewRelayEventLog): lines it buffers are drained and shipped
	// to the master with each heartbeat, for the merged multi-process
	// event file. If the master keeps no event log, drained lines are
	// discarded locally.
	Relay *live.EventLog
	// Metrics, when non-nil, receives this process's mr.dist.* worker
	// instruments (RPC bytes/calls/latency, lease waits, run-file
	// bytes); its counter values also feed the telemetry snapshot
	// piggybacked on heartbeats.
	Metrics *obs.Registry
	// StatusAddr is this worker's own status-server address, reported
	// at registration so the master's /fleet can link to it. Empty when
	// the worker runs without a status server.
	StatusAddr string
	// Budget, when non-nil, is the process's memory-budget manager;
	// its pressure snapshot rides along in heartbeat telemetry.
	Budget *membudget.Manager
}

// Worker is the lease-executing side of the distributed transport. It
// implements mapreduce.RemoteTransport: the process that owns it runs
// the same deterministic driver as the master, executes whatever
// leases the master grants (through its pump goroutines), and fills
// each job's outputs from the master's end-of-job broadcast.
type Worker struct {
	client  *rpc.Client
	conn    net.Conn
	id      int
	ttl     time.Duration
	dataDir string
	onLease func(n int)

	relay      *live.EventLog
	budget     *membudget.Manager
	wantEvents bool

	cIn, cOut, cRPC, cRunR, cRunW *obs.Counter
	hRPC, hWait                   *obs.Histogram

	leaseCount atomic.Int64

	// sendMu serializes heartbeat/goodbye sends so relay batches leave
	// in drain order — the per-process seq in the merged log must land
	// monotonically.
	sendMu sync.Mutex

	// tmu guards the telemetry tallies the pump goroutines accumulate.
	tmu      sync.Mutex
	mapDone  int64
	shufDone int64
	redDone  int64
	busyCost float64
	busyMs   int64
	idleMs   int64
	waits    int64
	waitMs   int64

	mu      sync.Mutex
	cond    *sync.Cond
	runners map[int]*mapreduce.RemoteRunner
	nextSeq int
	closed  bool
}

// NewWorker connects to the master, registers, and starts heartbeats
// plus the lease pump goroutines. The returned Worker is ready to be
// set as a Config/Options Transport.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	conn, err := dial(opts.Connect)
	if err != nil {
		return nil, fmt.Errorf("dist: connect: %w", err)
	}
	cIn := opts.Metrics.Counter(mapreduce.CounterDistRPCBytesIn)
	cOut := opts.Metrics.Counter(mapreduce.CounterDistRPCBytesOut)
	client := rpc.NewClient(&countingConn{Conn: conn, in: cIn, out: cOut})
	w := &Worker{
		client:  client,
		conn:    conn,
		onLease: opts.OnLease,
		relay:   opts.Relay,
		budget:  opts.Budget,
		cIn:     cIn,
		cOut:    cOut,
		cRPC:    opts.Metrics.Counter(mapreduce.CounterDistRPCCalls),
		cRunR:   opts.Metrics.Counter(mapreduce.CounterDistRunBytesRead),
		cRunW:   opts.Metrics.Counter(mapreduce.CounterDistRunBytesWritten),
		hRPC:    opts.Metrics.Histogram(mapreduce.HistDistRPCClientMillis, rpcMillisBuckets...),
		hWait:   opts.Metrics.Histogram(mapreduce.HistDistLeaseWaitMillis, rpcMillisBuckets...),
		runners: map[int]*mapreduce.RemoteRunner{},
	}
	var reg RegisterReply
	if err := w.call("Register", &RegisterArgs{StatusAddr: opts.StatusAddr, Pid: os.Getpid()}, &reg); err != nil {
		client.Close()
		return nil, fmt.Errorf("dist: register: %w", err)
	}
	w.id = reg.WorkerID
	w.ttl = time.Duration(reg.TTLMillis) * time.Millisecond
	w.dataDir = reg.DataDir
	w.wantEvents = reg.WantEvents
	w.cond = sync.NewCond(&w.mu)
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	go w.heartbeat()
	for i := 0; i < parallel; i++ {
		go w.pump()
	}
	return w, nil
}

// ID returns the master-assigned worker identity.
func (w *Worker) ID() int { return w.id }

// call is the instrumented RPC round-trip every worker-side call goes
// through.
func (w *Worker) call(method string, args, reply any) error {
	t0 := time.Now()
	err := w.client.Call(rpcService+"."+method, args, reply)
	w.cRPC.Inc()
	w.hRPC.Observe(float64(time.Since(t0).Milliseconds()))
	return err
}

// drainEvents takes the relay buffer for shipping. When the master
// keeps no event log the lines are discarded here — draining anyway
// keeps the buffer (and its drop counter) from filling for nothing.
func (w *Worker) drainEvents() []string {
	lines := w.relay.Drain()
	if !w.wantEvents {
		return nil
	}
	return lines
}

// telemetry assembles this process's current self-report.
func (w *Worker) telemetry() live.WorkerTelemetry {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.tmu.Lock()
	tel := live.WorkerTelemetry{
		MapTasks:        w.mapDone,
		ShuffleTasks:    w.shufDone,
		ReduceTasks:     w.redDone,
		BusyCostUnits:   w.busyCost,
		BusyMillis:      w.busyMs,
		IdleMillis:      w.idleMs,
		LeaseWaits:      w.waits,
		LeaseWaitMillis: w.waitMs,
	}
	w.tmu.Unlock()
	tel.RunBytesRead = w.cRunR.Value()
	tel.RunBytesWritten = w.cRunW.Value()
	tel.RPCBytesIn = w.cIn.Value()
	tel.RPCBytesOut = w.cOut.Value()
	tel.EventsDropped = w.relay.Dropped()
	tel.HeapBytes = ms.HeapAlloc
	tel.Goroutines = runtime.NumGoroutine()
	tel.MemBudget = w.budget.Snapshot()
	return tel
}

// beat sends one heartbeat carrying the telemetry snapshot and the
// relay lines buffered since the last one.
func (w *Worker) beat() error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	args := &HeartbeatArgs{WorkerID: w.id, Telemetry: w.telemetry(), Events: w.drainEvents()}
	return w.call("Heartbeat", args, &HeartbeatReply{})
}

func (w *Worker) heartbeat() {
	t := time.NewTicker(w.ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-w.relay.FlushC():
			// The relay buffer passed half capacity — flush early rather
			// than risk drops before the next scheduled beat.
		}
		if w.isClosed() {
			return
		}
		if err := w.beat(); err != nil {
			return
		}
	}
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// pump pulls leases and executes them until shutdown. Errors on the
// RPC stream (master gone, connection cut) end the pump quietly — the
// driver's blocking WaitJob call surfaces the failure.
func (w *Worker) pump() {
	for {
		waitStart := time.Now()
		var rep LeaseReply
	poll:
		for {
			// Reset before every call: gob leaves fields that are
			// absent from the wire untouched, and a LeaseTask grant
			// encodes Kind as absent (it is the zero value) — reusing
			// the reply after a LeaseWait would misread the grant as
			// another wait and silently orphan the lease.
			rep = LeaseReply{}
			if err := w.call("Lease", &LeaseArgs{WorkerID: w.id}, &rep); err != nil {
				return
			}
			switch rep.Kind {
			case LeaseWait:
				continue
			case LeaseShutdown:
				return
			case LeaseTask:
				break poll
			}
		}
		waitMs := time.Since(waitStart).Milliseconds()
		w.hWait.Observe(float64(waitMs))
		w.tmu.Lock()
		w.waits++
		w.waitMs += waitMs
		w.idleMs += waitMs
		w.tmu.Unlock()
		lease := rep.Lease
		if w.onLease != nil {
			w.onLease(int(w.leaseCount.Add(1)))
		}
		runner := w.runnerFor(lease.JobSeq)
		if runner == nil {
			return // closed before the driver reached this job
		}
		busyStart := time.Now()
		res, err := runner.RunTask(lease.Phase, lease.Task, lease.InputLen)
		w.tmu.Lock()
		w.busyMs += time.Since(busyStart).Milliseconds()
		if err == nil && res != nil {
			switch lease.Phase {
			case mapreduce.RemotePhaseMap:
				w.mapDone++
			case mapreduce.RemotePhaseShuffle:
				w.shufDone++
			case mapreduce.RemotePhaseReduce:
				w.redDone++
			}
			w.busyCost += float64(res.Cost)
		}
		w.tmu.Unlock()
		args := &CompleteArgs{WorkerID: w.id, LeaseID: lease.LeaseID, Result: res}
		if err != nil {
			args.Result, args.Err = nil, err.Error()
		}
		if err := w.call("Complete", args, &CompleteReply{}); err != nil {
			return
		}
	}
}

// runnerFor blocks until the local driver has begun the leased job
// (the master's driver is typically a step ahead of the fleet's).
func (w *Worker) runnerFor(seq int) *mapreduce.RemoteRunner {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.runners[seq] == nil && !w.closed {
		w.cond.Wait()
	}
	return w.runners[seq]
}

// TransportName implements mapreduce.TaskTransport.
func (w *Worker) TransportName() string { return "worker" }

// BeginJob implements mapreduce.RemoteTransport: fetch the master's
// spec for the next job in the chain, cross-check it against this
// process's own derivation (lockstep replay is unsound if the fleet's
// resolution flags diverge), bind the runner to the shared data dir,
// and expose it to the lease pumps.
func (w *Worker) BeginJob(spec mapreduce.RemoteJobSpec, runner *mapreduce.RemoteRunner) (mapreduce.RemoteJob, error) {
	w.mu.Lock()
	w.nextSeq++
	seq := w.nextSeq
	w.mu.Unlock()
	var rep JobInfoReply
	if err := w.call("JobInfo", &JobInfoArgs{Seq: seq}, &rep); err != nil {
		return nil, fmt.Errorf("dist: job %d info: %w", seq, err)
	}
	ms := rep.Spec
	if ms.Name != spec.Name || ms.NumMapTasks != spec.NumMapTasks || ms.NumReduceTasks != spec.NumReduceTasks {
		return nil, fmt.Errorf("dist: job %d diverged: master runs %s (%d map/%d reduce), this worker derived %s (%d map/%d reduce) — master and workers must share all resolution flags",
			seq, ms.Name, ms.NumMapTasks, ms.NumReduceTasks, spec.Name, spec.NumMapTasks, spec.NumReduceTasks)
	}
	runner.Configure(w.dataDir, seq, w.id, ms.Tracing, ms.Quality)
	w.mu.Lock()
	w.runners[seq] = runner
	w.cond.Broadcast()
	w.mu.Unlock()
	return workerJob{w: w, seq: seq}, nil
}

type workerJob struct {
	w   *Worker
	seq int
}

func (j workerJob) Master() bool { return false }

func (j workerJob) RunTask(string, int, int) (*mapreduce.RemoteTaskResult, error) {
	return nil, errors.New("dist: workers do not dispatch tasks")
}

func (j workerJob) Finish(*mapreduce.RemoteJobResults, error) error { return nil }

// Wait blocks until the master broadcasts the job's committed results
// (or its terminal error).
func (j workerJob) Wait() (*mapreduce.RemoteJobResults, error) {
	var rep WaitJobReply
	if err := j.w.call("WaitJob", &WaitJobArgs{Seq: j.seq}, &rep); err != nil {
		return nil, fmt.Errorf("dist: job %d wait: %w", j.seq, err)
	}
	if rep.Err != "" {
		return nil, fmt.Errorf("dist: job %d failed on master: %s", j.seq, rep.Err)
	}
	res := rep.Results
	return &res, nil
}

// Close announces an orderly departure to the master (so its shutdown
// drain stops counting this worker) and disconnects; pumps and
// heartbeats wind down on their next RPC. The goodbye carries the
// final telemetry snapshot and the last relay event lines — an
// orderly departure leaves a complete fleet row behind.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	// Best effort: a master already gone cannot be said goodbye to.
	// sendMu is held across the call so a racing heartbeat cannot ship
	// newer relay lines ahead of the goodbye's batch.
	w.sendMu.Lock()
	args := &GoodbyeArgs{WorkerID: w.id, Telemetry: w.telemetry(), Events: w.drainEvents()}
	w.call("Goodbye", args, &GoodbyeReply{})
	w.sendMu.Unlock()
	return w.client.Close()
}

// Kill cuts the raw connection without any goodbye — the harness's
// stand-in for a worker process dying abruptly. The master notices
// through heartbeat loss and expires the worker's leases.
func (w *Worker) Kill() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.conn.Close()
}
