package dist

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"proger/internal/mapreduce"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Connect is the master endpoint, in the Listen notation.
	Connect string
	// Parallel is how many leases this process executes concurrently
	// (default GOMAXPROCS).
	Parallel int
	// OnLease, when non-nil, observes every lease granted to this
	// worker (called with the running count, before execution). The
	// fault-injection harness uses it to kill a worker process after
	// taking — and never completing — its Nth lease.
	OnLease func(n int)
}

// Worker is the lease-executing side of the distributed transport. It
// implements mapreduce.RemoteTransport: the process that owns it runs
// the same deterministic driver as the master, executes whatever
// leases the master grants (through its pump goroutines), and fills
// each job's outputs from the master's end-of-job broadcast.
type Worker struct {
	client  *rpc.Client
	conn    net.Conn
	id      int
	ttl     time.Duration
	dataDir string
	onLease func(n int)

	leaseCount atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	runners map[int]*mapreduce.RemoteRunner
	nextSeq int
	closed  bool
}

// NewWorker connects to the master, registers, and starts heartbeats
// plus the lease pump goroutines. The returned Worker is ready to be
// set as a Config/Options Transport.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	conn, err := dial(opts.Connect)
	if err != nil {
		return nil, fmt.Errorf("dist: connect: %w", err)
	}
	client := rpc.NewClient(conn)
	var reg RegisterReply
	if err := client.Call(rpcService+".Register", &RegisterArgs{}, &reg); err != nil {
		client.Close()
		return nil, fmt.Errorf("dist: register: %w", err)
	}
	w := &Worker{
		client:  client,
		conn:    conn,
		id:      reg.WorkerID,
		ttl:     time.Duration(reg.TTLMillis) * time.Millisecond,
		dataDir: reg.DataDir,
		onLease: opts.OnLease,
		runners: map[int]*mapreduce.RemoteRunner{},
	}
	w.cond = sync.NewCond(&w.mu)
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	go w.heartbeat()
	for i := 0; i < parallel; i++ {
		go w.pump()
	}
	return w, nil
}

// ID returns the master-assigned worker identity.
func (w *Worker) ID() int { return w.id }

func (w *Worker) heartbeat() {
	t := time.NewTicker(w.ttl / 3)
	defer t.Stop()
	for range t.C {
		if w.isClosed() {
			return
		}
		if err := w.client.Call(rpcService+".Heartbeat",
			&HeartbeatArgs{WorkerID: w.id}, &HeartbeatReply{}); err != nil {
			return
		}
	}
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// pump pulls leases and executes them until shutdown. Errors on the
// RPC stream (master gone, connection cut) end the pump quietly — the
// driver's blocking WaitJob call surfaces the failure.
func (w *Worker) pump() {
	for {
		var rep LeaseReply
		if err := w.client.Call(rpcService+".Lease", &LeaseArgs{WorkerID: w.id}, &rep); err != nil {
			return
		}
		switch rep.Kind {
		case LeaseWait:
			continue
		case LeaseShutdown:
			return
		}
		lease := rep.Lease
		if w.onLease != nil {
			w.onLease(int(w.leaseCount.Add(1)))
		}
		runner := w.runnerFor(lease.JobSeq)
		if runner == nil {
			return // closed before the driver reached this job
		}
		res, err := runner.RunTask(lease.Phase, lease.Task, lease.InputLen)
		args := &CompleteArgs{WorkerID: w.id, LeaseID: lease.LeaseID, Result: res}
		if err != nil {
			args.Result, args.Err = nil, err.Error()
		}
		if err := w.client.Call(rpcService+".Complete", args, &CompleteReply{}); err != nil {
			return
		}
	}
}

// runnerFor blocks until the local driver has begun the leased job
// (the master's driver is typically a step ahead of the fleet's).
func (w *Worker) runnerFor(seq int) *mapreduce.RemoteRunner {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.runners[seq] == nil && !w.closed {
		w.cond.Wait()
	}
	return w.runners[seq]
}

// TransportName implements mapreduce.TaskTransport.
func (w *Worker) TransportName() string { return "worker" }

// BeginJob implements mapreduce.RemoteTransport: fetch the master's
// spec for the next job in the chain, cross-check it against this
// process's own derivation (lockstep replay is unsound if the fleet's
// resolution flags diverge), bind the runner to the shared data dir,
// and expose it to the lease pumps.
func (w *Worker) BeginJob(spec mapreduce.RemoteJobSpec, runner *mapreduce.RemoteRunner) (mapreduce.RemoteJob, error) {
	w.mu.Lock()
	w.nextSeq++
	seq := w.nextSeq
	w.mu.Unlock()
	var rep JobInfoReply
	if err := w.client.Call(rpcService+".JobInfo", &JobInfoArgs{Seq: seq}, &rep); err != nil {
		return nil, fmt.Errorf("dist: job %d info: %w", seq, err)
	}
	ms := rep.Spec
	if ms.Name != spec.Name || ms.NumMapTasks != spec.NumMapTasks || ms.NumReduceTasks != spec.NumReduceTasks {
		return nil, fmt.Errorf("dist: job %d diverged: master runs %s (%d map/%d reduce), this worker derived %s (%d map/%d reduce) — master and workers must share all resolution flags",
			seq, ms.Name, ms.NumMapTasks, ms.NumReduceTasks, spec.Name, spec.NumMapTasks, spec.NumReduceTasks)
	}
	runner.Configure(w.dataDir, seq, ms.Tracing, ms.Quality)
	w.mu.Lock()
	w.runners[seq] = runner
	w.cond.Broadcast()
	w.mu.Unlock()
	return workerJob{w: w, seq: seq}, nil
}

type workerJob struct {
	w   *Worker
	seq int
}

func (j workerJob) Master() bool { return false }

func (j workerJob) RunTask(string, int, int) (*mapreduce.RemoteTaskResult, error) {
	return nil, errors.New("dist: workers do not dispatch tasks")
}

func (j workerJob) Finish(*mapreduce.RemoteJobResults, error) error { return nil }

// Wait blocks until the master broadcasts the job's committed results
// (or its terminal error).
func (j workerJob) Wait() (*mapreduce.RemoteJobResults, error) {
	var rep WaitJobReply
	if err := j.w.client.Call(rpcService+".WaitJob", &WaitJobArgs{Seq: j.seq}, &rep); err != nil {
		return nil, fmt.Errorf("dist: job %d wait: %w", j.seq, err)
	}
	if rep.Err != "" {
		return nil, fmt.Errorf("dist: job %d failed on master: %s", j.seq, rep.Err)
	}
	res := rep.Results
	return &res, nil
}

// Close announces an orderly departure to the master (so its shutdown
// drain stops counting this worker) and disconnects; pumps and
// heartbeats wind down on their next RPC.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	// Best effort: a master already gone cannot be said goodbye to.
	w.client.Call(rpcService+".Goodbye", &GoodbyeArgs{WorkerID: w.id}, &GoodbyeReply{})
	return w.client.Close()
}

// Kill cuts the raw connection without any goodbye — the harness's
// stand-in for a worker process dying abruptly. The master notices
// through heartbeat loss and expires the worker's leases.
func (w *Worker) Kill() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.conn.Close()
}
