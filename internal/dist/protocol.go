// Package dist is the multi-process execution transport: a master
// process drives the deterministic task graph and leases task
// executions to worker processes over net/rpc (stdlib, gob encoding,
// TCP or unix sockets). Every process runs the same driver with the
// same resolution-affecting flags — the lockstep-replay contract of
// mapreduce.RemoteTransport — so the wire carries only task identity,
// result metadata, and the master's end-of-job broadcast; bulk
// intermediate data moves through run files on a shared directory.
//
// Fault model: workers heartbeat; a worker silent for a full lease
// TTL is declared dead and its outstanding leases expire. Expiry
// surfaces to the master's dispatch loop as mapreduce.ErrTaskLost,
// which re-enqueues the task below the simulated attempt runtime —
// host chaos never touches the simulated timeline, so Result, trace,
// and quality bytes stay identical to a single-process run even when
// workers die mid-run.
package dist

import (
	"encoding/gob"

	"proger/internal/mapreduce"
	"proger/internal/obs/live"
)

// rpcService is the name the master's method set registers under.
const rpcService = "Dist"

// Lease reply kinds.
const (
	// LeaseTask grants the lease in LeaseReply.Lease.
	LeaseTask = iota
	// LeaseWait means no task was available within the long-poll
	// window; the worker should ask again.
	LeaseWait
	// LeaseShutdown means the master is done; the worker should stop
	// pulling work.
	LeaseShutdown
)

// TaskLease is one granted task execution: which task of which job,
// under which lease identity. InputLen is the task's input record
// count (a reduce task's merged-run length; advisory elsewhere).
type TaskLease struct {
	LeaseID  uint64
	JobSeq   int
	Phase    string
	Task     int
	InputLen int
}

// RegisterArgs/RegisterReply: a worker process joins the fleet. The
// worker self-describes for the fleet table: its OS pid and, when it
// runs its own status server, that server's listen address (both
// observability-only — the master never dials StatusAddr itself, it
// just republishes it on /fleet).
type RegisterArgs struct {
	StatusAddr string
	Pid        int
}

// RegisterReply is Register's response: the worker's assigned
// identity, the heartbeat/lease TTL in milliseconds, and the shared
// run-file directory. WantEvents tells the worker whether the master
// keeps an event log — when false the worker discards its relay
// buffer locally instead of shipping lines nobody will write.
type RegisterReply struct {
	WorkerID   int
	TTLMillis  int64
	DataDir    string
	WantEvents bool
}

// HeartbeatArgs keeps a worker's lease alive. Each beat piggybacks
// the worker's current telemetry snapshot and, when the master wants
// them, the relay event lines buffered since the last beat. Both are
// observability payloads: the lease ledger ignores them entirely.
type HeartbeatArgs struct {
	WorkerID  int
	Telemetry live.WorkerTelemetry
	Events    []string
}

// HeartbeatReply is empty.
type HeartbeatReply struct{}

// LeaseArgs asks for the next task (long-poll).
type LeaseArgs struct {
	WorkerID int
}

// LeaseReply carries the poll outcome.
type LeaseReply struct {
	Kind  int
	Lease TaskLease
}

// CompleteArgs reports a leased task's outcome: the wire-form result,
// or the task body's error string. A completion whose lease has
// already expired is discarded by the master — first completion wins.
type CompleteArgs struct {
	WorkerID int
	LeaseID  uint64
	Result   *mapreduce.RemoteTaskResult
	Err      string
}

// CompleteReply is empty.
type CompleteReply struct{}

// GoodbyeArgs announces an orderly departure: the worker's driver has
// finished and no further leases or waits will come from it. The
// master stops counting the worker toward its shutdown drain. Leases
// the worker still holds (there should be none) expire immediately.
// The goodbye carries the worker's final telemetry snapshot and the
// last relay event lines, so an orderly shutdown loses nothing.
type GoodbyeArgs struct {
	WorkerID  int
	Telemetry live.WorkerTelemetry
	Events    []string
}

// GoodbyeReply is empty.
type GoodbyeReply struct{}

// JobInfoArgs asks (blocking) for job Seq's spec, available once the
// master's driver has begun that job. Workers cross-check it against
// their own derived spec before executing any of its leases.
type JobInfoArgs struct {
	Seq int
}

// JobInfoReply carries the master's job spec.
type JobInfoReply struct {
	Spec mapreduce.RemoteJobSpec
}

// WaitJobArgs asks (blocking) for job Seq's end-of-job broadcast.
type WaitJobArgs struct {
	Seq int
}

// WaitJobReply carries every committed task result — or the job's
// terminal error — so the worker's lockstep driver can proceed.
type WaitJobReply struct {
	Results mapreduce.RemoteJobResults
	Err     string
}

func init() {
	// obs.Span arguments are typed `any`; gob needs the concrete types
	// that actually flow through span args registered up front.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
}
