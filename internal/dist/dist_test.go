package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"testing"
	"time"

	"proger"
	"proger/internal/mapreduce"
	"proger/internal/obs"
	"proger/internal/obs/live"
)

// fleet spins up a master plus in-process workers, runs the full
// pipeline through every process's driver (the lockstep contract), and
// returns the master's artifacts.
type fleet struct {
	t          *testing.T
	master     *Master
	reg        *obs.Registry
	masterLive *live.Run
	workers    []*Worker
	wg         sync.WaitGroup
	mu         sync.Mutex
	werrs      []error
}

func newFleet(t *testing.T, ttl time.Duration) *fleet {
	return newFleetOpts(t, MasterOptions{LeaseTTL: ttl})
}

// newFleetOpts is newFleet with the full MasterOptions surface exposed
// (the observability tests attach an event log). Listen and Metrics
// default when unset.
func newFleetOpts(t *testing.T, mo MasterOptions) *fleet {
	t.Helper()
	if mo.Listen == "" {
		mo.Listen = "127.0.0.1:0"
	}
	if mo.Metrics == nil {
		mo.Metrics = obs.NewRegistry()
	}
	m, err := NewMaster(mo)
	if err != nil {
		t.Fatal(err)
	}
	return &fleet{t: t, master: m, reg: mo.Metrics}
}

func baseOptions(faultRate float64) proger.Options {
	opts := proger.Options{
		Machines:        2,
		SlotsPerMachine: 2,
		Policy:          proger.CiteSeerXPolicy(),
		Workers:         2,
	}
	if faultRate > 0 {
		opts.Faults = proger.NewSeededFaults(11, faultRate)
		opts.Retry = proger.RetryPolicy{MaxRetries: 3, Speculation: true}
	}
	return opts
}

func fillDataset(ds *proger.Dataset, opts *proger.Options) {
	opts.Families = proger.CiteSeerXFamilies(ds.Schema)
	opts.Matcher = proger.MustMatcher(0.75,
		proger.Rule{Attr: ds.Schema.Index("title"), Weight: 0.6, Kind: proger.EditDistance},
		proger.Rule{Attr: ds.Schema.Index("venue"), Weight: 0.4, Kind: proger.EditDistance},
	)
	opts.Mechanism = proger.SN
}

// addWorker starts one worker process-equivalent: a Worker transport
// plus its own full driver run with identical resolution options.
// Driver errors are recorded unless mayFail (a worker the test kills).
func (f *fleet) addWorker(ds *proger.Dataset, faultRate float64, wopts WorkerOptions, mayFail bool) *Worker {
	f.t.Helper()
	wopts.Connect = f.master.Addr()
	w, err := NewWorker(wopts)
	if err != nil {
		f.t.Fatal(err)
	}
	f.workers = append(f.workers, w)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		opts := baseOptions(faultRate)
		fillDataset(ds, &opts)
		opts.Transport = w
		if wopts.Relay != nil {
			// A relay-equipped worker publishes its live introspection
			// into the relay log, exactly as cmd/proger wires a forked
			// worker process.
			opts.Live = live.NewRun(wopts.Relay)
		}
		_, err := proger.Resolve(ds, opts)
		if err != nil && !mayFail {
			f.mu.Lock()
			f.werrs = append(f.werrs, err)
			f.mu.Unlock()
		}
	}()
	return w
}

// run drives the master's pipeline, closes the fleet down, and
// returns the master's artifacts.
func (f *fleet) run(ds *proger.Dataset, faultRate float64) (*proger.Result, *proger.Tracer, *proger.QualityRecorder) {
	f.t.Helper()
	opts := baseOptions(faultRate)
	fillDataset(ds, &opts)
	opts.Transport = f.master
	opts.Trace = proger.NewTracer()
	opts.Quality = proger.NewQualityRecorder()
	opts.Live = f.masterLive
	res, err := proger.Resolve(ds, opts)
	f.shutdown()
	if err != nil {
		f.t.Fatalf("master resolve: %v", err)
	}
	return res, opts.Trace, opts.Quality
}

func (f *fleet) shutdown() {
	f.t.Helper()
	// Worker drivers first (they need the master alive to fetch final
	// broadcasts), then goodbyes, then the master's drain — which is
	// instant once every worker has departed.
	f.wg.Wait()
	for _, w := range f.workers {
		w.Close()
	}
	f.master.Close()
	for _, werr := range f.werrs {
		f.t.Errorf("worker resolve: %v", werr)
	}
}

// localRun is the single-process determinism reference.
func localRun(t *testing.T, ds *proger.Dataset, faultRate float64) (*proger.Result, *proger.Tracer, *proger.QualityRecorder) {
	t.Helper()
	opts := baseOptions(faultRate)
	fillDataset(ds, &opts)
	opts.Trace = proger.NewTracer()
	opts.Quality = proger.NewQualityRecorder()
	res, err := proger.Resolve(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, opts.Trace, opts.Quality
}

func resultBytes(t *testing.T, res *proger.Result) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, ev := range res.Events {
		fmt.Fprintf(&b, "%d\t%d\t%.3f\n", ev.Pair.Lo, ev.Pair.Hi, ev.Time)
	}
	fmt.Fprintf(&b, "total=%.3f dups=%d\n", res.TotalTime, len(res.Duplicates))
	return b.Bytes()
}

func traceBytes(t *testing.T, tr *proger.Tracer) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func qualityBytes(t *testing.T, q *proger.QualityRecorder) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := q.Export(0).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func assertIdentical(t *testing.T, what string, local, dist []byte) {
	t.Helper()
	if !bytes.Equal(local, dist) {
		t.Errorf("%s bytes diverge between local and distributed runs (local %d B, dist %d B)",
			what, len(local), len(dist))
	}
}

// TestFleetByteIdentity: a master plus two worker drivers produce
// Result, trace, and quality bytes identical to a single-process run.
// The workers run without their own trace/quality sinks, so span and
// quality collection rides entirely on the spec-union dummy sinks.
func TestFleetByteIdentity(t *testing.T) {
	ds, _ := proger.GeneratePublications(600, 1)
	lres, ltr, lq := localRun(t, ds, 0)

	f := newFleet(t, 0)
	f.addWorker(ds, 0, WorkerOptions{}, false)
	f.addWorker(ds, 0, WorkerOptions{}, false)
	res, tr, q := f.run(ds, 0)

	assertIdentical(t, "result", resultBytes(t, lres), resultBytes(t, res))
	assertIdentical(t, "trace", traceBytes(t, ltr), traceBytes(t, tr))
	assertIdentical(t, "quality", qualityBytes(t, lq), qualityBytes(t, q))
	if got := f.reg.Counter(mapreduce.CounterDistWorkersRegistered).Value(); got != 2 {
		t.Errorf("workers registered = %d, want 2", got)
	}
	if got := f.reg.Counter(mapreduce.CounterDistLeasesGranted).Value(); got == 0 {
		t.Error("no leases granted")
	}
	if got := f.reg.Counter(mapreduce.CounterDistLeasesExpired).Value(); got != 0 {
		t.Errorf("leases expired = %d, want 0 in a clean run", got)
	}
}

// TestFleetByteIdentityUnderFaults: same identity with the simulated
// fault runtime active on every process — injected crashes, retries,
// and speculation are decided on the master, and the attempt history
// must land in the trace exactly as in a local faulty run.
func TestFleetByteIdentityUnderFaults(t *testing.T) {
	ds, _ := proger.GeneratePublications(600, 1)
	lres, ltr, lq := localRun(t, ds, 0.3)

	f := newFleet(t, 0)
	f.addWorker(ds, 0.3, WorkerOptions{}, false)
	f.addWorker(ds, 0.3, WorkerOptions{}, false)
	res, tr, q := f.run(ds, 0.3)

	assertIdentical(t, "result", resultBytes(t, lres), resultBytes(t, res))
	assertIdentical(t, "trace", traceBytes(t, ltr), traceBytes(t, tr))
	assertIdentical(t, "quality", qualityBytes(t, lq), qualityBytes(t, q))
}

// TestLeaseExpiryOnHeartbeatLoss: a worker registers, takes a lease,
// and goes silent. The master must declare it dead within the TTL,
// expire the lease, re-lease the task to the worker that joins later,
// and still produce the byte-identical Result. Script-driven: the
// test blocks on protocol steps and the run's own completion, never
// asserts after a wall-clock sleep.
func TestLeaseExpiryOnHeartbeatLoss(t *testing.T) {
	ds, _ := proger.GeneratePublications(400, 1)
	lres, _, _ := localRun(t, ds, 0)

	f := newFleet(t, 200*time.Millisecond)

	// The silent worker speaks the raw protocol: register, then poll
	// until a lease is actually granted, then never call again — no
	// heartbeat, no completion.
	conn, err := net.Dial("tcp", f.master.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	silent := rpc.NewClient(conn)
	var reg RegisterReply
	if err := silent.Call(rpcService+".Register", &RegisterArgs{}, &reg); err != nil {
		t.Fatal(err)
	}
	granted := make(chan TaskLease, 1)
	go func() {
		for {
			var rep LeaseReply
			if err := silent.Call(rpcService+".Lease", &LeaseArgs{WorkerID: reg.WorkerID}, &rep); err != nil {
				return
			}
			switch rep.Kind {
			case LeaseTask:
				granted <- rep.Lease
				return
			case LeaseShutdown:
				return
			}
		}
	}()

	// Drive the master in the background so this goroutine can
	// orchestrate: leases start flowing once its driver reaches job 1.
	resCh := make(chan *proger.Result, 1)
	go func() {
		opts := baseOptions(0)
		fillDataset(ds, &opts)
		opts.Transport = f.master
		res, err := proger.Resolve(ds, opts)
		if err != nil {
			t.Errorf("master resolve: %v", err)
		}
		resCh <- res
	}()

	// Only after the silent worker provably holds a lease does the
	// real worker join — the expiry path cannot be skipped.
	lease := <-granted
	if lease.JobSeq != 1 {
		t.Errorf("silent worker leased job %d, want 1", lease.JobSeq)
	}
	f.addWorker(ds, 0, WorkerOptions{}, false)

	res := <-resCh
	f.shutdown()
	if res == nil {
		t.Fatal("master resolve failed")
	}

	assertIdentical(t, "result", resultBytes(t, lres), resultBytes(t, res))
	if got := f.reg.Counter(mapreduce.CounterDistLeasesExpired).Value(); got < 1 {
		t.Errorf("leases expired = %d, want >= 1", got)
	}
	if got := f.reg.Counter(mapreduce.CounterDistWorkersRegistered).Value(); got != 2 {
		t.Errorf("workers registered = %d, want 2", got)
	}
}

// TestWorkerKilledMidRun: one of two workers cuts its connection
// abruptly after its third lease (taken, never completed). The master
// recovers via heartbeat expiry and every artifact stays
// byte-identical.
func TestWorkerKilledMidRun(t *testing.T) {
	ds, _ := proger.GeneratePublications(400, 1)
	lres, ltr, lq := localRun(t, ds, 0)

	f := newFleet(t, 200*time.Millisecond)
	kill := make(chan struct{})
	var once sync.Once
	doomed := f.addWorker(ds, 0, WorkerOptions{
		Parallel: 1,
		OnLease: func(n int) {
			if n >= 3 {
				once.Do(func() { close(kill) })
				<-make(chan struct{}) // hold the lease forever: this pump is dead
			}
		},
	}, true)
	go func() {
		<-kill
		doomed.Kill()
	}()
	f.addWorker(ds, 0, WorkerOptions{}, false)

	res, tr, q := f.run(ds, 0)

	assertIdentical(t, "result", resultBytes(t, lres), resultBytes(t, res))
	assertIdentical(t, "trace", traceBytes(t, ltr), traceBytes(t, tr))
	assertIdentical(t, "quality", qualityBytes(t, lq), qualityBytes(t, q))
	if got := f.reg.Counter(mapreduce.CounterDistLeasesExpired).Value(); got < 1 {
		t.Errorf("leases expired = %d, want >= 1", got)
	}
}

// checkMergedLog validates a merged multi-process event log's identity
// invariant: within every process ("" = host, "w<id>" = forwarded
// worker lines), seq counts 1, 2, 3, ... with no gaps regardless of
// how batches interleaved. Returns per-proc line counts.
func checkMergedLog(t *testing.T, data []byte) map[string]int {
	t.Helper()
	seqs := map[string]int{}
	counts := map[string]int{}
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev struct {
			Event string `json:"event"`
			Proc  string `json:"proc"`
			Seq   int    `json:"seq"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("merged log line %d: %v: %s", i+1, err, line)
		}
		if ev.Event == "" {
			t.Fatalf("merged log line %d: missing event name: %s", i+1, line)
		}
		if ev.Seq != seqs[ev.Proc]+1 {
			t.Fatalf("merged log line %d (%s): proc %q seq %d, want %d",
				i+1, ev.Event, ev.Proc, ev.Seq, seqs[ev.Proc]+1)
		}
		seqs[ev.Proc] = ev.Seq
		counts[ev.Proc]++
	}
	return counts
}

// TestFleetObservability: the full observability surface on — master
// event log, worker relay logs, per-process metrics registries — must
// not perturb a single byte of the deterministic artifacts, the
// master's fleet table must reconcile with its own lease counters and
// the workers' self-reports, and the merged event log must hold the
// per-process gap-free seq invariant.
func TestFleetObservability(t *testing.T) {
	ds, _ := proger.GeneratePublications(600, 1)
	lres, ltr, lq := localRun(t, ds, 0)

	var logBuf bytes.Buffer
	elog := live.NewEventLog(&logBuf)
	f := newFleetOpts(t, MasterOptions{Log: elog})
	f.masterLive = live.NewRun(elog)
	f.masterLive.AttachFleet(f.master)

	wregs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	for _, wreg := range wregs {
		f.addWorker(ds, 0, WorkerOptions{
			Relay:   live.NewRelayEventLog(0),
			Metrics: wreg,
		}, false)
	}
	res, tr, q := f.run(ds, 0)

	assertIdentical(t, "result", resultBytes(t, lres), resultBytes(t, res))
	assertIdentical(t, "trace", traceBytes(t, ltr), traceBytes(t, tr))
	assertIdentical(t, "quality", qualityBytes(t, lq), qualityBytes(t, q))

	// Fleet table: both workers present with their goodbye-final
	// telemetry, attribution reconciling with the global lease counters
	// and the workers' own self-reported completions.
	fs := f.master.FleetSnapshot()
	if len(fs.Workers) != 2 || fs.Alive != 0 || fs.Dead != 2 {
		t.Fatalf("fleet after shutdown = %d workers (%d alive, %d dead), want 2 (0 alive, 2 dead)",
			len(fs.Workers), fs.Alive, fs.Dead)
	}
	var granted, expired, done int64
	for _, fw := range fs.Workers {
		granted += fw.LeasesGranted
		expired += fw.LeasesExpired
		done += fw.MapDone + fw.ShuffleDone + fw.ReduceDone
		if fw.Telemetry == nil {
			t.Fatalf("worker %d: no telemetry snapshot after orderly goodbye", fw.ID)
		}
		if fw.Telemetry.MapTasks != fw.MapDone || fw.Telemetry.ShuffleTasks != fw.ShuffleDone ||
			fw.Telemetry.ReduceTasks != fw.ReduceDone {
			t.Errorf("worker %d: self-reported %d/%d/%d tasks, master attributed %d/%d/%d",
				fw.ID, fw.Telemetry.MapTasks, fw.Telemetry.ShuffleTasks, fw.Telemetry.ReduceTasks,
				fw.MapDone, fw.ShuffleDone, fw.ReduceDone)
		}
		if fw.Telemetry.RPCBytesIn == 0 || fw.Telemetry.RPCBytesOut == 0 {
			t.Errorf("worker %d: zero RPC traffic in telemetry", fw.ID)
		}
		if fw.Telemetry.EventsDropped != 0 {
			t.Errorf("worker %d: dropped %d relay events", fw.ID, fw.Telemetry.EventsDropped)
		}
	}
	if want := f.reg.Counter(mapreduce.CounterDistLeasesGranted).Value(); granted != want {
		t.Errorf("fleet rows account %d leases granted, counter says %d", granted, want)
	}
	if expired != 0 {
		t.Errorf("fleet rows account %d expiries in a clean run", expired)
	}
	if done == 0 {
		t.Error("fleet rows attribute no task completions")
	}
	if calls := f.reg.Counter(mapreduce.CounterDistRPCCalls).Value(); calls == 0 {
		t.Error("master served no instrumented RPCs")
	}

	// Merged event log: host lines plus both workers' forwarded lines,
	// each process's seq gap-free.
	counts := checkMergedLog(t, logBuf.Bytes())
	if counts[""] == 0 {
		t.Error("merged log has no host events")
	}
	for _, proc := range []string{"w1", "w2"} {
		if counts[proc] == 0 {
			t.Errorf("merged log has no forwarded events from %s", proc)
		}
	}
	if !bytes.Contains(logBuf.Bytes(), []byte(`"event":"task.done"`)) {
		t.Error("merged log carries no forwarded task.done events")
	}
}

// TestFleetDeadWorkerPostMortem: a worker killed mid-run must keep its
// fleet row — marked dead, last telemetry snapshot retained — and the
// per-worker lease ledger must reconcile (expiries never exceed
// grants, rows sum to the global counters). Script-driven: the kill
// waits until the master provably holds the doomed worker's telemetry,
// so the post-mortem snapshot assertion cannot race the first
// heartbeat.
func TestFleetDeadWorkerPostMortem(t *testing.T) {
	ds, _ := proger.GeneratePublications(400, 1)
	lres, _, _ := localRun(t, ds, 0)

	var logBuf bytes.Buffer
	elog := live.NewEventLog(&logBuf)
	f := newFleetOpts(t, MasterOptions{LeaseTTL: 200 * time.Millisecond, Log: elog})

	kill := make(chan struct{})
	var once sync.Once
	doomed := f.addWorker(ds, 0, WorkerOptions{
		Parallel: 1,
		Relay:    live.NewRelayEventLog(0),
		Metrics:  obs.NewRegistry(),
		OnLease: func(n int) {
			if n >= 3 {
				once.Do(func() { close(kill) })
				<-make(chan struct{}) // hold the lease forever: this pump is dead
			}
		},
	}, true)
	go func() {
		<-kill
		// Heartbeats keep flowing while the pump hangs; wait for one to
		// land telemetry before cutting the connection.
		for {
			fs := f.master.FleetSnapshot()
			if len(fs.Workers) > 0 && fs.Workers[0].Telemetry != nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		doomed.Kill()
	}()
	f.addWorker(ds, 0, WorkerOptions{
		Relay:   live.NewRelayEventLog(0),
		Metrics: obs.NewRegistry(),
	}, false)

	res, _, _ := f.run(ds, 0)
	assertIdentical(t, "result", resultBytes(t, lres), resultBytes(t, res))

	fs := f.master.FleetSnapshot()
	if len(fs.Workers) != 2 {
		t.Fatalf("fleet rows = %d, want 2 (dead workers must stay in the table)", len(fs.Workers))
	}
	dead := fs.Workers[0]
	if dead.ID != 1 || dead.Alive {
		t.Errorf("worker 1 = id %d alive %v, want the killed worker, dead", dead.ID, dead.Alive)
	}
	if dead.Telemetry == nil {
		t.Error("killed worker lost its last telemetry snapshot")
	}
	if dead.LeasesExpired < 1 {
		t.Errorf("killed worker expired %d leases, want >= 1", dead.LeasesExpired)
	}
	var granted, expired int64
	for _, fw := range fs.Workers {
		if fw.LeasesExpired > fw.LeasesGranted {
			t.Errorf("worker %d: %d expiries exceed %d grants", fw.ID, fw.LeasesExpired, fw.LeasesGranted)
		}
		granted += fw.LeasesGranted
		expired += fw.LeasesExpired
	}
	if want := f.reg.Counter(mapreduce.CounterDistLeasesGranted).Value(); granted != want {
		t.Errorf("fleet rows account %d leases granted, counter says %d", granted, want)
	}
	if want := f.reg.Counter(mapreduce.CounterDistLeasesExpired).Value(); expired != want {
		t.Errorf("fleet rows account %d expiries, counter says %d", expired, want)
	}

	// The merged log stays gap-free per process even though the dead
	// worker's tail was never shipped.
	checkMergedLog(t, logBuf.Bytes())
}
