package mapreduce

import (
	"bytes"
	"reflect"
	"testing"

	"proger/internal/obs"
)

func TestCountersMergeNilReceiver(t *testing.T) {
	// A zero-valued Counters field must absorb merges directly — this
	// was a panic before Merge grew the lazy allocation.
	var c Counters
	c.Merge(Counters{"a": 1, "b": 2})
	if c.Get("a") != 1 || c.Get("b") != 2 {
		t.Errorf("merge into nil = %v", c)
	}
	// Merging an empty map into nil must not allocate.
	var d Counters
	d.Merge(nil)
	d.Merge(Counters{})
	if d != nil {
		t.Errorf("empty merges allocated: %v", d)
	}
	// And a struct field works without taking an explicit pointer.
	var res Result
	res.Counters.Merge(Counters{"x": 7})
	if res.Counters.Get("x") != 7 {
		t.Errorf("struct-field merge = %v", res.Counters)
	}
}

func TestCountersClone(t *testing.T) {
	if got := (Counters)(nil).Clone(); got != nil {
		t.Errorf("nil.Clone() = %v, want nil", got)
	}
	orig := Counters{"a": 1, "b": 2}
	cp := orig.Clone()
	if !reflect.DeepEqual(cp, orig) {
		t.Errorf("clone = %v, want %v", cp, orig)
	}
	cp["a"] = 100
	cp["c"] = 3
	if orig.Get("a") != 1 || orig.Get("c") != 0 {
		t.Errorf("clone aliases original: %v", orig)
	}
}

// runTraced runs wordcount with a tracer and metrics attached.
func runTraced(t *testing.T, workers int) (*Result, *obs.Tracer, *obs.Registry) {
	t.Helper()
	cfg := wordCountConfig(workers)
	cfg.Trace = obs.New()
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg, wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res, cfg.Trace, cfg.Metrics
}

func TestEngineTraceSpans(t *testing.T) {
	res, tr, m := runTraced(t, 1)
	spans := tr.Spans()
	byCat := map[string][]obs.Span{}
	for _, s := range spans {
		byCat[s.Cat] = append(byCat[s.Cat], s)
	}
	if len(byCat["map"]) != 3 || len(byCat["reduce"]) != 2 {
		t.Fatalf("got %d map / %d reduce spans, want 3 / 2",
			len(byCat["map"]), len(byCat["reduce"]))
	}
	if len(byCat["shuffle"]) == 0 {
		t.Error("no shuffle spans recorded")
	}
	// Task spans must sit exactly on the schedule the engine reports.
	for i, s := range byCat["map"] {
		if s.Start != res.MapStarts[i] {
			t.Errorf("map %d span starts at %v, schedule says %v", i, s.Start, res.MapStarts[i])
		}
		if s.TID != res.MapSlots[i] {
			t.Errorf("map %d span on slot %d, schedule says %d", i, s.TID, res.MapSlots[i])
		}
	}
	for i, s := range byCat["reduce"] {
		if s.Start != res.ReduceStarts[i] {
			t.Errorf("reduce %d span starts at %v, schedule says %v", i, s.Start, res.ReduceStarts[i])
		}
		if end := s.Start + s.Dur; end > res.End {
			t.Errorf("reduce %d span ends at %v, after job end %v", i, end, res.End)
		}
	}
	// Shuffle spans live inside their reduce task's window.
	for _, s := range byCat["shuffle"] {
		if s.Start < res.MapEnd && s.Dur > 0 {
			t.Errorf("simulated shuffle span starts at %v, before map end %v", s.Start, res.MapEnd)
		}
	}
	// Engine counters flow into the registry.
	snap := m.Snapshot()
	vals := map[string]int64{}
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	if vals[CounterMapInRecords] != 4 {
		t.Errorf("%s = %d, want 4", CounterMapInRecords, vals[CounterMapInRecords])
	}
	if vals[CounterMapOutRecords] != 16 {
		t.Errorf("%s = %d, want 16", CounterMapOutRecords, vals[CounterMapOutRecords])
	}
	if vals[CounterReduceInGroups] != 9 {
		t.Errorf("%s = %d, want 9", CounterReduceInGroups, vals[CounterReduceInGroups])
	}
}

func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	// The simulated-clock Chrome export must be byte-identical no matter
	// how many host workers executed the job.
	_, tr1, _ := runTraced(t, 1)
	_, tr8, _ := runTraced(t, 8)
	var b1, b8 bytes.Buffer
	if err := tr1.WriteChromeTrace(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tr8.WriteChromeTrace(&b8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Errorf("trace JSON differs between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			b1.String(), b8.String())
	}
}

func TestTraceDisabledRecordsNothing(t *testing.T) {
	cfg := wordCountConfig(2)
	res, err := Run(cfg, wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Counters must be identical to a traced run: tracing is observation
	// only, never behavior.
	resT, _, _ := runTraced(t, 2)
	if !reflect.DeepEqual(res.Counters, resT.Counters) {
		t.Errorf("tracing changed counters: %v vs %v", res.Counters, resT.Counters)
	}
	if res.End != resT.End {
		t.Errorf("tracing changed timing: %v vs %v", res.End, resT.End)
	}
}
