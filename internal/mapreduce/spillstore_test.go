package mapreduce

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"proger/internal/membudget"
	"proger/internal/obs"
)

// storeConfig builds a minimal Config for driving a spillStore
// directly in tests.
func storeConfig(t *testing.T, budget int64) (*Config, *membudget.Manager) {
	t.Helper()
	mgr := membudget.New(budget)
	return &Config{Name: "store-test", SpillDir: t.TempDir(), MemBudget: mgr}, mgr
}

// storeRuns builds map-task runs with shared keys so that the stable
// (key, map-index) merge order is observable in the values.
func storeRuns(mapTasks, perRun int) [][]KeyValue {
	runs := make([][]KeyValue, mapTasks)
	for m := range runs {
		run := make([]KeyValue, perRun)
		for i := range run {
			run[i] = KeyValue{
				Key:   fmt.Sprintf("k%02d", i%5),
				Value: []byte(fmt.Sprintf("m%d-i%d", m, i)),
			}
		}
		sortByKeyStable(run)
		runs[m] = run
	}
	return runs
}

func drainInput(t *testing.T, in reduceInput) []KeyValue {
	t.Helper()
	it, err := in.Iter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []KeyValue
	for {
		kv, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, kv)
	}
}

// TestSpillStoreMatchesMemoryMerge: whatever mix of buffered and
// spilled runs the store holds, iteration yields exactly the stable
// k-way merge the in-memory shuffle produces — including when runs
// arrive out of map-index order and a forced spill lands mid-ingest.
func TestSpillStoreMatchesMemoryMerge(t *testing.T) {
	runs := storeRuns(5, 40)
	var total int
	sorted := make([][]KeyValue, len(runs))
	for m, run := range runs {
		sorted[m] = run
		total += len(run)
	}
	want := mergeSortedRuns(sorted, total)

	cfg, _ := storeConfig(t, 1<<30) // roomy: no pressure unless forced
	st := newSpillStore(cfg, cfg.MemBudget, 0, false)
	defer st.Close()
	// Ingest out of order, spilling the buffer partway through.
	order := []int{3, 0, 4}
	for _, m := range order {
		if err := st.addRun(m, runs[m]); err != nil {
			t.Fatal(err)
		}
	}
	if freed, err := st.budgetSpill(); err != nil || freed == 0 {
		t.Fatalf("budgetSpill freed %d, err %v", freed, err)
	}
	for _, m := range []int{2, 1} {
		if err := st.addRun(m, runs[m]); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != total {
		t.Fatalf("Len = %d, want %d", st.Len(), total)
	}
	got := drainInput(t, st)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("spill store merge order diverged from in-memory stable merge")
	}
	// A second pass must yield the same records (iterators are
	// independent).
	if again := drainInput(t, st); !reflect.DeepEqual(again, want) {
		t.Fatal("second iteration diverged")
	}
}

// TestSpillStoreIterPinsBuffer: a live iterator holds merge cursors
// into the memory runs, so a budget spill must report no progress
// instead of mutating them.
func TestSpillStoreIterPinsBuffer(t *testing.T) {
	cfg, _ := storeConfig(t, 1<<30)
	st := newSpillStore(cfg, cfg.MemBudget, 0, false)
	defer st.Close()
	if err := st.addRun(0, storeRuns(1, 10)[0]); err != nil {
		t.Fatal(err)
	}
	it, err := st.Iter()
	if err != nil {
		t.Fatal(err)
	}
	if freed, err := st.budgetSpill(); err != nil || freed != 0 {
		t.Fatalf("spill under live iterator freed %d, err %v — must be pinned", freed, err)
	}
	it.Close()
	if freed, err := st.budgetSpill(); err != nil || freed == 0 {
		t.Fatalf("spill after iterator close freed %d, err %v", freed, err)
	}
}

// TestSpillStoreCloseRemovesFiles: Close deletes run files, the temp
// dir, and settles the budget account.
func TestSpillStoreCloseRemovesFiles(t *testing.T) {
	cfg, mgr := storeConfig(t, 1<<30)
	st := newSpillStore(cfg, cfg.MemBudget, 3, false)
	if err := st.addRun(0, storeRuns(1, 50)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.budgetSpill(); err != nil {
		t.Fatal(err)
	}
	if len(st.files) == 0 {
		t.Fatal("spill produced no run file")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if mgr.Used() != 0 {
		t.Fatalf("tracked bytes after Close = %d, want 0", mgr.Used())
	}
	entries, err := os.ReadDir(cfg.SpillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = filepath.Join(cfg.SpillDir, e.Name())
		}
		t.Errorf("spill artifacts left after Close: %v", names)
	}
}

// TestForceDiskStoreCountsRuns: the deterministic ShuffleMemLimit path
// writes one file per ingested run and reports that count.
func TestForceDiskStoreCountsRuns(t *testing.T) {
	cfg := &Config{Name: "force", SpillDir: t.TempDir()}
	st := newSpillStore(cfg, nil, 0, true)
	defer st.Close()
	runs := storeRuns(3, 20)
	for m, run := range runs {
		if err := st.addRun(m, run); err != nil {
			t.Fatal(err)
		}
	}
	if st.spilledRuns != 3 || len(st.files) != 3 {
		t.Fatalf("spilledRuns=%d files=%d, want 3/3", st.spilledRuns, len(st.files))
	}
	want := mergeSortedRuns(runs, 60)
	if got := drainInput(t, st); !reflect.DeepEqual(got, want) {
		t.Fatal("force-disk merge diverged from in-memory stable merge")
	}
}

// TestBudgetRunMatchesMemoryRun is the storage-mode equivalence
// property at the job level: a tiny budget that forces everything
// through compressed disk runs must reproduce the in-memory Result —
// output bytes, timestamps, counters, schedule — exactly, across both
// engines and worker counts, and the Chrome trace bytes too.
func TestBudgetRunMatchesMemoryRun(t *testing.T) {
	forceHostParallel(t)
	type outcome struct {
		res   *Result
		trace []byte
	}
	run := func(mode ExecutionMode, workers int, budget int64) outcome {
		cfg := wordCountConfig(workers)
		cfg.Execution = mode
		cfg.Trace = obs.New()
		cfg.Metrics = obs.NewRegistry()
		if budget > 0 {
			cfg.MemBudget = membudget.New(budget)
			cfg.SpillDir = t.TempDir()
		}
		res, err := Run(cfg, wordCountInput(), 0)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := cfg.Trace.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
		return outcome{res: res, trace: b.Bytes()}
	}
	for _, mode := range []ExecutionMode{ExecPipelined, ExecBarrier} {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("mode=%v/workers=%d", mode, workers)
			base := run(mode, workers, 0)
			tight := run(mode, workers, 64) // ~one small run; everything spills
			if !reflect.DeepEqual(base.res, tight.res) {
				t.Errorf("%s: Result diverged between memory and budget-spill runs", name)
			}
			if !bytes.Equal(base.trace, tight.trace) {
				t.Errorf("%s: trace bytes diverged between memory and budget-spill runs", name)
			}
		}
	}
}

// TestBudgetRunRecordsPressure: with a budget far below the shuffle
// volume (but above any single run, so enforcement can always make
// room), the manager must observe spills while the tracked peak stays
// under the budget.
func TestBudgetRunRecordsPressure(t *testing.T) {
	var in []KeyValue
	for i := 0; i < 300; i++ {
		line := fmt.Sprintf("w%03d w%03d w%03d w%03d w%03d w%03d",
			i%40, (i+7)%40, (i+13)%40, i%9, (i+3)%9, (i+5)%9)
		in = append(in, KeyValue{Key: fmt.Sprint(i), Value: []byte(line)})
	}
	cfg := wordCountConfig(4)
	cfg.NumMapTasks = 4
	cfg.NumReduceTasks = 3
	cfg.Execution = ExecPipelined
	mgr := membudget.New(32 << 10)
	cfg.MemBudget = mgr
	cfg.SpillDir = t.TempDir()
	cfg.Metrics = obs.NewRegistry()
	if _, err := Run(cfg, in, 0); err != nil {
		t.Fatal(err)
	}
	if mgr.ForcedSpills() == 0 {
		t.Error("no forced spills under a tight budget")
	}
	if mgr.Peak() > mgr.Budget() {
		t.Errorf("tracked peak %d exceeded budget %d", mgr.Peak(), mgr.Budget())
	}
	if mgr.ChargedTotal() <= mgr.Budget() {
		t.Errorf("charged total %d should exceed the %d budget for this workload", mgr.ChargedTotal(), mgr.Budget())
	}
	if cfg.Metrics.Counter(CounterBudgetForcedSpills).Value() == 0 {
		t.Error("budget spill counter not exported to the registry")
	}
}
