package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"proger/internal/faults"
	"proger/internal/obs"
)

// counterValues extracts the registry's counters by name.
func counterValues(m *obs.Registry) map[string]int64 {
	vals := map[string]int64{}
	for _, c := range m.Snapshot().Counters {
		vals[c.Name] = c.Value
	}
	return vals
}

func TestResultImmuneToFaults(t *testing.T) {
	// The acceptance bar of the fault runtime: for any seed and rate,
	// at any host concurrency, Result (output, timestamps, counters,
	// schedule) is byte-identical to the fault-free run.
	baseline, err := Run(wordCountConfig(1), wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0, 0.1, 0.5} {
		for _, workers := range []int{1, 8} {
			for _, seed := range []int64{1, 42} {
				cfg := wordCountConfig(workers)
				cfg.Faults = faults.NewSeeded(seed, rate)
				cfg.Retry = RetryPolicy{MaxRetries: 3, Speculation: true}
				res, err := Run(cfg, wordCountInput(), 0)
				if err != nil {
					t.Fatalf("rate=%v workers=%d seed=%d: %v", rate, workers, seed, err)
				}
				if !reflect.DeepEqual(res, baseline) {
					t.Errorf("rate=%v workers=%d seed=%d: Result diverged from fault-free baseline",
						rate, workers, seed)
				}
			}
		}
	}
}

func TestRetryExhaustionSurfacesJoinedError(t *testing.T) {
	// A task whose crash budget exceeds MaxRetries must fail the job
	// with an error that names the task and recounts every attempt.
	script := faults.Script{}
	for a := 1; a <= 3; a++ {
		script[faults.ScriptKey{Phase: faults.Map, Task: 1, Attempt: a}] = faults.Fault{Kind: faults.Crash}
	}
	cfg := wordCountConfig(4)
	cfg.Faults = script
	cfg.Retry = RetryPolicy{MaxRetries: 2}
	_, err := Run(cfg, wordCountInput(), 0)
	if err == nil {
		t.Fatal("want retry-exhaustion error, got nil")
	}
	msg := err.Error()
	for _, want := range []string{
		"map task 1 failed after 3 attempts",
		"attempt 1: injected crash",
		"attempt 2: injected crash",
		"attempt 3: injected crash",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestSeededExhaustionCompletesWithError(t *testing.T) {
	// Uncapped budget + certain faults: every attempt of every task
	// fails (SlowFactor 100 pushes even slow attempts past the
	// timeout), so the run must terminate — not hang — with a joined,
	// per-attempt-attributable error.
	cfg := wordCountConfig(2)
	cfg.Faults = &faults.Seeded{Seed: 7, Rate: 1, Budget: -1, SlowFactor: 100}
	cfg.Retry = RetryPolicy{MaxRetries: 3}
	_, err := Run(cfg, wordCountInput(), 0)
	if err == nil {
		t.Fatal("want exhaustion error, got nil")
	}
	if !strings.Contains(err.Error(), "failed after 4 attempts") {
		t.Errorf("error %q should recount all 4 attempts", err)
	}
}

func TestHangConvertsToTimeoutRetry(t *testing.T) {
	// A hung attempt must be killed at the attempt timeout and retried,
	// with the retry visible in the attempt counters and the Result
	// untouched.
	baseline, err := Run(wordCountConfig(1), wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wordCountConfig(2)
	cfg.Faults = faults.Script{
		{Phase: faults.Map, Task: 0, Attempt: 1}: {Kind: faults.Hang},
	}
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg, wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, baseline) {
		t.Error("hang recovery perturbed Result")
	}
	vals := counterValues(cfg.Metrics)
	// 3 map + 2 shuffle + 2 reduce committed attempts, plus the one
	// timed-out attempt.
	if vals[CounterTaskAttempts] != 8 {
		t.Errorf("%s = %d, want 8", CounterTaskAttempts, vals[CounterTaskAttempts])
	}
	if vals[CounterTaskRetries] != 1 {
		t.Errorf("%s = %d, want 1", CounterTaskRetries, vals[CounterTaskRetries])
	}
}

func TestSpeculativeAttemptOutrunsStraggler(t *testing.T) {
	// A slow-but-alive attempt (below the timeout) commits, then the
	// speculation pass notices it straggling past the cost quantile,
	// launches a backup, and the backup wins: one speculation, one
	// killed original, identical Result.
	baseline, err := Run(wordCountConfig(1), wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wordCountConfig(2)
	cfg.Faults = faults.Script{
		{Phase: faults.Reduce, Task: 0, Attempt: 1}: {Kind: faults.Slow, Factor: 20},
	}
	// Quantile 0.9 = each phase's max clean cost, so no clean task can
	// exceed it (> is strict) — only the 20×-slowed reduce straggler.
	cfg.Retry = RetryPolicy{
		MaxRetries:          2,
		TimeoutFactor:       50, // keep the 20× straggler under the timeout
		Speculation:         true,
		SpeculationQuantile: 0.9,
	}
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg, wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, baseline) {
		t.Error("speculation perturbed Result")
	}
	vals := counterValues(cfg.Metrics)
	if vals[CounterTaskSpeculations] != 1 {
		t.Errorf("%s = %d, want 1", CounterTaskSpeculations, vals[CounterTaskSpeculations])
	}
	if vals[CounterTaskAttemptsKilled] != 1 {
		t.Errorf("%s = %d, want 1", CounterTaskAttemptsKilled, vals[CounterTaskAttemptsKilled])
	}
}

func TestAttemptSpansDeterministicAcrossWorkers(t *testing.T) {
	// With faults injected, the shadow attempt timeline itself must be
	// deterministic: the Chrome export is byte-identical across host
	// concurrency, and it actually contains attempt spans with failures.
	run := func(workers int) *obs.Tracer {
		cfg := wordCountConfig(workers)
		cfg.Faults = faults.NewSeeded(3, 0.5)
		cfg.Retry = RetryPolicy{MaxRetries: 3, Speculation: true}
		cfg.Trace = obs.New()
		if _, err := Run(cfg, wordCountInput(), 0); err != nil {
			t.Fatal(err)
		}
		return cfg.Trace
	}
	tr1, tr8 := run(1), run(8)
	var b1, b8 bytes.Buffer
	if err := tr1.WriteChromeTrace(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tr8.WriteChromeTrace(&b8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Error("attempt timeline differs between 1 and 8 workers")
	}
	attempts, failures := 0, 0
	for _, s := range tr1.Spans() {
		if s.Cat != "attempt" {
			continue
		}
		attempts++
		for _, a := range s.Args {
			if a.Key == "outcome" && a.Value != "ok" {
				failures++
			}
		}
	}
	if attempts == 0 {
		t.Error("no attempt spans recorded")
	}
	if failures == 0 {
		t.Error("seed 3 at rate 0.5 should produce at least one failed attempt span")
	}
}

func TestRunPoolJoinsAllWorkerErrors(t *testing.T) {
	// Every concurrently-failing task must survive into the joined
	// error, in task-index order. The barrier guarantees all n tasks
	// are dispatched before any failure is recorded, so the short-
	// circuiting dispatcher cannot skip any of them.
	const n = 4
	sentinels := make([]error, n)
	for i := range sentinels {
		sentinels[i] = fmt.Errorf("task-%d-boom", i)
	}
	var barrier sync.WaitGroup
	barrier.Add(n)
	err := runPool(n, n, func(i int) error {
		barrier.Done()
		barrier.Wait()
		return sentinels[i]
	})
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	for _, s := range sentinels {
		if !errors.Is(err, s) {
			t.Errorf("joined error lost %v", s)
		}
	}
	msg := err.Error()
	if strings.Index(msg, "task-0-boom") > strings.Index(msg, "task-3-boom") {
		t.Errorf("errors not in task-index order: %q", msg)
	}
}

func TestRunPoolConvertsPanicToTaskFailure(t *testing.T) {
	// A dying attempt must not take the job down: the panic becomes an
	// attributable task error and already-started siblings finish.
	var finished atomic.Int32
	var barrier sync.WaitGroup
	barrier.Add(2)
	err := runPool(2, 2, func(i int) error {
		barrier.Done()
		barrier.Wait() // both tasks running before the panic fires
		if i == 0 {
			panic("attempt died")
		}
		finished.Add(1)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 0 panicked: attempt died") {
		t.Errorf("want task-0 panic error, got %v", err)
	}
	if finished.Load() != 1 {
		t.Errorf("surviving task did not finish (finished=%d)", finished.Load())
	}
}

type panickyMapper struct{ MapperBase }

func (panickyMapper) Map(*TaskContext, KeyValue, Emitter) error {
	panic("mapper exploded")
}

func TestEngineSurvivesPanickingMapper(t *testing.T) {
	cfg := wordCountConfig(2)
	cfg.NewMapper = func() Mapper { return panickyMapper{} }
	_, err := Run(cfg, wordCountInput(), 0)
	if err == nil || !strings.Contains(err.Error(), "panicked: mapper exploded") {
		t.Errorf("want panic converted to error, got %v", err)
	}
}

func TestPanicRetriedUnderAttemptRuntime(t *testing.T) {
	// With the attempt runtime active, a panicking attempt is just a
	// failed attempt: later attempts may still commit the task.
	var calls atomic.Int32
	cfg := wordCountConfig(1)
	inner := cfg.NewMapper
	cfg.NewMapper = func() Mapper {
		if calls.Add(1) == 1 {
			return panickyMapper{}
		}
		return inner()
	}
	cfg.Retry = RetryPolicy{MaxRetries: 2}
	baseline, err := Run(wordCountConfig(1), wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, wordCountInput(), 0)
	if err != nil {
		t.Fatalf("panicking first attempt should be retried, got %v", err)
	}
	if !reflect.DeepEqual(collectCounts(res), collectCounts(baseline)) {
		t.Error("retried run produced different counts")
	}
}

func TestRetryPolicyValidation(t *testing.T) {
	cases := []RetryPolicy{
		{MaxRetries: -1},
		{BackoffBase: -5},
		{TimeoutFactor: -1},
		{SpeculationQuantile: 1},
		{SpeculationQuantile: -0.5},
	}
	for i, p := range cases {
		cfg := wordCountConfig(1)
		cfg.Retry = p
		if _, err := Run(cfg, wordCountInput(), 0); err == nil {
			t.Errorf("case %d (%+v): want validation error", i, p)
		}
	}
}
