package mapreduce

import (
	"fmt"

	"proger/internal/costmodel"
)

// Stage is one job of a chain plus the glue deriving its input from the
// previous stage's result.
type Stage struct {
	// Config is the job specification.
	Config Config
	// Input derives this stage's input records. For the first stage,
	// prev is nil and prevResult is nil; later stages usually transform
	// prevResult.Output. A nil Input for a later stage feeds the
	// previous output records through unchanged.
	Input func(prevResult *Result) ([]KeyValue, error)
}

// RunChain executes the stages sequentially on the simulated cluster,
// starting each job when its predecessor finishes (the Hadoop job-chain
// pattern this paper's two-job approach uses). It returns every stage's
// result; the last result's End is the chain's completion time.
func RunChain(stages []Stage, startAt costmodel.Units) ([]*Result, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("mapreduce: empty chain")
	}
	results := make([]*Result, 0, len(stages))
	var prev *Result
	at := startAt
	for i, st := range stages {
		var in []KeyValue
		var err error
		switch {
		case st.Input != nil:
			in, err = st.Input(prev)
			if err != nil {
				return nil, fmt.Errorf("mapreduce: chain stage %d input: %w", i, err)
			}
		case prev != nil:
			in = make([]KeyValue, len(prev.Output))
			for j, kv := range prev.Output {
				in[j] = kv.KeyValue
			}
		}
		res, err := Run(st.Config, in, at)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: chain stage %d: %w", i, err)
		}
		results = append(results, res)
		prev = res
		at = res.End
	}
	return results, nil
}
