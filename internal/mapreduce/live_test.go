package mapreduce

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"proger/internal/obs"
	"proger/internal/obs/live"
)

// gatedMapper blocks the first Map call until released, pinning the
// job at a deterministic mid-run point for scrape tests.
type gatedMapper struct {
	MapperBase
	gate *mapGate
}

type mapGate struct {
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func (m gatedMapper) Map(ctx *TaskContext, rec KeyValue, emit Emitter) error {
	m.gate.once.Do(func() {
		close(m.gate.entered)
		<-m.gate.release
	})
	return wordCountMapper{}.Map(ctx, rec, emit)
}

// promLine matches one sample of the Prometheus text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$`)

func checkPromText(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid Prometheus line %q", line)
		}
	}
}

// TestLiveMidRunScrape pins a map task mid-flight, scrapes every
// status endpoint while the job is provably in progress, and then
// verifies the final /metrics scrape converges byte-for-byte to the
// post-run Prometheus export.
func TestLiveMidRunScrape(t *testing.T) {
	gate := &mapGate{entered: make(chan struct{}), release: make(chan struct{})}
	reg := obs.NewRegistry()
	run := live.NewRun(nil)
	cfg := wordCountConfig(2)
	cfg.NewMapper = func() Mapper { return gatedMapper{gate: gate} }
	cfg.Metrics = reg
	cfg.Live = run

	srv, err := live.Serve("127.0.0.1:0", run, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	type runOut struct {
		res *Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := Run(cfg, wordCountInput(), 0)
		done <- runOut{res, err}
	}()

	select {
	case <-gate.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("mapper never entered the gate")
	}

	// Mid-run: the gated map task is running, so the job cannot be
	// complete; every endpoint must still answer with valid payloads.
	checkPromText(t, get("/metrics"))
	if body := get("/healthz"); !strings.Contains(body, "running") {
		t.Errorf("mid-run /healthz = %q", body)
	}
	progress := get("/progress")
	if !strings.Contains(progress, `"name": "wordcount"`) {
		t.Errorf("mid-run /progress = %q", progress)
	}
	if tasks := get("/tasks"); !strings.Contains(tasks, `"running"`) {
		t.Errorf("mid-run /tasks shows no running task: %q", tasks)
	}

	close(gate.release)
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	run.Finish(nil)

	// Convergence: the live scrape and the post-run export are the
	// same bytes.
	final := get("/metrics")
	checkPromText(t, final)
	var exported bytes.Buffer
	if err := reg.WritePrometheus(&exported); err != nil {
		t.Fatal(err)
	}
	if final != exported.String() {
		t.Errorf("final scrape diverges from post-run export:\nscrape:\n%s\nexport:\n%s", final, exported.String())
	}
	if body := get("/healthz"); !strings.Contains(body, "done") {
		t.Errorf("post-run /healthz = %q", body)
	}
}

// TestLiveDoesNotChangeResults pins the write-only contract at the
// engine level: identical Result with and without a live hub attached.
func TestLiveDoesNotChangeResults(t *testing.T) {
	plain, err := Run(wordCountConfig(4), wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var events bytes.Buffer
	cfg := wordCountConfig(4)
	cfg.Live = live.NewRun(live.NewEventLog(&events))
	wired, err := Run(cfg, wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !outputsEqual(plain, wired) {
		t.Error("live hub changed the job output")
	}
	if plain.End != wired.End {
		t.Errorf("live hub changed job end: %v vs %v", plain.End, wired.End)
	}
	if events.Len() == 0 {
		t.Error("no events recorded")
	}
}

func outputsEqual(a, b *Result) bool {
	if len(a.Output) != len(b.Output) {
		return false
	}
	for i := range a.Output {
		if a.Output[i].Key != b.Output[i].Key ||
			!bytes.Equal(a.Output[i].Value, b.Output[i].Value) ||
			a.Output[i].Global != b.Output[i].Global {
			return false
		}
	}
	return true
}
