package mapreduce

// The pluggable shuffle storage layer. A reduce task's input is a
// reduceInput — either an in-memory record slice (memInput, the
// classic path) or a spillStore holding sorted runs that may live in
// memory, on disk, or both. Which one a partition gets is a pure
// host-machine decision (ShuffleMemLimit, MemBudget); the record
// sequence every implementation yields is byte-identical, which is
// what keeps Result/trace/quality bytes independent of storage mode.
//
// Ordering invariant: every run is tagged with a priority — its map
// task index — and all merges compare (key, prio). Because one run is
// ingested exactly once and moved between memory and disk only whole,
// a given prio lives in exactly one source at any time, so merging
// arbitrary groupings of runs reproduces exactly the stable
// (key, map-index) order of the barrier engine's in-memory k-way
// merge, no matter when or how runs were spilled.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"reflect"
	"sync"

	"proger/internal/extsort"
	"proger/internal/membudget"
)

// reduceInput is a reduce task's shuffled, merge-sorted input.
// Iter may be called multiple times (retries, speculation) and
// concurrently (a speculative shuffle check can overlap the reduce
// task); each call yields an independent pass over the same records.
type reduceInput interface {
	Len() int
	Iter() (kvIter, error)
	Close() error
}

// kvIter streams records in (key, map-index) order.
type kvIter interface {
	Next() (KeyValue, bool, error)
	Close() error
}

// memInput is the in-memory reduceInput: a fully merged record slice.
type memInput struct {
	kvs []KeyValue
}

func (m memInput) Len() int              { return len(m.kvs) }
func (m memInput) Iter() (kvIter, error) { return &memIter{kvs: m.kvs}, nil }
func (m memInput) Close() error          { return nil }

type memIter struct {
	kvs []KeyValue
	pos int
}

func (it *memIter) Next() (KeyValue, bool, error) {
	if it.pos >= len(it.kvs) {
		return KeyValue{}, false, nil
	}
	kv := it.kvs[it.pos]
	it.pos++
	return kv, true, nil
}

func (it *memIter) Close() error { return nil }

// kvMemOverhead approximates the per-record bookkeeping bytes beyond
// the key/value payloads (string + slice headers, padding). Budget
// accounting is deliberately approximate — see membudget.
const kvMemOverhead = 48

// kvRunBytes estimates the resident size of one run.
func kvRunBytes(kvs []KeyValue) int64 {
	b := int64(len(kvs)) * kvMemOverhead
	for _, kv := range kvs {
		b += int64(len(kv.Key)) + int64(len(kv.Value))
	}
	return b
}

// prioKV is a record tagged with its run's merge priority.
type prioKV struct {
	prio uint64
	kv   KeyValue
}

func prioKVCmp(a, b prioKV) int {
	if a.kv.Key != b.kv.Key {
		if a.kv.Key < b.kv.Key {
			return -1
		}
		return 1
	}
	switch {
	case a.prio < b.prio:
		return -1
	case a.prio > b.prio:
		return 1
	}
	return 0
}

// spillRun is one map task's pre-sorted contribution, held in memory.
// charged marks that its bytes are recorded with the budget account; a
// forced spill moves only charged runs (an uncharged run's reservation
// is still in flight, and spilling it would corrupt the ledger).
type spillRun struct {
	prio    uint64
	kvs     []KeyValue
	bytes   int64
	charged bool
}

// spillStore is the disk-capable reduceInput. Runs are ingested whole
// (addRun); in forceDisk mode each goes straight to its own run file
// (the deterministic ShuffleMemLimit path), otherwise runs buffer in
// memory charged against the budget account, and a budget-forced spill
// merges everything buffered into one compressed run file. Iter k-way
// merges memory and disk sources by (key, prio).
type spillStore struct {
	job       string
	r         int
	parent    string // spill parent dir; "" = system temp
	forceDisk bool
	acct      *membudget.Account

	mu       sync.Mutex
	tmpDir   string
	memRuns  []*spillRun
	memBytes int64 // charged resident bytes
	files    []string
	total    int
	readers  int // live iterators; pins memory runs against spilling
	closed   bool

	// spilledRuns is the deterministic ShuffleMemLimit-driven count the
	// trace reports; forcedSpills/spilledBytes are budget-pressure
	// driven and reported only through the metrics registry.
	spilledRuns  int64
	forcedSpills int64
	spilledBytes int64
}

// newSpillStore creates a store for reduce partition r. With mgr
// non-nil (and forceDisk false) buffered bytes are charged to a fresh
// budget account whose forced-spill callback flushes the buffer.
func newSpillStore(cfg *Config, mgr *membudget.Manager, r int, forceDisk bool) *spillStore {
	st := &spillStore{job: cfg.Name, r: r, parent: cfg.SpillDir, forceDisk: forceDisk}
	if !forceDisk {
		st.acct = mgr.NewAccount(fmt.Sprintf("%s/shuffle-%d", cfg.Name, r), st.budgetSpill)
	}
	return st
}

// addRun ingests one map task's pre-sorted run for this partition.
// Safe for concurrent callers (pipelined map tasks commit in any
// order); prio disjointness keeps the merged order independent of
// ingestion order. The run is published before its bytes are charged —
// so a concurrent charge that picks this store as victim always sees a
// spillable buffer — but stays uncharged (unspillable) until the
// reservation lands, keeping the ledger exact. Self-spill during the
// charge is safe for the same reason: only settled runs move.
func (st *spillStore) addRun(prio int, kvs []KeyValue) error {
	if len(kvs) == 0 {
		return nil
	}
	b := kvRunBytes(kvs)
	run := &spillRun{prio: uint64(prio), kvs: kvs, bytes: b}
	if st.forceDisk {
		st.mu.Lock()
		defer st.mu.Unlock()
		if err := st.writeRunFileLocked([]*spillRun{run}); err != nil {
			return err
		}
		st.spilledRuns++
		st.total += len(kvs)
		return nil
	}
	st.mu.Lock()
	st.memRuns = append(st.memRuns, run)
	st.total += len(kvs)
	st.mu.Unlock()
	if err := st.acct.Charge(b); err != nil {
		st.mu.Lock()
		for i, r := range st.memRuns {
			if r == run {
				st.memRuns = append(st.memRuns[:i], st.memRuns[i+1:]...)
				st.total -= len(kvs)
				break
			}
		}
		st.mu.Unlock()
		return err
	}
	st.mu.Lock()
	run.charged = true
	st.memBytes += b
	st.mu.Unlock()
	return nil
}

// budgetSpill is the membudget callback: flush the charged buffered
// runs into one merged run file and report the bytes freed. Live
// iterators pin the buffer (their merge cursors point into it), so a
// store being read reports no progress instead of corrupting the pass.
func (st *spillStore) budgetSpill() (int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.readers > 0 || st.memBytes == 0 {
		return 0, nil
	}
	var settled, pending []*spillRun
	for _, r := range st.memRuns {
		if r.charged {
			settled = append(settled, r)
		} else {
			pending = append(pending, r)
		}
	}
	if len(settled) == 0 {
		return 0, nil
	}
	if err := st.writeRunFileLocked(settled); err != nil {
		return 0, err
	}
	freed := st.memBytes
	st.memRuns = pending
	st.memBytes = 0
	st.forcedSpills++
	st.spilledBytes += freed
	return freed, nil
}

// writeRunFileLocked merges the given runs by (key, prio) into one new
// compressed run file. A failed write removes the partial file. Caller
// holds st.mu.
func (st *spillStore) writeRunFileLocked(runs []*spillRun) error {
	if st.tmpDir == "" {
		dir, err := os.MkdirTemp(st.parent, "proger-shuffle-*")
		if err != nil {
			return fmt.Errorf("mapreduce: %s shuffle for reduce %d: %w", st.job, st.r, err)
		}
		st.tmpDir = dir
	}
	f, err := os.CreateTemp(st.tmpDir, "run-*.spill")
	if err != nil {
		return fmt.Errorf("mapreduce: %s shuffle for reduce %d: %w", st.job, st.r, err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("mapreduce: %s shuffle for reduce %d: %w", st.job, st.r, err)
	}
	pulls := make([]func() (prioKV, bool), len(runs))
	for i, run := range runs {
		run := run
		pos := 0
		pulls[i] = func() (prioKV, bool) {
			if pos >= len(run.kvs) {
				return prioKV{}, false
			}
			rec := prioKV{prio: run.prio, kv: run.kvs[pos]}
			pos++
			return rec, true
		}
	}
	merger := extsort.NewMerger(pulls, prioKVCmp)
	rw := extsort.NewRunWriter(f)
	for {
		rec, ok := merger.Next()
		if !ok {
			break
		}
		if err := rw.WriteRecord(rec.prio, rec.kv.Key, rec.kv.Value); err != nil {
			return fail(err)
		}
	}
	if err := rw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("mapreduce: %s shuffle for reduce %d: %w", st.job, st.r, err)
	}
	st.files = append(st.files, f.Name())
	return nil
}

// budgetStats reports the budget-pressure spill activity (forced spill
// count, bytes moved to disk) for the metrics registry.
func (st *spillStore) budgetStats() (int64, int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.forcedSpills, st.spilledBytes
}

// Len implements reduceInput.
func (st *spillStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// Iter implements reduceInput: an independent merged pass over all
// memory and disk runs. Concurrent passes are safe — each opens its
// own file handles, and live passes pin the memory buffer.
func (st *spillStore) Iter() (kvIter, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, fmt.Errorf("mapreduce: %s shuffle for reduce %d: Iter after Close", st.job, st.r)
	}
	it := &storeIter{st: st}
	pulls := make([]func() (prioKV, bool), 0, len(st.memRuns)+len(st.files))
	for _, run := range st.memRuns {
		run := run
		pos := 0
		pulls = append(pulls, func() (prioKV, bool) {
			if pos >= len(run.kvs) {
				return prioKV{}, false
			}
			rec := prioKV{prio: run.prio, kv: run.kvs[pos]}
			pos++
			return rec, true
		})
	}
	for _, path := range st.files {
		f, err := os.Open(path)
		if err != nil {
			it.closeFiles()
			return nil, fmt.Errorf("mapreduce: %s shuffle for reduce %d: %w", st.job, st.r, err)
		}
		it.fhs = append(it.fhs, f)
		rr := extsort.NewRunReader(f)
		pulls = append(pulls, func() (prioKV, bool) {
			seq, key, val, err := rr.Next()
			if err == io.EOF {
				return prioKV{}, false
			}
			if err != nil {
				if it.err == nil {
					it.err = fmt.Errorf("mapreduce: %s shuffle for reduce %d: %w", st.job, st.r, err)
				}
				return prioKV{}, false
			}
			return prioKV{prio: seq, kv: KeyValue{Key: key, Value: val}}, true
		})
	}
	it.merger = extsort.NewMerger(pulls, prioKVCmp)
	st.readers++
	return it, nil
}

type storeIter struct {
	st     *spillStore
	fhs    []*os.File
	merger *extsort.Merger[prioKV]
	err    error
	done   bool
}

func (it *storeIter) Next() (KeyValue, bool, error) {
	if it.err != nil {
		return KeyValue{}, false, it.err
	}
	rec, ok := it.merger.Next()
	if it.err != nil {
		return KeyValue{}, false, it.err
	}
	if !ok {
		return KeyValue{}, false, nil
	}
	return rec.kv, true, nil
}

func (it *storeIter) closeFiles() {
	for _, f := range it.fhs {
		f.Close()
	}
	it.fhs = nil
}

func (it *storeIter) Close() error {
	if it.done {
		return nil
	}
	it.done = true
	it.closeFiles()
	it.st.mu.Lock()
	it.st.readers--
	it.st.mu.Unlock()
	return nil
}

// Close implements reduceInput: removes run files, drops the buffer,
// and settles the budget account.
func (st *spillStore) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	files := st.files
	tmp := st.tmpDir
	st.files, st.tmpDir = nil, ""
	st.memRuns = nil
	st.memBytes = 0
	st.mu.Unlock()
	st.acct.Close()
	var first error
	for _, path := range files {
		if err := os.Remove(path); err != nil && first == nil && !os.IsNotExist(err) {
			first = err
		}
	}
	if tmp != "" {
		if err := os.RemoveAll(tmp); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// attemptComparer lets a task output type define value equality for
// the speculation self-check; outputs holding host resources (file
// paths, accounts) can't use reflect.DeepEqual.
type attemptComparer interface {
	attemptEqual(other any) bool
}

// discardable lets a task output release host resources when the
// attempt runtime throws it away (crashed/hung/killed attempts and
// every speculative duplicate).
type discardable interface {
	discard()
}

// attemptOutputsEqual compares two attempts' outputs, preferring the
// type's own equality over reflect.DeepEqual.
func attemptOutputsEqual[T any](a, b T) bool {
	if c, ok := any(a).(attemptComparer); ok {
		return c.attemptEqual(any(b))
	}
	return reflect.DeepEqual(a, b)
}

// discardAttemptOutput releases a discarded attempt output's host
// resources, if it holds any.
func discardAttemptOutput[T any](out T) {
	if d, ok := any(out).(discardable); ok {
		d.discard()
	}
}

// attemptEqual implements attemptComparer: two shuffle outputs are
// equal when they yield the same record sequence, regardless of
// storage mode.
func (s shuffleTaskResult) attemptEqual(other any) bool {
	o, ok := other.(shuffleTaskResult)
	if !ok {
		return false
	}
	if s.spilledRuns != o.spilledRuns {
		return false
	}
	return reduceInputsEqual(s.in, o.in)
}

// discard implements discardable.
func (s shuffleTaskResult) discard() {
	if s.in != nil {
		s.in.Close()
	}
}

// reduceInputsEqual streams both inputs and compares record by record.
// Remote inputs hold no local records — two are equal when their
// counts agree (the records themselves were proven equal worker-side,
// where duplicate executions hit the same first-write-wins run file).
func reduceInputsEqual(a, b reduceInput) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if ra, ok := a.(remoteInput); ok {
		rb, ok := b.(remoteInput)
		return ok && ra == rb
	}
	if _, ok := b.(remoteInput); ok {
		return false
	}
	if a.Len() != b.Len() {
		return false
	}
	ita, err := a.Iter()
	if err != nil {
		return false
	}
	defer ita.Close()
	itb, err := b.Iter()
	if err != nil {
		return false
	}
	defer itb.Close()
	for {
		ka, oka, ea := ita.Next()
		kb, okb, eb := itb.Next()
		if ea != nil || eb != nil || oka != okb {
			return false
		}
		if !oka {
			return true
		}
		if ka.Key != kb.Key || !bytes.Equal(ka.Value, kb.Value) {
			return false
		}
	}
}
