package mapreduce

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"proger/internal/costmodel"
)

// wordCountMapper splits values into words and emits (word, "1").
type wordCountMapper struct{ MapperBase }

func (wordCountMapper) Map(ctx *TaskContext, rec KeyValue, emit Emitter) error {
	for _, w := range strings.Fields(string(rec.Value)) {
		emit.Emit(w, []byte("1"))
	}
	return nil
}

// wordCountReducer emits (word, count).
type wordCountReducer struct{ ReducerBase }

func (wordCountReducer) Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
	ctx.Charge(ctx.Cost.PairCompare * costmodel.Units(len(values)))
	ctx.Inc("words", int64(len(values)))
	emit.Emit(key, []byte(fmt.Sprintf("%d", len(values))))
	return nil
}

func wordCountConfig(workers int) Config {
	return Config{
		Name:           "wordcount",
		NewMapper:      func() Mapper { return wordCountMapper{} },
		NewReducer:     func() Reducer { return wordCountReducer{} },
		NumMapTasks:    3,
		NumReduceTasks: 2,
		Cluster:        Cluster{Machines: 2, SlotsPerMachine: 2},
		Workers:        workers,
	}
}

func wordCountInput() []KeyValue {
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog jumps",
		"a fox and a dog",
	}
	var in []KeyValue
	for i, l := range lines {
		in = append(in, KeyValue{Key: fmt.Sprintf("%d", i), Value: []byte(l)})
	}
	return in
}

func collectCounts(res *Result) map[string]string {
	out := map[string]string{}
	for _, kv := range res.Output {
		out[kv.Key] = string(kv.Value)
	}
	return out
}

func TestWordCount(t *testing.T) {
	res, err := Run(wordCountConfig(1), wordCountInput(), 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := collectCounts(res)
	want := map[string]string{
		"the": "3", "quick": "2", "brown": "1", "fox": "2",
		"lazy": "1", "dog": "3", "jumps": "1", "a": "2", "and": "1",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("counts = %v, want %v", got, want)
	}
	if res.Counters.Get("words") != 16 {
		t.Errorf("words counter = %d, want 16", res.Counters.Get("words"))
	}
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	res1, err := Run(wordCountConfig(1), wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res4, err := Run(wordCountConfig(4), wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Output, res4.Output) {
		t.Error("output differs between 1 and 4 workers")
	}
	if res1.End != res4.End || res1.MapEnd != res4.MapEnd {
		t.Error("timeline differs between 1 and 4 workers")
	}
	if !reflect.DeepEqual(res1.Counters, res4.Counters) {
		t.Error("counters differ between 1 and 4 workers")
	}
}

func TestKeysSortedAndGroupedPerReduceTask(t *testing.T) {
	res, err := Run(wordCountConfig(2), wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Within a task, output keys must be strictly increasing (each key
	// reduced exactly once, in sorted order).
	perTask := map[int][]string{}
	for _, kv := range res.Output {
		perTask[kv.Task] = append(perTask[kv.Task], kv.Key)
	}
	for task, keys := range perTask {
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				t.Errorf("task %d keys not strictly sorted: %v", task, keys)
			}
		}
	}
	// And the partitioner must route each key to its hash partition.
	for _, kv := range res.Output {
		if want := HashPartitioner(kv.Key, 2); kv.Task != want {
			t.Errorf("key %q on task %d, want %d", kv.Key, kv.Task, want)
		}
	}
}

func TestTimelineInvariants(t *testing.T) {
	res, err := Run(wordCountConfig(1), wordCountInput(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Start != 100 {
		t.Errorf("Start = %v, want 100", res.Start)
	}
	if res.MapEnd <= res.Start {
		t.Errorf("MapEnd %v should be after Start %v (setup + startup)", res.MapEnd, res.Start)
	}
	if res.End < res.MapEnd {
		t.Errorf("End %v before MapEnd %v", res.End, res.MapEnd)
	}
	for _, kv := range res.Output {
		if kv.Global < res.MapEnd {
			t.Errorf("output at %v before reduce phase start %v", kv.Global, res.MapEnd)
		}
		if kv.Global > res.End {
			t.Errorf("output at %v after job end %v", kv.Global, res.End)
		}
		if kv.Local < 0 {
			t.Errorf("negative local time %v", kv.Local)
		}
	}
	for r, start := range res.ReduceStarts {
		if start < res.MapEnd {
			t.Errorf("reduce task %d starts at %v before barrier %v", r, start, res.MapEnd)
		}
	}
}

func TestLocalTimesNonDecreasingPerTask(t *testing.T) {
	res, err := Run(wordCountConfig(1), wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]costmodel.Units{}
	for _, kv := range res.Output {
		if kv.Local < last[kv.Task] {
			t.Errorf("task %d local time went backwards: %v after %v", kv.Task, kv.Local, last[kv.Task])
		}
		last[kv.Task] = kv.Local
	}
}

func TestScheduleTasksGreedy(t *testing.T) {
	costs := []costmodel.Units{10, 20, 5, 5}
	starts, slots, end := scheduleTasks(costs, 2, 100)
	// slot0: t0 [100,110), then t2 [110,115), then t3 [115,120)
	// slot1: t1 [100,120)
	wantStarts := []costmodel.Units{100, 100, 110, 115}
	if !reflect.DeepEqual(starts, wantStarts) {
		t.Errorf("starts = %v, want %v", starts, wantStarts)
	}
	wantSlots := []int{0, 1, 0, 0}
	if !reflect.DeepEqual(slots, wantSlots) {
		t.Errorf("slots = %v, want %v", slots, wantSlots)
	}
	if end != 120 {
		t.Errorf("end = %v, want 120", end)
	}
}

func TestScheduleTasksSingleSlot(t *testing.T) {
	starts, slots, end := scheduleTasks([]costmodel.Units{1, 2, 3}, 1, 0)
	if !reflect.DeepEqual(starts, []costmodel.Units{0, 1, 3}) {
		t.Errorf("starts = %v", starts)
	}
	if !reflect.DeepEqual(slots, []int{0, 0, 0}) {
		t.Errorf("slots = %v", slots)
	}
	if end != 6 {
		t.Errorf("end = %v, want 6", end)
	}
}

func TestSplitInput(t *testing.T) {
	in := make([]KeyValue, 10)
	for i := range in {
		in[i].Key = fmt.Sprintf("%d", i)
	}
	splits := splitInput(in, 3)
	if len(splits) != 3 {
		t.Fatalf("splits = %d", len(splits))
	}
	total := 0
	for _, s := range splits {
		total += len(s)
		if len(s) < 3 || len(s) > 4 {
			t.Errorf("split size %d not near-equal", len(s))
		}
	}
	if total != 10 {
		t.Errorf("splits cover %d records, want 10", total)
	}
	// More tasks than records: some splits empty, still covers all.
	splits = splitInput(in[:2], 5)
	total = 0
	for _, s := range splits {
		total += len(s)
	}
	if total != 2 {
		t.Errorf("sparse splits cover %d, want 2", total)
	}
}

func TestHashPartitionerRange(t *testing.T) {
	f := func(key string) bool {
		for _, r := range []int{1, 2, 7, 64} {
			p := HashPartitioner(key, r)
			if p < 0 || p >= r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashPartitionerSpread(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[HashPartitioner(fmt.Sprintf("key-%d", i), 8)]++
	}
	for p, c := range counts {
		if c < 500 {
			t.Errorf("partition %d got only %d of 8000 keys", p, c)
		}
	}
}

type failingMapper struct{ MapperBase }

func (failingMapper) Map(*TaskContext, KeyValue, Emitter) error {
	return errors.New("boom")
}

func TestMapErrorPropagates(t *testing.T) {
	cfg := wordCountConfig(2)
	cfg.NewMapper = func() Mapper { return failingMapper{} }
	_, err := Run(cfg, wordCountInput(), 0)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("want map error, got %v", err)
	}
}

type failingReducer struct{ ReducerBase }

func (failingReducer) Reduce(*TaskContext, string, [][]byte, Emitter) error {
	return errors.New("reduce-boom")
}

func TestReduceErrorPropagates(t *testing.T) {
	cfg := wordCountConfig(2)
	cfg.NewReducer = func() Reducer { return failingReducer{} }
	_, err := Run(cfg, wordCountInput(), 0)
	if err == nil || !strings.Contains(err.Error(), "reduce-boom") {
		t.Errorf("want reduce error, got %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	base := wordCountConfig(1)
	cases := []func(*Config){
		func(c *Config) { c.NewMapper = nil },
		func(c *Config) { c.NewReducer = nil },
		func(c *Config) { c.NumMapTasks = 0 },
		func(c *Config) { c.NumReduceTasks = -1 },
		func(c *Config) { c.Cluster.Machines = 0 },
		func(c *Config) { c.Cluster.SlotsPerMachine = 0 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := Run(cfg, nil, 0); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestValuesArriveInMapTaskOrder(t *testing.T) {
	// Two map tasks emit to the same key; values must arrive in map
	// task order (task 0's values first), which is what makes shuffles
	// deterministic.
	cfg := Config{
		Name: "order",
		NewMapper: func() Mapper {
			return orderMapper{}
		},
		NewReducer:     func() Reducer { return orderReducer{} },
		NumMapTasks:    2,
		NumReduceTasks: 1,
		Cluster:        Cluster{Machines: 1, SlotsPerMachine: 2},
	}
	in := []KeyValue{{Key: "a", Value: []byte("first")}, {Key: "b", Value: []byte("second")}}
	res, err := Run(cfg, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || string(res.Output[0].Value) != "first,second" {
		t.Errorf("output = %v", res.Output)
	}
}

type orderMapper struct{ MapperBase }

func (orderMapper) Map(ctx *TaskContext, rec KeyValue, emit Emitter) error {
	emit.Emit("k", rec.Value)
	return nil
}

type orderReducer struct{ ReducerBase }

func (orderReducer) Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = string(v)
	}
	emit.Emit(key, []byte(strings.Join(parts, ",")))
	return nil
}

// chargingReducer charges a fixed cost before each of several emits so
// Segments has boundaries to cut at.
type chargingReducer struct{ ReducerBase }

func (chargingReducer) Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
	for i := 0; i < 5; i++ {
		ctx.Charge(10)
		emit.Emit(fmt.Sprintf("%s-%d", key, i), nil)
	}
	return nil
}

func TestSegments(t *testing.T) {
	cfg := Config{
		Name:           "segments",
		NewMapper:      func() Mapper { return orderMapper{} },
		NewReducer:     func() Reducer { return chargingReducer{} },
		NumMapTasks:    1,
		NumReduceTasks: 1,
		Cluster:        Cluster{Machines: 1, SlotsPerMachine: 1},
	}
	res, err := Run(cfg, []KeyValue{{Key: "x", Value: []byte("v")}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	segs := res.Segments(0, 20)
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}
	// Every record must fall inside its segment bounds, and segments
	// must be contiguous.
	recCount := 0
	for i, s := range segs {
		if s.Index != i {
			t.Errorf("segment %d has index %d", i, s.Index)
		}
		for _, r := range s.Records {
			recCount++
			if r.Local < s.Start || r.Local >= s.End {
				t.Errorf("record at %v outside segment [%v,%v)", r.Local, s.Start, s.End)
			}
		}
		if i > 0 && s.Start != segs[i-1].End {
			t.Errorf("gap between segments %d and %d", i-1, i)
		}
	}
	if recCount != len(res.Output) {
		t.Errorf("segments hold %d records, output has %d", recCount, len(res.Output))
	}
}

func TestSegmentsPanicsOnBadAlpha(t *testing.T) {
	res := &Result{}
	defer func() {
		if recover() == nil {
			t.Error("Segments(alpha=0) should panic")
		}
	}()
	res.Segments(0, 0)
}

func TestChargePanicsOnNegative(t *testing.T) {
	ctx := &TaskContext{}
	defer func() {
		if recover() == nil {
			t.Error("negative charge should panic")
		}
	}()
	ctx.Charge(-1)
}

func TestCountersMergeAndNames(t *testing.T) {
	a := Counters{"x": 1, "y": 2}
	b := Counters{"y": 3, "z": 4}
	a.Merge(b)
	if a.Get("y") != 5 || a.Get("z") != 4 || a.Get("x") != 1 {
		t.Errorf("merge result %v", a)
	}
	if !reflect.DeepEqual(a.Names(), []string{"x", "y", "z"}) {
		t.Errorf("names = %v", a.Names())
	}
}

func TestTaskTypeString(t *testing.T) {
	if MapTask.String() != "map" || ReduceTask.String() != "reduce" {
		t.Error("TaskType strings wrong")
	}
}

func TestMoreReduceTasksThanSlots(t *testing.T) {
	cfg := wordCountConfig(1)
	cfg.Cluster = Cluster{Machines: 1, SlotsPerMachine: 1}
	cfg.NumReduceTasks = 4
	res, err := Run(cfg, wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// With one slot, reduce tasks run back to back: starts strictly
	// increasing (every task has at least startup cost).
	for i := 1; i < len(res.ReduceStarts); i++ {
		if res.ReduceStarts[i] <= res.ReduceStarts[i-1] {
			t.Errorf("reduce starts not serialized: %v", res.ReduceStarts)
		}
	}
	got := collectCounts(res)
	if got["the"] != "3" {
		t.Errorf("wordcount broken under serialization: %v", got)
	}
}

func TestMergeSortedRunsStableProperty(t *testing.T) {
	// Property: merging key-sorted runs is exactly a stable sort of
	// their concatenation — equal keys surface in run (map-task) order,
	// then in within-run order. Run counts 1, 2, and ≥3 exercise the
	// passthrough, two-way, and loser-tree paths.
	f := func(seed int64, runCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := []string{"a", "b", "c", "d"}
		k := int(runCount%7) + 1
		runs := make([][]KeyValue, k)
		total := 0
		for r := range runs {
			n := rng.Intn(6) + 1 // runs are non-empty by construction
			run := make([]KeyValue, n)
			for i := range run {
				run[i] = KeyValue{
					Key:   keys[rng.Intn(len(keys))],
					Value: []byte(fmt.Sprintf("%d:%d", r, i)), // provenance tag
				}
			}
			sort.SliceStable(run, func(i, j int) bool { return run[i].Key < run[j].Key })
			runs[r] = run
			total += n
		}
		want := make([]KeyValue, 0, total)
		for _, run := range runs {
			want = append(want, run...)
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })
		return reflect.DeepEqual(mergeSortedRuns(runs, total), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWordCountAgainstReferenceProperty(t *testing.T) {
	// Property: for random inputs and random task/cluster shapes, the
	// engine's word count equals a straightforward sequential count.
	f := func(seed int64, nLines uint8, mapTasks, reduceTasks, machines uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		words := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
		var in []KeyValue
		ref := map[string]int{}
		for i := 0; i < int(nLines%40)+1; i++ {
			var line []string
			for j := 0; j < rng.Intn(8); j++ {
				w := words[rng.Intn(len(words))]
				line = append(line, w)
				ref[w]++
			}
			in = append(in, KeyValue{Key: fmt.Sprint(i), Value: []byte(strings.Join(line, " "))})
		}
		cfg := Config{
			Name:           "prop",
			NewMapper:      func() Mapper { return wordCountMapper{} },
			NewReducer:     func() Reducer { return wordCountReducer{} },
			NumMapTasks:    int(mapTasks%5) + 1,
			NumReduceTasks: int(reduceTasks%5) + 1,
			Cluster:        Cluster{Machines: int(machines%4) + 1, SlotsPerMachine: 2},
		}
		res, err := Run(cfg, in, 0)
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, kv := range res.Output {
			n, err := strconv.Atoi(string(kv.Value))
			if err != nil {
				return false
			}
			got[kv.Key] = n
		}
		if len(got) != len(ref) {
			return false
		}
		for w, n := range ref {
			if got[w] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
