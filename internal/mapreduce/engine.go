package mapreduce

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proger/internal/costmodel"
	"proger/internal/faults"
	"proger/internal/membudget"
	"proger/internal/obs"
	"proger/internal/obs/live"
	"proger/internal/obs/quality"
)

// Run executes one MapReduce job. Input records are split contiguously
// among map tasks. startAt is the global time at which the job is
// submitted (chain jobs by passing the previous job's End).
//
// Execution is deterministic: identical inputs and config produce an
// identical Result, including all timestamps, regardless of Workers.
func Run(cfg Config, input []KeyValue, startAt costmodel.Units) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Partition == nil {
		cfg.Partition = HashPartitioner
	}
	if cfg.Cost == (costmodel.Model{}) {
		cfg.Cost = costmodel.Default()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	tracing := cfg.Trace != nil
	fr := newFaultRuntime(&cfg)
	splits := splitInput(input, cfg.NumMapTasks)

	// Live introspection: register the job's task DAG and hand every
	// execution layer the publication handle. lj is nil when live
	// introspection is off — all its methods no-op — and nothing below
	// ever reads it back, so it cannot perturb the deterministic run.
	lj := cfg.Live.StartJob(cfg.Name, cfg.NumMapTasks, cfg.NumReduceTasks)
	if fr != nil {
		fr.live = lj
	}

	// Task execution: both engines fill an identical phaseOutputs — the
	// barrier engine with three phase-pool passes, the pipelined engine
	// with a dependency-driven task graph — so everything below this
	// point (the simulated schedule, Result, spans, metrics, quality)
	// is engine-independent by construction.
	var (
		po  *phaseOutputs
		err error
	)
	if rt, ok := transportOf(&cfg).(RemoteTransport); ok {
		po, err = runRemoteJob(&cfg, rt, fr, lj, workers, splits)
	} else if cfg.Execution == ExecBarrier {
		po, err = runBarrierEngine(&cfg, fr, lj, workers, splits)
	} else {
		po, err = runPipelinedEngine(&cfg, fr, lj, workers, splits)
	}
	if po != nil {
		// Reduce inputs may hold host resources (spill files, budget
		// accounts); settle them even when an engine errors out partway.
		defer func() {
			for _, s := range po.shufRes {
				if s.in != nil {
					s.in.Close()
				}
			}
		}()
	}
	if err != nil {
		lj.End(err)
		return nil, err
	}
	mapRes, mapCosts := po.mapRes, po.mapCosts
	reduceRes, reduceCosts := po.reduceRes, po.reduceCosts
	mapWall, shufWall, reduceWall := po.mapWall, po.shufWall, po.reduceWall

	jobStart := startAt
	mapPhaseStart := jobStart + cfg.Cost.JobSetup
	mapStarts, mapSlots, mapEnd := scheduleTasks(mapCosts, cfg.Cluster.Slots(), mapPhaseStart)

	reduceLens := make([]int, cfg.NumReduceTasks)
	spilledRuns := make([]int64, cfg.NumReduceTasks)
	for r, s := range po.shufRes {
		if s.in != nil {
			reduceLens[r] = s.in.Len()
		}
		spilledRuns[r] = s.spilledRuns
	}
	reduceOuts := make([][]TimedKV, cfg.NumReduceTasks)
	for i, r := range reduceRes {
		reduceOuts[i] = r.out
	}

	reduceStarts, reduceSlots, end := scheduleTasks(reduceCosts, cfg.Cluster.Slots(), mapEnd)

	// Publish quality observations: rebase each committed task's local
	// clocks onto the scheduled timeline and feed the recorder serially
	// in task-index order — deterministic regardless of Workers, and
	// fault-immune because qobs rode inside the committed attempt's
	// result (exactly like output records and counters).
	if q := cfg.Quality; q.Enabled() {
		for i, r := range reduceRes {
			for _, o := range r.qobs {
				o.Task = i
				o.Start += reduceStarts[i]
				o.End += reduceStarts[i]
				q.ObserveBlock(o)
			}
		}
	}

	// Stamp global times and flatten output in (task, emission) order.
	var total int
	for _, out := range reduceOuts {
		total += len(out)
	}
	output := make([]TimedKV, 0, total)
	for r, out := range reduceOuts {
		for _, kv := range out {
			kv.Global = reduceStarts[r] + kv.Local
			output = append(output, kv)
		}
	}

	counters := Counters{}
	for _, r := range mapRes {
		counters.Merge(r.counters)
	}
	for _, r := range reduceRes {
		counters.Merge(r.counters)
	}
	res := &Result{
		Output:          output,
		Start:           jobStart,
		End:             end,
		MapEnd:          mapEnd,
		Counters:        counters,
		MapTaskCosts:    mapCosts,
		ReduceTaskCosts: reduceCosts,
		MapStarts:       mapStarts,
		ReduceStarts:    reduceStarts,
		MapSlots:        mapSlots,
		ReduceSlots:     reduceSlots,
	}

	if tracing {
		mapSpans := make([][]obs.Span, cfg.NumMapTasks)
		for i, r := range mapRes {
			mapSpans[i] = r.spans
		}
		reduceSpans := make([][]obs.Span, cfg.NumReduceTasks)
		for i, r := range reduceRes {
			reduceSpans[i] = r.spans
		}
		emitJobSpans(&cfg, fr, res, splits, reduceLens, spilledRuns,
			mapSpans, reduceSpans, mapWall, shufWall, reduceWall)
	}
	if m := cfg.Metrics; m != nil {
		m.AddCounters(counters)
		// Spill counts depend on host knobs (ShuffleMemLimit), so they
		// live in the metrics registry, not in the deterministic
		// Result.Counters.
		var spilledTotal int64
		for _, n := range spilledRuns {
			spilledTotal += n
		}
		m.Counter(CounterShuffleSpilledRuns).Add(spilledTotal)
		if cfg.MemBudget != nil {
			// Budget-forced spill stats are pure memory-pressure artifacts
			// of the host — registry-only, like the spill counts above.
			var forced, bytes int64
			for _, s := range po.shufRes {
				if st, ok := s.in.(*spillStore); ok {
					f, b := st.budgetStats()
					forced += f
					bytes += b
				}
			}
			m.Counter(CounterBudgetForcedSpills).Add(forced)
			m.Counter(CounterBudgetSpilledBytes).Add(bytes)
		}
		h := m.Histogram(HistTaskCostUnits)
		for _, c := range mapCosts {
			h.Observe(float64(c))
		}
		for _, c := range reduceCosts {
			h.Observe(float64(c))
		}
		if fr != nil {
			// Attempt accounting, like spill counts, reflects chaos/host
			// knobs (the injector and retry policy), so it reports only
			// through the registry — Result stays byte-identical to the
			// fault-free run.
			st := fr.stats()
			m.Counter(CounterTaskAttempts).Add(st.started)
			m.Counter(CounterTaskRetries).Add(st.retried)
			m.Counter(CounterTaskSpeculations).Add(st.speculated)
			m.Counter(CounterTaskAttemptsKilled).Add(st.killed)
		}
	}
	lj.End(nil)
	return res, nil
}

// phaseOutputs is everything task execution produces, indexed by task.
// Both engines (barrier and pipelined) must fill it identically: the
// finalize half of Run derives the simulated schedule, Result, spans,
// metrics, and quality exports from it, which is what keeps the two
// engines byte-equivalent.
type phaseOutputs struct {
	mapRes      []mapTaskResult
	mapCosts    []costmodel.Units
	shufRes     []shuffleTaskResult
	reduceRes   []reduceTaskResult
	reduceCosts []costmodel.Units
	// Host wall-clock measurements per stage; allocated (and recorded)
	// only when tracing. Wall data never feeds the simulated timeline.
	mapWall, shufWall, reduceWall []wallSpan
}

func newPhaseOutputs(cfg *Config) *phaseOutputs {
	po := &phaseOutputs{}
	if cfg.Trace != nil {
		po.mapWall = make([]wallSpan, cfg.NumMapTasks)
		po.shufWall = make([]wallSpan, cfg.NumReduceTasks)
		po.reduceWall = make([]wallSpan, cfg.NumReduceTasks)
	}
	return po
}

// mapExec, shuffleExec, and reduceExec build the deterministic
// per-task execution closures shared by the barrier engine, the
// pipelined engine, and the speculation pass. Each records a host wall
// span when `wall` is non-nil (tracing); re-executions (retries,
// speculation) overwrite the wall measurement, never the committed
// deterministic output. Live task-state publication sits here too —
// the one wrap point both engines and every attempt share — so each
// *execution* (first attempt, retry, speculative backup) reports its
// own start/done/failed transition.
func mapExec(cfg *Config, lj *live.Job, splits [][]KeyValue, wall []wallSpan) func(i int) (mapTaskResult, costmodel.Units, error) {
	return func(i int) (mapTaskResult, costmodel.Units, error) {
		lj.TaskStart(live.PhaseMap, i)
		var w0 time.Time
		if wall != nil {
			w0 = time.Now()
		}
		out, cost, counters, spans, err := runMapTask(cfg, i, splits[i])
		if err != nil {
			lj.TaskFailed(live.PhaseMap, i, err)
			return mapTaskResult{}, 0, err
		}
		if wall != nil {
			wall[i] = wallSpan{w0, time.Since(w0)}
		}
		lj.TaskDone(live.PhaseMap, i, float64(cost), len(splits[i]))
		return mapTaskResult{out: out, counters: counters, spans: spans}, cost, nil
	}
}

func shuffleExec(cfg *Config, lj *live.Job, mapOuts [][][]KeyValue, wall []wallSpan) func(r int) (shuffleTaskResult, costmodel.Units, error) {
	return func(r int) (shuffleTaskResult, costmodel.Units, error) {
		lj.TaskStart(live.PhaseShuffle, r)
		var w0 time.Time
		if wall != nil {
			w0 = time.Now()
		}
		in, spilled, err := shuffleForTask(cfg, mapOuts, r)
		if err != nil {
			lj.TaskFailed(live.PhaseShuffle, r, err)
			return shuffleTaskResult{}, 0, err
		}
		if wall != nil {
			wall[r] = wallSpan{w0, time.Since(w0)}
		}
		// The merge has no scheduled cost of its own (the reduce tasks
		// price shuffling on the simulated clock); the attempt runtime
		// keys timeouts and speculation off its simulated sort cost.
		cost := cfg.Cost.ShuffleSortCost(in.Len())
		lj.SpilledRuns(r, spilled)
		lj.TaskDone(live.PhaseShuffle, r, float64(cost), in.Len())
		return shuffleTaskResult{in: in, spilledRuns: spilled}, cost, nil
	}
}

func reduceExec(cfg *Config, lj *live.Job, shufRes []shuffleTaskResult, wall []wallSpan) func(i int) (reduceTaskResult, costmodel.Units, error) {
	return func(i int) (reduceTaskResult, costmodel.Units, error) {
		lj.TaskStart(live.PhaseReduce, i)
		var w0 time.Time
		if wall != nil {
			w0 = time.Now()
		}
		out, cost, counters, spans, qobs, err := runReduceTask(cfg, i, shufRes[i].in)
		if err != nil {
			lj.TaskFailed(live.PhaseReduce, i, err)
			return reduceTaskResult{}, 0, err
		}
		if wall != nil {
			wall[i] = wallSpan{w0, time.Since(w0)}
		}
		records := 0
		if shufRes[i].in != nil {
			records = shufRes[i].in.Len()
		}
		lj.TaskDone(live.PhaseReduce, i, float64(cost), records)
		return reduceTaskResult{out: out, counters: counters, spans: spans, qobs: qobs}, cost, nil
	}
}

// runBarrierEngine is the reference execution: three fully barriered
// phases (map → shuffle → reduce), each a worker-pool pass over its
// tasks. The shuffle stage stably k-way merges each partition's
// pre-sorted map runs (ties to the lower map-task index, reproducing
// the order a stable sort of the map-order concatenation would give) —
// in memory, or through the external spill-and-merge sorter when over
// the memory limit.
func runBarrierEngine(cfg *Config, fr *faultRuntime, lj *live.Job, workers int, splits [][]KeyValue) (*phaseOutputs, error) {
	po := newPhaseOutputs(cfg)
	var err error
	po.mapRes, po.mapCosts, err = runPhase(fr, faults.Map, workers, cfg.NumMapTasks,
		mapExec(cfg, lj, splits, po.mapWall))
	if err != nil {
		return po, err
	}
	mapOuts := make([][][]KeyValue, cfg.NumMapTasks) // [task][partition][]kv
	for i, r := range po.mapRes {
		mapOuts[i] = r.out
	}
	// The barrier engine materializes every map output before the shuffle
	// starts — charge that residency so the budget can squeeze other
	// holders (shuffle stores, blocking stats) to compensate. The account
	// is unspillable (the engine's structure requires the bytes) and is
	// settled once the shuffle stores own the data.
	var mapAcct *membudget.Account
	if cfg.MemBudget != nil {
		mapAcct = cfg.MemBudget.NewAccount(cfg.Name+"/map-output", nil)
		var held int64
		for _, mo := range mapOuts {
			for _, p := range mo {
				held += kvRunBytes(p)
			}
		}
		if err := mapAcct.Charge(held); err != nil {
			return po, err
		}
	}
	defer mapAcct.Close()
	po.shufRes, _, err = runPhase(fr, faults.Shuffle, workers, cfg.NumReduceTasks,
		shuffleExec(cfg, lj, mapOuts, po.shufWall))
	if err != nil {
		return po, err
	}
	mapAcct.Close()
	po.reduceRes, po.reduceCosts, err = runPhase(fr, faults.Reduce, workers, cfg.NumReduceTasks,
		reduceExec(cfg, lj, po.shufRes, po.reduceWall))
	if err != nil {
		return po, err
	}
	return po, nil
}

// mapTaskResult, shuffleTaskResult, and reduceTaskResult bundle each
// phase's deterministic per-task outcome for the attempt runtime —
// committed outputs are compared byte-for-byte across attempts during
// speculation, so host wall measurements stay outside.
type mapTaskResult struct {
	out      [][]KeyValue
	counters Counters
	spans    []obs.Span
	// remote carries the wire-form result when the task executed on a
	// remote transport (nil for local execution); the master's graph
	// nodes collect these for the end-of-job broadcast.
	remote *RemoteTaskResult
}

type shuffleTaskResult struct {
	in          reduceInput
	spilledRuns int64
	remote      *RemoteTaskResult
}

type reduceTaskResult struct {
	out      []TimedKV
	counters Counters
	spans    []obs.Span
	qobs     []quality.BlockObs
	remote   *RemoteTaskResult
}

// wallSpan is a host wall-clock measurement of one engine stage.
type wallSpan struct {
	start time.Time
	dur   time.Duration
}

// emitJobSpans publishes the job's timeline to the tracer: one span
// per map/reduce task and per shuffle merge, plus every task-local
// span recorded through TaskContext.Span, rebased from the task-local
// clock onto the global simulated timeline. The shuffle-merge spans
// carry the host wall time of the real merge; their simulated position
// is the map barrier (the reduce tasks separately account shuffle cost
// on the simulated clock as task-local "shuffle" spans). With the
// attempt runtime active, every task attempt additionally gets an
// "attempt" span on the shadow attempt timeline.
func emitJobSpans(cfg *Config, fr *faultRuntime, res *Result, splits [][]KeyValue, reduceLens []int, spilledRuns []int64,
	mapSpans, reduceSpans [][]obs.Span, mapWall, shufWall, reduceWall []wallSpan) {
	tr := cfg.Trace
	pid := tr.PID(cfg.Name)
	rebase := func(spans []obs.Span, tid int, start costmodel.Units) {
		for _, s := range spans {
			s.PID, s.TID = pid, tid
			s.Start += start
			tr.Add(s)
		}
	}
	for i, cost := range res.MapTaskCosts {
		tr.Add(obs.Span{
			Cat: "map", Name: fmt.Sprintf("map %d", i),
			PID: pid, TID: res.MapSlots[i],
			Start: res.MapStarts[i], Dur: cost,
			WallStart: mapWall[i].start, WallDur: mapWall[i].dur,
			Args: []obs.Arg{obs.A("records", len(splits[i]))},
		})
		rebase(mapSpans[i], res.MapSlots[i], res.MapStarts[i])
	}
	for r := range reduceLens {
		tr.Add(obs.Span{
			Cat: "shuffle", Name: fmt.Sprintf("shuffle merge r%d (host)", r),
			PID: pid, TID: res.ReduceSlots[r],
			Start: res.MapEnd, Dur: 0,
			WallStart: shufWall[r].start, WallDur: shufWall[r].dur,
			Args: []obs.Arg{obs.A("records", reduceLens[r]), obs.A("spilled_runs", spilledRuns[r])},
		})
	}
	for i, cost := range res.ReduceTaskCosts {
		tr.Add(obs.Span{
			Cat: "reduce", Name: fmt.Sprintf("reduce %d", i),
			PID: pid, TID: res.ReduceSlots[i],
			Start: res.ReduceStarts[i], Dur: cost,
			WallStart: reduceWall[i].start, WallDur: reduceWall[i].dur,
			Args: []obs.Arg{obs.A("records", reduceLens[i])},
		})
		rebase(reduceSpans[i], res.ReduceSlots[i], res.ReduceStarts[i])
	}
	if fr != nil {
		fr.emitAttemptSpans(tr, pid, faults.Map, func(t int) (costmodel.Units, int) {
			return res.MapStarts[t], res.MapSlots[t]
		})
		fr.emitAttemptSpans(tr, pid, faults.Shuffle, func(t int) (costmodel.Units, int) {
			return res.MapEnd, res.ReduceSlots[t]
		})
		fr.emitAttemptSpans(tr, pid, faults.Reduce, func(t int) (costmodel.Units, int) {
			return res.ReduceStarts[t], res.ReduceSlots[t]
		})
	}
}

// shuffleForTask assembles reduce task r's sorted input by merging the
// pre-sorted per-partition runs the map tasks produced, also reporting
// how many runs went through the deterministic (ShuffleMemLimit-driven)
// spiller. Storage mode is a host decision with no effect on the record
// sequence: an in-memory merge, a forced-to-disk store (ShuffleMemLimit
// exceeded), or a budget-governed store that buffers in memory until
// the process-wide manager squeezes it out.
func shuffleForTask(cfg *Config, mapOuts [][][]KeyValue, r int) (reduceInput, int64, error) {
	var n, nonEmpty int
	for m := 0; m < cfg.NumMapTasks; m++ {
		if len(mapOuts[m][r]) > 0 {
			nonEmpty++
			n += len(mapOuts[m][r])
		}
	}
	if nonEmpty == 1 && cfg.MemBudget == nil {
		// Single-contributor partition: the run is already the reduce
		// input, so skip the merge (and spill) machinery entirely. The
		// run is aliased, not copied — reduce inputs are read-only.
		for m := 0; m < cfg.NumMapTasks; m++ {
			if len(mapOuts[m][r]) > 0 {
				return memInput{kvs: mapOuts[m][r]}, 0, nil
			}
		}
	}
	if cfg.ShuffleMemLimit > 0 && n > cfg.ShuffleMemLimit && nonEmpty > 1 {
		// Deterministic spill: every run goes to disk, exactly as many
		// runs as contribute — the count the trace reports.
		st := newSpillStore(cfg, nil, r, true)
		if err := addPartitionRuns(st, cfg, mapOuts, r); err != nil {
			st.Close()
			return nil, 0, err
		}
		return st, st.spilledRuns, nil
	}
	if cfg.MemBudget != nil {
		// Budget-governed store: runs buffer in memory charged against
		// the process-wide budget; pressure (not this job's config)
		// decides what actually reaches disk, so the deterministic
		// spilled-run count stays zero.
		st := newSpillStore(cfg, cfg.MemBudget, r, false)
		if err := addPartitionRuns(st, cfg, mapOuts, r); err != nil {
			st.Close()
			return nil, 0, err
		}
		return st, 0, nil
	}
	runs := make([][]KeyValue, 0, nonEmpty)
	for m := 0; m < cfg.NumMapTasks; m++ {
		if len(mapOuts[m][r]) > 0 {
			runs = append(runs, mapOuts[m][r])
		}
	}
	return memInput{kvs: mergeSortedRuns(runs, n)}, 0, nil
}

// addPartitionRuns feeds every map task's partition-r run into the
// store, tagged with its map index as merge priority.
func addPartitionRuns(st *spillStore, cfg *Config, mapOuts [][][]KeyValue, r int) error {
	for m := 0; m < cfg.NumMapTasks; m++ {
		if err := st.addRun(m, mapOuts[m][r]); err != nil {
			return err
		}
	}
	return nil
}

// mergeSortedRuns stably merges key-sorted runs given in priority
// (map-task) order; total is the combined length. Equal keys surface in
// run order, then in within-run order — byte-identical to stably
// sorting the concatenation of the runs.
func mergeSortedRuns(runs [][]KeyValue, total int) []KeyValue {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	case 2:
		// Two-way fast path: the common small-job shape.
		return mergeTwo(runs[0], runs[1])
	}
	// Index-based loser tree over the run cursors: the same tournament
	// extsort.Merger plays, specialized to slice sources so the hot loop
	// avoids pull closures and record copies. Leaf s sits at node k+s;
	// tree[1..k-1] store match losers, tree[0] the winner.
	k := len(runs)
	cursors := make([]int, k)
	heads := make([]string, k) // current key per run; done runs hold ""
	done := make([]bool, k)
	for s, run := range runs {
		heads[s] = run[0].Key // runs are non-empty by construction
	}
	beats := func(a, b int) bool {
		if done[a] || done[b] {
			return !done[a]
		}
		if heads[a] != heads[b] {
			return heads[a] < heads[b]
		}
		return a < b // ties go to the earlier map task
	}
	tree := make([]int, k)
	winners := make([]int, 2*k)
	for s := 0; s < k; s++ {
		winners[k+s] = s
	}
	for n := k - 1; n >= 1; n-- {
		a, b := winners[2*n], winners[2*n+1]
		if beats(a, b) {
			winners[n], tree[n] = a, b
		} else {
			winners[n], tree[n] = b, a
		}
	}
	tree[0] = winners[1]

	out := make([]KeyValue, 0, total)
	for len(out) < total {
		s := tree[0]
		out = append(out, runs[s][cursors[s]])
		cursors[s]++
		if cursors[s] < len(runs[s]) {
			heads[s] = runs[s][cursors[s]].Key
		} else {
			heads[s] = ""
			done[s] = true
		}
		winner := s
		for n := (k + s) / 2; n >= 1; n /= 2 {
			if beats(tree[n], winner) {
				winner, tree[n] = tree[n], winner
			}
		}
		tree[0] = winner
	}
	return out
}

// mergeTwo stably merges two key-sorted runs; a takes ties (it must
// hold the lower map-task range). An empty side aliases the other run
// unchanged — reduce inputs are read-only, so sharing is safe — which
// makes single-contributor merges free. Pairwise merges of adjacent
// map-index ranges compose to exactly the k-way stable merge order,
// which is what lets the pipelined engine assemble a partition
// incrementally without changing a byte of the result.
func mergeTwo(a, b []KeyValue) []KeyValue {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]KeyValue, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Key <= b[j].Key { // ties go to the earlier map task
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// splitInput divides input into n contiguous, near-equal splits.
func splitInput(input []KeyValue, n int) [][]KeyValue {
	splits := make([][]KeyValue, n)
	total := len(input)
	for i := 0; i < n; i++ {
		lo := total * i / n
		hi := total * (i + 1) / n
		splits[i] = input[lo:hi]
	}
	return splits
}

// scheduleTasks assigns tasks (in index order) to the earliest-free of
// `slots` slots, all free at phaseStart, returning each task's start
// time, the slot it ran on, and the phase end time. This mirrors
// Hadoop's slot scheduler with speculative execution disabled (§VI-A1).
func scheduleTasks(costs []costmodel.Units, slots int, phaseStart costmodel.Units) (starts []costmodel.Units, slotOf []int, phaseEnd costmodel.Units) {
	free := make([]costmodel.Units, slots)
	for i := range free {
		free[i] = phaseStart
	}
	starts = make([]costmodel.Units, len(costs))
	slotOf = make([]int, len(costs))
	phaseEnd = phaseStart
	for t, c := range costs {
		best := 0
		for s := 1; s < slots; s++ {
			if free[s] < free[best] {
				best = s
			}
		}
		starts[t] = free[best]
		slotOf[t] = best
		free[best] += c
		if free[best] > phaseEnd {
			phaseEnd = free[best]
		}
	}
	return starts, slotOf, phaseEnd
}

// mapEmitter buffers map output per partition, charging emission cost.
type mapEmitter struct {
	ctx       *TaskContext
	cfg       *Config
	partition Partitioner
	out       [][]KeyValue
}

// Emit implements Emitter.
func (e *mapEmitter) Emit(key string, value []byte) {
	e.ctx.Charge(e.cfg.Cost.EmitRecord)
	p := e.partition(key, e.cfg.NumReduceTasks)
	if p < 0 || p >= e.cfg.NumReduceTasks {
		panic(fmt.Sprintf("mapreduce: partitioner returned %d for %d reduce tasks", p, e.cfg.NumReduceTasks))
	}
	e.out[p] = append(e.out[p], KeyValue{Key: key, Value: value})
}

func runMapTask(cfg *Config, index int, split []KeyValue) ([][]KeyValue, costmodel.Units, Counters, []obs.Span, error) {
	ctx := &TaskContext{
		Job:       cfg.Name,
		Type:      MapTask,
		Index:     index,
		NumReduce: cfg.NumReduceTasks,
		Side:      cfg.Side,
		Cost:      cfg.Cost,
		counters:  Counters{},
		tracing:   cfg.Trace != nil,
	}
	ctx.Charge(cfg.Cost.TaskStartup)
	mapper := cfg.NewMapper()
	emitter := &mapEmitter{ctx: ctx, cfg: cfg, partition: cfg.Partition, out: make([][]KeyValue, cfg.NumReduceTasks)}
	if err := mapper.Setup(ctx); err != nil {
		return nil, 0, nil, nil, fmt.Errorf("mapreduce: %s map task %d setup: %w", cfg.Name, index, err)
	}
	for _, rec := range split {
		ctx.Charge(cfg.Cost.ReadRecord)
		if err := mapper.Map(ctx, rec, emitter); err != nil {
			return nil, 0, nil, nil, fmt.Errorf("mapreduce: %s map task %d: %w", cfg.Name, index, err)
		}
	}
	if err := mapper.Cleanup(ctx, emitter); err != nil {
		return nil, 0, nil, nil, fmt.Errorf("mapreduce: %s map task %d cleanup: %w", cfg.Name, index, err)
	}
	var outRecs int
	for _, p := range emitter.out {
		outRecs += len(p)
	}
	ctx.Inc(CounterMapInRecords, int64(len(split)))
	ctx.Inc(CounterMapOutRecords, int64(outRecs))
	// Map-side sort: leave every partition stably key-sorted so the
	// shuffle can merge runs instead of re-sorting concatenations. The
	// sort is real-machine work the simulation prices on the reduce side
	// (ShuffleSortCost), so no extra Charge happens here — moving the
	// work cannot alter the simulated timeline.
	if cfg.Combine != nil {
		for p := range emitter.out {
			// applyCombiner leaves its output key-sorted.
			emitter.out[p] = applyCombiner(ctx, cfg, emitter.out[p])
		}
		var combined int
		for _, p := range emitter.out {
			combined += len(p)
		}
		ctx.Inc(CounterCombineInRecords, int64(outRecs))
		ctx.Inc(CounterCombineOutRecords, int64(combined))
	} else {
		for p := range emitter.out {
			sortByKeyStable(emitter.out[p])
		}
	}
	return emitter.out, ctx.Now(), ctx.counters, ctx.spans, nil
}

// sortByKeyStable stably sorts one partition of map output by key,
// preserving emission order within equal keys.
func sortByKeyStable(out []KeyValue) {
	if len(out) < 2 {
		return
	}
	slices.SortStableFunc(out, func(a, b KeyValue) int {
		return strings.Compare(a.Key, b.Key)
	})
}

// applyCombiner sorts one partition of a map task's output by key,
// groups equal keys, and replaces each group's values with the
// combiner's output, exactly as Hadoop's map-side combine does. Sorting
// and re-emission are charged to the task.
func applyCombiner(ctx *TaskContext, cfg *Config, out []KeyValue) []KeyValue {
	if len(out) < 2 {
		return out
	}
	sortByKeyStable(out)
	ctx.Charge(cfg.Cost.ShuffleSortCost(len(out)))
	combined := make([]KeyValue, 0, len(out))
	var values [][]byte // scratch, reused across groups
	for lo := 0; lo < len(out); {
		hi := lo + 1
		for hi < len(out) && out[hi].Key == out[lo].Key {
			hi++
		}
		values = values[:0]
		for i := lo; i < hi; i++ {
			values = append(values, out[i].Value)
		}
		for _, v := range cfg.Combine(out[lo].Key, values) {
			ctx.Charge(cfg.Cost.EmitRecord)
			combined = append(combined, KeyValue{Key: out[lo].Key, Value: v})
		}
		lo = hi
	}
	return combined
}

// reduceEmitter stamps each output record with the task-local clock.
type reduceEmitter struct {
	ctx *TaskContext
	out []TimedKV
}

// Emit implements Emitter.
func (e *reduceEmitter) Emit(key string, value []byte) {
	e.out = append(e.out, TimedKV{
		KeyValue: KeyValue{Key: key, Value: value},
		Local:    e.ctx.Now(),
		Task:     e.ctx.Index,
	})
}

func runReduceTask(cfg *Config, index int, in reduceInput) ([]TimedKV, costmodel.Units, Counters, []obs.Span, []quality.BlockObs, error) {
	ctx := &TaskContext{
		Job:       cfg.Name,
		Type:      ReduceTask,
		Index:     index,
		NumReduce: cfg.NumReduceTasks,
		Side:      cfg.Side,
		Cost:      cfg.Cost,
		counters:  Counters{},
		tracing:   cfg.Trace != nil,
		quality:   cfg.Quality != nil,
		lv:        cfg.Live,
	}
	n := 0
	if in != nil {
		n = in.Len()
	}
	ctx.Charge(cfg.Cost.TaskStartup)
	// Framework shuffle cost: reading and merge-sorting this task's
	// input. (The real sort already happened in Run; here we only
	// account its simulated price.)
	shufStart := ctx.Now()
	ctx.Charge(cfg.Cost.ReadRecord * costmodel.Units(n))
	ctx.Charge(cfg.Cost.ShuffleSortCost(n))
	if ctx.Tracing() {
		ctx.Span("shuffle", fmt.Sprintf("shuffle r%d", index), shufStart, ctx.Now(),
			obs.A("records", n))
	}

	reducer := cfg.NewReducer()
	emitter := &reduceEmitter{ctx: ctx}
	if err := reducer.Setup(ctx); err != nil {
		return nil, 0, nil, nil, nil, fmt.Errorf("mapreduce: %s reduce task %d setup: %w", cfg.Name, index, err)
	}
	// Stream the input and feed the reducer one key group at a time —
	// the group buffer, not the whole partition, bounds the resident
	// records when the input lives on disk.
	var values [][]byte // scratch, reused across groups (see Reducer contract)
	groups := 0
	if n > 0 {
		it, err := in.Iter()
		if err != nil {
			return nil, 0, nil, nil, nil, fmt.Errorf("mapreduce: %s reduce task %d input: %w", cfg.Name, index, err)
		}
		defer it.Close()
		var curKey string
		have := false
		flush := func() error {
			if !have {
				return nil
			}
			if err := reducer.Reduce(ctx, curKey, values, emitter); err != nil {
				return fmt.Errorf("mapreduce: %s reduce task %d key %q: %w", cfg.Name, index, curKey, err)
			}
			groups++
			return nil
		}
		for {
			kv, ok, err := it.Next()
			if err != nil {
				return nil, 0, nil, nil, nil, fmt.Errorf("mapreduce: %s reduce task %d input: %w", cfg.Name, index, err)
			}
			if !ok {
				break
			}
			if !have || kv.Key != curKey {
				if err := flush(); err != nil {
					return nil, 0, nil, nil, nil, err
				}
				curKey, have = kv.Key, true
				values = values[:0]
			}
			values = append(values, kv.Value)
		}
		if err := flush(); err != nil {
			return nil, 0, nil, nil, nil, err
		}
	}
	if err := reducer.Cleanup(ctx, emitter); err != nil {
		return nil, 0, nil, nil, nil, fmt.Errorf("mapreduce: %s reduce task %d cleanup: %w", cfg.Name, index, err)
	}
	ctx.Inc(CounterReduceInRecords, int64(n))
	ctx.Inc(CounterReduceInGroups, int64(groups))
	ctx.Inc(CounterReduceOutRecords, int64(len(emitter.out)))
	return emitter.out, ctx.Now(), ctx.counters, ctx.spans, ctx.qobs, nil
}

// runPool runs fn(0..n-1) on up to `workers` goroutines. No new task
// index is dispatched after the first failure — the phase
// short-circuits instead of draining all n tasks — but already-started
// tasks are allowed to finish and *every* failure is kept: the return
// value joins all task errors (errors.Join) in task-index order, so a
// multi-task failure is attributable task by task rather than
// collapsing to whichever error won the race. A panicking task is
// converted into a task failure rather than crashing the whole engine —
// the moral equivalent of a Hadoop task attempt dying without taking
// the job tracker down.
func runPool(workers, n int, fn func(i int) error) error {
	safe := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("mapreduce: task %d panicked: %v", i, r)
			}
		}()
		return fn(i)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := safe(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg     sync.WaitGroup
		failed atomic.Bool
	)
	taskErrs := make([]error, n) // each worker writes only its own indices
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := safe(i); err != nil {
					taskErrs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return errors.Join(taskErrs...)
}
