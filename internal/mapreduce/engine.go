package mapreduce

import (
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"proger/internal/costmodel"
	"proger/internal/extsort"
)

// Run executes one MapReduce job. Input records are split contiguously
// among map tasks. startAt is the global time at which the job is
// submitted (chain jobs by passing the previous job's End).
//
// Execution is deterministic: identical inputs and config produce an
// identical Result, including all timestamps, regardless of Workers.
func Run(cfg Config, input []KeyValue, startAt costmodel.Units) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Partition == nil {
		cfg.Partition = HashPartitioner
	}
	if cfg.Cost == (costmodel.Model{}) {
		cfg.Cost = costmodel.Default()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// ---- Map phase ----
	splits := splitInput(input, cfg.NumMapTasks)
	mapOuts := make([][][]KeyValue, cfg.NumMapTasks) // [task][partition][]kv
	mapCosts := make([]costmodel.Units, cfg.NumMapTasks)
	mapCounters := make([]Counters, cfg.NumMapTasks)
	err := runPool(workers, cfg.NumMapTasks, func(i int) error {
		out, cost, counters, err := runMapTask(&cfg, i, splits[i])
		if err != nil {
			return err
		}
		mapOuts[i], mapCosts[i], mapCounters[i] = out, cost, counters
		return nil
	})
	if err != nil {
		return nil, err
	}

	jobStart := startAt
	mapPhaseStart := jobStart + cfg.Cost.JobSetup
	_, mapEnd := scheduleTasks(mapCosts, cfg.Cluster.Slots(), mapPhaseStart)

	// ---- Shuffle: each map task pre-sorted its per-partition output,
	// so a reduce task's input is a stable k-way merge of its map runs
	// (ties broken by map-task index, reproducing the order a stable
	// sort of the map-order concatenation would give). Partitions merge
	// in parallel on the worker pool — in memory, or through the
	// external spill-and-merge sorter when over the memory limit. ----
	reduceIns := make([][]KeyValue, cfg.NumReduceTasks)
	err = runPool(workers, cfg.NumReduceTasks, func(r int) error {
		in, err := shuffleForTask(&cfg, mapOuts, r)
		if err != nil {
			return err
		}
		reduceIns[r] = in
		return nil
	})
	if err != nil {
		return nil, err
	}

	// ---- Reduce phase ----
	reduceOuts := make([][]TimedKV, cfg.NumReduceTasks)
	reduceCosts := make([]costmodel.Units, cfg.NumReduceTasks)
	reduceCounters := make([]Counters, cfg.NumReduceTasks)
	err = runPool(workers, cfg.NumReduceTasks, func(i int) error {
		out, cost, counters, err := runReduceTask(&cfg, i, reduceIns[i])
		if err != nil {
			return err
		}
		reduceOuts[i], reduceCosts[i], reduceCounters[i] = out, cost, counters
		return nil
	})
	if err != nil {
		return nil, err
	}

	reduceStarts, end := scheduleTasks(reduceCosts, cfg.Cluster.Slots(), mapEnd)

	// Stamp global times and flatten output in (task, emission) order.
	var total int
	for _, out := range reduceOuts {
		total += len(out)
	}
	output := make([]TimedKV, 0, total)
	for r, out := range reduceOuts {
		for _, kv := range out {
			kv.Global = reduceStarts[r] + kv.Local
			output = append(output, kv)
		}
	}

	counters := Counters{}
	for _, c := range mapCounters {
		counters.Merge(c)
	}
	for _, c := range reduceCounters {
		counters.Merge(c)
	}

	return &Result{
		Output:          output,
		Start:           jobStart,
		End:             end,
		MapEnd:          mapEnd,
		Counters:        counters,
		MapTaskCosts:    mapCosts,
		ReduceTaskCosts: reduceCosts,
		ReduceStarts:    reduceStarts,
	}, nil
}

// shuffleForTask assembles reduce task r's sorted input by merging the
// pre-sorted per-partition runs the map tasks produced. With
// ShuffleMemLimit set, the runs stream through the external sorter
// (spilled to disk as-is, never re-sorted) instead of merging in
// memory.
func shuffleForTask(cfg *Config, mapOuts [][][]KeyValue, r int) ([]KeyValue, error) {
	var n int
	runs := make([][]KeyValue, 0, cfg.NumMapTasks)
	for m := 0; m < cfg.NumMapTasks; m++ {
		if len(mapOuts[m][r]) > 0 {
			runs = append(runs, mapOuts[m][r])
			n += len(mapOuts[m][r])
		}
	}
	if cfg.ShuffleMemLimit <= 0 || n <= cfg.ShuffleMemLimit {
		return mergeSortedRuns(runs, n), nil
	}
	dir := cfg.SpillDir
	if dir == "" {
		dir = extsort.SortDir()
	}
	sorter := extsort.NewSorter(dir, cfg.ShuffleMemLimit)
	defer sorter.Close()
	for _, run := range runs {
		recs := make([]extsort.Record, len(run))
		for i, kv := range run {
			recs[i] = extsort.Record{Key: kv.Key, Value: kv.Value}
		}
		if err := sorter.AddSortedRun(recs); err != nil {
			return nil, fmt.Errorf("mapreduce: %s shuffle for reduce %d: %w", cfg.Name, r, err)
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: %s shuffle for reduce %d: %w", cfg.Name, r, err)
	}
	defer it.Close()
	in := make([]KeyValue, 0, n)
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %s shuffle for reduce %d: %w", cfg.Name, r, err)
		}
		if !ok {
			break
		}
		in = append(in, KeyValue{Key: rec.Key, Value: rec.Value})
	}
	return in, nil
}

// mergeSortedRuns stably merges key-sorted runs given in priority
// (map-task) order; total is the combined length. Equal keys surface in
// run order, then in within-run order — byte-identical to stably
// sorting the concatenation of the runs.
func mergeSortedRuns(runs [][]KeyValue, total int) []KeyValue {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	case 2:
		// Two-way fast path: the common small-job shape.
		a, b := runs[0], runs[1]
		out := make([]KeyValue, 0, total)
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i].Key <= b[j].Key { // ties go to the earlier map task
				out = append(out, a[i])
				i++
			} else {
				out = append(out, b[j])
				j++
			}
		}
		out = append(out, a[i:]...)
		return append(out, b[j:]...)
	}
	// Index-based loser tree over the run cursors: the same tournament
	// extsort.Merger plays, specialized to slice sources so the hot loop
	// avoids pull closures and record copies. Leaf s sits at node k+s;
	// tree[1..k-1] store match losers, tree[0] the winner.
	k := len(runs)
	cursors := make([]int, k)
	heads := make([]string, k) // current key per run; done runs hold ""
	done := make([]bool, k)
	for s, run := range runs {
		heads[s] = run[0].Key // runs are non-empty by construction
	}
	beats := func(a, b int) bool {
		if done[a] || done[b] {
			return !done[a]
		}
		if heads[a] != heads[b] {
			return heads[a] < heads[b]
		}
		return a < b // ties go to the earlier map task
	}
	tree := make([]int, k)
	winners := make([]int, 2*k)
	for s := 0; s < k; s++ {
		winners[k+s] = s
	}
	for n := k - 1; n >= 1; n-- {
		a, b := winners[2*n], winners[2*n+1]
		if beats(a, b) {
			winners[n], tree[n] = a, b
		} else {
			winners[n], tree[n] = b, a
		}
	}
	tree[0] = winners[1]

	out := make([]KeyValue, 0, total)
	for len(out) < total {
		s := tree[0]
		out = append(out, runs[s][cursors[s]])
		cursors[s]++
		if cursors[s] < len(runs[s]) {
			heads[s] = runs[s][cursors[s]].Key
		} else {
			heads[s] = ""
			done[s] = true
		}
		winner := s
		for n := (k + s) / 2; n >= 1; n /= 2 {
			if beats(tree[n], winner) {
				winner, tree[n] = tree[n], winner
			}
		}
		tree[0] = winner
	}
	return out
}

// splitInput divides input into n contiguous, near-equal splits.
func splitInput(input []KeyValue, n int) [][]KeyValue {
	splits := make([][]KeyValue, n)
	total := len(input)
	for i := 0; i < n; i++ {
		lo := total * i / n
		hi := total * (i + 1) / n
		splits[i] = input[lo:hi]
	}
	return splits
}

// scheduleTasks assigns tasks (in index order) to the earliest-free of
// `slots` slots, all free at phaseStart, returning each task's start
// time and the phase end time. This mirrors Hadoop's slot scheduler
// with speculative execution disabled (§VI-A1).
func scheduleTasks(costs []costmodel.Units, slots int, phaseStart costmodel.Units) (starts []costmodel.Units, phaseEnd costmodel.Units) {
	free := make([]costmodel.Units, slots)
	for i := range free {
		free[i] = phaseStart
	}
	starts = make([]costmodel.Units, len(costs))
	phaseEnd = phaseStart
	for t, c := range costs {
		best := 0
		for s := 1; s < slots; s++ {
			if free[s] < free[best] {
				best = s
			}
		}
		starts[t] = free[best]
		free[best] += c
		if free[best] > phaseEnd {
			phaseEnd = free[best]
		}
	}
	return starts, phaseEnd
}

// mapEmitter buffers map output per partition, charging emission cost.
type mapEmitter struct {
	ctx       *TaskContext
	cfg       *Config
	partition Partitioner
	out       [][]KeyValue
}

// Emit implements Emitter.
func (e *mapEmitter) Emit(key string, value []byte) {
	e.ctx.Charge(e.cfg.Cost.EmitRecord)
	p := e.partition(key, e.cfg.NumReduceTasks)
	if p < 0 || p >= e.cfg.NumReduceTasks {
		panic(fmt.Sprintf("mapreduce: partitioner returned %d for %d reduce tasks", p, e.cfg.NumReduceTasks))
	}
	e.out[p] = append(e.out[p], KeyValue{Key: key, Value: value})
}

func runMapTask(cfg *Config, index int, split []KeyValue) ([][]KeyValue, costmodel.Units, Counters, error) {
	ctx := &TaskContext{
		Job:       cfg.Name,
		Type:      MapTask,
		Index:     index,
		NumReduce: cfg.NumReduceTasks,
		Side:      cfg.Side,
		Cost:      cfg.Cost,
		counters:  Counters{},
	}
	ctx.Charge(cfg.Cost.TaskStartup)
	mapper := cfg.NewMapper()
	emitter := &mapEmitter{ctx: ctx, cfg: cfg, partition: cfg.Partition, out: make([][]KeyValue, cfg.NumReduceTasks)}
	if err := mapper.Setup(ctx); err != nil {
		return nil, 0, nil, fmt.Errorf("mapreduce: %s map task %d setup: %w", cfg.Name, index, err)
	}
	for _, rec := range split {
		ctx.Charge(cfg.Cost.ReadRecord)
		if err := mapper.Map(ctx, rec, emitter); err != nil {
			return nil, 0, nil, fmt.Errorf("mapreduce: %s map task %d: %w", cfg.Name, index, err)
		}
	}
	if err := mapper.Cleanup(ctx, emitter); err != nil {
		return nil, 0, nil, fmt.Errorf("mapreduce: %s map task %d cleanup: %w", cfg.Name, index, err)
	}
	// Map-side sort: leave every partition stably key-sorted so the
	// shuffle can merge runs instead of re-sorting concatenations. The
	// sort is real-machine work the simulation prices on the reduce side
	// (ShuffleSortCost), so no extra Charge happens here — moving the
	// work cannot alter the simulated timeline.
	if cfg.Combine != nil {
		for p := range emitter.out {
			// applyCombiner leaves its output key-sorted.
			emitter.out[p] = applyCombiner(ctx, cfg, emitter.out[p])
		}
	} else {
		for p := range emitter.out {
			sortByKeyStable(emitter.out[p])
		}
	}
	return emitter.out, ctx.Now(), ctx.counters, nil
}

// sortByKeyStable stably sorts one partition of map output by key,
// preserving emission order within equal keys.
func sortByKeyStable(out []KeyValue) {
	if len(out) < 2 {
		return
	}
	slices.SortStableFunc(out, func(a, b KeyValue) int {
		return strings.Compare(a.Key, b.Key)
	})
}

// applyCombiner sorts one partition of a map task's output by key,
// groups equal keys, and replaces each group's values with the
// combiner's output, exactly as Hadoop's map-side combine does. Sorting
// and re-emission are charged to the task.
func applyCombiner(ctx *TaskContext, cfg *Config, out []KeyValue) []KeyValue {
	if len(out) < 2 {
		return out
	}
	sortByKeyStable(out)
	ctx.Charge(cfg.Cost.ShuffleSortCost(len(out)))
	combined := make([]KeyValue, 0, len(out))
	var values [][]byte // scratch, reused across groups
	for lo := 0; lo < len(out); {
		hi := lo + 1
		for hi < len(out) && out[hi].Key == out[lo].Key {
			hi++
		}
		values = values[:0]
		for i := lo; i < hi; i++ {
			values = append(values, out[i].Value)
		}
		for _, v := range cfg.Combine(out[lo].Key, values) {
			ctx.Charge(cfg.Cost.EmitRecord)
			combined = append(combined, KeyValue{Key: out[lo].Key, Value: v})
		}
		lo = hi
	}
	return combined
}

// reduceEmitter stamps each output record with the task-local clock.
type reduceEmitter struct {
	ctx *TaskContext
	out []TimedKV
}

// Emit implements Emitter.
func (e *reduceEmitter) Emit(key string, value []byte) {
	e.out = append(e.out, TimedKV{
		KeyValue: KeyValue{Key: key, Value: value},
		Local:    e.ctx.Now(),
		Task:     e.ctx.Index,
	})
}

func runReduceTask(cfg *Config, index int, in []KeyValue) ([]TimedKV, costmodel.Units, Counters, error) {
	ctx := &TaskContext{
		Job:       cfg.Name,
		Type:      ReduceTask,
		Index:     index,
		NumReduce: cfg.NumReduceTasks,
		Side:      cfg.Side,
		Cost:      cfg.Cost,
		counters:  Counters{},
	}
	ctx.Charge(cfg.Cost.TaskStartup)
	// Framework shuffle cost: reading and merge-sorting this task's
	// input. (The real sort already happened in Run; here we only
	// account its simulated price.)
	ctx.Charge(cfg.Cost.ReadRecord * costmodel.Units(len(in)))
	ctx.Charge(cfg.Cost.ShuffleSortCost(len(in)))

	reducer := cfg.NewReducer()
	emitter := &reduceEmitter{ctx: ctx}
	if err := reducer.Setup(ctx); err != nil {
		return nil, 0, nil, fmt.Errorf("mapreduce: %s reduce task %d setup: %w", cfg.Name, index, err)
	}
	var values [][]byte // scratch, reused across groups (see Reducer contract)
	for lo := 0; lo < len(in); {
		hi := lo + 1
		for hi < len(in) && in[hi].Key == in[lo].Key {
			hi++
		}
		values = values[:0]
		for i := lo; i < hi; i++ {
			values = append(values, in[i].Value)
		}
		if err := reducer.Reduce(ctx, in[lo].Key, values, emitter); err != nil {
			return nil, 0, nil, fmt.Errorf("mapreduce: %s reduce task %d key %q: %w", cfg.Name, index, in[lo].Key, err)
		}
		lo = hi
	}
	if err := reducer.Cleanup(ctx, emitter); err != nil {
		return nil, 0, nil, fmt.Errorf("mapreduce: %s reduce task %d cleanup: %w", cfg.Name, index, err)
	}
	return emitter.out, ctx.Now(), ctx.counters, nil
}

// runPool runs fn(0..n-1) on up to `workers` goroutines and returns the
// first error. Already-started tasks are allowed to finish, but no new
// task index is dispatched after the first failure — the phase
// short-circuits instead of draining all n tasks. A panicking task is
// converted into a task failure rather than crashing the whole engine —
// the moral equivalent of a Hadoop task attempt dying without taking
// the job tracker down.
func runPool(workers, n int, fn func(i int) error) error {
	safe := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("mapreduce: task %d panicked: %v", i, r)
			}
		}()
		return fn(i)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := safe(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := safe(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
