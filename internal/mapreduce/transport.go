package mapreduce

// The task transport layer: how one job's schedulable units of work
// (the pipelined engine's DAG nodes) reach actual execution. The
// default LocalTransport runs every node body in-process on the shared
// channel pool; a RemoteTransport (internal/dist) instead leases the
// deterministic task bodies — map/shuffle/reduce, identified by
// (job seq, phase, task index) — to worker processes, while graph
// scheduling, the attempt/retry/speculation runtime, and all
// observability stay in this package and are shared verbatim between
// the two. That sharing is the determinism argument: both transports
// drive the same graph with the same attempt machinery and fill the
// same phaseOutputs, so Result, trace, and quality bytes cannot
// depend on which transport executed the work.

// TaskTransport selects how the engine executes a job's tasks. The
// zero/nil value means LocalTransport. Like Workers, it is purely a
// host-machine knob: every transport produces byte-identical Results,
// traces, counters, and quality exports.
type TaskTransport interface {
	// TransportName labels the transport in errors and diagnostics.
	TransportName() string
}

// LocalTransport is the default in-process transport: the job's task
// graph executes on one shared channel-based worker pool inside this
// process. It is the ExecPipelined fast path and the determinism
// reference every other transport is byte-compared against.
type LocalTransport struct{}

// TransportName implements TaskTransport.
func (LocalTransport) TransportName() string { return "local" }

// execGraph runs a built task graph on the in-process channel pool —
// the channel-pool scheduler that used to live on taskGraph directly,
// ported here so every transport goes through the same seam. The
// remote master path reuses it too: its dispatch closures (RPC waits)
// run as graph nodes on this same pool, which is what keeps
// scheduling, stop-dispatch, and deterministic error joining identical
// across transports.
func (LocalTransport) execGraph(g *taskGraph, workers int) error {
	return g.execute(workers)
}

// transportOf resolves the configured transport, defaulting to local.
func transportOf(cfg *Config) TaskTransport {
	if cfg.Transport != nil {
		return cfg.Transport
	}
	return LocalTransport{}
}

// RemoteTransport is a TaskTransport that executes task bodies in
// other OS processes (see internal/dist). Every process in the fleet —
// the master and each worker — runs the *same* deterministic driver
// (the full job chain with identical resolution-affecting
// configuration); what crosses the wire is task identity and result
// metadata, never closures or input payloads. The engine calls
// BeginJob once per job, in job-chain order, on every process:
//
//   - on the master, the returned RemoteJob dispatches tasks
//     (RunTask leases them to workers) and Finish broadcasts the
//     aggregated job results;
//   - on a worker, the transport registers the runner to execute
//     incoming leases, and Wait blocks until the master's broadcast,
//     from which the worker fills the same phaseOutputs the master
//     computed — keeping every process's driver loop in lockstep.
type RemoteTransport interface {
	TaskTransport
	// BeginJob starts the next job in the chain. spec describes the
	// job as this process derived it (used to cross-check lockstep);
	// runner executes leased task bodies worker-side.
	BeginJob(spec RemoteJobSpec, runner *RemoteRunner) (RemoteJob, error)
}

// RemoteJob is one job's handle on a remote transport.
type RemoteJob interface {
	// Master reports whether this process drives the job (dispatching
	// tasks and broadcasting results) or follows it (executing leases,
	// then waiting for the broadcast).
	Master() bool
	// RunTask executes one task on some worker and blocks until it
	// completes (master only). A lease lost to a dead worker surfaces
	// ErrTaskLost, which the engine retries within the RetryPolicy
	// budget without touching the simulated attempt timeline.
	RunTask(phase string, task, inputLen int) (*RemoteTaskResult, error)
	// Finish ends the job (master only): broadcasts the aggregated
	// results — or the terminal error — to the worker fleet and
	// releases the job's shared run files.
	Finish(results *RemoteJobResults, runErr error) error
	// Wait blocks until the master broadcasts the job's results
	// (worker only).
	Wait() (*RemoteJobResults, error)
}
