package mapreduce

import (
	"fmt"
	"sort"

	"proger/internal/costmodel"
	"proger/internal/obs"
	"proger/internal/obs/live"
	"proger/internal/obs/quality"
)

// TaskType distinguishes map from reduce tasks in contexts and errors.
type TaskType int

// Task types.
const (
	MapTask TaskType = iota
	ReduceTask
)

// String implements fmt.Stringer.
func (t TaskType) String() string {
	if t == MapTask {
		return "map"
	}
	return "reduce"
}

// TaskContext is the per-task environment handed to Mapper and Reducer
// methods: identity, side data, the cost clock, and counters. It is not
// safe for concurrent use by multiple goroutines (a task is a single
// logical thread, as in Hadoop).
type TaskContext struct {
	Job       string
	Type      TaskType
	Index     int
	NumReduce int
	// Side is Config.Side: read-only job-wide side data.
	Side any
	// Cost is the job's cost model, for tasks that price their own work.
	Cost costmodel.Model

	local    costmodel.Units
	counters Counters
	// tracing is set by the engine when Config.Trace is non-nil; spans
	// collects the task's local-clock spans for the engine to rebase
	// onto the global timeline once the task's start time is known.
	tracing bool
	spans   []obs.Span
	// quality is set for reduce tasks when Config.Quality is non-nil;
	// qobs buffers the task's block observations — like spans, they are
	// part of the task's deterministic result, so only the committed
	// attempt's observations reach the recorder under fault injection.
	quality bool
	qobs    []quality.BlockObs
	// lv is Config.Live for reduce tasks: block observations stream
	// into it the moment they are recorded (not at job end), feeding
	// the live progressive-recall estimate. Unlike qobs, the stream is
	// per-execution — a retried or speculated attempt feeds it again —
	// so it is advisory by design, never part of any artifact.
	lv *live.Run
}

// Charge adds cost units to the task's local clock. All task work that
// should take simulated time must be charged here.
func (c *TaskContext) Charge(u costmodel.Units) {
	if u < 0 {
		panic(fmt.Sprintf("mapreduce: negative charge %v in %s task %d", u, c.Type, c.Index))
	}
	c.local += u
}

// Now returns the task-local elapsed cost.
func (c *TaskContext) Now() costmodel.Units { return c.local }

// Inc increments a named counter.
func (c *TaskContext) Inc(name string, delta int64) {
	if c.counters == nil {
		c.counters = Counters{}
	}
	c.counters[name] += delta
}

// Tracing reports whether the job is collecting trace spans. Guard
// span-argument construction behind it so tracing costs nothing when
// disabled:
//
//	if ctx.Tracing() {
//	    ctx.Span("resolve", name, start, ctx.Now(), obs.A("pairs", n))
//	}
func (c *TaskContext) Tracing() bool { return c.tracing }

// Span records a completed span [start, end) on the task's *local*
// simulated clock (ctx.Now() values). The engine rebases it onto the
// global timeline — and assigns its process/slot lanes — once the
// task's scheduled start is known. No-op when tracing is disabled.
func (c *TaskContext) Span(cat, name string, start, end costmodel.Units, args ...obs.Arg) {
	if !c.tracing {
		return
	}
	c.spans = append(c.spans, obs.Span{
		Cat:   cat,
		Name:  name,
		Start: start,
		Dur:   end - start,
		Args:  args,
	})
}

// QualityOn reports whether the job is collecting quality telemetry —
// through the quality recorder, the live introspection layer, or both.
// Guard BlockObs construction behind it so telemetry costs nothing
// when disabled, mirroring Tracing.
func (c *TaskContext) QualityOn() bool { return c.quality || c.lv.Enabled() }

// ObserveBlock records one resolved block's realization with Start/End
// on the task's *local* simulated clock (ctx.Now() values). The engine
// rebases it onto the global timeline — and stamps the owning task —
// once the task's scheduled start is known. With live introspection
// attached, the observation additionally streams into the live layer
// immediately (duration is clock-base independent, so no rebasing is
// needed there). No-op when both sinks are disabled.
func (c *TaskContext) ObserveBlock(o quality.BlockObs) {
	c.lv.ObserveResolution(o.Compared, o.Dups, float64(o.End-o.Start))
	if !c.quality {
		return
	}
	c.qobs = append(c.qobs, o)
}

// Counters is a named-counter aggregate, as in Hadoop job counters.
type Counters map[string]int64

// Merge adds all of other into c, allocating the receiver's map if it
// is nil (so a zero-valued Counters field can absorb merges directly).
func (c *Counters) Merge(other Counters) {
	if len(other) == 0 {
		return
	}
	if *c == nil {
		*c = make(Counters, len(other))
	}
	for k, v := range other {
		(*c)[k] += v
	}
}

// Clone returns an independent copy of the counters (nil for nil).
func (c Counters) Clone() Counters {
	if c == nil {
		return nil
	}
	out := make(Counters, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Get returns the counter value (0 if absent).
func (c Counters) Get(name string) int64 { return c[name] }

// Names returns the counter names in sorted order.
func (c Counters) Names() []string {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
