package mapreduce

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// randomKVRuns builds mapTasks runs of unsorted key-value records drawn
// from a small key alphabet (lots of ties) with values that uniquely
// identify (run, position), so any ordering deviation is visible.
func randomKVRuns(rng *rand.Rand, mapTasks, maxPerRun int) [][]KeyValue {
	runs := make([][]KeyValue, mapTasks)
	for m := range runs {
		n := rng.Intn(maxPerRun + 1)
		run := make([]KeyValue, n)
		for i := range run {
			run[i] = KeyValue{
				Key:   fmt.Sprintf("k%02d", rng.Intn(12)),
				Value: []byte(fmt.Sprintf("m%d-i%d", m, i)),
			}
		}
		runs[m] = run
	}
	return runs
}

// legacyShuffle is the pre-merge reference: concatenate the raw map
// runs in map-task order and stably sort the concatenation by key —
// exactly what the engine's old in-memory shuffle did.
func legacyShuffle(runs [][]KeyValue) []KeyValue {
	var out []KeyValue
	for _, run := range runs {
		out = append(out, run...)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

func TestMergeShuffleMatchesLegacySortProperty(t *testing.T) {
	f := func(seed int64, mapTasks, maxPerRun uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		runs := randomKVRuns(rng, int(mapTasks%8)+1, int(maxPerRun%50))
		want := legacyShuffle(runs)

		// New path: stably pre-sort each run (as map tasks now do),
		// then k-way merge with map-task tie-breaking.
		sorted := make([][]KeyValue, 0, len(runs))
		total := 0
		for _, run := range runs {
			cp := append([]KeyValue(nil), run...)
			sortByKeyStable(cp)
			if len(cp) > 0 {
				sorted = append(sorted, cp)
				total += len(cp)
			}
		}
		got := mergeSortedRuns(sorted, total)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShuffleEquivalenceAcrossWorkersProperty(t *testing.T) {
	// Property: Workers=1 and Workers=GOMAXPROCS (and a spilling run)
	// produce byte-identical Results — output bytes, order, timestamps,
	// counters — for randomized inputs and job shapes.
	f := func(seed int64, nLines, mapTasks, reduceTasks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		words := []string{"ant", "bee", "cat", "dog", "elk", "fox", "gnu", "hen"}
		var in []KeyValue
		for i := 0; i < int(nLines%30)+1; i++ {
			line := ""
			for j := 0; j < rng.Intn(10); j++ {
				line += words[rng.Intn(len(words))] + " "
			}
			in = append(in, KeyValue{Key: fmt.Sprint(i), Value: []byte(line)})
		}
		base := Config{
			Name:           "shuffle-prop",
			NewMapper:      func() Mapper { return wordCountMapper{} },
			NewReducer:     func() Reducer { return orderReducer{} },
			NumMapTasks:    int(mapTasks%5) + 1,
			NumReduceTasks: int(reduceTasks%4) + 1,
			Cluster:        Cluster{Machines: 2, SlotsPerMachine: 2},
		}

		serial := base
		serial.Workers = 1
		parallel := base
		parallel.Workers = runtime.GOMAXPROCS(0) + 3 // force the pool path
		spilling := base
		spilling.Workers = 4
		spilling.ShuffleMemLimit = 2 // force the external merge path
		spilling.SpillDir = t.TempDir()

		a, err := Run(serial, in, 0)
		if err != nil {
			return false
		}
		b, err := Run(parallel, in, 0)
		if err != nil {
			return false
		}
		c, err := Run(spilling, in, 0)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a.Output, b.Output) &&
			reflect.DeepEqual(a.Output, c.Output) &&
			a.End == b.End && a.End == c.End &&
			a.MapEnd == b.MapEnd && a.MapEnd == c.MapEnd &&
			reflect.DeepEqual(a.Counters, b.Counters) &&
			reflect.DeepEqual(a.Counters, c.Counters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortedRunsSharesSingleRun(t *testing.T) {
	run := []KeyValue{{Key: "a"}, {Key: "b"}}
	got := mergeSortedRuns([][]KeyValue{run}, 2)
	if &got[0] != &run[0] {
		t.Error("single-run merge should return the run itself, not a copy")
	}
	if mergeSortedRuns(nil, 0) != nil {
		t.Error("empty merge should be nil")
	}
}

func TestRunPoolShortCircuitsOnError(t *testing.T) {
	const n = 1000
	var executed atomic.Int64
	err := runPool(4, n, func(i int) error {
		executed.Add(1)
		if i == 2 {
			return errors.New("task failure")
		}
		return nil
	})
	if err == nil || err.Error() != "task failure" {
		t.Fatalf("err = %v, want task failure", err)
	}
	if got := executed.Load(); got >= n {
		t.Errorf("pool drained all %d tasks after an early failure", n)
	}
}

func TestRunPoolSequentialShortCircuits(t *testing.T) {
	var executed int
	err := runPool(1, 100, func(i int) error {
		executed++
		if i == 4 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if executed != 5 {
		t.Errorf("executed %d tasks, want 5", executed)
	}
}

func TestRunPoolCompletesAllWithoutError(t *testing.T) {
	const n = 257
	var executed atomic.Int64
	if err := runPool(8, n, func(i int) error {
		executed.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if executed.Load() != n {
		t.Errorf("executed %d of %d tasks", executed.Load(), n)
	}
}
