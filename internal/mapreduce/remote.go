package mapreduce

// Remote (multi-process) execution of one job. Every process — master
// and workers — runs the same deterministic driver with the same
// resolution-affecting configuration, so each can reconstruct the
// job's Config (mappers, reducers, side data) locally: only task
// identity and result metadata cross the wire, never closures or
// input payloads. The shared-filesystem run files of the PR 6 spill
// layer are the data plane: a map task writes one pre-sorted run file
// per partition, a shuffle task k-way merges them into one merged run
// per partition, and a reduce task streams that merged run — the
// master hands workers run-file paths (implicitly, via task identity
// and a shared data dir), not payloads. Reduce output, counters,
// spans, and quality observations travel back inline over RPC: they
// are exactly the per-task state phaseOutputs needs.
//
// Determinism: the master drives the same task graph (map → shuffle r
// gated on all maps → reduce r) through the same runAttempted /
// speculation machinery as the local pipelined engine — its node
// bodies just dispatch over RPC instead of calling the task function.
// Committed results are byte-identical to local execution because the
// task bodies are the same deterministic functions, so everything
// derived in Run's finalize half (schedule, Result, spans, metrics,
// quality) is transport-independent. Workers fill the same
// phaseOutputs from the master's end-of-job broadcast, which keeps
// every process's driver loop (job-2 schedule generation feeds on
// job-1's Result) in lockstep.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"proger/internal/costmodel"
	"proger/internal/extsort"
	"proger/internal/faults"
	"proger/internal/obs"
	"proger/internal/obs/live"
	"proger/internal/obs/quality"
)

// Remote phase names, the wire form of a leased task's phase.
const (
	RemotePhaseMap     = "map"
	RemotePhaseShuffle = "shuffle"
	RemotePhaseReduce  = "reduce"
)

// RemoteJobSpec describes one job as a process derived it from its own
// configuration. The master publishes its spec; workers cross-check
// theirs against it before executing leases — a mismatch means the
// fleet's configurations have diverged and lockstep replay is unsound.
type RemoteJobSpec struct {
	Name           string
	NumMapTasks    int
	NumReduceTasks int
	// Tracing and Quality are the master's sink flags: workers collect
	// spans and block observations whenever the master (or they
	// themselves) need them, since a worker cannot know locally whether
	// the master runs with -trace.
	Tracing bool
	Quality bool
}

// RemoteTaskResult is one completed task's wire-form outcome — the
// per-task slice of phaseOutputs that must cross processes. Bulk data
// stays on the shared filesystem: a map task reports only per-partition
// record counts (the runs themselves are files), a shuffle task its
// merged record count. Reduce output is the job's actual product and
// returns inline.
type RemoteTaskResult struct {
	Cost     costmodel.Units
	Counters Counters
	Spans    []obs.Span
	// Worker is the master-attributed executor identity, stamped when
	// the completion is accepted (first-completion-wins) and carried
	// into the end-of-job broadcast so every process's live task table
	// shows who ran what. Observability-only: nothing derived from the
	// result reads it.
	Worker int
	// PartLens is a map task's record count per partition.
	PartLens []int
	// Len is a shuffle task's merged record count.
	Len int
	// Out and Qobs are a reduce task's output records and quality
	// observations.
	Out  []TimedKV
	Qobs []quality.BlockObs
}

// RemoteJobResults is the master's end-of-job broadcast: every task's
// committed result, indexed by task. Workers fill phaseOutputs from it
// and proceed exactly as if they had executed the job locally.
type RemoteJobResults struct {
	Map     []RemoteTaskResult
	Shuffle []RemoteTaskResult
	Reduce  []RemoteTaskResult
}

// remoteInput is the master's stand-in reduceInput for a partition
// merged on some worker: the record count is known (the schedule and
// trace need it), the records themselves live in the shared run file
// and are only ever streamed worker-side.
type remoteInput struct {
	n int
}

func (r remoteInput) Len() int { return r.n }
func (r remoteInput) Iter() (kvIter, error) {
	return nil, fmt.Errorf("mapreduce: remote reduce input holds no local records")
}
func (r remoteInput) Close() error { return nil }

// runFileInput is the worker-side reduceInput streaming a merged
// shuffle run file. The file is owned by the master's job cleanup, so
// Close releases nothing; each Iter opens an independent handle. c,
// when non-nil, counts bytes read off the file.
type runFileInput struct {
	path string
	n    int
	c    *obs.Counter
}

func (f runFileInput) Len() int { return f.n }

func (f runFileInput) Iter() (kvIter, error) {
	fh, err := os.Open(f.path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: open shuffle run: %w", err)
	}
	return &runFileIter{f: fh, rr: extsort.NewRunReader(countingReader{fh, f.c})}, nil
}

func (f runFileInput) Close() error { return nil }

type runFileIter struct {
	f  *os.File
	rr *extsort.RunReader
}

func (it *runFileIter) Next() (KeyValue, bool, error) {
	_, key, val, err := it.rr.Next()
	if err == io.EOF {
		return KeyValue{}, false, nil
	}
	if err != nil {
		return KeyValue{}, false, fmt.Errorf("mapreduce: read shuffle run: %w", err)
	}
	return KeyValue{Key: key, Value: val}, true, nil
}

func (it *runFileIter) Close() error { return it.f.Close() }

// Run-file naming inside one job's shared directory.
func remoteJobDirName(seq int) string { return fmt.Sprintf("job%d", seq) }
func mapRunName(m, r int) string      { return fmt.Sprintf("m%d.p%d.run", m, r) }
func shuffleRunName(r int) string     { return fmt.Sprintf("shuf%d.run", r) }
func remoteJobDir(dataDir string, seq int) string {
	return filepath.Join(dataDir, remoteJobDirName(seq))
}

// RemoteJobDir returns job seq's shared run-file directory under
// dataDir. Exported so a transport can clean a finished job's runs.
func RemoteJobDir(dataDir string, seq int) string { return remoteJobDir(dataDir, seq) }

// RemoteRunner executes leased task bodies worker-side: the same
// deterministic runMapTask/runReduceTask functions the local engine
// calls, against the job Config this process reconstructed locally,
// with run files on the shared data dir as input/output. The transport
// calls Configure once placement is known, then RunTask per lease.
type RemoteRunner struct {
	cfg    *Config
	splits [][]KeyValue
	lj     *live.Job

	dataDir string
	seq     int
	execCfg *Config

	// workerID is this process's master-assigned identity (0 until
	// Configure), fed to the live task table rows this runner executes.
	// cRead/cWrite count shared-directory run-file bytes this process
	// streams — registry-only fleet telemetry (nil without metrics).
	workerID      int
	cRead, cWrite *obs.Counter

	// done tracks tasks this process executed via leases, so the
	// end-of-job live back-fill (publishRemaining) doesn't double-report
	// their transitions on the local snapshot hub.
	mu   sync.Mutex
	done map[remoteTaskKey]struct{}
}

type remoteTaskKey struct {
	phase string
	task  int
}

func newRemoteRunner(cfg *Config, splits [][]KeyValue, lj *live.Job) *RemoteRunner {
	return &RemoteRunner{cfg: cfg, splits: splits, lj: lj,
		cRead:  cfg.Metrics.Counter(CounterDistRunBytesRead),
		cWrite: cfg.Metrics.Counter(CounterDistRunBytesWritten),
		done:   map[remoteTaskKey]struct{}{}}
}

// Configure binds the runner to its placement: the shared run-file
// directory, the job's sequence number in the chain, this process's
// master-assigned worker identity, and the fleet's sink flags.
// tracing/quality are ORed with the local config's own sinks — a
// worker collects spans/qobs whenever anyone needs them — by
// installing throwaway sinks on a copy of the config (the task
// functions key collection off sink non-nilness; the copies' sinks are
// never exported, results ship back inside RemoteTaskResult instead).
func (rr *RemoteRunner) Configure(dataDir string, seq, workerID int, tracing, qual bool) {
	rr.dataDir = dataDir
	rr.seq = seq
	rr.workerID = workerID
	c := *rr.cfg
	if tracing && c.Trace == nil {
		c.Trace = obs.New()
	}
	if qual && c.Quality == nil {
		c.Quality = quality.NewRecorder()
	}
	rr.execCfg = &c
}

func (rr *RemoteRunner) jobDir() string { return remoteJobDir(rr.dataDir, rr.seq) }

func (rr *RemoteRunner) markDone(phase string, task int) {
	rr.mu.Lock()
	rr.done[remoteTaskKey{phase, task}] = struct{}{}
	rr.mu.Unlock()
}

// publishRemaining back-fills the local live snapshot hub with the
// tasks other workers executed, from the master's broadcast — worker
// attribution included — so a worker's status server converges to the
// complete job view.
func (rr *RemoteRunner) publishRemaining(p live.Phase, phase string, task int, cost costmodel.Units, records, worker int) {
	rr.mu.Lock()
	_, ran := rr.done[remoteTaskKey{phase, task}]
	rr.mu.Unlock()
	if ran {
		return
	}
	rr.lj.TaskStart(p, task)
	rr.lj.TaskDone(p, task, float64(cost), records)
	rr.lj.TaskWorker(p, task, worker)
}

// RunTask executes one leased task body and returns its wire-form
// result. Duplicate executions (re-leases after a lost worker, or the
// master's speculation pass) are safe: task bodies are deterministic
// and run files are written atomically with first-write-wins.
func (rr *RemoteRunner) RunTask(phase string, task, inputLen int) (*RemoteTaskResult, error) {
	if rr.execCfg == nil {
		return nil, fmt.Errorf("mapreduce: remote runner not configured")
	}
	switch phase {
	case RemotePhaseMap:
		return rr.runMap(task)
	case RemotePhaseShuffle:
		return rr.runShuffle(task)
	case RemotePhaseReduce:
		return rr.runReduce(task, inputLen)
	}
	return nil, fmt.Errorf("mapreduce: unknown remote phase %q", phase)
}

func (rr *RemoteRunner) runMap(m int) (*RemoteTaskResult, error) {
	if m < 0 || m >= len(rr.splits) {
		return nil, fmt.Errorf("mapreduce: map task %d outside %d splits", m, len(rr.splits))
	}
	rr.lj.TaskStart(live.PhaseMap, m)
	out, cost, counters, spans, err := runMapTask(rr.execCfg, m, rr.splits[m])
	if err != nil {
		rr.lj.TaskFailed(live.PhaseMap, m, err)
		return nil, err
	}
	res := &RemoteTaskResult{Cost: cost, Counters: counters, Spans: spans, PartLens: make([]int, len(out))}
	for r, part := range out {
		res.PartLens[r] = len(part)
		if err := writeRunFileAtomic(rr.jobDir(), mapRunName(m, r), uint64(m), part, rr.cWrite); err != nil {
			rr.lj.TaskFailed(live.PhaseMap, m, err)
			return nil, err
		}
	}
	rr.lj.TaskDone(live.PhaseMap, m, float64(cost), len(rr.splits[m]))
	rr.lj.TaskWorker(live.PhaseMap, m, rr.workerID)
	rr.markDone(RemotePhaseMap, m)
	return res, nil
}

// runShuffle k-way merges partition r's map run files by (key, map
// index) — the identical stable order every local storage mode yields —
// streaming straight into the partition's merged run file.
func (rr *RemoteRunner) runShuffle(r int) (*RemoteTaskResult, error) {
	rr.lj.TaskStart(live.PhaseShuffle, r)
	n, err := rr.mergePartition(r)
	if err != nil {
		rr.lj.TaskFailed(live.PhaseShuffle, r, err)
		return nil, err
	}
	cost := rr.execCfg.Cost.ShuffleSortCost(n)
	rr.lj.TaskDone(live.PhaseShuffle, r, float64(cost), n)
	rr.lj.TaskWorker(live.PhaseShuffle, r, rr.workerID)
	rr.markDone(RemotePhaseShuffle, r)
	return &RemoteTaskResult{Cost: cost, Len: n}, nil
}

func (rr *RemoteRunner) mergePartition(r int) (n int, err error) {
	dir := rr.jobDir()
	final := filepath.Join(dir, shuffleRunName(r))
	M := rr.execCfg.NumMapTasks
	type src struct {
		f  *os.File
		rr *extsort.RunReader
	}
	srcs := make([]*src, 0, M)
	defer func() {
		for _, s := range srcs {
			s.f.Close()
		}
	}()
	var readErr error
	pulls := make([]func() (prioKV, bool), 0, M)
	total := 0
	for m := 0; m < M; m++ {
		f, err := os.Open(filepath.Join(dir, mapRunName(m, r)))
		if err != nil {
			return 0, fmt.Errorf("mapreduce: shuffle %d: %w", r, err)
		}
		s := &src{f: f, rr: extsort.NewRunReader(countingReader{f, rr.cRead})}
		srcs = append(srcs, s)
		pulls = append(pulls, func() (prioKV, bool) {
			seq, key, val, err := s.rr.Next()
			if err == io.EOF {
				return prioKV{}, false
			}
			if err != nil {
				if readErr == nil {
					readErr = err
				}
				return prioKV{}, false
			}
			return prioKV{prio: seq, kv: KeyValue{Key: key, Value: val}}, true
		})
	}
	merger := extsort.NewMerger(pulls, prioKVCmp)
	// First-write-wins: if a previous lease of this task already merged
	// the partition, count its records instead of rewriting identical
	// bytes over a file a reduce task may be streaming.
	if _, statErr := os.Stat(final); statErr == nil {
		return countRunRecords(final, rr.cRead)
	}
	tmp, err := os.CreateTemp(dir, shuffleRunName(r)+".tmp-")
	if err != nil {
		return 0, fmt.Errorf("mapreduce: shuffle %d: %w", r, err)
	}
	fail := func(err error) (int, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("mapreduce: shuffle %d: %w", r, err)
	}
	rw := extsort.NewRunWriter(countingWriter{tmp, rr.cWrite})
	for {
		rec, ok := merger.Next()
		if !ok {
			break
		}
		if err := rw.WriteRecord(rec.prio, rec.kv.Key, rec.kv.Value); err != nil {
			return fail(err)
		}
		total++
	}
	if readErr != nil {
		return fail(readErr)
	}
	if err := rw.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("mapreduce: shuffle %d: %w", r, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("mapreduce: shuffle %d: %w", r, err)
	}
	return total, nil
}

func (rr *RemoteRunner) runReduce(i, inputLen int) (*RemoteTaskResult, error) {
	rr.lj.TaskStart(live.PhaseReduce, i)
	in := runFileInput{path: filepath.Join(rr.jobDir(), shuffleRunName(i)), n: inputLen, c: rr.cRead}
	out, cost, counters, spans, qobs, err := runReduceTask(rr.execCfg, i, in)
	if err != nil {
		rr.lj.TaskFailed(live.PhaseReduce, i, err)
		return nil, err
	}
	rr.lj.TaskDone(live.PhaseReduce, i, float64(cost), inputLen)
	rr.lj.TaskWorker(live.PhaseReduce, i, rr.workerID)
	rr.markDone(RemotePhaseReduce, i)
	return &RemoteTaskResult{Cost: cost, Counters: counters, Spans: spans, Out: out, Qobs: qobs}, nil
}

// writeRunFileAtomic writes one pre-sorted run to dir/name with
// first-write-wins semantics: temp file + rename, and an existing file
// is left untouched (any two executions of the same deterministic task
// produce identical bytes, so whichever landed first is the truth).
// c, when non-nil, counts the bytes written.
func writeRunFileAtomic(dir, name string, prio uint64, kvs []KeyValue, c *obs.Counter) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("mapreduce: run dir: %w", err)
	}
	final := filepath.Join(dir, name)
	if _, err := os.Stat(final); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-")
	if err != nil {
		return fmt.Errorf("mapreduce: write run %s: %w", name, err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("mapreduce: write run %s: %w", name, err)
	}
	rw := extsort.NewRunWriter(countingWriter{tmp, c})
	for _, kv := range kvs {
		if err := rw.WriteRecord(prio, kv.Key, kv.Value); err != nil {
			return fail(err)
		}
	}
	if err := rw.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("mapreduce: write run %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("mapreduce: write run %s: %w", name, err)
	}
	return nil
}

func countRunRecords(path string, c *obs.Counter) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	rr := extsort.NewRunReader(countingReader{f, c})
	n := 0
	for {
		_, _, _, err := rr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		n++
	}
}

// countingReader/countingWriter feed a run-file byte counter from the
// raw stream. Nil counters no-op, so the wrappers are always safe.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}

type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

// runRemoteJob executes one job over a remote transport, filling
// phaseOutputs byte-identically to the local engines.
func runRemoteJob(cfg *Config, rt RemoteTransport, fr *faultRuntime, lj *live.Job, workers int, splits [][]KeyValue) (*phaseOutputs, error) {
	spec := RemoteJobSpec{
		Name:           cfg.Name,
		NumMapTasks:    cfg.NumMapTasks,
		NumReduceTasks: cfg.NumReduceTasks,
		Tracing:        cfg.Trace != nil,
		Quality:        cfg.Quality != nil,
	}
	runner := newRemoteRunner(cfg, splits, lj)
	job, err := rt.BeginJob(spec, runner)
	if err != nil {
		return nil, err
	}
	if job.Master() {
		return runRemoteMaster(cfg, fr, lj, workers, splits, job)
	}
	return runRemoteWorker(cfg, lj, splits, job, runner)
}

// runRemoteMaster drives the job's task graph with RPC-dispatching
// node bodies: the same graph shape, attempt runtime, speculation
// gates, and pool scheduling as the local pipelined engine's
// non-premerge path, so attempt histories — and therefore trace
// bytes — match a local run with the same fault configuration.
func runRemoteMaster(cfg *Config, fr *faultRuntime, lj *live.Job, workers int, splits [][]KeyValue, rjob RemoteJob) (*phaseOutputs, error) {
	M, R := cfg.NumMapTasks, cfg.NumReduceTasks
	po := newPhaseOutputs(cfg)
	po.mapRes = make([]mapTaskResult, M)
	po.mapCosts = make([]costmodel.Units, M)
	po.shufRes = make([]shuffleTaskResult, R)
	po.reduceRes = make([]reduceTaskResult, R)
	po.reduceCosts = make([]costmodel.Units, R)

	// Raw wire-form results per committed task, collected by the graph
	// nodes (single writer each) for the end-of-job broadcast.
	rawMap := make([]*RemoteTaskResult, M)
	rawShuf := make([]*RemoteTaskResult, R)
	rawRed := make([]*RemoteTaskResult, R)
	partLens := make([][]int, M)

	// Lost leases (worker died mid-task) re-dispatch below the attempt
	// runtime: host chaos stays off the simulated timeline.
	lost := lostRetryBudget(cfg)
	dispatch := func(phase string, task, inputLen int) (*RemoteTaskResult, error) {
		return retryLost(lost, func() (*RemoteTaskResult, error) {
			return rjob.RunTask(phase, task, inputLen)
		})
	}

	mExec := func(m int) (mapTaskResult, costmodel.Units, error) {
		lj.TaskStart(live.PhaseMap, m)
		var w0 time.Time
		if po.mapWall != nil {
			w0 = time.Now()
		}
		res, err := dispatch(RemotePhaseMap, m, len(splits[m]))
		if err != nil {
			lj.TaskFailed(live.PhaseMap, m, err)
			return mapTaskResult{}, 0, err
		}
		if po.mapWall != nil {
			po.mapWall[m] = wallSpan{w0, time.Since(w0)}
		}
		lj.TaskDone(live.PhaseMap, m, float64(res.Cost), len(splits[m]))
		lj.TaskWorker(live.PhaseMap, m, res.Worker)
		return mapTaskResult{counters: res.Counters, spans: res.Spans, remote: res}, res.Cost, nil
	}
	sExec := func(r int) (shuffleTaskResult, costmodel.Units, error) {
		lj.TaskStart(live.PhaseShuffle, r)
		var w0 time.Time
		if po.shufWall != nil {
			w0 = time.Now()
		}
		n := 0
		for m := 0; m < M; m++ {
			n += partLens[m][r]
		}
		res, err := dispatch(RemotePhaseShuffle, r, n)
		if err != nil {
			lj.TaskFailed(live.PhaseShuffle, r, err)
			return shuffleTaskResult{}, 0, err
		}
		if res.Len != n {
			err := fmt.Errorf("mapreduce: %s shuffle %d merged %d records, map tasks produced %d",
				cfg.Name, r, res.Len, n)
			lj.TaskFailed(live.PhaseShuffle, r, err)
			return shuffleTaskResult{}, 0, err
		}
		if po.shufWall != nil {
			po.shufWall[r] = wallSpan{w0, time.Since(w0)}
		}
		cost := cfg.Cost.ShuffleSortCost(res.Len)
		lj.TaskDone(live.PhaseShuffle, r, float64(cost), res.Len)
		lj.TaskWorker(live.PhaseShuffle, r, res.Worker)
		return shuffleTaskResult{in: remoteInput{n: res.Len}, remote: res}, cost, nil
	}
	rExec := func(i int) (reduceTaskResult, costmodel.Units, error) {
		lj.TaskStart(live.PhaseReduce, i)
		var w0 time.Time
		if po.reduceWall != nil {
			w0 = time.Now()
		}
		res, err := dispatch(RemotePhaseReduce, i, po.shufRes[i].in.Len())
		if err != nil {
			lj.TaskFailed(live.PhaseReduce, i, err)
			return reduceTaskResult{}, 0, err
		}
		if po.reduceWall != nil {
			po.reduceWall[i] = wallSpan{w0, time.Since(w0)}
		}
		lj.TaskDone(live.PhaseReduce, i, float64(res.Cost), po.shufRes[i].in.Len())
		lj.TaskWorker(live.PhaseReduce, i, res.Worker)
		return reduceTaskResult{out: res.Out, counters: res.Counters, spans: res.Spans, qobs: res.Qobs, remote: res}, res.Cost, nil
	}

	var mapAtt, shufAtt, redAtt []*taskAttempts
	if fr != nil {
		mapAtt = fr.beginPhase(faults.Map, M)
		shufAtt = fr.beginPhase(faults.Shuffle, R)
		redAtt = fr.beginPhase(faults.Reduce, R)
	}

	g := &taskGraph{}
	mapNodes := make([]*dagNode, M)
	for m := 0; m < M; m++ {
		m := m
		mapNodes[m] = g.node(nodeKey{nodeMap, m}, func() error {
			out, cost, err := runAttempted(fr, faults.Map, mapAtt, m, mExec)
			if err != nil {
				return err
			}
			po.mapRes[m], po.mapCosts[m] = out, cost
			partLens[m] = out.remote.PartLens
			rawMap[m] = out.remote
			return nil
		})
	}
	shufNodes := make([]*dagNode, R)
	for r := 0; r < R; r++ {
		r := r
		shufNodes[r] = g.node(nodeKey{nodeShuffle, r}, func() error {
			out, _, err := runAttempted(fr, faults.Shuffle, shufAtt, r, sExec)
			if err != nil {
				return err
			}
			po.shufRes[r] = out
			rawShuf[r] = out.remote
			return nil
		})
		for _, mn := range mapNodes {
			g.edge(mn, shufNodes[r])
		}
	}
	redNodes := make([]*dagNode, R)
	for i := 0; i < R; i++ {
		i := i
		redNodes[i] = g.node(nodeKey{nodeReduce, i}, func() error {
			out, cost, err := runAttempted(fr, faults.Reduce, redAtt, i, rExec)
			if err != nil {
				return err
			}
			po.reduceRes[i], po.reduceCosts[i] = out, cost
			rawRed[i] = out.remote
			return nil
		})
		g.edge(shufNodes[i], redNodes[i])
	}
	if fr != nil && fr.policy.Speculation {
		addSpeculationNodes(g, fr, faults.Map, nodeSpecMap, mapNodes, po.mapRes, po.mapCosts, mExec)
		shufCosts := make([]costmodel.Units, R)
		shufCostOf := func(i int) costmodel.Units { return cfg.Cost.ShuffleSortCost(po.shufRes[i].in.Len()) }
		addSpeculationNodesWithCosts(g, fr, faults.Shuffle, nodeSpecShuffle, shufNodes, po.shufRes, shufCosts, shufCostOf, sExec)
		addSpeculationNodes(g, fr, faults.Reduce, nodeSpecReduce, redNodes, po.reduceRes, po.reduceCosts, rExec)
	}

	err := (LocalTransport{}).execGraph(g, workers)
	var results *RemoteJobResults
	if err == nil {
		results = &RemoteJobResults{
			Map:     make([]RemoteTaskResult, M),
			Shuffle: make([]RemoteTaskResult, R),
			Reduce:  make([]RemoteTaskResult, R),
		}
		for m, res := range rawMap {
			results.Map[m] = *res
		}
		for r, res := range rawShuf {
			results.Shuffle[r] = *res
		}
		for i, res := range rawRed {
			results.Reduce[i] = *res
		}
	}
	// Broadcast results — or the terminal error — so the worker fleet's
	// lockstep drivers can proceed (or abort) too.
	if ferr := rjob.Finish(results, err); err == nil && ferr != nil {
		err = ferr
	}
	if err != nil {
		return po, err
	}
	return po, nil
}

// runRemoteWorker is the follower side: leases execute concurrently
// through the transport's pump loops (which call RemoteRunner.RunTask
// directly); here the driver just waits for the master's broadcast and
// fills phaseOutputs from it, so the rest of Run — and the next job's
// schedule generation — proceeds identically to the master's.
func runRemoteWorker(cfg *Config, lj *live.Job, splits [][]KeyValue, rjob RemoteJob, runner *RemoteRunner) (*phaseOutputs, error) {
	jr, err := rjob.Wait()
	if err != nil {
		return nil, err
	}
	M, R := cfg.NumMapTasks, cfg.NumReduceTasks
	if len(jr.Map) != M || len(jr.Shuffle) != R || len(jr.Reduce) != R {
		return nil, fmt.Errorf("mapreduce: %s: master broadcast %d/%d/%d task results, this process expects %d/%d/%d — fleet configs diverged",
			cfg.Name, len(jr.Map), len(jr.Shuffle), len(jr.Reduce), M, R, R)
	}
	po := newPhaseOutputs(cfg)
	po.mapRes = make([]mapTaskResult, M)
	po.mapCosts = make([]costmodel.Units, M)
	po.shufRes = make([]shuffleTaskResult, R)
	po.reduceRes = make([]reduceTaskResult, R)
	po.reduceCosts = make([]costmodel.Units, R)
	for m := 0; m < M; m++ {
		res := jr.Map[m]
		po.mapRes[m] = mapTaskResult{counters: res.Counters, spans: res.Spans}
		po.mapCosts[m] = res.Cost
		runner.publishRemaining(live.PhaseMap, RemotePhaseMap, m, res.Cost, len(splits[m]), res.Worker)
	}
	for r := 0; r < R; r++ {
		res := jr.Shuffle[r]
		po.shufRes[r] = shuffleTaskResult{in: remoteInput{n: res.Len}}
		runner.publishRemaining(live.PhaseShuffle, RemotePhaseShuffle, r, res.Cost, res.Len, res.Worker)
	}
	for i := 0; i < R; i++ {
		res := jr.Reduce[i]
		po.reduceRes[i] = reduceTaskResult{out: res.Out, counters: res.Counters, spans: res.Spans, qobs: res.Qobs}
		po.reduceCosts[i] = res.Cost
		runner.publishRemaining(live.PhaseReduce, RemotePhaseReduce, i, res.Cost, jr.Shuffle[i].Len, res.Worker)
	}
	return po, nil
}
