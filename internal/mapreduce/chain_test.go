package mapreduce

import (
	"strings"
	"testing"
)

// upperMapper emits (key, upper(value)).
type upperMapper struct{ MapperBase }

func (upperMapper) Map(ctx *TaskContext, rec KeyValue, emit Emitter) error {
	emit.Emit(rec.Key, []byte(strings.ToUpper(string(rec.Value))))
	return nil
}

// passReducer forwards each value.
type passReducer struct{ ReducerBase }

func (passReducer) Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
	for _, v := range values {
		emit.Emit(key, v)
	}
	return nil
}

func passConfig(name string) Config {
	return Config{
		Name:           name,
		NewMapper:      func() Mapper { return upperMapper{} },
		NewReducer:     func() Reducer { return passReducer{} },
		NumMapTasks:    2,
		NumReduceTasks: 2,
		Cluster:        Cluster{Machines: 1, SlotsPerMachine: 2},
	}
}

func TestRunChainFeedsOutputForward(t *testing.T) {
	in := []KeyValue{{Key: "a", Value: []byte("x")}, {Key: "b", Value: []byte("y")}}
	results, err := RunChain([]Stage{
		{Config: passConfig("one"), Input: func(*Result) ([]KeyValue, error) { return in, nil }},
		{Config: passConfig("two")}, // nil Input: feeds stage one's output
	}, 0)
	if err != nil {
		t.Fatalf("RunChain: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Chained timing: stage two starts when stage one ends.
	if results[1].Start != results[0].End {
		t.Errorf("stage 2 starts at %v, stage 1 ends at %v", results[1].Start, results[0].End)
	}
	// Values passed through both stages (upper-cased once; the second
	// stage upper-cases the already-upper value — idempotent).
	got := map[string]string{}
	for _, kv := range results[1].Output {
		got[kv.Key] = string(kv.Value)
	}
	if got["a"] != "X" || got["b"] != "Y" {
		t.Errorf("chained output = %v", got)
	}
}

func TestRunChainCustomInput(t *testing.T) {
	results, err := RunChain([]Stage{
		{Config: passConfig("one"), Input: func(*Result) ([]KeyValue, error) {
			return []KeyValue{{Key: "k", Value: []byte("v")}}, nil
		}},
		{Config: passConfig("two"), Input: func(prev *Result) ([]KeyValue, error) {
			// Derive a different input from the previous result.
			out := make([]KeyValue, 0, len(prev.Output))
			for _, kv := range prev.Output {
				out = append(out, KeyValue{Key: kv.Key + "2", Value: kv.Value})
			}
			return out, nil
		}},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Start != 100 {
		t.Errorf("chain start = %v", results[0].Start)
	}
	if len(results[1].Output) != 1 || results[1].Output[0].Key != "k2" {
		t.Errorf("derived input not used: %v", results[1].Output)
	}
}

func TestRunChainErrors(t *testing.T) {
	if _, err := RunChain(nil, 0); err == nil {
		t.Error("empty chain: want error")
	}
	bad := passConfig("bad")
	bad.NewMapper = nil
	if _, err := RunChain([]Stage{{Config: bad}}, 0); err == nil {
		t.Error("invalid stage config: want error")
	}
}
