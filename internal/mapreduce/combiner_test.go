package mapreduce

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// sumCombiner adds up "N" values into a single record.
func sumCombiner(key string, values [][]byte) [][]byte {
	total := 0
	for _, v := range values {
		n, _ := strconv.Atoi(string(v))
		total += n
	}
	return [][]byte{[]byte(strconv.Itoa(total))}
}

// sumReducer adds up "N" values and emits the total.
type sumReducer struct{ ReducerBase }

func (sumReducer) Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
	total := 0
	for _, v := range values {
		n, _ := strconv.Atoi(string(v))
		total += n
	}
	ctx.Inc("reduce.values", int64(len(values)))
	emit.Emit(key, []byte(strconv.Itoa(total)))
	return nil
}

// onesMapper emits (word, "1") per word.
type onesMapper struct{ MapperBase }

func (onesMapper) Map(ctx *TaskContext, rec KeyValue, emit Emitter) error {
	for _, w := range strings.Fields(string(rec.Value)) {
		emit.Emit(w, []byte("1"))
	}
	return nil
}

func combinerConfig(withCombiner bool) Config {
	cfg := Config{
		Name:           "combine-wordcount",
		NewMapper:      func() Mapper { return onesMapper{} },
		NewReducer:     func() Reducer { return sumReducer{} },
		NumMapTasks:    2,
		NumReduceTasks: 2,
		Cluster:        Cluster{Machines: 2, SlotsPerMachine: 2},
	}
	if withCombiner {
		cfg.Combine = sumCombiner
	}
	return cfg
}

func combinerInput() []KeyValue {
	var in []KeyValue
	for i := 0; i < 6; i++ {
		in = append(in, KeyValue{Key: fmt.Sprint(i), Value: []byte("alpha beta alpha gamma alpha")})
	}
	return in
}

func TestCombinerSameResults(t *testing.T) {
	plain, err := Run(combinerConfig(false), combinerInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(combinerConfig(true), combinerInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	get := func(r *Result) map[string]string {
		out := map[string]string{}
		for _, kv := range r.Output {
			out[kv.Key] = string(kv.Value)
		}
		return out
	}
	if !reflect.DeepEqual(get(plain), get(combined)) {
		t.Errorf("combiner changed results: %v vs %v", get(plain), get(combined))
	}
	want := map[string]string{"alpha": "18", "beta": "6", "gamma": "6"}
	if !reflect.DeepEqual(get(combined), want) {
		t.Errorf("counts = %v, want %v", get(combined), want)
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	// The reduce side must see fewer values with the combiner on:
	// each map task emits ≤ 1 record per (key, partition) afterwards.
	plain, err := Run(combinerConfig(false), combinerInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(combinerConfig(true), combinerInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	vp := plain.Counters.Get("reduce.values")
	vc := combined.Counters.Get("reduce.values")
	if vc >= vp {
		t.Errorf("combiner did not shrink shuffle: %d vs %d values", vc, vp)
	}
	// 2 map tasks × 3 keys → exactly 6 combined records.
	if vc != 6 {
		t.Errorf("combined shuffle carries %d values, want 6", vc)
	}
}

func TestCombinerDeterministicAcrossWorkers(t *testing.T) {
	cfg1 := combinerConfig(true)
	cfg1.Workers = 1
	cfg4 := combinerConfig(true)
	cfg4.Workers = 4
	r1, err := Run(cfg1, combinerInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(cfg4, combinerInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Output, r4.Output) || r1.End != r4.End {
		t.Error("combiner runs differ across worker counts")
	}
}

// panicMapper crashes on the second record.
type panicMapper struct {
	MapperBase
	n int
}

func (m *panicMapper) Map(ctx *TaskContext, rec KeyValue, emit Emitter) error {
	m.n++
	if m.n == 2 {
		panic("injected map failure")
	}
	emit.Emit(rec.Key, rec.Value)
	return nil
}

func TestPanicInMapTaskBecomesError(t *testing.T) {
	cfg := combinerConfig(false)
	cfg.NewMapper = func() Mapper { return &panicMapper{} }
	_, err := Run(cfg, combinerInput(), 0)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("want panic-derived error, got %v", err)
	}
}

// panicReducer crashes on a specific key.
type panicReducer struct{ ReducerBase }

func (panicReducer) Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
	if key == "beta" {
		panic("injected reduce failure")
	}
	return nil
}

func TestPanicInReduceTaskBecomesError(t *testing.T) {
	cfg := combinerConfig(false)
	cfg.NewReducer = func() Reducer { return panicReducer{} }
	cfg.Workers = 4
	_, err := Run(cfg, combinerInput(), 0)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("want panic-derived error, got %v", err)
	}
}

func TestCombinerEmptyPartitions(t *testing.T) {
	cfg := combinerConfig(true)
	res, err := Run(cfg, nil, 0)
	if err != nil {
		t.Fatalf("empty input with combiner: %v", err)
	}
	if len(res.Output) != 0 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestSpillingShuffleEquivalence(t *testing.T) {
	plain := wordCountConfig(2)
	spill := wordCountConfig(2)
	spill.ShuffleMemLimit = 2 // force spills
	spill.SpillDir = t.TempDir()
	a, err := Run(plain, wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spill, wordCountInput(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Output, b.Output) {
		t.Error("spilling shuffle changed results")
	}
	if a.End != b.End {
		t.Error("spilling shuffle changed simulated timing (it must not)")
	}
}
