package mapreduce

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// benchRuns builds one reduce partition's worth of map-task runs:
// mapTasks runs of perRun records each, unsorted, with duplicate keys.
func benchRuns(mapTasks, perRun int) [][]KeyValue {
	rng := rand.New(rand.NewSource(7))
	runs := make([][]KeyValue, mapTasks)
	for m := range runs {
		run := make([]KeyValue, perRun)
		for i := range run {
			run[i] = KeyValue{
				Key:   fmt.Sprintf("key-%05d", rng.Intn(perRun)),
				Value: []byte("payload-payload-payload"),
			}
		}
		runs[m] = run
	}
	return runs
}

// BenchmarkShuffle compares the engine's two in-memory shuffle
// generations end to end (map-side ordering work included in both):
//
//	legacy  — concatenate raw runs, sort.SliceStable the concatenation
//	          (the pre-merge engine's shuffle);
//	merge   — stably sort each run (as map tasks now do in the map
//	          phase), then stable k-way loser-tree merge.
func BenchmarkShuffle(b *testing.B) {
	const mapTasks, perRun = 16, 2000
	runs := benchRuns(mapTasks, perRun)
	total := mapTasks * perRun
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := make([]KeyValue, 0, total)
			for _, run := range runs {
				in = append(in, run...)
			}
			sort.SliceStable(in, func(a, c int) bool { return in[a].Key < in[c].Key })
		}
	})
	b.Run("merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sorted := make([][]KeyValue, len(runs))
			for s, run := range runs {
				cp := append([]KeyValue(nil), run...)
				sortByKeyStable(cp)
				sorted[s] = cp
			}
			mergeSortedRuns(sorted, total)
		}
	})
}

// BenchmarkShuffleEngine runs a whole job dominated by shuffle volume,
// so the number tracks end-to-end engine throughput.
func BenchmarkShuffleEngine(b *testing.B) {
	var in []KeyValue
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		in = append(in, KeyValue{
			Key:   fmt.Sprint(i),
			Value: []byte(fmt.Sprintf("w%03d w%03d w%03d w%03d", rng.Intn(300), rng.Intn(300), rng.Intn(300), rng.Intn(300))),
		})
	}
	cfg := Config{
		Name:           "shuffle-engine-bench",
		NewMapper:      func() Mapper { return wordCountMapper{} },
		NewReducer:     func() Reducer { return wordCountReducer{} },
		NumMapTasks:    8,
		NumReduceTasks: 4,
		Cluster:        Cluster{Machines: 4, SlotsPerMachine: 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, in, 0); err != nil {
			b.Fatal(err)
		}
	}
}
