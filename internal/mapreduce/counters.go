package mapreduce

// Engine counter keys. The engine maintains these itself for every
// job (bulk-incremented per task, so they cost nothing on per-record
// hot paths); user map/reduce functions add their own keys via
// TaskContext.Inc. Keys are exported constants rather than inline
// string literals so call sites cannot silently typo a name — the
// telemetry-key lint in scripts/check.sh rejects literal keys outside
// tests.
const (
	// CounterMapInRecords counts records read by map tasks.
	CounterMapInRecords = "mr.map.in_records"
	// CounterMapOutRecords counts records emitted by map functions,
	// before any combiner runs.
	CounterMapOutRecords = "mr.map.out_records"
	// CounterCombineInRecords and CounterCombineOutRecords count the
	// map-side combiner's input and surviving output records.
	CounterCombineInRecords  = "mr.combine.in_records"
	CounterCombineOutRecords = "mr.combine.out_records"
	// CounterShuffleSpilledRuns counts sorted runs routed through the
	// external spill-and-merge sorter (0 unless ShuffleMemLimit forced
	// spilling). Spilling is a host-machine knob, so this counter is
	// reported only through Config.Metrics — never Result.Counters,
	// which must stay bit-for-bit identical across host configurations.
	CounterShuffleSpilledRuns = "mr.shuffle.spilled_runs"
	// CounterReduceInRecords and CounterReduceInGroups count reduce-task
	// input records and distinct key groups.
	CounterReduceInRecords = "mr.reduce.in_records"
	CounterReduceInGroups  = "mr.reduce.in_groups"
	// CounterReduceOutRecords counts records emitted by reduce functions.
	CounterReduceOutRecords = "mr.reduce.out_records"
	// Attempt-runtime counters (0 unless Config.Faults / Config.Retry
	// engage the attempt layer): attempts started (including retries and
	// speculative backups), failed attempts re-executed, speculative
	// attempts launched for stragglers, and completed attempts killed
	// because another attempt committed first. Fault injection is a
	// chaos knob, so — like spill counts — these report only through
	// Config.Metrics, never Result.Counters, which must stay
	// bit-for-bit identical to the fault-free run.
	CounterTaskAttempts       = "mr.attempt.started"
	CounterTaskRetries        = "mr.attempt.retried"
	CounterTaskSpeculations   = "mr.attempt.speculated"
	CounterTaskAttemptsKilled = "mr.attempt.killed"
	// Budget-forced spill activity across this job's shuffle stores:
	// how often the process-wide memory budget (Config.MemBudget)
	// squeezed buffered runs to disk and how many tracked bytes moved.
	// Memory pressure is a host condition, so — like the spill counts
	// above — these report only through Config.Metrics, never
	// Result.Counters.
	CounterBudgetForcedSpills = "mr.membudget.forced_spills"
	CounterBudgetSpilledBytes = "mr.membudget.spilled_bytes"
	// Distributed-runtime counters, maintained by the master's lease
	// ledger: worker processes registered, task leases granted, leases
	// expired after heartbeat loss, and raw RPC bytes moved over the
	// wire in each direction. The transport is a host knob, so these
	// report only through Config.Metrics (on the process hosting the
	// master), never Result.Counters.
	CounterDistWorkersRegistered = "mr.dist.workers_registered"
	CounterDistLeasesGranted     = "mr.dist.leases_granted"
	CounterDistLeasesExpired     = "mr.dist.leases_expired"
	CounterDistRPCBytesIn        = "mr.dist.rpc_bytes_in"
	CounterDistRPCBytesOut       = "mr.dist.rpc_bytes_out"
	// CounterDistRPCCalls counts RPC round-trips (client side: calls
	// issued; server side: calls served). CounterDistRunBytesRead and
	// CounterDistRunBytesWritten count shared-directory run-file bytes a
	// worker process streamed while executing leases. Registry-only like
	// every mr.dist.* key.
	CounterDistRPCCalls        = "mr.dist.rpc.calls"
	CounterDistRunBytesRead    = "mr.dist.runfile_bytes_read"
	CounterDistRunBytesWritten = "mr.dist.runfile_bytes_written"

	// HistTaskCostUnits is the registry histogram of per-task simulated
	// costs (map and reduce), fed by the engine at the end of each job.
	HistTaskCostUnits = "mr_task_cost_units"
	// RPC latency histograms: client-observed round-trip time (worker
	// side, includes long-poll waits only on Lease calls) and
	// server-observed handler time (master side). HistDistLeaseWaitMillis
	// is the worker-observed wall time from first lease poll to grant —
	// the fleet's idle-tail signal. All wall-clock, registry-only.
	HistDistRPCClientMillis = "mr_dist_rpc_client_ms"
	HistDistRPCServerMillis = "mr_dist_rpc_server_ms"
	HistDistLeaseWaitMillis = "mr_dist_lease_wait_ms"
)
