package mapreduce

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"proger/internal/costmodel"
	"proger/internal/faults"
	"proger/internal/obs"
	"proger/internal/obs/live"
)

// RetryPolicy configures the attempt runtime: how often a failed task
// attempt is retried, how retries back off, when a hung or straggling
// attempt is killed, and whether stragglers get speculative duplicate
// attempts. All durations are simulated cost units, so the attempt
// timeline — like everything else in the engine — is deterministic.
//
// The zero value leaves the attempt runtime disabled unless
// Config.Faults is set; with an injector present (or any field set),
// unset fields take the documented defaults.
type RetryPolicy struct {
	// MaxRetries bounds re-executions after the first attempt (so a
	// task runs at most MaxRetries+1 times). 0 means the default (3).
	MaxRetries int
	// BackoffBase is the simulated wait before the first retry; each
	// further retry doubles it (capped at 32×). 0 means 2×TaskStartup.
	BackoffBase costmodel.Units
	// TimeoutFactor sets the per-attempt timeout at TimeoutFactor × the
	// attempt's clean cost (floored at TaskStartup): a hung attempt is
	// killed and retried once the timeout elapses on the attempt
	// timeline. 0 means the default (8).
	TimeoutFactor float64
	// Speculation enables duplicate attempts for stragglers: once a
	// phase's tasks are in, any committed attempt that ran longer than
	// the SpeculationQuantile of the phase's clean task costs gets a
	// backup attempt, and whichever finishes first on the attempt
	// timeline commits (the loser is killed).
	Speculation bool
	// SpeculationQuantile is the straggler threshold quantile in (0,1).
	// 0 means the default (0.95).
	SpeculationQuantile float64
}

// Attempt-runtime defaults and tuning constants.
const (
	defaultMaxRetries          = 3
	defaultBackoffBase         = costmodel.Units(100)
	defaultTimeoutFactor       = 8
	defaultSlowFactor          = 4
	defaultSpeculationQuantile = 0.95
	// crashFraction is how far through its work a crash-faulted attempt
	// gets before dying, as a fraction of its clean cost.
	crashFraction = 0.5
	// maxBackoffDoublings caps the exponential backoff at 32×base.
	maxBackoffDoublings = 5
)

// Attempt outcomes, as recorded in spans and error messages.
const (
	outcomeOK      = "ok"
	outcomeSlow    = "slow"
	outcomeCrash   = "crash"
	outcomeTimeout = "timeout"
	outcomeError   = "error"
)

// attemptRecord is one task attempt on the shadow attempt timeline.
// Start/Dur are task-local: cost units since the task's first attempt
// began on its slot.
type attemptRecord struct {
	Attempt     int
	Outcome     string
	Start, Dur  costmodel.Units
	Speculative bool
	// Killed marks an attempt whose work completed but was discarded
	// because another attempt committed first (speculation losers).
	Killed bool
}

// taskAttempts is one task's full attempt history.
type taskAttempts struct {
	records []attemptRecord
	// committed indexes the winning record (-1 while none succeeded);
	// commitStart/commitDur place it on the attempt timeline.
	committed              int
	commitStart, commitDur costmodel.Units
}

// faultRuntime is the per-run attempt/fault state: the injector, the
// defaulted policy, and the attempt history of every phase. It exists
// only when Config enables fault tolerance; a nil *faultRuntime means
// the engine runs each task exactly once, as before.
//
// The runtime is a shadow simulation layered over the deterministic
// task functions: every committed output and clean cost comes from a
// real execution of runMapTask/shuffleForTask/runReduceTask, so
// injected faults can delay, kill, and duplicate attempts at will
// without ever being able to perturb Result.
type faultRuntime struct {
	injector faults.Injector
	policy   RetryPolicy
	startup  costmodel.Units
	// phases holds per-phase attempt histories, indexed by task. The
	// slice for a phase is allocated before its worker pool starts and
	// each worker writes only its own task index, so no locking is
	// needed.
	phases map[faults.Phase][]*taskAttempts
	// live is the run's live-introspection handle (nil when off): the
	// attempt runtime reports retries, speculative launches, and
	// permanent task failures through it. Set once in Run before any
	// engine goroutine starts.
	live *live.Job
}

// newFaultRuntime builds the attempt runtime for cfg, or nil when the
// config leaves fault tolerance disabled. Call after cfg.Cost has been
// defaulted.
func newFaultRuntime(cfg *Config) *faultRuntime {
	if cfg.Faults == nil && cfg.Retry == (RetryPolicy{}) {
		return nil
	}
	p := cfg.Retry
	if p.MaxRetries <= 0 {
		p.MaxRetries = defaultMaxRetries
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 2 * cfg.Cost.TaskStartup
		if p.BackoffBase <= 0 {
			p.BackoffBase = defaultBackoffBase
		}
	}
	if p.TimeoutFactor <= 0 {
		p.TimeoutFactor = defaultTimeoutFactor
	}
	if p.SpeculationQuantile <= 0 || p.SpeculationQuantile >= 1 {
		p.SpeculationQuantile = defaultSpeculationQuantile
	}
	return &faultRuntime{
		injector: cfg.Faults,
		policy:   p,
		startup:  cfg.Cost.TaskStartup,
		phases:   map[faults.Phase][]*taskAttempts{},
	}
}

func (fr *faultRuntime) decide(phase faults.Phase, task, attempt int) faults.Fault {
	if fr.injector == nil {
		return faults.Fault{}
	}
	return fr.injector.Decide(phase, task, attempt)
}

// backoff returns the simulated wait after failed attempt a:
// BackoffBase doubling per retry, capped at 32×.
func (fr *faultRuntime) backoff(attempt int) costmodel.Units {
	b := fr.policy.BackoffBase
	for i := 1; i < attempt && i <= maxBackoffDoublings; i++ {
		b *= 2
	}
	return b
}

// timeout returns the attempt timeout for a task whose clean cost is
// known: TimeoutFactor × max(clean, TaskStartup, 1).
func (fr *faultRuntime) timeout(clean costmodel.Units) costmodel.Units {
	floor := clean
	if fr.startup > floor {
		floor = fr.startup
	}
	if floor <= 0 {
		floor = 1
	}
	return fr.policy.TimeoutFactor * floor
}

func (fr *faultRuntime) beginPhase(phase faults.Phase, n int) []*taskAttempts {
	s := make([]*taskAttempts, n)
	fr.phases[phase] = s
	return s
}

// runTaskAttempts runs one task's bounded retry ladder: each attempt
// really re-executes the (deterministic) task function, then the
// injector decides its fate. Crashed and hung attempts discard their
// output and retry after exponential backoff; slow attempts commit
// with an inflated duration unless they straggle past the attempt
// timeout. A panicking attempt is a failed attempt, not a dead job.
// Exhausting the ladder surfaces the full per-attempt history as a
// joined error.
func runTaskAttempts[T any](fr *faultRuntime, phase faults.Phase, task int,
	exec func() (T, costmodel.Units, error)) (T, costmodel.Units, *taskAttempts, error) {
	var zero T
	ta := &taskAttempts{committed: -1}
	execSafe := func() (out T, cost costmodel.Units, err error) {
		defer func() {
			if r := recover(); r != nil {
				out, cost, err = zero, 0, fmt.Errorf("attempt panicked: %v", r)
			}
		}()
		return exec()
	}
	now := costmodel.Units(0)
	maxAttempts := fr.policy.MaxRetries + 1
	var attemptErrs []error
	for a := 1; a <= maxAttempts; a++ {
		f := fr.decide(phase, task, a)
		out, cost, err := execSafe()
		switch {
		case err != nil:
			ta.records = append(ta.records, attemptRecord{Attempt: a, Outcome: outcomeError, Start: now, Dur: cost})
			attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: %w", a, err))
			fr.live.Retry(live.Phase(phase), task, a, outcomeError)
			now += cost + fr.backoff(a)
		case f.Kind == faults.Crash:
			discardAttemptOutput(out) // valid output, thrown away by the injected crash
			d := cost * crashFraction
			ta.records = append(ta.records, attemptRecord{Attempt: a, Outcome: outcomeCrash, Start: now, Dur: d})
			attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: injected crash", a))
			fr.live.Retry(live.Phase(phase), task, a, outcomeCrash)
			now += d + fr.backoff(a)
		case f.Kind == faults.Hang:
			discardAttemptOutput(out)
			d := fr.timeout(cost)
			ta.records = append(ta.records, attemptRecord{Attempt: a, Outcome: outcomeTimeout, Start: now, Dur: d})
			attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: hung, killed at timeout %v", a, d))
			fr.live.Retry(live.Phase(phase), task, a, outcomeTimeout)
			now += d + fr.backoff(a)
		default:
			dur, outcome := cost, outcomeOK
			if f.Kind == faults.Slow {
				factor := f.Factor
				if factor <= 1 {
					factor = defaultSlowFactor
				}
				dur, outcome = cost*factor, outcomeSlow
			}
			if to := fr.timeout(cost); dur > to {
				// Slowed past the attempt timeout: killed like a hang.
				discardAttemptOutput(out)
				ta.records = append(ta.records, attemptRecord{Attempt: a, Outcome: outcomeTimeout, Start: now, Dur: to})
				attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: straggling, killed at timeout %v", a, to))
				fr.live.Retry(live.Phase(phase), task, a, outcomeTimeout)
				now += to + fr.backoff(a)
				continue
			}
			ta.records = append(ta.records, attemptRecord{Attempt: a, Outcome: outcome, Start: now, Dur: dur})
			ta.committed = len(ta.records) - 1
			ta.commitStart, ta.commitDur = now, dur
			return out, cost, ta, nil
		}
	}
	err := fmt.Errorf("mapreduce: %s task %d failed after %d attempts: %w",
		phase, task, maxAttempts, errors.Join(attemptErrs...))
	// The ladder is exhausted: the exec-level transitions above left the
	// task re-entered as running (or done, for a final discarded
	// attempt); pin its terminal live state to failed.
	fr.live.TaskFailed(live.Phase(phase), task, err)
	return zero, 0, ta, err
}

// runPhase executes one engine phase of n tasks on the worker pool.
// With fr nil every task runs exactly once and runPool aggregates any
// failures; with the attempt runtime active each task runs its retry
// ladder and stragglers get a speculative pass. Either way the
// committed outputs and clean costs — returned indexed by task — are
// byte-identical to a fault-free run, because commits only ever carry
// what the deterministic task function produced.
func runPhase[T any](fr *faultRuntime, phase faults.Phase, workers, n int,
	exec func(i int) (T, costmodel.Units, error)) ([]T, []costmodel.Units, error) {
	outs := make([]T, n)
	costs := make([]costmodel.Units, n)
	if fr == nil {
		err := runPool(workers, n, func(i int) error {
			out, cost, err := exec(i)
			if err != nil {
				return err
			}
			outs[i], costs[i] = out, cost
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		return outs, costs, nil
	}
	attempts := fr.beginPhase(phase, n)
	err := runPool(workers, n, func(i int) error {
		out, cost, ta, err := runTaskAttempts(fr, phase, i, func() (T, costmodel.Units, error) {
			return exec(i)
		})
		attempts[i] = ta
		if err != nil {
			return err
		}
		outs[i], costs[i] = out, cost
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if fr.policy.Speculation {
		if err := speculatePhase(fr, phase, workers, outs, costs, exec); err != nil {
			return nil, nil, err
		}
	}
	return outs, costs, nil
}

// speculatePhase runs the straggler pass for the barrier engine: once
// every task is in, each is checked against the phase-wide straggler
// threshold on the worker pool. The pipelined engine wires the same
// per-task check (speculateTask) into its graph as non-blocking nodes.
func speculatePhase[T any](fr *faultRuntime, phase faults.Phase, workers int,
	outs []T, costs []costmodel.Units, exec func(i int) (T, costmodel.Units, error)) error {
	n := len(outs)
	if n < 2 {
		return nil
	}
	thr := quantile(costs, fr.policy.SpeculationQuantile)
	if thr <= 0 {
		return nil
	}
	return runPool(workers, n, func(i int) error {
		return speculateTask(fr, phase, i, thr, outs[i], costs[i], exec)
	})
}

// speculateTask runs the straggler check for one committed task: if
// its committed attempt ran longer on the attempt timeline than thr
// (the phase's SpeculationQuantile of clean task costs — the same
// per-task cost distribution the engine feeds obs's mr_task_cost_units
// histogram), it gets a duplicate attempt, launched the moment the
// straggler crossed the threshold. First finisher wins the commit on
// the attempt timeline; the loser is killed. Deterministic task
// functions make both attempts byte-identical, which is verified here
// — speculation doubles as an engine self-check. The caller's
// committed output always stands either way (a winning backup is, by
// the verified determinism, the same bytes), so speculation can never
// block or perturb downstream consumers.
func speculateTask[T any](fr *faultRuntime, phase faults.Phase, i int, thr costmodel.Units,
	out T, cost costmodel.Units, exec func(i int) (T, costmodel.Units, error)) error {
	ta := fr.phases[phase][i]
	if ta == nil || ta.committed < 0 || ta.commitDur <= thr {
		return nil
	}
	specIdx := fr.policy.MaxRetries + 2 // first attempt index past the retry ladder
	f := fr.decide(phase, i, specIdx)
	fr.live.Speculate(live.Phase(phase), i)
	specOut, specCost, err := exec(i)
	// Whatever the race outcome, the speculative output never replaces
	// the committed one — release any host resources it holds.
	defer discardAttemptOutput(specOut)
	launch := ta.commitStart + thr // straggling detected thr units in
	rec := attemptRecord{Attempt: specIdx, Speculative: true, Start: launch}
	switch {
	case err != nil:
		// Unreachable for deterministic tasks (the committed attempt
		// succeeded); recorded for completeness.
		rec.Outcome, rec.Dur = outcomeError, specCost
	case f.Kind == faults.Crash:
		rec.Outcome, rec.Dur = outcomeCrash, specCost*crashFraction
	case f.Kind == faults.Hang:
		rec.Outcome, rec.Dur = outcomeTimeout, fr.timeout(specCost)
	default:
		rec.Outcome, rec.Dur = outcomeOK, specCost
		if f.Kind == faults.Slow {
			factor := f.Factor
			if factor <= 1 {
				factor = defaultSlowFactor
			}
			rec.Outcome, rec.Dur = outcomeSlow, specCost*factor
		}
		if launch+rec.Dur < ta.commitStart+ta.commitDur {
			// The backup finishes first: it commits on the attempt
			// timeline and the original is killed. Its output is verified
			// byte-identical, so the already-published task output needs
			// no replacement.
			if specCost != cost || !attemptOutputsEqual(specOut, out) {
				return fmt.Errorf("mapreduce: %s task %d speculative attempt diverged from committed attempt", phase, i)
			}
			ta.records[ta.committed].Killed = true
			ta.records = append(ta.records, rec)
			ta.committed = len(ta.records) - 1
			ta.commitStart, ta.commitDur = launch, rec.Dur
			return nil
		}
		rec.Killed = true // lost the race; the original commit stands
	}
	ta.records = append(ta.records, rec)
	return nil
}

// quantile returns the nearest-rank q-th quantile of xs.
func quantile(xs []costmodel.Units, q float64) costmodel.Units {
	sorted := slices.Clone(xs)
	slices.Sort(sorted)
	idx := int(math.Ceil(q * float64(len(sorted)-1)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// attemptStats aggregates the run's attempt counters.
type attemptStats struct {
	started, retried, speculated, killed int64
}

func (fr *faultRuntime) stats() attemptStats {
	var st attemptStats
	for _, tasks := range fr.phases {
		for _, ta := range tasks {
			if ta == nil {
				continue
			}
			for _, r := range ta.records {
				st.started++
				if r.Speculative {
					st.speculated++
				} else if r.Attempt > 1 {
					st.retried++
				}
				if r.Killed {
					st.killed++
				}
			}
		}
	}
	return st
}

// emitAttemptSpans publishes one span per recorded attempt, rebased
// from the task-local attempt timeline onto the task's scheduled slot
// (base returns each task's global start and lane). Attempts may
// extend past the committed task's scheduled extent — the shadow
// timeline shows what fault recovery cost, while Result keeps the
// fault-free schedule.
func (fr *faultRuntime) emitAttemptSpans(tr *obs.Tracer, pid int, phase faults.Phase,
	base func(task int) (costmodel.Units, int)) {
	for task, ta := range fr.phases[phase] {
		if ta == nil {
			continue
		}
		start, tid := base(task)
		for _, r := range ta.records {
			outcome := r.Outcome
			if r.Killed {
				outcome += "-killed"
			}
			tr.Add(obs.Span{
				Cat: "attempt", Name: fmt.Sprintf("attempt %s %d/%d", phase, task, r.Attempt),
				PID: pid, TID: tid,
				Start: start + r.Start, Dur: r.Dur,
				Args: []obs.Arg{
					obs.A("phase", string(phase)),
					obs.A("task", task),
					obs.A("attempt", r.Attempt),
					obs.A("outcome", outcome),
					obs.A("speculative", r.Speculative),
				},
			})
		}
	}
}

// ErrTaskLost marks a dispatched task execution whose lease was lost —
// the worker holding it stopped heartbeating (or died) before
// completing. It is a *host-level* failure, distinct from the
// simulated faults above: the task body itself never misbehaved, some
// machine did. Remote transports surface it from RemoteJob.RunTask;
// the engine's dispatch layer re-leases within the RetryPolicy budget.
var ErrTaskLost = errors.New("mapreduce: task lease lost")

// lostRetryBudget is how many times a lost lease is re-dispatched
// before the job fails: the configured RetryPolicy.MaxRetries, with
// the same default the simulated attempt ladder uses.
func lostRetryBudget(cfg *Config) int {
	if cfg.Retry.MaxRetries > 0 {
		return cfg.Retry.MaxRetries
	}
	return defaultMaxRetries
}

// retryLost re-executes a dispatch while it keeps failing with
// ErrTaskLost, up to budget re-dispatches. Lost leases are retried
// *below* runTaskAttempts deliberately: a lease expiry is wall-clock
// host chaos that cannot be placed on the simulated attempt timeline,
// so it must not mint attemptRecords (which would change trace bytes).
// Re-executing the deterministic task body instead yields the exact
// output the first lease would have produced, keeping Result, trace,
// and quality bytes identical to a loss-free run.
func retryLost[T any](budget int, exec func() (T, error)) (T, error) {
	for attempt := 0; ; attempt++ {
		out, err := exec()
		if err == nil || !errors.Is(err, ErrTaskLost) || attempt >= budget {
			return out, err
		}
	}
}
