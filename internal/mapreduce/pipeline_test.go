package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"proger/internal/faults"
	"proger/internal/obs"
)

// ---- taskGraph unit tests ----

// TestTaskGraphRespectsDependencies runs a diamond a→{b,c}→d many
// times concurrently and asserts every observed completion order is a
// topological order of the graph.
func TestTaskGraphRespectsDependencies(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		var mu sync.Mutex
		var order []string
		mark := func(name string) func() error {
			return func() error {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				return nil
			}
		}
		g := &taskGraph{}
		a := g.node(nodeKey{nodeMap, 0}, mark("a"))
		b := g.node(nodeKey{nodeShuffle, 0}, mark("b"))
		c := g.node(nodeKey{nodeShuffle, 1}, mark("c"))
		d := g.node(nodeKey{nodeReduce, 0}, mark("d"))
		g.edge(a, b)
		g.edge(a, c)
		g.edge(b, d)
		g.edge(c, d)
		if err := g.execute(4); err != nil {
			t.Fatal(err)
		}
		pos := map[string]int{}
		for i, name := range order {
			pos[name] = i
		}
		if len(pos) != 4 {
			t.Fatalf("ran %d nodes, want 4 (order %v)", len(pos), order)
		}
		for _, dep := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
			if pos[dep[0]] > pos[dep[1]] {
				t.Fatalf("node %q ran before its dependency %q (order %v)", dep[1], dep[0], order)
			}
		}
	}
}

// TestTaskGraphFailureStopsDispatch: once a node fails, no
// not-yet-dispatched node runs — including ready siblings still in the
// queue when the failure lands (workers=1 makes that deterministic).
func TestTaskGraphFailureStopsDispatch(t *testing.T) {
	var ran []string
	g := &taskGraph{}
	a := g.node(nodeKey{nodeMap, 0}, func() error {
		ran = append(ran, "a")
		return errors.New("boom")
	})
	b := g.node(nodeKey{nodeMap, 1}, func() error {
		ran = append(ran, "b")
		return nil
	})
	c := g.node(nodeKey{nodeReduce, 0}, func() error {
		ran = append(ran, "c")
		return nil
	})
	g.edge(a, c)
	g.edge(b, c)
	err := g.execute(1)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
	if !reflect.DeepEqual(ran, []string{"a"}) {
		t.Errorf("ran %v, want only the failing node", ran)
	}
}

// TestTaskGraphPanicBecomesError: a panicking node is converted to the
// same error shape runPool produces, not a dead process.
func TestTaskGraphPanicBecomesError(t *testing.T) {
	g := &taskGraph{}
	g.node(nodeKey{nodeMap, 7}, func() error { panic("kaboom") })
	err := g.execute(2)
	if err == nil || !strings.Contains(err.Error(), "task 7 panicked: kaboom") {
		t.Fatalf("err = %v, want task-7 panic error", err)
	}
}

// TestTaskGraphFailureOrderDeterministic: failures collected from
// concurrently running nodes are always reported in (phase, task)
// order, no matter which finished first.
func TestTaskGraphFailureOrderDeterministic(t *testing.T) {
	want := "mapreduce: map task 1 failed\nmapreduce: reduce task 0 failed"
	for trial := 0; trial < 30; trial++ {
		g := &taskGraph{}
		// Both roots are ready immediately and run concurrently.
		g.node(nodeKey{nodeReduce, 0}, func() error {
			return errors.New("mapreduce: reduce task 0 failed")
		})
		g.node(nodeKey{nodeMap, 1}, func() error {
			return errors.New("mapreduce: map task 1 failed")
		})
		err := g.execute(2)
		if err == nil {
			t.Fatal("no error")
		}
		if got := err.Error(); got != want {
			// Both may not always fail (first failure stops dispatch only
			// for queued nodes; these two are usually both in flight). If
			// only one landed, it must still be a clean single error.
			if got != "mapreduce: map task 1 failed" && got != "mapreduce: reduce task 0 failed" {
				t.Fatalf("trial %d: err = %q", trial, got)
			}
		}
	}
}

// TestTaskGraphWorkerClamp: degenerate worker counts still complete.
func TestTaskGraphWorkerClamp(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 100} {
		n := 0
		g := &taskGraph{}
		g.node(nodeKey{nodeMap, 0}, func() error { n++; return nil })
		if err := g.execute(workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != 1 {
			t.Fatalf("workers=%d: node ran %d times", workers, n)
		}
	}
	if err := (&taskGraph{}).execute(4); err != nil {
		t.Fatalf("empty graph: %v", err)
	}
}

// ---- barrier ↔ pipelined equivalence ----

// forceHostParallel raises GOMAXPROCS to at least 2 for the test's
// duration so the pipelined engine's incremental-premerge path (gated
// on host parallelism) is exercised even on single-CPU machines.
func forceHostParallel(t *testing.T) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < 2 {
		runtime.GOMAXPROCS(2)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// pipelineVariants returns named config mutations covering the engine
// paths that diverge structurally between the two execution modes:
// the incremental premerge (plain), the combiner path, the spill path
// (single shuffle node), and skewed task counts.
func pipelineVariants() map[string]func(*Config) {
	return map[string]func(*Config){
		"plain":       func(cfg *Config) {},
		"combiner":    func(cfg *Config) { cfg.Combine = sumCombiner },
		"spill":       func(cfg *Config) { cfg.ShuffleMemLimit = 2 },
		"singlemap":   func(cfg *Config) { cfg.NumMapTasks = 1 },
		"manyreduce":  func(cfg *Config) { cfg.NumReduceTasks = 5 },
		"singleslots": func(cfg *Config) { cfg.Cluster = Cluster{Machines: 1, SlotsPerMachine: 1} },
	}
}

// TestPipelinedMatchesBarrier: the full Result — output bytes,
// timestamps, counters, schedule, slot assignments — must be identical
// between the barriered reference engine and the pipelined engine, for
// every variant × worker count.
func TestPipelinedMatchesBarrier(t *testing.T) {
	forceHostParallel(t)
	for name, mutate := range pipelineVariants() {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				bCfg := wordCountConfig(workers)
				mutate(&bCfg)
				bCfg.Execution = ExecBarrier
				pCfg := wordCountConfig(workers)
				mutate(&pCfg)
				pCfg.Execution = ExecPipelined

				bRes, err := Run(bCfg, wordCountInput(), 0)
				if err != nil {
					t.Fatalf("barrier: %v", err)
				}
				pRes, err := Run(pCfg, wordCountInput(), 0)
				if err != nil {
					t.Fatalf("pipelined: %v", err)
				}
				if !reflect.DeepEqual(bRes, pRes) {
					t.Errorf("Result diverged between engines:\nbarrier:   %+v\npipelined: %+v", bRes, pRes)
				}
			})
		}
	}
}

// TestPipelinedMatchesBarrierUnderFaults extends the equivalence to
// the attempt runtime: with deterministic fault injection, retries,
// and speculation active, both engines must produce the identical
// Result at every worker count.
func TestPipelinedMatchesBarrierUnderFaults(t *testing.T) {
	forceHostParallel(t)
	for _, rate := range []float64{0, 0.5} {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("rate=%v/workers=%d", rate, workers), func(t *testing.T) {
				run := func(mode ExecutionMode) *Result {
					cfg := wordCountConfig(workers)
					cfg.Execution = mode
					if rate > 0 {
						cfg.Faults = faults.NewSeeded(11, rate)
						cfg.Retry = RetryPolicy{MaxRetries: 3, Speculation: true}
					}
					res, err := Run(cfg, wordCountInput(), 0)
					if err != nil {
						t.Fatalf("mode=%v: %v", mode, err)
					}
					return res
				}
				bRes := run(ExecBarrier)
				pRes := run(ExecPipelined)
				if !reflect.DeepEqual(bRes, pRes) {
					t.Errorf("Result diverged under faults:\nbarrier:   %+v\npipelined: %+v", bRes, pRes)
				}
			})
		}
	}
}

// TestPipelinedTraceMatchesBarrier: the simulated-clock Chrome trace
// export must be byte-identical across engines and worker counts —
// the pipelined engine's different host interleaving must leave no
// fingerprint on the exported timeline.
func TestPipelinedTraceMatchesBarrier(t *testing.T) {
	forceHostParallel(t)
	export := func(mode ExecutionMode, workers int) []byte {
		cfg := wordCountConfig(workers)
		cfg.Execution = mode
		cfg.Trace = obs.New()
		cfg.Metrics = obs.NewRegistry()
		if _, err := Run(cfg, wordCountInput(), 0); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := cfg.Trace.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	ref := export(ExecBarrier, 1)
	for _, workers := range []int{1, 4, 8} {
		if got := export(ExecPipelined, workers); !bytes.Equal(got, ref) {
			t.Errorf("pipelined workers=%d: trace JSON differs from barrier reference", workers)
		}
	}
}

// TestPipelinedErrorPropagates: task errors surface through the graph
// with the same wrapping as the barrier engine's runPool.
func TestPipelinedErrorPropagates(t *testing.T) {
	cfg := wordCountConfig(4)
	cfg.Execution = ExecPipelined
	cfg.NewMapper = func() Mapper { return failingMapper{} }
	_, err := Run(cfg, wordCountInput(), 0)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want map failure", err)
	}
}
