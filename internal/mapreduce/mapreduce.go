// Package mapreduce implements a from-scratch, in-process MapReduce
// framework with the contract the paper's algorithms rely on:
//
//   - map tasks consume input splits and emit key-value pairs;
//   - a pluggable partition function routes each pair to a reduce task;
//   - each reduce task sorts its input by key, groups equal keys, and
//     invokes the reduce function once per group, in key order;
//   - tasks run on a simulated cluster of machines × slots-per-machine,
//     and every task accounts its work in deterministic cost units
//     (see internal/costmodel), producing a global timeline;
//   - reduce output records are timestamped, which is what makes
//     *progressive* result delivery observable (§III-B: "outputs the
//     results to a different file every α units of cost").
//
// The engine executes tasks concurrently (bounded worker pool) but all
// timing comes from the cost model, so results and timelines are
// bit-for-bit reproducible regardless of real scheduling.
package mapreduce

import (
	"fmt"

	"proger/internal/costmodel"
	"proger/internal/faults"
	"proger/internal/membudget"
	"proger/internal/obs"
	"proger/internal/obs/live"
	"proger/internal/obs/quality"
)

// KeyValue is the unit of data flowing through a job.
type KeyValue struct {
	Key   string
	Value []byte
}

// TimedKV is a reduce-output record stamped with when it was produced:
// Local is cost units since its reduce task started working; Global is
// cost units since the start of the whole run (job chain).
type TimedKV struct {
	KeyValue
	Local  costmodel.Units
	Global costmodel.Units
	Task   int // producing reduce task index
}

// Emitter receives the pairs emitted by map and reduce functions.
type Emitter interface {
	Emit(key string, value []byte)
}

// Mapper is the user map function plus optional per-task lifecycle.
// One Mapper instance is created per map task (via Config.NewMapper),
// mirroring Hadoop's task-scoped Mapper objects, so implementations may
// keep per-task state without locking.
type Mapper interface {
	// Setup runs once before the first Map call. Schedule generation in
	// the paper's second job happens here (§III-B).
	Setup(ctx *TaskContext) error
	// Map processes one input record.
	Map(ctx *TaskContext, rec KeyValue, emit Emitter) error
	// Cleanup runs after the last Map call.
	Cleanup(ctx *TaskContext, emit Emitter) error
}

// Reducer is the user reduce function plus optional per-task lifecycle.
type Reducer interface {
	Setup(ctx *TaskContext) error
	// Reduce is called once per distinct key, with all values for that
	// key in emission order. The values slice is scratch owned by the
	// framework and reused for the next key group: implementations may
	// keep the []byte elements, but must not retain the slice itself
	// past the call.
	Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error
	Cleanup(ctx *TaskContext, emit Emitter) error
}

// MapperBase and ReducerBase provide no-op lifecycle methods so user
// types only implement what they need.
type MapperBase struct{}

// Setup implements Mapper.
func (MapperBase) Setup(*TaskContext) error { return nil }

// Cleanup implements Mapper.
func (MapperBase) Cleanup(*TaskContext, Emitter) error { return nil }

// ReducerBase provides no-op lifecycle methods for Reducers.
type ReducerBase struct{}

// Setup implements Reducer.
func (ReducerBase) Setup(*TaskContext) error { return nil }

// Cleanup implements Reducer.
func (ReducerBase) Cleanup(*TaskContext, Emitter) error { return nil }

// Combiner merges the values of one key on the map side before the
// shuffle, cutting shuffle volume — Hadoop's combiner contract: it must
// be associative/commutative in effect, since the framework may apply
// it zero or more times. Like Reducer.Reduce, the values slice is
// framework-owned scratch reused between key groups; return a fresh
// slice rather than the input slice itself.
type Combiner func(key string, values [][]byte) [][]byte

// Partitioner routes a key to one of numReduce reduce tasks.
type Partitioner func(key string, numReduce int) int

// HashPartitioner is the default hash-based partition function (FNV-1a),
// the behaviour of Hadoop's HashPartitioner.
func HashPartitioner(key string, numReduce int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(numReduce))
}

// ExecutionMode selects how the engine executes a job's tasks on the
// host machine. Like Workers, it is purely a host-side knob: both modes
// produce byte-identical Results, traces, counters, and quality
// exports, because all timing comes from the simulated cost model.
type ExecutionMode int

const (
	// ExecPipelined (the default) runs the job as a dependency-driven
	// task graph on one shared worker pool: a partition's shuffle merge
	// starts incrementally as its map-side sorted runs commit, and
	// reduce task r fires the moment its merge completes — no phase
	// barriers, so one straggling task no longer serializes the whole
	// pipeline.
	ExecPipelined ExecutionMode = iota
	// ExecBarrier runs the job as three fully barriered phases
	// (map → shuffle → reduce), each on its own worker-pool pass. Kept
	// in-tree as the reference implementation the pipelined engine is
	// equivalence-tested and benchmarked against.
	ExecBarrier
)

// Cluster describes the simulated hardware: the paper runs at most two
// concurrent map and two concurrent reduce tasks per machine (§VI-A1).
type Cluster struct {
	Machines        int
	SlotsPerMachine int
}

// Slots returns the total number of concurrent task slots.
func (c Cluster) Slots() int { return c.Machines * c.SlotsPerMachine }

// Config specifies a job.
type Config struct {
	// Name labels the job in errors and counters.
	Name string
	// NewMapper and NewReducer create one task-scoped instance each.
	NewMapper  func() Mapper
	NewReducer func() Reducer
	// Partition routes map-output keys; HashPartitioner if nil.
	Partition Partitioner
	// Combine, when non-nil, merges each map task's output values per
	// key before the shuffle (charged at EmitRecord per surviving
	// record).
	Combine Combiner
	// NumMapTasks and NumReduceTasks size the job. The paper sets map
	// tasks = map slots and reduce tasks = reduce slots.
	NumMapTasks    int
	NumReduceTasks int
	// Cluster is the simulated hardware.
	Cluster Cluster
	// Cost is the cost model; costmodel.Default() if zero.
	Cost costmodel.Model
	// Side is arbitrary read-only side data visible to all tasks
	// (Hadoop's distributed cache); e.g. Job 1's block statistics.
	Side any
	// Workers bounds real concurrency of the in-process execution;
	// defaults to GOMAXPROCS. Purely a host-machine knob: it cannot
	// change results or simulated timing.
	Workers int
	// Execution picks the pipelined task-graph engine (default) or the
	// barriered reference engine. A host-machine knob like Workers.
	Execution ExecutionMode
	// Transport selects where task bodies execute: in-process on the
	// channel pool (nil / LocalTransport, the default) or leased to
	// worker processes through a RemoteTransport (internal/dist). A
	// host-machine knob like Workers: every transport produces
	// byte-identical Results, traces, and quality exports. Remote
	// transports require the pipelined engine and are incompatible
	// with MemBudget/ShuffleMemLimit (run files, not memory pressure,
	// are the distributed data plane).
	Transport TaskTransport
	// ShuffleMemLimit, when > 0, bounds the records a reduce task's
	// shuffle may buffer in host memory; beyond it, sorted runs spill
	// to SpillDir and are k-way merged (Hadoop's spill-and-merge
	// shuffle). Purely a host-machine knob, like Workers.
	ShuffleMemLimit int
	// SpillDir receives shuffle spill files; os.TempDir()-based default.
	SpillDir string
	// MemBudget, when non-nil, is the process-wide memory budget
	// manager governing out-of-core execution: reduce inputs buffer in
	// budget-charged stores, and the manager forces the largest holders
	// to spill compressed runs to SpillDir when the total tracked bytes
	// would exceed the budget. Purely a host-machine knob, like Workers:
	// what reaches disk depends on memory pressure, but the record
	// sequences — and therefore Result, traces, and quality exports —
	// are byte-identical to the in-memory run.
	MemBudget *membudget.Manager
	// Faults, when non-nil, injects deterministic simulated task
	// failures (crash/hang/slow) into the attempt runtime — see
	// internal/faults. A chaos/testing knob like Workers: injected
	// faults are retried, timed out, or speculated around on a shadow
	// attempt timeline, and can never alter Result.
	Faults faults.Injector
	// Retry configures the attempt runtime (bounded retries with
	// exponential backoff in cost units, per-attempt timeouts, and
	// speculative execution). The zero value disables the runtime
	// unless Faults is set, in which case defaults apply.
	Retry RetryPolicy
	// Trace, when non-nil, receives a span per map/reduce task, per
	// shuffle merge, per task attempt (when the attempt runtime is
	// active), and per task-local span recorded through
	// TaskContext.Span — all placed on the simulated global timeline
	// (wall-clock data is carried alongside). Nil disables tracing at
	// zero cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, absorbs the job's counters and per-task
	// cost distribution at the end of the run. Nil disables metrics at
	// zero cost.
	Metrics *obs.Registry
	// Quality, when non-nil, receives the block realizations reduce
	// functions record through TaskContext.ObserveBlock, rebased onto
	// the global simulated timeline and fed in task-index order. Like
	// Trace and Metrics, a host-side sink that can never affect Result;
	// because observations travel inside each task's committed result,
	// they are immune to fault injection and worker count by
	// construction. Nil disables at zero cost.
	Quality *quality.Recorder
	// Live, when non-nil, receives in-flight execution state: per-task
	// DAG node transitions, attempt/retry/speculation activity, shuffle
	// merge/spill progress, and per-block resolution realizations as
	// they happen — the feed behind the status server's /progress and
	// /tasks endpoints. Strictly write-only from the engine's side
	// (nothing in the run reads it back), so Result, traces, metrics,
	// and quality exports are byte-identical with or without it. Nil
	// disables at zero cost.
	Live *live.Run
}

func (c *Config) validate() error {
	if c.NewMapper == nil {
		return fmt.Errorf("mapreduce: job %q: NewMapper is required", c.Name)
	}
	if c.NewReducer == nil {
		return fmt.Errorf("mapreduce: job %q: NewReducer is required", c.Name)
	}
	if c.NumMapTasks <= 0 {
		return fmt.Errorf("mapreduce: job %q: NumMapTasks must be positive", c.Name)
	}
	if c.NumReduceTasks <= 0 {
		return fmt.Errorf("mapreduce: job %q: NumReduceTasks must be positive", c.Name)
	}
	if c.Cluster.Machines <= 0 || c.Cluster.SlotsPerMachine <= 0 {
		return fmt.Errorf("mapreduce: job %q: cluster %+v invalid", c.Name, c.Cluster)
	}
	if c.Retry.MaxRetries < 0 || c.Retry.BackoffBase < 0 || c.Retry.TimeoutFactor < 0 {
		return fmt.Errorf("mapreduce: job %q: retry policy %+v invalid", c.Name, c.Retry)
	}
	if q := c.Retry.SpeculationQuantile; q < 0 || q >= 1 {
		return fmt.Errorf("mapreduce: job %q: speculation quantile %v outside [0,1)", c.Name, q)
	}
	if c.Execution != ExecPipelined && c.Execution != ExecBarrier {
		return fmt.Errorf("mapreduce: job %q: unknown execution mode %d", c.Name, c.Execution)
	}
	switch c.Transport.(type) {
	case nil, LocalTransport, *LocalTransport:
	default:
		rt, ok := c.Transport.(RemoteTransport)
		if !ok {
			return fmt.Errorf("mapreduce: job %q: transport %q is neither local nor a RemoteTransport",
				c.Name, c.Transport.TransportName())
		}
		// Remote execution replicates the pipelined task graph across
		// processes; the barrier engine and the in-memory pressure knobs
		// have no distributed counterpart (run files are the data plane).
		if c.Execution != ExecPipelined {
			return fmt.Errorf("mapreduce: job %q: transport %q requires the pipelined engine",
				c.Name, rt.TransportName())
		}
		if c.MemBudget != nil {
			return fmt.Errorf("mapreduce: job %q: transport %q is incompatible with MemBudget",
				c.Name, rt.TransportName())
		}
		if c.ShuffleMemLimit > 0 {
			return fmt.Errorf("mapreduce: job %q: transport %q is incompatible with ShuffleMemLimit",
				c.Name, rt.TransportName())
		}
	}
	return nil
}

// Result is the outcome of a job run.
type Result struct {
	// Output is every reduce-output record with its timestamps, in
	// (task, emission) order.
	Output []TimedKV
	// Start and End are the job's global start and end times in cost
	// units (End = when the last reduce task finished).
	Start, End costmodel.Units
	// MapEnd is when the map phase barrier completed.
	MapEnd costmodel.Units
	// Counters aggregates all task counters.
	Counters Counters
	// TaskCosts records per-task total cost, map tasks then reduce
	// tasks, for diagnostics and tests.
	MapTaskCosts    []costmodel.Units
	ReduceTaskCosts []costmodel.Units
	// MapStarts and ReduceStarts record each task's global start time.
	MapStarts    []costmodel.Units
	ReduceStarts []costmodel.Units
	// MapSlots and ReduceSlots record the simulated cluster slot each
	// task ran on (the trace's thread lane).
	MapSlots    []int
	ReduceSlots []int
}

// Segment is a contiguous α-interval of one reduce task's output — the
// "file" of the paper's incremental result delivery.
type Segment struct {
	Task       int
	Index      int             // segment number within the task
	Start, End costmodel.Units // local cost bounds [Start, End)
	Records    []TimedKV
}

// Segments splits one reduce task's output into α-cost-unit files, the
// way the paper's reduce function rolls its output file every α units.
// Results at time t are the union of all segments with End ≤ t.
func (r *Result) Segments(task int, alpha costmodel.Units) []Segment {
	if alpha <= 0 {
		panic("mapreduce: alpha must be positive")
	}
	var segs []Segment
	cur := Segment{Task: task, Index: 0, Start: 0, End: alpha}
	for _, kv := range r.Output {
		if kv.Task != task {
			continue
		}
		for kv.Local >= cur.End {
			segs = append(segs, cur)
			cur = Segment{Task: task, Index: cur.Index + 1, Start: cur.End, End: cur.End + alpha}
		}
		cur.Records = append(cur.Records, kv)
	}
	if len(cur.Records) > 0 {
		segs = append(segs, cur)
	}
	return segs
}
