package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// The engine benchmark reproduces the workload shape the pipelined
// engine targets: a straggling map task plus a skewed shuffle, where
// the barrier engine serializes map-straggler wait → all merges →
// all reduces, while the task graph premerges the seven fast map
// tasks' runs during the straggler and fires each reduce the moment
// its partition's merge commits.

const (
	benchMapTasks    = 8
	benchReduceTasks = 4
	// benchEmitPerMap records per fast map task; ~80% of them key into
	// partition 0, making its merge the shuffle-side straggler. Kept
	// small so the workload is compute- rather than allocation-bound:
	// the engines' structural difference (barriers vs overlap) is the
	// signal, not GC pressure from shuffle volume.
	benchEmitPerMap = 2000
	// benchStragglerSpin is map task 0's CPU burn, sized so the other
	// seven maps' shuffle premerge roughly hides behind it.
	benchStragglerSpin = 6_000_000
)

// benchSink defeats dead-code elimination of the spin loops.
var benchSink uint64

func spinWork(n int) {
	var acc uint64
	for i := 0; i < n; i++ {
		acc += uint64(i) * 2654435761
	}
	benchSink += acc
}

// pipelineBenchPartitioner reads the partition straight off the key's
// "r|" prefix, so the benchmark controls the skew exactly.
func pipelineBenchPartitioner(key string, numReduce int) int {
	r, err := strconv.Atoi(key[:strings.IndexByte(key, '|')])
	if err != nil || r < 0 || r >= numReduce {
		return 0
	}
	return r
}

// benchKeys is a prebuilt key table shared by every emission, so the
// benchmark's shuffle traffic costs no per-emit allocation — the
// engines' own allocation behaviour is what gets measured.
var benchKeys = func() [][]string {
	keys := make([][]string, benchReduceTasks)
	for r := range keys {
		keys[r] = make([]string, 4096)
		for i := range keys[r] {
			keys[r][i] = fmt.Sprintf("%d|%06d", r, i)
		}
	}
	return keys
}()

var benchPayload = []byte("v")

// pipelineBenchMapper burns the CPU budget in its record's value, then
// emits that record's share of shuffle traffic with 4-in-5 keys
// landing in partition 0.
type pipelineBenchMapper struct{ MapperBase }

func (pipelineBenchMapper) Map(ctx *TaskContext, rec KeyValue, emit Emitter) error {
	fields := strings.Fields(string(rec.Value))
	spin, _ := strconv.Atoi(fields[0])
	emits, _ := strconv.Atoi(fields[1])
	spinWork(spin)
	task, _ := strconv.Atoi(rec.Key)
	for i := 0; i < emits; i++ {
		r := 0
		if i%5 == 0 {
			r = 1 + (task+i)%(benchReduceTasks-1)
		}
		emit.Emit(benchKeys[r][(task*7919+i*13)%4096], benchPayload)
	}
	return nil
}

// pipelineBenchReducer makes partitions 1..3 CPU-heavy: their reduce
// work is exactly what the barrier engine cannot start until partition
// 0's big merge has finished, and what the task graph overlaps with it.
type pipelineBenchReducer struct{ ReducerBase }

func (pipelineBenchReducer) Reduce(ctx *TaskContext, key string, values [][]byte, emit Emitter) error {
	spin := 20
	if key[0] != '0' {
		spin = 5000
	}
	spinWork(spin * len(values))
	emit.Emit(key, []byte(strconv.Itoa(len(values))))
	return nil
}

func pipelineBenchInput() []KeyValue {
	in := make([]KeyValue, benchMapTasks)
	for i := range in {
		spec := fmt.Sprintf("0 %d", benchEmitPerMap)
		if i == 0 {
			// The straggler: all CPU, almost no shuffle traffic.
			spec = fmt.Sprintf("%d 100", benchStragglerSpin)
		}
		in[i] = KeyValue{Key: strconv.Itoa(i), Value: []byte(spec)}
	}
	return in
}

func pipelineBenchConfig(workers int, mode ExecutionMode) Config {
	return Config{
		Name:           "engine-bench",
		NewMapper:      func() Mapper { return pipelineBenchMapper{} },
		NewReducer:     func() Reducer { return pipelineBenchReducer{} },
		Partition:      pipelineBenchPartitioner,
		NumMapTasks:    benchMapTasks,
		NumReduceTasks: benchReduceTasks,
		Cluster:        Cluster{Machines: 4, SlotsPerMachine: 2},
		Workers:        workers,
		Execution:      mode,
	}
}

// BenchmarkEnginePipeline compares host wall time of the barriered
// reference engine against the dependency-driven task graph on the
// skewed workload above. Sub-benchmark names split on the engine so
// `make bench-compare` can diff barrier vs pipelined per worker count.
func BenchmarkEnginePipeline(b *testing.B) {
	in := pipelineBenchInput()
	engines := []struct {
		name string
		mode ExecutionMode
	}{
		{"barrier", ExecBarrier},
		{"pipelined", ExecPipelined},
	}
	for _, eng := range engines {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", eng.name, workers), func(b *testing.B) {
				cfg := pipelineBenchConfig(workers, eng.mode)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Run(cfg, in, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
