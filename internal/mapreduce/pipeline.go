package mapreduce

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"proger/internal/costmodel"
	"proger/internal/faults"
	"proger/internal/obs/live"
)

// This file implements the pipelined engine (ExecPipelined): instead
// of three barriered phase passes, the whole job becomes one static
// dependency DAG executed on one shared worker pool. A node is
// dispatched the moment its last dependency completes, so map output
// flows into shuffle merges and shuffle output into reduce tasks
// without any global barrier — a straggling map task only delays the
// partitions it actually feeds work into, not the whole cluster.
//
// The graph per job:
//
//	map m  ──┬─▶ shuffle merge(s) for partition r ──▶ reduce r
//	         └─▶ (speculation gate ──▶ per-task speculation checks)
//
// Determinism is preserved because nothing about real execution order
// is observable: every node writes only its own task-indexed slots of
// phaseOutputs, and the simulated schedule, Result, spans, metrics,
// and quality exports are all derived afterwards from those outputs —
// exactly as in the barrier engine.

// nodePhase ranks graph nodes for deterministic error reporting,
// mirroring the barrier engine's phase order.
type nodePhase int

const (
	nodeMap nodePhase = iota
	nodeShuffle
	nodeReduce
	nodeSpecMap
	nodeSpecShuffle
	nodeSpecReduce
)

// nodeKey identifies a node's (phase, task) for error attribution.
// Several merge nodes may share one shuffle key; seq breaks ties.
type nodeKey struct {
	phase nodePhase
	task  int
}

// dagNode is one schedulable unit of engine work.
type dagNode struct {
	key nodeKey
	seq int // insertion order; error-ordering tie-break
	run func() error
	// waits counts unmet dependencies; mutated only under dagRun.mu.
	waits int
	succs []*dagNode
}

// taskGraph is a static dependency DAG. Build it single-threaded with
// node/edge, then call execute exactly once.
type taskGraph struct {
	nodes []*dagNode
}

func (g *taskGraph) node(key nodeKey, run func() error) *dagNode {
	n := &dagNode{key: key, seq: len(g.nodes), run: run}
	g.nodes = append(g.nodes, n)
	return n
}

func (g *taskGraph) edge(from, to *dagNode) {
	from.succs = append(from.succs, to)
	to.waits++
}

// dagRun is the mutable state of one graph execution. Ready nodes
// flow through the buffered `ready` channel (capacity = node count,
// so enqueues never block); bookkeeping is guarded by mu. Completion
// of a node happens-before dispatch of its successors, which is what
// makes single-writer task slots safe to read downstream without
// atomics.
type dagRun struct {
	ready    chan *dagNode
	done     chan struct{}
	mu       sync.Mutex
	undone   int // nodes not yet completed
	inflight int // nodes currently executing
	failed   bool
	failures []nodeFailure
}

type nodeFailure struct {
	key nodeKey
	seq int
	err error
}

// execute runs the graph on up to `workers` goroutines. After the
// first failure no further node is dispatched (in-flight nodes drain),
// and every collected failure is reported, joined in deterministic
// (phase, task, insertion) order — the same stop-dispatch-and-join
// contract runPool gives the barrier engine. A panicking node becomes
// a node failure with runPool's message shape rather than a dead
// engine.
func (g *taskGraph) execute(workers int) error {
	if len(g.nodes) == 0 {
		return nil
	}
	if workers > len(g.nodes) {
		workers = len(g.nodes)
	}
	if workers < 1 {
		workers = 1
	}
	r := &dagRun{
		ready:  make(chan *dagNode, len(g.nodes)),
		done:   make(chan struct{}),
		undone: len(g.nodes),
	}
	for _, n := range g.nodes {
		if n.waits == 0 {
			r.ready <- n
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.work()
		}()
	}
	wg.Wait()
	if len(r.failures) == 0 {
		return nil
	}
	sort.Slice(r.failures, func(i, j int) bool {
		a, b := r.failures[i], r.failures[j]
		if a.key.phase != b.key.phase {
			return a.key.phase < b.key.phase
		}
		if a.key.task != b.key.task {
			return a.key.task < b.key.task
		}
		return a.seq < b.seq
	})
	errs := make([]error, len(r.failures))
	for i, f := range r.failures {
		errs[i] = f.err
	}
	return errors.Join(errs...)
}

// work is one worker's dispatch loop. A queued node is only executed
// if no failure has landed yet — after the first failure, queued nodes
// are drained without running (stop-dispatch), in-flight nodes finish,
// and the last completion closes `done`.
func (r *dagRun) work() {
	for {
		select {
		case <-r.done:
			return
		case n := <-r.ready:
			r.mu.Lock()
			if r.failed {
				r.mu.Unlock()
				continue
			}
			r.inflight++
			r.mu.Unlock()
			// Each node runs on a fresh goroutine (the worker blocks on
			// it, so concurrency stays capped at `workers`). This mirrors
			// runPool's per-phase goroutines: task goroutines start with
			// zero GC assist debt, instead of long-lived workers
			// accumulating the whole job's debt and stalling on assists.
			ch := make(chan error, 1)
			go func() { ch <- runNodeSafe(n) }()
			r.complete(n, <-ch)
		}
	}
}

// complete records one node's outcome and enqueues newly-ready
// successors; when the graph can make no further progress — all nodes
// done, or a failure landed and the in-flight tail drained — it closes
// `done` to release the workers.
func (r *dagRun) complete(n *dagNode, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inflight--
	r.undone--
	if err != nil {
		r.failures = append(r.failures, nodeFailure{key: n.key, seq: n.seq, err: err})
		r.failed = true
	} else if !r.failed {
		for _, s := range n.succs {
			s.waits--
			if s.waits == 0 {
				r.ready <- s // buffered to node count; never blocks
			}
		}
	}
	if r.undone == 0 || (r.failed && r.inflight == 0) {
		close(r.done)
	}
}

func runNodeSafe(n *dagNode) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("mapreduce: task %d panicked: %v", n.key.task, p)
		}
	}()
	return n.run()
}

// runAttempted executes one task body — through the attempt runtime's
// retry ladder when it is active, directly otherwise — recording the
// attempt history in att[i]. Identical to what runPhase does per task,
// shared here so both engines produce identical attempt records.
func runAttempted[T any](fr *faultRuntime, phase faults.Phase, att []*taskAttempts, i int,
	exec func(i int) (T, costmodel.Units, error)) (T, costmodel.Units, error) {
	if fr == nil {
		return exec(i)
	}
	out, cost, ta, err := runTaskAttempts(fr, phase, i, func() (T, costmodel.Units, error) {
		return exec(i)
	})
	att[i] = ta
	return out, cost, err
}

// runPipelinedEngine executes the job as a dependency-driven task
// graph, filling phaseOutputs byte-identically to runBarrierEngine.
func runPipelinedEngine(cfg *Config, fr *faultRuntime, lj *live.Job, workers int, splits [][]KeyValue) (*phaseOutputs, error) {
	M, R := cfg.NumMapTasks, cfg.NumReduceTasks
	po := newPhaseOutputs(cfg)
	po.mapRes = make([]mapTaskResult, M)
	po.mapCosts = make([]costmodel.Units, M)
	po.shufRes = make([]shuffleTaskResult, R)
	po.reduceRes = make([]reduceTaskResult, R)
	po.reduceCosts = make([]costmodel.Units, R)

	mapOuts := make([][][]KeyValue, M) // [task][partition][]kv
	mExec := mapExec(cfg, lj, splits, po.mapWall)
	sExec := shuffleExec(cfg, lj, mapOuts, po.shufWall)
	rExec := reduceExec(cfg, lj, po.shufRes, po.reduceWall)

	// Out-of-core mode: with a memory budget (and no fault runtime or
	// deterministic spill limit claiming the shuffle as attempt-tracked
	// work), every partition gets a budget-governed store up front. Map
	// nodes feed their committed runs straight into the stores and drop
	// their output buffers, so a map task's records stay referenced only
	// through the stores — and the budget manager decides what stays
	// resident. The stores are published into shufRes before execution
	// so Run can settle them even if the graph errors out.
	budgetMode := cfg.MemBudget != nil && fr == nil && cfg.ShuffleMemLimit <= 0
	var stores []*spillStore
	if budgetMode {
		stores = make([]*spillStore, R)
		for r := 0; r < R; r++ {
			stores[r] = newSpillStore(cfg, cfg.MemBudget, r, false)
			po.shufRes[r] = shuffleTaskResult{in: stores[r]}
		}
	}

	// All three phases' attempt slots are allocated up front: with no
	// barriers, tasks of different phases run interleaved, and each
	// node writes only its own index.
	var mapAtt, shufAtt, redAtt []*taskAttempts
	if fr != nil {
		mapAtt = fr.beginPhase(faults.Map, M)
		shufAtt = fr.beginPhase(faults.Shuffle, R)
		redAtt = fr.beginPhase(faults.Reduce, R)
	}

	g := &taskGraph{}
	mapNodes := make([]*dagNode, M)
	for m := 0; m < M; m++ {
		m := m
		mapNodes[m] = g.node(nodeKey{nodeMap, m}, func() error {
			out, cost, err := runAttempted(fr, faults.Map, mapAtt, m, mExec)
			if err != nil {
				return err
			}
			po.mapRes[m], po.mapCosts[m] = out, cost
			mapOuts[m] = out.out
			if budgetMode {
				// Hand the committed runs to the partition stores and drop
				// the task's own references: from here on, residency of
				// this map task's records is the budget manager's call.
				for r := 0; r < R; r++ {
					if err := stores[r].addRun(m, out.out[r]); err != nil {
						return err
					}
				}
				mapOuts[m] = nil
				po.mapRes[m].out = nil
			}
			return nil
		})
	}

	// Shuffle wiring. With no fault runtime and no spill limit, each
	// partition merges incrementally: a binary tree of pairwise stable
	// merges over adjacent map-index ranges, each node firing as soon
	// as its two inputs commit — partition r's input starts assembling
	// while other map tasks are still running. Pairwise adjacent stable
	// merges compose to exactly the k-way stable merge order, so the
	// bytes match the barrier shuffle.
	//
	// With the attempt runtime or the spill path active, a partition's
	// shuffle must remain ONE attempt-tracked unit of work — fault
	// decisions are keyed (phase, task, attempt) and the spill decision
	// needs the partition's total record count — so it runs as a single
	// node (shuffleForTask) gated on all map tasks, preserving the
	// barrier engine's attempt history and spill counts byte-for-byte.
	//
	// The tree trades extra intermediate copies for overlap, so it is
	// only worth building when the host can actually run merge nodes
	// beside still-executing map tasks: with one worker or one
	// schedulable CPU it is pure copy overhead and the single-node
	// k-way merge is used instead. Either way the merged bytes — and
	// hence everything derived from them — are identical.
	hostParallel := workers > 1 && runtime.GOMAXPROCS(0) > 1
	premerge := fr == nil && cfg.ShuffleMemLimit <= 0 && !budgetMode && M > 1 && hostParallel
	shufNodes := make([]*dagNode, R)
	for r := 0; r < R; r++ {
		r := r
		if budgetMode {
			// The store already holds (or spilled) every run by the time
			// all map nodes committed; the node is pure dependency glue
			// keeping reduce r gated on the complete shuffle input. It still
			// reports a live shuffle transition so the /tasks table shows
			// partition assembly completing (zero cost: the reduce tasks
			// price shuffling on the simulated clock).
			shufNodes[r] = g.node(nodeKey{nodeShuffle, r}, func() error {
				lj.TaskStart(live.PhaseShuffle, r)
				lj.TaskDone(live.PhaseShuffle, r, 0, stores[r].Len())
				return nil
			})
			for _, mn := range mapNodes {
				g.edge(mn, shufNodes[r])
			}
		} else if premerge {
			var wt *mergeWall
			if po.shufWall != nil {
				wt = &mergeWall{}
			}
			shufNodes[r], _ = buildMergeRange(g, po, lj, mapNodes, mapOuts, wt, r, 0, M, true)
		} else {
			shufNodes[r] = g.node(nodeKey{nodeShuffle, r}, func() error {
				out, _, err := runAttempted(fr, faults.Shuffle, shufAtt, r, sExec)
				if err != nil {
					return err
				}
				// Like the barrier engine, the merge's simulated sort cost
				// is dropped here: reduce tasks price shuffling on the
				// simulated clock.
				po.shufRes[r] = out
				return nil
			})
			for _, mn := range mapNodes {
				g.edge(mn, shufNodes[r])
			}
		}
	}

	redNodes := make([]*dagNode, R)
	for i := 0; i < R; i++ {
		i := i
		redNodes[i] = g.node(nodeKey{nodeReduce, i}, func() error {
			out, cost, err := runAttempted(fr, faults.Reduce, redAtt, i, rExec)
			if err != nil {
				return err
			}
			po.reduceRes[i], po.reduceCosts[i] = out, cost
			return nil
		})
		g.edge(shufNodes[i], redNodes[i])
	}

	if fr != nil && fr.policy.Speculation {
		addSpeculationNodes(g, fr, faults.Map, nodeSpecMap, mapNodes, po.mapRes, po.mapCosts, mExec)
		// The shuffle phase speculates off its simulated sort costs,
		// which runPhase returns but both engines otherwise discard;
		// recompute them the same way for the gate's quantile.
		shufCosts := make([]costmodel.Units, R)
		shufCostOf := func(i int) costmodel.Units { return cfg.Cost.ShuffleSortCost(po.shufRes[i].in.Len()) }
		addSpeculationNodesWithCosts(g, fr, faults.Shuffle, nodeSpecShuffle, shufNodes, po.shufRes, shufCosts, shufCostOf, sExec)
		addSpeculationNodes(g, fr, faults.Reduce, nodeSpecReduce, redNodes, po.reduceRes, po.reduceCosts, rExec)
	}

	if err := (LocalTransport{}).execGraph(g, workers); err != nil {
		return po, err // po carries live stores; Run settles them
	}
	return po, nil
}

// mergeWall tracks the host wall window of one partition's incremental
// merge (first merge-node start → last merge-node end), tracing only.
type mergeWall struct {
	mu          sync.Mutex
	first, last time.Time
}

func (w *mergeWall) begin() {
	now := time.Now()
	w.mu.Lock()
	if w.first.IsZero() || now.Before(w.first) {
		w.first = now
	}
	w.mu.Unlock()
}

func (w *mergeWall) end() {
	now := time.Now()
	w.mu.Lock()
	if now.After(w.last) {
		w.last = now
	}
	w.mu.Unlock()
}

func (w *mergeWall) span() wallSpan {
	w.mu.Lock()
	defer w.mu.Unlock()
	return wallSpan{w.first, w.last.Sub(w.first)}
}

// buildMergeRange builds partition r's incremental merge over the map
// tasks in [lo, hi). A leaf (hi-lo == 1) is the map node itself, its
// output the map task's pre-sorted run for r; an internal node stably
// merges its two halves the moment both commit. The returned getter is
// valid once the returned node has completed. The root node publishes
// the partition's shuffleTaskResult (spilledRuns 0, matching the
// barrier engine's in-memory path).
func buildMergeRange(g *taskGraph, po *phaseOutputs, lj *live.Job, mapNodes []*dagNode, mapOuts [][][]KeyValue,
	wt *mergeWall, r, lo, hi int, root bool) (*dagNode, func() []KeyValue) {
	if hi-lo == 1 {
		return mapNodes[lo], func() []KeyValue { return mapOuts[lo][r] }
	}
	mid := (lo + hi) / 2
	ln, lget := buildMergeRange(g, po, lj, mapNodes, mapOuts, wt, r, lo, mid, false)
	rn, rget := buildMergeRange(g, po, lj, mapNodes, mapOuts, wt, r, mid, hi, false)
	out := new([]KeyValue)
	n := g.node(nodeKey{nodeShuffle, r}, func() error {
		if wt != nil {
			wt.begin()
		}
		*out = mergeTwo(lget(), rget())
		if wt != nil {
			wt.end()
		}
		if root {
			po.shufRes[r] = shuffleTaskResult{in: memInput{kvs: *out}}
			if wt != nil {
				po.shufWall[r] = wt.span()
			}
		}
		lj.MergeCommitted(r, root)
		return nil
	})
	g.edge(ln, n)
	g.edge(rn, n)
	return n, func() []KeyValue { return *out }
}

// addSpeculationNodes wires one phase's straggler pass into the graph:
// a gate node, dependent on every task of the phase, computes the
// straggler threshold (the quantile needs the whole phase's cost
// distribution — the one ordering constraint speculation genuinely
// has); then one node per task runs the same speculateTask check the
// barrier engine uses. Speculation nodes have no successors — a
// winning backup is verified byte-identical to the committed output —
// so reduce work never waits on them.
func addSpeculationNodes[T any](g *taskGraph, fr *faultRuntime, phase faults.Phase, np nodePhase,
	taskNodes []*dagNode, outs []T, costs []costmodel.Units, exec func(i int) (T, costmodel.Units, error)) {
	addSpeculationNodesWithCosts(g, fr, phase, np, taskNodes, outs, costs,
		func(i int) costmodel.Units { return costs[i] }, exec)
}

// addSpeculationNodesWithCosts is addSpeculationNodes for phases whose
// per-task clean costs are not retained in phaseOutputs (the shuffle):
// costOf recomputes task i's cost and the gate fills `costs` before
// taking the quantile.
func addSpeculationNodesWithCosts[T any](g *taskGraph, fr *faultRuntime, phase faults.Phase, np nodePhase,
	taskNodes []*dagNode, outs []T, costs []costmodel.Units, costOf func(i int) costmodel.Units,
	exec func(i int) (T, costmodel.Units, error)) {
	n := len(taskNodes)
	if n < 2 {
		return
	}
	var thr costmodel.Units
	gate := g.node(nodeKey{np, -1}, func() error {
		for i := range costs {
			costs[i] = costOf(i)
		}
		thr = quantile(costs, fr.policy.SpeculationQuantile)
		return nil
	})
	for _, tn := range taskNodes {
		g.edge(tn, gate)
	}
	for i := 0; i < n; i++ {
		i := i
		sn := g.node(nodeKey{np, i}, func() error {
			if thr <= 0 {
				return nil
			}
			return speculateTask(fr, phase, i, thr, outs[i], costs[i], exec)
		})
		g.edge(gate, sn)
	}
}
