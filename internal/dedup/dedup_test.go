package dedup

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestShouldResolveDominatingFamilyWins(t *testing.T) {
	// n=3 families. Both entities share the family-1 tree (dom 7).
	a := List{7, 20, 30}
	b := List{7, 21, 31}
	// Resolving under family 2 or 3: family 1 is responsible → false.
	if ShouldResolve(a, b, 2, 3) {
		t.Error("family-2 block must skip a pair shared under family 1")
	}
	if ShouldResolve(a, b, 3, 3) {
		t.Error("family-3 block must skip a pair shared under family 1")
	}
	// Resolving under family 1 itself: loop is empty → resolve.
	if !ShouldResolve(a, b, 1, 3) {
		t.Error("family-1 block must resolve its own pair")
	}
}

func TestShouldResolveNoSharing(t *testing.T) {
	a := List{1, 2, 3}
	b := List{4, 5, 6}
	for index := 1; index <= 3; index++ {
		if !ShouldResolve(a, b, index, 3) {
			t.Errorf("index %d: disjoint lists must resolve", index)
		}
	}
}

func TestShouldResolveSplitDescendant(t *testing.T) {
	// Both entities fall in the same split-off descendant tree (dom 99):
	// lists carry the (n+1)st value.
	a := List{10, 2, 3, 99}
	b := List{10, 5, 6, 99}
	if ShouldResolve(a, b, 1, 3) {
		t.Error("pair inside a common split subtree must be skipped by the ancestor tree")
	}
	// Different split subtrees → resolve (under family 1).
	b2 := List{10, 5, 6, 98}
	if !ShouldResolve(a, b2, 1, 3) {
		t.Error("different split subtrees must not suppress resolution")
	}
	// Only one entity has the extra value → resolve.
	b3 := List{10, 5, 6}
	if !ShouldResolve(a, b3, 1, 3) {
		t.Error("single-sided split value must not suppress resolution")
	}
}

func TestShouldResolvePaperExample(t *testing.T) {
	// §V example: T(X²₁) split from T(X¹₁), T(X³₁) split from T(X²₁).
	// List(e₁, X²₁) = [Dom(T(X²₁)), Dom(T(Y¹₁)), Dom(T(X³₁))].
	// n = 2 main functions (X, Y).
	domX21, domY11, domX31 := Dom(5), Dom(8), Dom(12)
	e1 := List{domX21, domY11, domX31}
	e2 := List{domX21, domY11, domX31}
	// Resolving inside T(X²₁) (family X, index 1): both entities are in
	// the deeper split tree T(X³₁) → skip; T(X³₁) handles the pair.
	if ShouldResolve(e1, e2, 1, 2) {
		t.Error("pair of a deeper split tree must be skipped")
	}
	// An entity pair sharing X²₁'s tree but not the deeper split:
	e3 := List{domX21, domY11}
	if !ShouldResolve(e1, e3, 1, 2) {
		t.Error("pair not fully inside the split tree must be resolved")
	}
	// Under family Y (index 2): the X-family position (m=0) is shared →
	// the Y tree must skip.
	if ShouldResolve(e1, e2, 2, 2) {
		t.Error("Y tree must defer to the dominating X tree")
	}
}

func TestShouldResolveExactlyOneResponsible(t *testing.T) {
	// Property: for any pair of lists (same length, no split values),
	// exactly one family index among those where the lists share a tree
	// claims responsibility — the smallest sharing index — and indexes
	// below it that don't share never claim it incorrectly.
	f := func(a0, b0, a1, b1, a2, b2 int8) bool {
		a := List{Dom(a0), Dom(a1), Dom(a2)}
		b := List{Dom(b0), Dom(b1), Dom(b2)}
		n := 3
		// Find the families where the pair co-occurs (same tree).
		responsible := 0
		for idx := 1; idx <= n; idx++ {
			if a[idx-1] == b[idx-1] && ShouldResolve(a, b, idx, n) {
				responsible++
			}
		}
		shared := 0
		for m := 0; m < n; m++ {
			if a[m] == b[m] {
				shared++
			}
		}
		if shared == 0 {
			return responsible == 0
		}
		return responsible == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSentinelUniqueness(t *testing.T) {
	seen := map[Dom]bool{}
	for id := int32(0); id < 1000; id++ {
		s := SentinelFor(id)
		if s >= 0 {
			t.Fatalf("sentinel %d not negative", s)
		}
		if seen[s] {
			t.Fatalf("sentinel collision at id %d", id)
		}
		seen[s] = true
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	lists := []List{
		{},
		{0},
		{1, 2, 3},
		{-5, 10, -200000, 300000},
	}
	for _, l := range lists {
		buf := Encode(nil, l)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", l, err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d of %d", n, len(buf))
		}
		if len(l) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, l) {
			t.Errorf("round trip %v → %v", l, got)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf := Encode(nil, List{1, -2, 3})
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil && cut > 0 {
			// cut 0 yields count error too; all prefixes must fail.
			t.Errorf("prefix %d decoded without error", cut)
		}
	}
}

func TestSmallestKeyResponsible(t *testing.T) {
	// Fig. 2 example: e1,e2 share X("jo") and Y("hi"); "hi" < "jo" so
	// the Y block is responsible.
	aKeys := []string{"jo", "hi"}
	bKeys := []string{"jo", "hi"}
	if SmallestKeyResponsible(aKeys, bKeys, 0, "jo") {
		t.Error("X(jo) must not be responsible")
	}
	if !SmallestKeyResponsible(aKeys, bKeys, 1, "hi") {
		t.Error("Y(hi) must be responsible")
	}
	// No common keys → nobody is responsible (pair never co-blocked).
	if SmallestKeyResponsible([]string{"aa", "bb"}, []string{"cc", "dd"}, 0, "aa") {
		t.Error("pair with no common block has no responsible block")
	}
	// Tie on key value: lower family index wins.
	if !SmallestKeyResponsible([]string{"kk", "kk"}, []string{"kk", "kk"}, 0, "kk") {
		t.Error("tie should go to family 0")
	}
	if SmallestKeyResponsible([]string{"kk", "kk"}, []string{"kk", "kk"}, 1, "kk") {
		t.Error("family 1 must lose the tie")
	}
}

func TestSmallestKeyExactlyOneResponsible(t *testing.T) {
	f := func(a0, b0, a1, b1 uint8) bool {
		keys := func(x, y uint8) []string {
			return []string{string(rune('a' + x%4)), string(rune('a' + y%4))}
		}
		aKeys, bKeys := keys(a0, a1), keys(b0, b1)
		count := 0
		for j := range aKeys {
			if aKeys[j] == bKeys[j] && SmallestKeyResponsible(aKeys, bKeys, j, aKeys[j]) {
				count++
			}
		}
		shared := aKeys[0] == bKeys[0] || aKeys[1] == bKeys[1]
		if !shared {
			return count == 0
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func FuzzDecodeList(f *testing.F) {
	f.Add(Encode(nil, List{1, -2, 300000}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := Encode(nil, l)
		l2, _, err := Decode(re)
		if err != nil || len(l2) != len(l) {
			t.Fatalf("re-encode mismatch (%v)", err)
		}
		for i := range l {
			if l[i] != l2[i] {
				t.Fatalf("value %d differs", i)
			}
		}
	})
}
