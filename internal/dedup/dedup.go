// Package dedup implements redundancy-free resolution (§V of the
// paper): the per-tree dominance values, the List(eᵢ, X) dominance
// lists encoded into Job 2's map output, and the SHOULD-RESOLVE check
// (Fig. 7) that reduce tasks run before resolving each candidate pair.
// It also provides the smallest-key rule of Kolb et al. [14] that the
// Basic baseline uses (§II-C, limitation 4).
package dedup

import (
	"encoding/binary"
	"fmt"
)

// Dom is a tree dominance value. Every tree of the progressive schedule
// gets a unique non-negative Dom; per-entity sentinel values (for
// entities whose main block was pruned away) are negative and unique
// per entity, so they never compare equal across entities.
type Dom = int32

// SentinelFor returns the unique negative dominance value used when an
// entity has no tree under some family (its main block was a pruned
// singleton). Two different entities always get different sentinels, so
// the equality tests of SHOULD-RESOLVE can never spuriously skip.
func SentinelFor(entityID int32) Dom { return -entityID - 1 }

// List is the dominance list List(eᵢ, X) of §V: one value per main
// blocking function (in dominance order), plus an optional (n+1)st
// value naming the highest split-off descendant tree containing the
// entity. The j-th value (0-based j = Index−1) is:
//
//   - Dom(TreeOf(X)) when j is the emitted block's own family, or
//   - Dom(T(Y¹ₕ)) — the main tree of family j containing the entity —
//     otherwise.
type List []Dom

// ShouldResolve is the responsibility check of Fig. 7, verbatim: when
// resolving a block of the family whose dominance Index is `index`
// (1-based) under n main blocking functions, the pair (ek, el) with
// dominance lists a and b must be resolved here iff
//
//   - no more-dominating family places both entities in the same tree
//     (positions 1..index−1 differ), and
//   - the pair does not fall inside a common split-off descendant tree
//     (position n+1, when both lists have one).
func ShouldResolve(a, b List, index, n int) bool {
	for m := 0; m < index-1; m++ {
		if a[m] == b[m] {
			return false
		}
	}
	if len(a) > n && len(b) > n {
		if a[n] == b[n] {
			return false
		}
	}
	return true
}

// Encode appends the binary form of the list to dst: a count followed
// by zig-zag varints (doms can be negative sentinels).
func Encode(dst []byte, l List) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(l)))
	for _, d := range l {
		dst = binary.AppendVarint(dst, int64(d))
	}
	return dst
}

// Decode reads one list, returning bytes consumed.
func Decode(src []byte) (List, int, error) {
	cnt, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, 0, fmt.Errorf("dedup: truncated list (count)")
	}
	off := n
	if cnt > uint64(len(src)) {
		return nil, 0, fmt.Errorf("dedup: corrupt list count %d", cnt)
	}
	l := make(List, cnt)
	for i := range l {
		v, n := binary.Varint(src[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("dedup: truncated list (value %d)", i)
		}
		l[i] = Dom(v)
		off += n
	}
	return l, off, nil
}

// SmallestKeyResponsible implements the redundancy-elimination rule of
// Kolb et al. [14] used by the Basic baseline: a pair is resolved only
// in the common block whose blocking key value is smallest (ties broken
// by family position, matching the paper's Fig. 2 example where
// Y¹₂ ("hi") beats X¹₁ ("jo")). aKeys and bKeys are the two entities'
// annotated main keys in family order; famIdx/key identify the block
// asking.
func SmallestKeyResponsible(aKeys, bKeys []string, famIdx int, key string) bool {
	minFam, minKey, found := -1, "", false
	for j := range aKeys {
		if aKeys[j] != bKeys[j] {
			continue
		}
		if !found || aKeys[j] < minKey || (aKeys[j] == minKey && j < minFam) {
			minFam, minKey, found = j, aKeys[j], true
		}
	}
	if !found {
		return false
	}
	return minFam == famIdx && minKey == key
}
