package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"

	"proger/internal/datagen"
	"proger/internal/estimate"
	"proger/internal/faults"
	"proger/internal/mapreduce"
	"proger/internal/mechanism"
	"proger/internal/obs"
	"proger/internal/obs/live"
	"proger/internal/obs/quality"
	"proger/internal/sched"
)

// liveOpts returns People-toy pipeline options with a live hub wired.
func liveOpts(run *live.Run, workers int) Options {
	return Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Policy:          estimate.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
		Scheduler:       sched.Ours,
		Workers:         workers,
		Live:            run,
	}
}

// TestLiveEndpointsUnderFaultedRun hammers /tasks and /progress from
// concurrent readers while an 8-worker faulted, speculating pipeline
// publishes into the hub — the race-detector gate for the snapshot
// layer — and simultaneously checks that the live recall estimate and
// streamed duplicate count are monotonically nondecreasing.
func TestLiveEndpointsUnderFaultedRun(t *testing.T) {
	ds, _ := datagen.People()
	run := live.NewRun(nil)
	q := quality.NewRecorder()
	run.AttachQuality(q)
	opts := liveOpts(run, 8)
	opts.Quality = q
	opts.Faults = faults.NewSeeded(1, 0.5)
	opts.Retry = mapreduce.RetryPolicy{MaxRetries: 3, Speculation: true}

	srv, err := live.Serve("127.0.0.1:0", run, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var readErrs []string
	hammer := func(path string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(base + path)
			if err != nil {
				mu.Lock()
				readErrs = append(readErrs, err.Error())
				mu.Unlock()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	wg.Add(4)
	go hammer("/tasks")
	go hammer("/tasks")
	go hammer("/progress")
	go hammer("/membudget")

	// Monotonicity watcher: direct snapshots, tighter loop than HTTP.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastRecall float64
		var lastDups int64
		for {
			s := run.Progress()
			if s.RecallEstimate < lastRecall {
				mu.Lock()
				readErrs = append(readErrs, "recall decreased")
				mu.Unlock()
			}
			if s.Dups < lastDups {
				mu.Lock()
				readErrs = append(readErrs, "dups decreased")
				mu.Unlock()
			}
			lastRecall, lastDups = s.RecallEstimate, s.Dups
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	res, err := Resolve(ds, opts)
	run.Finish(err)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(readErrs) > 0 {
		t.Fatalf("concurrent readers failed: %v", readErrs)
	}
	if len(res.Duplicates) == 0 {
		t.Fatal("no duplicates found")
	}
	s := run.Progress()
	if s.Dups == 0 || s.BlocksResolved == 0 {
		t.Errorf("live totals empty after run: %+v", s)
	}
	var attempts int64
	for _, j := range s.Jobs {
		attempts += j.Retries + j.Speculations
	}
	if attempts == 0 {
		t.Error("rate-0.5 faulted run recorded no retries or speculations")
	}
}

// TestLiveDoesNotChangeArtifacts pins the tentpole determinism gate at
// the pipeline level: Result events, Chrome trace bytes, and quality
// JSON are byte-identical with the live hub + event log enabled and
// disabled, across engines and worker counts.
func TestLiveDoesNotChangeArtifacts(t *testing.T) {
	refRes, refTrace, refQual := equivRun(t, mapreduce.ExecBarrier, 1, 0)
	ds, _ := datagen.People()
	for _, mode := range []mapreduce.ExecutionMode{mapreduce.ExecBarrier, mapreduce.ExecPipelined} {
		for _, workers := range []int{1, 8} {
			var events bytes.Buffer
			run := live.NewRun(live.NewEventLog(&events))
			opts := liveOpts(run, workers)
			opts.Execution = mode
			opts.Trace = obs.New()
			opts.Metrics = obs.NewRegistry()
			opts.Quality = quality.NewRecorder()
			res, err := Resolve(ds, opts)
			run.Finish(err)
			if err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
			}
			if !reflect.DeepEqual(res.Events, refRes.Events) || res.TotalTime != refRes.TotalTime {
				t.Errorf("mode=%v workers=%d: live hub changed the result", mode, workers)
			}
			var trace, qual bytes.Buffer
			if err := opts.Trace.WriteChromeTrace(&trace); err != nil {
				t.Fatal(err)
			}
			if err := opts.Quality.Export(0).WriteJSON(&qual); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(trace.Bytes(), refTrace) {
				t.Errorf("mode=%v workers=%d: live hub changed the trace bytes", mode, workers)
			}
			if !bytes.Equal(qual.Bytes(), refQual) {
				t.Errorf("mode=%v workers=%d: live hub changed the quality bytes", mode, workers)
			}
			if events.Len() == 0 {
				t.Errorf("mode=%v workers=%d: no events recorded", mode, workers)
			}
		}
	}
}

// deterministicEventKey strips the wall-clock fields (seq, wall_ms)
// from one event line and re-marshals the rest with sorted keys.
func deterministicEventKey(t *testing.T, line []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("event line %q: %v", line, err)
	}
	delete(m, "seq")
	delete(m, "wall_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// eventMultiset returns the sorted deterministic-subset lines of an
// event stream.
func eventMultiset(t *testing.T, raw []byte) []string {
	t.Helper()
	var keys []string
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		keys = append(keys, deterministicEventKey(t, sc.Bytes()))
	}
	sort.Strings(keys)
	return keys
}

// TestEventLogDeterministicSubset runs the barrier engine at 1 and 8
// workers and checks the event streams agree exactly once the
// wall-clock fields are stripped: same events, same counts, only the
// interleaving differs.
func TestEventLogDeterministicSubset(t *testing.T) {
	ds, _ := datagen.People()
	streams := map[int][]string{}
	for _, workers := range []int{1, 8} {
		var events bytes.Buffer
		run := live.NewRun(live.NewEventLog(&events))
		opts := liveOpts(run, workers)
		opts.Execution = mapreduce.ExecBarrier
		_, err := Resolve(ds, opts)
		run.Finish(err)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		streams[workers] = eventMultiset(t, events.Bytes())
	}
	if len(streams[1]) == 0 {
		t.Fatal("no events recorded")
	}
	if !reflect.DeepEqual(streams[1], streams[8]) {
		t.Errorf("event multisets diverge across workers:\n1: %d lines\n8: %d lines",
			len(streams[1]), len(streams[8]))
		for i := range streams[1] {
			if i < len(streams[8]) && streams[1][i] != streams[8][i] {
				t.Errorf("first divergence:\n  w1: %s\n  w8: %s", streams[1][i], streams[8][i])
				break
			}
		}
	}
}
