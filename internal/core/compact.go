package core

import (
	"fmt"

	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/dedup"
	"proger/internal/entity"
	"proger/internal/mapreduce"
	"proger/internal/mechanism"
	"proger/internal/obs"
	"proger/internal/obs/quality"
	"proger/internal/sched"
)

// This file implements the paper's footnote-5 map-side optimization:
// "Instead of emitting a key-value pair per each block containing eᵢ,
// our actual implementation limits the number of such emitted pairs to
// one per each tree containing eᵢ."
//
// The compact Job 2 works as follows:
//
//   - each map task emits, per (entity, tree), ONE payload record under
//     the sequence key of the tree's *first scheduled block* (so the
//     payload reaches the reduce task before any of the tree's blocks
//     must be resolved);
//   - map task 0 additionally emits one tiny *trigger* record per
//     scheduled block, so every block's key exists in the shuffle and
//     the framework invokes the reduce function for it in schedule
//     order;
//   - the reduce task caches each tree's entities on first contact and
//     recomputes per-block membership with the family's key function —
//     trading a per-block scan of the cached tree for a ~2–3× smaller
//     shuffle, exactly the paper's trade.
//
// Values are tagged: 'E' payload (entity ⊕ dominance list), 'T' trigger.

const (
	compactTagEntity  = 'E'
	compactTagTrigger = 'T'
)

// CompactJob2Mapper is the footnote-5 map function.
type CompactJob2Mapper struct {
	mapreduce.MapperBase
	side *job2Side
	// firstSQ[treeIdx] is the tree's payload key.
	firstSQ []int64
	// lister provides buildList (and carries the per-task codec
	// scratch); one instance per task, hoisted out of Map.
	lister *Job2Mapper
}

// Setup charges schedule generation, as the expanded mapper does.
func (m *CompactJob2Mapper) Setup(ctx *mapreduce.TaskContext) error {
	if m.firstSQ == nil {
		m.firstSQ = m.side.schedule.FirstSQOfTree()
	}
	m.lister = &Job2Mapper{side: m.side}
	return m.lister.Setup(ctx)
}

// Map emits one payload per tree containing the entity.
func (m *CompactJob2Mapper) Map(ctx *mapreduce.TaskContext, rec mapreduce.KeyValue, emit mapreduce.Emitter) error {
	e, _, err := entity.DecodeBinary(rec.Value)
	if err != nil {
		return err
	}
	s := m.side.schedule
	fams := m.side.families
	totalLevels := 0
	for _, f := range fams {
		totalLevels += f.Levels()
	}
	ctx.Charge(ctx.Cost.ReadRecord * costmodel.Units(totalLevels))

	m.lister.encScratch = entity.EncodeBinary(m.lister.encScratch[:0], e)
	entBuf := m.lister.encScratch
	for j, f := range fams {
		lastTree := -1
		for l := 1; l <= f.Levels(); l++ {
			id := blocking.BlockID{Family: int8(j), Level: int8(l), Key: f.Key(e, l)}
			if _, ok := s.ByID[id]; !ok {
				continue
			}
			ti := s.TreeOf[id]
			if ti == lastTree {
				continue // already shipped to this tree
			}
			lastTree = ti
			list := m.lister.buildList(e, j, l, ti)
			value := make([]byte, 0, 1+len(entBuf)+len(list))
			value = append(value, compactTagEntity)
			value = append(value, entBuf...)
			value = append(value, list...)
			emit.Emit(sched.SQKey(m.firstSQ[ti]), value)
			ctx.Inc(CounterJob2Emitted, 1)
		}
	}
	return nil
}

// triggerValue is the shared payload of every trigger record; values
// are read-only downstream, so one backing array serves all emissions.
var triggerValue = []byte{compactTagTrigger}

// Cleanup has map task 0 emit the per-block triggers.
func (m *CompactJob2Mapper) Cleanup(ctx *mapreduce.TaskContext, emit mapreduce.Emitter) error {
	if ctx.Index != 0 {
		return nil
	}
	for _, blocks := range m.side.schedule.TaskBlocks {
		for _, b := range blocks {
			emit.Emit(sched.SQKey(b.SQ), triggerValue)
			ctx.Inc(CounterJob2Triggers, 1)
		}
	}
	return nil
}

// CompactJob2Reducer resolves blocks from cached tree entities.
type CompactJob2Reducer struct {
	mapreduce.ReducerBase
	side *job2Side
	// trees[treeIdx] caches the tree's entities and dominance lists.
	trees map[int]*treeCache
	// resolved[treeIdx] is the within-tree resolved-pair set.
	resolved map[int]entity.PairSet
}

type treeCache struct {
	ents  []*entity.Entity
	lists map[entity.ID]dedup.List
}

// Setup implements mapreduce.Reducer, hoisting the per-task state maps
// out of the per-block Reduce path. (The tree cache itself already
// plays the decode cache's role here: each payload arrives, and is
// decoded, exactly once per tree.)
func (r *CompactJob2Reducer) Setup(*mapreduce.TaskContext) error {
	r.trees = map[int]*treeCache{}
	r.resolved = map[int]entity.PairSet{}
	return nil
}

// Reduce implements mapreduce.Reducer: one call per scheduled block key.
func (r *CompactJob2Reducer) Reduce(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
	start := ctx.Now()
	s := r.side.schedule
	sq, err := sched.ParseSQKey(key)
	if err != nil {
		return err
	}
	b := s.Block(sq)
	if b == nil {
		return fmt.Errorf("core: compact reduce: no block for sequence %d", sq)
	}
	treeIdx := s.TreeOf[b.ID]

	// Absorb payloads (they arrive under the tree's first block's key).
	for _, v := range values {
		if len(v) == 0 {
			return fmt.Errorf("core: compact reduce: empty value at %s", key)
		}
		switch v[0] {
		case compactTagTrigger:
			continue
		case compactTagEntity:
			e, n, err := entity.DecodeBinary(v[1:])
			if err != nil {
				return err
			}
			l, _, err := dedup.Decode(v[1+n:])
			if err != nil {
				return err
			}
			tc := r.trees[treeIdx]
			if tc == nil {
				// len(values) bounds this tree's payload count in the
				// common case (payloads all land under the tree's first
				// block key, alongside at most one trigger).
				tc = &treeCache{
					ents:  make([]*entity.Entity, 0, len(values)),
					lists: make(map[entity.ID]dedup.List, len(values)),
				}
				r.trees[treeIdx] = tc
			}
			tc.ents = append(tc.ents, e)
			tc.lists[e.ID] = l
		default:
			return fmt.Errorf("core: compact reduce: unknown tag %q", v[0])
		}
	}

	tc := r.trees[treeIdx]
	if tc == nil {
		// A block whose tree shipped no entities (possible only if the
		// whole tree was empty — pruning should prevent it).
		return nil
	}
	// Recompute the block's members from the cached tree: the per-block
	// scan the compact emission trades for shuffle volume.
	fam := r.side.families[b.ID.Family]
	members := make([]*entity.Entity, 0, b.Size)
	for _, e := range tc.ents {
		if fam.Key(e, int(b.ID.Level)) == b.ID.Key {
			members = append(members, e)
		}
	}
	ctx.Charge(ctx.Cost.ReadRecord * costmodel.Units(len(tc.ents)))

	set := r.resolved[treeIdx]
	if set == nil {
		set = entity.PairSet{}
		r.resolved[treeIdx] = set
	}
	famIdx := int(b.ID.Family)
	index := famIdx + 1
	n := len(r.side.families)
	var stop mechanism.StopFunc
	if !b.FullResolve {
		stop = mechanism.DistinctThreshold(b.Th)
	}
	env := &mechanism.Env{
		SortAttr: fam.Attr,
		Match:    r.side.matcher.Match,
		Decide: func(p entity.Pair) mechanism.Decision {
			if set.Has(p) {
				return mechanism.SkipResolved
			}
			if !r.side.noDedup && !dedup.ShouldResolve(tc.lists[p.Lo], tc.lists[p.Hi], index, n) {
				return mechanism.SkipNotResponsible
			}
			return mechanism.Resolve
		},
		Emit: func(p entity.Pair, isDup bool) {
			set.Add(p)
			if isDup {
				emit.Emit("dup", dupValue(p))
			}
		},
		Charge: ctx.Charge,
		Stop:   stop,
		Cost:   ctx.Cost,
	}
	window := r.side.policy.Window(b)
	st := r.side.mech.ResolveBlock(env, members, window)
	ctx.Inc(CounterJob2BlocksResolved, 1)
	ctx.Inc(CounterJob2Compared, int64(st.Compared))
	ctx.Inc(CounterJob2Dups, int64(st.Dups))
	ctx.Inc(CounterJob2Skipped, int64(st.Skipped))
	if b.FullResolve {
		ctx.Inc(CounterJob2FullResolves, 1)
	}
	if ctx.QualityOn() {
		ctx.ObserveBlock(quality.BlockObs{
			ID:       b.ID.String(),
			SQ:       sq,
			Start:    start,
			End:      ctx.Now(),
			Compared: int64(st.Compared),
			Dups:     int64(st.Dups),
			Skipped:  int64(st.Skipped),
			Full:     b.FullResolve,
		})
	}
	if ctx.Tracing() {
		ctx.Span("resolve", "block "+b.ID.String(), start, ctx.Now(),
			obs.A("sq", sq),
			obs.A("size", len(members)),
			obs.A("window", window),
			obs.A("th", b.Th),
			obs.A("full", b.FullResolve),
			obs.A("hint_cost", float64(ctx.Cost.HintCost(len(members)))),
			obs.A("compared", st.Compared),
			obs.A("dups", st.Dups),
			obs.A("skipped", st.Skipped))
	}
	return nil
}
