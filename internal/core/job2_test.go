package core

import (
	"reflect"
	"testing"

	"proger/internal/blocking"
	"proger/internal/datagen"
	"proger/internal/dedup"
	"proger/internal/entity"
	"proger/internal/estimate"
	"proger/internal/mechanism"
	"proger/internal/sched"
)

// splitSchedule hand-builds the §V example topology: family X's tree
// T(X¹ₐ) had its child X²ₐᵦ split off into its own tree, and family Y
// has one root tree. Trees are in dominance (ID) order, so
// Dom(T(X¹ₐ)) = 0, Dom(T(X²ₐᵦ)) = 1, Dom(T(Y¹)) = 2.
func splitSchedule() (*sched.Schedule, blocking.Families) {
	fams := blocking.Families{
		{Name: "X", Attr: 0, PrefixLens: []int{1, 2, 3}, Index: 1},
		{Name: "Y", Attr: 1, PrefixLens: []int{1}, Index: 2},
	}
	xRoot := &blocking.Block{ID: blocking.BlockID{Family: 0, Level: 1, Key: "a"}, Size: 4, FullResolve: true}
	xSplit := &blocking.Block{ID: blocking.BlockID{Family: 0, Level: 2, Key: "ab"}, Size: 3, FullResolve: true, Frac: 1}
	yRoot := &blocking.Block{ID: blocking.BlockID{Family: 1, Level: 1, Key: "z"}, Size: 4, FullResolve: true}
	trees := []*blocking.Tree{
		{Root: xRoot, Dom: 0},
		{Root: xSplit, Dom: 1},
		{Root: yRoot, Dom: 2},
	}
	s := &sched.Schedule{
		Trees:      trees,
		TaskOfTree: []int{0, 0, 0},
		TaskBlocks: [][]*blocking.Block{{xSplit, xRoot, yRoot}},
		ByID:       map[blocking.BlockID]*blocking.Block{},
		TreeOf:     map[blocking.BlockID]int{},
		R:          1,
	}
	for i, t := range trees {
		for _, b := range t.Blocks() {
			s.ByID[b.ID] = b
			s.TreeOf[b.ID] = i
		}
	}
	for task, blocks := range s.TaskBlocks {
		for pos, b := range blocks {
			b.SQ = sched.SQFor(task, pos)
		}
	}
	return s, fams
}

func TestBuildListWithSplitTree(t *testing.T) {
	s, fams := splitSchedule()
	m := &Job2Mapper{side: &job2Side{schedule: s, families: fams}}
	// Entity whose X path is a → ab → ab? ("ab" value, 2 chars) and Y
	// key "z".
	e := &entity.Entity{ID: 5, Attrs: []string{"abq", "z"}}

	// Emission for the X main tree (tree 0, shallowest level 1): the
	// list must carry [Dom(own X tree)=0, Dom(Y tree)=2] plus the
	// (n+1)st value Dom(split descendant)=1.
	buf := m.buildList(e, 0, 1, 0)
	list, _, err := dedup.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(list, dedup.List{0, 2, 1}) {
		t.Errorf("List(e, T(X¹ₐ)) = %v, want [0 2 1]", list)
	}

	// Emission for the split tree itself (tree 1, level 2): own family
	// position is the split tree's Dom; no deeper split exists.
	buf = m.buildList(e, 0, 2, 1)
	list, _, err = dedup.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(list, dedup.List{1, 2}) {
		t.Errorf("List(e, T(X²ₐᵦ)) = %v, want [1 2]", list)
	}

	// Emission for the Y tree: X position refers to the MAIN X tree
	// (not the split), as §V specifies.
	buf = m.buildList(e, 1, 1, 2)
	list, _, err = dedup.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(list, dedup.List{0, 2}) {
		t.Errorf("List(e, T(Y¹)) = %v, want [0 2]", list)
	}
}

func TestSplitListsResolveExactlyOnce(t *testing.T) {
	// Two entities sharing the whole topology: the split tree (and only
	// it) must claim the pair.
	s, fams := splitSchedule()
	m := &Job2Mapper{side: &job2Side{schedule: s, families: fams}}
	a := &entity.Entity{ID: 1, Attrs: []string{"abq", "z"}}
	b := &entity.Entity{ID: 2, Attrs: []string{"abr", "z"}}
	decode := func(e *entity.Entity, j, level, ti int) dedup.List {
		l, _, err := dedup.Decode(m.buildList(e, j, level, ti))
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	n := len(fams)
	resolvers := 0
	// X main tree (index 1).
	if dedup.ShouldResolve(decode(a, 0, 1, 0), decode(b, 0, 1, 0), 1, n) {
		resolvers++
		t.Error("main X tree must defer to the split descendant")
	}
	// Split tree (index 1).
	if dedup.ShouldResolve(decode(a, 0, 2, 1), decode(b, 0, 2, 1), 1, n) {
		resolvers++
	} else {
		t.Error("split tree must resolve its own pair")
	}
	// Y tree (index 2).
	if dedup.ShouldResolve(decode(a, 1, 1, 2), decode(b, 1, 1, 2), 2, n) {
		resolvers++
		t.Error("Y tree must defer to the dominating X family")
	}
	if resolvers != 1 {
		t.Errorf("%d trees claim the pair, want exactly 1", resolvers)
	}
}

func TestJob2PartitionerRouting(t *testing.T) {
	if got := Job2Partitioner(sched.SQKey(sched.SQFor(3, 17)), 8); got != 3 {
		t.Errorf("partition = %d, want 3", got)
	}
	// Malformed or out-of-range keys fall back to task 0 rather than
	// crashing the job.
	if got := Job2Partitioner("garbage", 8); got != 0 {
		t.Errorf("garbage key → %d", got)
	}
	if got := Job2Partitioner(sched.SQKey(sched.SQFor(99, 0)), 8); got != 0 {
		t.Errorf("out-of-range task → %d", got)
	}
}

func TestResolveWithHierarchyMechanism(t *testing.T) {
	// The pipeline is mechanism-agnostic: the hierarchical partitioning
	// hint must work as M end to end.
	ds, gt := datagen.People()
	res, err := Resolve(ds, Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.Hierarchy{},
		Policy:          estimate.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
	})
	if err != nil {
		t.Fatalf("Resolve with hierarchy hint: %v", err)
	}
	if int64(len(res.Duplicates)) != gt.NumDupPairs() {
		t.Errorf("found %d, want %d", len(res.Duplicates), gt.NumDupPairs())
	}
}

func TestCompactShuffleEquivalence(t *testing.T) {
	// The footnote-5 compact emission must find exactly the same
	// duplicate set as the expanded per-block emission, with a smaller
	// shuffle.
	ds, gt := datagen.Publications(datagen.DefaultPublications(1200, 73))
	base := pubOptions(ds, gt, 3)
	expanded, err := Resolve(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	compactOpts := base
	compactOpts.CompactShuffle = true
	compact, err := Resolve(ds, compactOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(compact.Duplicates) != len(expanded.Duplicates) {
		t.Fatalf("duplicate counts differ: compact %d vs expanded %d",
			len(compact.Duplicates), len(expanded.Duplicates))
	}
	for p := range expanded.Duplicates {
		if !compact.Duplicates.Has(p) {
			t.Fatalf("compact run missed pair %v", p)
		}
	}
	eEmit := expanded.Counters.Get("job2.emitted")
	cEmit := compact.Counters.Get("job2.emitted")
	if cEmit >= eEmit {
		t.Errorf("compact emitted %d records, expanded %d — no shuffle saving", cEmit, eEmit)
	}
	if compact.Counters.Get("job2.triggers") == 0 {
		t.Error("no trigger records emitted")
	}
	// Redundancy-free resolution must hold in compact mode too.
	seen := entity.PairSet{}
	for _, ev := range compact.Events {
		if !seen.Add(ev.Pair) {
			t.Fatalf("pair %v emitted twice in compact mode", ev.Pair)
		}
	}
}
