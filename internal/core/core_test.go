package core

import (
	"testing"

	"proger/internal/blocking"
	"proger/internal/datagen"
	"proger/internal/entity"
	"proger/internal/estimate"
	"proger/internal/match"
	"proger/internal/mechanism"
	"proger/internal/progress"
	"proger/internal/sched"
)

// pubMatcher is the CiteSeerX-style resolve function: weighted edit
// similarity on title/abstract/venue (§VI-A2; abstracts truncated to
// 350 chars).
func pubMatcher() *match.Matcher {
	return match.MustNew(0.75,
		match.Rule{Attr: 0, Weight: 0.5, Kind: match.EditDistance},
		match.Rule{Attr: 1, Weight: 0.3, Kind: match.EditDistance, MaxChars: 350},
		match.Rule{Attr: 2, Weight: 0.2, Kind: match.EditDistance},
	)
}

func peopleMatcher() *match.Matcher {
	return match.MustNew(0.75,
		match.Rule{Attr: 0, Weight: 0.8, Kind: match.EditDistance},
		match.Rule{Attr: 1, Weight: 0.2, Kind: match.EditDistance},
	)
}

func peopleFamilies() blocking.Families {
	return blocking.Families{
		{Name: "X", Attr: 0, PrefixLens: []int{2, 3, 5}, Index: 1},
		{Name: "Y", Attr: 1, PrefixLens: []int{2}, Index: 2},
	}
}

func pubOptions(ds *entity.Dataset, gt *datagen.GroundTruth, machines int) Options {
	fams := blocking.CiteSeerXFamilies(ds.Schema)
	// Train on a separate dataset (different seed), as the paper trains
	// on a training dataset.
	trainDS, trainGT := datagen.Publications(datagen.DefaultPublications(800, 999))
	model := estimate.Train(trainDS, trainGT, blocking.CiteSeerXFamilies(trainDS.Schema))
	return Options{
		Families:        fams,
		Matcher:         pubMatcher(),
		Mechanism:       mechanism.SN{},
		Policy:          estimate.CiteSeerXPolicy(),
		DupModel:        model,
		Machines:        machines,
		SlotsPerMachine: 2,
		Scheduler:       sched.Ours,
	}
}

func TestResolvePeopleToy(t *testing.T) {
	ds, gt := datagen.People()
	res, err := Resolve(ds, Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Policy:          estimate.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
		Scheduler:       sched.Ours,
	})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	// All 4 true pairs must be found: {e0,e1,e2} pairs + {e3,e4}.
	want := []entity.Pair{
		entity.MakePair(0, 1), entity.MakePair(0, 2), entity.MakePair(1, 2),
		entity.MakePair(3, 4),
	}
	for _, p := range want {
		if !res.Duplicates.Has(p) {
			t.Errorf("missing duplicate %v", p)
		}
	}
	// No false positives on the toy data.
	for p := range res.Duplicates {
		if !gt.IsDup(p) {
			t.Errorf("false positive %v", p)
		}
	}
	if res.TotalTime <= 0 {
		t.Error("no simulated time elapsed")
	}
	if res.Schedule == nil || res.Job1 == nil || res.Job2 == nil {
		t.Error("result missing diagnostics")
	}
}

func TestResolvePublicationsRecall(t *testing.T) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(1500, 41))
	res, err := Resolve(ds, pubOptions(ds, gt, 3))
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	events := res.EventsAgainst(gt.IsDup)
	curve := progress.BuildCurve(events, gt.NumDupPairs(), res.TotalTime)
	if fr := curve.FinalRecall(); fr < 0.85 {
		t.Errorf("final recall %v below 0.85 — pipeline loses duplicates", fr)
	}
	// Precision sanity: most identified pairs must be true duplicates.
	truePos := 0
	for p := range res.Duplicates {
		if gt.IsDup(p) {
			truePos++
		}
	}
	if prec := float64(truePos) / float64(len(res.Duplicates)); prec < 0.9 {
		t.Errorf("precision %v below 0.9", prec)
	}
}

func TestResolveNoPairResolvedTwice(t *testing.T) {
	// Redundancy-free resolution (§V): every pair is emitted at most
	// once across all blocks, trees, families, and reduce tasks.
	ds, _ := datagen.Publications(datagen.DefaultPublications(1200, 43))
	gt2, _ := datagen.Publications(datagen.DefaultPublications(1200, 43))
	_ = gt2
	res, err := Resolve(ds, pubOptions(ds, nil, 4))
	if err != nil {
		t.Fatal(err)
	}
	seen := entity.PairSet{}
	for _, ev := range res.Events {
		if !seen.Add(ev.Pair) {
			t.Fatalf("pair %v emitted twice — redundancy elimination broken", ev.Pair)
		}
	}
}

func TestResolveDeterminism(t *testing.T) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(700, 47))
	run := func() *Result {
		res, err := Resolve(ds, pubOptions(ds, gt, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalTime != b.TotalTime {
		t.Errorf("total times differ: %v vs %v", a.TotalTime, b.TotalTime)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].Pair != b.Events[i].Pair || a.Events[i].Time != b.Events[i].Time {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestResolveEventTimesWithinRun(t *testing.T) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(600, 53))
	res, err := Resolve(ds, pubOptions(ds, gt, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no duplicates found at all")
	}
	for _, ev := range res.Events {
		if ev.Time < res.Job2.MapEnd || ev.Time > res.TotalTime {
			t.Errorf("event at %v outside reduce phase [%v, %v]", ev.Time, res.Job2.MapEnd, res.TotalTime)
		}
	}
	if res.Job2.Start != res.Job1.End {
		t.Errorf("job 2 must start when job 1 ends: %v vs %v", res.Job2.Start, res.Job1.End)
	}
}

func TestResolveValidation(t *testing.T) {
	ds, _ := datagen.People()
	good := Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Machines:        1,
		SlotsPerMachine: 1,
	}
	cases := []func(*Options){
		func(o *Options) { o.Families = nil },
		func(o *Options) { o.Matcher = nil },
		func(o *Options) { o.Mechanism = nil },
		func(o *Options) { o.Machines = 0 },
		func(o *Options) { o.SlotsPerMachine = 0 },
	}
	for i, mutate := range cases {
		opts := good
		mutate(&opts)
		if _, err := Resolve(ds, opts); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestResolveBasicPeople(t *testing.T) {
	ds, gt := datagen.People()
	res, err := ResolveBasic(ds, BasicOptions{
		Families:         peopleFamilies(),
		Matcher:          peopleMatcher(),
		Mechanism:        mechanism.SN{},
		Window:           15,
		PopcornThreshold: -1, // Basic F
		Machines:         2,
		SlotsPerMachine:  2,
	})
	if err != nil {
		t.Fatalf("ResolveBasic: %v", err)
	}
	if got := int64(len(res.Duplicates)); got != gt.NumDupPairs() {
		t.Errorf("Basic F found %d pairs, want %d", got, gt.NumDupPairs())
	}
	// Kolb rule: no pair emitted twice even though shared pairs exist.
	seen := entity.PairSet{}
	for _, ev := range res.Events {
		if !seen.Add(ev.Pair) {
			t.Errorf("pair %v resolved twice in Basic", ev.Pair)
		}
	}
}

func TestResolveBasicPopcornTradeoff(t *testing.T) {
	// More aggressive popcorn thresholds must terminate earlier with
	// lower (or equal) final recall — Table III's monotone tradeoff.
	ds, gt := datagen.Publications(datagen.DefaultPublications(1200, 59))
	fams := blocking.CiteSeerXFamilies(ds.Schema)
	run := func(threshold float64) (recall float64, total float64) {
		res, err := ResolveBasic(ds, BasicOptions{
			Families:         fams,
			Matcher:          pubMatcher(),
			Mechanism:        mechanism.SN{},
			Window:           15,
			PopcornThreshold: threshold,
			PopcornWindow:    100,
			Machines:         3,
			SlotsPerMachine:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		events := res.EventsAgainst(gt.IsDup)
		curve := progress.BuildCurve(events, gt.NumDupPairs(), res.TotalTime)
		return curve.FinalRecall(), float64(res.TotalTime)
	}
	recallF, timeF := run(-1)
	recallAggressive, timeAggressive := run(0.1)
	if recallAggressive > recallF {
		t.Errorf("aggressive threshold recall %v exceeds full resolve %v", recallAggressive, recallF)
	}
	if timeAggressive >= timeF {
		t.Errorf("aggressive threshold time %v not below full resolve %v", timeAggressive, timeF)
	}
	if recallF < 0.6 {
		t.Errorf("Basic F recall %v suspiciously low", recallF)
	}
}

func TestResolveBasicValidation(t *testing.T) {
	ds, _ := datagen.People()
	good := BasicOptions{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Window:          15,
		Machines:        1,
		SlotsPerMachine: 1,
	}
	cases := []func(*BasicOptions){
		func(o *BasicOptions) { o.Families = nil },
		func(o *BasicOptions) { o.Matcher = nil },
		func(o *BasicOptions) { o.Mechanism = nil },
		func(o *BasicOptions) { o.Window = 1 },
		func(o *BasicOptions) { o.Machines = 0 },
	}
	for i, mutate := range cases {
		opts := good
		mutate(&opts)
		if _, err := ResolveBasic(ds, opts); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestOurApproachBeatsBasicOnQuality(t *testing.T) {
	// The headline claim (Fig. 8): our approach identifies duplicates
	// at a higher rate than Basic. Compare Qty (Eq. 1) on a shared
	// sampling grid.
	ds, gt := datagen.Publications(datagen.DefaultPublications(4000, 61))
	ours, err := Resolve(ds, pubOptions(ds, gt, 5))
	if err != nil {
		t.Fatal(err)
	}
	basic, err := ResolveBasic(ds, BasicOptions{
		Families:         blocking.CiteSeerXFamilies(ds.Schema),
		Matcher:          pubMatcher(),
		Mechanism:        mechanism.SN{},
		Window:           15,
		PopcornThreshold: -1,
		Machines:         5,
		SlotsPerMachine:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := gt.NumDupPairs()
	oursCurve := progress.BuildCurve(ours.EventsAgainst(gt.IsDup), total, ours.TotalTime)
	basicCurve := progress.BuildCurve(basic.EventsAgainst(gt.IsDup), total, basic.TotalTime)
	end := ours.TotalTime
	if basic.TotalTime > end {
		end = basic.TotalTime
	}
	k := 20
	costs := make([]float64, k)
	weights := make([]float64, k)
	for i := range costs {
		costs[i] = end * float64(i+1) / float64(k)
		weights[i] = float64(k-i) / float64(k)
	}
	qOurs, err := progress.Qty(oursCurve, costs, weights)
	if err != nil {
		t.Fatal(err)
	}
	qBasic, err := progress.Qty(basicCurve, costs, weights)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Qty ours = %.4f, basic = %.4f; final recall ours = %.3f, basic = %.3f",
		qOurs, qBasic, oursCurve.FinalRecall(), basicCurve.FinalRecall())
	if qOurs <= qBasic {
		t.Errorf("our approach Qty %v should beat Basic %v", qOurs, qBasic)
	}
}

func TestResolveWithBudgetObjective(t *testing.T) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(800, 67))
	opts := pubOptions(ds, gt, 2)
	opts.Budget = 3000
	res, err := Resolve(ds, opts)
	if err != nil {
		t.Fatalf("Resolve with budget: %v", err)
	}
	if len(res.Duplicates) == 0 {
		t.Error("budget run found nothing")
	}
	// The budget objective changes scheduling, never correctness:
	// every emitted pair is still unique.
	seen := entity.PairSet{}
	for _, ev := range res.Events {
		if !seen.Add(ev.Pair) {
			t.Fatalf("pair %v emitted twice under budget objective", ev.Pair)
		}
	}
}

func TestResolveClusters(t *testing.T) {
	ds, gt := datagen.People()
	res, err := Resolve(ds, Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Policy:          estimate.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	clusters := res.Clusters(ds.Len())
	// Six real-world people → six clusters.
	if len(clusters) != len(gt.Clusters) {
		t.Fatalf("clusters = %d, want %d", len(clusters), len(gt.Clusters))
	}
	if len(clusters[0]) != 3 {
		t.Errorf("first cluster = %v, want the John Lopez triple", clusters[0])
	}
}

func TestDisableSubBlockingDoesNotMutateCallerFamilies(t *testing.T) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(500, 91))
	opts := pubOptions(ds, gt, 2)
	opts.DisableSubBlocking = true
	levelsBefore := make([]int, len(opts.Families))
	for i, f := range opts.Families {
		levelsBefore[i] = f.Levels()
	}
	if _, err := Resolve(ds, opts); err != nil {
		t.Fatal(err)
	}
	for i, f := range opts.Families {
		if f.Levels() != levelsBefore[i] {
			t.Errorf("family %d truncated in place: %d levels", i, f.Levels())
		}
	}
}
