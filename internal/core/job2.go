package core

import (
	"fmt"

	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/dedup"
	"proger/internal/entity"
	"proger/internal/estimate"
	"proger/internal/mapreduce"
	"proger/internal/match"
	"proger/internal/mechanism"
	"proger/internal/obs"
	"proger/internal/obs/quality"
	"proger/internal/sched"
)

// job2Side is the side data every Job-2 task sees: the progressive
// schedule plus the pipeline configuration pieces the tasks need.
type job2Side struct {
	schedule *sched.Schedule
	families blocking.Families
	matcher  *match.Matcher
	mech     mechanism.Mechanism
	policy   estimate.Policy
	// noDedup disables the SHOULD-RESOLVE ownership check (ablation).
	noDedup bool
}

// Job2Mapper implements §III-B's map function: for each entity, emit a
// (SQ(X), entity ⊕ List(entity, X)) pair for every scheduled block X
// containing the entity. Its Setup charges the simulated cost of
// regenerating the progressive schedule from the Job-1 statistics,
// which every map task pays (the paper generates the schedule in the
// setup function of each map task).
type Job2Mapper struct {
	mapreduce.MapperBase
	side *job2Side
	// Per-task codec scratch, reused across Map calls: every caller
	// copies the encoded bytes into the emitted (retained) value buffer
	// before the next encode, so reuse cannot alias live data.
	encScratch  []byte
	listScratch dedup.List
	listEnc     []byte
}

// Setup implements mapreduce.Mapper.
func (m *Job2Mapper) Setup(ctx *mapreduce.TaskContext) error {
	nBlocks := m.side.schedule.NumBlocks()
	// Schedule generation ≈ a handful of linear passes over the block
	// statistics plus a few sorts of SL; in-memory arithmetic, priced
	// at record-read granularity (far cheaper than hint sorting, which
	// moves whole entities).
	logB := 1.0
	for n := nBlocks; n > 1; n >>= 1 {
		logB++
	}
	start := ctx.Now()
	genCost := ctx.Cost.ReadRecord * costmodel.Units(nBlocks) * (6 + logB)
	ctx.Charge(genCost)
	ctx.Inc(CounterJob2ScheduleGen, 1)
	if ctx.Tracing() {
		ctx.Span("schedule", "schedule gen (map setup)", start, ctx.Now(),
			obs.A("blocks", nBlocks))
	}
	return nil
}

// Map implements mapreduce.Mapper.
func (m *Job2Mapper) Map(ctx *mapreduce.TaskContext, rec mapreduce.KeyValue, emit mapreduce.Emitter) error {
	e, _, err := entity.DecodeBinary(rec.Value)
	if err != nil {
		return err
	}
	s := m.side.schedule
	fams := m.side.families
	// Key computations: one prefix per level per family.
	totalLevels := 0
	for _, f := range fams {
		totalLevels += f.Levels()
	}
	ctx.Charge(ctx.Cost.ReadRecord * costmodel.Units(totalLevels))

	// Enumerate the entity's block path per family and emit per block.
	// The emitted value (entity ⊕ List) only changes when the path
	// crosses into a different tree, so one buffer is built per tree and
	// shared by every emission for that tree's blocks — the engine and
	// all reducers treat values as read-only, so aliasing is safe.
	m.encScratch = entity.EncodeBinary(m.encScratch[:0], e)
	entBuf := m.encScratch
	for j, f := range fams {
		var lastTree = -1
		var lastVal []byte
		for l := 1; l <= f.Levels(); l++ {
			id := blocking.BlockID{Family: int8(j), Level: int8(l), Key: f.Key(e, l)}
			b, ok := s.ByID[id]
			if !ok {
				continue // pruned block
			}
			ti := s.TreeOf[id]
			if ti != lastTree {
				lastTree = ti
				list := m.buildList(e, j, l, ti)
				lastVal = make([]byte, 0, len(entBuf)+len(list))
				lastVal = append(lastVal, entBuf...)
				lastVal = append(lastVal, list...)
			}
			emit.Emit(sched.SQKey(b.SQ), lastVal)
			ctx.Inc(CounterJob2Emitted, 1)
		}
	}
	return nil
}

// buildList constructs List(e, T) per §V for the tree at index ti of
// family j, whose shallowest block on e's path is at level `level`.
// The returned encoding is scratch owned by the mapper — callers must
// copy it into the emitted value before the next buildList call.
func (m *Job2Mapper) buildList(e *entity.Entity, j, level, ti int) []byte {
	s := m.side.schedule
	fams := m.side.families
	tree := s.Trees[ti]
	if cap(m.listScratch) < len(fams)+1 {
		m.listScratch = make(dedup.List, 0, len(fams)+1)
	}
	list := m.listScratch[:len(fams)]
	for k, f := range fams {
		if k == j {
			// Own family: the tree the emitted block belongs to.
			list[k] = tree.Dom
			continue
		}
		id := blocking.BlockID{Family: int8(k), Level: 1, Key: f.Key(e, 1)}
		if t, ok := s.TreeOf[id]; ok {
			list[k] = s.Trees[t].Dom
		} else {
			list[k] = dedup.SentinelFor(int32(e.ID))
		}
	}
	// (n+1)st value: the highest split-off descendant tree containing
	// the entity — the first deeper level on e's path whose block is
	// the root of a different tree.
	f := fams[j]
	treeRootLevel := int(tree.Root.ID.Level)
	for l := max(level, treeRootLevel) + 1; l <= f.Levels(); l++ {
		id := blocking.BlockID{Family: int8(j), Level: int8(l), Key: f.Key(e, l)}
		t, ok := s.TreeOf[id]
		if !ok {
			break // pruned below; nothing deeper can be scheduled
		}
		if t != ti && s.Trees[t].Root.ID == id {
			list = append(list, s.Trees[t].Dom)
			break
		}
	}
	m.listEnc = dedup.Encode(m.listEnc[:0], list)
	return m.listEnc
}

// Job2Partitioner routes each sequence key to its reduce task.
func Job2Partitioner(key string, numReduce int) int {
	sq, err := sched.ParseSQKey(key)
	if err != nil {
		return 0
	}
	task := sched.TaskOfSQ(sq)
	if task < 0 || task >= numReduce {
		return 0
	}
	return task
}

// dupValue encodes a discovered duplicate pair as a reduce-output value.
func dupValue(p entity.Pair) []byte { return entity.EncodePair(nil, p) }

// Job2Reducer resolves blocks in sequence order. Per-tree resolved-pair
// state lives on the reducer instance (one per reduce task), which is
// what makes incremental bottom-up resolution repeat-free (§III-A).
type Job2Reducer struct {
	mapreduce.ReducerBase
	side *job2Side
	// resolved[treeIdx] is the pair set already resolved within that tree.
	resolved map[int]entity.PairSet
	// decoded memoizes payload decoding by the payload's backing array.
	// The mapper shares ONE value buffer per (entity, tree) across that
	// tree's block emissions, so pointer identity implies byte identity
	// and each entity ⊕ dominance-list payload is decoded once per tree
	// instead of once per block it reaches. Distinct buffers (e.g.
	// records read back from a shuffle spill) never share a first-byte
	// address, so the worst a foreign buffer can cause is a miss.
	decoded map[*byte]job2Payload
}

type job2Payload struct {
	ent  *entity.Entity
	list dedup.List
}

// Setup implements mapreduce.Reducer, hoisting the per-task state maps
// out of the per-block Reduce path.
func (r *Job2Reducer) Setup(*mapreduce.TaskContext) error {
	r.resolved = map[int]entity.PairSet{}
	r.decoded = map[*byte]job2Payload{}
	return nil
}

// decodePayload decodes (or recalls) one entity ⊕ dominance-list
// payload. Decoded entities are shared across blocks — safe because
// entities are read-only downstream (mechanisms copy the slice they
// sort and never mutate elements).
func (r *Job2Reducer) decodePayload(v []byte) (job2Payload, error) {
	if len(v) == 0 {
		return job2Payload{}, fmt.Errorf("core: empty job-2 payload")
	}
	if p, ok := r.decoded[&v[0]]; ok {
		return p, nil
	}
	e, n, err := entity.DecodeBinary(v)
	if err != nil {
		return job2Payload{}, err
	}
	l, _, err := dedup.Decode(v[n:])
	if err != nil {
		return job2Payload{}, err
	}
	p := job2Payload{ent: e, list: l}
	r.decoded[&v[0]] = p
	return p, nil
}

// Reduce implements mapreduce.Reducer: one call per scheduled block.
func (r *Job2Reducer) Reduce(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
	start := ctx.Now()
	s := r.side.schedule
	sq, err := sched.ParseSQKey(key)
	if err != nil {
		return err
	}
	b := s.Block(sq)
	if b == nil {
		return fmt.Errorf("core: no scheduled block for sequence %d", sq)
	}
	treeIdx, ok := s.TreeOf[b.ID]
	if !ok {
		return fmt.Errorf("core: block %s has no tree", b.ID)
	}
	set := r.resolved[treeIdx]
	if set == nil {
		set = entity.PairSet{}
		r.resolved[treeIdx] = set
	}

	ents := make([]*entity.Entity, 0, len(values))
	lists := make(map[entity.ID]dedup.List, len(values))
	for _, v := range values {
		p, err := r.decodePayload(v)
		if err != nil {
			return err
		}
		ents = append(ents, p.ent)
		lists[p.ent.ID] = p.list
	}

	famIdx := int(b.ID.Family)
	index := famIdx + 1 // 1-based dominance Index of the family
	n := len(r.side.families)
	var stop mechanism.StopFunc
	if !b.FullResolve {
		stop = mechanism.DistinctThreshold(b.Th)
	}
	env := &mechanism.Env{
		SortAttr: r.side.families[famIdx].Attr,
		Match:    r.side.matcher.Match,
		Decide: func(p entity.Pair) mechanism.Decision {
			if set.Has(p) {
				return mechanism.SkipResolved
			}
			if !r.side.noDedup && !dedup.ShouldResolve(lists[p.Lo], lists[p.Hi], index, n) {
				return mechanism.SkipNotResponsible
			}
			return mechanism.Resolve
		},
		Emit: func(p entity.Pair, isDup bool) {
			set.Add(p)
			if isDup {
				emit.Emit("dup", dupValue(p))
			}
		},
		Charge: ctx.Charge,
		Stop:   stop,
		Cost:   ctx.Cost,
	}
	window := r.side.policy.Window(b)
	st := r.side.mech.ResolveBlock(env, ents, window)
	ctx.Inc(CounterJob2BlocksResolved, 1)
	ctx.Inc(CounterJob2Compared, int64(st.Compared))
	ctx.Inc(CounterJob2Dups, int64(st.Dups))
	ctx.Inc(CounterJob2Skipped, int64(st.Skipped))
	if b.FullResolve {
		ctx.Inc(CounterJob2FullResolves, 1)
	}
	if ctx.QualityOn() {
		ctx.ObserveBlock(quality.BlockObs{
			ID:       b.ID.String(),
			SQ:       sq,
			Start:    start,
			End:      ctx.Now(),
			Compared: int64(st.Compared),
			Dups:     int64(st.Dups),
			Skipped:  int64(st.Skipped),
			Full:     b.FullResolve,
		})
	}
	if ctx.Tracing() {
		ctx.Span("resolve", "block "+b.ID.String(), start, ctx.Now(),
			obs.A("sq", sq),
			obs.A("size", len(ents)),
			obs.A("window", window),
			obs.A("th", b.Th),
			obs.A("full", b.FullResolve),
			obs.A("hint_cost", float64(ctx.Cost.HintCost(len(ents)))),
			obs.A("compared", st.Compared),
			obs.A("dups", st.Dups),
			obs.A("skipped", st.Skipped))
	}
	return nil
}
