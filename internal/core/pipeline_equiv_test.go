package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"proger/internal/datagen"
	"proger/internal/estimate"
	"proger/internal/faults"
	"proger/internal/mapreduce"
	"proger/internal/mechanism"
	"proger/internal/obs"
	"proger/internal/obs/quality"
	"proger/internal/sched"
)

// These tests pin the PR-5 hard constraint end to end: the pipelined
// engine is a host-side optimization only, so the full two-job
// pipeline's Result, Chrome trace bytes, and quality-telemetry JSON
// must be byte-identical to the barriered reference engine across
// worker counts and under fault injection.

// equivRun resolves the People toy dataset with full telemetry under
// the given engine/workers/fault-rate and returns the Result plus the
// exported trace and quality bytes.
func equivRun(t *testing.T, mode mapreduce.ExecutionMode, workers int, rate float64) (*Result, []byte, []byte) {
	t.Helper()
	ds, _ := datagen.People()
	opts := Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Policy:          estimate.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
		Scheduler:       sched.Ours,
		Workers:         workers,
		Execution:       mode,
		Trace:           obs.New(),
		Metrics:         obs.NewRegistry(),
		Quality:         quality.NewRecorder(),
	}
	if rate > 0 {
		opts.Faults = faults.NewSeeded(11, rate)
		opts.Retry = mapreduce.RetryPolicy{MaxRetries: 3, Speculation: true}
	}
	res, err := Resolve(ds, opts)
	if err != nil {
		t.Fatalf("mode=%v workers=%d rate=%v: %v", mode, workers, rate, err)
	}
	var trace, qual bytes.Buffer
	if err := opts.Trace.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if err := opts.Quality.Export(0).WriteJSON(&qual); err != nil {
		t.Fatal(err)
	}
	return res, trace.Bytes(), qual.Bytes()
}

// TestResolvePipelinedMatchesBarrier compares the pipelined engine
// against the barrier reference at every workers × fault-rate point.
// Per fault rate, the barrier run at workers=1 is the source of truth
// (fault injection legitimately adds retry/attempt spans to the
// trace, so faulted and fault-free traces differ by design); every
// other run at that rate must reproduce it byte for byte. The
// duplicate set, event timeline, and total time must additionally
// match across rates — results are fault-immune even though traces
// record the extra attempts.
func TestResolvePipelinedMatchesBarrier(t *testing.T) {
	plainRes, _, _ := equivRun(t, mapreduce.ExecBarrier, 1, 0)
	for _, rate := range []float64{0, 0.5} {
		refRes, refTrace, refQual := equivRun(t, mapreduce.ExecBarrier, 1, rate)
		if !reflect.DeepEqual(refRes.Events, plainRes.Events) || refRes.TotalTime != plainRes.TotalTime {
			t.Fatalf("rate=%v: barrier reference result diverged from fault-free run", rate)
		}
		for _, mode := range []mapreduce.ExecutionMode{mapreduce.ExecBarrier, mapreduce.ExecPipelined} {
			for _, workers := range []int{1, 4, 8} {
				name := fmt.Sprintf("mode=%d/workers=%d/rate=%v", mode, workers, rate)
				t.Run(name, func(t *testing.T) {
					res, trace, qual := equivRun(t, mode, workers, rate)
					if !reflect.DeepEqual(res.Duplicates, refRes.Duplicates) {
						t.Error("duplicates diverged from barrier reference")
					}
					if !reflect.DeepEqual(res.Events, refRes.Events) {
						t.Error("event timeline diverged from barrier reference")
					}
					if res.TotalTime != refRes.TotalTime {
						t.Errorf("total time %v, want %v", res.TotalTime, refRes.TotalTime)
					}
					if !reflect.DeepEqual(res.Counters, refRes.Counters) {
						t.Error("counters diverged from barrier reference")
					}
					if !bytes.Equal(trace, refTrace) {
						t.Error("Chrome trace JSON diverged from barrier reference")
					}
					if !bytes.Equal(qual, refQual) {
						t.Error("quality-telemetry JSON diverged from barrier reference")
					}
				})
			}
		}
	}
}

// TestResolveCompactPipelinedMatchesBarrier covers the compact-shuffle
// job-2 variant (tree-encoded shuffle payloads) under both engines.
func TestResolveCompactPipelinedMatchesBarrier(t *testing.T) {
	ds, _ := datagen.People()
	run := func(mode mapreduce.ExecutionMode, workers int) *Result {
		opts := Options{
			Families:        peopleFamilies(),
			Matcher:         peopleMatcher(),
			Mechanism:       mechanism.SN{},
			Policy:          estimate.CiteSeerXPolicy(),
			Machines:        2,
			SlotsPerMachine: 2,
			Scheduler:       sched.Ours,
			Workers:         workers,
			Execution:       mode,
			CompactShuffle:  true,
		}
		res, err := Resolve(ds, opts)
		if err != nil {
			t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
		}
		return res
	}
	ref := run(mapreduce.ExecBarrier, 1)
	for _, workers := range []int{1, 8} {
		res := run(mapreduce.ExecPipelined, workers)
		if !reflect.DeepEqual(res.Events, ref.Events) {
			t.Errorf("workers=%d: compact-shuffle events diverged between engines", workers)
		}
		if res.TotalTime != ref.TotalTime {
			t.Errorf("workers=%d: total time %v, want %v", workers, res.TotalTime, ref.TotalTime)
		}
	}
}

// TestResolveBasicPipelinedMatchesBarrier covers the Basic baseline's
// single job under both engines.
func TestResolveBasicPipelinedMatchesBarrier(t *testing.T) {
	ds, _ := datagen.People()
	run := func(mode mapreduce.ExecutionMode, workers int) *Result {
		opts := BasicOptions{
			Families:        peopleFamilies(),
			Matcher:         peopleMatcher(),
			Mechanism:       mechanism.SN{},
			Window:          5,
			Machines:        2,
			SlotsPerMachine: 2,
			Workers:         workers,
			Execution:       mode,
		}
		res, err := ResolveBasic(ds, opts)
		if err != nil {
			t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
		}
		return res
	}
	ref := run(mapreduce.ExecBarrier, 1)
	for _, workers := range []int{1, 8} {
		res := run(mapreduce.ExecPipelined, workers)
		if !reflect.DeepEqual(res.Events, ref.Events) {
			t.Errorf("workers=%d: Basic events diverged between engines", workers)
		}
		if res.TotalTime != ref.TotalTime {
			t.Errorf("workers=%d: total time %v, want %v", workers, res.TotalTime, ref.TotalTime)
		}
	}
}
