// Package core assembles the full parallel progressive ER pipeline of
// the paper (§III): Job 1 (progressive blocking + statistics), schedule
// generation, and Job 2 (progressive resolution with redundancy-free
// pair ownership and incremental result delivery). It also implements
// the Basic single-job baseline of §II-C used throughout the
// evaluation.
package core

import (
	"fmt"

	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/estimate"
	"proger/internal/faults"
	"proger/internal/mapreduce"
	"proger/internal/match"
	"proger/internal/mechanism"
	"proger/internal/obs"
	"proger/internal/obs/live"
	"proger/internal/obs/quality"
	"proger/internal/sched"
)

// Options configures the full pipeline.
type Options struct {
	// Families are the blocking-function families in dominance order.
	Families blocking.Families
	// Matcher is the resolve/match function.
	Matcher *match.Matcher
	// Mechanism is the progressive mechanism M (SN or PSNM).
	Mechanism mechanism.Mechanism
	// Policy sets per-level window/Th/Frac (§VI-A5).
	Policy estimate.Policy
	// DupModel estimates d(X); nil uses the analytic default. Train one
	// with estimate.Train for the paper's learned model.
	DupModel estimate.DupModel
	// Machines and SlotsPerMachine describe the simulated cluster
	// (paper: 2 map + 2 reduce slots per machine).
	Machines        int
	SlotsPerMachine int
	// Cost is the simulated cost model; zero value uses the default.
	Cost costmodel.Model
	// Scheduler selects Ours / NoSplit / LPT (§VI-B2).
	Scheduler sched.Kind
	// CostVectorK is the number of sampling points in the auto-derived
	// cost vector C (default 3).
	CostVectorK int
	// Budget, when > 0, switches the scheduler to the extended report's
	// budget-constrained objective: generate the highest-quality result
	// within Budget total cost units (uniform weights over a linear
	// cost vector up to the per-task budget share). The run itself is
	// not truncated — trim the returned events at the budget instead.
	Budget costmodel.Units
	// SplitBatch is b: overflowed trees split per iteration (default 4).
	SplitBatch int
	// Workers caps host-machine concurrency (0 = GOMAXPROCS); never
	// affects results or simulated timing.
	Workers int
	// Execution picks the engine for both jobs: the pipelined
	// task-graph engine (default) or the barriered reference engine.
	// Like Workers, a host knob that never affects results.
	Execution mapreduce.ExecutionMode
	// Transport, when non-nil, replaces in-process task execution for
	// both jobs: a dist.Master leases every task to worker processes, a
	// dist.Worker executes leases and follows the master's broadcasts.
	// Like Workers, a host knob that never affects results — every
	// process must run with identical resolution-affecting options.
	Transport mapreduce.TaskTransport
	// Faults, when non-nil, injects deterministic simulated task
	// failures into both jobs' attempt runtimes (chaos testing).
	// Injected faults are retried, timed out, or speculated around and
	// can never alter the Result — like Workers, a pure host/chaos
	// knob.
	Faults faults.Injector
	// Retry tunes the attempt runtime (retries, backoff, timeouts,
	// speculation); the zero value means engine defaults when Faults is
	// set, disabled otherwise.
	Retry mapreduce.RetryPolicy
	// DisableRedundancyElimination turns off the §V SHOULD-RESOLVE
	// check, so shared pairs are resolved in every tree containing them.
	// Ablation knob: quantifies what redundancy-free resolution buys.
	DisableRedundancyElimination bool
	// CompactShuffle enables the footnote-5 map-side optimization: one
	// emission per (entity, tree) instead of one per (entity, block),
	// with per-block trigger records and reduce-side tree caching.
	// Results are identical; the shuffle is ~2–3× smaller.
	CompactShuffle bool
	// DisableSubBlocking truncates every family to its main function
	// only — no progressive blocking, each tree a single root block.
	// Ablation knob: quantifies what the §III-A block hierarchy buys.
	DisableSubBlocking bool
	// Trace, when non-nil, collects spans from both jobs, schedule
	// generation, and per-block resolution. Nil disables at zero cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, absorbs both jobs' counters and task-cost
	// distributions plus pipeline-level gauges. Nil disables at zero
	// cost.
	Metrics *obs.Registry
	// Quality, when non-nil, collects quality telemetry: the schedule's
	// per-block predictions and per-task plans, and Job 2's realized
	// per-block resolutions — the inputs to the progressive-recall
	// curve and the calibration report. Deterministic across Workers
	// and fault injection, like Trace. Nil disables at zero cost.
	Quality *quality.Recorder
	// Live, when non-nil, receives in-flight execution state from both
	// jobs (task DAG transitions, retry/speculation activity, streamed
	// per-block resolutions) plus the quality recorder and memory-budget
	// manager attachments that denominate its recall/ETA estimates —
	// the feed behind the live status server. Write-only from the run's
	// perspective: results and every post-run artifact are byte-
	// identical with or without it. Nil disables at zero cost.
	Live *live.Run
	// MemBudget, when > 0, caps the tracked bytes held in memory by
	// both jobs' shuffles and the Job-1 block statistics: a
	// process-wide budget manager spills the largest holders to
	// compressed disk runs when the cap is exceeded. A host knob like
	// Workers — results, traces, and quality telemetry are identical
	// with or without it. 0 keeps everything in memory.
	MemBudget int64
	// SpillDir is where budget- and limit-forced spill files live
	// (system temp when empty).
	SpillDir string
}

func (o *Options) validate() error {
	if err := o.Families.Validate(); err != nil {
		return err
	}
	if o.Matcher == nil {
		return fmt.Errorf("core: Matcher is required")
	}
	if o.Mechanism == nil {
		return fmt.Errorf("core: Mechanism is required")
	}
	if o.Machines < 1 || o.SlotsPerMachine < 1 {
		return fmt.Errorf("core: cluster %d×%d invalid", o.Machines, o.SlotsPerMachine)
	}
	return nil
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Cost == (costmodel.Model{}) {
		out.Cost = costmodel.Default()
	}
	if out.CostVectorK <= 0 {
		out.CostVectorK = 3
	}
	if out.SplitBatch <= 0 {
		out.SplitBatch = 4
	}
	if out.DupModel == nil {
		out.DupModel = estimate.DefaultModel{}
	}
	return out
}

// BasicOptions configures the Basic baseline (§II-C): a single MR job,
// hash partitioning on blocking keys, a stopping scheme per block, and
// the smallest-key redundancy rule of [14].
type BasicOptions struct {
	Families blocking.Families
	Matcher  *match.Matcher
	// Mechanism is M, applied per main block.
	Mechanism mechanism.Mechanism
	// Window is the SN window w (the paper evaluates 5 and 15).
	Window int
	// PopcornThreshold is the stopping threshold; < 0 disables stopping
	// entirely — the "Basic F" configuration that resolves every block
	// to completion.
	PopcornThreshold float64
	// PopcornWindow is the trailing-comparison window used to measure
	// the duplicate rate (default 200).
	PopcornWindow int

	Machines        int
	SlotsPerMachine int
	Cost            costmodel.Model
	Workers         int
	// Execution mirrors Options.Execution.
	Execution mapreduce.ExecutionMode
	// Transport mirrors Options.Transport.
	Transport mapreduce.TaskTransport
	// Faults and Retry mirror Options.Faults / Options.Retry.
	Faults faults.Injector
	Retry  mapreduce.RetryPolicy
	// Trace and Metrics mirror Options.Trace / Options.Metrics.
	Trace   *obs.Tracer
	Metrics *obs.Registry
	// Quality mirrors Options.Quality. The baseline has no schedule, so
	// only realizations are recorded (curve yes, calibration join no).
	Quality *quality.Recorder
	// Live mirrors Options.Live. With no schedule there are no predicted
	// totals, so /progress reports raw streamed counts without a recall
	// estimate.
	Live *live.Run
	// MemBudget and SpillDir mirror Options.MemBudget / Options.SpillDir.
	MemBudget int64
	SpillDir  string
}

func (o *BasicOptions) validate() error {
	if err := o.Families.Validate(); err != nil {
		return err
	}
	if o.Matcher == nil {
		return fmt.Errorf("core: Matcher is required")
	}
	if o.Mechanism == nil {
		return fmt.Errorf("core: Mechanism is required")
	}
	if o.Machines < 1 || o.SlotsPerMachine < 1 {
		return fmt.Errorf("core: cluster %d×%d invalid", o.Machines, o.SlotsPerMachine)
	}
	if o.Window < 2 {
		return fmt.Errorf("core: window %d must be ≥ 2", o.Window)
	}
	return nil
}

func (o *BasicOptions) withDefaults() BasicOptions {
	out := *o
	if out.Cost == (costmodel.Model{}) {
		out.Cost = costmodel.Default()
	}
	if out.PopcornWindow <= 0 {
		out.PopcornWindow = 200
	}
	return out
}
