package core

import (
	"fmt"

	"proger/internal/blocking"
	"proger/internal/dedup"
	"proger/internal/entity"
	"proger/internal/mapreduce"
	"proger/internal/match"
	"proger/internal/mechanism"
	"proger/internal/membudget"
	"proger/internal/obs"
	"proger/internal/obs/quality"
	"proger/internal/progress"
)

// This file implements the Basic approach of §II-C (Fig. 2): a single
// MapReduce job whose map function emits (blocking key ⊕ function ID,
// entity) per main blocking function, whose partition function is the
// default hash partitioner, and whose reduce function resolves each
// block with the mechanism M until the popcorn stopping condition [5]
// is met. The smallest-key redundancy-elimination rule of Kolb et
// al. [14] is incorporated, exactly as in §VI-B1.

type basicSide struct {
	families blocking.Families
	matcher  *match.Matcher
	mech     mechanism.Mechanism
	window   int
	// popcornThreshold < 0 disables the stopping condition ("Basic F").
	popcornThreshold float64
	popcornWindow    int
}

// BasicMapper emits one (famID|mainKey, annotated entity) pair per
// family; the annotation carries the main keys for the smallest-key
// responsibility rule.
type BasicMapper struct {
	mapreduce.MapperBase
	side *basicSide
}

// Map implements mapreduce.Mapper.
func (m *BasicMapper) Map(ctx *mapreduce.TaskContext, rec mapreduce.KeyValue, emit mapreduce.Emitter) error {
	e, _, err := entity.DecodeBinary(rec.Value)
	if err != nil {
		return err
	}
	ann := blocking.Annotate(m.side.families, e)
	ctx.Charge(ctx.Cost.ReadRecord * float64(len(m.side.families)))
	buf := blocking.EncodeAnnotated(nil, ann)
	for famIdx := range m.side.families {
		emit.Emit(blocking.Job1KeyOf(famIdx, ann.MainKeys[famIdx]), buf)
	}
	return nil
}

// BasicReducer resolves one main block per reduce call.
type BasicReducer struct {
	mapreduce.ReducerBase
	side *basicSide
}

// Reduce implements mapreduce.Reducer.
func (r *BasicReducer) Reduce(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
	start := ctx.Now()
	famIdx, blockKey, err := blocking.ParseJob1Key(key)
	if err != nil {
		return err
	}
	if famIdx < 0 || famIdx >= len(r.side.families) {
		return fmt.Errorf("core: basic key %q references family %d", key, famIdx)
	}
	ents := make([]*entity.Entity, 0, len(values))
	keysOf := make(map[entity.ID][]string, len(values))
	for _, v := range values {
		ann, _, err := blocking.DecodeAnnotated(v)
		if err != nil {
			return err
		}
		ents = append(ents, ann.Ent)
		keysOf[ann.Ent.ID] = ann.MainKeys
	}

	var stop mechanism.StopFunc
	var observer func(bool)
	if r.side.popcornThreshold >= 0 {
		pc := &mechanism.Popcorn{Threshold: r.side.popcornThreshold, Window: r.side.popcornWindow}
		stop = pc.Func()
		observer = pc.Observe
	}
	env := &mechanism.Env{
		SortAttr: r.side.families[famIdx].Attr,
		Match:    r.side.matcher.Match,
		Decide: func(p entity.Pair) mechanism.Decision {
			if !dedup.SmallestKeyResponsible(keysOf[p.Lo], keysOf[p.Hi], famIdx, blockKey) {
				return mechanism.SkipNotResponsible
			}
			return mechanism.Resolve
		},
		Emit: func(p entity.Pair, isDup bool) {
			if isDup {
				emit.Emit("dup", dupValue(p))
			}
		},
		Charge:   ctx.Charge,
		Stop:     stop,
		Observer: observer,
		Cost:     ctx.Cost,
	}
	st := r.side.mech.ResolveBlock(env, ents, r.side.window)
	ctx.Inc(CounterBasicBlocksResolved, 1)
	ctx.Inc(CounterBasicCompared, int64(st.Compared))
	ctx.Inc(CounterBasicDups, int64(st.Dups))
	ctx.Inc(CounterBasicSkipped, int64(st.Skipped))
	if ctx.QualityOn() {
		// The baseline has no schedule and hence no SQ values; SQ -1
		// marks a realization with no prediction to join against.
		ctx.ObserveBlock(quality.BlockObs{
			ID:       key,
			SQ:       -1,
			Start:    start,
			End:      ctx.Now(),
			Compared: int64(st.Compared),
			Dups:     int64(st.Dups),
			Skipped:  int64(st.Skipped),
			Full:     r.side.popcornThreshold < 0,
		})
	}
	if ctx.Tracing() {
		ctx.Span("resolve", "block "+key, start, ctx.Now(),
			obs.A("size", len(ents)),
			obs.A("window", r.side.window),
			obs.A("compared", st.Compared),
			obs.A("dups", st.Dups),
			obs.A("skipped", st.Skipped))
	}
	return nil
}

// ResolveBasic runs the Basic baseline on the dataset.
func ResolveBasic(ds *entity.Dataset, opts BasicOptions) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	cluster := mapreduce.Cluster{Machines: opts.Machines, SlotsPerMachine: opts.SlotsPerMachine}
	side := &basicSide{
		families:         opts.Families,
		matcher:          opts.Matcher,
		mech:             opts.Mechanism,
		window:           opts.Window,
		popcornThreshold: opts.PopcornThreshold,
		popcornWindow:    opts.PopcornWindow,
	}
	var mgr *membudget.Manager
	if opts.MemBudget > 0 {
		mgr = membudget.New(opts.MemBudget)
	}
	opts.Live.AttachBudget(mgr)
	opts.Live.AttachQuality(opts.Quality)
	cfg := mapreduce.Config{
		Name:           "basic-progressive-er",
		NewMapper:      func() mapreduce.Mapper { return &BasicMapper{side: side} },
		NewReducer:     func() mapreduce.Reducer { return &BasicReducer{side: side} },
		NumMapTasks:    cluster.Slots(),
		NumReduceTasks: cluster.Slots(),
		Cluster:        cluster,
		Cost:           opts.Cost,
		Workers:        opts.Workers,
		Execution:      opts.Execution,
		Transport:      opts.Transport,
		Faults:         opts.Faults,
		Retry:          opts.Retry,
		Trace:          opts.Trace,
		Metrics:        opts.Metrics,
		Quality:        opts.Quality,
		Live:           opts.Live,
		MemBudget:      mgr,
		SpillDir:       opts.SpillDir,
	}
	jobRes, err := mapreduce.Run(cfg, blocking.MakeJob1Input(ds), 0)
	if err != nil {
		return nil, fmt.Errorf("core: basic job: %w", err)
	}
	if m := opts.Metrics; m != nil {
		m.Gauge(GaugePipelineTotalTime).Set(float64(jobRes.End))
		if mgr != nil {
			m.Gauge(GaugeMemBudgetPeakBytes).Set(float64(mgr.Peak()))
			m.Gauge(GaugeMemBudgetChargedBytes).Set(float64(mgr.ChargedTotal()))
		}
	}
	res := &Result{
		Duplicates: entity.PairSet{},
		TotalTime:  jobRes.End,
		Job2:       jobRes,
		Counters:   mapreduce.Counters{},
	}
	res.Counters.Merge(jobRes.Counters)
	for _, kv := range jobRes.Output {
		p, _, err := entity.DecodePair(kv.Value)
		if err != nil {
			return nil, err
		}
		res.Duplicates.Add(p)
		res.Events = append(res.Events, progress.Event{Time: kv.Global, Pair: p})
	}
	return res, nil
}
