package core

// Job 2 and Basic-baseline counter keys (exported constants so call
// sites cannot silently typo a name; see the telemetry-key lint in
// scripts/check.sh).
const (
	// CounterJob2ScheduleGen counts map tasks that charged schedule
	// generation in Setup (one per map task, as in the paper).
	CounterJob2ScheduleGen = "job2.schedule_gen"
	// CounterJob2Emitted counts map-side (SQ, value) emissions.
	CounterJob2Emitted = "job2.emitted"
	// CounterJob2Triggers counts the compact shuffle's per-block trigger
	// records (footnote 5).
	CounterJob2Triggers = "job2.triggers"
	// CounterJob2BlocksResolved counts reduce-side block resolutions.
	CounterJob2BlocksResolved = "job2.blocks_resolved"
	// CounterJob2Compared, CounterJob2Dups, and CounterJob2Skipped count
	// match-function applications, found duplicates, and pairs skipped by
	// redundancy elimination.
	CounterJob2Compared = "job2.compared"
	CounterJob2Dups     = "job2.dups"
	CounterJob2Skipped  = "job2.skipped"
	// CounterJob2FullResolves counts blocks resolved to completion
	// (no Th(X) cutoff).
	CounterJob2FullResolves = "job2.full_resolves"

	// Basic-baseline equivalents.
	CounterBasicBlocksResolved = "basic.blocks_resolved"
	CounterBasicCompared       = "basic.compared"
	CounterBasicDups           = "basic.dups"
	CounterBasicSkipped        = "basic.skipped"

	// GaugePipelineTotalTime is the registry gauge holding the
	// pipeline's end-to-end simulated time.
	GaugePipelineTotalTime = "pipeline.total_time_units"

	// GaugeMemBudgetPeakBytes and GaugeMemBudgetChargedBytes report the
	// memory-budget manager's high-water mark of tracked bytes and the
	// cumulative bytes charged across the pipeline (the raw shuffle +
	// stats volume). Host-pressure telemetry only — like the forced-spill
	// counters, these never appear in Result or trace bytes.
	GaugeMemBudgetPeakBytes    = "pipeline.membudget_peak_bytes"
	GaugeMemBudgetChargedBytes = "pipeline.membudget_charged_bytes"
)
