package core

import (
	"bytes"
	"testing"

	"proger/internal/datagen"
	"proger/internal/estimate"
	"proger/internal/faults"
	"proger/internal/mapreduce"
	"proger/internal/mechanism"
	"proger/internal/obs/quality"
	"proger/internal/sched"
)

// qualityPeopleOptions returns People-toy options with a fresh quality
// recorder attached.
func qualityPeopleOptions(workers int) Options {
	return Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Policy:          estimate.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
		Scheduler:       sched.Ours,
		Workers:         workers,
		Quality:         quality.NewRecorder(),
	}
}

func exportJSON(t *testing.T, q *quality.Recorder) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := q.Export(0).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestResolveQualityCoverage(t *testing.T) {
	ds, _ := datagen.People()
	opts := qualityPeopleOptions(0)
	res, err := Resolve(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	exp := opts.Quality.Export(0)
	rep := exp.Calibration

	// Every scheduled block has a calibration row, joined by SQ; every
	// resolved block is marked so.
	scheduled := 0
	for _, blocks := range res.Schedule.TaskBlocks {
		scheduled += len(blocks)
	}
	if len(rep.Blocks) != scheduled {
		t.Errorf("calibration rows = %d, want %d (one per scheduled block)", len(rep.Blocks), scheduled)
	}
	bySQ := map[int64]bool{}
	for _, blocks := range res.Schedule.TaskBlocks {
		for _, b := range blocks {
			bySQ[b.SQ] = true
		}
	}
	resolved := 0
	for _, bc := range rep.Blocks {
		if !bySQ[bc.SQ] {
			t.Errorf("calibration row for unscheduled SQ %d", bc.SQ)
		}
		if bc.Resolved {
			resolved++
			if bc.Cost <= 0 {
				t.Errorf("resolved block %s has cost %g", bc.ID, bc.Cost)
			}
		}
	}
	if resolved == 0 {
		t.Error("no calibration row marked resolved")
	}

	// Every scheduled reduce task has a skew row with its planned load.
	if len(rep.Tasks) != res.Schedule.R {
		t.Errorf("task skew rows = %d, want R = %d", len(rep.Tasks), res.Schedule.R)
	}
	for _, ts := range rep.Tasks {
		if ts.PlannedCost <= 0 {
			t.Errorf("task %d has no planned cost: %+v", ts.Task, ts)
		}
	}

	// The realized duplicates across observations equal the pipeline's.
	var dups int64
	for _, o := range opts.Quality.Observations() {
		dups += o.Dups
	}
	if dups != int64(len(res.Duplicates)) {
		t.Errorf("observed dups = %d, want %d", dups, len(res.Duplicates))
	}

	// The curve is sane: closes at a positive end with recall 1.
	c := exp.Curve
	if c.End <= 0 || c.End > float64(res.TotalTime) {
		t.Errorf("curve end %g outside (0, %v]", c.End, res.TotalTime)
	}
	if c.AUC <= 0 || c.AUC > 1 {
		t.Errorf("AUC = %g, want in (0, 1]", c.AUC)
	}
	if last := c.Points[len(c.Points)-1]; last.Recall != 1 {
		t.Errorf("closing recall = %g, want 1", last.Recall)
	}

	// Bucket stats reference the estimator's labels.
	if len(rep.Buckets) == 0 {
		t.Error("no bucket stats")
	}
	for _, bs := range rep.Buckets {
		if bs.Bucket < 0 || bs.Bucket >= estimate.NumFracBuckets {
			t.Errorf("bucket index %d outside [0, %d)", bs.Bucket, estimate.NumFracBuckets)
		}
		if bs.Label == "" {
			t.Errorf("bucket %d has no label", bs.Bucket)
		}
	}
}

func TestQualityDeterministicAcrossWorkersAndFaults(t *testing.T) {
	ds, _ := datagen.People()

	opts1 := qualityPeopleOptions(1)
	if _, err := Resolve(ds, opts1); err != nil {
		t.Fatal(err)
	}
	base := exportJSON(t, opts1.Quality)

	opts8 := qualityPeopleOptions(8)
	if _, err := Resolve(ds, opts8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, exportJSON(t, opts8.Quality)) {
		t.Error("quality export differs between 1 and 8 workers")
	}

	for _, seed := range []int64{1, 7} {
		chaos := qualityPeopleOptions(4)
		chaos.Faults = faults.NewSeeded(seed, 0.5)
		chaos.Retry = mapreduce.RetryPolicy{MaxRetries: 4, Speculation: true}
		if _, err := Resolve(ds, chaos); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, exportJSON(t, chaos.Quality)) {
			t.Errorf("quality export differs under fault injection (seed %d, rate 0.5)", seed)
		}
	}
}

func TestQualityCompactShuffleMatchesExpanded(t *testing.T) {
	// The compact shuffle changes simulated costs (per-block tree scans
	// replace shuffle volume), so timings — and hence the curve — may
	// differ; the realized per-block duplicates and comparisons must
	// not, and the compact run must itself be deterministic.
	ds, _ := datagen.People()
	plain := qualityPeopleOptions(0)
	if _, err := Resolve(ds, plain); err != nil {
		t.Fatal(err)
	}
	compact := qualityPeopleOptions(1)
	compact.CompactShuffle = true
	if _, err := Resolve(ds, compact); err != nil {
		t.Fatal(err)
	}
	type realized struct{ compared, dups int64 }
	perSQ := func(q *quality.Recorder) map[int64]realized {
		out := map[int64]realized{}
		for _, o := range q.Observations() {
			out[o.SQ] = realized{o.Compared, o.Dups}
		}
		return out
	}
	plainSQ, compactSQ := perSQ(plain.Quality), perSQ(compact.Quality)
	if len(plainSQ) != len(compactSQ) {
		t.Fatalf("observed blocks differ: %d expanded vs %d compact", len(plainSQ), len(compactSQ))
	}
	for sq, want := range plainSQ {
		if got, ok := compactSQ[sq]; !ok || got != want {
			t.Errorf("SQ %d realized %+v compact, want %+v", sq, compactSQ[sq], want)
		}
	}

	compact8 := qualityPeopleOptions(8)
	compact8.CompactShuffle = true
	if _, err := Resolve(ds, compact8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exportJSON(t, compact.Quality), exportJSON(t, compact8.Quality)) {
		t.Error("compact quality export differs between 1 and 8 workers")
	}
}

func TestQualityRecordingDoesNotChangeResults(t *testing.T) {
	ds, _ := datagen.People()
	plainOpts := qualityPeopleOptions(0)
	plainOpts.Quality = nil
	plain, err := Resolve(ds, plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := Resolve(ds, qualityPeopleOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalTime != recorded.TotalTime {
		t.Errorf("quality recording changed timing: %v vs %v", plain.TotalTime, recorded.TotalTime)
	}
	if len(plain.Events) != len(recorded.Events) {
		t.Errorf("quality recording changed events: %d vs %d", len(plain.Events), len(recorded.Events))
	}
}

func TestResolveBasicQuality(t *testing.T) {
	ds, _ := datagen.People()
	q := quality.NewRecorder()
	res, err := ResolveBasic(ds, BasicOptions{
		Families:         peopleFamilies(),
		Matcher:          peopleMatcher(),
		Mechanism:        mechanism.SN{},
		Window:           5,
		PopcornThreshold: -1,
		Machines:         2,
		SlotsPerMachine:  2,
		Quality:          q,
	})
	if err != nil {
		t.Fatal(err)
	}
	exp := q.Export(0)
	// No schedule: realizations only — curve populated, join empty.
	if len(exp.Calibration.Blocks) != 0 || len(exp.Calibration.Buckets) != 0 {
		t.Errorf("basic run produced prediction rows: %+v", exp.Calibration)
	}
	if len(exp.Calibration.Tasks) == 0 {
		t.Error("basic run produced no task rows")
	}
	var dups int64
	for _, o := range q.Observations() {
		if o.SQ != -1 {
			t.Errorf("basic observation with SQ %d, want -1", o.SQ)
		}
		if !o.Full {
			t.Error("Basic F observation not marked full")
		}
		dups += o.Dups
	}
	if dups != int64(len(res.Duplicates)) {
		t.Errorf("observed dups = %d, want %d", dups, len(res.Duplicates))
	}
}
