package core

import (
	"testing"

	"proger/internal/datagen"
	"proger/internal/entity"
)

// TestIncrementalSegmentsConsistentWithEvents verifies the §III-B
// incremental-delivery contract end to end: a consumer who, at any
// instant t, merges all α-segments that have completely closed by t
// sees exactly the duplicates discovered before those segments' close
// times — never a pair from the future, and everything from closed
// segments.
func TestIncrementalSegmentsConsistentWithEvents(t *testing.T) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(900, 83))
	res, err := Resolve(ds, pubOptions(ds, gt, 2))
	if err != nil {
		t.Fatal(err)
	}
	const alpha = 250.0
	// Collect every record from every task's segments and check the
	// partitioning invariants.
	total := 0
	for task := range res.Job2.ReduceTaskCosts {
		segs := res.Job2.Segments(task, alpha)
		for _, seg := range segs {
			for _, rec := range seg.Records {
				total++
				if rec.Local < seg.Start || rec.Local >= seg.End {
					t.Fatalf("task %d: record at local %v outside segment [%v,%v)",
						task, rec.Local, seg.Start, seg.End)
				}
				p, _, err := entity.DecodePair(rec.Value)
				if err != nil {
					t.Fatalf("segment record not a pair: %v", err)
				}
				if !res.Duplicates.Has(p) {
					t.Fatalf("segment pair %v not in the final duplicate set", p)
				}
			}
		}
	}
	if total != len(res.Events) {
		t.Fatalf("segments carry %d records, run produced %d events", total, len(res.Events))
	}

	// Simulate a consumer at the run's midpoint: merge segments closed
	// by then (global close time = task start + segment end).
	cutoff := res.TotalTime / 2
	consumed := entity.PairSet{}
	for task, start := range res.Job2.ReduceStarts {
		for _, seg := range res.Job2.Segments(task, alpha) {
			if start+seg.End > cutoff {
				continue // segment not yet closed at the cutoff
			}
			for _, rec := range seg.Records {
				p, _, err := entity.DecodePair(rec.Value)
				if err != nil {
					t.Fatal(err)
				}
				consumed.Add(p)
			}
		}
	}
	// Nothing from the future: every consumed pair's event time ≤ cutoff.
	eventTime := map[entity.Pair]float64{}
	for _, ev := range res.Events {
		eventTime[ev.Pair] = float64(ev.Time)
	}
	for p := range consumed {
		if eventTime[p] > float64(cutoff) {
			t.Fatalf("consumed pair %v discovered at %v, after cutoff %v", p, eventTime[p], cutoff)
		}
	}
	// Completeness up to the last closed segment: every event older
	// than (cutoff − α) must be in some closed segment.
	missing := 0
	for _, ev := range res.Events {
		if float64(ev.Time) <= float64(cutoff)-alpha && !consumed.Has(ev.Pair) {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d duplicates older than cutoff−α missing from closed segments", missing)
	}
	if len(consumed) == 0 {
		t.Fatal("midpoint consumer saw nothing — segmentation inert")
	}
}
