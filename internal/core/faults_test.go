package core

import (
	"reflect"
	"testing"

	"proger/internal/datagen"
	"proger/internal/estimate"
	"proger/internal/faults"
	"proger/internal/mapreduce"
	"proger/internal/mechanism"
	"proger/internal/sched"
)

// TestResolveImmuneToFaults runs the full two-job pipeline under fault
// injection and asserts the end-to-end Result — duplicates, timestamped
// events, total time — is identical to the fault-free run, at both
// serial and concurrent host execution.
func TestResolveImmuneToFaults(t *testing.T) {
	ds, _ := datagen.People()
	opts := Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Policy:          estimate.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
		Scheduler:       sched.Ours,
	}
	baseline, err := Resolve(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0.1, 0.5} {
		for _, workers := range []int{1, 8} {
			chaos := opts
			chaos.Workers = workers
			chaos.Faults = faults.NewSeeded(11, rate)
			chaos.Retry = mapreduce.RetryPolicy{MaxRetries: 3, Speculation: true}
			res, err := Resolve(ds, chaos)
			if err != nil {
				t.Fatalf("rate=%v workers=%d: %v", rate, workers, err)
			}
			if !reflect.DeepEqual(res.Duplicates, baseline.Duplicates) {
				t.Errorf("rate=%v workers=%d: duplicates diverged", rate, workers)
			}
			if !reflect.DeepEqual(res.Events, baseline.Events) {
				t.Errorf("rate=%v workers=%d: event timeline diverged", rate, workers)
			}
			if res.TotalTime != baseline.TotalTime {
				t.Errorf("rate=%v workers=%d: total time %v, want %v",
					rate, workers, res.TotalTime, baseline.TotalTime)
			}
		}
	}
}

// TestResolveBasicImmuneToFaults covers the Basic baseline's single job.
func TestResolveBasicImmuneToFaults(t *testing.T) {
	ds, _ := datagen.People()
	opts := BasicOptions{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Window:          5,
		Machines:        2,
		SlotsPerMachine: 2,
	}
	baseline, err := ResolveBasic(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	chaos := opts
	chaos.Faults = faults.NewSeeded(5, 0.5)
	chaos.Retry = mapreduce.RetryPolicy{MaxRetries: 3, Speculation: true}
	res, err := ResolveBasic(ds, chaos)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Events, baseline.Events) {
		t.Error("fault injection perturbed the Basic baseline's events")
	}
	if res.TotalTime != baseline.TotalTime {
		t.Errorf("total time %v, want %v", res.TotalTime, baseline.TotalTime)
	}
}
