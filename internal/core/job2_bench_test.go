package core

import (
	"sort"
	"testing"

	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/datagen"
	"proger/internal/estimate"
	"proger/internal/mapreduce"
	"proger/internal/mechanism"
	"proger/internal/sched"
)

// discardEmitter swallows emissions so the benchmark isolates map-side
// work (key computation, list building, value assembly).
type discardEmitter struct{ n int }

func (e *discardEmitter) Emit(key string, value []byte) { e.n++ }

// benchJob2Side builds the Job-2 side data (schedule included) for a
// full generated dataset, shared by the map- and reduce-side
// benchmarks. It also returns the job-1 input and the reduce-task
// count the schedule was generated for.
func benchJob2Side(b *testing.B) (*job2Side, []mapreduce.KeyValue, int) {
	b.Helper()
	ds, gt := datagen.Publications(datagen.DefaultPublications(1500, 5))
	opts := pubOptions(ds, gt, 5)
	opts = opts.withDefaults()
	cluster := mapreduce.Cluster{Machines: opts.Machines, SlotsPerMachine: opts.SlotsPerMachine}
	stats, _, err := blocking.RunJob1(ds, opts.Families, cluster, opts.Cost, 0)
	if err != nil {
		b.Fatal(err)
	}
	trees, err := stats.BuildForests(opts.Families)
	if err != nil {
		b.Fatal(err)
	}
	trees = estimate.Prune(trees)
	est := estimate.NewEstimator(opts.Policy, opts.Cost, opts.DupModel, ds.Len())
	for _, t := range trees {
		est.EstimateTree(t)
	}
	r := cluster.Slots()
	cv := sched.AutoCostVector(trees, r, opts.CostVectorK)
	schedule, err := sched.Generate(trees, sched.Config{
		R: r, CostVector: cv, Weights: sched.LinearWeights(len(cv)), Estimator: est,
	})
	if err != nil {
		b.Fatal(err)
	}
	side := &job2Side{
		schedule: schedule,
		families: opts.Families,
		matcher:  opts.Matcher,
		mech:     mechanism.SN{},
		policy:   opts.Policy,
	}
	return side, blocking.MakeJob1Input(ds), r
}

// BenchmarkJob2Map runs the expanded Job-2 map function over a full
// dataset against a real generated schedule — the per-entity hot path
// of the resolve pipeline's second job.
func BenchmarkJob2Map(b *testing.B) {
	side, input, _ := benchJob2Side(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &Job2Mapper{side: side}
		ctx := &mapreduce.TaskContext{Job: "bench", Type: mapreduce.MapTask, Cost: costmodel.Default()}
		emit := &discardEmitter{}
		for _, rec := range input {
			if err := m.Map(ctx, rec, emit); err != nil {
				b.Fatal(err)
			}
		}
		if emit.n == 0 {
			b.Fatal("mapper emitted nothing")
		}
	}
}

// partEmitter collects map output per reduce partition without
// copying values, exactly like the engine's shuffle: the mapper's
// shared per-(entity, tree) buffers keep their pointer identity, which
// is what the reducer's decode cache keys on.
type partEmitter struct {
	parts [][]mapreduce.KeyValue
}

func (e *partEmitter) Emit(key string, value []byte) {
	r := Job2Partitioner(key, len(e.parts))
	e.parts[r] = append(e.parts[r], mapreduce.KeyValue{Key: key, Value: value})
}

// BenchmarkJob2Reduce drives the Job-2 reduce function over real
// shuffled map output, whole partitions at a time — the hot path the
// per-task decode cache targets: every entity ⊕ dominance-list payload
// is decoded once per tree rather than once per scheduled block.
func BenchmarkJob2Reduce(b *testing.B) {
	side, input, r := benchJob2Side(b)

	// Map once, partition, and group — the reduce input the engine
	// would hand each reduce task.
	m := &Job2Mapper{side: side}
	mctx := &mapreduce.TaskContext{Job: "bench", Type: mapreduce.MapTask, Cost: costmodel.Default()}
	pe := &partEmitter{parts: make([][]mapreduce.KeyValue, r)}
	for _, rec := range input {
		if err := m.Map(mctx, rec, pe); err != nil {
			b.Fatal(err)
		}
	}
	type group struct {
		key    string
		values [][]byte
	}
	groups := make([][]group, r)
	total := 0
	for p, part := range pe.parts {
		sort.SliceStable(part, func(i, j int) bool { return part[i].Key < part[j].Key })
		for i := 0; i < len(part); {
			j := i
			for j < len(part) && part[j].Key == part[i].Key {
				j++
			}
			vals := make([][]byte, 0, j-i)
			for _, kv := range part[i:j] {
				vals = append(vals, kv.Value)
			}
			groups[p] = append(groups[p], group{key: part[i].Key, values: vals})
			total += j - i
			i = j
		}
	}
	if total == 0 {
		b.Fatal("no reduce input")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := range groups {
			red := &Job2Reducer{side: side}
			ctx := &mapreduce.TaskContext{Job: "bench", Type: mapreduce.ReduceTask, Cost: costmodel.Default()}
			if err := red.Setup(ctx); err != nil {
				b.Fatal(err)
			}
			emit := &discardEmitter{}
			for _, g := range groups[p] {
				if err := red.Reduce(ctx, g.key, g.values, emit); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
