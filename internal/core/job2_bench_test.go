package core

import (
	"testing"

	"proger/internal/blocking"
	"proger/internal/costmodel"
	"proger/internal/datagen"
	"proger/internal/estimate"
	"proger/internal/mapreduce"
	"proger/internal/mechanism"
	"proger/internal/sched"
)

// discardEmitter swallows emissions so the benchmark isolates map-side
// work (key computation, list building, value assembly).
type discardEmitter struct{ n int }

func (e *discardEmitter) Emit(key string, value []byte) { e.n++ }

// BenchmarkJob2Map runs the expanded Job-2 map function over a full
// dataset against a real generated schedule — the per-entity hot path
// of the resolve pipeline's second job.
func BenchmarkJob2Map(b *testing.B) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(1500, 5))
	opts := pubOptions(ds, gt, 5)
	opts = opts.withDefaults()
	cluster := mapreduce.Cluster{Machines: opts.Machines, SlotsPerMachine: opts.SlotsPerMachine}
	stats, job1Res, err := blocking.RunJob1(ds, opts.Families, cluster, opts.Cost, 0)
	if err != nil {
		b.Fatal(err)
	}
	_ = job1Res
	trees, err := stats.BuildForests(opts.Families)
	if err != nil {
		b.Fatal(err)
	}
	trees = estimate.Prune(trees)
	est := estimate.NewEstimator(opts.Policy, opts.Cost, opts.DupModel, ds.Len())
	for _, t := range trees {
		est.EstimateTree(t)
	}
	r := cluster.Slots()
	cv := sched.AutoCostVector(trees, r, opts.CostVectorK)
	schedule, err := sched.Generate(trees, sched.Config{
		R: r, CostVector: cv, Weights: sched.LinearWeights(len(cv)), Estimator: est,
	})
	if err != nil {
		b.Fatal(err)
	}
	side := &job2Side{
		schedule: schedule,
		families: opts.Families,
		matcher:  opts.Matcher,
		mech:     mechanism.SN{},
		policy:   opts.Policy,
	}
	input := blocking.MakeJob1Input(ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &Job2Mapper{side: side}
		ctx := &mapreduce.TaskContext{Job: "bench", Type: mapreduce.MapTask, Cost: costmodel.Default()}
		emit := &discardEmitter{}
		for _, rec := range input {
			if err := m.Map(ctx, rec, emit); err != nil {
				b.Fatal(err)
			}
		}
		if emit.n == 0 {
			b.Fatal("mapper emitted nothing")
		}
	}
}
