package core

import (
	"fmt"

	"proger/internal/blocking"
	"proger/internal/clustering"
	"proger/internal/costmodel"
	"proger/internal/entity"
	"proger/internal/estimate"
	"proger/internal/mapreduce"
	"proger/internal/membudget"
	"proger/internal/progress"
	"proger/internal/sched"
)

// Result is the outcome of a pipeline run: the identified duplicate
// pairs with their discovery timestamps, plus run diagnostics.
type Result struct {
	// Duplicates is the set of identified duplicate pairs (each found
	// exactly once under redundancy-free resolution).
	Duplicates entity.PairSet
	// Events lists every duplicate discovery in emission order with its
	// global simulated time. TrueDup is left false; the evaluation layer
	// fills it against ground truth via EventsAgainst.
	Events []progress.Event
	// TotalTime is the end-to-end simulated time.
	TotalTime costmodel.Units
	// Job1 and Job2 are the raw MapReduce results (Job1 is nil for the
	// Basic baseline, which runs a single job).
	Job1, Job2 *mapreduce.Result
	// Schedule is the generated progressive schedule (nil for Basic).
	Schedule *sched.Schedule
	// Counters aggregates both jobs' counters.
	Counters mapreduce.Counters
}

// Clusters groups the identified duplicate pairs into disjoint entity
// clusters by transitive closure (§II-A's final clustering step), for a
// dataset of n entities. Singleton clusters are included.
func (r *Result) Clusters(n int) [][]entity.ID {
	return clustering.TransitiveClosure(n, r.Duplicates)
}

// EventsAgainst returns the run's events with TrueDup filled from the
// given ground-truth oracle.
func (r *Result) EventsAgainst(isDup func(entity.Pair) bool) []progress.Event {
	out := make([]progress.Event, len(r.Events))
	for i, ev := range r.Events {
		ev.TrueDup = isDup(ev.Pair)
		out[i] = ev
	}
	return out
}

// Resolve runs the full parallel progressive ER pipeline of §III on the
// dataset: Job 1 (progressive blocking + statistics), schedule
// generation, and Job 2 (progressive resolution).
func Resolve(ds *entity.Dataset, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.DisableSubBlocking {
		opts.Families = truncateToMainFunctions(opts.Families)
	}
	cluster := mapreduce.Cluster{Machines: opts.Machines, SlotsPerMachine: opts.SlotsPerMachine}
	var mgr *membudget.Manager
	if opts.MemBudget > 0 {
		mgr = membudget.New(opts.MemBudget)
	}
	// Attach the run-scoped telemetry sources to the live layer before
	// any job starts, so /membudget and the recall denominators are
	// readable from the first scrape.
	opts.Live.AttachBudget(mgr)
	opts.Live.AttachQuality(opts.Quality)

	// ---- Job 1: progressive blocking + statistics ----
	job1Cfg := blocking.Job1Config(opts.Families, cluster, opts.Cost)
	job1Cfg.Workers = opts.Workers
	job1Cfg.Execution = opts.Execution
	job1Cfg.Transport = opts.Transport
	job1Cfg.Faults = opts.Faults
	job1Cfg.Retry = opts.Retry
	job1Cfg.Trace = opts.Trace
	job1Cfg.Metrics = opts.Metrics
	job1Cfg.Live = opts.Live
	job1Cfg.MemBudget = mgr
	job1Cfg.SpillDir = opts.SpillDir
	job1Res, err := mapreduce.Run(job1Cfg, blocking.MakeJob1Input(ds), 0)
	if err != nil {
		return nil, fmt.Errorf("core: job 1: %w", err)
	}
	stats, err := blocking.ParseJob1Output(job1Res)
	if err != nil {
		return nil, fmt.Errorf("core: job 1: %w", err)
	}
	// The block statistics live until the end of the pipeline; under a
	// memory budget they become an eviction candidate whenever the
	// shuffle needs headroom, so hold them through a spillable holder
	// and pin them only while schedule generation reads them.
	holder, err := blocking.NewStatsHolder(stats, mgr, opts.SpillDir)
	if err != nil {
		return nil, fmt.Errorf("core: job 1: %w", err)
	}
	defer holder.Close()

	// ---- Schedule generation (executed by each Job-2 map task in the
	// paper; computed once here, with its cost charged per map task in
	// Job2Mapper.Setup) ----
	stats, err = holder.Acquire()
	if err != nil {
		return nil, fmt.Errorf("core: schedule generation: %w", err)
	}
	trees, err := stats.BuildForests(opts.Families)
	holder.Release()
	if err != nil {
		return nil, fmt.Errorf("core: building forests: %w", err)
	}
	trees = estimate.Prune(trees)
	est := estimate.NewEstimator(opts.Policy, opts.Cost, opts.DupModel, ds.Len())
	for _, t := range trees {
		est.EstimateTree(t)
	}
	r := cluster.Slots() // reduce tasks = reduce slots, as in the paper
	var (
		cv      []costmodel.Units
		weights []float64
	)
	if opts.Budget > 0 {
		cv = sched.BudgetCostVector(opts.Budget, r, opts.CostVectorK)
		weights = sched.UniformWeights(len(cv))
	} else {
		cv = sched.AutoCostVector(trees, r, opts.CostVectorK)
		weights = sched.LinearWeights(len(cv))
	}
	schedule, err := sched.Generate(trees, sched.Config{
		R:          r,
		CostVector: cv,
		Weights:    weights,
		Batch:      opts.SplitBatch,
		Estimator:  est,
		Kind:       opts.Scheduler,
		Trace:      opts.Trace,
		TraceBase:  job1Res.End,
		Quality:    opts.Quality,
	})
	if err != nil {
		return nil, fmt.Errorf("core: schedule generation: %w", err)
	}

	// ---- Job 2: progressive resolution ----
	side := &job2Side{
		schedule: schedule,
		families: opts.Families,
		matcher:  opts.Matcher,
		mech:     opts.Mechanism,
		policy:   opts.Policy,
		noDedup:  opts.DisableRedundancyElimination,
	}
	newMapper := func() mapreduce.Mapper { return &Job2Mapper{side: side} }
	newReducer := func() mapreduce.Reducer { return &Job2Reducer{side: side} }
	if opts.CompactShuffle {
		newMapper = func() mapreduce.Mapper { return &CompactJob2Mapper{side: side} }
		newReducer = func() mapreduce.Reducer { return &CompactJob2Reducer{side: side} }
	}
	job2Cfg := mapreduce.Config{
		Name:           "job2-progressive-resolution",
		NewMapper:      newMapper,
		NewReducer:     newReducer,
		Partition:      Job2Partitioner,
		NumMapTasks:    cluster.Slots(),
		NumReduceTasks: r,
		Cluster:        cluster,
		Cost:           opts.Cost,
		Workers:        opts.Workers,
		Execution:      opts.Execution,
		Transport:      opts.Transport,
		Faults:         opts.Faults,
		Retry:          opts.Retry,
		Trace:          opts.Trace,
		Metrics:        opts.Metrics,
		Quality:        opts.Quality,
		Live:           opts.Live,
		MemBudget:      mgr,
		SpillDir:       opts.SpillDir,
	}
	job2Res, err := mapreduce.Run(job2Cfg, blocking.MakeJob1Input(ds), job1Res.End)
	if err != nil {
		return nil, fmt.Errorf("core: job 2: %w", err)
	}
	if m := opts.Metrics; m != nil {
		m.Gauge(GaugePipelineTotalTime).Set(float64(job2Res.End))
		if mgr != nil {
			m.Gauge(GaugeMemBudgetPeakBytes).Set(float64(mgr.Peak()))
			m.Gauge(GaugeMemBudgetChargedBytes).Set(float64(mgr.ChargedTotal()))
		}
	}

	res := &Result{
		Duplicates: entity.PairSet{},
		TotalTime:  job2Res.End,
		Job1:       job1Res,
		Job2:       job2Res,
		Schedule:   schedule,
		Counters:   mapreduce.Counters{},
	}
	res.Counters.Merge(job1Res.Counters)
	res.Counters.Merge(job2Res.Counters)
	for _, kv := range job2Res.Output {
		p, _, err := entity.DecodePair(kv.Value)
		if err != nil {
			return nil, fmt.Errorf("core: decoding output pair: %w", err)
		}
		res.Duplicates.Add(p)
		res.Events = append(res.Events, progress.Event{Time: kv.Global, Pair: p})
	}
	return res, nil
}

// truncateToMainFunctions strips every family down to its level-1
// function, for the DisableSubBlocking ablation.
func truncateToMainFunctions(fams blocking.Families) blocking.Families {
	out := make(blocking.Families, len(fams))
	for i, f := range fams {
		g := *f
		g.PrefixLens = f.PrefixLens[:1]
		out[i] = &g
	}
	return out
}
