package core

import (
	"bytes"
	"testing"

	"proger/internal/datagen"
	"proger/internal/estimate"
	"proger/internal/mechanism"
	"proger/internal/obs"
	"proger/internal/sched"
)

// tracedPeopleOptions returns People-toy options with a fresh tracer
// and metrics registry attached.
func tracedPeopleOptions(workers int) Options {
	return Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Policy:          estimate.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
		Scheduler:       sched.Ours,
		Workers:         workers,
		Trace:           obs.New(),
		Metrics:         obs.NewRegistry(),
	}
}

func TestResolveTraceCoverage(t *testing.T) {
	ds, _ := datagen.People()
	opts := tracedPeopleOptions(0)
	res, err := Resolve(ds, opts)
	if err != nil {
		t.Fatal(err)
	}

	// The trace must cover every pipeline stage.
	byCat := map[string]int{}
	var maxEnd float64
	for _, s := range opts.Trace.Spans() {
		byCat[s.Cat]++
		if end := s.Start + s.Dur; end > maxEnd {
			maxEnd = end
		}
	}
	for _, cat := range []string{"map", "reduce", "shuffle", "schedule", "resolve"} {
		if byCat[cat] == 0 {
			t.Errorf("no %q spans in pipeline trace (have %v)", cat, byCat)
		}
	}
	if maxEnd > res.TotalTime {
		t.Errorf("span ends at %v, after pipeline end %v", maxEnd, res.TotalTime)
	}

	// Both jobs and the schedule generator get their own process lanes.
	procs := opts.Trace.Processes()
	wantProcs := map[string]bool{
		"job1-progressive-blocking":   false,
		"schedule-generation":         false,
		"job2-progressive-resolution": false,
	}
	for _, p := range procs {
		if _, ok := wantProcs[p]; !ok {
			t.Errorf("unexpected process lane %q", p)
		}
		wantProcs[p] = true
	}
	for p, seen := range wantProcs {
		if !seen {
			t.Errorf("missing process lane %q", p)
		}
	}

	// The registry absorbed both jobs' counters and the pipeline gauge.
	snap := opts.Metrics.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters[CounterJob2Dups] != int64(len(res.Duplicates)) {
		t.Errorf("%s = %d, want %d", CounterJob2Dups, counters[CounterJob2Dups], len(res.Duplicates))
	}
	var gauge float64
	for _, g := range snap.Gauges {
		if g.Name == "pipeline.total_time_units" {
			gauge = g.Value
		}
	}
	if gauge != res.TotalTime {
		t.Errorf("pipeline.total_time_units = %v, want %v", gauge, res.TotalTime)
	}
}

func TestResolveTraceDeterministicAcrossWorkers(t *testing.T) {
	ds, _ := datagen.People()
	opts1 := tracedPeopleOptions(1)
	opts8 := tracedPeopleOptions(8)
	if _, err := Resolve(ds, opts1); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(ds, opts8); err != nil {
		t.Fatal(err)
	}
	var b1, b8 bytes.Buffer
	if err := opts1.Trace.WriteChromeTrace(&b1); err != nil {
		t.Fatal(err)
	}
	if err := opts8.Trace.WriteChromeTrace(&b8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Error("pipeline trace JSON differs between 1 and 8 workers")
	}
}

func TestResolveTracingDoesNotChangeResults(t *testing.T) {
	ds, _ := datagen.People()
	plainOpts := tracedPeopleOptions(0)
	plainOpts.Trace = nil
	plainOpts.Metrics = nil
	plain, err := Resolve(ds, plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Resolve(ds, tracedPeopleOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalTime != traced.TotalTime {
		t.Errorf("tracing changed timing: %v vs %v", plain.TotalTime, traced.TotalTime)
	}
	if len(plain.Events) != len(traced.Events) {
		t.Errorf("tracing changed events: %d vs %d", len(plain.Events), len(traced.Events))
	}
	for i := range plain.Events {
		if plain.Events[i] != traced.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, plain.Events[i], traced.Events[i])
		}
	}
}

func TestResolveBasicTrace(t *testing.T) {
	ds, _ := datagen.People()
	tr := obs.New()
	m := obs.NewRegistry()
	res, err := ResolveBasic(ds, BasicOptions{
		Families:         peopleFamilies(),
		Matcher:          peopleMatcher(),
		Mechanism:        mechanism.SN{},
		Window:           5,
		PopcornThreshold: -1,
		Machines:         2,
		SlotsPerMachine:  2,
		Trace:            tr,
		Metrics:          m,
	})
	if err != nil {
		t.Fatal(err)
	}
	byCat := map[string]int{}
	for _, s := range tr.Spans() {
		byCat[s.Cat]++
	}
	for _, cat := range []string{"map", "reduce", "shuffle", "resolve"} {
		if byCat[cat] == 0 {
			t.Errorf("no %q spans in basic trace (have %v)", cat, byCat)
		}
	}
	counters := map[string]int64{}
	for _, c := range m.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters[CounterBasicDups] != int64(len(res.Duplicates)) {
		t.Errorf("%s = %d, want %d", CounterBasicDups, counters[CounterBasicDups], len(res.Duplicates))
	}
}
