package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"proger/internal/datagen"
	"proger/internal/estimate"
	"proger/internal/mapreduce"
	"proger/internal/mechanism"
	"proger/internal/obs"
	"proger/internal/obs/quality"
	"proger/internal/sched"
)

// These tests pin the PR-6 hard constraint end to end: the memory
// budget and its spill storage are host knobs only. A budget tight
// enough to force both jobs' shuffles and the Job-1 statistics through
// compressed disk runs must reproduce the in-memory pipeline's Result,
// Chrome trace bytes, and quality-telemetry JSON exactly.

// outOfCoreRun resolves the People toy dataset with full telemetry
// under the given engine/workers/budget and returns the Result plus
// the exported trace and quality bytes and the metrics registry.
func outOfCoreRun(t *testing.T, mode mapreduce.ExecutionMode, workers int, budget int64) (*Result, []byte, []byte, *obs.Registry) {
	t.Helper()
	ds, _ := datagen.People()
	opts := Options{
		Families:        peopleFamilies(),
		Matcher:         peopleMatcher(),
		Mechanism:       mechanism.SN{},
		Policy:          estimate.CiteSeerXPolicy(),
		Machines:        2,
		SlotsPerMachine: 2,
		Scheduler:       sched.Ours,
		Workers:         workers,
		Execution:       mode,
		Trace:           obs.New(),
		Metrics:         obs.NewRegistry(),
		Quality:         quality.NewRecorder(),
		MemBudget:       budget,
	}
	if budget > 0 {
		opts.SpillDir = t.TempDir()
	}
	res, err := Resolve(ds, opts)
	if err != nil {
		t.Fatalf("mode=%v workers=%d budget=%d: %v", mode, workers, budget, err)
	}
	var trace, qual bytes.Buffer
	if err := opts.Trace.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if err := opts.Quality.Export(0).WriteJSON(&qual); err != nil {
		t.Fatal(err)
	}
	return res, trace.Bytes(), qual.Bytes(), opts.Metrics
}

// TestResolveBudgetMatchesInMemory compares the out-of-core pipeline
// against the in-memory reference at every engine × workers point. The
// 1 KiB budget is far below the People shuffle volume, so every
// reduce-partition store spills; the full Result, trace bytes, and
// quality JSON must still be byte-identical.
func TestResolveBudgetMatchesInMemory(t *testing.T) {
	refRes, refTrace, refQual, _ := outOfCoreRun(t, mapreduce.ExecBarrier, 1, 0)
	sawPressure := false
	for _, mode := range []mapreduce.ExecutionMode{mapreduce.ExecBarrier, mapreduce.ExecPipelined} {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("mode=%d/workers=%d", mode, workers)
			t.Run(name, func(t *testing.T) {
				res, trace, qual, m := outOfCoreRun(t, mode, workers, 1<<10)
				if !reflect.DeepEqual(res, refRes) {
					t.Error("Result diverged from in-memory reference")
				}
				if !bytes.Equal(trace, refTrace) {
					t.Error("Chrome trace JSON diverged from in-memory reference")
				}
				if !bytes.Equal(qual, refQual) {
					t.Error("quality-telemetry JSON diverged from in-memory reference")
				}
				if m.Counter(mapreduce.CounterBudgetForcedSpills).Value() > 0 {
					sawPressure = true
				}
				if m.Gauge(GaugeMemBudgetChargedBytes).Value() <= 0 {
					t.Error("charged-bytes gauge not set under a budget")
				}
			})
		}
	}
	if !sawPressure {
		t.Error("no configuration recorded a forced spill — the budget never bit")
	}
}

// TestResolveBasicBudgetMatchesInMemory covers the Basic baseline's
// single job under a tight budget.
func TestResolveBasicBudgetMatchesInMemory(t *testing.T) {
	ds, _ := datagen.People()
	run := func(mode mapreduce.ExecutionMode, workers int, budget int64) *Result {
		opts := BasicOptions{
			Families:        peopleFamilies(),
			Matcher:         peopleMatcher(),
			Mechanism:       mechanism.SN{},
			Window:          5,
			Machines:        2,
			SlotsPerMachine: 2,
			Workers:         workers,
			Execution:       mode,
			MemBudget:       budget,
		}
		if budget > 0 {
			opts.SpillDir = t.TempDir()
		}
		res, err := ResolveBasic(ds, opts)
		if err != nil {
			t.Fatalf("mode=%v workers=%d budget=%d: %v", mode, workers, budget, err)
		}
		return res
	}
	ref := run(mapreduce.ExecBarrier, 1, 0)
	for _, mode := range []mapreduce.ExecutionMode{mapreduce.ExecBarrier, mapreduce.ExecPipelined} {
		for _, workers := range []int{1, 8} {
			res := run(mode, workers, 1<<10)
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("mode=%d workers=%d: Basic result diverged under budget", mode, workers)
			}
		}
	}
}
