// Package report renders human-readable diagnostics for pipeline runs:
// a per-job summary (phases, task utilization, counters) and an ASCII
// Gantt timeline of the simulated task schedule. This is the
// operational visibility a production deployment would get from the
// Hadoop job tracker UI.
package report

import (
	"fmt"
	"sort"
	"strings"

	"proger/internal/costmodel"
	"proger/internal/mapreduce"
)

// JobSummary condenses one MapReduce job's result.
type JobSummary struct {
	Name            string
	Start, MapEnd   costmodel.Units
	End             costmodel.Units
	MapTasks        int
	ReduceTasks     int
	MaxReduceCost   costmodel.Units
	MinReduceCost   costmodel.Units
	MeanReduceCost  costmodel.Units
	ReduceImbalance float64 // max/mean; 1.0 = perfectly balanced
}

// Summarize computes the summary of a job result.
func Summarize(name string, res *mapreduce.Result) JobSummary {
	s := JobSummary{
		Name:        name,
		Start:       res.Start,
		MapEnd:      res.MapEnd,
		End:         res.End,
		MapTasks:    len(res.MapTaskCosts),
		ReduceTasks: len(res.ReduceTaskCosts),
	}
	if len(res.ReduceTaskCosts) > 0 {
		s.MinReduceCost = res.ReduceTaskCosts[0]
		var total costmodel.Units
		for _, c := range res.ReduceTaskCosts {
			total += c
			if c > s.MaxReduceCost {
				s.MaxReduceCost = c
			}
			if c < s.MinReduceCost {
				s.MinReduceCost = c
			}
		}
		s.MeanReduceCost = total / costmodel.Units(len(res.ReduceTaskCosts))
		if s.MeanReduceCost > 0 {
			s.ReduceImbalance = float64(s.MaxReduceCost / s.MeanReduceCost)
		}
	}
	return s
}

// Render prints the summary as aligned text.
func (s JobSummary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %s\n", s.Name)
	fmt.Fprintf(&b, "  window     : %.0f → %.0f (map barrier at %.0f)\n", s.Start, s.End, s.MapEnd)
	fmt.Fprintf(&b, "  tasks      : %d map, %d reduce\n", s.MapTasks, s.ReduceTasks)
	if s.ReduceTasks > 0 {
		fmt.Fprintf(&b, "  reduce cost: min %.0f / mean %.0f / max %.0f (imbalance ×%.2f)\n",
			s.MinReduceCost, s.MeanReduceCost, s.MaxReduceCost, s.ReduceImbalance)
	}
	return b.String()
}

// Timeline renders an ASCII Gantt chart of the job's reduce tasks: one
// row per task, '#' spanning its busy window on the global clock.
func Timeline(res *mapreduce.Result, width int) string {
	if width < 20 {
		width = 20
	}
	if len(res.ReduceTaskCosts) == 0 || res.End <= res.Start {
		return "(no reduce tasks)\n"
	}
	span := res.End - res.Start
	var b strings.Builder
	fmt.Fprintf(&b, "reduce timeline [%.0f, %.0f]\n", res.Start, res.End)
	for i, cost := range res.ReduceTaskCosts {
		start := res.ReduceStarts[i]
		lo := int(float64(start-res.Start) / float64(span) * float64(width))
		hi := int(float64(start+cost-res.Start) / float64(span) * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		row := []byte(strings.Repeat(" ", width))
		for c := lo; c < hi; c++ {
			row[c] = '#'
		}
		fmt.Fprintf(&b, "  r%02d |%s|\n", i, string(row))
	}
	return b.String()
}

// Counters renders the counter map sorted by name.
func Counters(c mapreduce.Counters) string {
	var b strings.Builder
	names := c.Names()
	widest := 0
	for _, n := range names {
		if len(n) > widest {
			widest = len(n)
		}
	}
	for _, n := range names {
		fmt.Fprintf(&b, "  %-*s %12d\n", widest, n, c.Get(n))
	}
	return b.String()
}

// TopBlocks lists the k most expensive scheduled blocks, for spotting
// skew problems at a glance.
func TopBlocks(costs map[string]costmodel.Units, k int) string {
	type kv struct {
		id   string
		cost costmodel.Units
	}
	list := make([]kv, 0, len(costs))
	for id, c := range costs {
		list = append(list, kv{id, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].cost != list[j].cost {
			return list[i].cost > list[j].cost
		}
		return list[i].id < list[j].id
	})
	if k > len(list) {
		k = len(list)
	}
	var b strings.Builder
	for _, e := range list[:k] {
		fmt.Fprintf(&b, "  %-24s %12.0f\n", e.id, e.cost)
	}
	return b.String()
}
