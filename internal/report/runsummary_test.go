package report

import (
	"strings"
	"testing"

	"proger/internal/membudget"
	"proger/internal/obs"
	"proger/internal/obs/live"
	"proger/internal/obs/quality"
)

func TestWriteRunSummary(t *testing.T) {
	tr := obs.New()
	pid := tr.PID("job")
	tr.Add(obs.Span{Name: "map 0", Cat: "map", PID: pid, TID: 0, Start: 10, Dur: 5})
	tr.Add(obs.Span{Name: "map 1", Cat: "map", PID: pid, TID: 1, Start: 10, Dur: 7})
	tr.Add(obs.Span{Name: "reduce 0", Cat: "reduce", PID: pid, TID: 0, Start: 17, Dur: 3})

	reg := obs.NewRegistry()
	reg.Counter("job.records").Add(42)
	reg.Gauge("job.end").Set(20)
	h := reg.Histogram("job.task_cost", 1, 10, 100)
	h.Observe(5)
	h.Observe(7)

	q := quality.NewRecorder()
	q.RecordPlan(quality.TaskPlan{Task: 0, Trees: 1, Blocks: 1, EstCost: 50, Slack: 5})
	q.RecordPrediction(quality.BlockPrediction{ID: "F0.L1(a)", SQ: 7, Task: 0, Size: 4, Bucket: 2, Dup: 3, Cost: 50})
	q.ObserveBlock(quality.BlockObs{ID: "F0.L1(a)", SQ: 7, Task: 0, Start: 10, End: 60, Compared: 6, Dups: 1})

	mb := membudget.Stats{
		Budget:       1 << 20,
		Used:         512 << 10,
		Peak:         768 << 10,
		ChargedTotal: 4 << 20,
		ForcedSpills: 3,
		SpilledBytes: 2 << 20,
	}

	fleet := live.FleetSnapshot{
		Workers: []live.FleetWorker{
			{ID: 1, Alive: true, LeasesGranted: 9, MapDone: 4, ShuffleDone: 2,
				ReduceDone: 3, BusyCostUnits: 120, SkewVsMean: 1.2,
				Telemetry: &live.WorkerTelemetry{BusyMillis: 75, IdleMillis: 25,
					RunBytesRead: 1000, RunBytesWritten: 2000,
					RPCBytesIn: 300, RPCBytesOut: 400}},
			{ID: 2, Alive: false, LeasesGranted: 5, LeasesExpired: 2, BusyCostUnits: 80, SkewVsMean: 0.8},
		},
		Alive: 1, Dead: 1,
	}

	var b strings.Builder
	if err := WriteRunSummary(&b, tr, reg, q, mb, fleet); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"3 spans", "job",
		"map", "2 spans", "window [10, 17]", "busy 12 units",
		"reduce", "busy 3 units",
		"1 counters, 1 gauges, 1 histograms",
		"job.records", "42",
		"job.end", "20.0",
		"job.task_cost: n=2 mean=6.0 p50=5.5", "p99=9.9",
		"membudget: 1048576 B cap, peak 786432 B (75%), charged 4194304 B",
		"forced spills 3 (2097152 B spilled to disk)",
		"fleet: 2 workers (1 alive, 1 dead)",
		"busy 120 units (skew 1.20)",
		"9 granted / 0 expired",
		"busy 75% of pump time",
		"runfile 1000 B read / 2000 B written",
		"rpc 300 B in / 400 B out",
		"5 granted / 2 expired",
		"[dead]",
		"quality: 1 blocks resolved, 6 pairs, 1 dups",
		"progress ",
		"worst-calibrated blocks",
		"F0.L1(a)", "pred 3.0", "real 1", "err +2.0",
		"most-skewed tasks",
		"planned 50", "realized 50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	// Nil tracer, registry, and recorder plus a zero budget and empty
	// fleet write nothing and do not panic.
	var empty strings.Builder
	if err := WriteRunSummary(&empty, nil, nil, nil, membudget.Stats{}, live.FleetSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("nil summary wrote %q", empty.String())
	}
}

func TestSparkline(t *testing.T) {
	pts := []quality.CurvePoint{{Recall: 0}, {Recall: 0.5}, {Recall: 1}}
	got := sparkline(pts)
	if got != "▁▅█" {
		t.Errorf("sparkline = %q, want %q", got, "▁▅█")
	}
}
