package report

import (
	"strings"
	"testing"

	"proger/internal/obs"
)

func TestWriteRunSummary(t *testing.T) {
	tr := obs.New()
	pid := tr.PID("job")
	tr.Add(obs.Span{Name: "map 0", Cat: "map", PID: pid, TID: 0, Start: 10, Dur: 5})
	tr.Add(obs.Span{Name: "map 1", Cat: "map", PID: pid, TID: 1, Start: 10, Dur: 7})
	tr.Add(obs.Span{Name: "reduce 0", Cat: "reduce", PID: pid, TID: 0, Start: 17, Dur: 3})

	reg := obs.NewRegistry()
	reg.Counter("job.records").Add(42)
	reg.Gauge("job.end").Set(20)
	h := reg.Histogram("job.task_cost", 1, 10, 100)
	h.Observe(5)
	h.Observe(7)

	var b strings.Builder
	if err := WriteRunSummary(&b, tr, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"3 spans", "job",
		"map", "2 spans", "window [10, 17]", "busy 12 units",
		"reduce", "busy 3 units",
		"1 counters, 1 gauges, 1 histograms",
		"job.records", "42",
		"job.end", "20.0",
		"job.task_cost: n=2 sum=12 mean=6.0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	// Nil tracer and registry write nothing and do not panic.
	var empty strings.Builder
	if err := WriteRunSummary(&empty, nil, nil); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("nil summary wrote %q", empty.String())
	}
}
