package report

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"proger/internal/costmodel"
	"proger/internal/entity"
	"proger/internal/mapreduce"
)

// WriteSegments materializes the paper's incremental result delivery
// (§III-B: "outputs the results to a different file every α units of
// cost"): each reduce task's duplicate output is cut into α-cost
// segments and written as one TSV file per segment, named
// task-TT.seg-SSSS.tsv. The resolution results at any time t are the
// union of all files whose segment closed by t — exactly how a consumer
// of the paper's system would read partial results off HDFS.
//
// Returns the number of files written.
func WriteSegments(res *mapreduce.Result, alpha costmodel.Units, dir string) (int, error) {
	if alpha <= 0 {
		return 0, fmt.Errorf("report: alpha must be positive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("report: %w", err)
	}
	tasks := map[int]bool{}
	for _, kv := range res.Output {
		tasks[kv.Task] = true
	}
	files := 0
	for task := range tasks {
		for _, seg := range res.Segments(task, alpha) {
			if len(seg.Records) == 0 {
				continue
			}
			name := filepath.Join(dir, fmt.Sprintf("task-%02d.seg-%04d.tsv", seg.Task, seg.Index))
			if err := writeSegmentFile(name, seg); err != nil {
				return files, err
			}
			files++
		}
	}
	return files, nil
}

func writeSegmentFile(name string, seg mapreduce.Segment) error {
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "#lo\thi\tlocal\tglobal\n")
	for _, rec := range seg.Records {
		p, _, err := entity.DecodePair(rec.Value)
		if err != nil {
			return fmt.Errorf("report: segment %s: %w", name, err)
		}
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\n", p.Lo, p.Hi, rec.Local, rec.Global)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}
