package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"proger/internal/costmodel"
	"proger/internal/membudget"
	"proger/internal/obs"
	"proger/internal/obs/live"
	"proger/internal/obs/quality"
)

// catSummary aggregates one span category for the run summary.
type catSummary struct {
	cat      string
	count    int
	totalDur costmodel.Units
	minStart costmodel.Units
	maxEnd   costmodel.Units
}

// WriteRunSummary renders a human-readable digest of a run's
// observability data: the span taxonomy rollup (per category: span
// count, summed simulated duration, covered window), the metrics
// snapshot with per-histogram quantiles, the memory-budget pressure
// digest (peak vs budget, charged volume, forced spills), and the
// quality-telemetry digest (progressiveness sparkline,
// worst-calibrated blocks, most-skewed tasks), and — after a
// distributed run — the fleet digest (per-worker executions, busy
// fraction, skew, traffic, lease ledger). Any pointer argument may be
// nil, a zero mb skips the budget section, an empty fleet skips the
// fleet section; a fully empty argument set writes nothing.
func WriteRunSummary(w io.Writer, tr *obs.Tracer, reg *obs.Registry, q *quality.Recorder, mb membudget.Stats, fleet live.FleetSnapshot) error {
	if tr.Enabled() {
		if err := writeSpanSummary(w, tr); err != nil {
			return err
		}
	}
	if reg.Enabled() {
		if err := writeMetricsSummary(w, reg); err != nil {
			return err
		}
	}
	if mb.Budget > 0 {
		if err := writeBudgetSummary(w, mb); err != nil {
			return err
		}
	}
	if len(fleet.Workers) > 0 {
		if err := writeFleetSummary(w, fleet); err != nil {
			return err
		}
	}
	if q.Enabled() {
		if err := writeQualitySummary(w, q); err != nil {
			return err
		}
	}
	return nil
}

// writeFleetSummary renders the per-worker fleet digest of a
// distributed run.
func writeFleetSummary(w io.Writer, fleet live.FleetSnapshot) error {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d workers (%d alive, %d dead)\n",
		len(fleet.Workers), fleet.Alive, fleet.Dead)
	for _, fw := range fleet.Workers {
		state := ""
		if !fw.Alive {
			state = "  [dead]"
		}
		fmt.Fprintf(&b, "  w%-3d %4d map %4d shuffle %4d reduce  busy %.0f units (skew %.2f)  leases %d granted / %d expired%s\n",
			fw.ID, fw.MapDone, fw.ShuffleDone, fw.ReduceDone,
			fw.BusyCostUnits, fw.SkewVsMean, fw.LeasesGranted, fw.LeasesExpired, state)
		if t := fw.Telemetry; t != nil {
			busyFrac := 0.0
			if total := t.BusyMillis + t.IdleMillis; total > 0 {
				busyFrac = float64(t.BusyMillis) / float64(total)
			}
			fmt.Fprintf(&b, "       busy %.0f%% of pump time  runfile %d B read / %d B written  rpc %d B in / %d B out\n",
				100*busyFrac, t.RunBytesRead, t.RunBytesWritten, t.RPCBytesIn, t.RPCBytesOut)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeBudgetSummary renders the memory-budget pressure section.
func writeBudgetSummary(w io.Writer, mb membudget.Stats) error {
	var b strings.Builder
	pct := 100 * float64(mb.Peak) / float64(mb.Budget)
	fmt.Fprintf(&b, "membudget: %d B cap, peak %d B (%.0f%%), charged %d B\n",
		mb.Budget, mb.Peak, pct, mb.ChargedTotal)
	if mb.ForcedSpills > 0 {
		fmt.Fprintf(&b, "  forced spills %d (%d B spilled to disk)\n",
			mb.ForcedSpills, mb.SpilledBytes)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSpanSummary(w io.Writer, tr *obs.Tracer) error {
	spans := tr.Spans()
	byCat := map[string]*catSummary{}
	for i := range spans {
		s := &spans[i]
		c := byCat[s.Cat]
		if c == nil {
			c = &catSummary{cat: s.Cat, minStart: s.Start, maxEnd: s.Start + s.Dur}
			byCat[s.Cat] = c
		}
		c.count++
		c.totalDur += s.Dur
		if s.Start < c.minStart {
			c.minStart = s.Start
		}
		if end := s.Start + s.Dur; end > c.maxEnd {
			c.maxEnd = end
		}
	}
	cats := make([]*catSummary, 0, len(byCat))
	for _, c := range byCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		return cats[i].minStart < cats[j].minStart ||
			(cats[i].minStart == cats[j].minStart && cats[i].cat < cats[j].cat)
	})

	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d spans across %d processes (%s)\n",
		len(spans), len(tr.Processes()), strings.Join(tr.Processes(), ", "))
	for _, c := range cats {
		fmt.Fprintf(&b, "  %-10s %6d spans  window [%.0f, %.0f]  busy %.0f units\n",
			c.cat, c.count, c.minStart, c.maxEnd, c.totalDur)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeMetricsSummary(w io.Writer, reg *obs.Registry) error {
	snap := reg.Snapshot()
	var b strings.Builder
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) == 0 {
		return nil
	}
	fmt.Fprintf(&b, "metrics: %d counters, %d gauges, %d histograms\n",
		len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	widest := 0
	for _, c := range snap.Counters {
		if len(c.Name) > widest {
			widest = len(c.Name)
		}
	}
	for _, g := range snap.Gauges {
		if len(g.Name) > widest {
			widest = len(g.Name)
		}
	}
	for _, c := range snap.Counters {
		fmt.Fprintf(&b, "  %-*s %14d\n", widest, c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		fmt.Fprintf(&b, "  %-*s %14.1f\n", widest, g.Name, g.Value)
	}
	for _, h := range snap.Histograms {
		fmt.Fprintf(&b, "  %s: n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f\n",
			h.Name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// summaryTopN bounds the worst-calibrated-blocks and most-skewed-tasks
// lists in the quality digest.
const summaryTopN = 5

func writeQualitySummary(w io.Writer, q *quality.Recorder) error {
	exp := q.Export(0)
	var b strings.Builder
	curve := exp.Curve
	fmt.Fprintf(&b, "quality: %d blocks resolved, %d pairs, %d dups, AUC %.3f\n",
		curve.FinalBlocks, curve.FinalPairs, curve.FinalDups, curve.AUC)
	if len(curve.Points) > 0 {
		fmt.Fprintf(&b, "  progress %s  (recall over [0, %.0f], Δ=%.0f)\n",
			sparkline(curve.Points), curve.End, curve.SampleEvery)
	}
	rep := exp.Calibration
	if worst := rep.WorstBlocks(summaryTopN); len(worst) > 0 {
		fmt.Fprintf(&b, "  worst-calibrated blocks (predicted vs realized dups):\n")
		for _, bc := range worst {
			fmt.Fprintf(&b, "    %-20s task %d  pred %.1f  real %d  err %+.1f\n",
				bc.ID, bc.Task, bc.PredDup, bc.Dups, bc.DupErr)
		}
	}
	if skewed := rep.MostSkewed(summaryTopN); len(skewed) > 0 {
		fmt.Fprintf(&b, "  most-skewed tasks (planned vs realized cost):\n")
		for _, ts := range skewed {
			fmt.Fprintf(&b, "    task %d  planned %.0f  slack %.0f  realized %.0f  err %+.0f  skew %.2f\n",
				ts.Task, ts.PlannedCost, ts.PlannedSlack, ts.RealizedCost, ts.CostErr, ts.Skew)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sparkBars are the eight block-element levels used by sparkline.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the curve's recall values as one bar per sample.
func sparkline(points []quality.CurvePoint) string {
	var b strings.Builder
	for _, p := range points {
		i := int(p.Recall * float64(len(sparkBars)))
		if i >= len(sparkBars) {
			i = len(sparkBars) - 1
		}
		if i < 0 {
			i = 0
		}
		b.WriteRune(sparkBars[i])
	}
	return b.String()
}
