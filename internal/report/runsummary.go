package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"proger/internal/costmodel"
	"proger/internal/obs"
)

// catSummary aggregates one span category for the run summary.
type catSummary struct {
	cat      string
	count    int
	totalDur costmodel.Units
	minStart costmodel.Units
	maxEnd   costmodel.Units
}

// WriteRunSummary renders a human-readable digest of a run's
// observability data: the span taxonomy rollup (per category: span
// count, summed simulated duration, covered window), the process
// lanes, and the metrics snapshot. Either argument may be nil; a
// fully nil pair writes nothing.
func WriteRunSummary(w io.Writer, tr *obs.Tracer, reg *obs.Registry) error {
	if tr.Enabled() {
		if err := writeSpanSummary(w, tr); err != nil {
			return err
		}
	}
	if reg.Enabled() {
		if err := writeMetricsSummary(w, reg); err != nil {
			return err
		}
	}
	return nil
}

func writeSpanSummary(w io.Writer, tr *obs.Tracer) error {
	spans := tr.Spans()
	byCat := map[string]*catSummary{}
	for i := range spans {
		s := &spans[i]
		c := byCat[s.Cat]
		if c == nil {
			c = &catSummary{cat: s.Cat, minStart: s.Start, maxEnd: s.Start + s.Dur}
			byCat[s.Cat] = c
		}
		c.count++
		c.totalDur += s.Dur
		if s.Start < c.minStart {
			c.minStart = s.Start
		}
		if end := s.Start + s.Dur; end > c.maxEnd {
			c.maxEnd = end
		}
	}
	cats := make([]*catSummary, 0, len(byCat))
	for _, c := range byCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		return cats[i].minStart < cats[j].minStart ||
			(cats[i].minStart == cats[j].minStart && cats[i].cat < cats[j].cat)
	})

	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d spans across %d processes (%s)\n",
		len(spans), len(tr.Processes()), strings.Join(tr.Processes(), ", "))
	for _, c := range cats {
		fmt.Fprintf(&b, "  %-10s %6d spans  window [%.0f, %.0f]  busy %.0f units\n",
			c.cat, c.count, c.minStart, c.maxEnd, c.totalDur)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeMetricsSummary(w io.Writer, reg *obs.Registry) error {
	snap := reg.Snapshot()
	var b strings.Builder
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) == 0 {
		return nil
	}
	fmt.Fprintf(&b, "metrics: %d counters, %d gauges, %d histograms\n",
		len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	widest := 0
	for _, c := range snap.Counters {
		if len(c.Name) > widest {
			widest = len(c.Name)
		}
	}
	for _, g := range snap.Gauges {
		if len(g.Name) > widest {
			widest = len(g.Name)
		}
	}
	for _, c := range snap.Counters {
		fmt.Fprintf(&b, "  %-*s %14d\n", widest, c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		fmt.Fprintf(&b, "  %-*s %14.1f\n", widest, g.Name, g.Value)
	}
	for _, h := range snap.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Fprintf(&b, "  %s: n=%d sum=%.0f mean=%.1f\n", h.Name, h.Count, h.Sum, mean)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
