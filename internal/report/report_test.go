package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proger/internal/costmodel"
	"proger/internal/entity"
	"proger/internal/mapreduce"
)

func fakeResult() *mapreduce.Result {
	return &mapreduce.Result{
		Start:           100,
		MapEnd:          200,
		End:             500,
		MapTaskCosts:    []costmodel.Units{50, 60},
		ReduceTaskCosts: []costmodel.Units{300, 150, 200},
		ReduceStarts:    []costmodel.Units{200, 200, 200},
		Counters:        mapreduce.Counters{"b.count": 2, "a.count": 1},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize("demo", fakeResult())
	if s.MapTasks != 2 || s.ReduceTasks != 3 {
		t.Errorf("tasks = %d/%d", s.MapTasks, s.ReduceTasks)
	}
	if s.MaxReduceCost != 300 || s.MinReduceCost != 150 {
		t.Errorf("min/max = %v/%v", s.MinReduceCost, s.MaxReduceCost)
	}
	wantMean := costmodel.Units(650) / 3
	if s.MeanReduceCost < wantMean-1 || s.MeanReduceCost > wantMean+1 {
		t.Errorf("mean = %v", s.MeanReduceCost)
	}
	if s.ReduceImbalance < 1.3 || s.ReduceImbalance > 1.5 {
		t.Errorf("imbalance = %v", s.ReduceImbalance)
	}
	out := s.Render()
	for _, needle := range []string{"job demo", "2 map, 3 reduce", "imbalance"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q:\n%s", needle, out)
		}
	}
}

func TestSummarizeEmptyReduce(t *testing.T) {
	res := &mapreduce.Result{Start: 0, End: 10}
	s := Summarize("empty", res)
	if s.ReduceImbalance != 0 {
		t.Errorf("imbalance = %v", s.ReduceImbalance)
	}
	if !strings.Contains(s.Render(), "0 map, 0 reduce") {
		t.Error("render")
	}
}

func TestTimeline(t *testing.T) {
	out := Timeline(fakeResult(), 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 tasks
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Task 0 is the longest (300 of 400 span): most of its row is '#'.
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("task 0 should have the longest bar:\n%s", out)
	}
	// All bars start after the map barrier (25% into the window).
	for _, l := range lines[1:] {
		bar := l[strings.Index(l, "|")+1:]
		first := strings.Index(bar, "#")
		if first >= 0 && first < 40/5 {
			t.Errorf("bar starts before the map barrier:\n%s", out)
		}
	}
}

func TestTimelineDegenerate(t *testing.T) {
	if out := Timeline(&mapreduce.Result{}, 40); !strings.Contains(out, "no reduce tasks") {
		t.Errorf("degenerate timeline: %q", out)
	}
}

func TestCounters(t *testing.T) {
	out := Counters(mapreduce.Counters{"zz": 5, "aa": 7})
	if !strings.Contains(out, "aa") || !strings.Contains(out, "zz") {
		t.Errorf("counters render: %q", out)
	}
	// Sorted: aa before zz.
	if strings.Index(out, "aa") > strings.Index(out, "zz") {
		t.Error("counters not sorted")
	}
}

func TestTopBlocks(t *testing.T) {
	costs := map[string]costmodel.Units{"small": 10, "big": 500, "mid": 100}
	out := TopBlocks(costs, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "big") || !strings.Contains(lines[1], "mid") {
		t.Errorf("top blocks order:\n%s", out)
	}
	// k beyond len is clamped.
	if got := TopBlocks(costs, 10); strings.Count(got, "\n") != 3 {
		t.Errorf("clamped top blocks:\n%s", got)
	}
}

func TestWriteSegments(t *testing.T) {
	// A fake result with two duplicate events on one task at local
	// costs 5 and 25 → two α=10 segments.
	pair1 := entity.EncodePair(nil, entity.MakePair(0, 1))
	pair2 := entity.EncodePair(nil, entity.MakePair(2, 3))
	res := &mapreduce.Result{
		Output: []mapreduce.TimedKV{
			{KeyValue: mapreduce.KeyValue{Key: "dup", Value: pair1}, Local: 5, Global: 105, Task: 0},
			{KeyValue: mapreduce.KeyValue{Key: "dup", Value: pair2}, Local: 25, Global: 125, Task: 0},
		},
	}
	dir := t.TempDir()
	n, err := WriteSegments(res, 10, dir)
	if err != nil {
		t.Fatalf("WriteSegments: %v", err)
	}
	if n != 2 {
		t.Fatalf("files = %d, want 2", n)
	}
	first, err := os.ReadFile(filepath.Join(dir, "task-00.seg-0000.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), "0\t1\t5.0\t105.0") {
		t.Errorf("first segment:\n%s", first)
	}
	third, err := os.ReadFile(filepath.Join(dir, "task-00.seg-0002.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(third), "2\t3\t25.0") {
		t.Errorf("segment 2:\n%s", third)
	}
	if _, err := WriteSegments(res, 0, dir); err == nil {
		t.Error("alpha 0: want error")
	}
}
