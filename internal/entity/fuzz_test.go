package entity

import (
	"bytes"
	"testing"
)

// FuzzDecodeBinary guards the binary entity codec against panics and
// checks encode∘decode is the identity on whatever decodes cleanly.
func FuzzDecodeBinary(f *testing.F) {
	f.Add(EncodeBinary(nil, &Entity{ID: 1, Attrs: []string{"a", "bb"}}))
	f.Add(EncodeBinary(nil, &Entity{ID: 0}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := EncodeBinary(nil, e)
		e2, _, err := DecodeBinary(re)
		if err != nil || !Equal(e, e2) {
			t.Fatalf("re-encode mismatch: %v vs %v (%v)", e, e2, err)
		}
	})
}

// FuzzDecodePair guards the pair codec.
func FuzzDecodePair(f *testing.F) {
	f.Add(EncodePair(nil, MakePair(3, 9)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, n, err := DecodePair(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := EncodePair(nil, p)
		p2, _, err := DecodePair(re)
		if err != nil || p2 != p {
			t.Fatalf("re-encode mismatch: %v vs %v", p, p2)
		}
	})
}

// FuzzReadTSV guards the TSV reader against panics on arbitrary input,
// and checks write∘read round trips for inputs that parse.
func FuzzReadTSV(f *testing.F) {
	f.Add("#id\ta\tb\n0\tx\ty\n")
	f.Add("#id\ta\n0\tesc\\taped\n")
	f.Add("")
	f.Add("#id\t\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadTSV(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, ds); err != nil {
			t.Fatalf("WriteTSV of parsed dataset: %v", err)
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if back.Len() != ds.Len() {
			t.Fatalf("round trip lost rows: %d vs %d", back.Len(), ds.Len())
		}
		for i := range ds.Entities {
			if !Equal(ds.Entities[i], back.Entities[i]) {
				t.Fatalf("row %d differs", i)
			}
		}
	})
}
