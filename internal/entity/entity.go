// Package entity defines the data model shared by every stage of the
// progressive entity-resolution pipeline: entities, attribute schemas,
// datasets, and pair identifiers.
//
// An Entity is a flat record: an integer ID plus one string value per
// attribute of its dataset's Schema. The pipeline never interprets
// attribute values itself; blocking functions and similarity functions
// are configured with attribute indexes.
package entity

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies an entity within a dataset. IDs are dense, starting at 0,
// which lets per-entity state live in slices instead of maps.
type ID int32

// Entity is a single record of a dataset. Attrs is indexed by the
// dataset Schema's attribute positions.
type Entity struct {
	ID    ID
	Attrs []string
}

// Attr returns the value of attribute i, or "" if the entity has no
// value at that position (ragged records are tolerated).
func (e *Entity) Attr(i int) string {
	if i < 0 || i >= len(e.Attrs) {
		return ""
	}
	return e.Attrs[i]
}

// Clone returns a deep copy of the entity.
func (e *Entity) Clone() *Entity {
	attrs := make([]string, len(e.Attrs))
	copy(attrs, e.Attrs)
	return &Entity{ID: e.ID, Attrs: attrs}
}

// String renders the entity compactly for logs and error messages.
func (e *Entity) String() string {
	return fmt.Sprintf("e%d{%s}", e.ID, strings.Join(e.Attrs, "|"))
}

// Schema names the attributes of a dataset, in positional order.
type Schema struct {
	Attributes []string
	index      map[string]int
}

// NewSchema builds a Schema from attribute names. Names must be unique.
func NewSchema(attrs ...string) (*Schema, error) {
	s := &Schema{Attributes: attrs, index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("entity: duplicate attribute %q in schema", a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for package-level
// schema literals in tests and generators.
func MustSchema(attrs ...string) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.Attributes) }

// Dataset is an in-memory collection of entities plus its schema.
// Entities are stored in ID order: Entities[i].ID == ID(i).
type Dataset struct {
	Schema   *Schema
	Entities []*Entity
}

// NewDataset creates an empty dataset with the given schema.
func NewDataset(schema *Schema) *Dataset {
	return &Dataset{Schema: schema}
}

// Append adds a record, assigning the next dense ID, and returns the
// new entity.
func (d *Dataset) Append(attrs ...string) *Entity {
	e := &Entity{ID: ID(len(d.Entities)), Attrs: attrs}
	d.Entities = append(d.Entities, e)
	return e
}

// Len returns the number of entities.
func (d *Dataset) Len() int { return len(d.Entities) }

// Get returns the entity with the given ID, or nil if out of range.
func (d *Dataset) Get(id ID) *Entity {
	if int(id) < 0 || int(id) >= len(d.Entities) {
		return nil
	}
	return d.Entities[id]
}

// Validate checks the dense-ID invariant and per-record arity.
func (d *Dataset) Validate() error {
	n := d.Schema.Len()
	for i, e := range d.Entities {
		if e == nil {
			return fmt.Errorf("entity: nil entity at position %d", i)
		}
		if int(e.ID) != i {
			return fmt.Errorf("entity: entity at position %d has ID %d (want dense IDs)", i, e.ID)
		}
		if len(e.Attrs) > n {
			return fmt.Errorf("entity: e%d has %d attributes, schema has %d", e.ID, len(e.Attrs), n)
		}
	}
	return nil
}

// Pair identifies an unordered pair of entities. Construct with
// MakePair so that Lo < Hi always holds; that canonical form makes Pair
// usable directly as a map/set key.
type Pair struct {
	Lo, Hi ID
}

// MakePair returns the canonical (Lo < Hi) pair for a and b.
// a and b must differ.
func MakePair(a, b ID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{Lo: a, Hi: b}
}

// String renders the pair as <eLo,eHi>.
func (p Pair) String() string { return fmt.Sprintf("<e%d,e%d>", p.Lo, p.Hi) }

// PairSet is a set of canonical pairs.
type PairSet map[Pair]struct{}

// Add inserts p and reports whether it was newly added.
func (s PairSet) Add(p Pair) bool {
	if _, ok := s[p]; ok {
		return false
	}
	s[p] = struct{}{}
	return true
}

// Has reports membership.
func (s PairSet) Has(p Pair) bool { _, ok := s[p]; return ok }

// Sorted returns the pairs in (Lo, Hi) order, for deterministic output.
func (s PairSet) Sorted() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		return out[i].Hi < out[j].Hi
	})
	return out
}

// Pairs returns n·(n−1)/2: the number of unordered pairs among n
// entities. This is the Pairs(.) function used throughout the paper.
func Pairs(n int) int64 {
	if n < 2 {
		return 0
	}
	return int64(n) * int64(n-1) / 2
}
