package entity

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// This file implements the serialization formats used by the pipeline:
//
//   - a compact length-prefixed binary codec used for MapReduce shuffle
//     values (EncodeBinary / DecodeBinary), and
//   - a tab-separated text format for datasets on disk (WriteTSV /
//     ReadTSV), with a header line naming the schema.

// EncodeBinary appends the binary encoding of e to dst and returns the
// extended slice. Layout: varint ID, varint attr count, then per
// attribute varint length + bytes.
func EncodeBinary(dst []byte, e *Entity) []byte {
	dst = binary.AppendUvarint(dst, uint64(e.ID))
	dst = binary.AppendUvarint(dst, uint64(len(e.Attrs)))
	for _, a := range e.Attrs {
		dst = binary.AppendUvarint(dst, uint64(len(a)))
		dst = append(dst, a...)
	}
	return dst
}

// DecodeBinary decodes one entity from src, returning the entity and
// the number of bytes consumed.
func DecodeBinary(src []byte) (*Entity, int, error) {
	off := 0
	id, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("entity: truncated binary entity (id)")
	}
	off += n
	cnt, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("entity: truncated binary entity (attr count)")
	}
	off += n
	if cnt > uint64(len(src)) { // cheap sanity bound: each attr needs ≥1 byte of header
		return nil, 0, fmt.Errorf("entity: corrupt attr count %d", cnt)
	}
	attrs := make([]string, cnt)
	for i := range attrs {
		l, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("entity: truncated binary entity (attr %d len)", i)
		}
		off += n
		if uint64(off)+l > uint64(len(src)) {
			return nil, 0, fmt.Errorf("entity: truncated binary entity (attr %d body)", i)
		}
		attrs[i] = string(src[off : off+int(l)])
		off += int(l)
	}
	return &Entity{ID: ID(id), Attrs: attrs}, off, nil
}

// WriteTSV writes the dataset as tab-separated text: a header line
// "#id<TAB>attr1<TAB>attr2..." followed by one line per entity.
// Tab and newline characters inside values are escaped as \t, \n, \\.
func WriteTSV(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#id\t%s\n", strings.Join(d.Schema.Attributes, "\t")); err != nil {
		return err
	}
	for _, e := range d.Entities {
		if _, err := fmt.Fprintf(bw, "%d", e.ID); err != nil {
			return err
		}
		for i := 0; i < d.Schema.Len(); i++ {
			if _, err := bw.WriteString("\t"); err != nil {
				return err
			}
			if _, err := bw.WriteString(escapeTSV(e.Attr(i))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses a dataset written by WriteTSV. IDs in the file are
// ignored; dense IDs are reassigned in line order (the pipeline
// requires dense IDs, and line order is the canonical order).
func ReadTSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("entity: empty TSV input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "#id\t") {
		return nil, fmt.Errorf("entity: TSV header must start with %q, got %q", "#id\t", firstN(header, 32))
	}
	attrNames := strings.Split(header[len("#id\t"):], "\t")
	schema, err := NewSchema(attrNames...)
	if err != nil {
		return nil, err
	}
	d := NewDataset(schema)
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != schema.Len()+1 {
			return nil, fmt.Errorf("entity: line %d has %d fields, want %d", line, len(fields), schema.Len()+1)
		}
		attrs := make([]string, schema.Len())
		for i := range attrs {
			attrs[i] = unescapeTSV(fields[i+1])
		}
		d.Append(attrs...)
	}
	return d, sc.Err()
}

func escapeTSV(s string) string {
	if !strings.ContainsAny(s, "\t\n\\") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\t':
			b.WriteString(`\t`)
		case '\n':
			b.WriteString(`\n`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func unescapeTSV(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	esc := false
	for _, r := range s {
		if esc {
			switch r {
			case 't':
				b.WriteRune('\t')
			case 'n':
				b.WriteRune('\n')
			case '\\':
				b.WriteRune('\\')
			default:
				b.WriteRune('\\')
				b.WriteRune(r)
			}
			esc = false
			continue
		}
		if r == '\\' {
			esc = true
			continue
		}
		b.WriteRune(r)
	}
	if esc {
		b.WriteRune('\\')
	}
	return b.String()
}

func firstN(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// EncodePair appends the binary encoding of a pair to dst.
func EncodePair(dst []byte, p Pair) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.Lo))
	dst = binary.AppendUvarint(dst, uint64(p.Hi))
	return dst
}

// DecodePair decodes a pair and returns bytes consumed.
func DecodePair(src []byte) (Pair, int, error) {
	lo, n := binary.Uvarint(src)
	if n <= 0 {
		return Pair{}, 0, fmt.Errorf("entity: truncated pair (lo)")
	}
	hi, m := binary.Uvarint(src[n:])
	if m <= 0 {
		return Pair{}, 0, fmt.Errorf("entity: truncated pair (hi)")
	}
	return Pair{Lo: ID(lo), Hi: ID(hi)}, n + m, nil
}

// Equal reports deep equality of two entities.
func Equal(a, b *Entity) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.ID != b.ID || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	return true
}
