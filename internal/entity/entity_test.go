package entity

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema("name", "state")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.Index("state"); got != 1 {
		t.Errorf("Index(state) = %d, want 1", got)
	}
	if got := s.Index("missing"); got != -1 {
		t.Errorf("Index(missing) = %d, want -1", got)
	}
}

func TestNewSchemaDuplicate(t *testing.T) {
	if _, err := NewSchema("a", "b", "a"); err == nil {
		t.Fatal("NewSchema with duplicate attribute: want error, got nil")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema with duplicates should panic")
		}
	}()
	MustSchema("x", "x")
}

func TestDatasetAppendAndGet(t *testing.T) {
	d := NewDataset(MustSchema("name"))
	e0 := d.Append("alice")
	e1 := d.Append("bob")
	if e0.ID != 0 || e1.ID != 1 {
		t.Fatalf("IDs = %d,%d; want 0,1", e0.ID, e1.ID)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if got := d.Get(1); got.Attr(0) != "bob" {
		t.Errorf("Get(1).Attr(0) = %q, want bob", got.Attr(0))
	}
	if d.Get(-1) != nil || d.Get(2) != nil {
		t.Error("Get out of range should return nil")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDatasetValidateCatchesSparseIDs(t *testing.T) {
	d := NewDataset(MustSchema("name"))
	d.Entities = append(d.Entities, &Entity{ID: 5, Attrs: []string{"x"}})
	if err := d.Validate(); err == nil {
		t.Fatal("Validate should reject non-dense IDs")
	}
}

func TestEntityAttrOutOfRange(t *testing.T) {
	e := &Entity{ID: 0, Attrs: []string{"a"}}
	if e.Attr(3) != "" {
		t.Error("Attr out of range should be empty")
	}
	if e.Attr(-1) != "" {
		t.Error("Attr(-1) should be empty")
	}
}

func TestEntityClone(t *testing.T) {
	e := &Entity{ID: 7, Attrs: []string{"a", "b"}}
	c := e.Clone()
	c.Attrs[0] = "z"
	if e.Attrs[0] != "a" {
		t.Error("Clone must not share attr storage")
	}
	if c.ID != 7 {
		t.Errorf("Clone ID = %d, want 7", c.ID)
	}
}

func TestMakePairCanonical(t *testing.T) {
	p := MakePair(9, 3)
	if p.Lo != 3 || p.Hi != 9 {
		t.Fatalf("MakePair(9,3) = %v, want <e3,e9>", p)
	}
	if MakePair(3, 9) != p {
		t.Error("MakePair must be symmetric")
	}
}

func TestMakePairSymmetryProperty(t *testing.T) {
	f := func(a, b int32) bool {
		if a == b {
			return true
		}
		return MakePair(ID(a), ID(b)) == MakePair(ID(b), ID(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairSet(t *testing.T) {
	s := PairSet{}
	if !s.Add(MakePair(1, 2)) {
		t.Error("first Add should report true")
	}
	if s.Add(MakePair(2, 1)) {
		t.Error("Add of same unordered pair should report false")
	}
	if !s.Has(MakePair(1, 2)) {
		t.Error("Has should find the pair")
	}
	s.Add(MakePair(0, 5))
	s.Add(MakePair(0, 3))
	sorted := s.Sorted()
	if len(sorted) != 3 {
		t.Fatalf("len = %d, want 3", len(sorted))
	}
	if sorted[0] != MakePair(0, 3) || sorted[1] != MakePair(0, 5) {
		t.Errorf("Sorted order wrong: %v", sorted)
	}
}

func TestPairs(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{{0, 0}, {1, 0}, {2, 1}, {3, 3}, {4, 6}, {10, 45}, {30, 435}, {100000, 4999950000}}
	for _, c := range cases {
		if got := Pairs(c.n); got != c.want {
			t.Errorf("Pairs(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	e := &Entity{ID: 42, Attrs: []string{"John Lopez", "", "HI", "with\ttab and\nnewline"}}
	buf := EncodeBinary(nil, e)
	got, n, err := DecodeBinary(buf)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d bytes, want %d", n, len(buf))
	}
	if !Equal(e, got) {
		t.Errorf("round trip mismatch: %v vs %v", e, got)
	}
}

func TestBinaryCodecConcatenated(t *testing.T) {
	var buf []byte
	want := []*Entity{
		{ID: 0, Attrs: []string{"a"}},
		{ID: 1, Attrs: []string{"bb", "cc"}},
		{ID: 2, Attrs: nil},
	}
	for _, e := range want {
		buf = EncodeBinary(buf, e)
	}
	off := 0
	for i, w := range want {
		e, n, err := DecodeBinary(buf[off:])
		if err != nil {
			t.Fatalf("entity %d: %v", i, err)
		}
		if len(w.Attrs) == 0 {
			if e.ID != w.ID || len(e.Attrs) != 0 {
				t.Errorf("entity %d mismatch: %v", i, e)
			}
		} else if !Equal(w, e) {
			t.Errorf("entity %d mismatch: %v vs %v", i, w, e)
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestBinaryCodecTruncated(t *testing.T) {
	e := &Entity{ID: 3, Attrs: []string{"hello", "world"}}
	buf := EncodeBinary(nil, e)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeBinary(buf[:cut]); err == nil {
			// A prefix may decode successfully only if it happens to
			// contain a full record, which cannot happen here because
			// the encoding is a single record.
			t.Errorf("DecodeBinary of %d-byte prefix: want error", cut)
		}
	}
}

func TestBinaryCodecQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(id int32, a, b, c string) bool {
		e := &Entity{ID: ID(id), Attrs: []string{a, b, c}}
		got, n, err := DecodeBinary(EncodeBinary(nil, e))
		return err == nil && n > 0 && Equal(e, got)
	}
	cfg := &quick.Config{Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	d := NewDataset(MustSchema("name", "state"))
	d.Append("John Lopez", "HI")
	d.Append("tabby\tcat", "line\nbreak")
	d.Append("back\\slash", "")
	var buf bytes.Buffer
	if err := WriteTSV(&buf, d); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), d.Len())
	}
	for i := range d.Entities {
		if !Equal(d.Entities[i], got.Entities[i]) {
			t.Errorf("entity %d: %v vs %v", i, d.Entities[i], got.Entities[i])
		}
	}
	if got.Schema.Index("state") != 1 {
		t.Error("schema lost in round trip")
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("")); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := ReadTSV(strings.NewReader("no header\n")); err == nil {
		t.Error("bad header: want error")
	}
	if _, err := ReadTSV(strings.NewReader("#id\ta\tb\n0\tonly-one-field\n")); err == nil {
		t.Error("wrong arity: want error")
	}
}

func TestPairCodec(t *testing.T) {
	p := MakePair(100, 2000000)
	buf := EncodePair(nil, p)
	got, n, err := DecodePair(buf)
	if err != nil || n != len(buf) || got != p {
		t.Fatalf("DecodePair = %v,%d,%v; want %v,%d,nil", got, n, err, p, len(buf))
	}
	if _, _, err := DecodePair(nil); err == nil {
		t.Error("DecodePair(nil): want error")
	}
}

func TestEscapeTSVIdempotentOnPlain(t *testing.T) {
	f := func(s string) bool {
		clean := strings.Map(func(r rune) rune {
			if r == '\t' || r == '\n' || r == '\\' {
				return 'x'
			}
			return r
		}, s)
		return escapeTSV(clean) == clean && unescapeTSV(clean) == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEscapeUnescapeRoundTrip(t *testing.T) {
	f := func(s string) bool { return unescapeTSV(escapeTSV(s)) == s }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
