// Package match implements the resolve/match function: the
// compute-intensive decision of whether two entities co-refer.
//
// Following §VI-A2 of the paper, a Matcher applies a similarity
// function to each configured attribute and declares a pair duplicate
// when the weighted sum of the attribute similarities reaches a
// threshold. The Matcher also counts invocations so experiments can
// report comparison totals.
package match

import (
	"fmt"
	"math"
	"sync/atomic"

	"proger/internal/entity"
	"proger/internal/textsim"
)

// SimKind selects the similarity function applied to an attribute.
type SimKind int

const (
	// EditDistance is normalized Levenshtein similarity (§VI-A2,
	// "we measured the similarity ... using edit distance").
	EditDistance SimKind = iota
	// ExactMatch is 1 iff the values are equal (used for several
	// OL-Books attributes).
	ExactMatch
	// JaroWinklerSim is Jaro-Winkler similarity, offered as an
	// alternative for name-like attributes.
	JaroWinklerSim
	// JaccardQ2 is Jaccard similarity over 2-grams, robust to token
	// reordering.
	JaccardQ2
	// TokenCosine is cosine similarity over whitespace-token frequency
	// vectors — order-insensitive, suited to author lists and titles
	// with swapped words.
	TokenCosine
)

// String implements fmt.Stringer for diagnostics.
func (k SimKind) String() string {
	switch k {
	case EditDistance:
		return "edit"
	case ExactMatch:
		return "exact"
	case JaroWinklerSim:
		return "jaro-winkler"
	case JaccardQ2:
		return "jaccard-q2"
	case TokenCosine:
		return "token-cosine"
	default:
		return fmt.Sprintf("SimKind(%d)", int(k))
	}
}

// Rule scores one attribute.
type Rule struct {
	// Attr is the attribute index in the dataset schema.
	Attr int
	// Weight is the rule's share of the weighted sum. Weights should
	// sum to 1 across the Matcher's rules (Normalize enforces this).
	Weight float64
	// Kind selects the similarity function.
	Kind SimKind
	// MaxChars, when > 0, truncates both values before comparison.
	// The paper compares only the first ≤350 characters of abstracts.
	MaxChars int
}

// Matcher is a weighted multi-attribute resolve function.
// It is safe for concurrent use.
type Matcher struct {
	Rules []Rule
	// Threshold on the weighted similarity sum, in [0,1].
	Threshold float64

	// suffixWeight[i] is the total weight of Rules[i:], precomputed by
	// New so the early-exit check in Score costs an index instead of a
	// per-call summation loop. Invariant: suffixWeight[0] == 1 (weights
	// are normalized at construction).
	suffixWeight []float64

	comparisons atomic.Int64
}

// New builds a Matcher after validating and normalizing the rules so
// their weights sum to 1.
func New(threshold float64, rules ...Rule) (*Matcher, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("match: threshold %v outside (0,1]", threshold)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("match: at least one rule required")
	}
	total := 0.0
	for i, r := range rules {
		if r.Weight <= 0 {
			return nil, fmt.Errorf("match: rule %d has non-positive weight %v", i, r.Weight)
		}
		if r.Attr < 0 {
			return nil, fmt.Errorf("match: rule %d has negative attribute index", i)
		}
		total += r.Weight
	}
	normalized := make([]Rule, len(rules))
	copy(normalized, rules)
	for i := range normalized {
		normalized[i].Weight /= total
	}
	// suffixWeight[i] = Σ weights of normalized[i:]; one extra slot so
	// Score can index past the last rule.
	suffix := make([]float64, len(normalized)+1)
	for i := len(normalized) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + normalized[i].Weight
	}
	if math.Abs(suffix[0]-1) > 1e-9 {
		return nil, fmt.Errorf("match: internal error: normalized weights sum to %v, want 1", suffix[0])
	}
	return &Matcher{Rules: normalized, Threshold: threshold, suffixWeight: suffix}, nil
}

// MustNew is New that panics on error, for configuration literals.
func MustNew(threshold float64, rules ...Rule) *Matcher {
	m, err := New(threshold, rules...)
	if err != nil {
		panic(err)
	}
	return m
}

// Score returns the weighted similarity of a and b in [0,1].
func (m *Matcher) Score(a, b *entity.Entity) float64 {
	suffix := m.suffixWeight
	if suffix == nil {
		// Matcher built without New (struct literal): fall back to
		// computing the suffix sums once here.
		suffix = make([]float64, len(m.Rules)+1)
		for i := len(m.Rules) - 1; i >= 0; i-- {
			suffix[i] = suffix[i+1] + m.Rules[i].Weight
		}
	}
	score := 0.0
	for i, r := range m.Rules {
		va, vb := a.Attr(r.Attr), b.Attr(r.Attr)
		if r.MaxChars > 0 {
			if len(va) > r.MaxChars {
				va = va[:r.MaxChars]
			}
			if len(vb) > r.MaxChars {
				vb = vb[:r.MaxChars]
			}
		}
		var sim float64
		switch r.Kind {
		case EditDistance:
			sim = textsim.Similarity(va, vb)
		case ExactMatch:
			sim = textsim.Exact(va, vb)
		case JaroWinklerSim:
			sim = textsim.JaroWinkler(va, vb)
		case JaccardQ2:
			sim = textsim.JaccardQGram(va, vb, 2)
		case TokenCosine:
			sim = textsim.TokenCosine(va, vb)
		}
		score += r.Weight * sim
		// Early exit: even a perfect score on the remaining rules
		// cannot reach the threshold.
		if score+suffix[i+1] < m.Threshold {
			return score // partial score; below threshold by construction
		}
	}
	return score
}

// Match applies the resolve function and reports whether the pair
// co-refers. Every call counts one comparison.
func (m *Matcher) Match(a, b *entity.Entity) bool {
	m.comparisons.Add(1)
	return m.Score(a, b) >= m.Threshold
}

// Comparisons returns the number of Match invocations so far.
func (m *Matcher) Comparisons() int64 { return m.comparisons.Load() }

// ResetComparisons zeroes the comparison counter (between experiments).
func (m *Matcher) ResetComparisons() { m.comparisons.Store(0) }
