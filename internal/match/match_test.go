package match

import (
	"testing"

	"proger/internal/entity"
)

func ent(attrs ...string) *entity.Entity { return &entity.Entity{ID: 0, Attrs: attrs} }

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Rule{Attr: 0, Weight: 1}); err == nil {
		t.Error("threshold 0: want error")
	}
	if _, err := New(1.5, Rule{Attr: 0, Weight: 1}); err == nil {
		t.Error("threshold >1: want error")
	}
	if _, err := New(0.8); err == nil {
		t.Error("no rules: want error")
	}
	if _, err := New(0.8, Rule{Attr: 0, Weight: -1}); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := New(0.8, Rule{Attr: -2, Weight: 1}); err == nil {
		t.Error("negative attr: want error")
	}
}

func TestWeightNormalization(t *testing.T) {
	m := MustNew(0.5,
		Rule{Attr: 0, Weight: 2, Kind: ExactMatch},
		Rule{Attr: 1, Weight: 2, Kind: ExactMatch},
	)
	sum := 0.0
	for _, r := range m.Rules {
		sum += r.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
}

func TestMatchExact(t *testing.T) {
	m := MustNew(0.99, Rule{Attr: 0, Weight: 1, Kind: ExactMatch})
	if !m.Match(ent("x"), ent("x")) {
		t.Error("identical should match")
	}
	if m.Match(ent("x"), ent("y")) {
		t.Error("different should not match")
	}
	if m.Comparisons() != 2 {
		t.Errorf("Comparisons = %d, want 2", m.Comparisons())
	}
	m.ResetComparisons()
	if m.Comparisons() != 0 {
		t.Error("ResetComparisons failed")
	}
}

func TestMatchWeightedSum(t *testing.T) {
	// Two attributes, equal weight; one identical, one completely
	// different → score 0.5.
	m := MustNew(0.6,
		Rule{Attr: 0, Weight: 1, Kind: EditDistance},
		Rule{Attr: 1, Weight: 1, Kind: EditDistance},
	)
	a := ent("same title", "aaaa")
	b := ent("same title", "zzzz")
	if got := m.Score(a, b); got > 0.51 {
		t.Errorf("Score = %v, want ≈0.5", got)
	}
	if m.Match(a, b) {
		t.Error("score 0.5 must not pass threshold 0.6")
	}
	m2 := MustNew(0.4,
		Rule{Attr: 0, Weight: 1, Kind: EditDistance},
		Rule{Attr: 1, Weight: 1, Kind: EditDistance},
	)
	if !m2.Match(a, b) {
		t.Error("score 0.5 should pass threshold 0.4")
	}
}

func TestMatchTypoTolerance(t *testing.T) {
	m := MustNew(0.85, Rule{Attr: 0, Weight: 1, Kind: EditDistance})
	if !m.Match(ent("Charles Andrews"), ent("Gharles Andrews")) {
		t.Error("single-typo names should match at 0.85")
	}
	if m.Match(ent("Mary Gibson"), ent("Chloe Matthew")) {
		t.Error("unrelated names should not match")
	}
}

func TestMaxCharsTruncation(t *testing.T) {
	m := MustNew(0.9, Rule{Attr: 0, Weight: 1, Kind: EditDistance, MaxChars: 4})
	// Values agree in the first 4 chars, differ wildly after.
	if !m.Match(ent("abcdXXXXXXXX"), ent("abcdYYYY")) {
		t.Error("truncated comparison should match on shared prefix")
	}
}

func TestScoreEarlyExit(t *testing.T) {
	// First rule scores 0 with weight 0.9 → remaining 0.1 cannot reach
	// threshold 0.5; Score returns early and must stay below threshold.
	m := MustNew(0.5,
		Rule{Attr: 0, Weight: 9, Kind: ExactMatch},
		Rule{Attr: 1, Weight: 1, Kind: ExactMatch},
	)
	got := m.Score(ent("a", "same"), ent("b", "same"))
	if got >= m.Threshold {
		t.Errorf("early-exit score %v ≥ threshold", got)
	}
}

func TestJaroAndJaccardKinds(t *testing.T) {
	mj := MustNew(0.9, Rule{Attr: 0, Weight: 1, Kind: JaroWinklerSim})
	if !mj.Match(ent("MARTHA"), ent("MARHTA")) {
		t.Error("Jaro-Winkler should match MARTHA/MARHTA at 0.9")
	}
	mq := MustNew(0.5, Rule{Attr: 0, Weight: 1, Kind: JaccardQ2})
	if !mq.Match(ent("entity resolution"), ent("entity resolution")) {
		t.Error("identical strings should match under Jaccard")
	}
	if mq.Match(ent("abcdef"), ent("uvwxyz")) {
		t.Error("disjoint strings should not match under Jaccard")
	}
}

func TestSimKindString(t *testing.T) {
	kinds := map[SimKind]string{
		EditDistance:   "edit",
		ExactMatch:     "exact",
		JaroWinklerSim: "jaro-winkler",
		JaccardQ2:      "jaccard-q2",
		SimKind(99):    "SimKind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestTokenCosineKind(t *testing.T) {
	m := MustNew(0.9, Rule{Attr: 0, Weight: 1, Kind: TokenCosine})
	if !m.Match(ent("john lopez"), ent("lopez john")) {
		t.Error("token cosine should match swapped words")
	}
	if m.Match(ent("alpha beta"), ent("gamma delta")) {
		t.Error("disjoint tokens should not match")
	}
	if TokenCosine.String() != "token-cosine" {
		t.Error("kind string")
	}
}

func TestSuffixWeightInvariant(t *testing.T) {
	m := MustNew(0.5,
		Rule{Attr: 0, Weight: 3, Kind: ExactMatch},
		Rule{Attr: 1, Weight: 2, Kind: ExactMatch},
		Rule{Attr: 2, Weight: 5, Kind: ExactMatch},
	)
	if len(m.suffixWeight) != len(m.Rules)+1 {
		t.Fatalf("suffixWeight has %d entries, want %d", len(m.suffixWeight), len(m.Rules)+1)
	}
	if s := m.suffixWeight[0]; s < 0.999999999 || s > 1.000000001 {
		t.Errorf("suffixWeight[0] = %v, want 1 (normalized)", s)
	}
	if m.suffixWeight[len(m.Rules)] != 0 {
		t.Errorf("suffixWeight[last] = %v, want 0", m.suffixWeight[len(m.Rules)])
	}
	for i, r := range m.Rules {
		got := m.suffixWeight[i] - m.suffixWeight[i+1]
		if got < r.Weight-1e-12 || got > r.Weight+1e-12 {
			t.Errorf("suffixWeight[%d]-suffixWeight[%d] = %v, want rule weight %v", i, i+1, got, r.Weight)
		}
	}
}

func TestScoreWithoutNewFallsBack(t *testing.T) {
	// A Matcher assembled by hand (no New, no suffix table) must still
	// score correctly via the fallback path.
	m := &Matcher{
		Threshold: 0.5,
		Rules: []Rule{
			{Attr: 0, Weight: 0.5, Kind: ExactMatch},
			{Attr: 1, Weight: 0.5, Kind: ExactMatch},
		},
	}
	if got := m.Score(ent("x", "y"), ent("x", "y")); got < 0.999 {
		t.Errorf("Score = %v, want 1", got)
	}
}

func TestScoreEarlyExitStillBelowThreshold(t *testing.T) {
	// First rule mismatch on a 0.9-threshold two-rule matcher: early
	// exit must return a partial score strictly below the threshold.
	m := MustNew(0.9,
		Rule{Attr: 0, Weight: 0.5, Kind: ExactMatch},
		Rule{Attr: 1, Weight: 0.5, Kind: ExactMatch},
	)
	if got := m.Score(ent("x", "same"), ent("y", "same")); got >= m.Threshold {
		t.Errorf("early-exit score %v not below threshold", got)
	}
}
