package mechanism

import "proger/internal/entity"

// PSNM is the Progressive Sorted Neighborhood Method of Papenbrock,
// Heise & Naumann [6]. Like SN it sorts the block and favors small rank
// distances, but it additionally *adapts*: whenever the pair (i, i+d)
// turns out to be a duplicate, the neighborhood around position i is
// promising, so the pair (i, i+d+1) is promoted ahead of the systematic
// sweep. This "expand around hits" strategy front-loads duplicates in
// clustered regions of the sort order, which is where PSNM beats plain
// SN on skewed data.
type PSNM struct{}

// Name implements Mechanism.
func (PSNM) Name() string { return "PSNM" }

// ResolveBlock implements Mechanism.
func (PSNM) ResolveBlock(env *Env, ents []*entity.Entity, window int) VisitStats {
	var st VisitStats
	n := len(ents)
	if n < 2 {
		return st
	}
	sorted := env.sortEntities(ents)
	if window < 2 {
		window = 2
	}
	maxD := window - 1
	if maxD > n-1 {
		maxD = n - 1
	}

	type cand struct{ i, d int }
	visited := make(map[cand]bool)
	// hot holds promoted candidates (LIFO: most recent hit expands
	// first); the systematic sweep fills in everything else.
	var hot []cand

	process := func(c cand) (keep bool) {
		if c.d > maxD || c.i+c.d >= n || visited[c] {
			return true
		}
		visited[c] = true
		a, b := sorted[c.i], sorted[c.i+c.d]
		p := entity.MakePair(a.ID, b.ID)
		switch env.decide(p) {
		case SkipResolved, SkipNotResponsible:
			env.Charge(env.Cost.SkipPair)
			st.Skipped++
			// A skipped pair may still mark a promising neighborhood if
			// it was resolved elsewhere, but we have no outcome to act
			// on; move on.
			return true
		}
		env.Charge(env.Cost.PairCompare)
		isDup := env.Match(a, b)
		st.Compared++
		if isDup {
			st.Dups++
			// Expand the hit's neighborhood in both directions.
			hot = append(hot, cand{i: c.i, d: c.d + 1})
			if c.i > 0 {
				hot = append(hot, cand{i: c.i - 1, d: c.d + 1})
			}
		} else {
			st.Distinct++
		}
		if env.Observer != nil {
			env.Observer(isDup)
		}
		env.Emit(p, isDup)
		return !env.stop(&st)
	}

	for d := 1; d <= maxD; d++ {
		for i := 0; i+d < n; i++ {
			// Drain promoted candidates before each systematic step.
			for len(hot) > 0 {
				c := hot[len(hot)-1]
				hot = hot[:len(hot)-1]
				if !process(c) {
					return st
				}
			}
			if !process(cand{i: i, d: d}) {
				return st
			}
		}
	}
	return st
}
