package mechanism

import "proger/internal/entity"

// RSwoosh is the R-Swoosh algorithm of Benjelloun et al. [1] ("Swoosh:
// a generic approach to entity resolution") adapted to the mechanism
// interface: records are consumed one at a time and compared against
// the set of already-merged profiles; on a match the profiles merge
// (attribute-wise, keeping the longest value as the representative) and
// matching continues with the merged record. Unlike SN/PSNM it is a
// *traditional* algorithm — exhaustive, oblivious to any ordering hint,
// and insensitive to the window parameter — which makes it the natural
// plug-in when the pipeline must guarantee within-block completeness,
// and a reference point for how much the progressive hints actually
// buy.
type RSwoosh struct{}

// Name implements Mechanism.
func (RSwoosh) Name() string { return "R-Swoosh" }

// profile is a merged record: the representative attribute values plus
// the constituent entity IDs.
type profile struct {
	rep     *entity.Entity
	members []entity.ID
}

// mergeInto folds e into p, keeping the longest value per attribute
// (Swoosh's merge domination idea in its simplest useful form).
func (p *profile) mergeInto(e *entity.Entity) {
	for i, v := range e.Attrs {
		if i >= len(p.rep.Attrs) {
			p.rep.Attrs = append(p.rep.Attrs, v)
			continue
		}
		if len(v) > len(p.rep.Attrs[i]) {
			p.rep.Attrs[i] = v
		}
	}
	p.members = append(p.members, e.ID)
}

// ResolveBlock implements Mechanism. The window parameter is ignored —
// R-Swoosh is exhaustive by design.
func (RSwoosh) ResolveBlock(env *Env, ents []*entity.Entity, window int) VisitStats {
	var st VisitStats
	if len(ents) < 2 {
		return st
	}
	// Reading the block (no sorting hint needed).
	env.Charge(env.Cost.ReadRecord * float64(len(ents)))

	var merged []*profile
	for _, e := range ents {
		matchedIdx := -1
		for i, p := range merged {
			env.Charge(env.Cost.PairCompare)
			isDup := env.Match(p.rep, e)
			st.Compared++
			if isDup {
				st.Dups++
			} else {
				st.Distinct++
			}
			if env.Observer != nil {
				env.Observer(isDup)
			}
			if isDup {
				matchedIdx = i
				break
			}
			if env.stop(&st) {
				return st
			}
		}
		if matchedIdx < 0 {
			merged = append(merged, &profile{
				rep:     e.Clone(),
				members: []entity.ID{e.ID},
			})
			continue
		}
		// Emit the co-reference pairs implied by the profile match,
		// honoring the environment's ownership decisions. The pairs
		// beyond the first are bookkeeping, priced as skips.
		p := merged[matchedIdx]
		for i, m := range p.members {
			pair := entity.MakePair(m, e.ID)
			if i > 0 {
				env.Charge(env.Cost.SkipPair)
			}
			switch env.decide(pair) {
			case SkipResolved, SkipNotResponsible:
				st.Skipped++
				continue
			}
			env.Emit(pair, true)
		}
		p.mergeInto(e)
		if env.stop(&st) {
			return st
		}
	}
	return st
}
