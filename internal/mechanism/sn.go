package mechanism

import "proger/internal/entity"

// SN is the Sorted Neighbor algorithm with the hint of Whang et al. [5]
// (§II-B): sort the block's entities on the blocking attribute, then
// resolve pairs in non-decreasing order of rank distance — all pairs at
// distance 1 first, then distance 2, and so on up to the window size w.
// The intuition: the closer two entities sit in the sorted list, the
// more likely they are duplicates, so small distances front-load the
// duplicate discoveries.
type SN struct{}

// Name implements Mechanism.
func (SN) Name() string { return "SN" }

// ResolveBlock implements Mechanism.
func (SN) ResolveBlock(env *Env, ents []*entity.Entity, window int) VisitStats {
	var st VisitStats
	n := len(ents)
	if n < 2 {
		return st
	}
	sorted := env.sortEntities(ents)
	if window < 2 {
		window = 2
	}
	for d := 1; d < window && d < n; d++ {
		for i := 0; i+d < n; i++ {
			if !env.resolvePair(sorted[i], sorted[i+d], &st) {
				return st
			}
		}
	}
	return st
}
