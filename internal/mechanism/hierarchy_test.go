package mechanism

import (
	"fmt"
	"testing"

	"proger/internal/entity"
)

func TestHierarchyCoversLeafPairs(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	st := Hierarchy{LeafSize: 4}.ResolveBlock(te.env, block("a", "b", "c", "d"), 10)
	// Block of 4 = one leaf: all 6 pairs.
	if st.Compared != 6 {
		t.Errorf("compared %d pairs, want 6", st.Compared)
	}
	seen := entity.PairSet{}
	for _, p := range te.pairs {
		if !seen.Add(p) {
			t.Errorf("pair %v compared twice", p)
		}
	}
}

func TestHierarchyNoDuplicateComparisons(t *testing.T) {
	labels := make([]string, 20)
	for i := range labels {
		labels[i] = fmt.Sprintf("%02d", i)
	}
	te := newTestEnv(entity.PairSet{})
	Hierarchy{LeafSize: 3}.ResolveBlock(te.env, block(labels...), 20)
	seen := entity.PairSet{}
	for _, p := range te.pairs {
		if !seen.Add(p) {
			t.Fatalf("pair %v compared twice", p)
		}
	}
	// Every within-window pair must be covered (window ≥ n → all pairs
	// except those pruned by the cross-partition window rule; with
	// window = n, all pairs must appear).
	if int64(len(te.pairs)) != entity.Pairs(20) {
		t.Errorf("covered %d pairs, want %d", len(te.pairs), entity.Pairs(20))
	}
}

func TestHierarchyWindowLimitsCrossPairs(t *testing.T) {
	labels := make([]string, 16)
	for i := range labels {
		labels[i] = fmt.Sprintf("%02d", i)
	}
	te := newTestEnv(entity.PairSet{})
	Hierarchy{LeafSize: 2}.ResolveBlock(te.env, block(labels...), 3)
	for _, p := range te.pairs {
		// Leaf pairs have distance 1 (leaf size 2); cross pairs are
		// capped at distance < 3.
		if p.Hi-p.Lo > 2 {
			t.Errorf("pair %v exceeds window distance", p)
		}
	}
}

func TestHierarchyDeepestFirst(t *testing.T) {
	// With 8 entities and leaf size 2, the first comparisons must be
	// the leaf pairs (distance-1 within each leaf), before any
	// cross-partition pair.
	labels := make([]string, 8)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", i)
	}
	te := newTestEnv(entity.PairSet{})
	Hierarchy{LeafSize: 2}.ResolveBlock(te.env, block(labels...), 8)
	if len(te.pairs) < 4 {
		t.Fatalf("too few pairs: %v", te.pairs)
	}
	// First pair must come from the leftmost leaf.
	if te.pairs[0] != entity.MakePair(0, 1) {
		t.Errorf("first pair = %v, want <e0,e1>", te.pairs[0])
	}
	// The widest pair (0,7) — LCA at the root — must come last among
	// pairs involving e0 within the window.
	last := te.pairs[len(te.pairs)-1]
	if last.Hi-last.Lo <= 2 {
		t.Errorf("last pair %v should be a wide cross-root pair", last)
	}
}

func TestHierarchyStops(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	te.env.Stop = DistinctThreshold(5)
	labels := make([]string, 12)
	for i := range labels {
		labels[i] = fmt.Sprintf("%02d", i)
	}
	st := Hierarchy{}.ResolveBlock(te.env, block(labels...), 12)
	if st.Distinct != 5 {
		t.Errorf("stopped after %d distinct, want 5", st.Distinct)
	}
}

func TestHierarchyTinyBlocks(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	if st := (Hierarchy{}).ResolveBlock(te.env, nil, 5); st.Compared != 0 {
		t.Error("empty block")
	}
	if st := (Hierarchy{}).ResolveBlock(te.env, block("a"), 5); st.Compared != 0 {
		t.Error("singleton block")
	}
	if st := (Hierarchy{}).ResolveBlock(te.env, block("a", "b"), 0); st.Compared != 1 {
		t.Error("pair block with degenerate window")
	}
}

func TestHierarchyFindsDuplicates(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	dups.Add(entity.MakePair(5, 6))
	labels := make([]string, 10)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", i)
	}
	te := newTestEnv(dups)
	st := Hierarchy{LeafSize: 2}.ResolveBlock(te.env, block(labels...), 10)
	if st.Dups != 2 {
		t.Errorf("found %d dups, want 2", st.Dups)
	}
	if (Hierarchy{}).Name() != "HierarchyHint" {
		t.Error("name wrong")
	}
}
