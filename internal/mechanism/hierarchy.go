package mechanism

import "proger/internal/entity"

// Hierarchy is the hierarchical-partitioning hint of Whang et al. [5]
// used directly as a mechanism M, as §III-A notes is possible: the
// block's sorted order is recursively halved into a hierarchy of
// partitions, and pairs are resolved deepest-partition-first — all
// pairs inside each smallest partition, then the pairs whose lowest
// common ancestor is the next level up (crossing a midpoint), and so
// on. Like SN it front-loads sort-order-close pairs, but in chunked
// batches that respect partition locality.
type Hierarchy struct {
	// LeafSize is the partition size at which recursion stops and all
	// pairs are resolved exhaustively; defaults to 4.
	LeafSize int
}

// Name implements Mechanism.
func (Hierarchy) Name() string { return "HierarchyHint" }

// ResolveBlock implements Mechanism. The window caps the sorted-rank
// distance of cross-partition pairs, as in SN.
func (h Hierarchy) ResolveBlock(env *Env, ents []*entity.Entity, window int) VisitStats {
	var st VisitStats
	n := len(ents)
	if n < 2 {
		return st
	}
	leaf := h.LeafSize
	if leaf < 2 {
		leaf = 4
	}
	sorted := env.sortEntities(ents)
	if window < 2 {
		window = 2
	}
	h.resolveRange(env, sorted, 0, n, leaf, window, &st)
	return st
}

// resolveRange handles the partition [lo, hi): children first (deepest
// partitions), then the cross-midpoint pairs owned by this node.
// Returns false when the visit must terminate.
func (h Hierarchy) resolveRange(env *Env, sorted []*entity.Entity, lo, hi, leaf, window int, st *VisitStats) bool {
	size := hi - lo
	if size < 2 {
		return true
	}
	if size <= leaf {
		// Exhaustive leaf resolution, small distances first.
		for d := 1; d < size; d++ {
			for i := lo; i+d < hi; i++ {
				if !env.resolvePair(sorted[i], sorted[i+d], st) {
					return false
				}
			}
		}
		return true
	}
	mid := lo + size/2
	if !h.resolveRange(env, sorted, lo, mid, leaf, window, st) {
		return false
	}
	if !h.resolveRange(env, sorted, mid, hi, leaf, window, st) {
		return false
	}
	// Pairs whose LCA is this node: i < mid ≤ j, within the window,
	// in non-decreasing distance order.
	for d := 1; d < window; d++ {
		for i := lo; i < mid; i++ {
			j := i + d
			if j < mid || j >= hi {
				continue
			}
			if !env.resolvePair(sorted[i], sorted[j], st) {
				return false
			}
		}
	}
	return true
}
