// Package mechanism implements the pluggable progressive mechanisms M
// that resolve a single block (§II-B): the Sorted Neighbor algorithm
// with the hint of Whang et al. [5], and the Progressive Sorted
// Neighborhood Method (PSNM) of Papenbrock et al. [6] — plus the
// stopping conditions that drive them (the popcorn scheme of [5] and
// the distinct-pair termination threshold Th of §III-A).
//
// A mechanism is invoked on one block in isolation. All coupling to the
// surrounding reduce task — redundancy checks, already-resolved-pair
// skips, result emission, cost accounting — happens through the Env
// callbacks, which is what lets the same mechanism drive both the
// paper's approach and the Basic baseline.
package mechanism

import (
	"sort"
	"strings"

	"proger/internal/costmodel"
	"proger/internal/entity"
)

// Decision is the verdict of Env.Decide for a candidate pair.
type Decision int

const (
	// Resolve: apply the match function to this pair now.
	Resolve Decision = iota
	// SkipResolved: the pair was already resolved earlier in this tree
	// (incremental parent resolution, §III-A).
	SkipResolved
	// SkipNotResponsible: another tree is responsible for this pair
	// (redundancy-free resolution, §V).
	SkipNotResponsible
)

// VisitStats accumulates what happened during one mechanism invocation
// on one block.
type VisitStats struct {
	// Compared counts match-function applications in this visit.
	Compared int
	// Dups and Distinct partition Compared by outcome.
	Dups     int
	Distinct int
	// Skipped counts pairs skipped by Decide.
	Skipped int
}

// StopFunc is consulted after every resolved pair; returning true
// terminates the visit.
type StopFunc func(*VisitStats) bool

// NeverStop runs the mechanism to exhaustion (full resolve; also the
// Basic F configuration of §VI-B1).
func NeverStop(*VisitStats) bool { return false }

// DistinctThreshold returns the paper's Th(X) stopping condition: the
// visit terminates once th distinct (non-duplicate) pairs have been
// resolved (§III-A).
func DistinctThreshold(th int64) StopFunc {
	return func(st *VisitStats) bool { return int64(st.Distinct) >= th }
}

// Popcorn implements the popcorn scheme of [5]: terminate when the rate
// of newly identified duplicate pairs over the trailing Window
// comparisons drops below Threshold. The zero Window defaults to 200.
type Popcorn struct {
	Threshold float64
	Window    int

	outcomes []bool // ring buffer of recent outcomes
	pos      int
	filled   bool
	dups     int
}

// NewPopcorn builds a popcorn stopper with the default window.
func NewPopcorn(threshold float64) *Popcorn {
	return &Popcorn{Threshold: threshold, Window: 200}
}

// Stop implements StopFunc semantics; feed it after each resolution via
// Func().
func (p *Popcorn) Stop(st *VisitStats) bool {
	// The rate is maintained by Observe; Stop only applies the test
	// once a full window of evidence exists.
	if !p.filled {
		return false
	}
	rate := float64(p.dups) / float64(len(p.outcomes))
	return rate < p.Threshold
}

// Observe records one comparison outcome.
func (p *Popcorn) Observe(isDup bool) {
	if p.outcomes == nil {
		w := p.Window
		if w <= 0 {
			w = 200
		}
		p.outcomes = make([]bool, w)
	}
	if p.filled && p.outcomes[p.pos] {
		p.dups--
	}
	p.outcomes[p.pos] = isDup
	if isDup {
		p.dups++
	}
	p.pos++
	if p.pos == len(p.outcomes) {
		p.pos = 0
		p.filled = true
	}
}

// Func adapts the popcorn stopper to a StopFunc. The environment must
// also route outcomes to Observe (Env does this automatically when
// Observer is set).
func (p *Popcorn) Func() StopFunc { return p.Stop }

// Env couples a mechanism invocation to its surrounding reduce task.
type Env struct {
	// SortAttr is the attribute index used to sort the block's entities
	// (the paper sorts on the attribute the blocking was performed on,
	// §VI-A3).
	SortAttr int
	// Match applies the resolve function and reports co-reference.
	Match func(a, b *entity.Entity) bool
	// Decide rules on each candidate pair before resolution; nil means
	// always Resolve.
	Decide func(entity.Pair) Decision
	// Emit reports each resolved pair's outcome.
	Emit func(p entity.Pair, isDup bool)
	// Charge accounts simulated cost.
	Charge func(costmodel.Units)
	// Stop terminates the visit; nil means NeverStop.
	Stop StopFunc
	// Observer, when non-nil, receives every resolution outcome
	// (the popcorn scheme's evidence stream).
	Observer func(isDup bool)
	// Cost is the cost model for pricing sort/compare/skip operations.
	Cost costmodel.Model
}

func (env *Env) decide(p entity.Pair) Decision {
	if env.Decide == nil {
		return Resolve
	}
	return env.Decide(p)
}

func (env *Env) stop(st *VisitStats) bool {
	if env.Stop == nil {
		return false
	}
	return env.Stop(st)
}

// resolvePair runs the match function on one candidate pair, doing all
// bookkeeping. It returns false when the visit must terminate.
func (env *Env) resolvePair(a, b *entity.Entity, st *VisitStats) bool {
	p := entity.MakePair(a.ID, b.ID)
	switch env.decide(p) {
	case SkipResolved, SkipNotResponsible:
		env.Charge(env.Cost.SkipPair)
		st.Skipped++
		return true
	}
	env.Charge(env.Cost.PairCompare)
	isDup := env.Match(a, b)
	st.Compared++
	if isDup {
		st.Dups++
	} else {
		st.Distinct++
	}
	if env.Observer != nil {
		env.Observer(isDup)
	}
	env.Emit(p, isDup)
	return !env.stop(st)
}

// sortEntities orders the block's entities by the sort attribute
// (ties broken by ID for determinism) and charges the hint cost.
func (env *Env) sortEntities(ents []*entity.Entity) []*entity.Entity {
	sorted := make([]*entity.Entity, len(ents))
	copy(sorted, ents)
	env.Charge(env.Cost.HintCost(len(sorted)))
	sort.Slice(sorted, func(i, j int) bool {
		a := strings.ToLower(sorted[i].Attr(env.SortAttr))
		b := strings.ToLower(sorted[j].Attr(env.SortAttr))
		if a != b {
			return a < b
		}
		return sorted[i].ID < sorted[j].ID
	})
	return sorted
}

// Mechanism resolves one block progressively: it must identify
// duplicate pairs as early as possible within its pair-generation
// budget (the window), honoring Env's decisions and stop condition.
type Mechanism interface {
	// Name identifies the mechanism in configs and reports.
	Name() string
	// ResolveBlock processes the block's entities with the given window
	// parameter and returns the visit statistics.
	ResolveBlock(env *Env, ents []*entity.Entity, window int) VisitStats
}
