package mechanism

import (
	"testing"

	"proger/internal/entity"
)

func TestRSwooshMergesDuplicateChain(t *testing.T) {
	// e0=e1=e2 duplicates, e3 distinct.
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	dups.Add(entity.MakePair(0, 2))
	dups.Add(entity.MakePair(1, 2))
	te := newTestEnv(dups)
	st := RSwoosh{}.ResolveBlock(te.env, block("a", "b", "c", "d"), 0)
	// All three true pairs must be emitted.
	want := []entity.Pair{entity.MakePair(0, 1), entity.MakePair(0, 2), entity.MakePair(1, 2)}
	emitted := entity.PairSet{}
	for _, p := range te.pairs {
		emitted.Add(p)
	}
	for _, p := range want {
		if !emitted.Has(p) {
			t.Errorf("missing pair %v; emitted %v", p, te.pairs)
		}
	}
	if len(te.pairs) != 3 {
		t.Errorf("emitted %d pairs, want 3", len(te.pairs))
	}
	// Merging saves comparisons: pairwise would need 6; R-Swoosh needs
	// fewer because e2 matches the merged {e0,e1} profile once.
	if st.Compared >= 6 {
		t.Errorf("compared %d, want < 6 (merging should save work)", st.Compared)
	}
}

func TestRSwooshOracleAgainstMergedProfile(t *testing.T) {
	// The oracle matcher keys on IDs, but R-Swoosh compares against the
	// merged representative whose ID is the first constituent's — so a
	// dup of e1 (but not of e0) still matches through the {e0,e1}
	// profile only if it matches e0's ID. Use an attribute-based
	// matcher instead to exercise representative merging.
	ents := []*entity.Entity{
		{ID: 0, Attrs: []string{"alpha"}},
		{ID: 1, Attrs: []string{"alphaX"}}, // longer: becomes representative
		{ID: 2, Attrs: []string{"alphaX"}},
		{ID: 3, Attrs: []string{"omega"}},
	}
	te := newTestEnv(nil)
	te.env.Match = func(a, b *entity.Entity) bool { return a.Attr(0) == b.Attr(0) }
	RSwoosh{}.ResolveBlock(te.env, ents, 0)
	// e1 ≠ "alpha" → e1 starts its own profile; e2 matches e1's profile.
	emitted := entity.PairSet{}
	for _, p := range te.pairs {
		emitted.Add(p)
	}
	if !emitted.Has(entity.MakePair(1, 2)) {
		t.Errorf("pair <e1,e2> missing: %v", te.pairs)
	}
}

func TestRSwooshRepresentativeKeepsLongest(t *testing.T) {
	p := &profile{rep: (&entity.Entity{ID: 0, Attrs: []string{"ab", "xyz"}}).Clone(), members: []entity.ID{0}}
	p.mergeInto(&entity.Entity{ID: 1, Attrs: []string{"abcd", "x"}})
	if p.rep.Attr(0) != "abcd" || p.rep.Attr(1) != "xyz" {
		t.Errorf("representative = %v", p.rep.Attrs)
	}
	if len(p.members) != 2 {
		t.Errorf("members = %v", p.members)
	}
	// Ragged records extend the representative.
	p.mergeInto(&entity.Entity{ID: 2, Attrs: []string{"a", "b", "extra"}})
	if p.rep.Attr(2) != "extra" {
		t.Errorf("ragged merge: %v", p.rep.Attrs)
	}
}

func TestRSwooshRespectsDecide(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	te := newTestEnv(dups)
	te.env.Decide = func(entity.Pair) Decision { return SkipNotResponsible }
	st := RSwoosh{}.ResolveBlock(te.env, block("a", "b"), 0)
	if len(te.pairs) != 0 {
		t.Errorf("pairs emitted despite SkipNotResponsible: %v", te.pairs)
	}
	if st.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", st.Skipped)
	}
}

func TestRSwooshStops(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	te.env.Stop = DistinctThreshold(2)
	st := RSwoosh{}.ResolveBlock(te.env, block("a", "b", "c", "d", "e"), 0)
	if st.Distinct != 2 {
		t.Errorf("stopped after %d distinct, want 2", st.Distinct)
	}
}

func TestRSwooshTinyBlocks(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	if st := (RSwoosh{}).ResolveBlock(te.env, nil, 0); st.Compared != 0 {
		t.Error("empty block")
	}
	if st := (RSwoosh{}).ResolveBlock(te.env, block("a"), 0); st.Compared != 0 {
		t.Error("singleton block")
	}
	if (RSwoosh{}).Name() != "R-Swoosh" {
		t.Error("name")
	}
}
