package mechanism

import (
	"fmt"
	"reflect"
	"testing"

	"proger/internal/costmodel"
	"proger/internal/entity"
)

// testEnv builds an Env with an oracle matcher (dups decides truth) and
// records emissions and charges.
type testEnv struct {
	env     *Env
	emitted []string // "lo-hi:dup" strings in emission order
	pairs   []entity.Pair
	charged costmodel.Units
}

func newTestEnv(dups entity.PairSet) *testEnv {
	te := &testEnv{}
	te.env = &Env{
		SortAttr: 0,
		Match: func(a, b *entity.Entity) bool {
			return dups.Has(entity.MakePair(a.ID, b.ID))
		},
		Emit: func(p entity.Pair, isDup bool) {
			te.emitted = append(te.emitted, fmt.Sprintf("%d-%d:%v", p.Lo, p.Hi, isDup))
			te.pairs = append(te.pairs, p)
		},
		Charge: func(u costmodel.Units) { te.charged += u },
		Cost:   costmodel.Default(),
	}
	return te
}

// block builds entities whose sort attribute equals their label, so the
// sorted order is the label order.
func block(labels ...string) []*entity.Entity {
	ents := make([]*entity.Entity, len(labels))
	for i, l := range labels {
		ents[i] = &entity.Entity{ID: entity.ID(i), Attrs: []string{l}}
	}
	return ents
}

func TestSNDistanceOrder(t *testing.T) {
	// Labels already sorted; entities are e0<e1<e2<e3 in sort order.
	te := newTestEnv(entity.PairSet{})
	st := SN{}.ResolveBlock(te.env, block("a", "b", "c", "d"), 10)
	want := []entity.Pair{
		entity.MakePair(0, 1), entity.MakePair(1, 2), entity.MakePair(2, 3), // d=1
		entity.MakePair(0, 2), entity.MakePair(1, 3), // d=2
		entity.MakePair(0, 3), // d=3
	}
	if !reflect.DeepEqual(te.pairs, want) {
		t.Errorf("pair order = %v, want %v", te.pairs, want)
	}
	if st.Compared != 6 || st.Dups != 0 || st.Distinct != 6 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSNRespectsSortNotID(t *testing.T) {
	// e0 sorts last: sorted order is e2(a), e1(b), e0(z).
	te := newTestEnv(entity.PairSet{})
	ents := []*entity.Entity{
		{ID: 0, Attrs: []string{"z"}},
		{ID: 1, Attrs: []string{"b"}},
		{ID: 2, Attrs: []string{"a"}},
	}
	SN{}.ResolveBlock(te.env, ents, 10)
	want := []entity.Pair{
		entity.MakePair(2, 1), entity.MakePair(1, 0), // d=1
		entity.MakePair(2, 0), // d=2
	}
	if !reflect.DeepEqual(te.pairs, want) {
		t.Errorf("pair order = %v, want %v", te.pairs, want)
	}
}

func TestSNWindowLimits(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	SN{}.ResolveBlock(te.env, block("a", "b", "c", "d", "e"), 3)
	// Window 3 → distances 1 and 2 only: 4 + 3 = 7 pairs.
	if len(te.pairs) != 7 {
		t.Errorf("compared %d pairs, want 7", len(te.pairs))
	}
	for _, p := range te.pairs {
		if p.Hi-p.Lo > 2 {
			t.Errorf("pair %v exceeds window distance", p)
		}
	}
}

func TestSNFullCoverage(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	n := 6
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("%c", 'a'+i)
	}
	SN{}.ResolveBlock(te.env, block(labels...), n)
	if int64(len(te.pairs)) != entity.Pairs(n) {
		t.Errorf("window ≥ n should compare all %d pairs, got %d", entity.Pairs(n), len(te.pairs))
	}
	seen := entity.PairSet{}
	for _, p := range te.pairs {
		if !seen.Add(p) {
			t.Errorf("pair %v compared twice", p)
		}
	}
}

func TestSNTinyBlocks(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	if st := (SN{}).ResolveBlock(te.env, nil, 5); st.Compared != 0 {
		t.Error("empty block should compare nothing")
	}
	if st := (SN{}).ResolveBlock(te.env, block("a"), 5); st.Compared != 0 {
		t.Error("singleton block should compare nothing")
	}
	if st := (SN{}).ResolveBlock(te.env, block("a", "b"), 0); st.Compared != 1 {
		t.Error("window < 2 should still compare adjacent pairs")
	}
}

func TestDistinctThresholdStops(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	te.env.Stop = DistinctThreshold(3)
	st := SN{}.ResolveBlock(te.env, block("a", "b", "c", "d", "e", "f"), 6)
	if st.Distinct != 3 {
		t.Errorf("stopped after %d distinct, want 3", st.Distinct)
	}
	if st.Compared != 3 {
		t.Errorf("compared %d, want 3", st.Compared)
	}
}

func TestDecideSkips(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	te := newTestEnv(dups)
	skip := entity.PairSet{}
	skip.Add(entity.MakePair(0, 1))
	te.env.Decide = func(p entity.Pair) Decision {
		if skip.Has(p) {
			return SkipResolved
		}
		return Resolve
	}
	st := SN{}.ResolveBlock(te.env, block("a", "b", "c"), 5)
	if st.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", st.Skipped)
	}
	if st.Compared != 2 {
		t.Errorf("compared = %d, want 2", st.Compared)
	}
	for _, e := range te.emitted {
		if e == "0-1:true" {
			t.Error("skipped pair must not be emitted")
		}
	}
}

func TestSkipCostCheaperThanCompare(t *testing.T) {
	model := costmodel.Default()
	all := newTestEnv(entity.PairSet{})
	SN{}.ResolveBlock(all.env, block("a", "b"), 5)
	skipped := newTestEnv(entity.PairSet{})
	skipped.env.Decide = func(entity.Pair) Decision { return SkipResolved }
	SN{}.ResolveBlock(skipped.env, block("a", "b"), 5)
	if skipped.charged >= all.charged {
		t.Errorf("skip-all cost %v should be below compare-all cost %v", skipped.charged, all.charged)
	}
	want := model.PairCompare - model.SkipPair
	if diff := all.charged - skipped.charged; diff < want-1e-9 || diff > want+1e-9 {
		t.Errorf("cost difference %v, want %v", diff, want)
	}
}

func TestPopcornStopsOnRateDrop(t *testing.T) {
	p := &Popcorn{Threshold: 0.5, Window: 4}
	st := &VisitStats{}
	// First 4 observations all duplicates: rate 1.0 → no stop.
	for i := 0; i < 4; i++ {
		p.Observe(true)
	}
	if p.Stop(st) {
		t.Error("rate 1.0 must not stop")
	}
	// Next 4 all distinct: rate 0 → stop.
	for i := 0; i < 4; i++ {
		p.Observe(false)
	}
	if !p.Stop(st) {
		t.Error("rate 0 must stop at threshold 0.5")
	}
}

func TestPopcornNeedsFullWindow(t *testing.T) {
	p := &Popcorn{Threshold: 0.9, Window: 100}
	st := &VisitStats{}
	for i := 0; i < 99; i++ {
		p.Observe(false)
		if p.Stop(st) {
			t.Fatalf("stopped after %d observations, before window filled", i+1)
		}
	}
	p.Observe(false)
	if !p.Stop(st) {
		t.Error("full window of distinct pairs should stop")
	}
}

func TestPopcornRingBuffer(t *testing.T) {
	p := &Popcorn{Threshold: 0.4, Window: 4}
	seq := []bool{true, true, true, true, false, false, true, false}
	for _, o := range seq {
		p.Observe(o)
	}
	// Window now holds the last 4: false, false, true, false → 1 dup.
	if p.dups != 1 {
		t.Errorf("ring buffer dups = %d, want 1", p.dups)
	}
}

func TestNewPopcornDefaults(t *testing.T) {
	p := NewPopcorn(0.01)
	if p.Window != 200 || p.Threshold != 0.01 {
		t.Errorf("NewPopcorn = %+v", p)
	}
}

func TestPSNMCoversWindowNoDuplicateComparisons(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(1, 2))
	te := newTestEnv(dups)
	PSNM{}.ResolveBlock(te.env, block("a", "b", "c", "d", "e"), 5)
	// All pairs within distance 4 of a 5-block = all 10 pairs.
	if len(te.pairs) != 10 {
		t.Errorf("compared %d pairs, want 10", len(te.pairs))
	}
	seen := entity.PairSet{}
	for _, p := range te.pairs {
		if !seen.Add(p) {
			t.Errorf("pair %v compared twice", p)
		}
	}
}

func TestPSNMExpandsAroundHits(t *testing.T) {
	// All of e0..e3 are duplicates. After the hit (0,1), PSNM must try
	// (0,2) before the systematic (1,1).
	dups := entity.PairSet{}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			dups.Add(entity.MakePair(entity.ID(i), entity.ID(j)))
		}
	}
	te := newTestEnv(dups)
	PSNM{}.ResolveBlock(te.env, block("a", "b", "c", "d"), 4)
	wantPrefix := []entity.Pair{
		entity.MakePair(0, 1), // systematic (0,1) → hit
		entity.MakePair(0, 2), // promoted (0,2) → hit
		entity.MakePair(0, 3), // promoted (0,3)
	}
	if len(te.pairs) < len(wantPrefix) {
		t.Fatalf("only %d pairs compared", len(te.pairs))
	}
	if !reflect.DeepEqual(te.pairs[:3], wantPrefix) {
		t.Errorf("prefix = %v, want %v", te.pairs[:3], wantPrefix)
	}
}

func TestPSNMFindsDupsFasterThanSNWhenClustered(t *testing.T) {
	// A cluster of 5 duplicates at the end of a 30-entity block. Count
	// comparisons until all 10 duplicate pairs are found.
	n := 30
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("%03d", i)
	}
	dups := entity.PairSet{}
	for i := 25; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			dups.Add(entity.MakePair(entity.ID(i), entity.ID(j)))
		}
	}
	countUntilAll := func(m Mechanism) int {
		te := newTestEnv(dups)
		found := 0
		comparisons := 0
		te.env.Emit = func(p entity.Pair, isDup bool) {
			comparisons++
			if isDup {
				found++
			}
		}
		te.env.Stop = func(st *VisitStats) bool { return found == 10 }
		m.ResolveBlock(te.env, block(labels...), n)
		return comparisons
	}
	snCost := countUntilAll(SN{})
	psnmCost := countUntilAll(PSNM{})
	if psnmCost >= snCost {
		t.Errorf("PSNM (%d comparisons) should beat SN (%d) on clustered dups", psnmCost, snCost)
	}
}

func TestPSNMTinyBlocks(t *testing.T) {
	te := newTestEnv(entity.PairSet{})
	if st := (PSNM{}).ResolveBlock(te.env, block("a"), 5); st.Compared != 0 {
		t.Error("singleton block should compare nothing")
	}
}

func TestMechanismNames(t *testing.T) {
	if (SN{}).Name() != "SN" || (PSNM{}).Name() != "PSNM" {
		t.Error("mechanism names wrong")
	}
}

func TestObserverReceivesOutcomes(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	te := newTestEnv(dups)
	var observed []bool
	te.env.Observer = func(isDup bool) { observed = append(observed, isDup) }
	SN{}.ResolveBlock(te.env, block("a", "b", "c"), 5)
	if len(observed) != 3 {
		t.Fatalf("observer saw %d outcomes, want 3", len(observed))
	}
	nDup := 0
	for _, o := range observed {
		if o {
			nDup++
		}
	}
	if nDup != 1 {
		t.Errorf("observer saw %d dups, want 1", nDup)
	}
}

func TestVisitStatsConsistency(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	dups.Add(entity.MakePair(2, 3))
	for _, m := range []Mechanism{SN{}, PSNM{}} {
		te := newTestEnv(dups)
		st := m.ResolveBlock(te.env, block("a", "b", "c", "d", "e"), 5)
		if st.Compared != st.Dups+st.Distinct {
			t.Errorf("%s: Compared %d ≠ Dups %d + Distinct %d", m.Name(), st.Compared, st.Dups, st.Distinct)
		}
		if st.Dups != 2 {
			t.Errorf("%s: found %d dups, want 2", m.Name(), st.Dups)
		}
	}
}
