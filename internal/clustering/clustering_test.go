package clustering

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"proger/internal/entity"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Same(0, 1) {
		t.Error("fresh sets should be distinct")
	}
	if !u.Union(0, 1) {
		t.Error("first union should merge")
	}
	if u.Union(1, 0) {
		t.Error("second union of same sets should report false")
	}
	if !u.Same(0, 1) {
		t.Error("union failed")
	}
	u.Union(2, 3)
	u.Union(1, 3)
	if !u.Same(0, 2) {
		t.Error("transitivity broken")
	}
	if u.Same(0, 4) {
		t.Error("4 should remain singleton")
	}
}

func TestUnionFindEquivalenceProperty(t *testing.T) {
	// Union-find must agree with a brute-force connected-components
	// computation on random edge sets.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		u := NewUnionFind(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for e := 0; e < n; e++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			u.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		// Brute-force reachability (Floyd-Warshall style closure).
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if (adj[i][k] || i == k) && (adj[k][j] || k == j) {
						adj[i][j] = true
					}
				}
			}
		}
		for i := int32(0); i < int32(n); i++ {
			for j := int32(0); j < int32(n); j++ {
				want := i == j || adj[i][j]
				if u.Same(i, j) != want {
					t.Fatalf("trial %d: Same(%d,%d) = %v, want %v", trial, i, j, u.Same(i, j), want)
				}
			}
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	dups.Add(entity.MakePair(1, 2))
	dups.Add(entity.MakePair(4, 5))
	clusters := TransitiveClosure(6, dups)
	want := [][]entity.ID{{0, 1, 2}, {3}, {4, 5}}
	if !reflect.DeepEqual(clusters, want) {
		t.Errorf("clusters = %v, want %v", clusters, want)
	}
	if ClosurePairs(clusters) != 3+0+1 {
		t.Errorf("ClosurePairs = %d, want 4", ClosurePairs(clusters))
	}
}

func TestTransitiveClosureIsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		dups := entity.PairSet{}
		for i := 0; i < n; i++ {
			a, b := entity.ID(rng.Intn(n)), entity.ID(rng.Intn(n))
			if a != b {
				dups.Add(entity.MakePair(a, b))
			}
		}
		clusters := TransitiveClosure(n, dups)
		seen := map[entity.ID]bool{}
		for _, c := range clusters {
			for _, id := range c {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransitiveClosureIgnoresOutOfRange(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 99))
	clusters := TransitiveClosure(2, dups)
	if len(clusters) != 2 {
		t.Errorf("out-of-range pair should be ignored: %v", clusters)
	}
}

func TestEvaluatePairs(t *testing.T) {
	truth := entity.PairSet{}
	truth.Add(entity.MakePair(0, 1))
	truth.Add(entity.MakePair(2, 3))
	truth.Add(entity.MakePair(4, 5))
	found := entity.PairSet{}
	found.Add(entity.MakePair(0, 1)) // TP
	found.Add(entity.MakePair(2, 3)) // TP
	found.Add(entity.MakePair(0, 5)) // FP
	m := EvaluatePairs(found, truth.Has, 3)
	if m.TruePositives != 2 || m.FalsePositives != 1 || m.FalseNegatives != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Precision < 0.666 || m.Precision > 0.667 {
		t.Errorf("precision = %v", m.Precision)
	}
	if m.Recall < 0.666 || m.Recall > 0.667 {
		t.Errorf("recall = %v", m.Recall)
	}
	if m.F1 < 0.66 || m.F1 > 0.67 {
		t.Errorf("F1 = %v", m.F1)
	}
}

func TestEvaluatePairsEmpty(t *testing.T) {
	m := EvaluatePairs(entity.PairSet{}, func(entity.Pair) bool { return true }, 0)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
}

func TestClustersIORoundTrip(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	dups.Add(entity.MakePair(3, 4))
	clusters := TransitiveClosure(5, dups)
	var buf bytes.Buffer
	if err := WriteClusters(&buf, clusters); err != nil {
		t.Fatalf("WriteClusters: %v", err)
	}
	back, err := ReadClusters(&buf)
	if err != nil {
		t.Fatalf("ReadClusters: %v", err)
	}
	if !reflect.DeepEqual(back, clusters) {
		t.Errorf("round trip: %v vs %v", back, clusters)
	}
}

func TestReadClustersErrors(t *testing.T) {
	cases := []string{
		"",
		"bad header\n",
		"#cluster\tmembers\n0\n",
		"#cluster\tmembers\n0\tx,y\n",
		"#cluster\tmembers\n0\t-3\n",
	}
	for i, in := range cases {
		if _, err := ReadClusters(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestCorrelationClusteringBasics(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	dups.Add(entity.MakePair(1, 2))
	dups.Add(entity.MakePair(0, 2))
	dups.Add(entity.MakePair(4, 5))
	clusters := CorrelationClustering(6, dups, 1)
	// Partition invariant.
	seen := map[entity.ID]bool{}
	for _, c := range clusters {
		for _, id := range c {
			if seen[id] {
				t.Fatalf("id %d in two clusters", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("covered %d of 6", len(seen))
	}
	// The triangle {0,1,2} must be one cluster regardless of pivot order.
	clusterOf := map[entity.ID]int{}
	for i, c := range clusters {
		for _, id := range c {
			clusterOf[id] = i
		}
	}
	if clusterOf[0] != clusterOf[1] || clusterOf[1] != clusterOf[2] {
		t.Errorf("triangle split: %v", clusters)
	}
	if clusterOf[4] != clusterOf[5] {
		t.Errorf("pair split: %v", clusters)
	}
	if clusterOf[3] == clusterOf[0] || clusterOf[3] == clusterOf[4] {
		t.Errorf("singleton glued: %v", clusters)
	}
}

func TestCorrelationClusteringDeterministicPerSeed(t *testing.T) {
	dups := entity.PairSet{}
	dups.Add(entity.MakePair(0, 1))
	dups.Add(entity.MakePair(1, 2)) // 0-2 absent: chain, not triangle
	a := CorrelationClustering(3, dups, 7)
	b := CorrelationClustering(3, dups, 7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must give same clustering")
	}
}

func TestCorrelationClusteringAvoidsChaining(t *testing.T) {
	// A long weak chain 0-1-2-...-9: transitive closure makes one
	// 10-cluster; pivot clustering with a middle pivot breaks it, which
	// is the point — count disagreements to verify pivot ≤ closure on a
	// star-with-false-edge topology.
	dups := entity.PairSet{}
	// Two true cliques {0,1,2} and {5,6,7} joined by one false edge 2-5.
	for _, p := range [][2]int32{{0, 1}, {0, 2}, {1, 2}, {5, 6}, {5, 7}, {6, 7}, {2, 5}} {
		dups.Add(entity.MakePair(entity.ID(p[0]), entity.ID(p[1])))
	}
	closure := TransitiveClosure(8, dups)
	pivotBest := int64(1 << 60)
	for seed := int64(0); seed < 10; seed++ {
		d := Disagreements(CorrelationClustering(8, dups, seed), dups)
		if d < pivotBest {
			pivotBest = d
		}
	}
	closureD := Disagreements(closure, dups)
	// Closure glues the two cliques: 6+1 internal absent... count:
	// merged cluster {0,1,2,5,6,7} has 15 pairs, 7 present → 8 absent
	// disagreements. Best pivot clustering cuts the false edge: 1.
	if closureD != 8 {
		t.Errorf("closure disagreements = %d, want 8", closureD)
	}
	if pivotBest > 3 {
		t.Errorf("best pivot disagreements = %d, want ≤ 3", pivotBest)
	}
}

func TestDisagreementsEmpty(t *testing.T) {
	if Disagreements(nil, entity.PairSet{}) != 0 {
		t.Error("empty clustering disagreements")
	}
}
