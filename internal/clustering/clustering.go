// Package clustering implements the final grouping step of a
// traditional ER pipeline (§II-A of the paper): turning the resolved
// duplicate pairs into disjoint clusters, each representing one
// real-world object. Transitive closure via union-find is provided,
// which is the technique the paper names first; a pairs-level
// precision/recall/F1 report is included for evaluation.
package clustering

import (
	"sort"

	"proger/internal/entity"
)

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the set representative of x.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether they were
// previously distinct.
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b int32) bool { return u.Find(a) == u.Find(b) }

// TransitiveClosure groups n entities into disjoint clusters given the
// identified duplicate pairs. Clusters are returned with members in ID
// order and clusters ordered by their smallest member; singletons are
// included, so the result is a full partition of [0, n).
func TransitiveClosure(n int, dups entity.PairSet) [][]entity.ID {
	u := NewUnionFind(n)
	for p := range dups {
		if int(p.Lo) < n && int(p.Hi) < n {
			u.Union(int32(p.Lo), int32(p.Hi))
		}
	}
	groups := map[int32][]entity.ID{}
	for i := 0; i < n; i++ {
		root := u.Find(int32(i))
		groups[root] = append(groups[root], entity.ID(i))
	}
	out := make([][]entity.ID, 0, len(groups))
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// PairMetrics is a pairs-level evaluation of an identified duplicate
// set against ground truth.
type PairMetrics struct {
	TruePositives  int64
	FalsePositives int64
	FalseNegatives int64
	Precision      float64
	Recall         float64
	F1             float64
}

// EvaluatePairs scores the identified pairs against a ground-truth
// oracle with totalTrue true pairs.
func EvaluatePairs(found entity.PairSet, isDup func(entity.Pair) bool, totalTrue int64) PairMetrics {
	var m PairMetrics
	for p := range found {
		if isDup(p) {
			m.TruePositives++
		} else {
			m.FalsePositives++
		}
	}
	m.FalseNegatives = totalTrue - m.TruePositives
	if m.FalseNegatives < 0 {
		m.FalseNegatives = 0
	}
	if m.TruePositives+m.FalsePositives > 0 {
		m.Precision = float64(m.TruePositives) / float64(m.TruePositives+m.FalsePositives)
	}
	if totalTrue > 0 {
		m.Recall = float64(m.TruePositives) / float64(totalTrue)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// ClosurePairs returns the number of pairs implied by the clusters —
// after transitive closure, the pair count can exceed the directly
// resolved count (closure infers pairs the matcher never compared).
func ClosurePairs(clusters [][]entity.ID) int64 {
	var n int64
	for _, c := range clusters {
		n += entity.Pairs(len(c))
	}
	return n
}
