package clustering

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"proger/internal/entity"
)

// WriteClusters writes a clustering as tab-separated text: a
// "#cluster\tmembers" header, then one line per cluster with the member
// IDs comma-separated.
func WriteClusters(w io.Writer, clusters [][]entity.ID) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "#cluster\tmembers"); err != nil {
		return err
	}
	for i, c := range clusters {
		ids := make([]string, len(c))
		for j, id := range c {
			ids[j] = strconv.Itoa(int(id))
		}
		if _, err := fmt.Fprintf(bw, "%d\t%s\n", i, strings.Join(ids, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadClusters parses a file written by WriteClusters.
func ReadClusters(r io.Reader) ([][]entity.ID, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("clustering: empty cluster input")
	}
	if got := sc.Text(); got != "#cluster\tmembers" {
		return nil, fmt.Errorf("clustering: bad header %q", got)
	}
	var out [][]entity.ID
	line := 1
	for sc.Scan() {
		line++
		parts := strings.Split(sc.Text(), "\t")
		if len(parts) != 2 {
			return nil, fmt.Errorf("clustering: line %d malformed", line)
		}
		var members []entity.ID
		for _, s := range strings.Split(parts[1], ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || id < 0 {
				return nil, fmt.Errorf("clustering: line %d: bad member %q", line, s)
			}
			members = append(members, entity.ID(id))
		}
		out = append(out, members)
	}
	return out, sc.Err()
}
