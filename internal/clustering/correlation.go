package clustering

import (
	"math/rand"
	"sort"

	"proger/internal/entity"
)

// CorrelationClustering implements the randomized pivot algorithm
// (CC-Pivot) for correlation clustering — the alternative final
// clustering step the paper names alongside transitive closure
// (§II-A, [22]). Entities are processed in a seeded random order; each
// unclustered entity becomes a pivot and absorbs every unclustered
// entity its duplicate set links it to. Unlike transitive closure it
// does not chain through long weak paths, so one false-positive pair
// cannot glue two large clusters together.
//
// The expected cost of CC-Pivot is within 3× of the optimal
// disagreement count; determinism here comes from the seed.
func CorrelationClustering(n int, dups entity.PairSet, seed int64) [][]entity.ID {
	adj := make(map[entity.ID][]entity.ID, n)
	for p := range dups {
		if int(p.Lo) >= n || int(p.Hi) >= n {
			continue
		}
		adj[p.Lo] = append(adj[p.Lo], p.Hi)
		adj[p.Hi] = append(adj[p.Hi], p.Lo)
	}
	order := rand.New(rand.NewSource(seed)).Perm(n)
	assigned := make([]bool, n)
	var clusters [][]entity.ID
	for _, idx := range order {
		pivot := entity.ID(idx)
		if assigned[pivot] {
			continue
		}
		assigned[pivot] = true
		cluster := []entity.ID{pivot}
		for _, nb := range adj[pivot] {
			if !assigned[nb] {
				assigned[nb] = true
				cluster = append(cluster, nb)
			}
		}
		sort.Slice(cluster, func(i, j int) bool { return cluster[i] < cluster[j] })
		clusters = append(clusters, cluster)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	return clusters
}

// Disagreements counts the correlation-clustering objective for a
// clustering against the pair decisions: positive pairs cut across
// clusters plus negative (absent) pairs bundled inside one cluster.
func Disagreements(clusters [][]entity.ID, dups entity.PairSet) int64 {
	clusterOf := map[entity.ID]int{}
	for i, c := range clusters {
		for _, id := range c {
			clusterOf[id] = i
		}
	}
	var bad int64
	// Positive pairs split apart.
	for p := range dups {
		ca, okA := clusterOf[p.Lo]
		cb, okB := clusterOf[p.Hi]
		if !okA || !okB || ca != cb {
			bad++
		}
	}
	// Negative pairs glued together.
	for _, c := range clusters {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !dups.Has(entity.MakePair(c[i], c[j])) {
					bad++
				}
			}
		}
	}
	return bad
}
