// Package faults provides deterministic, seed-driven fault injection
// for the MapReduce attempt runtime. An Injector decides, per task
// attempt, whether the attempt runs clean, crashes partway, hangs
// (until the runtime's per-attempt timeout kills it), or runs slow
// (a straggler, the speculative-execution target).
//
// Decisions are pure functions of (seed, phase, task, attempt), so a
// chaos run is exactly reproducible: the same seed injects the same
// faults into the same attempts regardless of host concurrency. The
// injected faults live entirely on the runtime's simulated attempt
// timeline — they are retried, timed out, or speculated around, and by
// construction cannot alter the committed mapreduce.Result.
package faults

// Phase identifies the engine phase an attempt belongs to.
type Phase string

// Engine phases subject to injection.
const (
	Map     Phase = "map"
	Shuffle Phase = "shuffle"
	Reduce  Phase = "reduce"
)

// Kind classifies what happens to one task attempt.
type Kind int

// Attempt fault kinds.
const (
	// None: the attempt runs clean and commits its output.
	None Kind = iota
	// Crash: the attempt dies partway through its work; its partial
	// output is discarded and the runtime retries after backoff.
	Crash
	// Hang: the attempt stops making progress; the runtime's
	// per-attempt timeout converts it into a retryable failure.
	Hang
	// Slow: the attempt completes but takes Factor× its clean cost —
	// a straggler, eligible for speculative re-execution.
	Slow
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case Slow:
		return "slow"
	}
	return "unknown"
}

// Fault is one injection decision. Factor only applies to Slow faults:
// the attempt's simulated duration is Factor × its clean cost (≤ 0
// means the runtime default).
type Fault struct {
	Kind   Kind
	Factor float64
}

// Injector decides the fate of task attempts. Implementations must be
// pure (same arguments → same Fault) and safe for concurrent use;
// attempt numbering starts at 1, and the runtime also consults the
// injector for speculative attempts (with an attempt index past the
// retry range).
type Injector interface {
	Decide(phase Phase, task, attempt int) Fault
}

// DefaultBudget is the default cap on consecutive faulted attempts per
// task in a Seeded injector. Any retry policy allowing at least
// DefaultBudget retries is therefore guaranteed to complete a chaos
// run, whatever the rate or seed.
const DefaultBudget = 3

// Seeded is the standard chaos injector: each attempt faults with
// probability Rate, the kind drawn crash:hang:slow at 2:1:1, both
// decisions keyed on a deterministic hash of (Seed, phase, task,
// attempt). The zero value injects nothing.
type Seeded struct {
	// Seed selects the fault pattern; runs with equal seeds and rates
	// inject identical faults.
	Seed int64
	// Rate is the per-attempt fault probability in [0, 1].
	Rate float64
	// Budget caps consecutive faulted attempts per task: attempts past
	// it always run clean, so retry policies with MaxRetries ≥ Budget
	// always complete. 0 means DefaultBudget; negative removes the cap
	// (exercises retry exhaustion).
	Budget int
	// SlowFactor is the duration multiplier for Slow faults (≤ 0 means
	// the runtime default).
	SlowFactor float64
}

// NewSeeded returns a Seeded injector with the default budget and slow
// factor.
func NewSeeded(seed int64, rate float64) *Seeded {
	return &Seeded{Seed: seed, Rate: rate}
}

// Decide implements Injector.
func (s *Seeded) Decide(phase Phase, task, attempt int) Fault {
	if s == nil || s.Rate <= 0 {
		return Fault{}
	}
	budget := s.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	if budget > 0 && attempt > budget {
		return Fault{}
	}
	h := mix(uint64(s.Seed), phase, task, attempt)
	if u := float64(h>>11) / float64(uint64(1)<<53); u >= s.Rate {
		return Fault{}
	}
	// Independent second draw for the kind: crash 2 : hang 1 : slow 1.
	switch mix(h, phase, task, attempt) % 4 {
	case 0, 1:
		return Fault{Kind: Crash}
	case 2:
		return Fault{Kind: Hang}
	default:
		return Fault{Kind: Slow, Factor: s.SlowFactor}
	}
}

// mix hashes the decision coordinates: FNV-1a over the fields followed
// by a splitmix64-style finalizer for avalanche.
func mix(seed uint64, phase Phase, task, attempt int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	feed := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	feed(seed)
	for i := 0; i < len(phase); i++ {
		h ^= uint64(phase[i])
		h *= prime64
	}
	feed(uint64(task))
	feed(uint64(attempt))
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ScriptKey addresses one attempt in a Script.
type ScriptKey struct {
	Phase   Phase
	Task    int
	Attempt int
}

// Script is a table-driven injector for targeted tests: exactly the
// listed attempts fault, everything else runs clean.
type Script map[ScriptKey]Fault

// Decide implements Injector.
func (s Script) Decide(phase Phase, task, attempt int) Fault {
	return s[ScriptKey{Phase: phase, Task: task, Attempt: attempt}]
}
