package faults

import (
	"fmt"
	"testing"
)

func TestSeededDeterministic(t *testing.T) {
	a := NewSeeded(42, 0.5)
	b := NewSeeded(42, 0.5)
	for _, phase := range []Phase{Map, Shuffle, Reduce} {
		for task := 0; task < 50; task++ {
			for attempt := 1; attempt <= 4; attempt++ {
				fa := a.Decide(phase, task, attempt)
				fb := b.Decide(phase, task, attempt)
				if fa != fb {
					t.Fatalf("Decide(%s,%d,%d) = %v vs %v across equal injectors",
						phase, task, attempt, fa, fb)
				}
				if again := a.Decide(phase, task, attempt); again != fa {
					t.Fatalf("Decide(%s,%d,%d) not stable across calls", phase, task, attempt)
				}
			}
		}
	}
}

func TestSeededSeedsDiffer(t *testing.T) {
	a, b := NewSeeded(1, 0.5), NewSeeded(2, 0.5)
	differ := false
	for task := 0; task < 100 && !differ; task++ {
		differ = a.Decide(Map, task, 1) != b.Decide(Map, task, 1)
	}
	if !differ {
		t.Error("seeds 1 and 2 injected identical fault patterns over 100 tasks")
	}
}

func TestSeededRateBounds(t *testing.T) {
	none := NewSeeded(7, 0)
	all := NewSeeded(7, 1)
	for task := 0; task < 100; task++ {
		if f := none.Decide(Reduce, task, 1); f.Kind != None {
			t.Fatalf("rate 0 injected %v", f)
		}
		if f := all.Decide(Reduce, task, 1); f.Kind == None {
			t.Fatalf("rate 1 stayed clean for task %d", task)
		}
	}
	var nilInj *Seeded
	if f := nilInj.Decide(Map, 0, 1); f.Kind != None {
		t.Errorf("nil injector returned %v", f)
	}
}

func TestSeededKindMix(t *testing.T) {
	inj := NewSeeded(3, 1)
	seen := map[Kind]int{}
	for task := 0; task < 400; task++ {
		seen[inj.Decide(Map, task, 1).Kind]++
	}
	for _, k := range []Kind{Crash, Hang, Slow} {
		if seen[k] == 0 {
			t.Errorf("kind %v never drawn in 400 faulted attempts (mix %v)", k, seen)
		}
	}
	if seen[Crash] < seen[Hang] || seen[Crash] < seen[Slow] {
		t.Errorf("crash should dominate the 2:1:1 mix, got %v", seen)
	}
}

func TestSeededBudget(t *testing.T) {
	inj := NewSeeded(9, 1)
	// Default budget: attempts past DefaultBudget always run clean.
	for task := 0; task < 20; task++ {
		if f := inj.Decide(Map, task, DefaultBudget+1); f.Kind != None {
			t.Fatalf("attempt past budget faulted: %v", f)
		}
		if f := inj.Decide(Map, task, DefaultBudget); f.Kind == None {
			t.Fatalf("attempt within budget stayed clean at rate 1")
		}
	}
	// Negative budget removes the cap.
	inj.Budget = -1
	if f := inj.Decide(Map, 0, DefaultBudget+5); f.Kind == None {
		t.Error("uncapped injector stayed clean at rate 1")
	}
}

func TestScript(t *testing.T) {
	s := Script{
		{Map, 2, 1}:    {Kind: Crash},
		{Reduce, 0, 2}: {Kind: Slow, Factor: 10},
	}
	if f := s.Decide(Map, 2, 1); f.Kind != Crash {
		t.Errorf("scripted crash = %v", f)
	}
	if f := s.Decide(Reduce, 0, 2); f.Kind != Slow || f.Factor != 10 {
		t.Errorf("scripted slow = %v", f)
	}
	if f := s.Decide(Map, 2, 2); f.Kind != None {
		t.Errorf("unscripted attempt = %v", f)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{None: "none", Crash: "crash", Hang: "hang", Slow: "slow", Kind(99): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	// Kinds render in fmt verbs via Stringer.
	if got := fmt.Sprint(Crash); got != "crash" {
		t.Errorf("fmt.Sprint(Crash) = %q", got)
	}
}
