package progress

import (
	"math/rand"
	"testing"

	"proger/internal/costmodel"
	"proger/internal/entity"
)

func ev(t costmodel.Units, lo, hi int32, dup bool) Event {
	return Event{Time: t, Pair: entity.MakePair(entity.ID(lo), entity.ID(hi)), TrueDup: dup}
}

func TestBuildCurveBasics(t *testing.T) {
	events := []Event{
		ev(10, 0, 1, true),
		ev(5, 2, 3, true),
		ev(20, 4, 5, false), // false positive: no recall contribution
		ev(30, 0, 1, true),  // re-find: ignored
		ev(40, 6, 7, true),
	}
	c := BuildCurve(events, 4, 100)
	if len(c.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(c.Points))
	}
	if c.Points[0].Time != 5 || c.Points[0].Found != 1 {
		t.Errorf("first point = %+v", c.Points[0])
	}
	if c.FinalRecall() != 0.75 {
		t.Errorf("final recall = %v, want 0.75", c.FinalRecall())
	}
	if c.End != 100 {
		t.Errorf("End = %v", c.End)
	}
}

func TestCurveMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var events []Event
	for i := 0; i < 500; i++ {
		events = append(events, ev(costmodel.Units(rng.Intn(1000)), int32(rng.Intn(40)), int32(rng.Intn(40)+41), rng.Intn(2) == 0))
	}
	c := BuildCurve(events, 400, 1000)
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Time < c.Points[i-1].Time {
			t.Fatalf("times not sorted at %d", i)
		}
		if c.Points[i].Found != c.Points[i-1].Found+1 {
			t.Fatalf("found not incrementing at %d", i)
		}
		if c.Points[i].Recall <= c.Points[i-1].Recall {
			t.Fatalf("recall not increasing at %d", i)
		}
	}
}

func TestRecallAt(t *testing.T) {
	c := BuildCurve([]Event{
		ev(10, 0, 1, true), ev(20, 2, 3, true), ev(30, 4, 5, true), ev(40, 6, 7, true),
	}, 4, 50)
	cases := map[costmodel.Units]float64{
		0: 0, 9.99: 0, 10: 0.25, 15: 0.25, 20: 0.5, 39: 0.75, 40: 1, 1000: 1,
	}
	for at, want := range cases {
		if got := c.RecallAt(at); got != want {
			t.Errorf("RecallAt(%v) = %v, want %v", at, got, want)
		}
	}
}

func TestTimeToRecall(t *testing.T) {
	c := BuildCurve([]Event{
		ev(10, 0, 1, true), ev(20, 2, 3, true),
	}, 4, 50)
	if tt, ok := c.TimeToRecall(0.25); !ok || tt != 10 {
		t.Errorf("TimeToRecall(0.25) = %v,%v", tt, ok)
	}
	if tt, ok := c.TimeToRecall(0.5); !ok || tt != 20 {
		t.Errorf("TimeToRecall(0.5) = %v,%v", tt, ok)
	}
	if _, ok := c.TimeToRecall(0.9); ok {
		t.Error("recall 0.9 never reached; want ok=false")
	}
}

func TestSample(t *testing.T) {
	c := BuildCurve([]Event{ev(10, 0, 1, true), ev(20, 2, 3, true)}, 2, 30)
	got := c.Sample([]costmodel.Units{5, 10, 25})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQty(t *testing.T) {
	// 4 dups at t=5,15,25,35; N=4. Costs 10/20/30/40, weights 1/.75/.5/.25.
	c := BuildCurve([]Event{
		ev(5, 0, 1, true), ev(15, 2, 3, true), ev(25, 4, 5, true), ev(35, 6, 7, true),
	}, 4, 40)
	costs := []costmodel.Units{10, 20, 30, 40}
	weights := []float64{1, 0.75, 0.5, 0.25}
	q, err := Qty(c, costs, weights)
	if err != nil {
		t.Fatalf("Qty: %v", err)
	}
	want := (1*1.0 + 1*0.75 + 1*0.5 + 1*0.25) / 4
	if q < want-1e-12 || q > want+1e-12 {
		t.Errorf("Qty = %v, want %v", q, want)
	}
}

func TestQtyRewardsEarlierCurves(t *testing.T) {
	early := BuildCurve([]Event{ev(5, 0, 1, true), ev(6, 2, 3, true)}, 2, 100)
	late := BuildCurve([]Event{ev(80, 0, 1, true), ev(90, 2, 3, true)}, 2, 100)
	costs := []costmodel.Units{25, 50, 75, 100}
	weights := []float64{1, 0.75, 0.5, 0.25}
	qe, _ := Qty(early, costs, weights)
	ql, _ := Qty(late, costs, weights)
	if qe <= ql {
		t.Errorf("early curve Qty %v should beat late %v", qe, ql)
	}
}

func TestQtyValidation(t *testing.T) {
	c := BuildCurve(nil, 2, 10)
	if _, err := Qty(c, nil, nil); err == nil {
		t.Error("empty costs: want error")
	}
	if _, err := Qty(c, []costmodel.Units{5, 5}, []float64{1, 1}); err == nil {
		t.Error("non-increasing costs: want error")
	}
	if _, err := Qty(c, []costmodel.Units{5, 10}, []float64{0.5, 1}); err == nil {
		t.Error("increasing weights: want error")
	}
	if _, err := Qty(c, []costmodel.Units{5, 10}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	// Zero ground truth: Qty is defined as 0.
	if q, err := Qty(BuildCurve(nil, 0, 10), []costmodel.Units{5}, []float64{1}); err != nil || q != 0 {
		t.Errorf("zero-total Qty = %v, %v", q, err)
	}
}

func TestSpeedup(t *testing.T) {
	slow := BuildCurve([]Event{ev(100, 0, 1, true), ev(200, 2, 3, true)}, 2, 300)
	fast := BuildCurve([]Event{ev(25, 0, 1, true), ev(50, 2, 3, true)}, 2, 80)
	s, ok := Speedup(slow, fast, 0.5)
	if !ok || s != 4 {
		t.Errorf("Speedup(0.5) = %v,%v; want 4", s, ok)
	}
	s, ok = Speedup(slow, fast, 1.0)
	if !ok || s != 4 {
		t.Errorf("Speedup(1.0) = %v,%v; want 4", s, ok)
	}
	if _, ok := Speedup(slow, fast, 1.5); ok {
		t.Error("unreachable recall must return ok=false")
	}
}

func TestBuildCurveZeroTotal(t *testing.T) {
	c := BuildCurve([]Event{ev(5, 0, 1, true)}, 0, 10)
	if c.FinalRecall() != 0 {
		t.Errorf("recall with zero total = %v", c.FinalRecall())
	}
}

func TestAUC(t *testing.T) {
	// One dup (of one) found at t=0-ish → AUC ≈ 1.
	c := BuildCurve([]Event{ev(0, 0, 1, true)}, 1, 100)
	if got := c.AUC(); got != 1 {
		t.Errorf("immediate discovery AUC = %v, want 1", got)
	}
	// Found at the very end → AUC ≈ 0.
	c = BuildCurve([]Event{ev(100, 0, 1, true)}, 1, 100)
	if got := c.AUC(); got != 0 {
		t.Errorf("last-moment AUC = %v, want 0", got)
	}
	// Found halfway → AUC = 0.5.
	c = BuildCurve([]Event{ev(50, 0, 1, true)}, 1, 100)
	if got := c.AUC(); got != 0.5 {
		t.Errorf("halfway AUC = %v, want 0.5", got)
	}
	// Earlier curves have higher AUC.
	early := BuildCurve([]Event{ev(10, 0, 1, true), ev(20, 2, 3, true)}, 2, 100)
	late := BuildCurve([]Event{ev(70, 0, 1, true), ev(90, 2, 3, true)}, 2, 100)
	if early.AUC() <= late.AUC() {
		t.Errorf("early AUC %v should beat late %v", early.AUC(), late.AUC())
	}
	// Degenerate curves.
	if (BuildCurve(nil, 0, 10)).AUC() != 0 {
		t.Error("zero-total AUC")
	}
	if (BuildCurve(nil, 5, 0)).AUC() != 0 {
		t.Error("zero-end AUC")
	}
}

func TestMilestones(t *testing.T) {
	c := BuildCurve([]Event{ev(10, 0, 1, true), ev(30, 2, 3, true)}, 2, 50)
	ms := c.Milestones([]float64{0.5, 1.0, 1.5})
	if !ms[0].Reached || ms[0].Time != 10 {
		t.Errorf("milestone 0.5 = %+v", ms[0])
	}
	if !ms[1].Reached || ms[1].Time != 30 {
		t.Errorf("milestone 1.0 = %+v", ms[1])
	}
	if ms[2].Reached {
		t.Errorf("milestone 1.5 = %+v", ms[2])
	}
}
