// Package progress implements the evaluation-side measures of the
// paper: duplicate-recall-versus-cost curves (the y/x axes of
// Figs. 8–10), the discrete-sampling quality function Qty of Eq. 1, and
// the recall speedup of Fig. 11.
package progress

import (
	"fmt"
	"sort"

	"proger/internal/costmodel"
	"proger/internal/entity"
)

// Event is one resolved duplicate pair with the global simulated time
// at which it was produced.
type Event struct {
	Time costmodel.Units
	Pair entity.Pair
	// TrueDup marks whether the pair is a ground-truth duplicate
	// (the resolve function can have false positives).
	TrueDup bool
}

// Point is one step of a recall curve.
type Point struct {
	Time   costmodel.Units
	Found  int64 // cumulative correctly identified duplicate pairs
	Recall float64
}

// Curve is duplicate recall as a non-decreasing step function of cost.
type Curve struct {
	Points []Point
	// Total is N: the number of ground-truth duplicate pairs.
	Total int64
	// End is the completion time of the whole run (recall stays flat
	// from the last event to End).
	End costmodel.Units
}

// BuildCurve constructs the recall curve from resolution events.
// Events are sorted by time; only the first discovery of each
// ground-truth pair counts (re-finds and false positives contribute
// nothing to recall).
func BuildCurve(events []Event, totalDups int64, end costmodel.Units) *Curve {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	c := &Curve{Total: totalDups, End: end}
	seen := entity.PairSet{}
	var found int64
	for _, ev := range sorted {
		if !ev.TrueDup || !seen.Add(ev.Pair) {
			continue
		}
		found++
		recall := 0.0
		if totalDups > 0 {
			recall = float64(found) / float64(totalDups)
		}
		c.Points = append(c.Points, Point{Time: ev.Time, Found: found, Recall: recall})
	}
	return c
}

// RecallAt returns the recall achieved by time t.
func (c *Curve) RecallAt(t costmodel.Units) float64 {
	// Binary search for the last point with Time ≤ t.
	lo, hi := 0, len(c.Points)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Points[mid].Time <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return c.Points[lo-1].Recall
}

// FinalRecall returns the recall at the end of the run.
func (c *Curve) FinalRecall() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].Recall
}

// TimeToRecall returns the earliest time at which the curve reaches
// recall r, and whether it ever does.
func (c *Curve) TimeToRecall(r float64) (costmodel.Units, bool) {
	for _, p := range c.Points {
		if p.Recall >= r {
			return p.Time, true
		}
	}
	return 0, false
}

// Sample evaluates recall at each time, for plotting a fixed grid.
func (c *Curve) Sample(times []costmodel.Units) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		out[i] = c.RecallAt(t)
	}
	return out
}

// Qty is the discrete sampling quality function of Eq. 1:
//
//	Qty = (1/N) · Σᵢ W(cᵢ) · Result(cᵢ)
//
// where Result(cᵢ) is the number of correct duplicate pairs identified
// in (cᵢ₋₁, cᵢ]. costs must be strictly increasing and weights
// non-increasing in [0,1], one per cost.
func Qty(c *Curve, costs []costmodel.Units, weights []float64) (float64, error) {
	if len(costs) == 0 || len(costs) != len(weights) {
		return 0, fmt.Errorf("progress: need equal non-empty costs and weights (%d, %d)", len(costs), len(weights))
	}
	prevCost := costmodel.Units(0)
	prevW := 1.0
	for i := range costs {
		if costs[i] <= prevCost {
			return 0, fmt.Errorf("progress: costs must be strictly increasing at %d", i)
		}
		if weights[i] < 0 || weights[i] > 1 || weights[i] > prevW {
			return 0, fmt.Errorf("progress: weights must be non-increasing in [0,1] at %d", i)
		}
		prevCost, prevW = costs[i], weights[i]
	}
	if c.Total == 0 {
		return 0, nil
	}
	q := 0.0
	var prevFound int64
	for i, ci := range costs {
		var foundAt int64
		// Found at ci = Found of last point with Time ≤ ci.
		lo, hi := 0, len(c.Points)
		for lo < hi {
			mid := (lo + hi) / 2
			if c.Points[mid].Time <= ci {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			foundAt = c.Points[lo-1].Found
		}
		q += weights[i] * float64(foundAt-prevFound)
		prevFound = foundAt
	}
	return q / float64(c.Total), nil
}

// AUC returns the normalized area under the recall-vs-cost curve over
// [0, End]: 1.0 means all duplicates were known from time zero, 0 means
// none were ever found. A scalar summary of progressiveness that, like
// Qty with uniform weights, rewards early discovery.
func (c *Curve) AUC() float64 {
	if c.End <= 0 || c.Total == 0 {
		return 0
	}
	area := 0.0
	prevTime := costmodel.Units(0)
	prevRecall := 0.0
	for _, p := range c.Points {
		t := p.Time
		if t > c.End {
			t = c.End
		}
		area += float64(t-prevTime) * prevRecall
		prevTime = t
		prevRecall = p.Recall
	}
	if prevTime < c.End {
		area += float64(c.End-prevTime) * prevRecall
	}
	return area / float64(c.End)
}

// Milestone is the cost at which a recall level was first reached.
type Milestone struct {
	Recall  float64
	Time    costmodel.Units
	Reached bool
}

// Milestones tabulates when the curve reaches each recall level.
func (c *Curve) Milestones(recalls []float64) []Milestone {
	out := make([]Milestone, len(recalls))
	for i, r := range recalls {
		t, ok := c.TimeToRecall(r)
		out[i] = Milestone{Recall: r, Time: t, Reached: ok}
	}
	return out
}

// Speedup returns how much faster `fast` reaches the given recall than
// `slow`: time(slow, r) / time(fast, r). The second return is false if
// either curve never reaches r. This is the recall speedup of Fig. 11
// (slow = the 5-machine run, fast = the μ-machine run).
func Speedup(slow, fast *Curve, recall float64) (float64, bool) {
	ts, ok := slow.TimeToRecall(recall)
	if !ok {
		return 0, false
	}
	tf, ok := fast.TimeToRecall(recall)
	if !ok || tf <= 0 {
		return 0, false
	}
	return float64(ts) / float64(tf), true
}
