package blocking

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// BlockStat is the Job-1 statistics record for one block: its size, its
// uncovered-pair count, and its child blocks' keys (§III-B lists
// exactly these three statistics).
type BlockStat struct {
	ID        BlockID
	Size      int
	Uncov     int64
	ChildKeys []string
}

// EncodeStat appends the binary encoding of s to dst.
func EncodeStat(dst []byte, s *BlockStat) []byte {
	dst = append(dst, byte(s.ID.Family), byte(s.ID.Level))
	dst = binary.AppendUvarint(dst, uint64(len(s.ID.Key)))
	dst = append(dst, s.ID.Key...)
	dst = binary.AppendUvarint(dst, uint64(s.Size))
	dst = binary.AppendUvarint(dst, uint64(s.Uncov))
	dst = binary.AppendUvarint(dst, uint64(len(s.ChildKeys)))
	for _, k := range s.ChildKeys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
	}
	return dst
}

// DecodeStat decodes one BlockStat and returns bytes consumed.
func DecodeStat(src []byte) (*BlockStat, int, error) {
	if len(src) < 2 {
		return nil, 0, fmt.Errorf("blocking: truncated stat header")
	}
	s := &BlockStat{ID: BlockID{Family: int8(src[0]), Level: int8(src[1])}}
	off := 2
	readStr := func(what string) (string, error) {
		l, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return "", fmt.Errorf("blocking: truncated stat (%s len)", what)
		}
		off += n
		if uint64(off)+l > uint64(len(src)) {
			return "", fmt.Errorf("blocking: truncated stat (%s body)", what)
		}
		v := string(src[off : off+int(l)])
		off += int(l)
		return v, nil
	}
	var err error
	if s.ID.Key, err = readStr("key"); err != nil {
		return nil, 0, err
	}
	size, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("blocking: truncated stat (size)")
	}
	off += n
	s.Size = int(size)
	uncov, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("blocking: truncated stat (uncov)")
	}
	off += n
	s.Uncov = int64(uncov)
	cnt, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("blocking: truncated stat (child count)")
	}
	off += n
	if cnt > uint64(len(src)) {
		return nil, 0, fmt.Errorf("blocking: corrupt child count %d", cnt)
	}
	s.ChildKeys = make([]string, cnt)
	for i := range s.ChildKeys {
		if s.ChildKeys[i], err = readStr(fmt.Sprintf("child %d", i)); err != nil {
			return nil, 0, err
		}
	}
	return s, off, nil
}

// Stats is the full Job-1 statistics output, indexable by block.
type Stats struct {
	Blocks map[BlockID]*BlockStat
}

// NewStats builds an index from a flat stat list.
func NewStats(list []*BlockStat) *Stats {
	m := make(map[BlockID]*BlockStat, len(list))
	for _, s := range list {
		m[s.ID] = s
	}
	return &Stats{Blocks: m}
}

// Get returns the stat for a block ID, or nil.
func (st *Stats) Get(id BlockID) *BlockStat { return st.Blocks[id] }

// BuildForests reconstructs the blocking trees of every family from the
// statistics, in deterministic order: families in dominance order, and
// within a family, trees by root key. This is what Job 2's map-task
// setup does before generating the progressive schedule.
func (st *Stats) BuildForests(fams Families) ([]*Tree, error) {
	// Group stats by family and sort roots.
	rootsByFam := make([][]*BlockStat, len(fams))
	for _, s := range st.Blocks {
		if int(s.ID.Family) >= len(fams) {
			return nil, fmt.Errorf("blocking: stat %s references unknown family", s.ID)
		}
		if s.ID.Level == 1 {
			rootsByFam[s.ID.Family] = append(rootsByFam[s.ID.Family], s)
		}
	}
	var trees []*Tree
	for famIdx := range fams {
		roots := rootsByFam[famIdx]
		sort.Slice(roots, func(i, j int) bool { return roots[i].ID.Key < roots[j].ID.Key })
		for _, rs := range roots {
			root, err := st.buildBlock(rs)
			if err != nil {
				return nil, err
			}
			trees = append(trees, &Tree{Root: root})
		}
	}
	return trees, nil
}

func (st *Stats) buildBlock(s *BlockStat) (*Block, error) {
	b := &Block{ID: s.ID, Size: s.Size, Uncov: s.Uncov}
	for _, ck := range s.ChildKeys {
		cid := BlockID{Family: s.ID.Family, Level: s.ID.Level + 1, Key: ck}
		cs := st.Blocks[cid]
		if cs == nil {
			return nil, fmt.Errorf("blocking: stats missing child %s of %s", cid, s.ID)
		}
		child, err := st.buildBlock(cs)
		if err != nil {
			return nil, err
		}
		child.Parent = b
		b.Children = append(b.Children, child)
	}
	return b, nil
}

// StatsFromTree flattens a built tree (with sizes and Uncov already
// computed) into BlockStat records — Job 1's reduce output.
func StatsFromTree(t *Tree) []*BlockStat {
	var out []*BlockStat
	t.Root.Walk(func(b *Block) {
		s := &BlockStat{ID: b.ID, Size: b.Size, Uncov: b.Uncov}
		for _, c := range b.Children {
			s.ChildKeys = append(s.ChildKeys, c.ID.Key)
		}
		out = append(out, s)
	})
	return out
}
