package blocking

import (
	"encoding/binary"
	"fmt"

	"proger/internal/entity"
)

// Annotated is the annotated entity e*ᵢ of §III-B: the entity plus its
// main blocking key values (in family dominance order). Annotation is
// produced by Job 1's map phase so Job 2 need not recompute keys.
type Annotated struct {
	Ent      *entity.Entity
	MainKeys []string
}

// Annotate computes the annotated form of e under the families.
func Annotate(fs Families, e *entity.Entity) *Annotated {
	return &Annotated{Ent: e, MainKeys: fs.MainKeys(e)}
}

// EncodeAnnotated appends the binary encoding of a to dst.
func EncodeAnnotated(dst []byte, a *Annotated) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(a.MainKeys)))
	for _, k := range a.MainKeys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
	}
	return entity.EncodeBinary(dst, a.Ent)
}

// DecodeAnnotated decodes one annotated entity, returning it and the
// number of bytes consumed.
func DecodeAnnotated(src []byte) (*Annotated, int, error) {
	off := 0
	n64, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("blocking: truncated annotation (key count)")
	}
	off += n
	if n64 > uint64(len(src)) {
		return nil, 0, fmt.Errorf("blocking: corrupt annotation key count %d", n64)
	}
	keys := make([]string, n64)
	for i := range keys {
		l, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("blocking: truncated annotation (key %d len)", i)
		}
		off += n
		if uint64(off)+l > uint64(len(src)) {
			return nil, 0, fmt.Errorf("blocking: truncated annotation (key %d body)", i)
		}
		keys[i] = string(src[off : off+int(l)])
		off += int(l)
	}
	e, n, err := entity.DecodeBinary(src[off:])
	if err != nil {
		return nil, 0, err
	}
	return &Annotated{Ent: e, MainKeys: keys}, off + n, nil
}
