package blocking

// Job 1 counter keys (exported constants so call sites cannot silently
// typo a name; see the telemetry-key lint in scripts/check.sh).
const (
	// CounterJob1Entities counts dataset entities seen by the map phase.
	CounterJob1Entities = "job1.entities"
	// CounterJob1Blocks counts blocks whose statistics were emitted.
	CounterJob1Blocks = "job1.blocks"
	// CounterJob1Trees counts blocking trees built by the reduce phase.
	CounterJob1Trees = "job1.trees"
)
