// Package blocking implements the paper's progressive blocking (§III-A):
// main blocking functions that partition the dataset into root blocks,
// sub-blocking functions that hierarchically refine each root block into
// a tree of smaller blocks, the forest abstraction, and the first
// MapReduce job that materializes the forests and gathers the block
// statistics the schedule generator needs (sizes, child keys, and
// covered/uncovered pair counts).
package blocking

import (
	"fmt"
	"strings"

	"proger/internal/entity"
	"proger/internal/textsim"
)

// KeyKind selects how a family derives its blocking keys from the
// attribute value.
type KeyKind int

const (
	// KeyPrefix keys on lower-cased character prefixes (Table II).
	KeyPrefix KeyKind = iota
	// KeySoundex keys on prefixes of the Soundex code of the value's
	// first word — the phonetic blocking of the merge/purge line of
	// work [3], robust to spelling variation in name-like attributes.
	KeySoundex
)

// String implements fmt.Stringer.
func (k KeyKind) String() string {
	switch k {
	case KeyPrefix:
		return "prefix"
	case KeySoundex:
		return "soundex"
	default:
		return fmt.Sprintf("KeyKind(%d)", int(k))
	}
}

// Family is a main blocking function X¹ together with its sub-blocking
// functions X², X³, …  All of them key on prefixes of one attribute
// (Table II), so a level-(i+1) key extends the level-i key and the
// generated blocks nest into a tree.
type Family struct {
	// Name is the function family's symbol ("X", "Y", "Z").
	Name string
	// Attr is the index of the attribute supplying the blocking key.
	Attr int
	// PrefixLens[i] is the key prefix length of the level-(i+1)
	// function; PrefixLens[0] belongs to the main function X¹.
	// Must be strictly increasing.
	PrefixLens []int
	// Index is this family's 1-based position in the total dominance
	// order ≻_F (1 = most dominating). The paper pre-specifies this
	// order by domain knowledge (§IV-A).
	Index int
	// Kind selects the key derivation; the zero value is KeyPrefix.
	Kind KeyKind
}

// Levels returns the number of blocking functions in the family,
// i.e. N(X¹)+1: the main function plus its sub-blocking functions.
func (f *Family) Levels() int { return len(f.PrefixLens) }

// Key returns the blocking key of e at the given level (1-based).
// Prefix keys are lower-cased; values shorter than the prefix length
// key on the whole value. Soundex keys are prefixes of the value's
// first-word Soundex code, so deeper levels still refine shallower
// ones.
func (f *Family) Key(e *entity.Entity, level int) string {
	if level < 1 || level > f.Levels() {
		panic(fmt.Sprintf("blocking: level %d out of range for family %s with %d levels", level, f.Name, f.Levels()))
	}
	var v string
	switch f.Kind {
	case KeySoundex:
		v = textsim.SoundexOfFirstWord(e.Attr(f.Attr))
	default:
		v = strings.ToLower(e.Attr(f.Attr))
	}
	n := f.PrefixLens[level-1]
	if len(v) > n {
		v = v[:n]
	}
	return v
}

// Validate checks the family's invariants.
func (f *Family) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("blocking: family needs a name")
	}
	if f.Attr < 0 {
		return fmt.Errorf("blocking: family %s: negative attribute", f.Name)
	}
	if len(f.PrefixLens) == 0 {
		return fmt.Errorf("blocking: family %s: no levels", f.Name)
	}
	for i := 1; i < len(f.PrefixLens); i++ {
		if f.PrefixLens[i] <= f.PrefixLens[i-1] {
			return fmt.Errorf("blocking: family %s: prefix lengths must increase (%v)", f.Name, f.PrefixLens)
		}
	}
	if f.Index < 1 {
		return fmt.Errorf("blocking: family %s: dominance index must be ≥ 1", f.Name)
	}
	return nil
}

// Families is the ordered set of blocking-function families of a
// pipeline configuration. Families must be listed in dominance order:
// Families[i].Index == i+1.
type Families []*Family

// Validate checks every family and the dominance-order convention.
func (fs Families) Validate() error {
	if len(fs) == 0 {
		return fmt.Errorf("blocking: at least one family required")
	}
	seen := map[string]bool{}
	for i, f := range fs {
		if err := f.Validate(); err != nil {
			return err
		}
		if f.Index != i+1 {
			return fmt.Errorf("blocking: family %s at position %d has dominance index %d (families must be listed in ≻_F order)", f.Name, i, f.Index)
		}
		if seen[f.Name] {
			return fmt.Errorf("blocking: duplicate family name %s", f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// MainKeys returns e's main (level-1) blocking key for every family,
// in dominance order — the annotation of §III-B.
func (fs Families) MainKeys(e *entity.Entity) []string {
	keys := make([]string, len(fs))
	for i, f := range fs {
		keys[i] = f.Key(e, 1)
	}
	return keys
}

// CiteSeerXFamilies returns the Table-II blocking configuration for the
// publications schema: title prefixes 2/4/8, abstract prefixes 3/5,
// venue prefixes 3/5, with X ≻ Y ≻ Z.
func CiteSeerXFamilies(schema *entity.Schema) Families {
	return Families{
		{Name: "X", Attr: schema.Index("title"), PrefixLens: []int{2, 4, 8}, Index: 1},
		{Name: "Y", Attr: schema.Index("abstract"), PrefixLens: []int{3, 5}, Index: 2},
		{Name: "Z", Attr: schema.Index("venue"), PrefixLens: []int{3, 5}, Index: 3},
	}
}

// OLBooksFamilies returns the Table-II blocking configuration for the
// books schema: title prefixes 3/5/8, authors prefixes 3/5, publisher
// prefixes 3/5, with X ≻ Y ≻ Z.
func OLBooksFamilies(schema *entity.Schema) Families {
	return Families{
		{Name: "X", Attr: schema.Index("title"), PrefixLens: []int{3, 5, 8}, Index: 1},
		{Name: "Y", Attr: schema.Index("authors"), PrefixLens: []int{3, 5}, Index: 2},
		{Name: "Z", Attr: schema.Index("publisher"), PrefixLens: []int{3, 5}, Index: 3},
	}
}

// BlockID names one block: the family, the blocking-function level
// within the family (1 = root/main), and the blocking key value.
type BlockID struct {
	Family int8 // index into Families (0-based, dominance order)
	Level  int8 // 1-based level
	Key    string
}

// String renders like "X2(jo)" — family name unavailable here, so the
// family's position is printed.
func (b BlockID) String() string {
	return fmt.Sprintf("F%d.L%d(%s)", b.Family, b.Level, b.Key)
}

// TreeKey returns the BlockID of the tree root this block descends
// from, under prefix nesting (the root key is the block key truncated
// to the family's level-1 prefix length).
func (b BlockID) TreeKey(fams Families) BlockID {
	rootLen := fams[b.Family].PrefixLens[0]
	key := b.Key
	if len(key) > rootLen {
		key = key[:rootLen]
	}
	return BlockID{Family: b.Family, Level: 1, Key: key}
}
