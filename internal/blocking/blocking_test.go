package blocking

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"proger/internal/costmodel"
	"proger/internal/datagen"
	"proger/internal/entity"
	"proger/internal/mapreduce"
)

// peopleFamilies mirrors the paper's Table-I example: X keys on the
// first 2 chars of name (sub-levels 3 and 5), Y keys on state.
func peopleFamilies() Families {
	return Families{
		{Name: "X", Attr: 0, PrefixLens: []int{2, 3, 5}, Index: 1},
		{Name: "Y", Attr: 1, PrefixLens: []int{2}, Index: 2},
	}
}

func TestFamilyKey(t *testing.T) {
	fam := &Family{Name: "X", Attr: 0, PrefixLens: []int{2, 4}, Index: 1}
	e := &entity.Entity{Attrs: []string{"John Lopez"}}
	if got := fam.Key(e, 1); got != "jo" {
		t.Errorf("level 1 key = %q, want jo", got)
	}
	if got := fam.Key(e, 2); got != "john" {
		t.Errorf("level 2 key = %q, want john", got)
	}
	short := &entity.Entity{Attrs: []string{"Al"}}
	if got := fam.Key(short, 2); got != "al" {
		t.Errorf("short value key = %q, want al", got)
	}
	empty := &entity.Entity{Attrs: []string{""}}
	if got := fam.Key(empty, 1); got != "" {
		t.Errorf("empty value key = %q, want empty", got)
	}
}

func TestFamilyKeyPanicsOutOfRange(t *testing.T) {
	fam := &Family{Name: "X", Attr: 0, PrefixLens: []int{2}, Index: 1}
	defer func() {
		if recover() == nil {
			t.Error("Key(level 2) with 1 level should panic")
		}
	}()
	fam.Key(&entity.Entity{Attrs: []string{"abc"}}, 2)
}

func TestFamiliesValidate(t *testing.T) {
	good := peopleFamilies()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid families rejected: %v", err)
	}
	bad := []Families{
		{},
		{{Name: "", Attr: 0, PrefixLens: []int{2}, Index: 1}},
		{{Name: "X", Attr: -1, PrefixLens: []int{2}, Index: 1}},
		{{Name: "X", Attr: 0, PrefixLens: nil, Index: 1}},
		{{Name: "X", Attr: 0, PrefixLens: []int{2, 2}, Index: 1}},
		{{Name: "X", Attr: 0, PrefixLens: []int{2}, Index: 2}}, // wrong order position
		{
			{Name: "X", Attr: 0, PrefixLens: []int{2}, Index: 1},
			{Name: "X", Attr: 1, PrefixLens: []int{2}, Index: 2}, // dup name
		},
	}
	for i, fs := range bad {
		if err := fs.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestMainKeysAnnotation(t *testing.T) {
	fs := peopleFamilies()
	e := &entity.Entity{Attrs: []string{"John Lopez", "HI"}}
	keys := fs.MainKeys(e)
	if !reflect.DeepEqual(keys, []string{"jo", "hi"}) {
		t.Errorf("MainKeys = %v", keys)
	}
}

func TestBuildTreeNesting(t *testing.T) {
	ds, _ := datagen.People()
	fam := peopleFamilies()[0]
	keys, groups := GroupByMainKey(ds, fam)
	if len(keys) != 5 {
		// jo(e1,e2,e3,e9... wait: Joey→jo too), ch/gh/ma/wi...
		t.Logf("main keys: %v", keys)
	}
	for _, k := range keys {
		tree := BuildTree(fam, 0, k, groups[k])
		// Invariants: root size = group size; child sizes sum to parent
		// size at every node; child keys extend parent key.
		if tree.Root.Size != len(groups[k]) {
			t.Errorf("root %s size %d, want %d", tree.Root.ID, tree.Root.Size, len(groups[k]))
		}
		tree.Root.Walk(func(b *Block) {
			if len(b.Children) == 0 {
				return
			}
			sum := 0
			for _, c := range b.Children {
				sum += c.Size
				if c.Parent != b {
					t.Errorf("child %s parent link broken", c.ID)
				}
				if c.ID.Level != b.ID.Level+1 {
					t.Errorf("child %s level should be %d", c.ID, b.ID.Level+1)
				}
				// Child key must extend (or equal, for short values)
				// the parent key.
				if len(c.ID.Key) >= len(b.ID.Key) {
					if c.ID.Key[:len(b.ID.Key)] != b.ID.Key {
						t.Errorf("child key %q does not extend parent %q", c.ID.Key, b.ID.Key)
					}
				}
			}
			if sum != b.Size {
				t.Errorf("children of %s sum to %d, parent size %d", b.ID, sum, b.Size)
			}
		})
	}
}

func TestBuildTreePeopleStructure(t *testing.T) {
	// The "jo" tree: John Lopez ×3 + Joey Brown. Level 2 (prefix 3)
	// splits joh|joe; level 3 (prefix 5) keeps john |joey .
	ds, _ := datagen.People()
	fam := peopleFamilies()[0]
	_, groups := GroupByMainKey(ds, fam)
	tree := BuildTree(fam, 0, "jo", groups["jo"])
	if tree.Root.Size != 4 {
		t.Fatalf("jo root size = %d, want 4", tree.Root.Size)
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("jo root children = %d, want 2 (joe, joh)", len(tree.Root.Children))
	}
	// Children sorted by key: joe < joh.
	if tree.Root.Children[0].ID.Key != "joe" || tree.Root.Children[1].ID.Key != "joh" {
		t.Errorf("children keys = %s, %s", tree.Root.Children[0].ID.Key, tree.Root.Children[1].ID.Key)
	}
	if tree.Root.Children[1].Size != 3 {
		t.Errorf("joh size = %d, want 3", tree.Root.Children[1].Size)
	}
}

func TestComputeUncovMostDominatingIsZero(t *testing.T) {
	ds, _ := datagen.People()
	fs := peopleFamilies()
	_, groups := GroupByMainKey(ds, fs[0])
	tree := BuildTree(fs[0], 0, "jo", groups["jo"])
	var mainKeys [][]string
	for _, e := range groups["jo"] {
		mainKeys = append(mainKeys, fs.MainKeys(e))
	}
	ComputeUncov(fs[0], tree, groups["jo"], mainKeys)
	tree.Root.Walk(func(b *Block) {
		if b.Uncov != 0 {
			t.Errorf("block %s of dominating family has Uncov %d", b.ID, b.Uncov)
		}
	})
}

func TestComputeUncovDominatedFamily(t *testing.T) {
	// Y blocks on state. Block "hi" = {e0,e1}: both share X-block "jo"
	// → 1 uncovered pair. Block "az" = {e2,e5,e6,e7}: X keys jo, ma,
	// ch, wi — all distinct → 0 uncovered. Block "la" = {e3,e4,e8}:
	// X keys ch, gh, jo → 0 uncovered.
	ds, _ := datagen.People()
	fs := peopleFamilies()
	famY := fs[1]
	_, groups := GroupByMainKey(ds, famY)
	for key, want := range map[string]int64{"hi": 1, "az": 0, "la": 0} {
		ents := groups[key]
		tree := BuildTree(famY, 1, key, ents)
		var mainKeys [][]string
		for _, e := range ents {
			mainKeys = append(mainKeys, fs.MainKeys(e))
		}
		ComputeUncov(famY, tree, ents, mainKeys)
		if tree.Root.Uncov != want {
			t.Errorf("Uncov(Y(%s)) = %d, want %d", key, tree.Root.Uncov, want)
		}
	}
}

func TestUncovInclusionExclusion(t *testing.T) {
	// Three families; block under the 3rd family with members sharing
	// keys in families 1 and 2. Members' (f1,f2) keys:
	//   a: (k1, m1), b: (k1, m1), c: (k1, m2), d: (k9, m2)
	// Pairs sharing f1 key: ab, ac, bc = 3. Sharing f2: ab, cd = 2.
	// Sharing both: ab = 1. Uncov = 3 + 2 − 1 = 4.
	mainKeys := [][]string{
		{"k1", "m1", "z"},
		{"k1", "m1", "z"},
		{"k1", "m2", "z"},
		{"k9", "m2", "z"},
	}
	got := uncovPairs([]int{0, 1, 2, 3}, mainKeys, 2)
	if got != 4 {
		t.Errorf("uncovPairs = %d, want 4", got)
	}
}

func TestUncovPairsEdgeCases(t *testing.T) {
	if uncovPairs(nil, nil, 2) != 0 {
		t.Error("empty members should give 0")
	}
	if uncovPairs([]int{0}, [][]string{{"a", "b"}}, 1) != 0 {
		t.Error("single member should give 0")
	}
	if uncovPairs([]int{0, 1}, [][]string{{"a"}, {"a"}}, 0) != 0 {
		t.Error("famIdx 0 should give 0")
	}
}

func TestCovUncovPairsProperty(t *testing.T) {
	// Cov + Uncov = Pairs(size) must hold once Cov is derived; here we
	// validate Uncov ≤ Pairs(size) on generated data.
	ds, _ := datagen.Publications(datagen.DefaultPublications(800, 21))
	fs := CiteSeerXFamilies(ds.Schema)
	for famIdx := range fs {
		keys, groups := GroupByMainKey(ds, fs[famIdx])
		for _, k := range keys {
			ents := groups[k]
			tree := BuildTree(fs[famIdx], famIdx, k, ents)
			mainKeys := make([][]string, len(ents))
			for i, e := range ents {
				mainKeys[i] = fs.MainKeys(e)
			}
			ComputeUncov(fs[famIdx], tree, ents, mainKeys)
			tree.Root.Walk(func(b *Block) {
				if b.Uncov < 0 || b.Uncov > entity.Pairs(b.Size) {
					t.Errorf("block %s: Uncov %d outside [0, %d]", b.ID, b.Uncov, entity.Pairs(b.Size))
				}
			})
		}
	}
}

func TestAnnotatedCodecRoundTrip(t *testing.T) {
	e := &entity.Entity{ID: 17, Attrs: []string{"Entity Resolution", "HI"}}
	a := &Annotated{Ent: e, MainKeys: []string{"en", "hi"}}
	buf := EncodeAnnotated(nil, a)
	got, n, err := DecodeAnnotated(buf)
	if err != nil {
		t.Fatalf("DecodeAnnotated: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if !entity.Equal(got.Ent, e) || !reflect.DeepEqual(got.MainKeys, a.MainKeys) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeAnnotated(buf[:cut]); err == nil {
			t.Errorf("truncated at %d: want error", cut)
		}
	}
}

func TestStatCodecRoundTrip(t *testing.T) {
	s := &BlockStat{
		ID:        BlockID{Family: 2, Level: 3, Key: "abc"},
		Size:      42,
		Uncov:     17,
		ChildKeys: []string{"abcd", "abce"},
	}
	buf := EncodeStat(nil, s)
	got, n, err := DecodeStat(buf)
	if err != nil {
		t.Fatalf("DecodeStat: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip: %+v vs %+v", got, s)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeStat(buf[:cut]); err == nil {
			t.Errorf("truncated at %d: want error", cut)
		}
	}
}

func TestStatCodecNoChildren(t *testing.T) {
	s := &BlockStat{ID: BlockID{Family: 0, Level: 1, Key: ""}, Size: 1}
	got, _, err := DecodeStat(EncodeStat(nil, s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 1 || len(got.ChildKeys) != 0 || got.ID.Key != "" {
		t.Errorf("round trip: %+v", got)
	}
}

func TestJob1KeyRoundTrip(t *testing.T) {
	k := Job1KeyOf(2, "jo|weird")
	fam, key, err := ParseJob1Key(k)
	if err != nil || fam != 2 || key != "jo|weird" {
		t.Errorf("ParseJob1Key = %d,%q,%v", fam, key, err)
	}
	if _, _, err := ParseJob1Key("nokey"); err == nil {
		t.Error("malformed key: want error")
	}
}

func TestRunJob1EndToEnd(t *testing.T) {
	ds, _ := datagen.People()
	fs := peopleFamilies()
	cluster := mapreduce.Cluster{Machines: 2, SlotsPerMachine: 2}
	stats, res, err := RunJob1(ds, fs, cluster, costmodel.Default(), 0)
	if err != nil {
		t.Fatalf("RunJob1: %v", err)
	}
	if res.Counters.Get("job1.entities") != 9 {
		t.Errorf("entities counter = %d", res.Counters.Get("job1.entities"))
	}
	// Trees: X has 6 main keys (jo, ch, gh, ma, wi) — John/Joey share
	// jo → 5 X-trees; Y has 3 states → 3 Y-trees → 8 trees.
	if res.Counters.Get("job1.trees") != 8 {
		t.Errorf("trees counter = %d, want 8", res.Counters.Get("job1.trees"))
	}
	// The X root "jo" must exist with size 4.
	jo := stats.Get(BlockID{Family: 0, Level: 1, Key: "jo"})
	if jo == nil || jo.Size != 4 {
		t.Fatalf("stat for X(jo) = %+v", jo)
	}
	// The Y root "hi" must have Uncov 1 (pair e0,e1 shared with X(jo)).
	hi := stats.Get(BlockID{Family: 1, Level: 1, Key: "hi"})
	if hi == nil || hi.Uncov != 1 {
		t.Fatalf("stat for Y(hi) = %+v", hi)
	}
	// Forest reconstruction round-trips the tree structure.
	trees, err := stats.BuildForests(fs)
	if err != nil {
		t.Fatalf("BuildForests: %v", err)
	}
	if len(trees) != 8 {
		t.Fatalf("forests have %d trees, want 8", len(trees))
	}
	// Deterministic order: family 0 trees first, sorted by key.
	if trees[0].Root.ID.Family != 0 {
		t.Error("first tree should belong to family 0")
	}
	for i := 1; i < len(trees); i++ {
		a, b := trees[i-1].Root.ID, trees[i].Root.ID
		if a.Family > b.Family || (a.Family == b.Family && a.Key >= b.Key) {
			t.Errorf("trees out of order: %s before %s", a, b)
		}
	}
	// Every reconstructed block matches its stat.
	for _, tr := range trees {
		tr.Root.Walk(func(b *Block) {
			s := stats.Get(b.ID)
			if s == nil {
				t.Errorf("no stat for %s", b.ID)
				return
			}
			if b.Size != s.Size || b.Uncov != s.Uncov || len(b.Children) != len(s.ChildKeys) {
				t.Errorf("block %s mismatch with stat", b.ID)
			}
		})
	}
}

func TestRunJob1DeterministicOnGeneratedData(t *testing.T) {
	ds, _ := datagen.Publications(datagen.DefaultPublications(400, 5))
	fs := CiteSeerXFamilies(ds.Schema)
	cluster := mapreduce.Cluster{Machines: 3, SlotsPerMachine: 2}
	stats1, res1, err := RunJob1(ds, fs, cluster, costmodel.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	stats2, res2, err := RunJob1(ds, fs, cluster, costmodel.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats1.Blocks) != len(stats2.Blocks) {
		t.Error("stat counts differ between runs")
	}
	if res1.End != res2.End {
		t.Error("timelines differ between runs")
	}
	// Total size of root blocks per family = dataset size.
	for famIdx := range fs {
		total := 0
		for id, s := range stats1.Blocks {
			if id.Family == int8(famIdx) && id.Level == 1 {
				total += s.Size
			}
		}
		if total != ds.Len() {
			t.Errorf("family %d root sizes sum to %d, want %d", famIdx, total, ds.Len())
		}
	}
}

func TestBlockIDTreeKey(t *testing.T) {
	fs := peopleFamilies()
	id := BlockID{Family: 0, Level: 3, Key: "johnl"}
	root := id.TreeKey(fs)
	if root.Key != "jo" || root.Level != 1 || root.Family != 0 {
		t.Errorf("TreeKey = %+v", root)
	}
	short := BlockID{Family: 0, Level: 2, Key: "a"}
	if got := short.TreeKey(fs); got.Key != "a" {
		t.Errorf("short TreeKey = %+v", got)
	}
}

func TestWalkAndDescendants(t *testing.T) {
	root := &Block{ID: BlockID{Key: "r"}}
	c1 := &Block{ID: BlockID{Key: "c1"}, Parent: root}
	c2 := &Block{ID: BlockID{Key: "c2"}, Parent: root}
	g := &Block{ID: BlockID{Key: "g"}, Parent: c1}
	root.Children = []*Block{c1, c2}
	c1.Children = []*Block{g}
	var order []string
	root.Walk(func(b *Block) { order = append(order, b.ID.Key) })
	if !reflect.DeepEqual(order, []string{"r", "c1", "g", "c2"}) {
		t.Errorf("walk order = %v", order)
	}
	desc := root.Descendants()
	if len(desc) != 3 {
		t.Errorf("descendants = %d, want 3", len(desc))
	}
	if !root.IsRoot() || root.IsLeaf() || !g.IsLeaf() || g.IsRoot() {
		t.Error("IsRoot/IsLeaf misbehave")
	}
}

func TestSoundexFamilyKeys(t *testing.T) {
	fam := &Family{Name: "S", Attr: 0, PrefixLens: []int{2, 4}, Index: 1, Kind: KeySoundex}
	robert := &entity.Entity{Attrs: []string{"Robert Johnson"}}
	rupert := &entity.Entity{Attrs: []string{"Rupert Smith"}}
	if fam.Key(robert, 2) != "R163" || fam.Key(rupert, 2) != "R163" {
		t.Errorf("soundex keys: %q, %q", fam.Key(robert, 2), fam.Key(rupert, 2))
	}
	if fam.Key(robert, 1) != "R1" {
		t.Errorf("level-1 soundex prefix = %q", fam.Key(robert, 1))
	}
	// Nesting: the level-2 key extends the level-1 key.
	if fam.Key(robert, 2)[:2] != fam.Key(robert, 1) {
		t.Error("soundex levels do not nest")
	}
	if KeySoundex.String() != "soundex" || KeyPrefix.String() != "prefix" {
		t.Error("KeyKind strings")
	}
}

func TestSoundexFamilyPipelineBuildTree(t *testing.T) {
	ds := entity.NewDataset(entity.MustSchema("name"))
	for _, n := range []string{"Robert Alpha", "Rupert Beta", "Lee Gamma", "Leigh Delta"} {
		ds.Append(n)
	}
	fam := &Family{Name: "S", Attr: 0, PrefixLens: []int{1, 4}, Index: 1, Kind: KeySoundex}
	keys, groups := GroupByMainKey(ds, fam)
	// Robert/Rupert → R…; Lee/Leigh → L…
	if len(keys) != 2 {
		t.Fatalf("main keys = %v", keys)
	}
	tree := BuildTree(fam, 0, "R", groups["R"])
	if tree.Root.Size != 2 {
		t.Errorf("R tree size = %d", tree.Root.Size)
	}
}

func TestStatsIORoundTrip(t *testing.T) {
	ds, _ := datagen.Publications(datagen.DefaultPublications(400, 9))
	fs := CiteSeerXFamilies(ds.Schema)
	cluster := mapreduce.Cluster{Machines: 2, SlotsPerMachine: 2}
	stats, _, err := RunJob1(ds, fs, cluster, costmodel.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStats(&buf, stats); err != nil {
		t.Fatalf("WriteStats: %v", err)
	}
	back, err := ReadStats(&buf)
	if err != nil {
		t.Fatalf("ReadStats: %v", err)
	}
	if len(back.Blocks) != len(stats.Blocks) {
		t.Fatalf("blocks = %d, want %d", len(back.Blocks), len(stats.Blocks))
	}
	for id, s := range stats.Blocks {
		b := back.Get(id)
		if b == nil || b.Size != s.Size || b.Uncov != s.Uncov || len(b.ChildKeys) != len(s.ChildKeys) {
			t.Fatalf("stat %s differs after round trip", id)
		}
	}
	// The reloaded stats rebuild the same forests.
	t1, err := stats.BuildForests(fs)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := back.BuildForests(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Errorf("forest sizes differ: %d vs %d", len(t1), len(t2))
	}
}

func TestReadStatsErrors(t *testing.T) {
	if _, err := ReadStats(strings.NewReader("\x05ab")); err == nil {
		t.Error("truncated record: want error")
	}
	st, err := ReadStats(strings.NewReader(""))
	if err != nil || len(st.Blocks) != 0 {
		t.Errorf("empty stream: %v, %d blocks", err, len(st.Blocks))
	}
}
