package blocking

// StatsHolder keeps the Job-1 block statistics resident under the
// process-wide memory budget. The statistics live across the whole
// pipeline — Job 2's schedule generation reloads them long after Job 1
// finished — which makes them a prime eviction candidate when the
// shuffle needs headroom. The holder registers a spillable budget
// account: under pressure the stats serialize to one file (statsio
// codec) and the in-memory index is dropped; Acquire transparently
// reloads and re-charges them.
//
// With a nil manager the holder is pure pass-through: no accounting,
// no spilling, no temp files.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"proger/internal/membudget"
)

// statsMemBytes approximates the resident size of the stats index:
// per-block map entry and struct overhead plus key/child payloads.
// Like the shuffle's estimator, it is deliberately cheap — the budget
// enforces on tracked bytes, not allocator truth.
func statsMemBytes(st *Stats) int64 {
	if st == nil {
		return 0
	}
	var b int64
	for id, s := range st.Blocks {
		b += 64 + int64(len(id.Key)) + int64(len(s.ID.Key))
		for _, ck := range s.ChildKeys {
			b += 16 + int64(len(ck))
		}
	}
	return b
}

// StatsHolder owns a *Stats that may be spilled to disk between uses.
type StatsHolder struct {
	mu     sync.Mutex
	stats  *Stats // nil while spilled
	path   string // spill file; "" while resident
	dir    string // lazily created private temp dir
	parent string
	acct   *membudget.Account
	bytes  int64
	pins   int
}

// NewStatsHolder wraps st under mgr's budget, spilling into a private
// directory under parent (system temp when empty). The initial
// residency is charged immediately — which may itself force other
// holders to spill.
func NewStatsHolder(st *Stats, mgr *membudget.Manager, parent string) (*StatsHolder, error) {
	h := &StatsHolder{stats: st, parent: parent, bytes: statsMemBytes(st)}
	h.acct = mgr.NewAccount("blocking/stats", h.spill)
	if err := h.acct.Charge(h.bytes); err != nil {
		h.acct.Close()
		return nil, err
	}
	return h, nil
}

// Acquire returns the resident stats, reloading them from the spill
// file if the budget evicted them, and pins them resident until the
// matching Release. Pinning happens before the reload is charged, so
// the charge can never pick this holder as its own victim.
func (h *StatsHolder) Acquire() (*Stats, error) {
	h.mu.Lock()
	h.pins++
	if h.stats != nil {
		st := h.stats
		h.mu.Unlock()
		return st, nil
	}
	path := h.path
	h.mu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		h.unpin()
		return nil, fmt.Errorf("blocking: reloading spilled stats: %w", err)
	}
	st, err := ReadStats(f)
	f.Close()
	if err != nil {
		h.unpin()
		return nil, fmt.Errorf("blocking: reloading spilled stats: %w", err)
	}
	if err := h.acct.Charge(h.bytes); err != nil {
		h.unpin()
		return nil, err
	}
	h.mu.Lock()
	h.stats = st
	h.path = ""
	h.mu.Unlock()
	return st, nil
}

// Release unpins the stats, making them evictable again.
func (h *StatsHolder) Release() { h.unpin() }

func (h *StatsHolder) unpin() {
	h.mu.Lock()
	h.pins--
	h.mu.Unlock()
}

// spill is the budget callback: serialize the stats to disk, drop the
// index, and report the freed bytes. Pinned or already-spilled stats
// report no progress.
func (h *StatsHolder) spill() (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.pins > 0 || h.stats == nil {
		return 0, nil
	}
	if h.dir == "" {
		dir, err := os.MkdirTemp(h.parent, "proger-stats-*")
		if err != nil {
			return 0, err
		}
		h.dir = dir
	}
	path := filepath.Join(h.dir, "stats.spill")
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := WriteStats(f, h.stats); err != nil {
		f.Close()
		os.Remove(path)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return 0, err
	}
	h.stats = nil
	h.path = path
	return h.bytes, nil
}

// Close releases the account and removes any spill artifacts.
func (h *StatsHolder) Close() error {
	h.mu.Lock()
	dir := h.dir
	h.dir, h.path, h.stats = "", "", nil
	h.mu.Unlock()
	h.acct.Close()
	if dir != "" {
		return os.RemoveAll(dir)
	}
	return nil
}
