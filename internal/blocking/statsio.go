package blocking

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// WriteStats serializes a Stats index as a stream of length-prefixed
// BlockStat records, in deterministic (block-ID) order. This is the
// on-disk form of Job 1's output: persist it once, rerun Job 2 (or
// regenerate schedules with different parameters) without repeating the
// blocking pass.
func WriteStats(w io.Writer, st *Stats) error {
	ids := make([]BlockID, 0, len(st.Blocks))
	for id := range st.Blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		return a.Key < b.Key
	})
	bw := bufio.NewWriter(w)
	var lenBuf [binary.MaxVarintLen64]byte
	for _, id := range ids {
		rec := EncodeStat(nil, st.Blocks[id])
		n := binary.PutUvarint(lenBuf[:], uint64(len(rec)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return fmt.Errorf("blocking: writing stats: %w", err)
		}
		if _, err := bw.Write(rec); err != nil {
			return fmt.Errorf("blocking: writing stats: %w", err)
		}
	}
	return bw.Flush()
}

// ReadStats parses a stream written by WriteStats.
func ReadStats(r io.Reader) (*Stats, error) {
	br := bufio.NewReader(r)
	var list []*BlockStat
	for {
		l, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("blocking: reading stats length: %w", err)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("blocking: reading stats record: %w", err)
		}
		s, _, err := DecodeStat(buf)
		if err != nil {
			return nil, err
		}
		list = append(list, s)
	}
	return NewStats(list), nil
}
