package blocking

import (
	"fmt"
	"sort"

	"proger/internal/datagen"
	"proger/internal/entity"
)

// This file implements the §IV-A observation that the dominance order
// ≻_F "can be specified even more easily if the set of blocking
// functions is automatically determined using approaches such as
// [Bilenko et al. 2006]": estimate, per candidate family, the number of
// duplicate and total pairs inside its blocks on a training sample, and
// order families by duplicate density (duplicates / total pairs).

// FamilyQuality reports how good a candidate blocking family is on a
// training dataset.
type FamilyQuality struct {
	Family *Family
	// DupPairs is the number of ground-truth duplicate pairs co-blocked
	// by the family's main function.
	DupPairs int64
	// TotalPairs is the number of pairs its main blocks contain.
	TotalPairs int64
	// Density = DupPairs / TotalPairs — the paper's ordering criterion.
	Density float64
	// Coverage = DupPairs / all ground-truth pairs: how many duplicates
	// the family can find at all.
	Coverage float64
}

// EvaluateFamily measures a candidate family on a training dataset.
func EvaluateFamily(ds *entity.Dataset, gt *datagen.GroundTruth, fam *Family) FamilyQuality {
	q := FamilyQuality{Family: fam}
	_, groups := GroupByMainKey(ds, fam)
	for _, ents := range groups {
		q.TotalPairs += entity.Pairs(len(ents))
		counts := map[int]int{}
		for _, e := range ents {
			if int(e.ID) < len(gt.ClusterOf) {
				counts[gt.ClusterOf[e.ID]]++
			}
		}
		for _, c := range counts {
			q.DupPairs += entity.Pairs(c)
		}
	}
	if q.TotalPairs > 0 {
		q.Density = float64(q.DupPairs) / float64(q.TotalPairs)
	}
	if total := gt.NumDupPairs(); total > 0 {
		q.Coverage = float64(q.DupPairs) / float64(total)
	}
	return q
}

// SuggestFamilies evaluates the candidate families on a training
// dataset, discards those whose duplicate coverage falls below
// minCoverage, orders the survivors by non-increasing duplicate density
// (the paper's ≻_F criterion), and renumbers their dominance indexes
// accordingly. At least one family always survives (the best one).
func SuggestFamilies(ds *entity.Dataset, gt *datagen.GroundTruth, candidates []*Family, minCoverage float64) (Families, []FamilyQuality, error) {
	if len(candidates) == 0 {
		return nil, nil, fmt.Errorf("blocking: no candidate families")
	}
	quals := make([]FamilyQuality, 0, len(candidates))
	for _, f := range candidates {
		if err := validateCandidate(f); err != nil {
			return nil, nil, err
		}
		quals = append(quals, EvaluateFamily(ds, gt, f))
	}
	sort.SliceStable(quals, func(i, j int) bool { return quals[i].Density > quals[j].Density })

	kept := make(Families, 0, len(quals))
	for _, q := range quals {
		if q.Coverage < minCoverage && len(kept) > 0 {
			continue
		}
		f := *q.Family // copy so the caller's candidate keeps its index
		f.Index = len(kept) + 1
		kept = append(kept, &f)
	}
	if err := kept.Validate(); err != nil {
		return nil, nil, err
	}
	return kept, quals, nil
}

// validateCandidate checks everything Family.Validate does except the
// dominance index, which SuggestFamilies assigns itself.
func validateCandidate(f *Family) error {
	tmp := *f
	tmp.Index = 1
	return tmp.Validate()
}
