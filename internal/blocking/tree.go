package blocking

import (
	"fmt"
	"sort"

	"proger/internal/entity"
)

// Block is one node of a blocking tree: the block identity, the Job-1
// statistics, and the estimation/scheduling fields filled in later by
// internal/estimate and internal/sched. Keeping them on the node keeps
// the whole schedule-generation pipeline allocation-light and mirrors
// the paper's per-block values (Cov, Dup, Cost, Util, Th, Frac, SQ).
type Block struct {
	ID   BlockID
	Size int
	// Uncov is the number of pairs in this block whose responsible tree
	// belongs to a more dominating family (Section IV-A); computed by
	// Job 1 via inclusion-exclusion.
	Uncov int64

	Parent   *Block
	Children []*Block

	// ---- filled by internal/estimate ----

	// Cov = Pairs(Size) − Uncov: pairs this block's tree is responsible for.
	Cov int64
	// DSelf is d(X): the estimated number of covered duplicate pairs in
	// this block (§IV-B), before the Frac/child adjustments of Eq. 2.
	DSelf float64
	// DupEst is Dup(X): expected duplicate pairs found when resolving
	// this block (Eq. 2).
	DupEst float64
	// CostEst is Cost(X): Eq. 3 for non-root blocks, Eq. 5 for roots.
	CostEst float64
	// Util = DupEst / CostEst.
	Util float64
	// Frac is the fraction of d(X) expected to be found by the partial
	// resolve (§IV-B); 1 for blocks resolved fully.
	Frac float64
	// Th is the termination threshold: the partial resolve stops after
	// Th distinct pairs (§III-A); ignored for root blocks.
	Th int64
	// DisEst is the estimated number of distinct pairs resolved when
	// this block is resolved partially (min(Th, Remain); §IV-B).
	DisEst float64

	// ---- filled by internal/sched ----

	// FullResolve marks blocks resolved to completion: tree roots and
	// the roots of split-off subtrees.
	FullResolve bool
	// SQ is the sequence value routing this block to its reduce task
	// and position in the task's block schedule (§III-B).
	SQ int64
}

// IsLeaf reports whether the block has no children.
func (b *Block) IsLeaf() bool { return len(b.Children) == 0 }

// IsRoot reports whether the block is a tree root (level 1, or the
// detached root of a split subtree).
func (b *Block) IsRoot() bool { return b.Parent == nil }

// Walk visits b and all descendants preorder (parent before children).
func (b *Block) Walk(fn func(*Block)) {
	fn(b)
	for _, c := range b.Children {
		c.Walk(fn)
	}
}

// Descendants returns all blocks strictly below b, preorder.
func (b *Block) Descendants() []*Block {
	var out []*Block
	for _, c := range b.Children {
		c.Walk(func(x *Block) { out = append(out, x) })
	}
	return out
}

// Tree is a rooted blocking tree: the root is a main block (or, after
// splitting, a detached sub-block that is now resolved fully).
type Tree struct {
	Root *Block
	// Dom is the tree's unique dominance value, assigned during
	// schedule generation and used by the redundancy-free resolution
	// check (Section V).
	Dom int32
}

// Blocks returns every block of the tree, preorder (root first).
func (t *Tree) Blocks() []*Block {
	var out []*Block
	t.Root.Walk(func(b *Block) { out = append(out, b) })
	return out
}

// String identifies the tree by its root.
func (t *Tree) String() string { return fmt.Sprintf("T(%s)", t.Root.ID) }

// BuildTree constructs the blocking tree of one main block from its
// member entities by recursively applying the family's sub-blocking
// functions. famIdx is the family's 0-based position in Families.
// Entities are not retained; only structure and sizes.
func BuildTree(fam *Family, famIdx int, rootKey string, ents []*entity.Entity) *Tree {
	root := buildBlock(fam, famIdx, 1, rootKey, ents)
	return &Tree{Root: root}
}

func buildBlock(fam *Family, famIdx int, level int, key string, ents []*entity.Entity) *Block {
	b := &Block{
		ID:   BlockID{Family: int8(famIdx), Level: int8(level), Key: key},
		Size: len(ents),
	}
	if level >= fam.Levels() {
		return b
	}
	groups := map[string][]*entity.Entity{}
	for _, e := range ents {
		k := fam.Key(e, level+1)
		groups[k] = append(groups[k], e)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		child := buildBlock(fam, famIdx, level+1, k, groups[k])
		child.Parent = b
		b.Children = append(b.Children, child)
	}
	return b
}

// GroupByMainKey partitions the dataset's entities by their level-1 key
// under one family, returning keys in sorted order. This is the
// in-memory equivalent of what Job 1's shuffle does, used by tests and
// the toy examples.
func GroupByMainKey(ds *entity.Dataset, fam *Family) (keys []string, groups map[string][]*entity.Entity) {
	groups = map[string][]*entity.Entity{}
	for _, e := range ds.Entities {
		k := fam.Key(e, 1)
		groups[k] = append(groups[k], e)
	}
	keys = make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, groups
}

// ComputeUncov fills Uncov for every block of a tree of family famIdx,
// given each member entity's annotated main keys (in dominance order).
// A pair of the block is *uncovered* when its two entities share a main
// block under some more-dominating family; the count is the
// inclusion-exclusion sum of §IV-A. ents must be the root block's
// member set; sub-block membership is recomputed via fam.Key.
func ComputeUncov(fam *Family, tree *Tree, ents []*entity.Entity, mainKeys [][]string) {
	famIdx := int(tree.Root.ID.Family)
	if famIdx == 0 {
		// Most dominating family: Uncov ≡ 0 (nothing dominates it).
		tree.Root.Walk(func(b *Block) { b.Uncov = 0 })
		return
	}
	// Index members of every (level, key) block in one pass.
	members := map[BlockID][]int{}
	for i, e := range ents {
		for l := 1; l <= fam.Levels(); l++ {
			id := BlockID{Family: int8(famIdx), Level: int8(l), Key: fam.Key(e, l)}
			members[id] = append(members[id], i)
		}
	}
	tree.Root.Walk(func(b *Block) {
		b.Uncov = uncovPairs(members[b.ID], mainKeys, famIdx)
	})
}

// uncovPairs counts pairs among members sharing at least one main key
// under families 0..famIdx-1, by inclusion-exclusion over non-empty
// subsets of those families. mainKeys[i] is entity i's annotated main
// keys in dominance order.
func uncovPairs(members []int, mainKeys [][]string, famIdx int) int64 {
	if len(members) < 2 || famIdx == 0 {
		return 0
	}
	var total int64
	nSubsets := 1 << famIdx
	for mask := 1; mask < nSubsets; mask++ {
		groups := map[string]int{}
		for _, i := range members {
			key := ""
			for f := 0; f < famIdx; f++ {
				if mask&(1<<f) != 0 {
					key += mainKeys[i][f] + "\x00"
				}
			}
			groups[key]++
		}
		var sum int64
		for _, c := range groups {
			sum += entity.Pairs(c)
		}
		if popcount(mask)%2 == 1 {
			total += sum
		} else {
			total -= sum
		}
	}
	if total < 0 {
		total = 0
	}
	return total
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
