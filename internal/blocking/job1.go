package blocking

import (
	"fmt"
	"strconv"

	"proger/internal/costmodel"
	"proger/internal/entity"
	"proger/internal/mapreduce"
)

// This file implements the paper's first MapReduce job (§III-B):
// progressive blocking plus statistics gathering. The map phase
// annotates each entity with its main blocking keys and routes one copy
// per family to the reduce task owning that family's main block. Each
// reduce call sees one main block, builds its blocking tree by applying
// the family's sub-blocking functions, computes per-block sizes, child
// keys, and uncovered-pair counts, and emits one BlockStat per block.

// Job1KeyOf builds the map-output key for a (family, main key) block.
// The family index is prefixed so blocks of different families with the
// same key value are never grouped together (the paper's footnote 3).
func Job1KeyOf(famIdx int, mainKey string) string {
	return strconv.Itoa(famIdx) + "|" + mainKey
}

// ParseJob1Key inverts Job1KeyOf.
func ParseJob1Key(key string) (famIdx int, mainKey string, err error) {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			famIdx, err = strconv.Atoi(key[:i])
			return famIdx, key[i+1:], err
		}
	}
	return 0, "", fmt.Errorf("blocking: malformed job-1 key %q", key)
}

// Job1Mapper annotates entities and emits one (block key, annotated
// entity) pair per family.
type Job1Mapper struct {
	mapreduce.MapperBase
	Families Families
}

// Map implements mapreduce.Mapper.
func (m *Job1Mapper) Map(ctx *mapreduce.TaskContext, rec mapreduce.KeyValue, emit mapreduce.Emitter) error {
	e, _, err := entity.DecodeBinary(rec.Value)
	if err != nil {
		return err
	}
	ann := Annotate(m.Families, e)
	// Key computation cost: one prefix extraction per family.
	ctx.Charge(ctx.Cost.ReadRecord * costmodel.Units(len(m.Families)))
	buf := EncodeAnnotated(nil, ann)
	for famIdx := range m.Families {
		emit.Emit(Job1KeyOf(famIdx, ann.MainKeys[famIdx]), buf)
	}
	ctx.Inc(CounterJob1Entities, 1)
	return nil
}

// Job1Reducer builds one blocking tree per main block and emits its
// statistics.
type Job1Reducer struct {
	mapreduce.ReducerBase
	Families Families
}

// Reduce implements mapreduce.Reducer.
func (r *Job1Reducer) Reduce(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
	famIdx, mainKey, err := ParseJob1Key(key)
	if err != nil {
		return err
	}
	if famIdx < 0 || famIdx >= len(r.Families) {
		return fmt.Errorf("blocking: job-1 key %q references family %d of %d", key, famIdx, len(r.Families))
	}
	fam := r.Families[famIdx]
	ents := make([]*entity.Entity, len(values))
	mainKeys := make([][]string, len(values))
	for i, v := range values {
		ann, _, err := DecodeAnnotated(v)
		if err != nil {
			return err
		}
		ents[i] = ann.Ent
		mainKeys[i] = ann.MainKeys
	}
	// Tree construction: one key computation per entity per sub-level.
	ctx.Charge(ctx.Cost.ReadRecord * costmodel.Units(len(ents)*(fam.Levels()-1)))
	tree := BuildTree(fam, famIdx, mainKey, ents)
	// Uncovered-pair accounting: inclusion-exclusion over the
	// dominating families, one hash-group pass per subset per level.
	if famIdx > 0 {
		subsets := (1 << famIdx) - 1
		ctx.Charge(ctx.Cost.SkipPair * costmodel.Units(len(ents)*subsets*fam.Levels()))
	}
	ComputeUncov(fam, tree, ents, mainKeys)
	for _, s := range StatsFromTree(tree) {
		emit.Emit(s.ID.String(), EncodeStat(nil, s))
		ctx.Inc(CounterJob1Blocks, 1)
	}
	ctx.Inc(CounterJob1Trees, 1)
	return nil
}

// MakeJob1Input turns a dataset into the job's input records.
func MakeJob1Input(ds *entity.Dataset) []mapreduce.KeyValue {
	in := make([]mapreduce.KeyValue, ds.Len())
	for i, e := range ds.Entities {
		in[i] = mapreduce.KeyValue{
			Key:   strconv.Itoa(i),
			Value: entity.EncodeBinary(nil, e),
		}
	}
	return in
}

// ParseJob1Output decodes the job's reduce output into a Stats index.
func ParseJob1Output(res *mapreduce.Result) (*Stats, error) {
	list := make([]*BlockStat, 0, len(res.Output))
	for _, kv := range res.Output {
		s, _, err := DecodeStat(kv.Value)
		if err != nil {
			return nil, err
		}
		list = append(list, s)
	}
	return NewStats(list), nil
}

// Job1Config assembles the mapreduce.Config for the first job.
func Job1Config(fams Families, cluster mapreduce.Cluster, cost costmodel.Model) mapreduce.Config {
	return mapreduce.Config{
		Name:           "job1-progressive-blocking",
		NewMapper:      func() mapreduce.Mapper { return &Job1Mapper{Families: fams} },
		NewReducer:     func() mapreduce.Reducer { return &Job1Reducer{Families: fams} },
		NumMapTasks:    cluster.Slots(),
		NumReduceTasks: cluster.Slots(),
		Cluster:        cluster,
		Cost:           cost,
	}
}

// RunJob1 executes progressive blocking + statistics gathering and
// returns the parsed statistics along with the raw job result.
func RunJob1(ds *entity.Dataset, fams Families, cluster mapreduce.Cluster, cost costmodel.Model, startAt costmodel.Units) (*Stats, *mapreduce.Result, error) {
	if err := fams.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := Job1Config(fams, cluster, cost)
	res, err := mapreduce.Run(cfg, MakeJob1Input(ds), startAt)
	if err != nil {
		return nil, nil, err
	}
	stats, err := ParseJob1Output(res)
	if err != nil {
		return nil, nil, err
	}
	return stats, res, nil
}
