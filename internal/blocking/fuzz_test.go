package blocking

import (
	"testing"

	"proger/internal/entity"
)

// FuzzDecodeStat guards the Job-1 statistics codec.
func FuzzDecodeStat(f *testing.F) {
	f.Add(EncodeStat(nil, &BlockStat{
		ID: BlockID{Family: 1, Level: 2, Key: "ab"}, Size: 9, Uncov: 3, ChildKeys: []string{"abc"},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, n, err := DecodeStat(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := EncodeStat(nil, s)
		s2, _, err := DecodeStat(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if s2.ID != s.ID || s2.Size != s.Size || s2.Uncov != s.Uncov || len(s2.ChildKeys) != len(s.ChildKeys) {
			t.Fatalf("re-encode mismatch: %+v vs %+v", s, s2)
		}
	})
}

// FuzzDecodeAnnotated guards the annotated-entity codec.
func FuzzDecodeAnnotated(f *testing.F) {
	f.Add(EncodeAnnotated(nil, &Annotated{
		Ent:      &entity.Entity{ID: 2, Attrs: []string{"x"}},
		MainKeys: []string{"k1", "k2"},
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, n, err := DecodeAnnotated(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := EncodeAnnotated(nil, a)
		a2, _, err := DecodeAnnotated(re)
		if err != nil || !entity.Equal(a.Ent, a2.Ent) || len(a.MainKeys) != len(a2.MainKeys) {
			t.Fatalf("re-encode mismatch (%v)", err)
		}
	})
}
