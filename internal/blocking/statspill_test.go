package blocking

import (
	"bytes"
	"os"
	"testing"

	"proger/internal/membudget"
)

func holderStats() *Stats {
	return NewStats([]*BlockStat{
		{ID: BlockID{Family: 0, Level: 1, Key: "root"}, Size: 10, Uncov: 45, ChildKeys: []string{"a", "b"}},
		{ID: BlockID{Family: 0, Level: 2, Key: "a"}, Size: 6, Uncov: 15},
		{ID: BlockID{Family: 0, Level: 2, Key: "b"}, Size: 4, Uncov: 6},
	})
}

// TestStatsHolderSpillAndReload: a forced spill drops the index to one
// file; Acquire reloads an identical Stats and re-charges it.
func TestStatsHolderSpillAndReload(t *testing.T) {
	mgr := membudget.New(1 << 20)
	dir := t.TempDir()
	st := holderStats()
	h, err := NewStatsHolder(st, mgr, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if mgr.Used() == 0 {
		t.Fatal("holder charged nothing for resident stats")
	}
	freed, err := h.spill()
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("spill freed nothing")
	}
	got, err := h.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	// Compare canonical encodings (decode yields empty slices where the
	// originals had nil ones).
	var a, b bytes.Buffer
	if err := WriteStats(&a, st); err != nil {
		t.Fatal(err)
	}
	if err := WriteStats(&b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("reloaded stats diverged from originals")
	}
}

// TestStatsHolderPinnedStatsRefuseToSpill: between Acquire and Release
// the spill callback must report no progress.
func TestStatsHolderPinnedStatsRefuseToSpill(t *testing.T) {
	mgr := membudget.New(1 << 20)
	h, err := NewStatsHolder(holderStats(), mgr, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	if freed, _ := h.spill(); freed != 0 {
		t.Fatalf("pinned stats spilled %d bytes", freed)
	}
	h.Release()
	if freed, _ := h.spill(); freed == 0 {
		t.Fatal("unpinned stats refused to spill")
	}
}

// TestStatsHolderBudgetPressureEvictsStats: charging another account
// past the budget must evict the (larger) stats holder through the
// manager, and Close must remove the spill artifacts.
func TestStatsHolderBudgetPressureEvictsStats(t *testing.T) {
	st := holderStats()
	size := statsMemBytes(st)
	mgr := membudget.New(size + 64)
	dir := t.TempDir()
	h, err := NewStatsHolder(st, mgr, dir)
	if err != nil {
		t.Fatal(err)
	}
	other := mgr.NewAccount("pressure", nil)
	if err := other.Charge(128); err != nil {
		t.Fatal(err)
	}
	if mgr.ForcedSpills() != 1 {
		t.Fatalf("forced spills = %d, want 1 (stats eviction)", mgr.ForcedSpills())
	}
	if got, err := h.Acquire(); err != nil || len(got.Blocks) != len(st.Blocks) {
		t.Fatalf("reload after eviction: %v", err)
	}
	h.Release()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("stats spill artifacts left after Close: %v", entries)
	}
}

// TestStatsHolderNilManagerPassThrough: without a budget the holder is
// inert — no files, no accounting, stats always resident.
func TestStatsHolderNilManagerPassThrough(t *testing.T) {
	st := holderStats()
	h, err := NewStatsHolder(st, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatal("nil-manager holder should hand back the original pointer")
	}
	h.Release()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}
