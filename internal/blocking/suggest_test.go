package blocking

import (
	"testing"

	"proger/internal/datagen"
)

func TestEvaluateFamilyToyData(t *testing.T) {
	ds, gt := datagen.People()
	// X: name prefix 2. Blocks: jo{e0,e1,e2,e8}, ch{e3,e6}, gh{e4},
	// ma{e5}, wi{e7}. Dup pairs co-blocked: {e0,e1,e2} → 3 (e3/e4 split
	// by the G typo). Total pairs: 6 + 1 = 7.
	x := &Family{Name: "X", Attr: 0, PrefixLens: []int{2}, Index: 1}
	q := EvaluateFamily(ds, gt, x)
	if q.DupPairs != 3 || q.TotalPairs != 7 {
		t.Errorf("X quality = %+v", q)
	}
	if q.Coverage != 0.75 {
		t.Errorf("X coverage = %v, want 0.75", q.Coverage)
	}
	// Y: state prefix 2. Blocks hi{e0,e1}, az{e2,e5,e6,e7}, la{e3,e4,e8}.
	// Dups co-blocked: (e0,e1) + (e3,e4) = 2; total = 1 + 6 + 3 = 10.
	y := &Family{Name: "Y", Attr: 1, PrefixLens: []int{2}, Index: 1}
	qy := EvaluateFamily(ds, gt, y)
	if qy.DupPairs != 2 || qy.TotalPairs != 10 {
		t.Errorf("Y quality = %+v", qy)
	}
	// X is denser than Y — exactly the paper's reason to set X ≻ Y.
	if q.Density <= qy.Density {
		t.Errorf("expected density(X) %v > density(Y) %v", q.Density, qy.Density)
	}
}

func TestSuggestFamiliesOrdersByDensity(t *testing.T) {
	ds, gt := datagen.People()
	candidates := []*Family{
		{Name: "Y", Attr: 1, PrefixLens: []int{2}},       // state: sparse
		{Name: "X", Attr: 0, PrefixLens: []int{2, 3, 5}}, // name: dense
		{Name: "S", Attr: 0, PrefixLens: []int{1, 4}, Kind: KeySoundex},
	}
	fams, quals, err := SuggestFamilies(ds, gt, candidates, 0)
	if err != nil {
		t.Fatalf("SuggestFamilies: %v", err)
	}
	if len(fams) != 3 || len(quals) != 3 {
		t.Fatalf("kept %d families, %d qualities", len(fams), len(quals))
	}
	// Name-based families must dominate the state family.
	if fams[len(fams)-1].Name != "Y" {
		order := []string{}
		for _, f := range fams {
			order = append(order, f.Name)
		}
		t.Errorf("dominance order = %v; Y (state) should be last", order)
	}
	// Indexes renumbered in order.
	for i, f := range fams {
		if f.Index != i+1 {
			t.Errorf("family %s index %d at position %d", f.Name, f.Index, i)
		}
	}
	// Qualities sorted by density.
	for i := 1; i < len(quals); i++ {
		if quals[i].Density > quals[i-1].Density {
			t.Errorf("qualities not sorted at %d", i)
		}
	}
	// The result plugs straight into the pipeline.
	if err := fams.Validate(); err != nil {
		t.Errorf("suggested families invalid: %v", err)
	}
}

func TestSuggestFamiliesCoverageFilter(t *testing.T) {
	ds, gt := datagen.Publications(datagen.DefaultPublications(600, 3))
	candidates := []*Family{
		{Name: "T", Attr: ds.Schema.Index("title"), PrefixLens: []int{2, 4}},
		// Authors as a blocking key on publications: entities of a
		// cluster share corrupted author strings, decent coverage; keep
		// threshold high enough to likely drop the weakest candidate.
		{Name: "V", Attr: ds.Schema.Index("venue"), PrefixLens: []int{3}},
	}
	fams, quals, err := SuggestFamilies(ds, gt, candidates, 2.0 /* impossible */)
	if err != nil {
		t.Fatalf("SuggestFamilies: %v", err)
	}
	// Impossible coverage keeps exactly the best family.
	if len(fams) != 1 {
		t.Errorf("kept %d families, want 1 (the best)", len(fams))
	}
	if len(quals) != 2 {
		t.Errorf("qualities = %d", len(quals))
	}
}

func TestSuggestFamiliesRejectsBadCandidates(t *testing.T) {
	ds, gt := datagen.People()
	if _, _, err := SuggestFamilies(ds, gt, nil, 0); err == nil {
		t.Error("no candidates: want error")
	}
	bad := []*Family{{Name: "", Attr: 0, PrefixLens: []int{2}}}
	if _, _, err := SuggestFamilies(ds, gt, bad, 0); err == nil {
		t.Error("invalid candidate: want error")
	}
}

func TestSuggestFamiliesDoesNotMutateCandidates(t *testing.T) {
	ds, gt := datagen.People()
	cand := &Family{Name: "X", Attr: 0, PrefixLens: []int{2}, Index: 99}
	if _, _, err := SuggestFamilies(ds, gt, []*Family{cand}, 0); err != nil {
		t.Fatal(err)
	}
	if cand.Index != 99 {
		t.Error("candidate mutated")
	}
}
