package datagen

import (
	"proger/internal/entity"
)

// GroundTruth records which entities represent the same real-world
// object. It answers the two questions the evaluation needs: is a given
// pair a true duplicate, and how many true duplicate pairs exist in
// total (the N of Eq. 1 and the denominator of duplicate recall).
type GroundTruth struct {
	// ClusterOf maps entity ID → cluster index.
	ClusterOf []int
	// Clusters lists the member IDs of each cluster, in ID order.
	Clusters [][]entity.ID
}

// NewGroundTruth builds a GroundTruth from a cluster assignment.
func NewGroundTruth(clusterOf []int) *GroundTruth {
	maxC := -1
	for _, c := range clusterOf {
		if c > maxC {
			maxC = c
		}
	}
	g := &GroundTruth{ClusterOf: clusterOf, Clusters: make([][]entity.ID, maxC+1)}
	for id, c := range clusterOf {
		g.Clusters[c] = append(g.Clusters[c], entity.ID(id))
	}
	return g
}

// IsDup reports whether the pair is a true duplicate.
func (g *GroundTruth) IsDup(p entity.Pair) bool {
	if int(p.Lo) >= len(g.ClusterOf) || int(p.Hi) >= len(g.ClusterOf) {
		return false
	}
	return g.ClusterOf[p.Lo] == g.ClusterOf[p.Hi]
}

// NumDupPairs returns the total number of true duplicate pairs
// (Σ over clusters of Pairs(|cluster|)).
func (g *GroundTruth) NumDupPairs() int64 {
	var n int64
	for _, c := range g.Clusters {
		n += entity.Pairs(len(c))
	}
	return n
}

// DupPairs enumerates every true duplicate pair, in deterministic order.
func (g *GroundTruth) DupPairs() []entity.Pair {
	out := make([]entity.Pair, 0, g.NumDupPairs())
	for _, c := range g.Clusters {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				out = append(out, entity.MakePair(c[i], c[j]))
			}
		}
	}
	return out
}
