// Package datagen generates the synthetic workloads that stand in for
// the paper's real datasets (CiteSeerX publications and OL-Books), plus
// the Table-I toy people dataset. Generators produce exact ground truth
// (the clustering of records into real-world objects), Zipf-skewed
// attribute distributions (so block sizes skew the way the paper's
// data does), and a typo/corruption model that spreads some duplicate
// pairs across the blocks of different blocking functions — the reason
// multiple blocking functions (and responsible-tree accounting) matter.
package datagen

import (
	"math"
	"math/rand"
	"strings"
)

// Corruptor applies data-quality defects to attribute values to create
// duplicate records of the same real-world object.
type Corruptor struct {
	rng *rand.Rand
	// TypoRate is the expected number of character-level edits applied
	// per 20 characters of value length (minimum chance applies to
	// short strings too).
	TypoRate float64
	// MissingRate is the probability an attribute value is dropped
	// entirely in a duplicate record.
	MissingRate float64
	// TruncateRate is the probability a value is truncated to a prefix.
	TruncateRate float64
	// SwapRate is the probability two adjacent words are swapped.
	SwapRate float64
}

// NewCorruptor returns a corruptor with the defect rates used by the
// experiment workloads.
func NewCorruptor(rng *rand.Rand) *Corruptor {
	return &Corruptor{
		rng:          rng,
		TypoRate:     0.5,
		MissingRate:  0.015,
		TruncateRate: 0.015,
		SwapRate:     0.04,
	}
}

const letters = "abcdefghijklmnopqrstuvwxyz"

// Corrupt returns a corrupted copy of value.
func (c *Corruptor) Corrupt(value string) string {
	if value == "" {
		return value
	}
	if c.rng.Float64() < c.MissingRate {
		return ""
	}
	s := []byte(value)
	if c.rng.Float64() < c.SwapRate {
		s = []byte(c.swapWords(string(s)))
	}
	// Character-level edits. Expected count scales with length so long
	// abstracts collect more typos than short titles, as in real data.
	expected := c.TypoRate * (1 + float64(len(s))/20)
	n := c.poissonish(expected)
	for i := 0; i < n && len(s) > 0; i++ {
		pos := c.rng.Intn(len(s))
		switch c.rng.Intn(4) {
		case 0: // substitute
			s[pos] = letters[c.rng.Intn(len(letters))]
		case 1: // delete
			s = append(s[:pos], s[pos+1:]...)
		case 2: // insert
			ch := letters[c.rng.Intn(len(letters))]
			s = append(s[:pos], append([]byte{ch}, s[pos:]...)...)
		case 3: // transpose with next
			if pos+1 < len(s) {
				s[pos], s[pos+1] = s[pos+1], s[pos]
			}
		}
	}
	if c.rng.Float64() < c.TruncateRate && len(s) > 8 {
		keep := 8 + c.rng.Intn(len(s)-8)
		s = s[:keep]
	}
	return string(s)
}

// swapWords exchanges two adjacent words, if the value has at least two.
func (c *Corruptor) swapWords(value string) string {
	words := strings.Fields(value)
	if len(words) < 2 {
		return value
	}
	i := c.rng.Intn(len(words) - 1)
	words[i], words[i+1] = words[i+1], words[i]
	return strings.Join(words, " ")
}

// poissonish draws a small non-negative count with the given mean using
// a simple inversion on the exponential spacing; exact Poisson is not
// needed, only a monotone mean→count relationship.
func (c *Corruptor) poissonish(mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := 0
	budget := mean
	for budget > 0 {
		draw := c.rng.ExpFloat64()
		if draw > budget {
			// Bernoulli on the remaining fraction.
			if c.rng.Float64() < budget/draw {
				n++
			}
			break
		}
		budget -= draw
		n++
		if n > 32 { // safety bound for extreme means
			break
		}
	}
	return n
}

// zipfWeights precomputes cumulative weights for a Zipf(s) distribution
// over n ranks; used to sample skewed vocabulary and venue choices.
type zipfPicker struct {
	cum []float64
	rng *rand.Rand
}

func newZipfPicker(rng *rand.Rand, n int, s float64) *zipfPicker {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipfPicker{cum: cum, rng: rng}
}

// Pick returns a rank in [0, n), rank 0 most likely.
func (z *zipfPicker) Pick() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
