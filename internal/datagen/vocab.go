package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// vocab is a deterministic fake-word vocabulary. Words are built from
// syllables so titles look like natural text ("damibo retuka nolisa"),
// and because words are drawn with Zipf skew, their first characters —
// which blocking functions use as keys — follow the heavy-tailed
// distribution responsible for the paper's block-size skewness.
type vocab struct {
	words []string
}

var syllOnset = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br", "cl", "dr", "st", "tr", "pl"}
var syllNucleus = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
var syllCoda = []string{"", "", "", "n", "r", "s", "t", "l", "m"}

// newVocab generates n distinct words deterministically from the seed.
func newVocab(seed int64, n int) *vocab {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	words := make([]string, 0, n)
	for len(words) < n {
		nSyll := 2 + rng.Intn(2)
		var b strings.Builder
		for s := 0; s < nSyll; s++ {
			b.WriteString(syllOnset[rng.Intn(len(syllOnset))])
			b.WriteString(syllNucleus[rng.Intn(len(syllNucleus))])
			b.WriteString(syllCoda[rng.Intn(len(syllCoda))])
		}
		w := b.String()
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	return &vocab{words: words}
}

// phrase draws nWords words using the picker (Zipf over the vocabulary)
// and joins them with spaces.
func (v *vocab) phrase(z *zipfPicker, nWords int) string {
	parts := make([]string, nWords)
	for i := range parts {
		parts[i] = v.words[z.Pick()%len(v.words)]
	}
	return strings.Join(parts, " ")
}

// nameList generates n personal names ("Given Surname").
func nameList(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	v := newVocab(seed+1, 400)
	out := make([]string, n)
	for i := range out {
		g := v.words[rng.Intn(len(v.words))]
		s := v.words[rng.Intn(len(v.words))]
		out[i] = title(g) + " " + title(s)
	}
	return out
}

// venueList generates n venue/publisher names like "proceedings of
// damibo" or "retuka press".
func venueList(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	v := newVocab(seed+2, 300)
	suffixes := []string{"press", "journal", "conference", "symposium", "letters", "review"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s %s", v.words[rng.Intn(len(v.words))], suffixes[rng.Intn(len(suffixes))])
	}
	return out
}

func title(w string) string {
	if w == "" {
		return w
	}
	return strings.ToUpper(w[:1]) + w[1:]
}
