package datagen

import (
	"bytes"
	"strings"
	"testing"
)

func TestGroundTruthIO(t *testing.T) {
	_, gt := Publications(DefaultPublications(300, 77))
	var buf bytes.Buffer
	if err := WriteGroundTruth(&buf, gt); err != nil {
		t.Fatalf("WriteGroundTruth: %v", err)
	}
	back, err := ReadGroundTruth(&buf)
	if err != nil {
		t.Fatalf("ReadGroundTruth: %v", err)
	}
	if len(back.ClusterOf) != len(gt.ClusterOf) {
		t.Fatalf("lengths differ: %d vs %d", len(back.ClusterOf), len(gt.ClusterOf))
	}
	for i := range gt.ClusterOf {
		if back.ClusterOf[i] != gt.ClusterOf[i] {
			t.Fatalf("cluster of e%d differs", i)
		}
	}
	if back.NumDupPairs() != gt.NumDupPairs() {
		t.Error("duplicate pair count differs after round trip")
	}
}

func TestReadGroundTruthErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong header\n",
		"#id\tcluster\n0\n",
		"#id\tcluster\n5\t0\n",       // non-dense id
		"#id\tcluster\n0\tnotanum\n", // bad cluster
		"#id\tcluster\n0\t-2\n",      // negative cluster
	}
	for i, in := range cases {
		if _, err := ReadGroundTruth(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
