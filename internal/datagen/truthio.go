package datagen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteGroundTruth writes the cluster assignment as tab-separated text:
// a "#id\tcluster" header followed by one line per entity.
func WriteGroundTruth(w io.Writer, gt *GroundTruth) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "#id\tcluster"); err != nil {
		return err
	}
	for id, c := range gt.ClusterOf {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", id, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGroundTruth parses a file written by WriteGroundTruth. Lines must
// appear in dense ID order.
func ReadGroundTruth(r io.Reader) (*GroundTruth, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("datagen: empty ground-truth input")
	}
	if got := sc.Text(); got != "#id\tcluster" {
		return nil, fmt.Errorf("datagen: bad ground-truth header %q", got)
	}
	var clusterOf []int
	line := 1
	for sc.Scan() {
		line++
		parts := strings.Split(sc.Text(), "\t")
		if len(parts) != 2 {
			return nil, fmt.Errorf("datagen: ground-truth line %d malformed", line)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil || id != len(clusterOf) {
			return nil, fmt.Errorf("datagen: ground-truth line %d: want dense id %d", line, len(clusterOf))
		}
		c, err := strconv.Atoi(parts[1])
		if err != nil || c < 0 {
			return nil, fmt.Errorf("datagen: ground-truth line %d: bad cluster %q", line, parts[1])
		}
		clusterOf = append(clusterOf, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewGroundTruth(clusterOf), nil
}
