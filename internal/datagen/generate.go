package datagen

import (
	"fmt"
	"math/rand"

	"proger/internal/entity"
)

// Config controls a synthetic workload. The zero value is not usable;
// start from DefaultPublications / DefaultBooks and override.
type Config struct {
	// NumEntities is the approximate total number of records generated
	// (the generator stops at the first cluster boundary ≥ this).
	NumEntities int
	// DupClusterRate is the fraction of real-world objects that have
	// more than one record.
	DupClusterRate float64
	// MaxClusterSize caps records per object.
	MaxClusterSize int
	// TitleZipf is the Zipf exponent for vocabulary skew; larger →
	// more skewed blocking-key distribution → larger large blocks.
	TitleZipf float64
	// VocabSize is the number of distinct words available for titles.
	VocabSize int
	// Seed makes the generator fully deterministic.
	Seed int64
}

// DefaultPublications mirrors the CiteSeerX workload structure:
// 4 attributes (title, abstract, venue, authors), long text values,
// heavy vocabulary skew.
func DefaultPublications(numEntities int, seed int64) Config {
	return Config{
		NumEntities:    numEntities,
		DupClusterRate: 0.30,
		MaxClusterSize: 8,
		TitleZipf:      0.85,
		VocabSize:      1500,
		Seed:           seed,
	}
}

// DefaultBooks mirrors the OL-Books workload structure: 8 attributes,
// shorter values, more exact-matchable fields, heavier skew.
func DefaultBooks(numEntities int, seed int64) Config {
	return Config{
		NumEntities:    numEntities,
		DupClusterRate: 0.25,
		MaxClusterSize: 6,
		TitleZipf:      1.0,
		VocabSize:      2000,
		Seed:           seed,
	}
}

// PublicationSchema is the CiteSeerX-like schema (Table II, left).
var PublicationSchema = entity.MustSchema("title", "abstract", "venue", "authors")

// BookSchema is the OL-Books-like schema (Table II, right).
var BookSchema = entity.MustSchema("title", "authors", "publisher", "year", "language", "format", "pages", "edition")

// Publications generates a CiteSeerX-like dataset with ground truth.
func Publications(cfg Config) (*entity.Dataset, *GroundTruth) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	voc := newVocab(cfg.Seed+101, cfg.VocabSize)
	titlePick := newZipfPicker(rng, cfg.VocabSize, cfg.TitleZipf)
	venues := venueList(cfg.Seed+102, 150)
	venuePick := newZipfPicker(rng, len(venues), 1.0)
	authors := nameList(cfg.Seed+103, 800)
	cor := NewCorruptor(rng)

	ds := entity.NewDataset(PublicationSchema)
	var clusterOf []int
	cluster := 0
	for ds.Len() < cfg.NumEntities {
		// Pick the title's first word explicitly: popular first words
		// (low Zipf rank) mark "popular" objects, which real
		// bibliographic data duplicates far more often — the skew that
		// makes duplicate-aware scheduling matter (§VI-B2).
		firstRank := titlePick.Pick()
		size := clusterSize(rng, cfg, popularity(firstRank, cfg.VocabSize))
		base := []string{
			voc.words[firstRank] + " " + voc.phrase(titlePick, 3+rng.Intn(5)), // title
			voc.phrase(titlePick, 25+rng.Intn(26)),                            // abstract
			venues[venuePick.Pick()],                                          // venue
			authorPhrase(rng, authors, 1+rng.Intn(3)),                         // authors
		}
		for i := 0; i < size; i++ {
			rec := base
			if i > 0 {
				rec = corruptAll(cor, base)
			}
			ds.Append(rec...)
			clusterOf = append(clusterOf, cluster)
		}
		cluster++
	}
	return ds, NewGroundTruth(clusterOf)
}

// Books generates an OL-Books-like dataset with ground truth.
func Books(cfg Config) (*entity.Dataset, *GroundTruth) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	voc := newVocab(cfg.Seed+201, cfg.VocabSize)
	titlePick := newZipfPicker(rng, cfg.VocabSize, cfg.TitleZipf)
	pubs := venueList(cfg.Seed+202, 100)
	pubPick := newZipfPicker(rng, len(pubs), 1.1)
	authors := nameList(cfg.Seed+203, 1200)
	languages := []string{"english", "german", "french", "spanish", "italian", "japanese", "russian", "dutch", "portuguese", "chinese"}
	langPick := newZipfPicker(rng, len(languages), 1.4)
	formats := []string{"hardcover", "paperback", "ebook"}
	editions := []string{"1st", "2nd", "3rd", "4th", "5th"}
	cor := NewCorruptor(rng)

	ds := entity.NewDataset(BookSchema)
	var clusterOf []int
	cluster := 0
	for ds.Len() < cfg.NumEntities {
		firstRank := titlePick.Pick()
		size := clusterSize(rng, cfg, popularity(firstRank, cfg.VocabSize))
		base := []string{
			voc.words[firstRank] + " " + voc.phrase(titlePick, 1+rng.Intn(5)), // title
			authorPhrase(rng, authors, 1+rng.Intn(2)),                         // authors
			pubs[pubPick.Pick()],                 // publisher
			fmt.Sprintf("%d", 1950+rng.Intn(71)), // year
			languages[langPick.Pick()],           // language
			formats[rng.Intn(len(formats))],      // format
			fmt.Sprintf("%d", 60+rng.Intn(900)),  // pages
			editions[rng.Intn(len(editions))],    // edition
		}
		for i := 0; i < size; i++ {
			rec := base
			if i > 0 {
				rec = corruptBook(cor, rng, base)
			}
			ds.Append(rec...)
			clusterOf = append(clusterOf, cluster)
		}
		cluster++
	}
	return ds, NewGroundTruth(clusterOf)
}

// corruptBook applies the full corruption model to the text attributes
// (title, authors, publisher) but only rare defects to the categorical
// and numeric ones — in real book records the year or language of two
// listings of the same book usually agree.
func corruptBook(cor *Corruptor, rng *rand.Rand, base []string) []string {
	out := make([]string, len(base))
	for i, v := range base {
		if i < 3 || rng.Float64() < 0.12 {
			out[i] = cor.Corrupt(v)
		} else {
			out[i] = v
		}
	}
	return out
}

// PeopleSchema is the Table-I toy schema.
var PeopleSchema = entity.MustSchema("name", "state")

// People returns the toy dataset of Table I with its six true clusters:
// {e1,e2,e3}, {e4,e5}, {e6}, {e7}, {e8}, {e9} (zero-indexed here).
func People() (*entity.Dataset, *GroundTruth) {
	ds := entity.NewDataset(PeopleSchema)
	rows := [][2]string{
		{"John Lopez", "HI"},
		{"John Lopez", "HI"},
		{"John Lopez", "AZ"},
		{"Charles Andrews", "LA"},
		{"Gharles Andrews", "LA"},
		{"Mary Gibson", "AZ"},
		{"Chloe Matthew", "AZ"},
		{"William Martin", "AZ"},
		{"Joey Brown", "LA"},
	}
	for _, r := range rows {
		ds.Append(r[0], r[1])
	}
	clusterOf := []int{0, 0, 0, 1, 1, 2, 3, 4, 5}
	return ds, NewGroundTruth(clusterOf)
}

// popularity maps the title's first-word Zipf rank to a duplicate-rate
// multiplier, shaping where duplicates live relative to block sizes the
// way real bibliographic data does:
//
//   - the very top ranks form the *largest* blocking trees but are
//     generic stop-word-like openers ("introduction", "analysis") whose
//     co-blocked works are mostly unrelated → big, duplicate-poor,
//     expensive trees. These are the §VI-B2 trap for LPT: each hogs a
//     reduce task while contributing little recall;
//   - the next band is genuinely popular specific works, re-cited and
//     re-listed often → medium-large, duplicate-rich trees, exactly
//     what a duplicate-aware schedule resolves first (and splits);
//   - the long tail duplicates at a modest background rate.
func popularity(rank, vocab int) float64 {
	switch {
	case rank < vocab/500+1:
		return 0.3
	case rank < vocab/100:
		return 3.0
	case rank < vocab/12:
		return 1.1
	default:
		return 0.5
	}
}

// PersonSchema is the schema of the scalable people workload:
// name, city, state, phone.
var PersonSchema = entity.MustSchema("name", "city", "state", "phone")

// PersonRecords generates a people dataset of the Table-I flavor at
// arbitrary scale: person records duplicated with typos, useful for
// demonstrating phonetic (Soundex) blocking on the name attribute.
func PersonRecords(cfg Config) (*entity.Dataset, *GroundTruth) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := nameList(cfg.Seed+301, cfg.VocabSize)
	cities := venueList(cfg.Seed+302, 120)
	cityPick := newZipfPicker(rng, len(cities), 1.0)
	states := []string{"AZ", "CA", "HI", "LA", "NY", "TX", "WA", "FL", "OH", "IL"}
	statePick := newZipfPicker(rng, len(states), 0.8)
	namePick := newZipfPicker(rng, len(names), cfg.TitleZipf)
	cor := NewCorruptor(rng)

	ds := entity.NewDataset(PersonSchema)
	var clusterOf []int
	cluster := 0
	for ds.Len() < cfg.NumEntities {
		nameRank := namePick.Pick()
		size := clusterSize(rng, cfg, popularity(nameRank, len(names)))
		base := []string{
			names[nameRank],
			cities[cityPick.Pick()],
			states[statePick.Pick()],
			fmt.Sprintf("%03d-%04d", rng.Intn(1000), rng.Intn(10000)),
		}
		for i := 0; i < size; i++ {
			rec := base
			if i > 0 {
				rec = corruptPerson(cor, rng, base)
			}
			ds.Append(rec...)
			clusterOf = append(clusterOf, cluster)
		}
		cluster++
	}
	return ds, NewGroundTruth(clusterOf)
}

// corruptPerson fully corrupts the text attributes (name, city) and
// rarely touches the categorical ones (state, phone).
func corruptPerson(cor *Corruptor, rng *rand.Rand, base []string) []string {
	out := make([]string, len(base))
	for i, v := range base {
		if i < 2 || rng.Float64() < 0.10 {
			out[i] = cor.Corrupt(v)
		} else {
			out[i] = v
		}
	}
	return out
}

// DefaultPeople returns the people-workload configuration.
func DefaultPeople(numEntities int, seed int64) Config {
	return Config{
		NumEntities:    numEntities,
		DupClusterRate: 0.30,
		MaxClusterSize: 6,
		TitleZipf:      0.9,
		VocabSize:      1200,
		Seed:           seed,
	}
}

// clusterSize draws the number of records describing one object:
// 1 for non-duplicated objects; otherwise 2 plus a geometric tail,
// capped at MaxClusterSize. boost scales the duplication probability
// (and, mildly, the tail) by the object's popularity.
func clusterSize(rng *rand.Rand, cfg Config, boost float64) int {
	p := cfg.DupClusterRate * boost
	if p > 0.95 {
		p = 0.95
	}
	if rng.Float64() >= p {
		return 1
	}
	tail := 0.35
	if boost > 1 {
		tail = 0.45
	}
	size := 2
	for size < cfg.MaxClusterSize && rng.Float64() < tail {
		size++
	}
	return size
}

func corruptAll(cor *Corruptor, base []string) []string {
	out := make([]string, len(base))
	for i, v := range base {
		out[i] = cor.Corrupt(v)
	}
	return out
}

func authorPhrase(rng *rand.Rand, names []string, n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += "; "
		}
		s += names[rng.Intn(len(names))]
	}
	return s
}
