package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"proger/internal/entity"
	"proger/internal/match"
)

func TestPeople(t *testing.T) {
	ds, gt := People()
	if ds.Len() != 9 {
		t.Fatalf("People has %d entities, want 9", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := gt.NumDupPairs(); got != 4 {
		// {e0,e1,e2} → 3 pairs, {e3,e4} → 1 pair.
		t.Errorf("NumDupPairs = %d, want 4", got)
	}
	if !gt.IsDup(entity.MakePair(0, 2)) {
		t.Error("e0,e2 should be duplicates")
	}
	if gt.IsDup(entity.MakePair(0, 3)) {
		t.Error("e0,e3 should not be duplicates")
	}
	if len(gt.Clusters) != 6 {
		t.Errorf("clusters = %d, want 6", len(gt.Clusters))
	}
}

func TestGroundTruthDupPairs(t *testing.T) {
	gt := NewGroundTruth([]int{0, 0, 1, 0, 1})
	pairs := gt.DupPairs()
	want := map[entity.Pair]bool{
		entity.MakePair(0, 1): true,
		entity.MakePair(0, 3): true,
		entity.MakePair(1, 3): true,
		entity.MakePair(2, 4): true,
	}
	if len(pairs) != len(want) {
		t.Fatalf("DupPairs = %v, want %d pairs", pairs, len(want))
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
	}
	if gt.NumDupPairs() != int64(len(want)) {
		t.Errorf("NumDupPairs = %d, want %d", gt.NumDupPairs(), len(want))
	}
}

func TestGroundTruthOutOfRange(t *testing.T) {
	gt := NewGroundTruth([]int{0, 0})
	if gt.IsDup(entity.MakePair(0, 99)) {
		t.Error("out-of-range pair should not be a duplicate")
	}
}

func TestPublicationsDeterministic(t *testing.T) {
	cfg := DefaultPublications(500, 42)
	a, gta := Publications(cfg)
	b, gtb := Publications(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Entities {
		if !entity.Equal(a.Entities[i], b.Entities[i]) {
			t.Fatalf("entity %d differs between runs", i)
		}
	}
	if gta.NumDupPairs() != gtb.NumDupPairs() {
		t.Error("ground truth differs between runs")
	}
}

func TestPublicationsShape(t *testing.T) {
	cfg := DefaultPublications(2000, 7)
	ds, gt := Publications(cfg)
	if ds.Len() < 2000 {
		t.Fatalf("got %d entities, want ≥ 2000", ds.Len())
	}
	if ds.Len() > 2000+cfg.MaxClusterSize {
		t.Fatalf("overshoot too large: %d", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ds.Schema != PublicationSchema {
		t.Error("schema mismatch")
	}
	nd := gt.NumDupPairs()
	if nd < 100 {
		t.Errorf("only %d duplicate pairs — workload too clean", nd)
	}
	// Every entity is assigned a cluster.
	if len(gt.ClusterOf) != ds.Len() {
		t.Fatalf("ClusterOf len %d, want %d", len(gt.ClusterOf), ds.Len())
	}
	// Titles look like text.
	for _, e := range ds.Entities[:50] {
		title := e.Attr(0)
		if title != "" && !strings.Contains(title, " ") && len(title) > 40 {
			t.Errorf("suspicious title %q", title)
		}
		if len(e.Attr(1)) > 0 && len(e.Attr(1)) < 10 && strings.Count(e.Attr(1), " ") == 0 {
			continue // corrupted short abstract is fine
		}
	}
}

func TestPublicationsDuplicatesAreSimilar(t *testing.T) {
	ds, gt := Publications(DefaultPublications(1500, 3))
	m := match.MustNew(0.75,
		match.Rule{Attr: 0, Weight: 0.5, Kind: match.EditDistance},
		match.Rule{Attr: 1, Weight: 0.3, Kind: match.EditDistance, MaxChars: 350},
		match.Rule{Attr: 2, Weight: 0.2, Kind: match.EditDistance},
	)
	dups := gt.DupPairs()
	if len(dups) == 0 {
		t.Fatal("no duplicate pairs generated")
	}
	matched := 0
	for _, p := range dups {
		if m.Match(ds.Get(p.Lo), ds.Get(p.Hi)) {
			matched++
		}
	}
	frac := float64(matched) / float64(len(dups))
	if frac < 0.85 {
		t.Errorf("matcher finds only %.2f of true duplicates — corruption too aggressive", frac)
	}
	// And distinct pairs should rarely match: sample random cross-cluster pairs.
	rng := rand.New(rand.NewSource(5))
	falsePos := 0
	trials := 3000
	for i := 0; i < trials; i++ {
		a := entity.ID(rng.Intn(ds.Len()))
		b := entity.ID(rng.Intn(ds.Len()))
		if a == b || gt.IsDup(entity.MakePair(a, b)) {
			continue
		}
		if m.Match(ds.Get(a), ds.Get(b)) {
			falsePos++
		}
	}
	if falsePos > trials/100 {
		t.Errorf("%d/%d random distinct pairs match — matcher/generator too loose", falsePos, trials)
	}
}

func TestBooksShape(t *testing.T) {
	ds, gt := Books(DefaultBooks(2000, 11))
	if ds.Len() < 2000 {
		t.Fatalf("got %d entities", ds.Len())
	}
	if ds.Schema != BookSchema {
		t.Error("schema mismatch")
	}
	if ds.Schema.Len() != 8 {
		t.Errorf("books schema must have 8 attributes (paper: eight attributes)")
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if gt.NumDupPairs() < 100 {
		t.Errorf("too few duplicates: %d", gt.NumDupPairs())
	}
}

func TestBlockSizeSkew(t *testing.T) {
	// The generator must produce skewed first-2-char title distribution,
	// otherwise the tree-splitting machinery has nothing to do.
	ds, _ := Publications(DefaultPublications(3000, 19))
	counts := map[string]int{}
	for _, e := range ds.Entities {
		title := e.Attr(0)
		if len(title) >= 2 {
			counts[title[:2]]++
		}
	}
	maxC, total := 0, 0
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	avg := float64(total) / float64(len(counts))
	if float64(maxC) < 3*avg {
		t.Errorf("largest block %d vs avg %.1f — not skewed enough", maxC, avg)
	}
}

func TestCorruptorDeterministic(t *testing.T) {
	a := NewCorruptor(rand.New(rand.NewSource(9)))
	b := NewCorruptor(rand.New(rand.NewSource(9)))
	for i := 0; i < 50; i++ {
		va := a.Corrupt("progressive entity resolution with mapreduce")
		vb := b.Corrupt("progressive entity resolution with mapreduce")
		if va != vb {
			t.Fatalf("iteration %d: %q vs %q", i, va, vb)
		}
	}
}

func TestCorruptorEmptyString(t *testing.T) {
	c := NewCorruptor(rand.New(rand.NewSource(1)))
	if got := c.Corrupt(""); got != "" {
		t.Errorf("Corrupt(\"\") = %q", got)
	}
}

func TestCorruptorPreservesApproximateLength(t *testing.T) {
	c := NewCorruptor(rand.New(rand.NewSource(2)))
	c.MissingRate = 0
	c.TruncateRate = 0
	in := strings.Repeat("abcdefghij", 5)
	for i := 0; i < 100; i++ {
		out := c.Corrupt(in)
		if len(out) < len(in)-15 || len(out) > len(in)+15 {
			t.Fatalf("length drifted: %d → %d", len(in), len(out))
		}
	}
}

func TestZipfPickerSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z := newZipfPicker(rng, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Pick()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] < 1000 {
		t.Errorf("rank 0 only %d of 20000 — not Zipf-like", counts[0])
	}
}

func TestVocabDistinctWords(t *testing.T) {
	v := newVocab(1, 500)
	seen := map[string]bool{}
	for _, w := range v.words {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if len(w) < 2 {
			t.Fatalf("degenerate word %q", w)
		}
	}
	if len(v.words) != 500 {
		t.Fatalf("vocab size %d, want 500", len(v.words))
	}
}

func TestPoissonishMean(t *testing.T) {
	c := NewCorruptor(rand.New(rand.NewSource(6)))
	total := 0
	n := 20000
	mean := 2.5
	for i := 0; i < n; i++ {
		total += c.poissonish(mean)
	}
	got := float64(total) / float64(n)
	if got < mean*0.8 || got > mean*1.2 {
		t.Errorf("empirical mean %.2f, want ≈%.2f", got, mean)
	}
	if c.poissonish(0) != 0 || c.poissonish(-1) != 0 {
		t.Error("non-positive mean must give 0")
	}
}

func TestPersonRecords(t *testing.T) {
	ds, gt := PersonRecords(DefaultPeople(1000, 7))
	if ds.Len() < 1000 || ds.Schema != PersonSchema {
		t.Fatalf("dataset: len=%d", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if gt.NumDupPairs() < 100 {
		t.Errorf("too few duplicates: %d", gt.NumDupPairs())
	}
	// Determinism.
	ds2, gt2 := PersonRecords(DefaultPeople(1000, 7))
	for i := range ds.Entities {
		if !entity.Equal(ds.Entities[i], ds2.Entities[i]) {
			t.Fatalf("entity %d differs", i)
		}
	}
	if gt.NumDupPairs() != gt2.NumDupPairs() {
		t.Error("ground truth not deterministic")
	}
	// Phones of duplicates usually agree (rare corruption).
	agree, total := 0, 0
	for _, p := range gt.DupPairs() {
		total++
		if ds.Get(p.Lo).Attr(3) == ds.Get(p.Hi).Attr(3) {
			agree++
		}
	}
	if total > 0 && float64(agree)/float64(total) < 0.7 {
		t.Errorf("only %d/%d duplicate phone agreements", agree, total)
	}
}
