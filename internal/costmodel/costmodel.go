// Package costmodel defines the simulated resolution-cost units used
// throughout the pipeline.
//
// The paper reports execution time in seconds on a Hadoop cluster. This
// reproduction replaces seconds with deterministic *cost units*: every
// elementary operation of the ER process (comparing a pair, sorting a
// block's entities for the SN hint, reading or emitting a record) has a
// defined cost, and the simulated MapReduce scheduler turns per-task
// cost into a global timeline. The shape of every curve in the paper —
// who wins, by what factor, where the crossovers fall — depends on the
// ordering of this cost spend, not on wall-clock seconds, so the
// substitution preserves the evaluated behaviour while making every
// experiment reproducible bit-for-bit.
package costmodel

import "math"

// Units is the simulated cost unit. One unit ≈ the cost of resolving
// one pair of entities with the match function.
type Units = float64

// Model holds the per-operation costs.
type Model struct {
	// PairCompare is the cost of applying the resolve/match function to
	// one pair. This is the base unit of the whole simulation.
	PairCompare Units
	// SkipPair is the cost of consulting per-tree state to discover a
	// pair was already resolved (incremental parent resolution) or is
	// not this block's responsibility (SHOULD-RESOLVE check).
	SkipPair Units
	// SortPerElem scales the n·log₂(n) cost of sorting a block's
	// entities when generating an SN/PSNM hint.
	SortPerElem Units
	// ShuffleSortPerElem scales the n·log₂(n) cost of the framework's
	// reduce-side merge sort. Hadoop merges pre-sorted map spills on
	// serialized keys, an order of magnitude cheaper per element than
	// hint sorting (which compares attribute strings of materialized
	// entities).
	ShuffleSortPerElem Units
	// ReadRecord is the per-record cost of reading task input
	// (map input or the reduce-side iterator).
	ReadRecord Units
	// EmitRecord is the per-record cost of emitting map output.
	EmitRecord Units
	// TaskStartup is the fixed scheduling/JVM-spinup overhead charged
	// when a task begins on a slot.
	TaskStartup Units
	// JobSetup is the fixed per-job overhead (job submission, split
	// computation); the second job additionally pays schedule
	// generation, which is accounted separately by the scheduler.
	JobSetup Units
}

// Default returns the model used by all experiments. The ratios follow
// the paper's observations: hint generation (sorting) and record I/O
// are cheap relative to pair resolution but not negligible, and task
// startup is a visible constant (the reason our approach loses the very
// first seconds in Fig. 10-left).
func Default() Model {
	return Model{
		PairCompare:        1.0,
		SkipPair:           0.02,
		SortPerElem:        0.05,
		ShuffleSortPerElem: 0.005,
		ReadRecord:         0.01,
		EmitRecord:         0.01,
		TaskStartup:        50,
		JobSetup:           500,
	}
}

// SortCost returns the cost of sorting n elements: SortPerElem·n·log₂n.
func (m Model) SortCost(n int) Units {
	if n < 2 {
		return 0
	}
	return m.SortPerElem * float64(n) * math.Log2(float64(n))
}

// ShuffleSortCost returns the cost of the reduce-side merge sort of n
// records: ShuffleSortPerElem·n·log₂n.
func (m Model) ShuffleSortCost(n int) Units {
	if n < 2 {
		return 0
	}
	return m.ShuffleSortPerElem * float64(n) * math.Log2(float64(n))
}

// HintCost returns the full additional cost CostA of preparing block of
// size n for resolution: reading the entities plus sorting them.
// This is the CostA(.) estimator of Eq. 3/5 for SN-style mechanisms.
func (m Model) HintCost(n int) Units {
	return m.ReadRecord*float64(n) + m.SortCost(n)
}
