package costmodel

import (
	"math"
	"testing"
)

func TestDefaultRatios(t *testing.T) {
	m := Default()
	// The pair comparison is the unit of the simulation.
	if m.PairCompare != 1.0 {
		t.Errorf("PairCompare = %v, want 1", m.PairCompare)
	}
	// Skipping must be far cheaper than comparing, else redundancy
	// elimination and incremental parent resolution would not pay off.
	if m.SkipPair >= m.PairCompare/10 {
		t.Errorf("SkipPair %v not ≪ PairCompare %v", m.SkipPair, m.PairCompare)
	}
	// Record I/O is cheaper than sorting per element; shuffle merging is
	// cheaper than hint sorting.
	if m.ShuffleSortPerElem >= m.SortPerElem {
		t.Errorf("shuffle sort %v should be cheaper than hint sort %v", m.ShuffleSortPerElem, m.SortPerElem)
	}
	if m.TaskStartup <= 0 || m.JobSetup <= 0 {
		t.Error("startup costs must be positive (they create the paper's preprocessing offset)")
	}
}

func TestSortCost(t *testing.T) {
	m := Default()
	if m.SortCost(0) != 0 || m.SortCost(1) != 0 {
		t.Error("sorting under 2 elements costs nothing")
	}
	want := m.SortPerElem * 8 * 3 // 8·log₂8
	if got := m.SortCost(8); math.Abs(got-want) > 1e-9 {
		t.Errorf("SortCost(8) = %v, want %v", got, want)
	}
	// Superlinear growth.
	if m.SortCost(1000) <= 10*m.SortCost(100) {
		t.Error("sort cost should grow superlinearly")
	}
}

func TestShuffleSortCost(t *testing.T) {
	m := Default()
	if m.ShuffleSortCost(1) != 0 {
		t.Error("shuffle sort of 1 element costs nothing")
	}
	if m.ShuffleSortCost(100) >= m.SortCost(100) {
		t.Error("shuffle sort must be cheaper than hint sort")
	}
}

func TestHintCost(t *testing.T) {
	m := Default()
	// HintCost = read + sort; must exceed either part alone.
	n := 50
	if m.HintCost(n) <= m.SortCost(n) {
		t.Error("hint cost must include reading")
	}
	if m.HintCost(n) <= m.ReadRecord*float64(n) {
		t.Error("hint cost must include sorting")
	}
	if m.HintCost(0) != 0 {
		t.Errorf("HintCost(0) = %v", m.HintCost(0))
	}
}
