package membudget

import (
	"errors"
	"sync"
	"testing"
)

func TestNilManagerIsInert(t *testing.T) {
	var m *Manager
	if m.Budget() != 0 || m.Used() != 0 || m.Peak() != 0 {
		t.Error("nil manager reported nonzero state")
	}
	a := m.NewAccount("x", nil)
	if a != nil {
		t.Fatal("nil manager returned a live account")
	}
	if err := a.Charge(100); err != nil {
		t.Fatal(err)
	}
	a.Release(100)
	a.Close()
	if New(0) != nil || New(-5) != nil {
		t.Error("non-positive budget should yield a nil manager")
	}
}

func TestChargeReleaseTracking(t *testing.T) {
	m := New(1000)
	a := m.NewAccount("a", nil)
	b := m.NewAccount("b", nil)
	if err := a.Charge(300); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge(400); err != nil {
		t.Fatal(err)
	}
	if got := m.Used(); got != 700 {
		t.Errorf("Used = %d, want 700", got)
	}
	a.Release(100)
	if got := m.Used(); got != 600 {
		t.Errorf("Used after release = %d, want 600", got)
	}
	if got := m.Peak(); got != 700 {
		t.Errorf("Peak = %d, want 700", got)
	}
	if got := m.ChargedTotal(); got != 700 {
		t.Errorf("ChargedTotal = %d, want 700", got)
	}
	b.Close()
	if got := m.Used(); got != 200 {
		t.Errorf("Used after Close = %d, want 200", got)
	}
}

func TestChargeForcesLargestSpill(t *testing.T) {
	m := New(1000)
	var spilledA, spilledB bool
	var a, b *Account
	a = m.NewAccount("small", func() (int64, error) {
		spilledA = true
		return 200, nil
	})
	b = m.NewAccount("large", func() (int64, error) {
		spilledB = true
		return 600, nil
	})
	if err := a.Charge(200); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge(600); err != nil {
		t.Fatal(err)
	}
	// 800 used; charging 300 more must spill the LARGEST holder (b)
	// and leave a alone.
	c := m.NewAccount("new", nil)
	if err := c.Charge(300); err != nil {
		t.Fatal(err)
	}
	if !spilledB || spilledA {
		t.Errorf("spills: a=%v b=%v, want only b", spilledA, spilledB)
	}
	if got := m.Used(); got != 500 {
		t.Errorf("Used = %d, want 500 (200 + 300)", got)
	}
	if got := m.Peak(); got > 1000 {
		t.Errorf("Peak %d exceeded budget 1000 — enforcement must precede recording", got)
	}
	if m.ForcedSpills() != 1 || m.SpilledBytes() != 600 {
		t.Errorf("spill stats: %d spills, %d bytes", m.ForcedSpills(), m.SpilledBytes())
	}
}

func TestChargeCascadesAcrossVictims(t *testing.T) {
	m := New(100)
	mk := func(n int64) *Account {
		var a *Account
		a = m.NewAccount("h", func() (int64, error) {
			u := a.Used()
			return u, nil
		})
		if err := a.Charge(n); err != nil {
			t.Fatal(err)
		}
		return a
	}
	mk(40)
	mk(30)
	mk(25) // 95 used
	fresh := m.NewAccount("fresh", nil)
	if err := fresh.Charge(90); err != nil {
		t.Fatal(err)
	}
	if got := m.Peak(); got > 100 {
		t.Errorf("peak %d exceeded budget", got)
	}
	if m.ForcedSpills() < 2 {
		t.Errorf("expected a cascade of spills, got %d", m.ForcedSpills())
	}
}

func TestUnspillableOvershootAllowed(t *testing.T) {
	m := New(100)
	a := m.NewAccount("pinned", nil)
	if err := a.Charge(250); err != nil {
		t.Fatal(err)
	}
	if got := m.Used(); got != 250 {
		t.Errorf("Used = %d, want 250 (overshoot permitted when nothing can spill)", got)
	}
}

func TestZeroFreedVictimNotRetriedWithinCharge(t *testing.T) {
	m := New(100)
	calls := 0
	a := m.NewAccount("stuck", func() (int64, error) {
		calls++
		return 0, nil // pinned: refuses to free anything
	})
	if err := a.Charge(80); err != nil {
		t.Fatal(err)
	}
	b := m.NewAccount("b", nil)
	if err := b.Charge(50); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("zero-freed victim called %d times in one charge, want 1", calls)
	}
	if got := m.Used(); got != 130 {
		t.Errorf("Used = %d, want 130", got)
	}
}

func TestSpillErrorPropagates(t *testing.T) {
	m := New(100)
	boom := errors.New("disk full")
	a := m.NewAccount("bad", func() (int64, error) { return 0, boom })
	if err := a.Charge(80); err != nil {
		t.Fatal(err)
	}
	b := m.NewAccount("b", nil)
	err := b.Charge(50)
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("Charge error = %v, want wrapped %v", err, boom)
	}
}

func TestConcurrentChargersStayUnderBudget(t *testing.T) {
	const budget = 10000
	m := New(budget)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a *Account
			var mu sync.Mutex
			held := int64(0)
			a = m.NewAccount("g", func() (int64, error) {
				mu.Lock()
				freed := held
				held = 0
				mu.Unlock()
				return freed, nil
			})
			defer a.Close()
			for i := 0; i < 200; i++ {
				if err := a.Charge(100); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				held += 100
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if got := m.Peak(); got > budget {
		t.Errorf("concurrent peak %d exceeded budget %d", got, budget)
	}
	if got := m.ChargedTotal(); got != 8*200*100 {
		t.Errorf("ChargedTotal = %d, want %d", got, 8*200*100)
	}
}
