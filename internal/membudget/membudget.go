// Package membudget implements a process-wide memory budget for the
// out-of-core pipeline. Holders of large in-memory state (map output
// buffers, shuffle stores, Job-1 blocking statistics) register an
// Account and charge it for the bytes they retain; when a charge would
// push the total over budget, the manager forces the largest spillable
// holders to move their bytes to disk first.
//
// Enforcement is *reservation-style*: victims spill before the new
// bytes are recorded, so as long as no single charge exceeds the whole
// budget and spillable holders exist, the tracked total — and thus the
// reported peak — never exceeds the budget.
//
// Accounting is deliberately approximate (callers charge what they can
// cheaply measure: record payload bytes plus a small per-record
// overhead). The manager enforces the invariant on tracked bytes; Go
// allocator slack is outside its jurisdiction.
//
// All methods are safe on a nil *Manager / nil *Account and become
// no-ops, so call sites need no budget-enabled branches.
package membudget

import (
	"fmt"
	"sync"
)

// Manager tracks charged bytes across all accounts and forces spills
// when a charge would exceed the budget.
type Manager struct {
	mu   sync.Mutex
	cond *sync.Cond

	budget   int64
	used     int64
	peak     int64
	charged  int64 // lifetime sum of all charges (raw volume)
	accounts map[*Account]struct{}

	forcedSpills int64
	spilledBytes int64
}

// Account is one holder's ledger within a Manager.
type Account struct {
	m    *Manager
	name string
	// spill moves the holder's in-memory bytes to disk and returns how
	// many tracked bytes were freed. nil marks the account unspillable
	// (its bytes can only be freed via Release). Called WITHOUT the
	// manager lock held; it may call Release itself, but the returned
	// freed count must then exclude what it already released.
	spill func() (int64, error)

	used     int64
	spilling bool
}

// New creates a manager enforcing budget bytes. A budget ≤ 0 returns
// nil: the nil manager tracks nothing and never forces spills.
func New(budget int64) *Manager {
	if budget <= 0 {
		return nil
	}
	m := &Manager{budget: budget, accounts: make(map[*Account]struct{})}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// NewAccount registers a holder. spill may be nil for holders whose
// bytes cannot be moved to disk.
func (m *Manager) NewAccount(name string, spill func() (int64, error)) *Account {
	if m == nil {
		return nil
	}
	a := &Account{m: m, name: name, spill: spill}
	m.mu.Lock()
	m.accounts[a] = struct{}{}
	m.mu.Unlock()
	return a
}

// pickVictim returns the largest spillable account not already mid-
// spill and not excluded, or nil. Caller holds m.mu.
func (m *Manager) pickVictim(skip map[*Account]bool) *Account {
	var best *Account
	for a := range m.accounts {
		if a.spill == nil || a.spilling || a.used <= 0 || skip[a] {
			continue
		}
		if best == nil || a.used > best.used {
			best = a
		}
	}
	return best
}

// anySpilling reports whether some account is mid-spill. Caller holds
// m.mu.
func (m *Manager) anySpilling() bool {
	for a := range m.accounts {
		if a.spilling {
			return true
		}
	}
	return false
}

// Charge reserves n more bytes for the account, spilling the largest
// holders first if the total would exceed the budget. If every
// spillable holder has been tried and the total still exceeds the
// budget (e.g. a single charge larger than the whole budget), the
// charge proceeds anyway — the budget bounds what CAN be bounded.
func (a *Account) Charge(n int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	m := a.m
	var skip map[*Account]bool
	m.mu.Lock()
	for m.used+n > m.budget {
		victim := m.pickVictim(skip)
		if victim == nil {
			if m.anySpilling() {
				// Another goroutine is freeing memory right now; wait
				// for it rather than overshooting.
				m.cond.Wait()
				continue
			}
			break
		}
		victim.spilling = true
		m.mu.Unlock()
		freed, err := victim.spill()
		m.mu.Lock()
		victim.spilling = false
		m.cond.Broadcast()
		if err != nil {
			m.mu.Unlock()
			return fmt.Errorf("membudget: spilling %s: %w", victim.name, err)
		}
		if freed > victim.used {
			freed = victim.used
		}
		victim.used -= freed
		m.used -= freed
		if freed > 0 {
			m.forcedSpills++
			m.spilledBytes += freed
		} else {
			// No progress from this victim (pinned or already empty);
			// don't pick it again within this charge.
			if skip == nil {
				skip = make(map[*Account]bool)
			}
			skip[victim] = true
		}
	}
	a.used += n
	m.used += n
	m.charged += n
	if m.used > m.peak {
		m.peak = m.used
	}
	m.mu.Unlock()
	return nil
}

// Release returns n bytes to the budget (the holder freed or spilled
// them on its own).
func (a *Account) Release(n int64) {
	if a == nil || n <= 0 {
		return
	}
	m := a.m
	m.mu.Lock()
	if n > a.used {
		n = a.used
	}
	a.used -= n
	m.used -= n
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Used returns the account's currently tracked bytes.
func (a *Account) Used() int64 {
	if a == nil {
		return 0
	}
	a.m.mu.Lock()
	defer a.m.mu.Unlock()
	return a.used
}

// Close releases everything the account still holds and unregisters
// it.
func (a *Account) Close() {
	if a == nil {
		return
	}
	m := a.m
	m.mu.Lock()
	m.used -= a.used
	a.used = 0
	delete(m.accounts, a)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Budget returns the configured budget (0 for a nil manager).
func (m *Manager) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}

// Used returns the currently tracked bytes.
func (m *Manager) Used() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Peak returns the high-water mark of tracked bytes.
func (m *Manager) Peak() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// ChargedTotal returns the lifetime sum of all charges — the raw
// volume that flowed through tracked memory, regardless of spills.
func (m *Manager) ChargedTotal() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.charged
}

// ForcedSpills returns how many times the manager forced a holder to
// spill.
func (m *Manager) ForcedSpills() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.forcedSpills
}

// SpilledBytes returns the total tracked bytes freed by forced spills.
func (m *Manager) SpilledBytes() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spilledBytes
}

// Stats is a single-lock snapshot of the manager's pressure telemetry,
// for live introspection and run summaries. Fields mirror the
// individual getters.
type Stats struct {
	Budget       int64 `json:"budget_bytes"`
	Used         int64 `json:"used_bytes"`
	Peak         int64 `json:"peak_bytes"`
	ChargedTotal int64 `json:"charged_total_bytes"`
	ForcedSpills int64 `json:"forced_spills"`
	SpilledBytes int64 `json:"spilled_bytes"`
}

// Snapshot returns all pressure counters under one lock acquisition,
// so the fields are mutually consistent. Zero for a nil manager.
func (m *Manager) Snapshot() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Budget:       m.budget,
		Used:         m.used,
		Peak:         m.peak,
		ChargedTotal: m.charged,
		ForcedSpills: m.forcedSpills,
		SpilledBytes: m.spilledBytes,
	}
}
