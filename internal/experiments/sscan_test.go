package experiments

import (
	"fmt"

	"proger/internal/entity"
)

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func pair(a, b int32) entity.Pair { return entity.MakePair(entity.ID(a), entity.ID(b)) }
