package experiments

import (
	"fmt"

	"proger/internal/core"
	"proger/internal/mechanism"
	"proger/internal/progress"
	"proger/internal/sched"
)

// AblationConfig scales the design-choice ablation studies that go
// beyond the paper's own evaluation: they quantify what each mechanism
// of the approach contributes on the same workload.
type AblationConfig struct {
	Entities   int
	Seed       int64
	Machines   int
	GridPoints int
}

func (c *AblationConfig) defaults() {
	if c.Entities <= 0 {
		c.Entities = 4000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Machines <= 0 {
		c.Machines = 10
	}
	if c.GridPoints <= 0 {
		c.GridPoints = 16
	}
}

// AblationResult carries the three ablation figures plus a summary
// table.
type AblationResult struct {
	// Mechanisms compares the pluggable mechanisms M (SN, PSNM,
	// hierarchy hint, R-Swoosh) inside the full pipeline.
	Mechanisms *Figure
	// Components compares the full approach against itself with
	// redundancy-free resolution disabled and with sub-blocking
	// disabled.
	Components *Figure
	// Summary tabulates final recall, total time, AUC, and comparison
	// counts per configuration.
	Summary *Table
}

// Ablation runs the design-choice studies on the publications workload.
func Ablation(cfg AblationConfig) (*AblationResult, error) {
	cfg.defaults()
	w := PublicationsWorkload(cfg.Entities, cfg.Seed)

	type variant struct {
		label  string
		mech   mechanism.Mechanism
		mutate func(*core.Options)
	}
	run := func(v variant) (*Run, int64, error) {
		opts := core.Options{
			Families:        w.Fams,
			Matcher:         w.Matcher,
			Mechanism:       v.mech,
			Policy:          w.Policy,
			DupModel:        w.Model,
			Machines:        cfg.Machines,
			SlotsPerMachine: 2,
			Scheduler:       sched.Ours,
		}
		if v.mutate != nil {
			v.mutate(&opts)
		}
		res, err := core.Resolve(w.DS, opts)
		if err != nil {
			return nil, 0, fmt.Errorf("ablation %s: %w", v.label, err)
		}
		curve := progress.BuildCurve(res.EventsAgainst(w.GT.IsDup), w.GT.NumDupPairs(), res.TotalTime)
		return &Run{Label: v.label, Curve: curve, Total: res.TotalTime},
			res.Counters.Get(core.CounterJob2Compared), nil
	}

	out := &AblationResult{}
	summary := &Table{
		ID:     "Ablation",
		Title:  "Design-choice ablations (publications workload)",
		Header: []string{"Configuration", "Final recall", "Total time", "AUC", "Comparisons"},
	}
	addRow := func(r *Run, compared int64) {
		summary.Rows = append(summary.Rows, []string{
			r.Label,
			fmt.Sprintf("%.3f", r.Curve.FinalRecall()),
			fmt.Sprintf("%.0f", r.Total),
			fmt.Sprintf("%.3f", r.Curve.AUC()),
			fmt.Sprintf("%d", compared),
		})
	}

	// --- Mechanism ablation ---
	mechVariants := []variant{
		{label: "SN hint", mech: mechanism.SN{}},
		{label: "PSNM", mech: mechanism.PSNM{}},
		{label: "Hierarchy hint", mech: mechanism.Hierarchy{}},
		{label: "R-Swoosh", mech: mechanism.RSwoosh{}},
	}
	mechRuns := make([]*Run, 0, len(mechVariants))
	for _, v := range mechVariants {
		r, compared, err := run(v)
		if err != nil {
			return nil, err
		}
		mechRuns = append(mechRuns, r)
		addRow(r, compared)
	}
	out.Mechanisms = NewFigure("Ablation-mechanisms", "Progressive mechanisms M inside the pipeline", cfg.GridPoints, mechRuns...)

	// --- Component ablation ---
	compVariants := []variant{
		{label: "Full approach", mech: mechanism.SN{}},
		{label: "No dedup (§V off)", mech: mechanism.SN{}, mutate: func(o *core.Options) {
			o.DisableRedundancyElimination = true
		}},
		{label: "No sub-blocking", mech: mechanism.SN{}, mutate: func(o *core.Options) {
			o.DisableSubBlocking = true
		}},
		{label: "Compact shuffle (fn.5)", mech: mechanism.SN{}, mutate: func(o *core.Options) {
			o.CompactShuffle = true
		}},
	}
	compRuns := make([]*Run, 0, len(compVariants))
	for _, v := range compVariants {
		r, compared, err := run(v)
		if err != nil {
			return nil, err
		}
		compRuns = append(compRuns, r)
		addRow(r, compared)
	}
	out.Components = NewFigure("Ablation-components", "Redundancy elimination and progressive blocking ablated", cfg.GridPoints, compRuns...)
	out.Summary = summary
	return out, nil
}
