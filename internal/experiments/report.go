package experiments

import (
	"fmt"
	"strings"

	"proger/internal/costmodel"
)

// Figure is one recall-vs-cost plot: several labeled curves sampled on
// a shared time grid, matching the sub-figures of Figs. 8–10.
type Figure struct {
	ID     string
	Title  string
	Times  []costmodel.Units
	Series []FigureSeries
	XLabel string
	YLabel string
}

// FigureSeries is one curve of a figure.
type FigureSeries struct {
	Label   string
	Recalls []float64
	// AUC is the run's normalized progressiveness area (0 when the run
	// carried no quality telemetry).
	AUC float64
}

// NewFigure samples each run's curve on a uniform grid up to the
// longest run's completion time.
func NewFigure(id, title string, points int, runs ...*Run) *Figure {
	var end costmodel.Units
	for _, r := range runs {
		if r.Total > end {
			end = r.Total
		}
	}
	if points < 2 {
		points = 2
	}
	f := &Figure{ID: id, Title: title, XLabel: "cost units", YLabel: "duplicate recall"}
	f.Times = make([]costmodel.Units, points)
	for i := range f.Times {
		f.Times[i] = end * costmodel.Units(i+1) / costmodel.Units(points)
	}
	for _, r := range runs {
		s := FigureSeries{Label: r.Label, Recalls: r.Curve.Sample(f.Times)}
		if r.Quality != nil {
			s.AUC = r.Quality.AUC
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Render prints the figure as an aligned text table: one row per grid
// time, one column per series — the same information the paper plots.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %16s", trunc(s.Label, 16))
	}
	b.WriteByte('\n')
	for i, t := range f.Times {
		fmt.Fprintf(&b, "%12.0f", t)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "  %16.3f", s.Recalls[i])
		}
		b.WriteByte('\n')
	}
	hasAUC := false
	for _, s := range f.Series {
		if s.AUC > 0 {
			hasAUC = true
			break
		}
	}
	if hasAUC {
		fmt.Fprintf(&b, "%12s", "auc")
		for _, s := range f.Series {
			fmt.Fprintf(&b, "  %16.3f", s.AUC)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a rendered result table (Table III and the Fig. 11 rows).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	for i, h := range t.Header {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
