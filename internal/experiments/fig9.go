package experiments

import (
	"fmt"

	"proger/internal/sched"
)

// Fig9Config scales the tree-scheduler experiment (§VI-B2): our
// schedule generator vs NoSplit vs LPT at μ ∈ {10, 15, 20} machines.
type Fig9Config struct {
	Entities   int
	Seed       int64
	Machines   []int
	GridPoints int
}

func (c *Fig9Config) defaults() {
	if c.Entities <= 0 {
		c.Entities = 8000
	}
	if c.Seed == 0 {
		c.Seed = 9
	}
	if len(c.Machines) == 0 {
		c.Machines = []int{10, 15, 20}
	}
	if c.GridPoints <= 0 {
		c.GridPoints = 24
	}
}

// Fig9Result holds one sub-figure per machine count.
type Fig9Result struct {
	SubFigures []*Figure
}

// Fig9 runs the three schedulers on the publications workload for each
// machine count.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	cfg.defaults()
	w := PublicationsWorkload(cfg.Entities, cfg.Seed)
	res := &Fig9Result{}
	for _, mu := range cfg.Machines {
		lpt, err := w.RunOurs(mu, sched.LPT, "LPT")
		if err != nil {
			return nil, err
		}
		noSplit, err := w.RunOurs(mu, sched.NoSplit, "NoSplit")
		if err != nil {
			return nil, err
		}
		ours, err := w.RunOurs(mu, sched.Ours, "Our Algorithm")
		if err != nil {
			return nil, err
		}
		fig := NewFigure(
			fmt.Sprintf("Fig9-mu%d", mu),
			fmt.Sprintf("Tree schedulers, μ=%d", mu),
			cfg.GridPoints, lpt, noSplit, ours)
		res.SubFigures = append(res.SubFigures, fig)
	}
	return res, nil
}
