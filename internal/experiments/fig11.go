package experiments

import (
	"fmt"

	"proger/internal/progress"
	"proger/internal/sched"
)

// Fig11Config scales the recall-speedup experiment (§VI-B4): our
// approach on the books workload at μ ∈ {5, 10, 15, 20, 25}; the
// speedup of recall level ρ at μ = x is time(μ=5 reaches ρ) divided by
// time(μ=x reaches ρ).
type Fig11Config struct {
	Entities int
	Seed     int64
	Machines []int
	Recalls  []float64
}

func (c *Fig11Config) defaults() {
	if c.Entities <= 0 {
		c.Entities = 6000
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if len(c.Machines) == 0 {
		c.Machines = []int{5, 10, 15, 20, 25}
	}
	if len(c.Recalls) == 0 {
		c.Recalls = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	}
}

// Fig11Result is the speedup table: rows = recall levels, columns =
// machine counts.
type Fig11Result struct {
	Machines []int
	Recalls  []float64
	// Speedup[i][j] is the speedup of Recalls[i] at Machines[j]
	// relative to the first machine count; 0 when unreached.
	Speedup [][]float64
	Table   *Table
}

// Fig11 measures recall speedup relative to the smallest cluster.
func Fig11(cfg Fig11Config) (*Fig11Result, error) {
	cfg.defaults()
	w := BooksWorkload(cfg.Entities, cfg.Seed)
	curves := make([]*progress.Curve, len(cfg.Machines))
	for j, mu := range cfg.Machines {
		run, err := w.RunOurs(mu, sched.Ours, fmt.Sprintf("mu=%d", mu))
		if err != nil {
			return nil, err
		}
		curves[j] = run.Curve
	}
	base := curves[0]
	res := &Fig11Result{Machines: cfg.Machines, Recalls: cfg.Recalls}
	table := &Table{
		ID:     "Fig11",
		Title:  fmt.Sprintf("Recall speedup relative to %d machines", cfg.Machines[0]),
		Header: []string{"Recall"},
	}
	for _, mu := range cfg.Machines {
		table.Header = append(table.Header, fmt.Sprintf("mu=%d", mu))
	}
	for _, rho := range cfg.Recalls {
		row := []string{fmt.Sprintf("%.1f", rho)}
		speedups := make([]float64, len(cfg.Machines))
		for j := range cfg.Machines {
			s, ok := progress.Speedup(base, curves[j], rho)
			if !ok {
				row = append(row, "—")
				continue
			}
			speedups[j] = s
			row = append(row, fmt.Sprintf("%.2f", s))
		}
		res.Speedup = append(res.Speedup, speedups)
		table.Rows = append(table.Rows, row)
	}
	res.Table = table
	return res, nil
}
