package experiments

import (
	"encoding/json"
	"io"
)

// figureJSON is the stable JSON shape of a Figure, for external
// plotting tools (gnuplot, matplotlib, vega).
type figureJSON struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"xLabel"`
	YLabel string       `json:"yLabel"`
	Times  []float64    `json:"times"`
	Series []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Label   string    `json:"label"`
	Recalls []float64 `json:"recalls"`
	AUC     float64   `json:"auc,omitempty"`
}

// WriteJSON serializes the figure.
func (f *Figure) WriteJSON(w io.Writer) error {
	out := figureJSON{
		ID:     f.ID,
		Title:  f.Title,
		XLabel: f.XLabel,
		YLabel: f.YLabel,
		Times:  make([]float64, len(f.Times)),
	}
	for i, t := range f.Times {
		out.Times[i] = float64(t)
	}
	for _, s := range f.Series {
		out.Series = append(out.Series, seriesJSON{Label: s.Label, Recalls: s.Recalls, AUC: s.AUC})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadFigureJSON parses a figure written by WriteJSON.
func ReadFigureJSON(r io.Reader) (*Figure, error) {
	var in figureJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	f := &Figure{ID: in.ID, Title: in.Title, XLabel: in.XLabel, YLabel: in.YLabel}
	for _, t := range in.Times {
		f.Times = append(f.Times, t)
	}
	for _, s := range in.Series {
		f.Series = append(f.Series, FigureSeries{Label: s.Label, Recalls: s.Recalls, AUC: s.AUC})
	}
	return f, nil
}

// tableJSON is the stable JSON shape of a Table.
type tableJSON struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// WriteJSON serializes the table.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tableJSON{ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows})
}

// ReadTableJSON parses a table written by WriteJSON.
func ReadTableJSON(r io.Reader) (*Table, error) {
	var in tableJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	return &Table{ID: in.ID, Title: in.Title, Header: in.Header, Rows: in.Rows}, nil
}
