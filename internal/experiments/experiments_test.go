package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"proger/internal/progress"
)

// qty computes the Eq.-1 quality of a figure series on the figure's own
// grid with linearly decaying weights, for shape comparisons.
func qty(t *testing.T, f *Figure, label string) float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		q := 0.0
		prev := 0.0
		k := len(f.Times)
		for i := range f.Times {
			wgt := float64(k-i) / float64(k)
			q += wgt * (s.Recalls[i] - prev)
			prev = s.Recalls[i]
		}
		return q
	}
	t.Fatalf("series %q not found in %s", label, f.ID)
	return 0
}

func finalRecall(t *testing.T, f *Figure, label string) float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s.Recalls[len(s.Recalls)-1]
		}
	}
	t.Fatalf("series %q not found in %s", label, f.ID)
	return 0
}

func TestFig8Shapes(t *testing.T) {
	res, err := Fig8(Fig8Config{Entities: 2000, Seed: 81, Machines: 5, GridPoints: 12})
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	for _, fig := range []*Figure{res.Left, res.Mid, res.Right} {
		if len(fig.Series) < 2 {
			t.Fatalf("%s has %d series", fig.ID, len(fig.Series))
		}
		// Our approach must beat every Basic variant on quality.
		qOurs := qty(t, fig, "Our Approach")
		for _, s := range fig.Series {
			if s.Label == "Our Approach" {
				continue
			}
			if q := qty(t, fig, s.Label); q >= qOurs {
				t.Errorf("%s: %s quality %.4f ≥ ours %.4f", fig.ID, s.Label, q, qOurs)
			}
		}
	}
	// Optimistic popcorn plateaus below Basic F (the Fig. 8 story).
	if fr, frF := finalRecall(t, res.Left, "Basic 0.1"), finalRecall(t, res.Left, "Basic F"); fr >= frF {
		t.Errorf("Basic 0.1 final recall %.3f should be below Basic F %.3f", fr, frF)
	}
	// Our final recall is at least Basic F's (progressive blocking
	// resolves within smaller blocks where the window misses less).
	if fo, fb := finalRecall(t, res.Left, "Our Approach"), finalRecall(t, res.Left, "Basic F"); fo < fb-0.02 {
		t.Errorf("our final recall %.3f clearly below Basic F %.3f", fo, fb)
	}
	if res.TableIII == nil || len(res.TableIII.Rows) != len(table3Thresholds)+1 {
		t.Fatal("Table III missing rows")
	}
	out := res.TableIII.Render()
	if !strings.Contains(out, "Thresh.") || !strings.Contains(out, "Ours") {
		t.Errorf("Table III render malformed:\n%s", out)
	}
}

func TestTable3Tradeoff(t *testing.T) {
	res, err := Fig8(Fig8Config{Entities: 1500, Seed: 83, Machines: 4, GridPoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.TableIII.Rows
	// First row is the most aggressive threshold (0.1), the row before
	// "Ours" is F. Recall must not decrease from first to F; time must
	// increase substantially.
	parse := func(s string) float64 {
		var v float64
		if _, err := sscan(s, &v); err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	firstRecall15 := parse(rows[0][2])
	fRecall15 := parse(rows[len(rows)-2][2])
	if firstRecall15 > fRecall15 {
		t.Errorf("aggressive threshold recall %.2f exceeds F %.2f", firstRecall15, fRecall15)
	}
	firstTime15 := parse(rows[0][4])
	fTime15 := parse(rows[len(rows)-2][4])
	if firstTime15 >= fTime15 {
		t.Errorf("aggressive threshold time %.0f not below F time %.0f", firstTime15, fTime15)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func TestFig9SchedulerOrdering(t *testing.T) {
	res, err := Fig9(Fig9Config{Entities: 2500, Seed: 91, Machines: []int{6, 10}, GridPoints: 12})
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(res.SubFigures) != 2 {
		t.Fatalf("subfigures = %d", len(res.SubFigures))
	}
	for _, fig := range res.SubFigures {
		qOurs := qty(t, fig, "Our Algorithm")
		qNoSplit := qty(t, fig, "NoSplit")
		qLPT := qty(t, fig, "LPT")
		t.Logf("%s: ours=%.4f nosplit=%.4f lpt=%.4f", fig.ID, qOurs, qNoSplit, qLPT)
		if qOurs < qNoSplit-0.02 {
			t.Errorf("%s: ours %.4f clearly below NoSplit %.4f", fig.ID, qOurs, qNoSplit)
		}
		if qOurs < qLPT-0.02 {
			t.Errorf("%s: ours %.4f clearly below LPT %.4f", fig.ID, qOurs, qLPT)
		}
	}
}

func TestFig10OursBeatsBasic(t *testing.T) {
	res, err := Fig10(Fig10Config{Entities: 6000, Seed: 101, Machines: []int{8, 4}, GridPoints: 12})
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if len(res.SubFigures) != 2 {
		t.Fatalf("subfigures = %d", len(res.SubFigures))
	}
	var gaps []float64
	for _, fig := range res.SubFigures {
		qOurs := qty(t, fig, "Our Approach")
		best := 0.0
		for _, s := range fig.Series {
			if s.Label == "Our Approach" {
				continue
			}
			if q := qty(t, fig, s.Label); q > best {
				best = q
			}
		}
		t.Logf("%s: ours=%.4f bestBasic=%.4f", fig.ID, qOurs, best)
		if qOurs <= best {
			t.Errorf("%s: ours %.4f not above best Basic %.4f", fig.ID, qOurs, best)
		}
		gaps = append(gaps, qOurs-best)
	}
	// The paper: the gap grows as θ grows (fewer machines).
	if gaps[1] < gaps[0]-0.05 {
		t.Errorf("quality gap should grow with θ: %.4f (θ small) vs %.4f (θ large)", gaps[0], gaps[1])
	}
}

func TestFig11Speedup(t *testing.T) {
	res, err := Fig11(Fig11Config{Entities: 3000, Seed: 111, Machines: []int{4, 8, 16}, Recalls: []float64{0.2, 0.4, 0.6}})
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	if len(res.Speedup) != 3 {
		t.Fatalf("rows = %d", len(res.Speedup))
	}
	for i, row := range res.Speedup {
		// Speedup at the base machine count is 1 when reached.
		if row[0] != 0 && (row[0] < 0.999 || row[0] > 1.001) {
			t.Errorf("recall %.1f: self-speedup %.3f ≠ 1", res.Recalls[i], row[0])
		}
		// The largest cluster must be at least as fast as the base for
		// the highest recall level measured.
		if i == len(res.Speedup)-1 && row[len(row)-1] != 0 && row[len(row)-1] < 1 {
			t.Errorf("recall %.1f: %d machines slower than base (%.3f)", res.Recalls[i], res.Machines[len(row)-1], row[len(row)-1])
		}
	}
	// The paper: speedup grows (or at least does not shrink much) with
	// the recall level for the biggest cluster.
	last := len(res.Machines) - 1
	lowR, highR := res.Speedup[0][last], res.Speedup[len(res.Speedup)-1][last]
	t.Logf("speedup at %d machines: recall %.1f → %.2f, recall %.1f → %.2f",
		res.Machines[last], res.Recalls[0], lowR, res.Recalls[len(res.Recalls)-1], highR)
	if lowR != 0 && highR != 0 && highR < lowR*0.7 {
		t.Errorf("speedup should not collapse at higher recall: %.2f → %.2f", lowR, highR)
	}
	if res.Table == nil || len(res.Table.Rows) != 3 {
		t.Error("Fig11 table missing")
	}
}

func TestFigureRender(t *testing.T) {
	run := &Run{Label: "demo", Curve: progress.BuildCurve(nil, 1, 10), Total: 10}
	fig := NewFigure("F", "demo fig", 4, run)
	out := fig.Render()
	if !strings.Contains(out, "demo fig") || !strings.Contains(out, "cost units") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 6 { // header + column line + 4 grid rows
		t.Errorf("render has %d lines:\n%s", lines, out)
	}
}

func TestWorkloadConstruction(t *testing.T) {
	w := PublicationsWorkload(600, 3)
	if w.DS.Len() < 600 || w.GT.NumDupPairs() == 0 || len(w.Fams) != 3 {
		t.Error("publications workload malformed")
	}
	b := BooksWorkload(600, 3)
	if b.DS.Len() < 600 || b.DS.Schema.Len() != 8 || b.Mech.Name() != "PSNM" {
		t.Error("books workload malformed")
	}
	if w.Mech.Name() != "SN" {
		t.Error("publications should use SN")
	}
}

func TestFig1Concept(t *testing.T) {
	fig, err := Fig1(Fig1Config{Entities: 2500, Seed: 81, Machines: 5, GridPoints: 12})
	if err != nil {
		t.Fatalf("Fig1: %v", err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	trad := fig.Series[0]
	if trad.Label != "Traditional" {
		t.Fatalf("first series = %q", trad.Label)
	}
	// Traditional is zero everywhere except (possibly) the final point.
	for i := 0; i < len(trad.Recalls)-1; i++ {
		if fig.Times[i] < fig.Times[len(fig.Times)-1] && trad.Recalls[i] > 0 {
			// Only nonzero if the grid point is ≥ the incremental total;
			// with a shared grid ending at the max total, mid points may
			// pass the incremental end. Require the first half zero.
			if i < len(trad.Recalls)/2 {
				t.Errorf("traditional has recall %.3f at grid %d", trad.Recalls[i], i)
			}
		}
	}
	// Progressive beats incremental on quality.
	qProg := qty(t, fig, "Progressive (ours)")
	qInc := qty(t, fig, "Incremental")
	qTrad := qty(t, fig, "Traditional")
	t.Logf("qty: progressive=%.4f incremental=%.4f traditional=%.4f", qProg, qInc, qTrad)
	if !(qProg > qInc && qInc > qTrad) {
		t.Errorf("expected progressive > incremental > traditional, got %.4f, %.4f, %.4f", qProg, qInc, qTrad)
	}
}

func TestPlot(t *testing.T) {
	run1 := &Run{Label: "alpha", Curve: progress.BuildCurve([]progress.Event{
		{Time: 10, Pair: pair(0, 1), TrueDup: true},
		{Time: 20, Pair: pair(2, 3), TrueDup: true},
	}, 2, 40), Total: 40}
	run2 := &Run{Label: "beta", Curve: progress.BuildCurve([]progress.Event{
		{Time: 35, Pair: pair(0, 1), TrueDup: true},
	}, 2, 40), Total: 40}
	fig := NewFigure("P", "plot demo", 8, run1, run2)
	out := fig.Plot(24, 6)
	if !strings.Contains(out, "o = alpha") || !strings.Contains(out, "+ = beta") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "plot demo") {
		t.Errorf("title missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 6 rows + axis + scale + 2 legend lines.
	if len(lines) != 11 {
		t.Errorf("plot has %d lines:\n%s", len(lines), out)
	}
	// Every grid row is framed and of equal width.
	for _, l := range lines[1:7] {
		if !strings.Contains(l, "|") {
			t.Errorf("row not framed: %q", l)
		}
	}
	// Both glyphs appear somewhere in the grid.
	body := strings.Join(lines[1:7], "\n")
	if !strings.Contains(body, "o") || !strings.Contains(body, "+") {
		t.Errorf("glyphs missing from grid:\n%s", body)
	}
}

func TestPlotDegenerate(t *testing.T) {
	fig := &Figure{ID: "E", Title: "empty"}
	out := fig.Plot(0, 0) // clamps to minimums
	if !strings.Contains(out, "empty") {
		t.Errorf("degenerate plot:\n%s", out)
	}
}

func TestAblation(t *testing.T) {
	res, err := Ablation(AblationConfig{Entities: 1500, Seed: 42, Machines: 4, GridPoints: 10})
	if err != nil {
		t.Fatalf("Ablation: %v", err)
	}
	if len(res.Mechanisms.Series) != 4 {
		t.Fatalf("mechanism series = %d", len(res.Mechanisms.Series))
	}
	if len(res.Components.Series) != 4 {
		t.Fatalf("component series = %d", len(res.Components.Series))
	}
	if len(res.Summary.Rows) != 8 {
		t.Fatalf("summary rows = %d", len(res.Summary.Rows))
	}
	// The no-dedup variant must do at least as many comparisons as the
	// full approach (it re-resolves shared pairs).
	comparisons := func(label string) float64 {
		for _, row := range res.Summary.Rows {
			if row[0] == label {
				var v float64
				if _, err := sscan(row[4], &v); err != nil {
					t.Fatalf("bad comparisons cell %q", row[4])
				}
				return v
			}
		}
		t.Fatalf("row %q missing", label)
		return 0
	}
	full := comparisons("Full approach")
	noDedup := comparisons("No dedup (§V off)")
	if noDedup <= full {
		t.Errorf("no-dedup comparisons %v should exceed full %v", noDedup, full)
	}
	// Every configuration still finds a sensible number of duplicates.
	for _, row := range res.Summary.Rows {
		var recall float64
		if _, err := sscan(row[1], &recall); err != nil || recall < 0.3 {
			t.Errorf("configuration %s has recall %s", row[0], row[1])
		}
	}
}

func TestFigureJSONRoundTrip(t *testing.T) {
	run := &Run{Label: "alpha", Curve: progress.BuildCurve([]progress.Event{
		{Time: 10, Pair: pair(0, 1), TrueDup: true},
	}, 2, 40), Total: 40}
	fig := NewFigure("J", "json demo", 5, run)
	var buf bytes.Buffer
	if err := fig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadFigureJSON(&buf)
	if err != nil {
		t.Fatalf("ReadFigureJSON: %v", err)
	}
	if back.ID != fig.ID || back.Title != fig.Title || len(back.Times) != len(fig.Times) {
		t.Errorf("figure metadata lost: %+v", back)
	}
	if len(back.Series) != 1 || back.Series[0].Label != "alpha" {
		t.Errorf("series lost: %+v", back.Series)
	}
	for i := range fig.Times {
		if float64(back.Times[i]) != float64(fig.Times[i]) {
			t.Errorf("time %d differs", i)
		}
		if back.Series[0].Recalls[i] != fig.Series[0].Recalls[i] {
			t.Errorf("recall %d differs", i)
		}
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := &Table{ID: "T", Title: "json table", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTableJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tb) {
		t.Errorf("round trip: %+v vs %+v", back, tb)
	}
	if _, err := ReadTableJSON(strings.NewReader("not json")); err == nil {
		t.Error("bad json: want error")
	}
	if _, err := ReadFigureJSON(strings.NewReader("{")); err == nil {
		t.Error("bad figure json: want error")
	}
}
